package csfltr

// Wire-format stability tests: persisted artifacts (sketch tables, model
// bundles, owner snapshots) outlive processes, so their byte layouts are
// a compatibility contract. These tests pin SHA-256 digests of fixed
// inputs; a failure means the format changed and needs either a version
// bump in the serializer or a deliberate update of the digest here.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"csfltr/internal/features"
	"csfltr/internal/hashutil"
	"csfltr/internal/ltr"
	"csfltr/internal/sketch"
)

func digest(t *testing.T, data []byte) string {
	t.Helper()
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func TestGoldenSketchFormat(t *testing.T) {
	fam, err := hashutil.NewFamily(hashutil.KindPolynomial, 3, 16, 12345)
	if err != nil {
		t.Fatal(err)
	}
	tab := sketch.MustNew(sketch.Count, fam)
	for i := uint64(0); i < 40; i++ {
		tab.Add(i, int64(i%7))
	}
	data, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 414 {
		t.Fatalf("sketch payload length changed: %d, want 414", len(data))
	}
	const want = "0890f38cfe56a3e7b2482a684b61d6f850d6d935a1605e65fd564a5a8530f8ca"
	if got := digest(t, data); got != want {
		t.Fatalf("sketch wire format changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenModelFormat(t *testing.T) {
	m := &ltr.LinearModel{W: []float64{0.5, -1.25, 3.5}, B: 0.75}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44 {
		t.Fatalf("model payload length changed: %d, want 44", buf.Len())
	}
	const want = "afdc29c87b1cb6ef9d92972c4095f41c2d1415d9e04ba38f5b1bab1d702b6db7"
	if got := digest(t, buf.Bytes()); got != want {
		t.Fatalf("model wire format changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenNormalizerFormat(t *testing.T) {
	n := features.FitNormalizer([][]float64{{1, 2}, {3, 6}})
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44 {
		t.Fatalf("normalizer payload length changed: %d, want 44", buf.Len())
	}
	const want = "2763c4f4241bc0e0bf0349ab6c1e6ccfdb69619e08df8865dd87e539e7df03d5"
	if got := digest(t, buf.Bytes()); got != want {
		t.Fatalf("normalizer wire format changed:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenHashFamily pins the hash family itself: if polynomial
// coefficients or the reduction change, every persisted sketch silently
// stops matching its terms. Index/Sign outputs on fixed inputs are the
// contract.
func TestGoldenHashFamily(t *testing.T) {
	fam, err := hashutil.NewFamily(hashutil.KindPolynomial, 2, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := [][2]uint32{{36, 52}, {12, 44}, {52, 35}}
	wantSign := [][2]int32{{1, -1}, {-1, 1}, {1, 1}}
	for i, term := range []uint64{0, 1, 2} {
		for row := 0; row < 2; row++ {
			if got := fam.Index(row, term); got != wantIdx[i][row] {
				t.Fatalf("Index(%d, %d) = %d, want %d — hash family changed",
					row, term, got, wantIdx[i][row])
			}
			if got := fam.Sign(row, term); got != wantSign[i][row] {
				t.Fatalf("Sign(%d, %d) = %d, want %d — sign family changed",
					row, term, got, wantSign[i][row])
			}
		}
	}
}
