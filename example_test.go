package csfltr_test

import (
	"fmt"
	"log"

	"csfltr"
)

// Example demonstrates the minimal cross-party workflow: two parties,
// one private corpus, one reverse top-K query and one TF query.
func Example() {
	params := csfltr.DefaultParams()
	params.Epsilon = 0 // deterministic output for the example
	params.K = 2

	fed, err := csfltr.NewDeterministicFederation([]string{"acme", "globex"}, params, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	vocab := csfltr.NewVocabulary()
	globex, _ := fed.Party("globex")
	globex.IngestDocument(csfltr.NewDocument(vocab, 0,
		"storage engines", "btree btree pages and wal logs for databases"))
	globex.IngestDocument(csfltr.NewDocument(vocab, 1,
		"salads", "tomato basil mozzarella"))

	term, _ := vocab.Lookup("btree")
	top, _, err := fed.ReverseTopK("acme", "globex", csfltr.FieldBody, uint64(term), 2, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top doc for btree: %d (count %.0f)\n", top[0].DocID, top[0].Count)

	tf, err := fed.CrossTF("acme", "globex", csfltr.FieldBody, 0, uint64(term))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("btree count in doc 0: %.0f\n", tf)
	// Output:
	// top doc for btree: 0 (count 2)
	// btree count in doc 0: 2
}

// ExampleFederation_FederatedSearch ranks a whole query across every
// other party's private documents.
func ExampleFederation_FederatedSearch() {
	params := csfltr.DefaultParams()
	params.Epsilon = 0
	fed, err := csfltr.NewDeterministicFederation([]string{"hq", "eu", "apac"}, params, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	vocab := csfltr.NewVocabulary()
	eu, _ := fed.Party("eu")
	eu.IngestDocument(csfltr.NewDocument(vocab, 0, "gdpr", "gdpr retention policy retention schedule"))
	apac, _ := fed.Party("apac")
	apac.IngestDocument(csfltr.NewDocument(vocab, 0, "apac", "retention basics"))

	retention, _ := vocab.Lookup("retention")
	policy, _ := vocab.Lookup("policy")
	hits, _, err := fed.FederatedSearch("hq", []uint64{uint64(retention), uint64(policy)}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("%s/doc%d score %.0f\n", h.Party, h.DocID, h.Score)
	}
	// Output:
	// eu/doc0 score 3
	// apac/doc0 score 1
}

// ExampleNewDocument shows tokenization and vocabulary interning.
func ExampleNewDocument() {
	vocab := csfltr.NewVocabulary()
	doc := csfltr.NewDocument(vocab, 7, "A Title!", "Body text, body TEXT.")
	fmt.Println(doc.TitleLen(), doc.Len())
	id1, _ := vocab.Lookup("body")
	id2, _ := vocab.Lookup("text")
	fmt.Println(id1 != id2)
	// Output:
	// 2 4
	// true
}

// ExampleTokenize shows the tokenizer's normalization.
func ExampleTokenize() {
	fmt.Println(csfltr.Tokenize("Federated-LTR, at scale!"))
	// Output:
	// [federated ltr at scale]
}
