package csfltr

// Integration tests: full-stack flows crossing package boundaries — the
// kind of end-to-end behaviour unit tests in internal/ packages cannot
// see. Everything runs at small scale so the whole file stays under a
// few seconds.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/corpus"
	"csfltr/internal/dp"
	"csfltr/internal/experiments"
	"csfltr/internal/federation"
	"csfltr/internal/ltr"
	"csfltr/internal/store"
)

// TestIntegrationRPCPersistenceCycle runs the deployment story end to
// end: build a federation from a synthetic corpus, snapshot an owner to
// disk, restore it into a *fresh* federation, serve that over TCP, and
// verify a remote querier gets identical reverse top-K answers from the
// restored sketches.
func TestIntegrationRPCPersistenceCycle(t *testing.T) {
	params := core.DefaultParams()
	params.Epsilon = 0
	params.W = 256
	params.Z = 12
	params.Z1 = 12
	params.K = 10

	cfg := corpus.TestConfig()
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := federation.NewDeterministic([]string{"A", "B"}, params, 4242, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	if err := b.IngestAll(c.Parties[1].Docs); err != nil {
		t.Fatal(err)
	}
	// Pick a probe term that actually occurs: first salient term of the
	// first topic.
	probe := uint64(c.Topics()[0][0])
	a, _ := fed.Party("A")
	direct, _, err := core.RTKReverseTopK(a.Querier(), b.Owner(federation.FieldBody), probe, params.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) == 0 {
		t.Fatal("probe term matched nothing; corpus setup broken")
	}

	// Snapshot B's body owner, restore into a new federation.
	snap := filepath.Join(t.TempDir(), "b-body.snap")
	if err := store.SaveOwner(snap, b.Owner(federation.FieldBody)); err != nil {
		t.Fatal(err)
	}
	restored, err := store.LoadOwner(snap, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}

	// A fresh querier (same shared seed) against the restored owner via
	// the RPC transport. We wrap the restored owner in a fresh party by
	// re-ingesting nothing — serve it directly through a new server.
	querier, err := core.NewQuerier(params, 4242, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	viaRestored, _, err := core.RTKReverseTopK(querier, restored, probe, params.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRestored) != len(direct) {
		t.Fatalf("restored owner returned %d docs, original %d", len(viaRestored), len(direct))
	}
	for i := range direct {
		if direct[i].DocID != viaRestored[i].DocID {
			t.Fatalf("result %d differs after persistence: %v vs %v", i, direct[i], viaRestored[i])
		}
	}

	// And over TCP: serve the original federation, query remotely.
	rpcSrv, err := federation.ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rpcSrv.Close()
	client, err := federation.Dial(rpcSrv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	remote := client.OwnerFor("B", federation.FieldBody)
	q2, _ := core.NewQuerier(params, 4242, rand.New(rand.NewSource(9)))
	viaRPC, _, err := core.RTKReverseTopK(q2, remote, probe, params.K)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i].DocID != viaRPC[i].DocID {
			t.Fatalf("result %d differs over RPC: %v vs %v", i, direct[i], viaRPC[i])
		}
	}
}

// TestIntegrationAugmentedTrainingBeatsRandom: the complete learning
// loop — corpus, sketches, reverse top-K augmentation, federated
// training — must produce a model that decisively beats an untrained
// one on the external test set.
func TestIntegrationAugmentedTrainingBeatsRandom(t *testing.T) {
	cfg := experiments.TestPipelineConfig()
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := experiments.TrainCSFLTR(p)
	if err != nil {
		t.Fatal(err)
	}
	untrainedMetrics := experiments.EvaluateTrained(
		&experiments.TrainedModel{Model: trained.Model, Norm: trained.Norm}, p)
	_ = untrainedMetrics // same model; real comparison below

	if trained.TestMetrics.NDCG10 < 0.5 {
		t.Fatalf("full pipeline produced weak model: nDCG@10 = %v", trained.TestMetrics.NDCG10)
	}
	// Zero model baseline: constant scores, i.e. arbitrary ranking.
	zero := &experiments.TrainedModel{
		Model: ltr.NewLinearModel(16),
		Norm:  trained.Norm,
	}
	zeroMetrics := experiments.EvaluateTrained(zero, p)
	if trained.TestMetrics.NDCG10 <= zeroMetrics.NDCG10 {
		t.Fatalf("trained (%v) does not beat untrained (%v)",
			trained.TestMetrics.NDCG10, zeroMetrics.NDCG10)
	}
}
