// Package features implements the learning-to-rank feature extractor of
// CS-F-LTR. Section VI-A of the paper: "The features we use include
// length, TF, IDF, TF-IDF, BM25, LMIR.ABS, LMIR.DIR and LMIR.JM of each
// document's body and title, which form a 16-dimensional vector for each
// instance."
//
// The extractor is written against the Field interface so that the same
// formulas run in two modes:
//
//   - exact mode: Field wraps a local textkit.TermVector (a party scoring
//     its own documents);
//   - federated mode: Field wraps the privacy-preserving cross-party TF
//     query of package core, whose counts are sketch estimates perturbed
//     by differential privacy.
//
// Document length and unique-term count are treated as non-private
// metadata, exactly as Definition 2 of the paper assumes ("the length of
// document is non-private, thus can be directly shared").
package features

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"csfltr/internal/textkit"
)

// Dim is the dimensionality of the extracted feature vector: 8 features
// for the body field plus 8 for the title field.
const Dim = 16

// Per-field feature layout (offsets within each 8-feature block).
const (
	FeatLen = iota
	FeatTF
	FeatIDF
	FeatTFIDF
	FeatBM25
	FeatLMIRABS
	FeatLMIRDIR
	FeatLMIRJM
	fieldFeatures // 8
)

// FeatureNames returns the 16 feature names in vector order.
func FeatureNames() []string {
	base := []string{"len", "tf", "idf", "tfidf", "bm25", "lmir.abs", "lmir.dir", "lmir.jm"}
	out := make([]string, 0, Dim)
	for _, f := range base {
		out = append(out, "body."+f)
	}
	for _, f := range base {
		out = append(out, "title."+f)
	}
	return out
}

// Errors returned by this package.
var ErrBadParams = errors.New("features: invalid parameters")

// Params holds the scoring-function hyperparameters.
type Params struct {
	K1       float64 // BM25 k1 (the paper's k_1)
	MuDIR    float64 // Dirichlet smoothing mass for LMIR.DIR
	LambdaJM float64 // Jelinek-Mercer interpolation for LMIR.JM
	DeltaABS float64 // absolute-discount for LMIR.ABS
}

// DefaultParams returns the conventional LETOR parameter setting.
func DefaultParams() Params {
	return Params{K1: 1.2, MuDIR: 2000, LambdaJM: 0.1, DeltaABS: 0.7}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.K1 <= 0:
		return fmt.Errorf("%w: K1=%v", ErrBadParams, p.K1)
	case p.MuDIR <= 0:
		return fmt.Errorf("%w: MuDIR=%v", ErrBadParams, p.MuDIR)
	case p.LambdaJM <= 0 || p.LambdaJM >= 1:
		return fmt.Errorf("%w: LambdaJM=%v", ErrBadParams, p.LambdaJM)
	case p.DeltaABS <= 0 || p.DeltaABS >= 1:
		return fmt.Errorf("%w: DeltaABS=%v", ErrBadParams, p.DeltaABS)
	}
	return nil
}

// Field is one scoreable document field (body or title): a way to obtain
// term counts plus the non-private length metadata.
type Field interface {
	// Count returns the (possibly estimated) count of term in the field.
	Count(term textkit.TermID) float64
	// Length returns the total number of term occurrences in the field.
	Length() int
	// Unique returns the number of distinct terms in the field.
	Unique() int
}

// exactField adapts a local TermVector to Field.
type exactField struct {
	tv     textkit.TermVector
	length int
	unique int
}

// ExactField wraps a term-count vector as an exact Field.
func ExactField(tv textkit.TermVector) Field {
	return &exactField{tv: tv, length: tv.Total(), unique: tv.Unique()}
}

func (f *exactField) Count(t textkit.TermID) float64 { return float64(f.tv[t]) }
func (f *exactField) Length() int                    { return f.length }
func (f *exactField) Unique() int                    { return f.unique }

// FuncField wraps an arbitrary count oracle (e.g. the cross-party TF
// protocol) as a Field. Negative oracle outputs are clamped to zero: Count
// Sketch estimates and DP noise can be negative but a term count cannot.
func FuncField(count func(textkit.TermID) float64, length, unique int) Field {
	return &funcField{count: count, length: length, unique: unique}
}

type funcField struct {
	count  func(textkit.TermID) float64
	length int
	unique int
}

func (f *funcField) Count(t textkit.TermID) float64 {
	c := f.count(t)
	if c < 0 {
		return 0
	}
	return c
}
func (f *funcField) Length() int { return f.length }
func (f *funcField) Unique() int { return f.unique }

// FieldStats holds the collection-level statistics of one field over the
// whole (global) corpus: what IDF and the LMIR collection model need.
type FieldStats struct {
	NumDocs  int                      // documents in the collection
	TotalLen int64                    // total term occurrences
	AvgLen   float64                  // mean field length
	DocFreq  map[textkit.TermID]int   // documents containing the term
	CollFreq map[textkit.TermID]int64 // total occurrences of the term
}

// collectionProb returns the smoothed collection language-model
// probability p(t|C) with a small floor so log never sees zero.
func (s *FieldStats) collectionProb(t textkit.TermID) float64 {
	if s.TotalLen == 0 {
		return 1e-9
	}
	c := float64(s.CollFreq[t])
	p := c / float64(s.TotalLen)
	floor := 0.5 / float64(s.TotalLen)
	if p < floor {
		return floor
	}
	return p
}

// IDF returns the paper's inverse document frequency
// log(N / df(t)), flooring df at 1 so unseen terms stay finite.
func (s *FieldStats) IDF(t textkit.TermID) float64 {
	df := s.DocFreq[t]
	if df < 1 {
		df = 1
	}
	return math.Log(float64(s.NumDocs) / float64(df))
}

// Stats bundles the per-field collection statistics.
type Stats struct {
	Body  FieldStats
	Title FieldStats
}

// ComputeStats scans document sets (typically one slice per party) and
// accumulates global field statistics. In the real protocol these
// aggregates are assembled from non-private per-party summaries; here the
// computation is centralized because the quantities themselves are the
// same either way.
func ComputeStats(parties ...[]*textkit.Document) *Stats {
	st := &Stats{
		Body:  FieldStats{DocFreq: make(map[textkit.TermID]int), CollFreq: make(map[textkit.TermID]int64)},
		Title: FieldStats{DocFreq: make(map[textkit.TermID]int), CollFreq: make(map[textkit.TermID]int64)},
	}
	accumulate := func(fs *FieldStats, tv textkit.TermVector) {
		fs.NumDocs++
		for term, c := range tv {
			fs.DocFreq[term]++
			fs.CollFreq[term] += int64(c)
			fs.TotalLen += int64(c)
		}
	}
	for _, docs := range parties {
		for _, d := range docs {
			accumulate(&st.Body, d.BodyCounts())
			accumulate(&st.Title, d.TitleCounts())
		}
	}
	if st.Body.NumDocs > 0 {
		st.Body.AvgLen = float64(st.Body.TotalLen) / float64(st.Body.NumDocs)
		st.Title.AvgLen = float64(st.Title.TotalLen) / float64(st.Title.NumDocs)
	}
	return st
}

// Vector extracts the paper's 16-dimensional feature vector for a query
// against one document represented by its two fields. qTerms should be
// the query's unique terms.
func Vector(qTerms []textkit.TermID, body, title Field, stats *Stats, p Params) []float64 {
	out := make([]float64, Dim)
	fieldVector(out[:fieldFeatures], qTerms, body, &stats.Body, p)
	fieldVector(out[fieldFeatures:], qTerms, title, &stats.Title, p)
	return out
}

// fieldVector fills one 8-feature block.
func fieldVector(out []float64, qTerms []textkit.TermID, f Field, fs *FieldStats, p Params) {
	length := float64(f.Length())
	out[FeatLen] = length
	if length == 0 {
		// Degenerate field: every TF-dependent feature is zero and the
		// LMIR log-likelihoods fall back to pure collection probability.
		length = 1
	}
	unique := float64(f.Unique())
	var tfSum, idfSum, tfidfSum, bm25, abs, dir, jm float64
	for _, t := range qTerms {
		count := f.Count(t)
		tf := count / length // the paper's TF_{i,j}(t,d) = TC/L
		idf := fs.IDF(t)
		pc := fs.collectionProb(t)

		tfSum += tf
		idfSum += idf
		tfidfSum += tf * idf
		// Paper's BM25 (Section III-B): IDF * TF * (k1+1) / (TF + k1).
		bm25 += idf * tf * (p.K1 + 1) / (tf + p.K1)
		// LMIR.ABS: absolute discounting.
		disc := count - p.DeltaABS
		if disc < 0 {
			disc = 0
		}
		abs += math.Log(disc/length + p.DeltaABS*unique/length*pc + tiny)
		// LMIR.DIR: Dirichlet prior smoothing.
		dir += math.Log((count + p.MuDIR*pc) / (length + p.MuDIR))
		// LMIR.JM: Jelinek-Mercer interpolation.
		jm += math.Log((1-p.LambdaJM)*count/length + p.LambdaJM*pc)
	}
	out[FeatTF] = tfSum
	out[FeatIDF] = idfSum
	out[FeatTFIDF] = tfidfSum
	out[FeatBM25] = bm25
	out[FeatLMIRABS] = abs
	out[FeatLMIRDIR] = dir
	out[FeatLMIRJM] = jm
}

// tiny keeps LMIR.ABS finite when both the discounted count and the
// collection probability vanish.
const tiny = 1e-12

// Normalizer rescales feature vectors to zero mean and unit variance,
// fitted on a training set. Linear models trained with SGD need this —
// raw features mix scales from single digits (TF) to thousands (length).
type Normalizer struct {
	Mean  []float64
	Scale []float64 // reciprocal standard deviation (0 for constant dims)
}

// FitNormalizer computes per-dimension mean and scale from vectors.
func FitNormalizer(vectors [][]float64) *Normalizer {
	if len(vectors) == 0 {
		return &Normalizer{}
	}
	d := len(vectors[0])
	n := &Normalizer{Mean: make([]float64, d), Scale: make([]float64, d)}
	for _, v := range vectors {
		for i, x := range v {
			n.Mean[i] += x
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(vectors))
	}
	for _, v := range vectors {
		for i, x := range v {
			dlt := x - n.Mean[i]
			n.Scale[i] += dlt * dlt
		}
	}
	for i := range n.Scale {
		sd := math.Sqrt(n.Scale[i] / float64(len(vectors)))
		if sd > 1e-12 {
			n.Scale[i] = 1 / sd
		} else {
			n.Scale[i] = 0
		}
	}
	return n
}

// Apply normalizes v in place and returns it.
func (n *Normalizer) Apply(v []float64) []float64 {
	if len(n.Mean) == 0 {
		return v
	}
	for i := range v {
		if i >= len(n.Mean) {
			break
		}
		v[i] = (v[i] - n.Mean[i]) * n.Scale[i]
	}
	return v
}

// ApplyAll normalizes every vector in place.
func (n *Normalizer) ApplyAll(vectors [][]float64) {
	for _, v := range vectors {
		n.Apply(v)
	}
}

// normalizerMagic guards serialized normalizers.
const normalizerMagic = uint32(0x4E524D31) // "NRM1"

// ErrCorruptNormalizer marks unreadable persisted normalizers.
var ErrCorruptNormalizer = errors.New("features: corrupt serialized normalizer")

// WriteTo serializes the normalizer (dimension, means, scales). A model
// is only usable together with the normalizer it was trained with, so
// both are persisted side by side.
func (n *Normalizer) WriteTo(w io.Writer) (int64, error) {
	var written int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := write(normalizerMagic); err != nil {
		return written, err
	}
	if err := write(uint64(len(n.Mean))); err != nil {
		return written, err
	}
	if err := write(n.Mean); err != nil {
		return written, err
	}
	if err := write(n.Scale); err != nil {
		return written, err
	}
	return written, nil
}

// ReadNormalizer reconstructs a normalizer serialized with WriteTo.
func ReadNormalizer(r io.Reader) (*Normalizer, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil || magic != normalizerMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptNormalizer)
	}
	var dim uint64
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil || dim > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dimension", ErrCorruptNormalizer)
	}
	n := &Normalizer{Mean: make([]float64, dim), Scale: make([]float64, dim)}
	if err := binary.Read(r, binary.LittleEndian, &n.Mean); err != nil {
		return nil, fmt.Errorf("%w: truncated means", ErrCorruptNormalizer)
	}
	if err := binary.Read(r, binary.LittleEndian, &n.Scale); err != nil {
		return nil, fmt.Errorf("%w: truncated scales", ErrCorruptNormalizer)
	}
	return n, nil
}
