package features

import (
	"errors"
	"math"
	"testing"

	"csfltr/internal/corpus"
	"csfltr/internal/textkit"
)

func TestFeatureNames(t *testing.T) {
	names := FeatureNames()
	if len(names) != Dim {
		t.Fatalf("got %d names, want %d", len(names), Dim)
	}
	if names[0] != "body.len" || names[8] != "title.len" || names[4] != "body.bm25" {
		t.Fatalf("unexpected layout: %v", names)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{K1: 0, MuDIR: 1, LambdaJM: 0.5, DeltaABS: 0.5},
		{K1: 1, MuDIR: 0, LambdaJM: 0.5, DeltaABS: 0.5},
		{K1: 1, MuDIR: 1, LambdaJM: 0, DeltaABS: 0.5},
		{K1: 1, MuDIR: 1, LambdaJM: 1, DeltaABS: 0.5},
		{K1: 1, MuDIR: 1, LambdaJM: 0.5, DeltaABS: 0},
		{K1: 1, MuDIR: 1, LambdaJM: 0.5, DeltaABS: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Fatalf("case %d: expected ErrBadParams, got %v", i, err)
		}
	}
}

// smallStats builds stats over two tiny documents for hand-checkable
// values.
func smallStats() (*Stats, *textkit.Document, *textkit.Document) {
	d1 := textkit.NewDocument(0, 0, []textkit.TermID{1}, []textkit.TermID{1, 1, 2, 3})
	d2 := textkit.NewDocument(1, 0, []textkit.TermID{2}, []textkit.TermID{2, 2, 2, 4})
	return ComputeStats([]*textkit.Document{d1, d2}), d1, d2
}

func TestComputeStats(t *testing.T) {
	st, _, _ := smallStats()
	if st.Body.NumDocs != 2 || st.Title.NumDocs != 2 {
		t.Fatalf("NumDocs body=%d title=%d", st.Body.NumDocs, st.Title.NumDocs)
	}
	if st.Body.TotalLen != 8 {
		t.Fatalf("body TotalLen = %d, want 8", st.Body.TotalLen)
	}
	if st.Body.AvgLen != 4 {
		t.Fatalf("body AvgLen = %v, want 4", st.Body.AvgLen)
	}
	if st.Body.DocFreq[2] != 2 || st.Body.DocFreq[1] != 1 {
		t.Fatalf("DocFreq wrong: %v", st.Body.DocFreq)
	}
	if st.Body.CollFreq[2] != 4 {
		t.Fatalf("CollFreq[2] = %d, want 4", st.Body.CollFreq[2])
	}
}

func TestIDFValues(t *testing.T) {
	st, _, _ := smallStats()
	// term 1 appears in 1 of 2 docs: IDF = ln 2.
	if got := st.Body.IDF(1); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("IDF(1) = %v, want ln2", got)
	}
	// term 2 in both docs: IDF = 0.
	if got := st.Body.IDF(2); got != 0 {
		t.Fatalf("IDF(2) = %v, want 0", got)
	}
	// unseen term: df floored at 1.
	if got := st.Body.IDF(99); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("IDF(unseen) = %v, want ln2", got)
	}
}

func TestExactFieldCounts(t *testing.T) {
	tv := textkit.TermVector{1: 3, 2: 1}
	f := ExactField(tv)
	if f.Count(1) != 3 || f.Count(2) != 1 || f.Count(9) != 0 {
		t.Fatal("ExactField counts wrong")
	}
	if f.Length() != 4 || f.Unique() != 2 {
		t.Fatalf("Length=%d Unique=%d", f.Length(), f.Unique())
	}
}

func TestFuncFieldClampsNegative(t *testing.T) {
	f := FuncField(func(textkit.TermID) float64 { return -2.5 }, 10, 5)
	if f.Count(1) != 0 {
		t.Fatal("negative estimates must clamp to 0")
	}
	if f.Length() != 10 || f.Unique() != 5 {
		t.Fatal("metadata wrong")
	}
}

func TestVectorHandComputed(t *testing.T) {
	st, d1, _ := smallStats()
	p := DefaultParams()
	q := []textkit.TermID{1}
	v := Vector(q, ExactField(d1.BodyCounts()), ExactField(d1.TitleCounts()), st, p)
	if len(v) != Dim {
		t.Fatalf("len = %d", len(v))
	}
	if v[FeatLen] != 4 {
		t.Fatalf("body len feature = %v, want 4", v[FeatLen])
	}
	// TF = 2/4 = 0.5.
	if math.Abs(v[FeatTF]-0.5) > 1e-12 {
		t.Fatalf("body tf = %v, want 0.5", v[FeatTF])
	}
	if math.Abs(v[FeatIDF]-math.Ln2) > 1e-12 {
		t.Fatalf("body idf = %v, want ln2", v[FeatIDF])
	}
	if math.Abs(v[FeatTFIDF]-0.5*math.Ln2) > 1e-12 {
		t.Fatalf("body tfidf = %v", v[FeatTFIDF])
	}
	// BM25 = idf * tf*(k1+1)/(tf+k1) = ln2 * 0.5*2.2/1.7.
	wantBM25 := math.Ln2 * 0.5 * 2.2 / 1.7
	if math.Abs(v[FeatBM25]-wantBM25) > 1e-12 {
		t.Fatalf("body bm25 = %v, want %v", v[FeatBM25], wantBM25)
	}
	// LMIR.DIR = log((2 + 2000*p(1|C)) / (4 + 2000)); p(1|C) = 2/8.
	wantDIR := math.Log((2 + 2000*0.25) / (4 + 2000))
	if math.Abs(v[FeatLMIRDIR]-wantDIR) > 1e-9 {
		t.Fatalf("body lmir.dir = %v, want %v", v[FeatLMIRDIR], wantDIR)
	}
	// LMIR.JM = log(0.9*2/4 + 0.1*0.25).
	wantJM := math.Log(0.9*0.5 + 0.1*0.25)
	if math.Abs(v[FeatLMIRJM]-wantJM) > 1e-9 {
		t.Fatalf("body lmir.jm = %v, want %v", v[FeatLMIRJM], wantJM)
	}
	// LMIR.ABS = log((2-0.7)/4 + 0.7*(3/4)*0.25) (unique=3).
	wantABS := math.Log(1.3/4 + 0.7*0.75*0.25 + 1e-12)
	if math.Abs(v[FeatLMIRABS]-wantABS) > 1e-9 {
		t.Fatalf("body lmir.abs = %v, want %v", v[FeatLMIRABS], wantABS)
	}
	// Title of d1 is [1]: title TF = 1/1 = 1.
	if v[fieldFeatures+FeatLen] != 1 || math.Abs(v[fieldFeatures+FeatTF]-1) > 1e-12 {
		t.Fatalf("title features wrong: %v", v[fieldFeatures:])
	}
}

// TestVectorMonotonicity: a document containing the query terms should
// out-feature a same-length document without them on TF-derived features.
func TestVectorMonotonicity(t *testing.T) {
	st, d1, d2 := smallStats()
	p := DefaultParams()
	q := []textkit.TermID{1} // term 1 only in d1
	v1 := Vector(q, ExactField(d1.BodyCounts()), ExactField(d1.TitleCounts()), st, p)
	v2 := Vector(q, ExactField(d2.BodyCounts()), ExactField(d2.TitleCounts()), st, p)
	for _, idx := range []int{FeatTF, FeatTFIDF, FeatBM25, FeatLMIRDIR, FeatLMIRJM} {
		if v1[idx] <= v2[idx] {
			t.Fatalf("feature %d should favour the matching document: %v vs %v", idx, v1[idx], v2[idx])
		}
	}
}

func TestVectorEmptyField(t *testing.T) {
	st, d1, _ := smallStats()
	empty := ExactField(textkit.TermVector{})
	v := Vector([]textkit.TermID{1}, empty, ExactField(d1.TitleCounts()), st, DefaultParams())
	for i := 0; i < fieldFeatures; i++ {
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			t.Fatalf("empty field produced non-finite feature %d: %v", i, v[i])
		}
	}
	if v[FeatLen] != 0 || v[FeatTF] != 0 || v[FeatBM25] != 0 {
		t.Fatalf("empty field TF features should be 0: %v", v[:fieldFeatures])
	}
}

func TestVectorNoQueryTerms(t *testing.T) {
	st, d1, _ := smallStats()
	v := Vector(nil, ExactField(d1.BodyCounts()), ExactField(d1.TitleCounts()), st, DefaultParams())
	for i, x := range v {
		if i%fieldFeatures == FeatLen {
			continue
		}
		if x != 0 {
			t.Fatalf("feature %d should be 0 with no query terms: %v", i, x)
		}
	}
}

// TestVectorFiniteOnCorpus: every feature over a real synthetic corpus
// must be finite.
func TestVectorFiniteOnCorpus(t *testing.T) {
	c, err := corpus.Generate(corpus.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(c.Parties[0].Docs, c.Parties[1].Docs, c.Parties[2].Docs, c.Parties[3].Docs)
	p := DefaultParams()
	for _, q := range c.Parties[0].Queries {
		for _, d := range c.Parties[1].Docs[:20] {
			v := Vector(q.UniqueTerms(), ExactField(d.BodyCounts()), ExactField(d.TitleCounts()), st, p)
			for i, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("non-finite feature %d for q%d d%d: %v", i, q.ID, d.ID, x)
				}
			}
		}
	}
}

func TestNormalizer(t *testing.T) {
	vecs := [][]float64{
		{1, 10, 5},
		{3, 10, 7},
		{5, 10, 9},
	}
	n := FitNormalizer(vecs)
	if n.Scale[1] != 0 {
		t.Fatal("constant dimension should have zero scale")
	}
	cp := make([][]float64, len(vecs))
	for i, v := range vecs {
		cp[i] = append([]float64(nil), v...)
	}
	n.ApplyAll(cp)
	// Column 0: mean 3, sd sqrt(8/3).
	var mean0, var0 float64
	for _, v := range cp {
		mean0 += v[0]
	}
	mean0 /= 3
	for _, v := range cp {
		var0 += (v[0] - mean0) * (v[0] - mean0)
	}
	var0 /= 3
	if math.Abs(mean0) > 1e-12 || math.Abs(var0-1) > 1e-9 {
		t.Fatalf("normalized column 0: mean=%v var=%v", mean0, var0)
	}
	for _, v := range cp {
		if v[1] != 0 {
			t.Fatal("constant column should normalize to 0")
		}
	}
}

func TestNormalizerEmpty(t *testing.T) {
	n := FitNormalizer(nil)
	v := []float64{1, 2}
	if got := n.Apply(v); got[0] != 1 || got[1] != 2 {
		t.Fatal("empty normalizer must be identity")
	}
}

// TestExactVsFuncFieldEquivalence: wrapping exact counts in a FuncField
// must give identical vectors — the property that lets the federated path
// reuse the same extractor.
func TestExactVsFuncFieldEquivalence(t *testing.T) {
	st, d1, _ := smallStats()
	p := DefaultParams()
	q := []textkit.TermID{1, 2, 3}
	bodyTV := d1.BodyCounts()
	exact := Vector(q, ExactField(bodyTV), ExactField(d1.TitleCounts()), st, p)
	oracle := FuncField(func(t textkit.TermID) float64 { return float64(bodyTV[t]) },
		bodyTV.Total(), bodyTV.Unique())
	viaFunc := Vector(q, oracle, ExactField(d1.TitleCounts()), st, p)
	for i := range exact {
		if math.Abs(exact[i]-viaFunc[i]) > 1e-12 {
			t.Fatalf("feature %d differs: %v vs %v", i, exact[i], viaFunc[i])
		}
	}
}
