package features

import (
	"bytes"
	"errors"
	"testing"
)

func TestNormalizerSerializationRoundTrip(t *testing.T) {
	n := FitNormalizer([][]float64{
		{1, 10, 5},
		{3, 10, 9},
	})
	var buf bytes.Buffer
	written, err := n.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
	}
	got, err := ReadNormalizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mean) != 3 || len(got.Scale) != 3 {
		t.Fatalf("round trip lost dimensions: %+v", got)
	}
	for i := range n.Mean {
		if got.Mean[i] != n.Mean[i] || got.Scale[i] != n.Scale[i] {
			t.Fatalf("dimension %d differs", i)
		}
	}
	// Applying both gives identical results.
	a := n.Apply([]float64{2, 10, 7})
	b := got.Apply([]float64{2, 10, 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored normalizer applies differently")
		}
	}
}

func TestReadNormalizerCorrupt(t *testing.T) {
	n := FitNormalizer([][]float64{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := [][]byte{
		nil,
		data[:2],
		data[:len(data)-4],
		func() []byte { d := append([]byte{}, data...); d[0] ^= 1; return d }(),
	}
	for i, d := range cases {
		if _, err := ReadNormalizer(bytes.NewReader(d)); !errors.Is(err, ErrCorruptNormalizer) {
			t.Fatalf("case %d: want ErrCorruptNormalizer, got %v", i, err)
		}
	}
}

func TestApplyShortVector(t *testing.T) {
	n := FitNormalizer([][]float64{{0, 0, 0}, {2, 4, 6}})
	// Shorter vector than the normalizer: only covered dims transformed.
	v := n.Apply([]float64{1})
	if len(v) != 1 {
		t.Fatalf("Apply changed length: %v", v)
	}
	// Longer vector: extra dims untouched.
	v = n.Apply([]float64{1, 2, 3, 99})
	if v[3] != 99 {
		t.Fatalf("extra dimension modified: %v", v)
	}
}

func TestCollectionProbEmptyStats(t *testing.T) {
	fs := &FieldStats{}
	if p := fs.collectionProb(1); p <= 0 {
		t.Fatalf("empty-collection probability must stay positive: %v", p)
	}
}
