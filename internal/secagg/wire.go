package secagg

import (
	"encoding/binary"
	"fmt"
	"math"

	"csfltr/internal/wire"
)

// Wire shapes. Both messages ride the shared internal/wire frame
// ([version][flags][uvarint raw length][payload]) so they flow through
// the same codec, accounting and fuzz surface as every other transport
// payload. Payload layouts:
//
//	MaskedUpdate: [tag 0x01][uvarint round][uvarint party][uvarint n]
//	              [8-byte little-endian ring element x n]
//	SeedReveal:   [tag 0x02][uvarint round][uvarint from]
//	              [uvarint dropped][32-byte seed]
//
// Ring elements are fixed-width on purpose: masked words are uniform in
// Z_{2^64}, so varints would cost more than they save and a
// length-correlated encoding would leak magnitude structure the masking
// just erased.
const (
	tagMaskedUpdate = 0x01
	tagSeedReveal   = 0x02
)

// MaskedUpdate is one party's masked quantized model delta for a round
// — the only form in which training updates ever cross the wire.
type MaskedUpdate struct {
	Round uint64
	Party uint32
	Vec   []uint64
}

// Marshal appends the framed encoding to dst.
func (u *MaskedUpdate) Marshal(dst []byte) []byte {
	payload := make([]byte, 0, 1+3+binary.MaxVarintLen64+8*len(u.Vec))
	payload = append(payload, tagMaskedUpdate)
	payload = wire.AppendUvarint(payload, u.Round)
	payload = wire.AppendUvarint(payload, uint64(u.Party))
	payload = wire.AppendUvarint(payload, uint64(len(u.Vec)))
	for _, v := range u.Vec {
		payload = binary.LittleEndian.AppendUint64(payload, v)
	}
	return wire.Pack(dst, payload)
}

// Size returns the framed (uncompressed) encoded size — the number the
// transport byte accounting records per submission.
func (u *MaskedUpdate) Size() int64 {
	n := 1 + uvarintLen(u.Round) + uvarintLen(uint64(u.Party)) +
		uvarintLen(uint64(len(u.Vec))) + 8*len(u.Vec)
	return wire.PackedSize(n)
}

// UnmarshalMaskedUpdate decodes a framed masked update.
func UnmarshalMaskedUpdate(data []byte) (*MaskedUpdate, error) {
	payload, err := wire.Unpack(data)
	if err != nil {
		return nil, err
	}
	if len(payload) < 1 || payload[0] != tagMaskedUpdate {
		return nil, fmt.Errorf("%w: not a masked update", wire.ErrMalformed)
	}
	rest := payload[1:]
	round, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	party, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	if party > math.MaxUint32 {
		return nil, fmt.Errorf("%w: party index out of range", wire.ErrMalformed)
	}
	n, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	// Bound n before multiplying so 8*n cannot wrap around uint64 and
	// before anything is allocated for it.
	if n > uint64(len(rest))/8 || uint64(len(rest)) != 8*n {
		return nil, fmt.Errorf("%w: vector length mismatch", wire.ErrMalformed)
	}
	vec := make([]uint64, n)
	for i := range vec {
		vec[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	return &MaskedUpdate{Round: round, Party: uint32(party), Vec: vec}, nil
}

// SeedReveal is a survivor's disclosure of the per-round pairwise seed
// it shares with a dropped party, enabling the server to cancel the
// dropped party's residual masks. Only the already-burned round seed
// travels — never a long-lived DH secret.
type SeedReveal struct {
	Round   uint64
	From    uint32
	Dropped uint32
	Seed    Seed
}

// Marshal appends the framed encoding to dst.
func (r *SeedReveal) Marshal(dst []byte) []byte {
	payload := make([]byte, 0, 1+3*binary.MaxVarintLen64+len(r.Seed))
	payload = append(payload, tagSeedReveal)
	payload = wire.AppendUvarint(payload, r.Round)
	payload = wire.AppendUvarint(payload, uint64(r.From))
	payload = wire.AppendUvarint(payload, uint64(r.Dropped))
	payload = append(payload, r.Seed[:]...)
	return wire.Pack(dst, payload)
}

// Size returns the framed (uncompressed) encoded size.
func (r *SeedReveal) Size() int64 {
	n := 1 + uvarintLen(r.Round) + uvarintLen(uint64(r.From)) +
		uvarintLen(uint64(r.Dropped)) + len(r.Seed)
	return wire.PackedSize(n)
}

// UnmarshalSeedReveal decodes a framed seed reveal.
func UnmarshalSeedReveal(data []byte) (*SeedReveal, error) {
	payload, err := wire.Unpack(data)
	if err != nil {
		return nil, err
	}
	if len(payload) < 1 || payload[0] != tagSeedReveal {
		return nil, fmt.Errorf("%w: not a seed reveal", wire.ErrMalformed)
	}
	rest := payload[1:]
	round, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	from, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	dropped, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	if from > math.MaxUint32 || dropped > math.MaxUint32 {
		return nil, fmt.Errorf("%w: party index out of range", wire.ErrMalformed)
	}
	out := &SeedReveal{Round: round, From: uint32(from), Dropped: uint32(dropped)}
	if len(rest) != len(out.Seed) {
		return nil, fmt.Errorf("%w: seed length mismatch", wire.ErrMalformed)
	}
	copy(out.Seed[:], rest)
	return out, nil
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
