package secagg

import (
	"bytes"
	"testing"

	"csfltr/internal/wire"
)

func TestMaskedUpdateRoundTrip(t *testing.T) {
	in := &MaskedUpdate{Round: 300, Party: 2, Vec: []uint64{0, 1, ^uint64(0), 0xdeadbeefcafef00d}}
	frame := in.Marshal(nil)
	if got := in.Size(); got < int64(len(frame)) {
		t.Fatalf("Size %d < actual frame %d", got, len(frame))
	}
	out, err := UnmarshalMaskedUpdate(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != in.Round || out.Party != in.Party || len(out.Vec) != len(in.Vec) {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.Vec {
		if out.Vec[i] != in.Vec[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
	// Empty vector round-trips too.
	empty := &MaskedUpdate{Round: 1, Party: 0}
	out, err = UnmarshalMaskedUpdate(empty.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Vec) != 0 {
		t.Fatalf("empty vector decoded as %d words", len(out.Vec))
	}
}

func TestSeedRevealRoundTrip(t *testing.T) {
	in := &SeedReveal{Round: 7, From: 3, Dropped: 1}
	for i := range in.Seed {
		in.Seed[i] = byte(i * 5)
	}
	frame := in.Marshal(nil)
	if got := in.Size(); got < int64(len(frame)) {
		t.Fatalf("Size %d < actual frame %d", got, len(frame))
	}
	out, err := UnmarshalSeedReveal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	good := (&MaskedUpdate{Round: 1, Party: 0, Vec: []uint64{1, 2}}).Marshal(nil)
	reveal := (&SeedReveal{Round: 1, From: 0, Dropped: 1}).Marshal(nil)
	cases := [][]byte{
		nil,
		{},
		{99},                         // bad version
		good[:len(good)-3],           // truncated vector
		reveal[:len(reveal)-1],       // truncated seed
		wire.Pack(nil, []byte{0x7f}), // unknown tag
		wire.Pack(nil, nil),          // empty payload
	}
	for i, c := range cases {
		if _, err := UnmarshalMaskedUpdate(c); err == nil {
			t.Fatalf("case %d: masked update decode should fail", i)
		}
		if _, err := UnmarshalSeedReveal(c); err == nil {
			t.Fatalf("case %d: seed reveal decode should fail", i)
		}
	}
	// Cross-type: a reveal frame is not a masked update and vice versa.
	if _, err := UnmarshalMaskedUpdate(reveal); err == nil {
		t.Fatal("reveal frame decoded as masked update")
	}
	if _, err := UnmarshalSeedReveal(good); err == nil {
		t.Fatal("masked update frame decoded as seed reveal")
	}
}

// FuzzSecAggDecode drives both decoders with arbitrary bytes: they must
// never panic, and anything they accept must re-encode canonically to
// an equivalent frame.
func FuzzSecAggDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&MaskedUpdate{Round: 3, Party: 1, Vec: []uint64{5, 6, 7}}).Marshal(nil))
	sr := &SeedReveal{Round: 2, From: 0, Dropped: 1}
	sr.Seed[0] = 0xAA
	f.Add(sr.Marshal(nil))
	f.Add(wire.Pack(nil, []byte{tagMaskedUpdate, 1, 0, 200}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if u, err := UnmarshalMaskedUpdate(data); err == nil {
			again, err := UnmarshalMaskedUpdate(u.Marshal(nil))
			if err != nil {
				t.Fatalf("re-encode of accepted update rejected: %v", err)
			}
			if again.Round != u.Round || again.Party != u.Party || len(again.Vec) != len(u.Vec) {
				t.Fatal("masked update not canonical under re-encode")
			}
		}
		if r, err := UnmarshalSeedReveal(data); err == nil {
			again, err := UnmarshalSeedReveal(r.Marshal(nil))
			if err != nil {
				t.Fatalf("re-encode of accepted reveal rejected: %v", err)
			}
			if *again != *r {
				t.Fatal("seed reveal not canonical under re-encode")
			}
		}
	})
}

func TestWireFrameCompatibility(t *testing.T) {
	// secagg frames are ordinary wire frames: Unpack must accept them.
	u := &MaskedUpdate{Round: 1, Party: 2, Vec: make([]uint64, 200)}
	frame := u.Marshal(nil)
	payload, err := wire.Unpack(frame)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != tagMaskedUpdate {
		t.Fatal("payload does not start with the masked-update tag")
	}
	// A 200-word all-zero vector compresses well below its raw size.
	if len(frame) >= 8*200 {
		t.Fatalf("compressible frame not compressed: %d bytes", len(frame))
	}
	if !bytes.Equal(payload[1:2], []byte{1}) { // round=1 uvarint
		t.Fatal("unexpected payload layout")
	}
}
