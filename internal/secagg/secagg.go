// Package secagg implements masked secure aggregation for federated
// LTR training rounds (Bonawitz-style pairwise additive masking,
// specialised to the cross-silo setting of DHSA / Heikkilä et al.).
//
// The protocol, per training round:
//
//  1. Every pair of parties (i, j) already shares a 32-byte DH secret
//     from internal/keyex. Both derive the same per-round pairwise seed
//     with RoundSeed (domain-separated SHA-256 of the shared secret and
//     the round number) and expand it into a mask vector with an
//     AES-256-CTR keystream.
//  2. Each party quantizes its local model delta onto a fixed-point
//     grid and lifts it into the modular ring Z_{2^64} (uint64
//     wraparound arithmetic), then adds the pairwise mask streams with
//     antisymmetric signs: party i adds the (i,j) stream when i < j and
//     subtracts it when i > j. Summed over all parties the streams
//     cancel term by term, bit-exactly, so the server recovers exactly
//     the sum of the quantized updates while each individual submission
//     is keystream-uniform noise.
//  3. N-of-N fast path: if every active party submits, the Aggregator
//     just sums the vectors. t-of-N dropout recovery: when a party
//     drops mid-round, each surviving submitter reveals the per-round
//     pairwise seed it shares with the dropped party; the Aggregator
//     re-expands those streams and removes the dropped party's residual
//     masks from the sum. Only the already-burned round seeds travel —
//     never the long-lived DH secrets — so past and future rounds stay
//     protected.
//
// The ring is Z_{2^64} rather than a prime field so that "exact
// cancellation" is native machine arithmetic: quantized updates are
// two's-complement int64 values reinterpreted as uint64, masks are
// uniform uint64 words, and the server-side sum is plain wraparound
// addition. Quantization (Config.Scale, Config.Clip) bounds the
// per-weight dequantization error by 0.5/Scale per party.
package secagg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Errors returned by this package.
var (
	ErrConfig     = errors.New("secagg: invalid config")
	ErrDimension  = errors.New("secagg: vector dimension mismatch")
	ErrParty      = errors.New("secagg: party index out of range")
	ErrInactive   = errors.New("secagg: party not active this round")
	ErrDuplicate  = errors.New("secagg: duplicate submission")
	ErrIncomplete = errors.New("secagg: round incomplete")
	ErrNoReveal   = errors.New("secagg: missing seed reveal for recovery")
)

// roundSeedLabel domain-separates round-seed derivation from every
// other use of the pairwise DH secrets (e.g. keyex.Seal boxes).
const roundSeedLabel = "csfltr/secagg/round-seed/v1"

// RawUpdate is a plaintext local model update (weights then bias). It
// is the taint source of the secure-aggregation privacy boundary: a
// RawUpdate must never reach a wire struct or log — only its masked
// form (Masker.Mask) may leave the party.
//
//csfltr:private
type RawUpdate []float64

// Config fixes the fixed-point grid shared by every party in a round.
// All parties must use identical values or the server-side sum is
// meaningless.
type Config struct {
	// Scale is the fixed-point multiplier: a weight w is quantized to
	// round(w*Scale). Larger scales mean finer grids; the per-party
	// round-trip error is bounded by 0.5/Scale per weight.
	Scale float64
	// Clip bounds |w| before quantization so a single party cannot
	// overflow the ring even with adversarial weights. With P parties
	// the aggregate magnitude is bounded by P*Clip*Scale, which must
	// stay well inside int64.
	Clip float64
}

// DefaultConfig returns the grid used by the federation layer: 2^-24
// resolution with weights clipped to ±65536. At that geometry even
// 2^13 parties stay 10 bits clear of int64 overflow.
func DefaultConfig() Config {
	return Config{Scale: 1 << 24, Clip: 1 << 16}
}

// Validate rejects grids that are degenerate or can overflow the ring.
func (c Config) Validate() error {
	if !(c.Scale > 0) || math.IsInf(c.Scale, 0) {
		return fmt.Errorf("%w: scale %v", ErrConfig, c.Scale)
	}
	if !(c.Clip > 0) || math.IsInf(c.Clip, 0) {
		return fmt.Errorf("%w: clip %v", ErrConfig, c.Clip)
	}
	if c.Clip*c.Scale >= math.MaxInt64/4 {
		return fmt.Errorf("%w: clip*scale %v too close to ring size", ErrConfig, c.Clip*c.Scale)
	}
	return nil
}

// ErrorBound returns the worst-case per-weight dequantization error of
// an aggregate over parties submissions (each contributes at most half
// a grid step).
func (c Config) ErrorBound(parties int) float64 {
	if parties < 1 {
		parties = 1
	}
	return 0.5 / c.Scale // after dividing the summed error by parties
}

// Quantize lifts a plaintext update onto the fixed-point grid inside
// the ring: each weight is clipped to ±Clip, scaled, rounded to the
// nearest integer and reinterpreted as a two's-complement ring element.
// The result is still sensitive (it is a deterministic function of the
// raw gradient) — only masking sanitizes it for the wire.
func Quantize(u RawUpdate, cfg Config) []uint64 {
	out := make([]uint64, len(u))
	for i, v := range u {
		if v > cfg.Clip {
			v = cfg.Clip
		} else if v < -cfg.Clip {
			v = -cfg.Clip
		} else if math.IsNaN(v) {
			v = 0
		}
		out[i] = uint64(int64(math.Round(v * cfg.Scale)))
	}
	return out
}

// Dequantize maps an aggregated ring vector back to float64 averages
// over parties submissions: two's-complement reinterpretation, then
// descale and divide.
func Dequantize(sum []uint64, cfg Config, parties int) []float64 {
	if parties < 1 {
		parties = 1
	}
	out := make([]float64, len(sum))
	d := cfg.Scale * float64(parties)
	for i, v := range sum {
		out[i] = float64(int64(v)) / d
	}
	return out
}

// Seed is a 32-byte per-round pairwise mask seed. Revealing one burns
// exactly one (pair, round) mask stream and nothing else.
type Seed [32]byte

// RoundSeed derives the pairwise mask seed for a round from a shared
// DH secret: SHA-256(label || 0 || secret || round). Both endpoints of
// a pair derive the identical seed without communicating.
func RoundSeed(shared []byte, round uint64) Seed {
	h := sha256.New()
	h.Write([]byte(roundSeedLabel))
	h.Write([]byte{0})
	h.Write(shared)
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], round)
	h.Write(rb[:])
	var s Seed
	h.Sum(s[:0])
	return s
}

// maskStream expands a round seed into dim uniform ring elements with
// an AES-256-CTR keystream (zero IV — each seed is used for exactly one
// stream, so the counter never repeats under a key).
func maskStream(seed Seed, dim int) []uint64 {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		panic("secagg: aes.NewCipher with 32-byte key: " + err.Error()) // unreachable
	}
	var iv [aes.BlockSize]byte
	stream := cipher.NewCTR(block, iv[:])
	buf := make([]byte, 8*dim)
	stream.XORKeyStream(buf, buf)
	out := make([]uint64, dim)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out
}

// Masker holds one party's view of the pairwise secrets and produces
// its masked submissions.
type Masker struct {
	index  int
	shared [][]byte // shared[j] = DH secret with party j; nil at index
}

// NewMasker builds the masker for party index given its row of the
// pairwise secret matrix (shared[j] is the secret with party j; the
// own-index entry is ignored).
func NewMasker(index int, shared [][]byte) (*Masker, error) {
	if index < 0 || index >= len(shared) {
		return nil, fmt.Errorf("%w: index %d of %d", ErrParty, index, len(shared))
	}
	row := make([][]byte, len(shared))
	for j, s := range shared {
		if j == index {
			continue
		}
		if len(s) == 0 {
			return nil, fmt.Errorf("%w: missing shared secret with party %d", ErrConfig, j)
		}
		row[j] = append([]byte(nil), s...)
	}
	return &Masker{index: index, shared: row}, nil
}

// Parties returns the federation size the masker was built for.
func (m *Masker) Parties() int { return len(m.shared) }

// Mask adds this round's pairwise mask streams to a quantized update
// and returns the server-safe vector. active[j] marks the parties
// expected to submit this round; masks are only exchanged among them.
// Signs are antisymmetric — party i adds the (i,j) stream when i < j
// and subtracts it when j < i — so the streams vanish from the sum over
// all active submitters. Masking is the sanitization step of the
// secure-aggregation privacy boundary: the output is keystream-uniform
// and carries no recoverable information about the input without the
// complement masks.
//
//csfltr:sanitizes
func (m *Masker) Mask(round uint64, q []uint64, active []bool) ([]uint64, error) {
	if len(active) != len(m.shared) {
		return nil, fmt.Errorf("%w: active %d parties, masker has %d", ErrDimension, len(active), len(m.shared))
	}
	if !active[m.index] {
		return nil, fmt.Errorf("%w: party %d", ErrInactive, m.index)
	}
	out := make([]uint64, len(q))
	copy(out, q)
	for j := range m.shared {
		if j == m.index || !active[j] {
			continue
		}
		stream := maskStream(RoundSeed(m.shared[j], round), len(q))
		if m.index < j {
			for k, s := range stream {
				out[k] += s
			}
		} else {
			for k, s := range stream {
				out[k] -= s
			}
		}
	}
	return out, nil
}

// Reveal returns the per-round pairwise seed this party shares with a
// dropped party, for dropout recovery. Only the single (pair, round)
// seed leaves the party — the long-lived DH secret stays put, so every
// other round's masks remain secure.
func (m *Masker) Reveal(round uint64, dropped int) (Seed, error) {
	if dropped < 0 || dropped >= len(m.shared) {
		return Seed{}, fmt.Errorf("%w: index %d of %d", ErrParty, dropped, len(m.shared))
	}
	if dropped == m.index {
		return Seed{}, fmt.Errorf("%w: cannot reveal own seed", ErrParty)
	}
	return RoundSeed(m.shared[dropped], round), nil
}

// Aggregator is the server side of one round: it sums masked vectors
// blind and, after dropout recovery, exposes the exact ring sum of the
// quantized updates.
type Aggregator struct {
	dim    int
	active []bool // roster expected at round start (mask structure)
	got    []bool // parties whose vectors have arrived
	sum    []uint64
}

// NewAggregator starts a round over dim-weight vectors with the given
// active roster (the same slice contents every Masker.Mask call used).
func NewAggregator(dim int, active []bool) (*Aggregator, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrDimension, dim)
	}
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: no active parties", ErrConfig)
	}
	return &Aggregator{
		dim:    dim,
		active: append([]bool(nil), active...),
		got:    make([]bool, len(active)),
		sum:    make([]uint64, dim),
	}, nil
}

// Add accumulates one party's masked vector into the blind sum.
func (a *Aggregator) Add(party int, vec []uint64) error {
	if party < 0 || party >= len(a.active) {
		return fmt.Errorf("%w: index %d of %d", ErrParty, party, len(a.active))
	}
	if !a.active[party] {
		return fmt.Errorf("%w: party %d", ErrInactive, party)
	}
	if a.got[party] {
		return fmt.Errorf("%w: party %d", ErrDuplicate, party)
	}
	if len(vec) != a.dim {
		return fmt.Errorf("%w: got %d weights, want %d", ErrDimension, len(vec), a.dim)
	}
	for i, v := range vec {
		a.sum[i] += v
	}
	a.got[party] = true
	return nil
}

// Submitted reports whether a party's vector has been accumulated.
func (a *Aggregator) Submitted(party int) bool {
	return party >= 0 && party < len(a.got) && a.got[party]
}

// RemoveDropped cancels the residual mask structure of a party that was
// active (so the submitters mixed masks with it) but never submitted.
// reveals must hold, for every party that did submit, the (pair, round)
// seed it shares with the dropped party — exactly what each survivor's
// Masker.Reveal returns. The residual contribution of survivor j is
// sign(j, d) * stream(seed_jd); subtracting it for every survivor
// leaves the sum as if party d had never been in the roster.
func (a *Aggregator) RemoveDropped(dropped int, reveals map[int]Seed) error {
	if dropped < 0 || dropped >= len(a.active) {
		return fmt.Errorf("%w: index %d of %d", ErrParty, dropped, len(a.active))
	}
	if !a.active[dropped] {
		return fmt.Errorf("%w: party %d", ErrInactive, dropped)
	}
	if a.got[dropped] {
		return fmt.Errorf("%w: party %d submitted; refusing to unmask it", ErrDuplicate, dropped)
	}
	// Validate every needed reveal before touching the sum, so a failed
	// recovery leaves the aggregator intact for a retry.
	for j := range a.active {
		if a.got[j] {
			if _, ok := reveals[j]; !ok {
				return fmt.Errorf("%w: survivor %d for dropped %d", ErrNoReveal, j, dropped)
			}
		}
	}
	for j := range a.active {
		if !a.got[j] {
			continue
		}
		stream := maskStream(reveals[j], a.dim)
		if j < dropped {
			// Survivor j added the (j, d) stream; take it back out.
			for k, s := range stream {
				a.sum[k] -= s
			}
		} else {
			for k, s := range stream {
				a.sum[k] += s
			}
		}
	}
	a.active[dropped] = false
	return nil
}

// Sum returns the exact ring sum of the quantized updates and the
// number of contributing parties. It fails while any active party has
// neither submitted nor been removed — releasing a partially-masked sum
// would leak mask material.
func (a *Aggregator) Sum() ([]uint64, int, error) {
	count := 0
	for i, act := range a.active {
		if !act {
			continue
		}
		if !a.got[i] {
			return nil, 0, fmt.Errorf("%w: party %d still outstanding", ErrIncomplete, i)
		}
		count++
	}
	out := make([]uint64, a.dim)
	copy(out, a.sum)
	return out, count, nil
}
