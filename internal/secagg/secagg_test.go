package secagg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"csfltr/internal/keyex"
)

// testSecrets builds a deterministic pairwise secret matrix without the
// DH ceremony: secret(i,j) = SHA-256-ish bytes derived from the pair.
// Cheap and stable, which is what the golden tests need.
func testSecrets(n int) [][][]byte {
	secrets := make([][][]byte, n)
	for i := range secrets {
		secrets[i] = make([][]byte, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := make([]byte, 32)
			for k := range s {
				s[k] = byte(17*i + 31*j + 7*k + 3)
			}
			secrets[i][j] = s
			secrets[j][i] = s
		}
	}
	return secrets
}

func maskers(t *testing.T, secrets [][][]byte) []*Masker {
	t.Helper()
	out := make([]*Masker, len(secrets))
	for i := range secrets {
		m, err := NewMasker(i, secrets[i])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Scale: 0, Clip: 1},
		{Scale: -1, Clip: 1},
		{Scale: math.Inf(1), Clip: 1},
		{Scale: 1, Clip: 0},
		{Scale: 1, Clip: math.NaN()},
		{Scale: 1 << 40, Clip: 1 << 40}, // overflows the ring headroom
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: config %+v should be rejected", i, c)
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(11))
	u := make(RawUpdate, 64)
	for i := range u {
		u[i] = rng.NormFloat64() * 3
	}
	q := Quantize(u, cfg)
	back := Dequantize(q, cfg, 1)
	bound := cfg.ErrorBound(1)
	for i := range u {
		if diff := math.Abs(back[i] - u[i]); diff > bound {
			t.Fatalf("weight %d: error %g exceeds bound %g", i, diff, bound)
		}
	}
}

func TestQuantizeClipsAndSanitizesNaN(t *testing.T) {
	cfg := Config{Scale: 1 << 10, Clip: 4}
	q := Quantize(RawUpdate{1e9, -1e9, math.NaN(), 0.5}, cfg)
	back := Dequantize(q, cfg, 1)
	if back[0] != 4 || back[1] != -4 {
		t.Fatalf("clip failed: %v", back[:2])
	}
	if back[2] != 0 {
		t.Fatalf("NaN should quantize to 0, got %v", back[2])
	}
	if back[3] != 0.5 {
		t.Fatalf("0.5 should round-trip exactly at power-of-two scale, got %v", back[3])
	}
}

func TestRoundSeedDomainSeparation(t *testing.T) {
	secret := []byte("0123456789abcdef0123456789abcdef")
	a := RoundSeed(secret, 1)
	if a != RoundSeed(secret, 1) {
		t.Fatal("RoundSeed is not deterministic")
	}
	if a == RoundSeed(secret, 2) {
		t.Fatal("different rounds must yield different seeds")
	}
	other := []byte("fedcba9876543210fedcba9876543210")
	if a == RoundSeed(other, 1) {
		t.Fatal("different secrets must yield different seeds")
	}
}

// TestMaskCancellationExact is the core ring property: summing every
// active party's masked vector gives bit-for-bit the sum of the
// quantized updates, with no tolerance.
func TestMaskCancellationExact(t *testing.T) {
	const n, dim = 5, 33
	cfg := DefaultConfig()
	ms := maskers(t, testSecrets(n))
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	rng := rand.New(rand.NewSource(7))
	want := make([]uint64, dim)
	agg, err := NewAggregator(dim, active)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		u := make(RawUpdate, dim)
		for k := range u {
			u[k] = rng.NormFloat64()
		}
		q := Quantize(u, cfg)
		for k, v := range q {
			want[k] += v
		}
		masked, err := ms[i].Mask(42, q, active)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(i, masked); err != nil {
			t.Fatal(err)
		}
	}
	got, count, err := agg.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ring sum differs at %d: got %#x want %#x", k, got[k], want[k])
		}
	}
}

// TestGoldenMaskCancellation pins the exact masked values of a tiny
// fixed instance so any change to seed derivation, stream expansion or
// sign convention is caught as a golden mismatch, not just as a
// property failure.
func TestGoldenMaskCancellation(t *testing.T) {
	const n, dim = 3, 4
	ms := maskers(t, testSecrets(n))
	active := []bool{true, true, true}
	q := [][]uint64{
		{1, 2, 3, 4},
		{10, 20, 30, 40},
		{100, 200, 300, 400},
	}
	var masked [][]uint64
	for i := 0; i < n; i++ {
		v, err := ms[i].Mask(9, q[i], active)
		if err != nil {
			t.Fatal(err)
		}
		masked = append(masked, v)
	}
	golden := [][]uint64{
		{0x9a01725fb7d71163, 0x9cfe3bbe1a67a58b, 0x3ef85bbfa49a29d0, 0xd141580cd757d562},
		{0xd5182362f707d350, 0x684dfeac7a39c0ce, 0x47a2720caf6a184f, 0x1f52eb240651f65e},
		{0x90e66a3d51211bbc, 0xfab3c5956b5e9a85, 0x79653233abfbbf2e, 0xf6bbccf225635fc},
	}
	for i := range masked {
		for k := range masked[i] {
			if masked[i][k] != golden[i][k] {
				t.Fatalf("party %d word %d: got %#x, want golden %#x\nfull: %#x",
					i, k, masked[i][k], golden[i][k], masked)
			}
		}
	}
	// And the golden vectors still cancel to the plaintext sum.
	for k := 0; k < dim; k++ {
		var sum uint64
		for i := range masked {
			sum += masked[i][k]
		}
		want := q[0][k] + q[1][k] + q[2][k]
		if sum != want {
			t.Fatalf("word %d: golden sum %#x, want %#x", k, sum, want)
		}
	}
}

// TestMaskedVectorLooksUniform sanity-checks that a masked submission
// is keystream-noise-like: over many words, bits are balanced. This is
// the testable shadow of "server-visible payload is indistinguishable
// from noise".
func TestMaskedVectorLooksUniform(t *testing.T) {
	const n, dim = 2, 4096
	ms := maskers(t, testSecrets(n))
	active := []bool{true, true}
	q := make([]uint64, dim) // all-zero plaintext: output is pure mask
	masked, err := ms[0].Mask(1, q, active)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, w := range masked {
		for b := 0; b < 64; b++ {
			ones += int(w >> b & 1)
		}
	}
	total := 64 * dim
	// Binomial(262144, 0.5): mean 131072, sd 256. 6 sigma ≈ 1536.
	if d := ones - total/2; d < -1536 || d > 1536 {
		t.Fatalf("bit balance off: %d ones of %d", ones, total)
	}
	// The same zero plaintext under a different round must produce a
	// different mask stream.
	again, err := ms[0].Mask(2, q, active)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for k := range masked {
		if masked[k] == again[k] {
			same++
		}
	}
	if same > dim/64 {
		t.Fatalf("rounds 1 and 2 share %d of %d mask words", same, dim)
	}
}

// TestDropoutRecovery drops one party after the others already masked
// against it, recovers via seed reveals and checks the exact sum of the
// survivors' updates comes out.
func TestDropoutRecovery(t *testing.T) {
	const n, dim, round = 4, 17, 5
	cfg := DefaultConfig()
	ms := maskers(t, testSecrets(n))
	active := []bool{true, true, true, true}
	const dropped = 2

	rng := rand.New(rand.NewSource(3))
	want := make([]uint64, dim)
	agg, err := NewAggregator(dim, active)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == dropped {
			continue // masked against everyone, but the vector never arrives
		}
		u := make(RawUpdate, dim)
		for k := range u {
			u[k] = rng.NormFloat64()
		}
		q := Quantize(u, cfg)
		for k, v := range q {
			want[k] += v
		}
		masked, err := ms[i].Mask(round, q, active)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(i, masked); err != nil {
			t.Fatal(err)
		}
	}
	// Sum must refuse while the dropped party is unresolved.
	if _, _, err := agg.Sum(); err == nil {
		t.Fatal("Sum should fail with an outstanding party")
	}
	// Survivors reveal their pairwise round seeds with the dropped party.
	reveals := map[int]Seed{}
	for i := 0; i < n; i++ {
		if i == dropped {
			continue
		}
		s, err := ms[i].Reveal(round, dropped)
		if err != nil {
			t.Fatal(err)
		}
		reveals[i] = s
	}
	// Recovery with a missing reveal must fail before mutating anything.
	short := map[int]Seed{0: reveals[0]}
	if err := agg.RemoveDropped(dropped, short); err == nil {
		t.Fatal("RemoveDropped should require a reveal from every submitter")
	}
	if err := agg.RemoveDropped(dropped, reveals); err != nil {
		t.Fatal(err)
	}
	got, count, err := agg.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if count != n-1 {
		t.Fatalf("count = %d, want %d", count, n-1)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("recovered sum differs at %d: got %#x want %#x", k, got[k], want[k])
		}
	}
	// A second removal of the same party must fail (it is inactive now).
	if err := agg.RemoveDropped(dropped, reveals); err == nil {
		t.Fatal("double removal should fail")
	}
}

func TestAggregatorGuards(t *testing.T) {
	active := []bool{true, false, true}
	agg, err := NewAggregator(2, active)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(1, []uint64{1, 2}); err == nil {
		t.Fatal("inactive party accepted")
	}
	if err := agg.Add(5, []uint64{1, 2}); err == nil {
		t.Fatal("out-of-range party accepted")
	}
	if err := agg.Add(0, []uint64{1}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if err := agg.Add(0, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(0, []uint64{1, 2}); err == nil {
		t.Fatal("duplicate submission accepted")
	}
	if err := agg.RemoveDropped(0, nil); err == nil {
		t.Fatal("unmasking a submitted party should be refused")
	}
	if _, err := NewAggregator(0, active); err == nil {
		t.Fatal("zero dimension accepted")
	}
	if _, err := NewAggregator(2, []bool{false, false}); err == nil {
		t.Fatal("empty roster accepted")
	}
}

func TestMaskerGuards(t *testing.T) {
	secrets := testSecrets(3)
	if _, err := NewMasker(-1, secrets[0]); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := NewMasker(3, secrets[0]); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	hole := [][]byte{nil, nil, {1}}
	if _, err := NewMasker(0, hole); err == nil {
		t.Fatal("missing pairwise secret accepted")
	}
	m, err := NewMasker(0, secrets[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mask(1, []uint64{1}, []bool{true}); err == nil {
		t.Fatal("roster size mismatch accepted")
	}
	if _, err := m.Mask(1, []uint64{1}, []bool{false, true, true}); err == nil {
		t.Fatal("masking while inactive accepted")
	}
	if _, err := m.Reveal(1, 0); err == nil {
		t.Fatal("revealing own seed accepted")
	}
	if _, err := m.Reveal(1, 9); err == nil {
		t.Fatal("out-of-range reveal accepted")
	}
}

// TestKeyexIntegration runs the mask-cancellation property over real
// DH-derived pairwise secrets from the seeded keyex ceremony.
func TestKeyexIntegration(t *testing.T) {
	const n, dim = 3, 8
	secrets, err := keyex.AgreePairwise(n, keyex.SeededEntropy(99))
	if err != nil {
		t.Fatal(err)
	}
	ms := maskers(t, secrets)
	active := []bool{true, true, true}
	cfg := DefaultConfig()
	agg, err := NewAggregator(dim, active)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, dim)
	for i := 0; i < n; i++ {
		u := make(RawUpdate, dim)
		for k := range u {
			u[k] = float64(i*dim+k) / 16
		}
		q := Quantize(u, cfg)
		for k, v := range q {
			want[k] += v
		}
		masked, err := ms[i].Mask(0, q, active)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(i, masked); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := agg.Sum()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ring sum differs at %d", k)
		}
	}
}

func BenchmarkMask(b *testing.B) {
	for _, dim := range []int{64, 1024} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			ms := make([]*Masker, 4)
			secrets := testSecrets(4)
			for i := range ms {
				m, err := NewMasker(i, secrets[i])
				if err != nil {
					b.Fatal(err)
				}
				ms[i] = m
			}
			active := []bool{true, true, true, true}
			q := make([]uint64, dim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ms[0].Mask(uint64(i), q, active); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
