package corpus

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"csfltr/internal/textkit"
)

func TestTSVRoundTrip(t *testing.T) {
	c, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := c.Parties[0]
	var docBuf, qBuf bytes.Buffer
	if err := WriteDocsTSV(&docBuf, p.Docs); err != nil {
		t.Fatal(err)
	}
	if err := WriteQueriesTSV(&qBuf, p.Queries); err != nil {
		t.Fatal(err)
	}
	docs, err := ReadDocsTSV(&docBuf)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := ReadQueriesTSV(&qBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(p.Docs) || len(queries) != len(p.Queries) {
		t.Fatalf("round trip lost entries: %d/%d docs, %d/%d queries",
			len(docs), len(p.Docs), len(queries), len(p.Queries))
	}
	for i, d := range docs {
		orig := p.Docs[i]
		if d.ID != orig.ID || d.Topic != orig.Topic || len(d.Body) != len(orig.Body) || len(d.Title) != len(orig.Title) {
			t.Fatalf("doc %d metadata differs", i)
		}
		for j := range d.Body {
			if d.Body[j] != orig.Body[j] {
				t.Fatalf("doc %d body term %d differs", i, j)
			}
		}
	}
	for i, q := range queries {
		orig := p.Queries[i]
		if q.ID != orig.ID || q.Topic != orig.Topic || len(q.Terms) != len(orig.Terms) {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestReadDocsTSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "nope\tnope\n"},
		{"missing fields", "doc_id\ttopic\ttitle_terms\tbody_terms\n0\t1\n"},
		{"bad id", "doc_id\ttopic\ttitle_terms\tbody_terms\nX\t1\t2\t3\n"},
		{"bad topic", "doc_id\ttopic\ttitle_terms\tbody_terms\n0\tX\t2\t3\n"},
		{"bad term", "doc_id\ttopic\ttitle_terms\tbody_terms\n0\t1\t2\tX Y\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadDocsTSV(strings.NewReader(tc.in)); !errors.Is(err, ErrBadTSV) {
				t.Fatalf("want ErrBadTSV, got %v", err)
			}
		})
	}
}

func TestReadQueriesTSVErrors(t *testing.T) {
	cases := []string{
		"",
		"nope\n",
		"query_id\ttopic\tterms\n0\t1\n",
		"query_id\ttopic\tterms\nX\t1\t2\n",
	}
	for i, in := range cases {
		if _, err := ReadQueriesTSV(strings.NewReader(in)); !errors.Is(err, ErrBadTSV) {
			t.Fatalf("case %d: want ErrBadTSV, got %v", i, err)
		}
	}
}

func TestReadDocsTSVEmptyTitle(t *testing.T) {
	in := "doc_id\ttopic\ttitle_terms\tbody_terms\n0\t-1\t\t5 5 6\n"
	docs, err := ReadDocsTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].TitleLen() != 0 || docs[0].Len() != 3 {
		t.Fatalf("docs = %+v", docs[0])
	}
}

// TestFromPartiesMatchesGenerate: assembling a corpus from a generated
// corpus's own raw parts must reproduce identical ground truth.
func TestFromPartiesMatchesGenerate(t *testing.T) {
	cfg := TestConfig()
	orig, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([][]*textkit.Document, len(orig.Parties))
	queries := make([][]*textkit.Query, len(orig.Parties))
	for i, p := range orig.Parties {
		docs[i] = p.Docs
		queries[i] = p.Queries
	}
	rebuilt, err := FromParties(cfg, docs, queries)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range orig.Parties {
		for _, q := range orig.Parties[pi].Queries {
			qref := QueryRef{Party: pi, Query: q.ID}
			a := orig.GroundTruth(qref)
			b := rebuilt.GroundTruth(qref)
			if len(a) != len(b) {
				t.Fatalf("%v: ground truth sizes differ", qref)
			}
			for i := range a {
				if a[i].Ref != b[i].Ref || a[i].Label != b[i].Label {
					t.Fatalf("%v rank %d: %+v vs %+v", qref, i, a[i], b[i])
				}
			}
		}
	}
}

func TestFromPartiesValidation(t *testing.T) {
	cfg := TestConfig()
	doc := textkit.NewDocument(0, -1, nil, []textkit.TermID{1, 2})
	q := textkit.NewQuery(0, -1, []textkit.TermID{1})
	if _, err := FromParties(cfg, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty input should error")
	}
	if _, err := FromParties(cfg,
		[][]*textkit.Document{{doc}}, [][]*textkit.Query{}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := FromParties(cfg,
		[][]*textkit.Document{{}}, [][]*textkit.Query{{q}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty party should error")
	}
	if _, err := FromParties(cfg,
		[][]*textkit.Document{{doc}}, [][]*textkit.Query{{}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("no queries should error")
	}
	badDoc := textkit.NewDocument(5, -1, nil, []textkit.TermID{1})
	if _, err := FromParties(cfg,
		[][]*textkit.Document{{badDoc}}, [][]*textkit.Query{{q}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("non-dense doc ids should error")
	}
}
