// Package corpus generates the synthetic cross-partitioned evaluation
// corpus of the CS-F-LTR reproduction and computes the ground-truth
// relevance labels used for training and evaluation.
//
// The paper evaluates on sampled subsets of MS MARCO: 4 parties, each
// with 200 queries and 36,400 documents of roughly 1000 terms, with the
// official top-100 ranking as ground truth (top-10 labelled "highly
// relevant" = 2, top-11..100 "relevant" = 1, everything else 0). MS MARCO
// cannot be redistributed with this repository, so — per the substitution
// note in DESIGN.md — this package synthesizes a corpus with the same
// statistical structure the algorithms consume:
//
//   - Zipfian term frequencies (the explicit assumption behind the
//     paper's Theorems 2-4);
//   - topical clustering: each document and query belongs to one topic,
//     making a small subset of documents relevant to a query and the
//     rest irrelevant, with relevance crossing party boundaries;
//   - ground-truth top-100 per query computed by exact BM25 over the
//     *global* (cross-party) corpus, then mapped to labels 2/1/0 exactly
//     as in Section VI-A.
//
// Party data quality can be skewed (label noise) to reproduce the
// Table-I situation where parties A/B hold better data than C/D.
package corpus

import (
	"errors"
	"fmt"
	"math/rand"

	"csfltr/internal/index"
	"csfltr/internal/textkit"
	"csfltr/internal/zipf"
)

// Errors returned by this package.
var (
	ErrBadConfig = errors.New("corpus: invalid configuration")
)

// Config controls corpus synthesis. The zero value is not usable; start
// from DefaultConfig or PaperConfig.
type Config struct {
	Seed            int64   // PRNG seed; everything is deterministic given it
	NumParties      int     // N in the paper (4)
	QueriesPerParty int     // 200 in the paper
	DocsPerParty    int     // 36,400 in the paper
	VocabSize       int     // synthetic vocabulary size
	NumTopics       int     // topical clusters
	DocLen          int     // body terms per document (~1000 in the paper)
	TitleLen        int     // title terms per document
	QueryMinTerms   int     // min distinct terms per query (M in Def. 2)
	QueryMaxTerms   int     // max distinct terms per query
	TopicMix        float64 // fraction of body terms drawn from the topic distribution
	TitleTopicMix   float64 // fraction of title terms drawn from the topic distribution
	ZipfExponent    float64 // background term-frequency skew
	SalientPerTopic int     // size of each topic's salient-term set
	HighCut         int     // ground-truth rank cutoff for label 2 (10)
	RelevantCut     int     // ground-truth rank cutoff for label 1 (100)
	// LabelNoise[i] is the probability that a local label of party i is
	// corrupted (replaced by a random smaller label); nil means clean for
	// every party. Length must be 0 or NumParties.
	LabelNoise []float64
	// BM25K1 and BM25B are the ground-truth scorer parameters.
	BM25K1 float64
	BM25B  float64
}

// DefaultConfig returns a laptop-scale configuration preserving the
// paper's shape: 4 parties, topical Zipfian documents, 2/1/0 labels.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumParties:      4,
		QueriesPerParty: 30,
		DocsPerParty:    600,
		VocabSize:       8000,
		NumTopics:       24,
		DocLen:          220,
		TitleLen:        8,
		QueryMinTerms:   2,
		QueryMaxTerms:   5,
		TopicMix:        0.35,
		TitleTopicMix:   0.8,
		ZipfExponent:    1.05,
		SalientPerTopic: 60,
		HighCut:         10,
		RelevantCut:     100,
		BM25K1:          1.2,
		BM25B:           0.75,
	}
}

// PaperConfig returns the full paper-scale configuration (4 parties x 200
// queries x 36,400 documents of ~1000 terms). Generating it takes minutes
// and several GB; use it for headline benchmarks only.
func PaperConfig() Config {
	c := DefaultConfig()
	c.QueriesPerParty = 200
	c.DocsPerParty = 36400
	c.VocabSize = 60000
	c.NumTopics = 400
	c.DocLen = 1000
	c.SalientPerTopic = 80
	return c
}

// TestConfig returns a tiny configuration for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.QueriesPerParty = 8
	c.DocsPerParty = 120
	c.VocabSize = 2000
	c.NumTopics = 8
	c.DocLen = 80
	c.SalientPerTopic = 30
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.NumParties <= 0:
		return fmt.Errorf("%w: NumParties=%d", ErrBadConfig, c.NumParties)
	case c.QueriesPerParty <= 0:
		return fmt.Errorf("%w: QueriesPerParty=%d", ErrBadConfig, c.QueriesPerParty)
	case c.DocsPerParty <= 0:
		return fmt.Errorf("%w: DocsPerParty=%d", ErrBadConfig, c.DocsPerParty)
	case c.VocabSize < 100:
		return fmt.Errorf("%w: VocabSize=%d (need >= 100)", ErrBadConfig, c.VocabSize)
	case c.NumTopics <= 0:
		return fmt.Errorf("%w: NumTopics=%d", ErrBadConfig, c.NumTopics)
	case c.DocLen <= 0 || c.TitleLen < 0:
		return fmt.Errorf("%w: DocLen=%d TitleLen=%d", ErrBadConfig, c.DocLen, c.TitleLen)
	case c.QueryMinTerms <= 0 || c.QueryMaxTerms < c.QueryMinTerms:
		return fmt.Errorf("%w: query term range [%d,%d]", ErrBadConfig, c.QueryMinTerms, c.QueryMaxTerms)
	case c.TopicMix < 0 || c.TopicMix > 1 || c.TitleTopicMix < 0 || c.TitleTopicMix > 1:
		return fmt.Errorf("%w: topic mixes must be in [0,1]", ErrBadConfig)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("%w: ZipfExponent=%v", ErrBadConfig, c.ZipfExponent)
	case c.SalientPerTopic <= 0 || c.SalientPerTopic < c.QueryMaxTerms:
		return fmt.Errorf("%w: SalientPerTopic=%d must be >= QueryMaxTerms", ErrBadConfig, c.SalientPerTopic)
	case c.HighCut <= 0 || c.RelevantCut < c.HighCut:
		return fmt.Errorf("%w: cuts high=%d relevant=%d", ErrBadConfig, c.HighCut, c.RelevantCut)
	case len(c.LabelNoise) != 0 && len(c.LabelNoise) != c.NumParties:
		return fmt.Errorf("%w: LabelNoise length %d, want 0 or %d", ErrBadConfig, len(c.LabelNoise), c.NumParties)
	case c.BM25K1 <= 0 || c.BM25B < 0 || c.BM25B > 1:
		return fmt.Errorf("%w: BM25 params k1=%v b=%v", ErrBadConfig, c.BM25K1, c.BM25B)
	}
	for i, p := range c.LabelNoise {
		if p < 0 || p > 1 {
			return fmt.Errorf("%w: LabelNoise[%d]=%v", ErrBadConfig, i, p)
		}
	}
	return nil
}

// DocRef identifies a document globally: the owning party and the
// document's local index.
type DocRef struct {
	Party int
	Doc   int
}

// QueryRef identifies a query globally.
type QueryRef struct {
	Party int
	Query int
}

// Party holds one silo's private raw data.
type Party struct {
	Index   int
	Docs    []*textkit.Document
	Queries []*textkit.Query
}

// ScoredDoc is one entry of a ground-truth ranking.
type ScoredDoc struct {
	Ref   DocRef
	Score float64
	Label int
}

// Corpus is a fully generated cross-partitioned dataset with ground
// truth. Treat it as immutable after Generate.
type Corpus struct {
	Cfg     Config
	Parties []*Party

	// topics[t] is the salient-term set of topic t, ordered by topic rank.
	topics [][]textkit.TermID

	// truth[queryRef] is the ground-truth top-RelevantCut ranking.
	truth map[QueryRef][]ScoredDoc
	// labels[queryRef][docRef] caches nonzero ground-truth labels.
	labels map[QueryRef]map[DocRef]int
	// noisyLocal[party][queryIdx][docIdx] overrides for locally observed
	// labels under label noise (only entries that differ are stored).
	noisyLocal map[QueryRef]map[DocRef]int
}

// Generate synthesizes a corpus from cfg. The same cfg always yields an
// identical corpus.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Cfg:        cfg,
		truth:      make(map[QueryRef][]ScoredDoc),
		labels:     make(map[QueryRef]map[DocRef]int),
		noisyLocal: make(map[QueryRef]map[DocRef]int),
	}
	background, err := zipf.New(cfg.VocabSize, cfg.ZipfExponent)
	if err != nil {
		return nil, err
	}
	topicDist, err := zipf.New(cfg.SalientPerTopic, 1.0)
	if err != nil {
		return nil, err
	}

	// Topic salient sets: distinct terms sampled outside the very head of
	// the background distribution (the head behaves like stopwords).
	head := 50
	if head >= cfg.VocabSize/2 {
		head = cfg.VocabSize / 10
	}
	c.topics = make([][]textkit.TermID, cfg.NumTopics)
	for t := range c.topics {
		seen := make(map[textkit.TermID]struct{}, cfg.SalientPerTopic)
		set := make([]textkit.TermID, 0, cfg.SalientPerTopic)
		for len(set) < cfg.SalientPerTopic {
			id := textkit.TermID(head + rng.Intn(cfg.VocabSize-head))
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			set = append(set, id)
		}
		c.topics[t] = set
	}

	// Documents and queries, cross-partitioned over parties.
	c.Parties = make([]*Party, cfg.NumParties)
	for p := range c.Parties {
		party := &Party{Index: p}
		for d := 0; d < cfg.DocsPerParty; d++ {
			topic := rng.Intn(cfg.NumTopics)
			body := make([]textkit.TermID, cfg.DocLen)
			for i := range body {
				if rng.Float64() < cfg.TopicMix {
					body[i] = c.topics[topic][topicDist.Sample(rng)-1]
				} else {
					body[i] = textkit.TermID(background.Sample(rng) - 1)
				}
			}
			title := make([]textkit.TermID, cfg.TitleLen)
			for i := range title {
				if rng.Float64() < cfg.TitleTopicMix {
					title[i] = c.topics[topic][topicDist.Sample(rng)-1]
				} else {
					title[i] = textkit.TermID(background.Sample(rng) - 1)
				}
			}
			party.Docs = append(party.Docs, textkit.NewDocument(d, topic, title, body))
		}
		for q := 0; q < cfg.QueriesPerParty; q++ {
			topic := rng.Intn(cfg.NumTopics)
			k := cfg.QueryMinTerms + rng.Intn(cfg.QueryMaxTerms-cfg.QueryMinTerms+1)
			terms := make([]textkit.TermID, 0, k)
			seen := make(map[textkit.TermID]struct{}, k)
			for len(terms) < k {
				t := c.topics[topic][topicDist.Sample(rng)-1]
				if _, dup := seen[t]; dup {
					continue
				}
				seen[t] = struct{}{}
				terms = append(terms, t)
			}
			party.Queries = append(party.Queries, textkit.NewQuery(q, topic, terms))
		}
		c.Parties[p] = party
	}

	c.computeGroundTruth()
	c.applyLabelNoise(rng)
	return c, nil
}

// computeGroundTruth ranks every query against the global corpus by exact
// BM25 over document bodies (package index) and assigns 2/1/0 labels by
// rank cutoffs. Documents get dense global ids in (party, doc) order, so
// the index's ascending-id tie-break reproduces the (party, doc)
// tie-break deterministically.
func (c *Corpus) computeGroundTruth() {
	cfg := c.Cfg
	ix := index.New()
	for _, p := range c.Parties {
		for _, d := range p.Docs {
			// Errors are impossible here: ids are dense and unique by
			// construction.
			if err := ix.Add(p.Index*cfg.DocsPerParty+d.ID, d.BodyCounts()); err != nil {
				panic(err)
			}
		}
	}
	params := index.BM25Params{K1: cfg.BM25K1, B: cfg.BM25B}
	for _, p := range c.Parties {
		for _, q := range p.Queries {
			qref := QueryRef{Party: p.Index, Query: q.ID}
			hits := ix.SearchBM25(q.UniqueTerms(), cfg.RelevantCut, params)
			ranked := make([]ScoredDoc, len(hits))
			lbl := make(map[DocRef]int, len(hits))
			for i, h := range hits {
				ref := DocRef{Party: h.Doc / cfg.DocsPerParty, Doc: h.Doc % cfg.DocsPerParty}
				label := 1
				if i < cfg.HighCut {
					label = 2
				}
				ranked[i] = ScoredDoc{Ref: ref, Score: h.Score, Label: label}
				lbl[ref] = label
			}
			c.truth[qref] = ranked
			c.labels[qref] = lbl
		}
	}
}

// applyLabelNoise corrupts a fraction of each party's *locally observed*
// labels (ground truth itself stays intact): with probability
// LabelNoise[p], a local (query, doc) label is replaced by a strictly
// smaller one. This models parties with poorly curated judgments.
func (c *Corpus) applyLabelNoise(rng *rand.Rand) {
	if len(c.Cfg.LabelNoise) == 0 {
		return
	}
	for _, p := range c.Parties {
		noise := c.Cfg.LabelNoise[p.Index]
		if noise <= 0 {
			continue
		}
		for _, q := range p.Queries {
			qref := QueryRef{Party: p.Index, Query: q.ID}
			// Iterate the rank-ordered ground truth (not the label map):
			// map iteration order would make the corrupted set — and
			// therefore every downstream experiment — nondeterministic.
			for _, sd := range c.truth[qref] {
				if sd.Ref.Party != p.Index {
					continue // only locally observed pairs can be corrupted
				}
				if rng.Float64() < noise {
					m := c.noisyLocal[qref]
					if m == nil {
						m = make(map[DocRef]int)
						c.noisyLocal[qref] = m
					}
					m[sd.Ref] = rng.Intn(sd.Label) // strictly smaller label
				}
			}
		}
	}
}

// Label returns the true ground-truth label of (q, d): 2, 1 or 0.
func (c *Corpus) Label(q QueryRef, d DocRef) int {
	return c.labels[q][d]
}

// LocalLabel returns the label as *observed by the query's owner* for a
// local document pair — ground truth possibly corrupted by the party's
// label noise. For cross-party pairs it falls back to ground truth (used
// only by evaluation, never by training).
func (c *Corpus) LocalLabel(q QueryRef, d DocRef) int {
	if m, ok := c.noisyLocal[q]; ok {
		if v, ok := m[d]; ok {
			return v
		}
	}
	return c.labels[q][d]
}

// GroundTruth returns the ground-truth ranking (top RelevantCut) of q.
func (c *Corpus) GroundTruth(q QueryRef) []ScoredDoc { return c.truth[q] }

// Topics returns the salient-term sets (read-only; do not modify).
func (c *Corpus) Topics() [][]textkit.TermID { return c.topics }

// TotalDocs returns the number of documents across all parties.
func (c *Corpus) TotalDocs() int {
	n := 0
	for _, p := range c.Parties {
		n += len(p.Docs)
	}
	return n
}

// TotalQueries returns the number of queries across all parties.
func (c *Corpus) TotalQueries() int {
	n := 0
	for _, p := range c.Parties {
		n += len(p.Queries)
	}
	return n
}

// AverageDocLen returns the mean body length over the global corpus.
func (c *Corpus) AverageDocLen() float64 {
	n, sum := 0, 0
	for _, p := range c.Parties {
		for _, d := range p.Docs {
			sum += d.Len()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
