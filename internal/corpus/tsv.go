package corpus

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"csfltr/internal/textkit"
)

// ErrBadTSV marks malformed TSV input.
var ErrBadTSV = errors.New("corpus: malformed TSV")

// WriteDocsTSV writes one party's documents in the interchange format
// (doc_id, topic, space-separated title term ids, body term ids) that
// cmd/datagen emits and ReadDocsTSV consumes. The format exists so real
// corpora can be brought into the pipeline after external tokenization.
func WriteDocsTSV(w io.Writer, docs []*textkit.Document) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "doc_id\ttopic\ttitle_terms\tbody_terms"); err != nil {
		return err
	}
	for _, d := range docs {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\t%s\n",
			d.ID, d.Topic, joinTermIDs(d.Title), joinTermIDs(d.Body)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteQueriesTSV writes one party's queries (query_id, topic, term ids).
func WriteQueriesTSV(w io.Writer, queries []*textkit.Query) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "query_id\ttopic\tterms"); err != nil {
		return err
	}
	for _, q := range queries {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", q.ID, q.Topic, joinTermIDs(q.Terms)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDocsTSV parses documents written by WriteDocsTSV.
func ReadDocsTSV(r io.Reader) ([]*textkit.Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	var out []*textkit.Document
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 {
			if !strings.HasPrefix(text, "doc_id\t") {
				return nil, fmt.Errorf("%w: line 1: unexpected header %q", ErrBadTSV, text)
			}
			continue
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("%w: line %d: %d fields, want 4", ErrBadTSV, line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: doc_id: %v", ErrBadTSV, line, err)
		}
		topic, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: topic: %v", ErrBadTSV, line, err)
		}
		title, err := parseTermIDs(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: title: %v", ErrBadTSV, line, err)
		}
		body, err := parseTermIDs(fields[3])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: body: %v", ErrBadTSV, line, err)
		}
		out = append(out, textkit.NewDocument(id, topic, title, body))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTSV, err)
	}
	if line == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrBadTSV)
	}
	return out, nil
}

// ReadQueriesTSV parses queries written by WriteQueriesTSV.
func ReadQueriesTSV(r io.Reader) ([]*textkit.Query, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	var out []*textkit.Query
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 {
			if !strings.HasPrefix(text, "query_id\t") {
				return nil, fmt.Errorf("%w: line 1: unexpected header %q", ErrBadTSV, text)
			}
			continue
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: %d fields, want 3", ErrBadTSV, line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: query_id: %v", ErrBadTSV, line, err)
		}
		topic, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: topic: %v", ErrBadTSV, line, err)
		}
		terms, err := parseTermIDs(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: terms: %v", ErrBadTSV, line, err)
		}
		out = append(out, textkit.NewQuery(id, topic, terms))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTSV, err)
	}
	if line == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrBadTSV)
	}
	return out, nil
}

// joinTermIDs renders term ids space-separated.
func joinTermIDs(ids []textkit.TermID) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	return b.String()
}

// parseTermIDs parses a space-separated id list (empty string = no
// terms).
func parseTermIDs(s string) ([]textkit.TermID, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Fields(s)
	out := make([]textkit.TermID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = textkit.TermID(v)
	}
	return out, nil
}

// FromParties assembles a Corpus from externally supplied per-party
// documents and queries (e.g. loaded from TSV), computing ground truth
// with the given config's BM25 parameters and label cutoffs. The config's
// generator fields (vocab size, topics, lengths) are ignored; only
// NumParties, cutoffs, BM25 parameters and LabelNoise apply. DocsPerParty
// is derived from the largest party (it namespaces global doc ids in the
// ground-truth index).
func FromParties(cfg Config, docs [][]*textkit.Document, queries [][]*textkit.Query) (*Corpus, error) {
	if len(docs) == 0 || len(docs) != len(queries) {
		return nil, fmt.Errorf("%w: need equal non-empty docs/queries party lists", ErrBadConfig)
	}
	cfg.NumParties = len(docs)
	maxDocs := 0
	for _, ds := range docs {
		if len(ds) == 0 {
			return nil, fmt.Errorf("%w: a party has no documents", ErrBadConfig)
		}
		if len(ds) > maxDocs {
			maxDocs = len(ds)
		}
	}
	cfg.DocsPerParty = maxDocs
	c := &Corpus{
		Cfg:        cfg,
		truth:      make(map[QueryRef][]ScoredDoc),
		labels:     make(map[QueryRef]map[DocRef]int),
		noisyLocal: make(map[QueryRef]map[DocRef]int),
	}
	for i := range docs {
		if len(queries[i]) == 0 {
			return nil, fmt.Errorf("%w: party %d has no queries", ErrBadConfig, i)
		}
		for j, d := range docs[i] {
			if d.ID != j {
				return nil, fmt.Errorf("%w: party %d doc ids must be dense (got %d at %d)",
					ErrBadConfig, i, d.ID, j)
			}
		}
		for j, q := range queries[i] {
			if q.ID != j {
				return nil, fmt.Errorf("%w: party %d query ids must be dense", ErrBadConfig, i)
			}
		}
		c.Parties = append(c.Parties, &Party{Index: i, Docs: docs[i], Queries: queries[i]})
	}
	c.computeGroundTruth()
	// External corpora carry no label noise unless configured; the noise
	// RNG derives from the seed as in Generate.
	if len(cfg.LabelNoise) == len(docs) {
		c.applyLabelNoise(rand.New(rand.NewSource(cfg.Seed)))
	}
	return c, nil
}
