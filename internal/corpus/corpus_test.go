package corpus

import (
	"errors"
	"math"
	"testing"

	"csfltr/internal/textkit"
	"csfltr/internal/zipf"
)

func TestConfigValidate(t *testing.T) {
	ok := TestConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("TestConfig should validate: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig should validate: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("PaperConfig should validate: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumParties = 0 },
		func(c *Config) { c.QueriesPerParty = -1 },
		func(c *Config) { c.DocsPerParty = 0 },
		func(c *Config) { c.VocabSize = 10 },
		func(c *Config) { c.NumTopics = 0 },
		func(c *Config) { c.DocLen = 0 },
		func(c *Config) { c.TitleLen = -1 },
		func(c *Config) { c.QueryMinTerms = 0 },
		func(c *Config) { c.QueryMaxTerms = c.QueryMinTerms - 1 },
		func(c *Config) { c.TopicMix = 1.5 },
		func(c *Config) { c.TitleTopicMix = -0.1 },
		func(c *Config) { c.ZipfExponent = 0 },
		func(c *Config) { c.SalientPerTopic = 1 },
		func(c *Config) { c.HighCut = 0 },
		func(c *Config) { c.RelevantCut = c.HighCut - 1 },
		func(c *Config) { c.LabelNoise = []float64{0.5} },
		func(c *Config) { c.LabelNoise = []float64{0, 0, 0, 2} },
		func(c *Config) { c.BM25K1 = 0 },
		func(c *Config) { c.BM25B = 1.5 },
	}
	for i, mut := range mutations {
		c := TestConfig()
		mut(&c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("mutation %d: expected ErrBadConfig, got %v", i, err)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := TestConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parties) != cfg.NumParties {
		t.Fatalf("parties = %d", len(c.Parties))
	}
	if c.TotalDocs() != cfg.NumParties*cfg.DocsPerParty {
		t.Fatalf("docs = %d", c.TotalDocs())
	}
	if c.TotalQueries() != cfg.NumParties*cfg.QueriesPerParty {
		t.Fatalf("queries = %d", c.TotalQueries())
	}
	for _, p := range c.Parties {
		for i, d := range p.Docs {
			if d.ID != i {
				t.Fatalf("doc ids must be dense local indexes, got %d at %d", d.ID, i)
			}
			if d.Len() != cfg.DocLen || d.TitleLen() != cfg.TitleLen {
				t.Fatalf("doc lengths wrong: %d/%d", d.Len(), d.TitleLen())
			}
			if d.Topic < 0 || d.Topic >= cfg.NumTopics {
				t.Fatalf("doc topic out of range: %d", d.Topic)
			}
		}
		for i, q := range p.Queries {
			if q.ID != i {
				t.Fatalf("query ids must be dense")
			}
			n := len(q.UniqueTerms())
			if n < cfg.QueryMinTerms || n > cfg.QueryMaxTerms {
				t.Fatalf("query term count %d outside [%d,%d]", n, cfg.QueryMinTerms, cfg.QueryMaxTerms)
			}
		}
	}
	if got := c.AverageDocLen(); math.Abs(got-float64(cfg.DocLen)) > 1e-9 {
		t.Fatalf("avg doc len %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range a.Parties {
		for di, d := range a.Parties[pi].Docs {
			d2 := b.Parties[pi].Docs[di]
			if d.Topic != d2.Topic || len(d.Body) != len(d2.Body) {
				t.Fatal("corpora differ between identical-seed generations")
			}
			for i := range d.Body {
				if d.Body[i] != d2.Body[i] {
					t.Fatal("document bodies differ")
				}
			}
		}
	}
	qa := QueryRef{Party: 0, Query: 0}
	ra, rb := a.GroundTruth(qa), b.GroundTruth(qa)
	if len(ra) != len(rb) {
		t.Fatal("ground truth differs")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("ground-truth ranking differs")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := TestConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	same := true
	d1, d2 := a.Parties[0].Docs[0], b.Parties[0].Docs[0]
	for i := range d1.Body {
		if d1.Body[i] != d2.Body[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first document")
	}
}

func TestGroundTruthLabels(t *testing.T) {
	cfg := TestConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	anyHigh := false
	for _, p := range c.Parties {
		for _, q := range p.Queries {
			qref := QueryRef{Party: p.Index, Query: q.ID}
			ranked := c.GroundTruth(qref)
			if len(ranked) == 0 {
				t.Fatalf("query %v has empty ground truth", qref)
			}
			if len(ranked) > cfg.RelevantCut {
				t.Fatalf("ground truth longer than RelevantCut: %d", len(ranked))
			}
			for i, sd := range ranked {
				if i > 0 && sd.Score > ranked[i-1].Score {
					t.Fatal("ground truth not sorted by score")
				}
				wantLabel := 1
				if i < cfg.HighCut {
					wantLabel = 2
					anyHigh = true
				}
				if sd.Label != wantLabel {
					t.Fatalf("rank %d label %d, want %d", i, sd.Label, wantLabel)
				}
				if got := c.Label(qref, sd.Ref); got != wantLabel {
					t.Fatalf("Label lookup %d, want %d", got, wantLabel)
				}
			}
		}
	}
	if !anyHigh {
		t.Fatal("no highly-relevant labels generated at all")
	}
	// Unranked documents are label 0.
	if got := c.Label(QueryRef{0, 0}, DocRef{Party: 0, Doc: cfg.DocsPerParty - 1}); got != 0 && got != 1 && got != 2 {
		t.Fatalf("label out of domain: %d", got)
	}
}

// TestCrossPartyRelevance: the point of the cross-partitioned setting is
// that queries have relevant documents at *other* parties.
func TestCrossPartyRelevance(t *testing.T) {
	c, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cross := 0
	total := 0
	for _, p := range c.Parties {
		for _, q := range p.Queries {
			for _, sd := range c.GroundTruth(QueryRef{Party: p.Index, Query: q.ID}) {
				total++
				if sd.Ref.Party != p.Index {
					cross++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no relevant documents at all")
	}
	frac := float64(cross) / float64(total)
	// With 4 parties and uniform assignment ~3/4 of relevant docs should
	// be cross-party.
	if frac < 0.4 {
		t.Fatalf("only %.2f of relevant docs are cross-party; corpus is not cross-partitioned", frac)
	}
}

// TestTopicCoherence: ground-truth relevant documents should mostly share
// the query's topic — that is what makes the synthetic corpus a valid
// stand-in for topical web data.
func TestTopicCoherence(t *testing.T) {
	c, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	match, total := 0, 0
	for _, p := range c.Parties {
		for _, q := range p.Queries {
			ranked := c.GroundTruth(QueryRef{Party: p.Index, Query: q.ID})
			for i, sd := range ranked {
				if i >= c.Cfg.HighCut {
					break // only check the high-relevance head
				}
				doc := c.Parties[sd.Ref.Party].Docs[sd.Ref.Doc]
				if doc.Topic == q.Topic {
					match++
				}
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no head results")
	}
	if frac := float64(match) / float64(total); frac < 0.7 {
		t.Fatalf("only %.2f of top documents share the query topic", frac)
	}
}

// TestZipfianBodies: document term frequencies should be heavy-tailed;
// fitting a Zipf exponent to the aggregate counts should give something
// in a plausible range (the generator mixes topic and background).
func TestZipfianBodies(t *testing.T) {
	c, err := Generate(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[textkit.TermID]float64)
	for _, d := range c.Parties[0].Docs {
		for term, n := range d.BodyCounts() {
			counts[term] += float64(n)
		}
	}
	freqs := make([]float64, 0, len(counts))
	for _, f := range counts {
		freqs = append(freqs, f)
	}
	s := zipf.FitExponent(freqs)
	if s < 0.4 || s > 2.5 {
		t.Fatalf("aggregate term distribution not Zipf-like: fitted exponent %v", s)
	}
}

func TestLabelNoise(t *testing.T) {
	cfg := TestConfig()
	cfg.LabelNoise = []float64{0, 0, 1.0, 1.0} // parties 2,3 fully noisy
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clean party: local labels match ground truth.
	for _, q := range c.Parties[0].Queries {
		qref := QueryRef{Party: 0, Query: q.ID}
		for _, sd := range c.GroundTruth(qref) {
			if sd.Ref.Party != 0 {
				continue
			}
			if c.LocalLabel(qref, sd.Ref) != c.Label(qref, sd.Ref) {
				t.Fatal("clean party has corrupted local labels")
			}
		}
	}
	// Fully noisy party: every local positive label must be downgraded.
	downgraded, localPositives := 0, 0
	for _, q := range c.Parties[2].Queries {
		qref := QueryRef{Party: 2, Query: q.ID}
		for _, sd := range c.GroundTruth(qref) {
			if sd.Ref.Party != 2 {
				continue
			}
			localPositives++
			if c.LocalLabel(qref, sd.Ref) < c.Label(qref, sd.Ref) {
				downgraded++
			}
		}
	}
	if localPositives == 0 {
		t.Skip("no local positives for noisy party in this tiny corpus")
	}
	if downgraded != localPositives {
		t.Fatalf("noise=1.0 should downgrade all %d local positives, got %d", localPositives, downgraded)
	}
}

// TestLabelNoiseDeterministic: the corrupted-label set must be identical
// across generations with the same seed (regression test: iterating the
// label map while drawing noise made every downstream experiment
// nondeterministic).
func TestLabelNoiseDeterministic(t *testing.T) {
	cfg := TestConfig()
	cfg.LabelNoise = []float64{0.5, 0.5, 0.5, 0.5}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range a.Parties {
		for _, q := range p.Queries {
			qref := QueryRef{Party: pi, Query: q.ID}
			for _, sd := range a.GroundTruth(qref) {
				la := a.LocalLabel(qref, sd.Ref)
				lb := b.LocalLabel(qref, sd.Ref)
				if la != lb {
					t.Fatalf("local label of %v/%v differs across identical generations: %d vs %d",
						qref, sd.Ref, la, lb)
				}
			}
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	cfg := TestConfig()
	cfg.NumParties = 0
	if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("expected ErrBadConfig, got %v", err)
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
