// Package textkit is the text substrate of the CS-F-LTR reproduction: a
// tokenizer, an interning vocabulary with stable term IDs, term-count
// vectors, and the document/query model shared by every higher layer.
//
// Terms are identified by TermID (a dense uint64) so that the hash
// families in package hashutil can consume them directly; the string form
// is only needed at corpus-ingestion time.
package textkit

import (
	"sort"
	"strings"
	"sync"
	"unicode"
)

// TermID is the stable numeric identity of an interned term. IDs are
// assigned densely from 0 in interning order.
type TermID uint64

// Vocabulary interns terms to dense TermIDs. It is safe for concurrent
// use.
type Vocabulary struct {
	mu     sync.RWMutex
	byTerm map[string]TermID
	terms  []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{byTerm: make(map[string]TermID)}
}

// Intern returns the TermID for term, assigning a fresh one if unseen.
func (v *Vocabulary) Intern(term string) TermID {
	v.mu.RLock()
	id, ok := v.byTerm[term]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.byTerm[term]; ok {
		return id
	}
	id = TermID(len(v.terms))
	v.byTerm[term] = id
	v.terms = append(v.terms, term)
	return id
}

// InternAll interns every term of a token slice, preserving order.
func (v *Vocabulary) InternAll(tokens []string) []TermID {
	out := make([]TermID, len(tokens))
	for i, tok := range tokens {
		out[i] = v.Intern(tok)
	}
	return out
}

// Lookup returns the TermID of term without interning it.
func (v *Vocabulary) Lookup(term string) (TermID, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.byTerm[term]
	return id, ok
}

// Term returns the string form of id.
func (v *Vocabulary) Term(id TermID) (string, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(id) >= len(v.terms) {
		return "", false
	}
	return v.terms[id], true
}

// Size returns the number of interned terms.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.terms)
}

// Tokenize lowercases text and splits it into maximal runs of letters and
// digits; everything else is a separator. It is deliberately simple — the
// paper's pipeline needs bags of terms, not linguistic analysis.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// defaultStopwords is a small English stopword list; enough to keep
// synthetic and real corpora from being dominated by glue words.
var defaultStopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "from": {}, "had": {}, "has": {},
	"have": {}, "he": {}, "her": {}, "his": {}, "if": {}, "in": {},
	"is": {}, "it": {}, "its": {}, "not": {}, "of": {}, "on": {},
	"or": {}, "she": {}, "that": {}, "the": {}, "their": {}, "them": {},
	"they": {}, "this": {}, "to": {}, "was": {}, "were": {}, "which": {},
	"will": {}, "with": {}, "you": {},
}

// IsStopword reports whether token is in the built-in stopword list.
func IsStopword(token string) bool {
	_, ok := defaultStopwords[token]
	return ok
}

// FilterStopwords returns tokens with built-in stopwords removed.
func FilterStopwords(tokens []string) []string {
	out := tokens[:0:0]
	for _, tok := range tokens {
		if !IsStopword(tok) {
			out = append(out, tok)
		}
	}
	return out
}

// TermVector maps a term to its count within one document or query field.
// Raw term frequencies are exactly what the CS-F-LTR protocol exists to
// keep inside the silo (PAPER.md §IV): only sketched, DP-noised values
// derived from them may cross the federation boundary.
//
//csfltr:private
type TermVector map[TermID]int

// CountTerms builds a TermVector from a term sequence.
func CountTerms(ids []TermID) TermVector {
	tv := make(TermVector, len(ids))
	for _, id := range ids {
		tv[id]++
	}
	return tv
}

// Total returns the total number of term occurrences (the field length).
func (tv TermVector) Total() int {
	n := 0
	for _, c := range tv {
		n += c
	}
	return n
}

// Unique returns the number of distinct terms.
func (tv TermVector) Unique() int { return len(tv) }

// Counts returns the counts as a float slice in descending order; handy
// for Zipf fitting and F2 computations.
func (tv TermVector) Counts() []float64 {
	out := make([]float64, 0, len(tv))
	for _, c := range tv {
		out = append(out, float64(c))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Document is one retrievable unit: a title and a body, both term-ID
// sequences. ID is local to the owning party. Topic records the
// generating topic for synthetic corpora (-1 when unknown); it is ground
// truth only and never visible to the algorithms under test.
//
// A document's raw term sequences are silo-private: Title and Body
// must never be marshalled, logged, or sent across the federation
// transport. ID and Topic are local bookkeeping (the paper's Definition
// 2 treats document identity and lengths as non-private), so they may
// appear in error messages and diagnostics.
type Document struct {
	ID    int
	Topic int
	//csfltr:private
	Title []TermID
	//csfltr:private
	Body []TermID

	titleCounts TermVector
	bodyCounts  TermVector
	countsOnce  sync.Once
}

// NewDocument builds a document and leaves count vectors to be computed
// lazily on first use.
func NewDocument(id, topic int, title, body []TermID) *Document {
	return &Document{ID: id, Topic: topic, Title: title, Body: body}
}

func (d *Document) initCounts() {
	d.countsOnce.Do(func() {
		d.titleCounts = CountTerms(d.Title)
		d.bodyCounts = CountTerms(d.Body)
	})
}

// TitleCounts returns the cached title term-count vector.
func (d *Document) TitleCounts() TermVector {
	d.initCounts()
	return d.titleCounts
}

// BodyCounts returns the cached body term-count vector.
func (d *Document) BodyCounts() TermVector {
	d.initCounts()
	return d.bodyCounts
}

// Len returns the body length in terms (the paper's document length L;
// document lengths are non-private per Definition 2).
func (d *Document) Len() int { return len(d.Body) }

// TitleLen returns the title length in terms.
func (d *Document) TitleLen() int { return len(d.Title) }

// Query is a search query: an ordered multiset of term IDs. ID is local
// to the owning party; Topic is synthetic ground truth (-1 if unknown).
type Query struct {
	ID    int
	Topic int
	Terms []TermID
}

// NewQuery builds a query.
func NewQuery(id, topic int, terms []TermID) *Query {
	return &Query{ID: id, Topic: topic, Terms: terms}
}

// UniqueTerms returns the distinct terms of the query in first-occurrence
// order; feature extraction iterates these.
func (q *Query) UniqueTerms() []TermID {
	seen := make(map[TermID]struct{}, len(q.Terms))
	out := make([]TermID, 0, len(q.Terms))
	for _, t := range q.Terms {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
