package textkit

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"foo-bar_baz", []string{"foo", "bar", "baz"}},
		{"BM25 scores: 1.5e3", []string{"bm25", "scores", "1", "5e3"}},
		{"Ünïcode Tèst", []string{"ünïcode", "tèst"}},
		{"a,b,,c", []string{"a", "b", "c"}},
		{"trailing!", []string{"trailing"}},
	}
	for _, tc := range cases {
		if got := Tokenize(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestVocabularyIntern(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("apple")
	b := v.Intern("banana")
	a2 := v.Intern("apple")
	if a != a2 {
		t.Fatal("re-interning must return the same id")
	}
	if a == b {
		t.Fatal("distinct terms must get distinct ids")
	}
	if v.Size() != 2 {
		t.Fatalf("size = %d, want 2", v.Size())
	}
	if id, ok := v.Lookup("banana"); !ok || id != b {
		t.Fatal("Lookup failed for interned term")
	}
	if _, ok := v.Lookup("cherry"); ok {
		t.Fatal("Lookup must not intern")
	}
	if s, ok := v.Term(a); !ok || s != "apple" {
		t.Fatalf("Term(%d) = %q, %v", a, s, ok)
	}
	if _, ok := v.Term(TermID(99)); ok {
		t.Fatal("Term of unknown id should report !ok")
	}
}

func TestVocabularyDenseIDs(t *testing.T) {
	v := NewVocabulary()
	for i := 0; i < 100; i++ {
		id := v.Intern(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if int(id) >= 100 {
			t.Fatalf("ids must be dense, got %d", id)
		}
	}
}

func TestVocabularyConcurrent(t *testing.T) {
	v := NewVocabulary()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var wg sync.WaitGroup
	ids := make([][]TermID, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]TermID, len(words))
			for i, w := range words {
				ids[g][i] = v.Intern(w)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		if !reflect.DeepEqual(ids[0], ids[g]) {
			t.Fatal("concurrent interning produced inconsistent ids")
		}
	}
	if v.Size() != len(words) {
		t.Fatalf("size = %d, want %d", v.Size(), len(words))
	}
}

func TestInternAll(t *testing.T) {
	v := NewVocabulary()
	ids := v.InternAll([]string{"x", "y", "x"})
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("InternAll = %v", ids)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || IsStopword("ranking") {
		t.Fatal("stopword membership wrong")
	}
	got := FilterStopwords([]string{"the", "ranking", "of", "documents"})
	if !reflect.DeepEqual(got, []string{"ranking", "documents"}) {
		t.Fatalf("FilterStopwords = %v", got)
	}
	if FilterStopwords(nil) != nil {
		t.Fatal("FilterStopwords(nil) should be nil")
	}
}

func TestCountTerms(t *testing.T) {
	tv := CountTerms([]TermID{1, 2, 1, 3, 1, 2})
	if tv[1] != 3 || tv[2] != 2 || tv[3] != 1 {
		t.Fatalf("CountTerms = %v", tv)
	}
	if tv.Total() != 6 {
		t.Fatalf("Total = %d, want 6", tv.Total())
	}
	if tv.Unique() != 3 {
		t.Fatalf("Unique = %d, want 3", tv.Unique())
	}
	counts := tv.Counts()
	if !reflect.DeepEqual(counts, []float64{3, 2, 1}) {
		t.Fatalf("Counts = %v", counts)
	}
}

// TestCountTermsTotalProperty checks Total == len(input) for arbitrary
// term sequences.
func TestCountTermsTotalProperty(t *testing.T) {
	check := func(raw []uint8) bool {
		ids := make([]TermID, len(raw))
		for i, r := range raw {
			ids[i] = TermID(r)
		}
		return CountTerms(ids).Total() == len(ids)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDocumentCounts(t *testing.T) {
	d := NewDocument(7, 2, []TermID{10, 11}, []TermID{1, 2, 1, 3})
	if d.Len() != 4 || d.TitleLen() != 2 {
		t.Fatalf("Len=%d TitleLen=%d", d.Len(), d.TitleLen())
	}
	bc := d.BodyCounts()
	if bc[1] != 2 || bc[2] != 1 || bc[3] != 1 {
		t.Fatalf("BodyCounts = %v", bc)
	}
	tc := d.TitleCounts()
	if tc[10] != 1 || tc[11] != 1 {
		t.Fatalf("TitleCounts = %v", tc)
	}
	// Cached: same map returned.
	if &bc == nil || d.BodyCounts()[1] != 2 {
		t.Fatal("cached counts changed")
	}
}

func TestDocumentCountsConcurrent(t *testing.T) {
	d := NewDocument(0, -1, []TermID{5}, []TermID{1, 1, 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d.BodyCounts()[1] != 2 {
				t.Error("concurrent BodyCounts mismatch")
			}
		}()
	}
	wg.Wait()
}

func TestQueryUniqueTerms(t *testing.T) {
	q := NewQuery(1, 0, []TermID{5, 3, 5, 7, 3})
	got := q.UniqueTerms()
	if !reflect.DeepEqual(got, []TermID{5, 3, 7}) {
		t.Fatalf("UniqueTerms = %v", got)
	}
	empty := NewQuery(2, -1, nil)
	if len(empty.UniqueTerms()) != 0 {
		t.Fatal("empty query should have no unique terms")
	}
}
