package shard

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/resilience"
)

const testSeed = 0x5eed

// testParams is a small geometry that still exercises cap eviction.
func testParams() core.Params {
	p := core.DefaultParams()
	p.Z = 6
	p.W = 16
	p.Z1 = 3
	p.Epsilon = 0
	p.Alpha = 2
	p.K = 4 // HeapCap 8: small enough that cells overflow
	return p
}

// testDocs builds a deterministic corpus of n documents.
func testDocs(n int, rngSeed int64) []core.DocCounts {
	rng := rand.New(rand.NewSource(rngSeed))
	docs := make([]core.DocCounts, n)
	for i := range docs {
		counts := make(map[uint64]int64)
		for t := 0; t < 12; t++ {
			counts[uint64(rng.Intn(40))] += int64(1 + rng.Intn(5))
		}
		docs[i] = core.DocCounts{DocID: i * 3, Counts: counts}
	}
	return docs
}

// newGroup builds a group over the test corpus.
func newGroup(t *testing.T, shards, replicas int, docs []core.DocCounts) *Group {
	t.Helper()
	p := testParams()
	p.Shards = shards
	p.Replicas = replicas
	g, err := New(Config{Params: p, Seed: testSeed, BlockSize: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.AddDocuments(docs, 0); err != nil {
		t.Fatalf("AddDocuments: %v", err)
	}
	return g
}

// newReference builds the unsharded single owner over the same corpus.
func newReference(t *testing.T, docs []core.DocCounts) *core.Owner {
	t.Helper()
	o, err := core.NewOwner(testParams(), testSeed, dp.Disabled())
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	if err := o.AddDocuments(docs, 0); err != nil {
		t.Fatalf("AddDocuments: %v", err)
	}
	return o
}

// queryCols builds a deterministic valid column vector.
func queryCols(p core.Params, salt int) *core.TFQuery {
	cols := make([]uint32, p.Z)
	for i := range cols {
		cols[i] = uint32((i*31 + salt*7 + 3) % p.W)
	}
	return &core.TFQuery{Cols: cols}
}

// TestScatterGatherBitIdentical is the core determinism contract: for
// every shard/replica fan, the merged facade answers are bit-identical
// to a single owner over the whole corpus at Epsilon=0.
func TestScatterGatherBitIdentical(t *testing.T) {
	docs := testDocs(120, 11)
	ref := newReference(t, docs)
	p := testParams()
	for _, shards := range []int{1, 2, 4} {
		for _, replicas := range []int{1, 2} {
			g := newGroup(t, shards, replicas, docs)
			if got, want := g.DocIDs(), ref.DocIDs(); !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d replicas=%d: DocIDs mismatch", shards, replicas)
			}
			for salt := 0; salt < 8; salt++ {
				q := queryCols(p, salt)
				got, err := g.AnswerRTK(q)
				if err != nil {
					t.Fatalf("shards=%d: AnswerRTK: %v", shards, err)
				}
				want, err := ref.AnswerRTK(q)
				if err != nil {
					t.Fatalf("reference AnswerRTK: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d replicas=%d salt=%d: merged RTK response differs from single owner", shards, replicas, salt)
				}
			}
			for _, d := range docs[:10] {
				q := queryCols(p, d.DocID)
				got, err := g.AnswerTF(d.DocID, q)
				if err != nil {
					t.Fatalf("AnswerTF: %v", err)
				}
				want, err := ref.AnswerTF(d.DocID, q)
				if err != nil {
					t.Fatalf("reference AnswerTF: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: TF response differs for doc %d", shards, d.DocID)
				}
				gl, gu, err := g.DocMeta(d.DocID)
				if err != nil {
					t.Fatalf("DocMeta: %v", err)
				}
				wl, wu, _ := ref.DocMeta(d.DocID)
				if gl != wl || gu != wu {
					t.Fatalf("DocMeta mismatch for doc %d", d.DocID)
				}
			}
		}
	}
}

// TestEndToEndReverseTopK runs the full Algorithm 5 pipeline against
// the facade and the single owner with identically seeded queriers.
func TestEndToEndReverseTopK(t *testing.T) {
	docs := testDocs(120, 13)
	ref := newReference(t, docs)
	g := newGroup(t, 4, 2, docs)
	p := testParams()
	for term := uint64(0); term < 10; term++ {
		qa, err := core.NewQuerier(p, testSeed, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		qb, err := core.NewQuerier(p, testSeed, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		got, gotCost, err := core.RTKReverseTopK(qa, g, term, p.K)
		if err != nil {
			t.Fatalf("sharded RTKReverseTopK: %v", err)
		}
		want, wantCost, err := core.RTKReverseTopK(qb, ref, term, p.K)
		if err != nil {
			t.Fatalf("reference RTKReverseTopK: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("term %d: sharded result differs from single owner", term)
		}
		if gotCost != wantCost {
			t.Fatalf("term %d: cost differs: sharded %+v, single %+v", term, gotCost, wantCost)
		}
	}
}

// TestReplicaFailover kills replicas one by one: queries keep answering
// identically until the last replica of a shard dies, then fail with
// ErrNoReplica.
func TestReplicaFailover(t *testing.T) {
	docs := testDocs(80, 17)
	ref := newReference(t, docs)
	p := testParams()
	p.Shards = 2
	p.Replicas = 2
	// Cache disabled: a cached raw answer would keep serving after every
	// replica dies, hiding the failover path this test exists to probe.
	g, err := New(Config{Params: p, Seed: testSeed, BlockSize: 4, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddDocuments(docs, 0); err != nil {
		t.Fatal(err)
	}
	q := queryCols(p, 1)
	want, err := ref.AnswerRTK(q)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		got, err := g.AnswerRTK(q)
		if err != nil {
			t.Fatalf("AnswerRTK after kill: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("failover changed the answer")
		}
	}
	check()
	g.KillReplica(0, 0)
	for i := 0; i < 6; i++ { // several calls so both rotation positions hit the dead replica
		check()
	}
	g.KillReplica(0, 1)
	if _, err := g.AnswerRTK(q); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("want ErrNoReplica with every replica dead, got %v", err)
	}
	g.ReviveReplica(0, 1)
	check()
}

// TestBreakerOpensOnDeadReplica drives enough failures through a killed
// replica to open its breaker, then checks the state is observable.
func TestBreakerOpensOnDeadReplica(t *testing.T) {
	docs := testDocs(40, 19)
	p := testParams()
	p.Shards = 2
	p.Replicas = 2
	pol := resilience.DefaultPolicy()
	pol.FailureThreshold = 3
	// Cache disabled so every query actually reaches a replica.
	g, err := New(Config{Params: p, Seed: testSeed, BlockSize: 4, Policy: &pol, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddDocuments(docs, 0); err != nil {
		t.Fatal(err)
	}
	var changes []resilience.State
	g.SetHooks(Hooks{BreakerChange: func(lbl string, s resilience.State) {
		if lbl == BreakerLabel(0, 0) {
			changes = append(changes, s)
		}
	}})
	g.KillReplica(0, 0)
	q := queryCols(p, 2)
	for i := 0; i < 12; i++ {
		if _, err := g.AnswerRTK(q); err != nil {
			t.Fatalf("query %d should have failed over: %v", i, err)
		}
	}
	if got := g.ReplicaState(0, 0); got != resilience.Open {
		t.Fatalf("breaker state = %v, want Open", got)
	}
	found := false
	for _, s := range changes {
		if s == resilience.Open {
			found = true
		}
	}
	if !found {
		t.Fatal("BreakerChange hook never reported the open transition")
	}
}

// TestCacheInvalidationShardLocal is the RemoveDocument satellite: a
// removal bumps only the owning shard's generation, so repeated
// identical queries re-fetch exactly one shard and replay the rest from
// cache — no cross-shard stampede.
func TestCacheInvalidationShardLocal(t *testing.T) {
	docs := testDocs(120, 23)
	g := newGroup(t, 4, 1, docs)
	p := testParams()
	q := queryCols(p, 3)

	if _, err := g.AnswerRTK(q); err != nil { // cold: 4 misses, 4 stores
		t.Fatal(err)
	}
	if _, err := g.AnswerRTK(q); err != nil { // warm: 4 hits
		t.Fatal(err)
	}
	st := g.CacheStats()
	if st.Misses != 4 || st.Hits != 4 {
		t.Fatalf("warmup stats: hits=%d misses=%d, want 4/4", st.Hits, st.Misses)
	}

	victim := docs[0].DocID
	vs := g.ShardFor(victim)
	gensBefore := g.Generations()
	if err := g.RemoveDocument(victim); err != nil {
		t.Fatalf("RemoveDocument: %v", err)
	}
	gensAfter := g.Generations()
	for si := range gensBefore {
		moved := gensAfter[si] != gensBefore[si]
		if si == vs && !moved {
			t.Fatalf("owning shard %d generation did not move", si)
		}
		if si != vs && moved {
			t.Fatalf("shard %d generation moved on a foreign removal", si)
		}
	}

	if _, err := g.AnswerRTK(q); err != nil {
		t.Fatal(err)
	}
	st = g.CacheStats()
	// Third pass: the three untouched shards replay from cache, only the
	// owning shard misses and re-answers.
	if st.Hits != 7 || st.Misses != 5 {
		t.Fatalf("post-removal stats: hits=%d misses=%d, want 7/5 (shard-local invalidation)", st.Hits, st.Misses)
	}

	// And the removal is live: the victim no longer appears anywhere.
	for _, id := range g.DocIDs() {
		if id == victim {
			t.Fatal("removed document still listed")
		}
	}
}

// TestRemoveDocumentMatchesSingleOwner checks post-removal answers stay
// bit-identical to a single owner that removed the same document. The
// geometry is uncapped (K large enough that no cell evicts): in-place
// deletion cannot resurrect entries the cap already dropped, and a
// single owner evicts globally while shard owners evict locally — so in
// the capped regime the sharded post-removal answer is legitimately
// *more* complete than the single owner's, not bit-identical. With no
// eviction both paths are exact and must agree to the bit.
func TestRemoveDocumentMatchesSingleOwner(t *testing.T) {
	docs := testDocs(90, 29)
	p := testParams()
	p.K = 64 // HeapCap 128 >> 90 docs: nothing evicts
	ref, err := core.NewOwner(p, testSeed, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddDocuments(docs, 0); err != nil {
		t.Fatal(err)
	}
	sp := p
	sp.Shards = 4
	sp.Replicas = 2
	g, err := New(Config{Params: sp, Seed: testSeed, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddDocuments(docs, 0); err != nil {
		t.Fatal(err)
	}
	victim := docs[41].DocID
	if err := ref.RemoveDocument(victim); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveDocument(victim); err != nil {
		t.Fatal(err)
	}
	for salt := 0; salt < 6; salt++ {
		q := queryCols(p, salt)
		got, err := g.AnswerRTK(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.AnswerRTK(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("salt %d: post-removal RTK response differs", salt)
		}
	}
	if err := g.RemoveDocument(victim); !errors.Is(err, core.ErrUnknownDoc) {
		t.Fatalf("double removal: want ErrUnknownDoc, got %v", err)
	}
}

// TestAddDocumentsAllOrNothing: a duplicate anywhere in the batch
// leaves the whole group unchanged.
func TestAddDocumentsAllOrNothing(t *testing.T) {
	docs := testDocs(40, 31)
	g := newGroup(t, 4, 2, docs)
	gens := g.Generations()
	batch := testDocs(12, 37)
	for i := range batch {
		batch[i].DocID = 1000 + i*3
	}
	batch[7].DocID = docs[3].DocID // collides with an existing doc
	if err := g.AddDocuments(batch, 0); err == nil {
		t.Fatal("duplicate batch should fail")
	}
	if !reflect.DeepEqual(g.Generations(), gens) {
		t.Fatal("failed batch moved a shard generation")
	}
	n := len(g.DocIDs())
	if n != len(docs) {
		t.Fatalf("failed batch left %d docs, want %d", n, len(docs))
	}
}

// TestErrorRouting: protocol-level negative answers come back verbatim
// and never trip failover.
func TestErrorRouting(t *testing.T) {
	docs := testDocs(40, 41)
	g := newGroup(t, 2, 2, docs)
	p := testParams()
	if _, _, err := g.DocMeta(99999); !errors.Is(err, core.ErrUnknownDoc) {
		t.Fatalf("DocMeta unknown: %v", err)
	}
	if _, err := g.AnswerTF(99999, queryCols(p, 0)); !errors.Is(err, core.ErrUnknownDoc) {
		t.Fatalf("AnswerTF unknown: %v", err)
	}
	if _, err := g.AnswerRTK(&core.TFQuery{Cols: []uint32{1}}); !errors.Is(err, core.ErrBadQuery) {
		t.Fatalf("short query: %v", err)
	}
	bad := queryCols(p, 0)
	bad.Cols[0] = uint32(p.W)
	if _, err := g.AnswerRTK(bad); !errors.Is(err, core.ErrBadQuery) {
		t.Fatalf("out-of-range column: %v", err)
	}
	for si := 0; si < g.Shards(); si++ {
		for ri := 0; ri < g.ReplicasPerShard(); ri++ {
			if got := g.ReplicaState(si, ri); got != resilience.Closed {
				t.Fatalf("replica %d/%d breaker moved on protocol errors: %v", si, ri, got)
			}
		}
	}
}

// TestLabelsBounded: any index clamps into the closed label enum.
func TestLabelsBounded(t *testing.T) {
	for _, i := range []int{-1, 0, 15, 16, 1 << 20} {
		if l := ShardLabel(i); l == "" {
			t.Fatalf("empty shard label for %d", i)
		}
	}
	if ShardLabel(99) != LabelOverflow || ReplicaLabel(99) != LabelOverflow {
		t.Fatal("out-of-table indexes must clamp to overflow")
	}
	if BreakerLabel(1, 2) != "s1/r2" {
		t.Fatalf("BreakerLabel(1,2) = %q", BreakerLabel(1, 2))
	}
}

// TestFacadeNoiseSingleDraw: with DP enabled, every value of one answer
// carries the same noise offset (one draw per release, Algorithm 2's
// schedule) and the raw cache never leaks unperturbed values... the
// offset must differ between two identical queries (fresh draw each
// release even on a cache hit).
func TestFacadeNoiseSingleDraw(t *testing.T) {
	docs := testDocs(60, 43)
	p := testParams()
	p.Shards = 2
	p.Epsilon = 0.5
	mech, err := dp.ForEpsilon(p.Epsilon, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Params: p, Seed: testSeed, Mech: mech, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddDocuments(docs, 0); err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewOwner(testParams(), testSeed, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddDocuments(docs, 0); err != nil {
		t.Fatal(err)
	}
	q := queryCols(p, 5)
	raw, err := ref.AnswerRTK(q)
	if err != nil {
		t.Fatal(err)
	}
	// (value+noise)-value wobbles in the last ulp across magnitudes, so
	// "same draw" is equality up to a relative tolerance, not bit equality.
	const tol = 1e-9
	offset := func() float64 {
		resp, err := g.AnswerRTK(q)
		if err != nil {
			t.Fatal(err)
		}
		var off float64
		seen := false
		for a, c := range resp.Cells {
			for i, v := range c.Values {
				d := v - raw.Cells[a].Values[i]
				if !seen {
					off = d
					seen = true
				} else if math.Abs(d-off) > tol*math.Max(1, math.Abs(off)) {
					t.Fatalf("row %d entry %d: noise offset %v differs from %v (not a single draw)", a, i, d, off)
				}
			}
		}
		if !seen {
			t.Skip("corpus produced empty cells")
		}
		return off
	}
	first := offset()
	second := offset() // second call is a cache hit on both shards
	if math.Abs(first-second) <= tol*math.Max(1, math.Abs(first)) {
		t.Fatal("two releases drew identical noise; cached raw answers must be re-perturbed per release")
	}
}

// TestShardForStability: the doc-range map is pure and covers all shards.
func TestShardForStability(t *testing.T) {
	g, err := New(Config{Params: func() core.Params { p := testParams(); p.Shards = 4; return p }(), Seed: 1, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for id := 0; id < 256; id++ {
		s := g.ShardFor(id)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardFor(%d) = %d out of range", id, s)
		}
		if s != g.ShardFor(id) {
			t.Fatal("ShardFor not stable")
		}
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("block striping covered %d shards, want 4", len(seen))
	}
	if g.ShardFor(-40) < 0 || g.ShardFor(-40) >= 4 {
		t.Fatal("negative ids must still map into range")
	}
}
