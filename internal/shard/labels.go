package shard

// Bounded telemetry label tables. Shard and replica indexes are the
// only dynamic inputs to shard-aware metric labels, and both are small
// fixed deployment constants — the tables below clamp them to a closed
// enum so the label sets stay bounded no matter what indexes appear at
// runtime (the telemetrylabel analyzer's invariant). No fmt.Sprintf:
// values are table lookups and constant-string concatenation only.

// LabelOverflow is the clamp value for indexes beyond the tables.
const LabelOverflow = "overflow"

// shardLabels covers every shard count the system deploys (Params
// validation has no upper bound, but the bench grid tops out well
// below this; higher indexes clamp to LabelOverflow).
var shardLabels = [...]string{
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "s12", "s13", "s14", "s15",
}

// replicaLabels covers the replica fan the system deploys.
var replicaLabels = [...]string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}

// ShardLabel returns the bounded metric label for a shard index.
func ShardLabel(i int) string {
	if i >= 0 && i < len(shardLabels) {
		return shardLabels[i]
	}
	return LabelOverflow
}

// ReplicaLabel returns the bounded metric label for a replica index.
func ReplicaLabel(i int) string {
	if i >= 0 && i < len(replicaLabels) {
		return replicaLabels[i]
	}
	return LabelOverflow
}

// BreakerLabel returns the bounded combined label one replica's breaker
// gauge carries, e.g. "s0/r1".
func BreakerLabel(shard, rep int) string {
	return ShardLabel(shard) + "/" + ReplicaLabel(rep)
}
