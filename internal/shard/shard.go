// Package shard partitions one party's corpus across N owner shards by
// doc-range and presents the result as a single logical owner.
//
// The scatter-gather layer reuses the deterministic slot-merge
// discipline of the federated fan-out: shard answers land in fixed
// shard-index slots and are merged in that order under the RTK-Sketch's
// strict total eviction order, so the merged response is bit-identical
// to the legacy single-Owner path at Epsilon=0 regardless of shard
// count, goroutine interleaving, or which replica served each shard
// (see Group.AnswerRTK).
//
// Privacy: the shard owners themselves run with DP disabled and never
// release anything outside the party — the differential-privacy release
// point stays at the Group facade, which draws exactly one noise sample
// per answered query, the same release schedule as a single Owner. The
// per-silo DP composition of the paper is therefore unchanged by
// sharding (the accountant still sees one logical party), matching the
// cross-silo analysis referenced in PAPERS.md.
//
// Each shard may carry multiple read replicas. Replicas hold identical
// state — ingestion writes through to every replica of the owning shard
// — so failing over from a dead replica to a peer can never change a
// query result. Replica failure detection generalizes the per-party
// circuit-breaker machinery: each (shard, replica) pair has its own
// breaker, a killed or faulting replica degrades to its peers, and only
// when every replica of a shard is unavailable does the query fail.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/qcache"
	"csfltr/internal/resilience"
	"csfltr/internal/telemetry"
)

// Errors returned by this package.
var (
	// ErrBadConfig reports an invalid Config.
	ErrBadConfig = errors.New("shard: invalid configuration")
	// ErrReplicaDown is what a killed replica answers with; the caller
	// fails over to a peer replica.
	ErrReplicaDown = errors.New("shard: replica down")
	// ErrNoReplica reports that every replica of a shard was unavailable.
	ErrNoReplica = errors.New("shard: no replica available")
)

// DefaultBlockSize is the doc-range striping block: documents are
// assigned to shards in contiguous blocks of this many ids, so locality
// of sequential corpora is preserved while load still spreads.
const DefaultBlockSize = 64

// DefaultCacheBytes is the per-group capacity of the shard-local raw
// answer cache (see Config.CacheBytes).
const DefaultCacheBytes = 4 << 20

// Config configures a sharded owner group.
type Config struct {
	// Params are the shared protocol parameters. Shards and Replicas are
	// read from here (both resolve 0 to 1).
	Params core.Params
	// Seed is the federation hash seed (all shards share the family).
	Seed uint64
	// Mech is the facade's DP mechanism: the single release point for
	// every answer that leaves the group. Nil means dp.Disabled().
	Mech dp.Mechanism
	// DropDocTables mirrors core.WithoutDocTables on every shard owner.
	DropDocTables bool
	// BlockSize is the doc-range striping block (0 = DefaultBlockSize).
	BlockSize int
	// CacheBytes bounds the shard-local cache of raw (pre-noise) RTK
	// answers, keyed by the owning shard's ingest generation so an
	// ingest or removal invalidates only that shard's entries. The cache
	// lives entirely inside the party trust boundary — cached values are
	// raw and the facade draws fresh noise per release, so replay is
	// invisible to the DP accountant. 0 means DefaultCacheBytes; < 0
	// disables caching.
	CacheBytes int64
	// Policy is the per-replica breaker/backoff policy (nil = defaults).
	Policy *resilience.Policy
}

// Hooks connects a Group to its host's telemetry: the flight recorder
// registry for failover attempt spans, plus bounded-label callbacks for
// per-shard outcome counters, breaker gauges, and transport bytes. All
// fields are optional. Callbacks receive labels from the bounded
// ShardLabel/ReplicaLabel tables, never raw identifiers.
type Hooks struct {
	// Registry, when set, records a "shard.attempt" child span under the
	// caller's trace context for every replica attempt.
	Registry *telemetry.Registry
	// OnOutcome is called once per shard-level call with the shard label
	// and whether any replica answered.
	OnOutcome func(shard string, ok bool)
	// BreakerChange is called on every replica breaker state change with
	// the combined "s<i>/r<j>" label.
	BreakerChange func(shard string, s resilience.State)
	// OnTransport is called with the fixed-width byte size of each
	// shard-level request/response exchange (api is "tf", "rtk",
	// "docids" or "docmeta").
	OnTransport func(api, shard string, bytes int64)
}

// Intercept is invoked before every replica-owner call; returning an
// error makes the call fail as if the replica were unreachable (the
// caller fails over). Experiments use it to inject per-node simulated
// service time and chaos faults.
type Intercept func(shard, replica int, api string) error

// replica is one copy of a shard's owner state plus its health machinery.
type replica struct {
	owner   *core.Owner
	breaker *resilience.Breaker
	killed  atomic.Bool
}

// shardState is one doc-range partition: its replica set and the
// round-robin read cursor.
type shardState struct {
	replicas []*replica
	rr       atomic.Uint64
}

// Group is a sharded, replicated owner facade implementing
// core.OwnerAPI. Safe for concurrent use.
type Group struct {
	params    core.Params
	blockSize int
	absKeys   bool // Count sketch: heap eviction keys on |value|

	mech   dp.Mechanism
	mechMu sync.Mutex // the mechanism's random source is not thread-safe

	shards []*shardState

	mu  sync.Mutex // guards ids and write paths
	ids map[int]struct{}

	cache *qcache.Cache // nil when disabled
	keyer *qcache.Keyer

	hooks     atomic.Pointer[Hooks]
	intercept atomic.Pointer[Intercept]
}

// New builds a sharded owner group: Params.Shards partitions (0 and 1
// both mean one shard), each with Params.Replicas identical replicas.
func New(cfg Config) (*Group, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	nShards := cfg.Params.Shards
	if nShards <= 0 {
		nShards = 1
	}
	nReplicas := cfg.Params.Replicas
	if nReplicas <= 0 {
		nReplicas = 1
	}
	blockSize := cfg.BlockSize
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 0 {
		return nil, fmt.Errorf("%w: BlockSize=%d", ErrBadConfig, cfg.BlockSize)
	}
	mech := cfg.Mech
	if mech == nil {
		mech = dp.Disabled()
	}
	policy := resilience.DefaultPolicy()
	if cfg.Policy != nil {
		policy = *cfg.Policy
	}
	// Shard owners are internal partitions, not protocol endpoints: they
	// run noise-free (the facade is the release point) and do not
	// themselves shard further.
	ownerParams := cfg.Params
	ownerParams.Shards = 0
	ownerParams.Replicas = 0
	var opts []core.OwnerOption
	if cfg.DropDocTables {
		opts = append(opts, core.WithoutDocTables())
	}
	g := &Group{
		params:    cfg.Params,
		blockSize: blockSize,
		absKeys:   cfg.Params.AbsEvictionKeys(),
		mech:      mech,
		ids:       make(map[int]struct{}),
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	if cacheBytes > 0 {
		g.cache = qcache.New(cacheBytes)
		g.keyer = qcache.NewKeyer(cfg.Seed)
	}
	for si := 0; si < nShards; si++ {
		s := &shardState{}
		for ri := 0; ri < nReplicas; ri++ {
			o, err := core.NewOwner(ownerParams, cfg.Seed, dp.Disabled(), opts...)
			if err != nil {
				return nil, err
			}
			r := &replica{owner: o, breaker: resilience.NewBreaker(policy)}
			lbl := BreakerLabel(si, ri)
			r.breaker.OnChange(func(st resilience.State) {
				if h := g.hooks.Load(); h != nil && h.BreakerChange != nil {
					h.BreakerChange(lbl, st)
				}
			})
			s.replicas = append(s.replicas, r)
		}
		g.shards = append(g.shards, s)
	}
	return g, nil
}

// SetHooks installs (or replaces) the telemetry hooks and publishes the
// current breaker state of every replica through BreakerChange so
// gauges start from a defined value.
func (g *Group) SetHooks(h Hooks) {
	g.hooks.Store(&h)
	if h.BreakerChange == nil {
		return
	}
	for si, s := range g.shards {
		for ri, r := range s.replicas {
			h.BreakerChange(BreakerLabel(si, ri), r.breaker.State())
		}
	}
}

// SetIntercept installs (or, with nil, removes) the per-replica call
// interceptor.
func (g *Group) SetIntercept(fn Intercept) {
	if fn == nil {
		g.intercept.Store(nil)
		return
	}
	g.intercept.Store(&fn)
}

// Shards returns the number of doc-range partitions.
func (g *Group) Shards() int { return len(g.shards) }

// ReplicasPerShard returns the replica count of each shard.
func (g *Group) ReplicasPerShard() int { return len(g.shards[0].replicas) }

// Params returns the group's protocol parameters.
func (g *Group) Params() core.Params { return g.params }

// ShardFor maps a document id to its owning shard: contiguous blocks of
// BlockSize ids stripe round-robin across the shards.
func (g *Group) ShardFor(docID int) int {
	n := len(g.shards)
	if n == 1 {
		return 0
	}
	blk := docID / g.blockSize
	s := blk % n
	if s < 0 {
		s += n
	}
	return s
}

// KillReplica marks one replica dead: every call to it fails with
// ErrReplicaDown until ReviveReplica. Reads degrade to the shard's peer
// replicas; with every replica of a shard killed, queries touching that
// shard fail with ErrNoReplica.
func (g *Group) KillReplica(shard, rep int) {
	g.shards[shard].replicas[rep].killed.Store(true)
}

// ReviveReplica clears a kill. The replica's breaker recovers through
// its ordinary half-open probe cycle.
func (g *Group) ReviveReplica(shard, rep int) {
	g.shards[shard].replicas[rep].killed.Store(false)
}

// ReplicaState returns one replica's breaker state.
func (g *Group) ReplicaState(shard, rep int) resilience.State {
	return g.shards[shard].replicas[rep].breaker.State()
}

// Generations returns the per-shard ingest generation vector. Cache
// keys derived from it invalidate shard-locally: an ingest or removal
// moves only the owning shard's component.
func (g *Group) Generations() []uint64 {
	out := make([]uint64, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.replicas[0].owner.Generation()
	}
	return out
}

// Generation returns the sum of the per-shard generations — a scalar
// that moves on every mutation, for callers that only need "did
// anything change".
func (g *Group) Generation() uint64 {
	var sum uint64
	for _, s := range g.shards {
		sum += s.replicas[0].owner.Generation()
	}
	return sum
}

// CacheStats returns the shard-local answer cache's counters (zero
// stats when the cache is disabled).
func (g *Group) CacheStats() qcache.Stats {
	if g.cache == nil {
		return qcache.Stats{}
	}
	return g.cache.Stats()
}

// AddDocument ingests one document into every replica of its owning
// shard, bumping only that shard's generation.
func (g *Group) AddDocument(docID int, counts map[uint64]int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.ids[docID]; dup {
		return fmt.Errorf("shard: duplicate document %d", docID)
	}
	si := g.ShardFor(docID)
	for ri, r := range g.shards[si].replicas {
		if err := r.owner.AddDocument(docID, counts); err != nil {
			// Keep replicas identical: undo the copies already applied.
			for _, u := range g.shards[si].replicas[:ri] {
				_ = u.owner.RemoveDocument(docID) // rollback; owner verified the id above
			}
			return err
		}
	}
	g.ids[docID] = struct{}{}
	return nil
}

// AddDocuments bulk-loads a batch: documents are partitioned by owning
// shard, each partition is written through to every replica of its
// shard with the owners' deterministic bulk loader, and the shards load
// concurrently. All-or-nothing like core.Owner.AddDocuments: on error
// (duplicate id, geometry mismatch) no document of the batch remains in
// the group. Each touched shard's generation moves by exactly one.
func (g *Group) AddDocuments(docs []core.DocCounts, workers int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := make(map[int]struct{}, len(docs))
	for _, d := range docs {
		if _, dup := seen[d.DocID]; dup {
			return fmt.Errorf("shard: duplicate document %d in batch", d.DocID)
		}
		if _, dup := g.ids[d.DocID]; dup {
			return fmt.Errorf("shard: duplicate document %d", d.DocID)
		}
		seen[d.DocID] = struct{}{}
	}
	parts := make([][]core.DocCounts, len(g.shards))
	for _, d := range docs {
		si := g.ShardFor(d.DocID)
		parts[si] = append(parts[si], d)
	}
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for si := range g.shards {
		if len(parts[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for ri, r := range g.shards[si].replicas {
				if err := r.owner.AddDocuments(parts[si], workers); err != nil {
					for _, u := range g.shards[si].replicas[:ri] {
						for _, d := range parts[si] {
							_ = u.owner.RemoveDocument(d.DocID) // rollback applied copies
						}
					}
					errs[si] = err
					return
				}
			}
		}(si)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// All-or-nothing: unwind every shard whose partition applied.
		for si := range g.shards {
			if errs[si] != nil || len(parts[si]) == 0 {
				continue
			}
			for _, r := range g.shards[si].replicas {
				for _, d := range parts[si] {
					_ = r.owner.RemoveDocument(d.DocID) // rollback applied copies
				}
			}
		}
		return firstErr
	}
	for _, d := range docs {
		g.ids[d.DocID] = struct{}{}
	}
	return nil
}

// RemoveDocument deletes one document from every replica of its owning
// shard and bumps only that shard's generation — cache entries keyed by
// the other shards' generations stay valid (no cross-shard stampede).
func (g *Group) RemoveDocument(docID int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.ids[docID]; !ok {
		return fmt.Errorf("%w: %d", core.ErrUnknownDoc, docID)
	}
	si := g.ShardFor(docID)
	for _, r := range g.shards[si].replicas {
		if err := r.owner.RemoveDocument(docID); err != nil {
			return err
		}
	}
	delete(g.ids, docID)
	return nil
}
