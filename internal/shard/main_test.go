package shard

import (
	"testing"

	"csfltr/internal/leakcheck"
)

// TestMain wires the goroutine-leak detector around the package tests:
// every scatter goroutine, failover attempt and bulk-ingest worker must
// be gone when the suite ends.
func TestMain(m *testing.M) { leakcheck.Main(m) }
