package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"csfltr/internal/core"
	"csfltr/internal/qcache"
	"csfltr/internal/resilience"
	"csfltr/internal/telemetry"
)

// Owner API label values (bounded; mirrors the federation transport
// labels so per-shard byte series line up with the party-level ones).
// Exported so Intercept hooks can match on the call being intercepted.
const (
	APIDocIDs  = "docids"
	APIDocMeta = "docmeta"
	APITF      = "tf"
	APIRTK     = "rtk"
)

// Cache key kinds for the shard-local raw answer cache.
const keyKindShardRTK uint64 = 1

// Group implements core.OwnerAPI. The exported methods run untraced;
// WithTrace returns a view that parents per-replica attempt spans under
// the caller's span (the federation server forwards its trace context
// here exactly as it does to RPC/HTTP transport clients).

// DocIDs returns the union of every shard's document ids, ascending —
// identical to a single owner over the whole corpus. Shards that have
// no live replica contribute nothing (the roster call has no error
// channel, matching core.OwnerAPI).
func (g *Group) DocIDs() []int { return g.docIDs(telemetry.SpanContext{}) }

// DocMeta routes by doc-range to the owning shard.
func (g *Group) DocMeta(docID int) (int, int, error) {
	return g.docMeta(telemetry.SpanContext{}, docID)
}

// AnswerTF routes by doc-range to the owning shard and applies the
// facade's single noise draw — the DP release point of the group.
func (g *Group) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	return g.answerTF(telemetry.SpanContext{}, docID, q)
}

// AnswerRTK scatters the query to every shard, gathers the raw answers
// into fixed shard-index slots, merges them under the sketch's strict
// total eviction order, and perturbs the merged cells with the facade's
// single noise draw. At Epsilon=0 the response is bit-identical to a
// single Owner holding the whole corpus (see core.MergeCellEntries).
func (g *Group) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	return g.answerRTK(telemetry.SpanContext{}, q)
}

// WithTrace implements the federation's trace-carrier contract: the
// returned view parents every replica attempt span under ctx.
func (g *Group) WithTrace(ctx telemetry.SpanContext) core.OwnerAPI {
	if !ctx.Valid() {
		return g
	}
	return &tracedGroup{g: g, ctx: ctx}
}

// tracedGroup binds a Group to a caller's span context.
type tracedGroup struct {
	g   *Group
	ctx telemetry.SpanContext
}

func (t *tracedGroup) DocIDs() []int { return t.g.docIDs(t.ctx) }
func (t *tracedGroup) DocMeta(docID int) (int, int, error) {
	return t.g.docMeta(t.ctx, docID)
}
func (t *tracedGroup) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	return t.g.answerTF(t.ctx, docID, q)
}
func (t *tracedGroup) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	return t.g.answerRTK(t.ctx, q)
}

// sample serializes the facade's noise draws (the mechanism's random
// source is not thread-safe, same contract as core.Owner's mutex).
func (g *Group) sample() float64 {
	g.mechMu.Lock()
	defer g.mechMu.Unlock()
	return g.mech.Sample()
}

// permanentErr reports protocol-level negative answers that must be
// returned to the caller as-is: the replica answered correctly, there
// is nothing to fail over from.
func permanentErr(err error) bool {
	return errors.Is(err, core.ErrBadQuery) ||
		errors.Is(err, core.ErrUnknownDoc) ||
		errors.Is(err, core.ErrNoSketches) ||
		errors.Is(err, core.ErrBadParams)
}

// callShard runs fn against one replica of shard si, failing over
// through the shard's replica set in rotation order. A replica is
// skipped while its breaker is open; a killed or faulting replica
// records a breaker failure and the call degrades to the next peer.
// Because replicas hold identical state, which replica answers can
// never change the result. Every attempt is recorded as a
// "shard.attempt" child span when tracing hooks are installed.
func (g *Group) callShard(ctx telemetry.SpanContext, si int, api string, fn func(o *core.Owner) error) error {
	s := g.shards[si]
	n := len(s.replicas)
	start := int(s.rr.Add(1)-1) % n
	h := g.hooks.Load()
	var lastErr error = ErrNoReplica
	for k := 0; k < n; k++ {
		ri := (start + k) % n
		r := s.replicas[ri]
		if !r.breaker.Allow() {
			lastErr = resilience.ErrBreakerOpen
			continue
		}
		sp := g.attemptSpan(h, ctx, api, si, ri)
		err := g.tryReplica(si, ri, api, r, fn)
		if err == nil || permanentErr(err) {
			// Answered (a protocol-level negative answer is an answer).
			r.breaker.Record(true)
			endAttempt(sp, "ok")
			g.recordOutcome(h, si, true)
			return err
		}
		r.breaker.Record(false)
		endAttempt(sp, "failed")
		lastErr = err
	}
	g.recordOutcome(h, si, false)
	return fmt.Errorf("shard: shard %s: %w (last: %v)", ShardLabel(si), ErrNoReplica, lastErr)
}

// tryReplica applies the kill switch and the installed interceptor,
// then runs the owner call.
func (g *Group) tryReplica(si, ri int, api string, r *replica, fn func(o *core.Owner) error) error {
	if r.killed.Load() {
		return ErrReplicaDown
	}
	if icp := g.intercept.Load(); icp != nil {
		if err := (*icp)(si, ri, api); err != nil {
			return err
		}
	}
	return fn(r.owner)
}

// attemptSpan starts one replica attempt span (nil without hooks or a
// valid parent — span recording is strictly opt-in).
func (g *Group) attemptSpan(h *Hooks, ctx telemetry.SpanContext, api string, si, ri int) *telemetry.TraceSpan {
	if h == nil || h.Registry == nil || !ctx.Valid() {
		return nil
	}
	return h.Registry.StartChildSpan("shard.attempt", ctx, nil,
		telemetry.AStr("api", api),
		telemetry.AStr("shard", ShardLabel(si)),
		telemetry.AStr("replica", ReplicaLabel(ri)))
}

// endAttempt closes an attempt span with its outcome.
func endAttempt(sp *telemetry.TraceSpan, outcome string) {
	if sp == nil {
		return
	}
	sp.AddAttr(telemetry.AStr("outcome", outcome))
	sp.End()
}

// recordOutcome feeds the per-shard outcome hook.
func (g *Group) recordOutcome(h *Hooks, si int, ok bool) {
	if h != nil && h.OnOutcome != nil {
		h.OnOutcome(ShardLabel(si), ok)
	}
}

// recordTransport feeds the per-shard byte hook with the fixed-width
// size of one request/response exchange.
func (g *Group) recordTransport(api string, si int, bytes int64) {
	if h := g.hooks.Load(); h != nil && h.OnTransport != nil {
		h.OnTransport(api, ShardLabel(si), bytes)
	}
}

func (g *Group) docIDs(ctx telemetry.SpanContext) []int {
	var out []int
	for si := range g.shards {
		var ids []int
		err := g.callShard(ctx, si, APIDocIDs, func(o *core.Owner) error {
			ids = o.DocIDs()
			return nil
		})
		if err != nil {
			continue
		}
		g.recordTransport(APIDocIDs, si, int64(8*len(ids)))
		out = append(out, ids...)
	}
	sort.Ints(out)
	return out
}

func (g *Group) docMeta(ctx telemetry.SpanContext, docID int) (int, int, error) {
	var length, unique int
	si := g.ShardFor(docID)
	err := g.callShard(ctx, si, APIDocMeta, func(o *core.Owner) error {
		var err error
		length, unique, err = o.DocMeta(docID)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	g.recordTransport(APIDocMeta, si, 16)
	return length, unique, nil
}

func (g *Group) answerTF(ctx telemetry.SpanContext, docID int, q *core.TFQuery) (*core.TFResponse, error) {
	var resp *core.TFResponse
	si := g.ShardFor(docID)
	err := g.callShard(ctx, si, APITF, func(o *core.Owner) error {
		var err error
		resp, err = o.AnswerTF(docID, q)
		return err
	})
	if err != nil {
		return nil, err
	}
	// The shard owner answered raw (its mechanism is disabled); the
	// facade is the release point: one draw perturbs all z values,
	// exactly the schedule of Algorithm 2 on a single owner.
	noise := g.sample()
	for i := range resp.Values {
		resp.Values[i] += noise
	}
	g.recordTransport(APITF, si, q.WireSize()+resp.WireSize())
	return resp, nil
}

func (g *Group) answerRTK(ctx telemetry.SpanContext, q *core.TFQuery) (*core.RTKResponse, error) {
	z, w := g.params.Z, g.params.W
	if q == nil || len(q.Cols) != z {
		n := 0
		if q != nil {
			n = len(q.Cols)
		}
		return nil, fmt.Errorf("%w: query has %d columns, want %d", core.ErrBadQuery, n, z)
	}
	for _, c := range q.Cols {
		if c >= uint32(w) {
			return nil, fmt.Errorf("%w: column %d out of range", core.ErrBadQuery, c)
		}
	}

	// Scatter: every shard answers raw into its fixed slot, concurrently.
	// Slots keep the merge order independent of completion order — the
	// same slot-merge discipline as the federated search fan-out.
	raw := make([]*core.RTKResponse, len(g.shards))
	errs := make([]error, len(g.shards))
	gens := g.Generations()
	if len(g.shards) == 1 {
		raw[0], errs[0] = g.shardRTK(ctx, 0, gens[0], q)
	} else {
		var wg sync.WaitGroup
		for si := range g.shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				raw[si], errs[si] = g.shardRTK(ctx, si, gens[si], q)
			}(si)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Gather: merge each row's shard cells under the sketch's strict
	// total eviction order, then release with one facade noise draw.
	heapCap := g.params.HeapCap()
	noise := g.sample()
	cells := make([]core.RTKCell, z)
	parts := make([][]core.Entry, len(g.shards))
	for a := 0; a < z; a++ {
		for si := range g.shards {
			c := raw[si].Cells[a]
			es := make([]core.Entry, len(c.IDs))
			for i := range c.IDs {
				// Shard owners answer noise-free, so every value is an
				// exact integer; the conversion back is lossless.
				es[i] = core.Entry{DocID: c.IDs[i], Value: int64(c.Values[i])}
			}
			parts[si] = es
		}
		merged := core.MergeCellEntries(parts, heapCap, g.absKeys)
		cell := core.RTKCell{
			IDs:    make([]int32, len(merged)),
			Values: make([]float64, len(merged)),
		}
		for i, e := range merged {
			cell.IDs[i] = e.DocID
			cell.Values[i] = float64(e.Value) + noise
		}
		cells[a] = cell
	}
	return &core.RTKResponse{Cells: cells}, nil
}

// shardRTK answers one shard's slice of the scatter, through the
// shard-local raw answer cache when enabled. Cache keys bind the
// owning shard's generation, so an ingest or removal invalidates
// exactly that shard's entries. Cached values are raw (pre-noise) and
// never leave the facade unperturbed.
func (g *Group) shardRTK(ctx telemetry.SpanContext, si int, gen uint64, q *core.TFQuery) (*core.RTKResponse, error) {
	var full, base qcache.Key
	if g.cache != nil {
		full, base = g.rtkKeys(si, gen, q)
		if v, ok := g.cache.Get(full, base); ok {
			resp := v.(*core.RTKResponse)
			g.recordTransport(APIRTK, si, q.WireSize()+resp.WireSize())
			return resp, nil
		}
	}
	var resp *core.RTKResponse
	err := g.callShard(ctx, si, APIRTK, func(o *core.Owner) error {
		var err error
		resp, err = o.AnswerRTK(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	g.recordTransport(APIRTK, si, q.WireSize()+resp.WireSize())
	if g.cache != nil {
		g.cache.Put(full, base, resp.WireSize()+rtkCacheOverhead, resp)
	}
	return resp, nil
}

// rtkCacheOverhead approximates the per-entry bookkeeping beyond the
// wire payload when charging the cache.
const rtkCacheOverhead = 256

// rtkKeys derives the (full, base) cache keys of one shard's raw RTK
// answer: the full key binds the shard's generation, the base key is
// generation-free (the cache uses it for age tracking).
func (g *Group) rtkKeys(si int, gen uint64, q *core.TFQuery) (full, base qcache.Key) {
	fb := g.keyer.Begin(keyKindShardRTK).Int(si).Int(len(q.Cols))
	bb := g.keyer.Begin(keyKindShardRTK).Int(si).Int(len(q.Cols))
	for _, c := range q.Cols {
		fb.U64(uint64(c))
		bb.U64(uint64(c))
	}
	fb.U64(gen)
	return fb.Key(), bb.Key()
}
