// Package sketch implements the linear sketches underlying CS-F-LTR:
// Count Sketch (Charikar, Chen, Farach-Colton) and Count-Min Sketch
// (Cormode, Muthukrishnan). Section IV of the paper builds one sketch per
// document and answers point term-frequency queries from it; Section V's
// RTK-Sketch (package core) reuses these tables as its per-document
// summaries.
//
// A Table is a z x w array of int64 counters driven by a shared
// hashutil.Family. Tables are linear: Merge adds two sketches cell-wise,
// so the sketch of the union of two multisets is the sum of their
// sketches. Estimation is sign-corrected median for Count Sketch and
// minimum for Count-Min.
//
// Note on fidelity to the paper: Eq. (3) of the paper writes the Count
// Sketch estimator as a plain median of C[a][h_a(t)]; the original Count
// Sketch (and the variance analysis the paper cites) requires multiplying
// by the sign hash g_a(t) first, which is what Estimate does here.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"csfltr/internal/hashutil"
)

// Kind selects the sketch flavour.
type Kind int

const (
	// Count is the Count Sketch: signed updates, median estimator.
	Count Kind = iota
	// CountMin is the Count-Min sketch: unsigned updates, min estimator.
	CountMin
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Count:
		return "count"
	case CountMin:
		return "count-min"
	default:
		return fmt.Sprintf("sketch.Kind(%d)", int(k))
	}
}

// Errors returned by this package.
var (
	ErrNilFamily    = errors.New("sketch: hash family must not be nil")
	ErrBadKind      = errors.New("sketch: unknown sketch kind")
	ErrIncompatible = errors.New("sketch: incompatible tables")
	ErrCorrupt      = errors.New("sketch: corrupt serialized table")
)

// Table is a z x w sketch of a term multiset. It is not safe for
// concurrent mutation; concurrent reads are fine.
type Table struct {
	kind  Kind
	fam   *hashutil.Family
	cells []int64 // row-major z x w
}

// New creates an empty sketch table of the given kind over fam's (z, w)
// geometry.
func New(kind Kind, fam *hashutil.Family) (*Table, error) {
	if fam == nil {
		return nil, ErrNilFamily
	}
	if kind != Count && kind != CountMin {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, int(kind))
	}
	return &Table{
		kind:  kind,
		fam:   fam,
		cells: make([]int64, fam.Z()*fam.W()),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(kind Kind, fam *hashutil.Family) *Table {
	t, err := New(kind, fam)
	if err != nil {
		panic(err)
	}
	return t
}

// Kind returns the sketch flavour.
func (t *Table) Kind() Kind { return t.kind }

// Family returns the hash family driving the table.
func (t *Table) Family() *hashutil.Family { return t.fam }

// Z returns the number of rows.
func (t *Table) Z() int { return t.fam.Z() }

// W returns the number of columns.
func (t *Table) W() int { return t.fam.W() }

// Add records count occurrences of term. For Count Sketch the update is
// sign-weighted (Eq. (2) of the paper); for Count-Min it is unsigned.
// Negative counts implement deletion, preserving linearity.
func (t *Table) Add(term uint64, count int64) {
	w := t.fam.W()
	for a := 0; a < t.fam.Z(); a++ {
		idx := a*w + int(t.fam.Index(a, term))
		if t.kind == Count {
			t.cells[idx] += int64(t.fam.Sign(a, term)) * count
		} else {
			t.cells[idx] += count
		}
	}
}

// AddCounts records a whole term-count map, e.g. one document body.
func (t *Table) AddCounts(counts map[uint64]int64) {
	for term, c := range counts {
		t.Add(term, c)
	}
}

// AddConservative records count occurrences of term with the
// conservative-update policy (Estan & Varghese): each counter is raised
// only as far as needed to keep the minimum estimate correct, which
// tightens Count-Min's overestimation on skewed streams. Valid only for
// CountMin tables and non-negative counts — conservative updates are not
// linear, so deletion is unsupported (use plain Add for that trade-off).
func (t *Table) AddConservative(term uint64, count int64) error {
	if t.kind != CountMin {
		return fmt.Errorf("%w: conservative update requires CountMin, have %v", ErrBadKind, t.kind)
	}
	if count < 0 {
		return fmt.Errorf("%w: conservative update cannot delete (count %d)", ErrIncompatible, count)
	}
	if count == 0 {
		return nil
	}
	w := t.fam.W()
	z := t.fam.Z()
	idx := make([]int, z)
	min := int64(math.MaxInt64)
	for a := 0; a < z; a++ {
		idx[a] = a*w + int(t.fam.Index(a, term))
		if v := t.cells[idx[a]]; v < min {
			min = v
		}
	}
	target := min + count
	for _, i := range idx {
		if t.cells[i] < target {
			t.cells[i] = target
		}
	}
	return nil
}

// MergeMax combines two CountMin tables cell-wise by maximum. Unlike
// Merge (which adds), the result upper-bounds both inputs and is the
// correct combination rule for conservative-update tables, at the price
// of no longer being a sketch of the multiset union.
//
//csfltr:deterministic
func (t *Table) MergeMax(other *Table) error {
	if other == nil {
		return fmt.Errorf("%w: nil other", ErrIncompatible)
	}
	if t.kind != CountMin || other.kind != CountMin {
		return fmt.Errorf("%w: MergeMax requires CountMin tables", ErrBadKind)
	}
	if t.fam.Z() != other.fam.Z() || t.fam.W() != other.fam.W() ||
		t.fam.Seed() != other.fam.Seed() || t.fam.Kind() != other.fam.Kind() {
		return fmt.Errorf("%w: geometry/seed mismatch", ErrIncompatible)
	}
	for i, v := range other.cells {
		if v > t.cells[i] {
			t.cells[i] = v
		}
	}
	return nil
}

// Cell returns the raw counter at (row, col).
func (t *Table) Cell(row int, col uint32) int64 {
	return t.cells[row*t.fam.W()+int(col)]
}

// LookupColumns returns the raw counters C[a][cols[a]] for every row a.
// This is exactly the owner-side operation of Algorithm 2: the querier
// supplies one (possibly obfuscated) column index per row and receives the
// corresponding cells. len(cols) must equal Z.
func (t *Table) LookupColumns(cols []uint32) ([]int64, error) {
	if len(cols) != t.fam.Z() {
		return nil, fmt.Errorf("%w: got %d column indexes for %d rows",
			ErrIncompatible, len(cols), t.fam.Z())
	}
	w := uint32(t.fam.W())
	out := make([]int64, len(cols))
	for a, c := range cols {
		if c >= w {
			return nil, fmt.Errorf("%w: column %d out of range [0,%d)", ErrIncompatible, c, w)
		}
		out[a] = t.cells[a*int(w)+int(c)]
	}
	return out, nil
}

// smallRows is the row count up to which estimation scratch lives on the
// stack. Typical configurations use z around 30 (the paper's default), so
// the hot estimation paths run allocation-free.
const smallRows = 64

// Estimate returns the point estimate of term's count using all rows.
// The per-row scratch is stack-allocated for z <= 64, so the call is
// allocation-free at practical sketch depths.
func (t *Table) Estimate(term uint64) int64 {
	z := t.fam.Z()
	w := t.fam.W()
	var stack [smallRows]float64
	vals := stack[:0]
	if z > smallRows {
		vals = make([]float64, 0, z)
	}
	for a := 0; a < z; a++ {
		v := float64(t.cells[a*w+int(t.fam.Index(a, term))])
		if t.kind == Count {
			v *= float64(t.fam.Sign(a, term))
		}
		vals = append(vals, v)
	}
	if t.kind == Count {
		return int64(math.Round(MedianInPlace(vals)))
	}
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	return int64(math.Round(min))
}

// EstimateFromRows combines per-row (possibly noise-perturbed) cell values
// into a single count estimate for term, using only the listed rows. This
// is the querier-side recovery step of Algorithm 1: after obfuscation only
// the rows in the private index set PV carry real signal.
//
// For Count Sketch each value is first multiplied by the sign hash
// g_a(term) and the median is returned; for Count-Min the minimum is
// returned. values[i] must correspond to rows[i].
func EstimateFromRows(kind Kind, fam *hashutil.Family, term uint64, rows []int, values []float64) float64 {
	if len(rows) == 0 || len(rows) != len(values) {
		return 0
	}
	if kind != Count {
		// Count-Min: the minimum needs no sign adjustment and no scratch.
		min := values[0]
		for _, v := range values[1:] {
			if v < min {
				min = v
			}
		}
		return min
	}
	var stack [smallRows]float64
	adj := stack[:0]
	if len(rows) > smallRows {
		adj = make([]float64, 0, len(rows))
	}
	for i, a := range rows {
		adj = append(adj, float64(fam.Sign(a, term))*values[i])
	}
	return MedianInPlace(adj)
}

// Median returns the median of xs (average of the two central values for
// even length). xs is not modified; use MedianInPlace on a slice you own
// to avoid the defensive copy.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var stack [smallRows]float64
	s := stack[:0]
	if len(xs) > smallRows {
		s = make([]float64, 0, len(xs))
	}
	s = append(s, xs...)
	return MedianInPlace(s)
}

// MedianInPlace returns the median of xs, reordering xs as scratch: a
// full sort is replaced by insertion sort for small inputs and a Hoare
// quickselect beyond that, so the common z-row estimation path costs
// O(n) moves instead of O(n log n) plus a copy.
func MedianInPlace(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	h := n / 2
	if n <= 24 {
		// Insertion sort: branch-predictable and allocation-free at the
		// private-index-set sizes (z1 around 10) the protocol uses.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
	} else {
		quickselect(xs, h)
	}
	if n%2 == 1 {
		return xs[h]
	}
	// Even length: the other central value is the maximum of the lower
	// partition (quickselect leaves xs[:h] <= xs[h]).
	lo := xs[0]
	for _, v := range xs[1:h] {
		if v > lo {
			lo = v
		}
	}
	return (lo + xs[h]) / 2
}

// quickselect partially sorts xs so that xs[k] holds the k-th smallest
// value, everything before it is <= xs[k] and everything after is >=.
// Median-of-three pivoting keeps sorted and reversed inputs off the
// quadratic path.
func quickselect(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Merge adds other into t cell-wise. Both tables must share kind and hash
// family geometry (same Z, W, seed and hash kind), otherwise the merged
// sketch would be meaningless.
//
//csfltr:deterministic
func (t *Table) Merge(other *Table) error {
	if other == nil {
		return fmt.Errorf("%w: nil other", ErrIncompatible)
	}
	if t.kind != other.kind ||
		t.fam.Z() != other.fam.Z() || t.fam.W() != other.fam.W() ||
		t.fam.Seed() != other.fam.Seed() || t.fam.Kind() != other.fam.Kind() {
		return fmt.Errorf("%w: kind/geometry/seed mismatch", ErrIncompatible)
	}
	for i, v := range other.cells {
		t.cells[i] += v
	}
	return nil
}

// Clone returns a deep copy of the table sharing the (immutable) family.
func (t *Table) Clone() *Table {
	c := &Table{kind: t.kind, fam: t.fam, cells: make([]int64, len(t.cells))}
	copy(c.cells, t.cells)
	return c
}

// Reset zeroes every cell.
func (t *Table) Reset() {
	for i := range t.cells {
		t.cells[i] = 0
	}
}

// SizeBytes returns the in-memory size of the counter array, the space
// quantity reported in the paper's Fig. 4 space-cost rows.
func (t *Table) SizeBytes() int { return 8 * len(t.cells) }

// marshalMagic guards serialized tables.
const marshalMagic = uint32(0x434b5431) // "CKT1"

// MarshalBinary serializes the table (kind, geometry, seed, counters).
// The hash family is reconstructed from its parameters on unmarshal, so a
// serialized sketch is self-contained — this is what parties ship to each
// other when exchanging whole sketches.
func (t *Table) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+1+1+8+8+8+8*len(t.cells))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(marshalMagic)
	buf = append(buf, byte(t.kind), byte(t.fam.Kind()))
	put64(uint64(t.fam.Z()))
	put64(uint64(t.fam.W()))
	put64(t.fam.Seed())
	for _, c := range t.cells {
		put64(uint64(c))
	}
	return buf, nil
}

// UnmarshalTable reconstructs a table serialized by MarshalBinary.
func UnmarshalTable(data []byte) (*Table, error) {
	const header = 4 + 2 + 8 + 8 + 8
	if len(data) < header {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[:4]) != marshalMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	kind := Kind(data[4])
	hkind := hashutil.Kind(data[5])
	z := int(binary.LittleEndian.Uint64(data[6:14]))
	w := int(binary.LittleEndian.Uint64(data[14:22]))
	seed := binary.LittleEndian.Uint64(data[22:30])
	if z <= 0 || w <= 1 || z > 1<<20 || w > 1<<30 {
		return nil, fmt.Errorf("%w: implausible geometry z=%d w=%d", ErrCorrupt, z, w)
	}
	want := header + 8*z*w
	if len(data) != want {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(data), want)
	}
	fam, err := hashutil.NewFamily(hkind, z, w, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	t, err := New(kind, fam)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for i := range t.cells {
		t.cells[i] = int64(binary.LittleEndian.Uint64(data[header+8*i:]))
	}
	return t, nil
}
