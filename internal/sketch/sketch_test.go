package sketch

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"csfltr/internal/hashutil"
	"csfltr/internal/zipf"
)

func fam(t testing.TB, z, w int, seed uint64) *hashutil.Family {
	t.Helper()
	f, err := hashutil.NewFamily(hashutil.KindPolynomial, z, w, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	f := fam(t, 3, 16, 1)
	if _, err := New(Count, nil); !errors.Is(err, ErrNilFamily) {
		t.Fatalf("nil family: %v", err)
	}
	if _, err := New(Kind(9), f); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: %v", err)
	}
	tab, err := New(Count, f)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Z() != 3 || tab.W() != 16 || tab.Kind() != Count {
		t.Fatal("geometry mismatch")
	}
	if tab.SizeBytes() != 8*3*16 {
		t.Fatalf("SizeBytes = %d", tab.SizeBytes())
	}
}

func TestKindString(t *testing.T) {
	if Count.String() != "count" || CountMin.String() != "count-min" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

// TestExactRecoverySparse: with few distinct terms and a wide table there
// are no collisions, so estimates are exact for both sketch kinds.
func TestExactRecoverySparse(t *testing.T) {
	for _, kind := range []Kind{Count, CountMin} {
		tab := MustNew(kind, fam(t, 5, 4096, 3))
		truth := map[uint64]int64{10: 7, 20: 3, 30: 19, 40: 1}
		tab.AddCounts(truth)
		for term, want := range truth {
			if got := tab.Estimate(term); got != want {
				t.Fatalf("kind %v: Estimate(%d) = %d, want %d", kind, term, got, want)
			}
		}
		// Absent term estimates ~0 (exactly 0 without collisions).
		if got := tab.Estimate(999); got != 0 {
			t.Fatalf("kind %v: absent term estimated %d", kind, got)
		}
	}
}

// TestCountMinOverestimates: Count-Min is a one-sided estimator; it never
// underestimates a count.
func TestCountMinOverestimates(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 4, 8, 7)) // tiny width forces collisions
	rng := rand.New(rand.NewSource(1))
	truth := make(map[uint64]int64)
	for i := 0; i < 200; i++ {
		term := uint64(rng.Intn(100))
		truth[term]++
		tab.Add(term, 1)
	}
	for term, want := range truth {
		if got := tab.Estimate(term); got < want {
			t.Fatalf("CountMin underestimated term %d: %d < %d", term, got, want)
		}
	}
}

// TestCountSketchUnbiased: the Count Sketch estimator should be unbiased;
// averaged over many independent families the mean estimate converges to
// the true count even under heavy collisions.
func TestCountSketchUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dist := zipf.MustNew(500, 1.05)
	// One fixed multiset, many sketch families.
	counts := make(map[uint64]int64)
	for i := 0; i < 5000; i++ {
		counts[uint64(dist.Sample(rng))]++
	}
	const target = uint64(3)
	truth := counts[target]
	if truth == 0 {
		t.Fatal("test setup: target term did not occur")
	}
	var sum float64
	const families = 300
	for s := 0; s < families; s++ {
		tab := MustNew(Count, fam(t, 1, 32, uint64(1000+s)))
		tab.AddCounts(counts)
		rows := []int{0}
		vals := []float64{float64(tab.Cell(0, tab.Family().Index(0, target)))}
		sum += EstimateFromRows(Count, tab.Family(), target, rows, vals)
	}
	mean := sum / families
	if math.Abs(mean-float64(truth)) > 0.15*float64(truth)+5 {
		t.Fatalf("Count Sketch biased: mean %f vs truth %d", mean, truth)
	}
}

// TestTheorem2ErrorBound checks the single-term error bound of Theorem 2
// empirically (without DP noise, the epsilon term drops out): the error
// should stay within sqrt(64/w * F2Res) with high probability.
func TestTheorem2ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dist := zipf.MustNew(2000, 1.1)
	counts := make(map[uint64]int64)
	var freqs []float64
	{
		tmp := map[uint64]int64{}
		for i := 0; i < 20000; i++ {
			tmp[uint64(dist.Sample(rng))]++
		}
		for k, v := range tmp {
			counts[k] = v
			freqs = append(freqs, float64(v))
		}
	}
	const w = 256
	const z = 9
	r := w / 8
	f2res := zipf.ResidualF2(freqs, r)
	bound := math.Sqrt(64 / float64(w) * f2res)
	tab := MustNew(Count, fam(t, z, w, 31))
	tab.AddCounts(counts)
	violations := 0
	total := 0
	for term, truth := range counts {
		got := float64(tab.Estimate(term))
		if math.Abs(got-float64(truth)) > bound {
			violations++
		}
		total++
	}
	// Theorem 2 gives probability >= 1 - e^{-O(z)}; allow 5% violations.
	if float64(violations)/float64(total) > 0.05 {
		t.Fatalf("error bound violated for %d/%d terms (bound %f)", violations, total, bound)
	}
}

// TestLinearity (property): sketch(A) merged with sketch(B) equals
// sketch(A ∪ B) cell-for-cell — the defining property of linear sketches.
func TestLinearity(t *testing.T) {
	f := fam(t, 4, 64, 11)
	check := func(aRaw, bRaw []uint8) bool {
		sa := MustNew(Count, f)
		sb := MustNew(Count, f)
		sAll := MustNew(Count, f)
		for _, x := range aRaw {
			sa.Add(uint64(x), 1)
			sAll.Add(uint64(x), 1)
		}
		for _, x := range bRaw {
			sb.Add(uint64(x), 1)
			sAll.Add(uint64(x), 1)
		}
		if err := sa.Merge(sb); err != nil {
			return false
		}
		for row := 0; row < 4; row++ {
			for col := uint32(0); col < 64; col++ {
				if sa.Cell(row, col) != sAll.Cell(row, col) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAddDeleteInverse (property): adding then deleting the same multiset
// returns the sketch to all zeros.
func TestAddDeleteInverse(t *testing.T) {
	f := fam(t, 3, 32, 13)
	check := func(raw []uint8) bool {
		tab := MustNew(Count, f)
		for _, x := range raw {
			tab.Add(uint64(x), 1)
		}
		for _, x := range raw {
			tab.Add(uint64(x), -1)
		}
		for row := 0; row < 3; row++ {
			for col := uint32(0); col < 32; col++ {
				if tab.Cell(row, col) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIncompatible(t *testing.T) {
	base := MustNew(Count, fam(t, 3, 32, 1))
	cases := []*Table{
		nil,
		MustNew(CountMin, fam(t, 3, 32, 1)), // kind mismatch
		MustNew(Count, fam(t, 4, 32, 1)),    // z mismatch
		MustNew(Count, fam(t, 3, 64, 1)),    // w mismatch
		MustNew(Count, fam(t, 3, 32, 2)),    // seed mismatch
	}
	for i, other := range cases {
		if err := base.Merge(other); !errors.Is(err, ErrIncompatible) {
			t.Fatalf("case %d: expected ErrIncompatible, got %v", i, err)
		}
	}
}

func TestLookupColumns(t *testing.T) {
	tab := MustNew(Count, fam(t, 3, 16, 5))
	tab.Add(42, 7)
	cols := make([]uint32, 3)
	for a := range cols {
		cols[a] = tab.Family().Index(a, 42)
	}
	vals, err := tab.LookupColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	for a, v := range vals {
		want := int64(tab.Family().Sign(a, 42)) * 7
		if v != want {
			t.Fatalf("row %d: got %d, want %d", a, v, want)
		}
	}
	if _, err := tab.LookupColumns(cols[:2]); !errors.Is(err, ErrIncompatible) {
		t.Fatal("wrong-length cols should error")
	}
	bad := []uint32{0, 1, 99}
	if _, err := tab.LookupColumns(bad); !errors.Is(err, ErrIncompatible) {
		t.Fatal("out-of-range column should error")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-5, 10, 0}, 0},
	}
	for _, tc := range cases {
		if got := Median(tc.in); got != tc.want {
			t.Fatalf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestCloneAndReset(t *testing.T) {
	tab := MustNew(Count, fam(t, 2, 8, 3))
	tab.Add(1, 5)
	c := tab.Clone()
	tab.Add(1, 5)
	if c.Estimate(1) != 5 {
		t.Fatal("clone should be independent of original")
	}
	tab.Reset()
	if tab.Estimate(1) != 0 {
		t.Fatal("Reset should zero the table")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Count, CountMin} {
		tab := MustNew(kind, fam(t, 4, 32, 17))
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 500; i++ {
			tab.Add(uint64(rng.Intn(200)), 1)
		}
		data, err := tab.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalTable(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind() != kind || got.Z() != 4 || got.W() != 32 {
			t.Fatal("round trip lost geometry")
		}
		for term := uint64(0); term < 200; term++ {
			if got.Estimate(term) != tab.Estimate(term) {
				t.Fatalf("kind %v: estimates differ after round trip", kind)
			}
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	tab := MustNew(Count, fam(t, 2, 8, 1))
	data, _ := tab.MarshalBinary()
	cases := [][]byte{
		nil,
		data[:10],
		append(append([]byte{}, data...), 0), // trailing garbage
		func() []byte { d := append([]byte{}, data...); d[0] ^= 0xff; return d }(), // bad magic
	}
	for i, d := range cases {
		if _, err := UnmarshalTable(d); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("case %d: expected ErrCorrupt, got %v", i, err)
		}
	}
}

func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := fam(t, 3, 16, 23)
	check := func(raw []uint8) bool {
		tab := MustNew(Count, f)
		for _, x := range raw {
			tab.Add(uint64(x), 1)
		}
		data, err := tab.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalTable(data)
		if err != nil {
			return false
		}
		for row := 0; row < 3; row++ {
			for col := uint32(0); col < 16; col++ {
				if got.Cell(row, col) != tab.Cell(row, col) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f, _ := hashutil.NewFamily(hashutil.KindPolynomial, 30, 200, 1)
	tab := MustNew(Count, f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Add(uint64(i%1000), 1)
	}
}

func BenchmarkEstimate(b *testing.B) {
	f, _ := hashutil.NewFamily(hashutil.KindPolynomial, 30, 200, 1)
	tab := MustNew(Count, f)
	for i := 0; i < 10000; i++ {
		tab.Add(uint64(i%1000), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Estimate(uint64(i % 1000))
	}
}
