package sketch

import (
	"errors"
	"math/rand"
	"testing"

	"csfltr/internal/zipf"
)

func TestNewTrackerValidation(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 4, 64, 1))
	if _, err := NewTracker(nil, 5); !errors.Is(err, ErrIncompatible) {
		t.Fatal("nil table should error")
	}
	if _, err := NewTracker(tab, 0); !errors.Is(err, ErrIncompatible) {
		t.Fatal("k=0 should error")
	}
}

func TestTrackerExactOnSparseStream(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 5, 1024, 3))
	tr, err := NewTracker(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct counts, no collisions at this width.
	counts := map[uint64]int64{10: 50, 20: 40, 30: 30, 40: 20, 50: 10}
	for term, c := range counts {
		for i := int64(0); i < c; i++ {
			tr.Add(term, 1)
		}
	}
	top := tr.TopK()
	if len(top) != 3 {
		t.Fatalf("TopK size = %d", len(top))
	}
	want := []uint64{10, 20, 30}
	for i, e := range top {
		if e.Term != want[i] {
			t.Fatalf("TopK[%d] = %+v, want term %d", i, e, want[i])
		}
	}
	if top[0].Count != 50 {
		t.Fatalf("top count = %d", top[0].Count)
	}
}

// TestTrackerRecallOnZipfStream: on a skewed stream with heavy
// collisions, the tracker must still recall most of the true top-k.
func TestTrackerRecallOnZipfStream(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 5, 128, 7))
	const k = 10
	tr, err := NewTracker(tab, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	dist := zipf.MustNew(5000, 1.1)
	truth := map[uint64]int64{}
	for i := 0; i < 100000; i++ {
		term := uint64(dist.Sample(rng))
		truth[term]++
		tr.Add(term, 1)
	}
	// True top-k by exact counts.
	type tc struct {
		term  uint64
		count int64
	}
	var all []tc
	for term, c := range truth {
		all = append(all, tc{term, c})
	}
	// Selection: take k largest.
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < len(all); j++ {
			if all[j].count > all[maxJ].count {
				maxJ = j
			}
		}
		all[i], all[maxJ] = all[maxJ], all[i]
	}
	trueTop := map[uint64]struct{}{}
	for i := 0; i < k; i++ {
		trueTop[all[i].term] = struct{}{}
	}
	hits := 0
	for _, e := range tr.TopK() {
		if _, ok := trueTop[e.Term]; ok {
			hits++
		}
	}
	if hits < k-1 {
		t.Fatalf("tracker recalled only %d of the true top-%d", hits, k)
	}
}

func TestTrackerUpdatesExistingTerm(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 4, 512, 5))
	tr, err := NewTracker(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Add(1, 5)
	tr.Add(2, 3)
	tr.Add(3, 4)  // evicts 2
	tr.Add(2, 10) // 2 returns with count 13
	top := tr.TopK()
	if top[0].Term != 2 || top[0].Count != 13 {
		t.Fatalf("TopK = %v", top)
	}
	if tr.Estimate(2) != 13 {
		t.Fatalf("Estimate(2) = %d", tr.Estimate(2))
	}
}

func TestTrackerFewerTermsThanK(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 3, 256, 9))
	tr, _ := NewTracker(tab, 10)
	tr.Add(1, 1)
	tr.Add(2, 2)
	if got := tr.TopK(); len(got) != 2 || got[0].Term != 2 {
		t.Fatalf("TopK = %v", got)
	}
}
