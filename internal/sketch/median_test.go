package sketch

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"csfltr/internal/hashutil"
)

// refMedian is the specification: sort a copy, average the two central
// values for even length.
func refMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	h := len(s) / 2
	if len(s)%2 == 1 {
		return s[h]
	}
	return (s[h-1] + s[h]) / 2
}

func TestMedianInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Sweep sizes across the insertion-sort/quickselect threshold, with
	// shapes that historically break selection algorithms: random,
	// sorted, reversed, heavy duplicates, all-equal.
	for n := 0; n <= 60; n++ {
		for shape := 0; shape < 5; shape++ {
			xs := make([]float64, n)
			for i := range xs {
				switch shape {
				case 0:
					xs[i] = rng.NormFloat64() * 100
				case 1:
					xs[i] = float64(i)
				case 2:
					xs[i] = float64(n - i)
				case 3:
					xs[i] = float64(rng.Intn(3))
				case 4:
					xs[i] = 7
				}
			}
			want := refMedian(xs)
			if got := Median(xs); got != want {
				t.Fatalf("Median(n=%d shape=%d) = %v, want %v", n, shape, got, want)
			}
			scratch := append([]float64(nil), xs...)
			if got := MedianInPlace(scratch); got != want {
				t.Fatalf("MedianInPlace(n=%d shape=%d) = %v, want %v", n, shape, got, want)
			}
		}
	}
}

func TestMedianDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), xs...)
	Median(xs)
	if !reflect.DeepEqual(xs, orig) {
		t.Fatal("Median reordered its input")
	}
}

func BenchmarkMedianInPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{9, 31, 101} {
		xs := make([]float64, n)
		scratch := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(scratch, xs)
				MedianInPlace(scratch)
			}
		})
	}
}

func BenchmarkEstimateFromRows(b *testing.B) {
	fam, err := hashutil.NewFamily(hashutil.KindPolynomial, 30, 2000, 42)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]int, 10)
	values := make([]float64, 10)
	rng := rand.New(rand.NewSource(2))
	for i := range rows {
		rows[i] = 3 * i
		values[i] = rng.NormFloat64() * 50
	}
	for _, kind := range []Kind{Count, CountMin} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EstimateFromRows(kind, fam, 99, rows, values)
			}
		})
	}
}
