package sketch

import (
	"container/heap"
	"fmt"
	"sort"
)

// TopKTracker finds the heaviest terms of a stream: a sketch table
// estimates counts while a capped min-heap tracks the current top-k
// candidates (the classic "sketch + heap" heavy-hitters construction the
// paper's related work cites for federated heavy-hitter discovery).
// Combined with the DP perturbation of package dp this lets a party
// publish its salient vocabulary without exposing raw counts.
//
// Not safe for concurrent use.
type TopKTracker struct {
	table *Table
	k     int
	heap  topkHeap
	pos   map[uint64]int // term -> index in heap slice
}

// TermCount is one heavy-hitter entry.
type TermCount struct {
	Term  uint64
	Count int64
}

// topkHeap is a min-heap of TermCount by Count.
type topkHeap []TermCount

func (h topkHeap) Len() int           { return len(h) }
func (h topkHeap) Less(i, j int) bool { return h[i].Count < h[j].Count }
func (h *topkHeap) Push(x any)        { *h = append(*h, x.(TermCount)) }
func (h topkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewTracker builds a heavy-hitters tracker over a (typically empty)
// sketch table.
func NewTracker(table *Table, k int) (*TopKTracker, error) {
	if table == nil {
		return nil, fmt.Errorf("%w: nil table", ErrIncompatible)
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrIncompatible, k)
	}
	return &TopKTracker{table: table, k: k, pos: make(map[uint64]int)}, nil
}

// Add records count occurrences of term and maintains the top-k set.
func (t *TopKTracker) Add(term uint64, count int64) {
	t.table.Add(term, count)
	est := t.table.Estimate(term)
	if i, tracked := t.pos[term]; tracked {
		t.heap[i].Count = est
		heap.Fix(&t.heap, i)
		t.reindex()
		return
	}
	if t.heap.Len() < t.k {
		heap.Push(&t.heap, TermCount{Term: term, Count: est})
		t.reindex()
		return
	}
	if est > t.heap[0].Count {
		evicted := t.heap[0].Term
		t.heap[0] = TermCount{Term: term, Count: est}
		heap.Fix(&t.heap, 0)
		delete(t.pos, evicted)
		t.reindex()
	}
}

// reindex rebuilds the term -> heap-slot map (k is small, so a full
// rebuild keeps the code simple and obviously correct).
func (t *TopKTracker) reindex() {
	for i, e := range t.heap {
		t.pos[e.Term] = i
	}
}

// TopK returns the tracked heavy hitters sorted by descending estimated
// count (ties by ascending term).
func (t *TopKTracker) TopK() []TermCount {
	out := make([]TermCount, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// Estimate exposes the underlying sketch estimate for any term.
func (t *TopKTracker) Estimate(term uint64) int64 { return t.table.Estimate(term) }
