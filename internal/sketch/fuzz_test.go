package sketch

import (
	"bytes"
	"testing"

	"csfltr/internal/hashutil"
)

// FuzzUnmarshalTable hardens the sketch deserializer against arbitrary
// input: it must never panic, and any accepted payload must re-marshal
// to an equivalent table.
func FuzzUnmarshalTable(f *testing.F) {
	fam, err := hashutil.NewFamily(hashutil.KindPolynomial, 3, 16, 7)
	if err != nil {
		f.Fatal(err)
	}
	tab := MustNew(Count, fam)
	for i := uint64(0); i < 50; i++ {
		tab.Add(i, int64(i%5))
	}
	seed, err := tab.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalTable(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		round, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted table failed to re-marshal: %v", err)
		}
		got2, err := UnmarshalTable(round)
		if err != nil {
			t.Fatalf("re-marshalled table rejected: %v", err)
		}
		if got2.Z() != got.Z() || got2.W() != got.W() || got2.Kind() != got.Kind() {
			t.Fatal("round trip changed geometry")
		}
		if !bytes.Equal(round, mustMarshal(t, got2)) {
			t.Fatal("marshalling is not stable")
		}
	})
}

func mustMarshal(t *testing.T, tab *Table) []byte {
	t.Helper()
	data, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
