package sketch

import (
	"errors"
	"math/rand"
	"testing"

	"csfltr/internal/zipf"
)

// TestConservativeNeverUnderestimates: conservative update keeps the
// Count-Min one-sided guarantee.
func TestConservativeNeverUnderestimates(t *testing.T) {
	tab := MustNew(CountMin, fam(t, 4, 16, 3)) // heavy collisions
	rng := rand.New(rand.NewSource(1))
	truth := map[uint64]int64{}
	for i := 0; i < 500; i++ {
		term := uint64(rng.Intn(80))
		truth[term]++
		if err := tab.AddConservative(term, 1); err != nil {
			t.Fatal(err)
		}
	}
	for term, want := range truth {
		if got := tab.Estimate(term); got < want {
			t.Fatalf("conservative CM underestimated term %d: %d < %d", term, got, want)
		}
	}
}

// TestConservativeTightensEstimates: on a skewed stream, conservative
// update should produce total error no worse than (and typically well
// below) plain Count-Min.
func TestConservativeTightensEstimates(t *testing.T) {
	f := fam(t, 4, 32, 5)
	plain := MustNew(CountMin, f)
	conservative := MustNew(CountMin, f)
	rng := rand.New(rand.NewSource(7))
	dist := zipf.MustNew(500, 1.2)
	truth := map[uint64]int64{}
	for i := 0; i < 20000; i++ {
		term := uint64(dist.Sample(rng))
		truth[term]++
		plain.Add(term, 1)
		if err := conservative.AddConservative(term, 1); err != nil {
			t.Fatal(err)
		}
	}
	var errPlain, errCons int64
	for term, want := range truth {
		errPlain += plain.Estimate(term) - want
		errCons += conservative.Estimate(term) - want
	}
	if errCons > errPlain {
		t.Fatalf("conservative error (%d) exceeds plain CM error (%d)", errCons, errPlain)
	}
	if errCons == errPlain {
		t.Log("warning: conservative update gave no improvement on this stream")
	}
}

func TestConservativeValidation(t *testing.T) {
	count := MustNew(Count, fam(t, 3, 16, 1))
	if err := count.AddConservative(1, 1); !errors.Is(err, ErrBadKind) {
		t.Fatal("conservative update on Count sketch should error")
	}
	cm := MustNew(CountMin, fam(t, 3, 16, 1))
	if err := cm.AddConservative(1, -1); !errors.Is(err, ErrIncompatible) {
		t.Fatal("negative conservative update should error")
	}
	if err := cm.AddConservative(1, 0); err != nil {
		t.Fatal("zero count should be a no-op")
	}
	if cm.Estimate(1) != 0 {
		t.Fatal("zero count changed the table")
	}
}

func TestMergeMax(t *testing.T) {
	f := fam(t, 3, 32, 9)
	a := MustNew(CountMin, f)
	b := MustNew(CountMin, f)
	if err := a.AddConservative(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddConservative(1, 9); err != nil {
		t.Fatal(err)
	}
	if err := b.AddConservative(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := a.MergeMax(b); err != nil {
		t.Fatal(err)
	}
	// Upper bound of both inputs.
	if a.Estimate(1) < 9 {
		t.Fatalf("MergeMax lost the larger count: %d", a.Estimate(1))
	}
	if a.Estimate(2) < 4 {
		t.Fatalf("MergeMax lost b's term: %d", a.Estimate(2))
	}
}

func TestMergeMaxValidation(t *testing.T) {
	f := fam(t, 3, 32, 9)
	cm := MustNew(CountMin, f)
	if err := cm.MergeMax(nil); !errors.Is(err, ErrIncompatible) {
		t.Fatal("nil other should error")
	}
	if err := cm.MergeMax(MustNew(Count, f)); !errors.Is(err, ErrBadKind) {
		t.Fatal("Count operand should error")
	}
	if err := MustNew(Count, f).MergeMax(cm); !errors.Is(err, ErrBadKind) {
		t.Fatal("Count receiver should error")
	}
	other := MustNew(CountMin, fam(t, 3, 32, 10))
	if err := cm.MergeMax(other); !errors.Is(err, ErrIncompatible) {
		t.Fatal("seed mismatch should error")
	}
}
