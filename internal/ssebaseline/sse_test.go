package ssebaseline

import (
	"bytes"
	"errors"
	"testing"
)

func key() []byte { return bytes.Repeat([]byte{7}, 32) }

func builtIndex(t *testing.T) (*Client, *Index) {
	t.Helper()
	c, err := NewClient(key())
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(c)
	docs := map[int]map[uint64]int64{
		0: {10: 3, 20: 1},
		1: {10: 7, 30: 2},
		2: {20: 5},
	}
	for id, counts := range docs {
		if err := ix.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Seal(); err != nil {
		t.Fatal(err)
	}
	return c, ix
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient([]byte("short")); !errors.Is(err, ErrBadKey) {
		t.Fatal("short key should be rejected")
	}
	if _, err := NewClient(key()); err != nil {
		t.Fatal(err)
	}
}

func TestSearchRoundTrip(t *testing.T) {
	c, ix := builtIndex(t)
	list, err := c.Search(ix, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].DocID != 0 || list[0].Count != 3 || list[1].DocID != 1 || list[1].Count != 7 {
		t.Fatalf("Search(10) = %v", list)
	}
	if _, err := c.Search(ix, 999); !errors.Is(err, ErrUnknownTerm) {
		t.Fatal("absent term should report ErrUnknownTerm")
	}
}

func TestTokensAreDeterministicAndKeyed(t *testing.T) {
	c1, _ := NewClient(key())
	c2, _ := NewClient(key())
	other, _ := NewClient(bytes.Repeat([]byte{9}, 32))
	if c1.TokenFor(42) != c2.TokenFor(42) {
		t.Fatal("tokens must be deterministic per key")
	}
	if c1.TokenFor(42) == other.TokenFor(42) {
		t.Fatal("different keys must give different tokens")
	}
	if c1.TokenFor(42) == c1.TokenFor(43) {
		t.Fatal("different terms must give different tokens")
	}
}

func TestServerSeesOnlyCiphertext(t *testing.T) {
	c, ix := builtIndex(t)
	token := c.TokenFor(10)
	payload, err := ix.Lookup(token)
	if err != nil {
		t.Fatal(err)
	}
	// Plaintext would contain docID 0 and count 3 as little-endian
	// uint32s back to back; the ciphertext must not.
	plainPrefix := []byte{0, 0, 0, 0, 3, 0, 0, 0}
	if bytes.Contains(payload, plainPrefix) {
		t.Fatal("posting list stored in the clear")
	}
	// And decryption with the wrong client must NOT yield the plaintext.
	wrong, _ := NewClient(bytes.Repeat([]byte{9}, 32))
	garbled, err := wrong.Decrypt(token, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(garbled) == 2 && garbled[0].DocID == 0 && garbled[0].Count == 3 {
		t.Fatal("wrong key decrypted the posting list")
	}
}

func TestSealSemantics(t *testing.T) {
	c, _ := NewClient(key())
	ix := NewIndex(c)
	if err := ix.AddDocument(0, map[uint64]int64{1: 1}); err != nil {
		t.Fatal(err)
	}
	// Search before seal: refused.
	if _, err := ix.Lookup(c.TokenFor(1)); !errors.Is(err, ErrNotSealed) {
		t.Fatal("lookup before seal should be refused")
	}
	if err := ix.Seal(); err != nil {
		t.Fatal(err)
	}
	// The paper's flexibility point: no updates after sealing.
	if err := ix.AddDocument(1, map[uint64]int64{1: 1}); !errors.Is(err, ErrSealed) {
		t.Fatal("post-seal update should be refused")
	}
	if err := ix.Seal(); !errors.Is(err, ErrSealed) {
		t.Fatal("double seal should be refused")
	}
	if ix.NumTerms() != 1 || ix.SizeBytes() <= 0 {
		t.Fatalf("index stats wrong: %d terms, %d bytes", ix.NumTerms(), ix.SizeBytes())
	}
}

func TestReverseTopK(t *testing.T) {
	c, ix := builtIndex(t)
	top, traffic, err := c.ReverseTopK(ix, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].DocID != 1 || top[0].Count != 7 {
		t.Fatalf("ReverseTopK = %v", top)
	}
	// Traffic = full posting list (2 entries x 8 bytes) + token.
	if traffic != 16+32 {
		t.Fatalf("traffic = %d", traffic)
	}
	// Absent term: empty, no error.
	top, traffic, err = c.ReverseTopK(ix, 404, 5)
	if err != nil || len(top) != 0 || traffic != 0 {
		t.Fatalf("absent term: %v %d %v", top, traffic, err)
	}
}

func TestDecryptBadPayload(t *testing.T) {
	c, _ := NewClient(key())
	if _, err := c.Decrypt(c.TokenFor(1), []byte{1, 2, 3}); !errors.Is(err, ErrBadPayload) {
		t.Fatal("misaligned payload should error")
	}
}

// TestTrafficScalesWithDocFreq pins the comparator's weakness: reverse
// top-K traffic grows linearly with the number of matching documents,
// where the RTK-Sketch's is constant.
func TestTrafficScalesWithDocFreq(t *testing.T) {
	c, _ := NewClient(key())
	ix := NewIndex(c)
	const docs = 500
	for id := 0; id < docs; id++ {
		if err := ix.AddDocument(id, map[uint64]int64{7: int64(id%9 + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Seal(); err != nil {
		t.Fatal(err)
	}
	_, traffic, err := c.ReverseTopK(ix, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if traffic < 8*docs {
		t.Fatalf("traffic %d should carry the full %d-entry posting list", traffic, docs)
	}
}
