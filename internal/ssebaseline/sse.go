// Package ssebaseline implements a searchable-symmetric-encryption (SSE)
// inverted index in the style of Curtmola et al. — the encryption-based
// alternative the paper's related-work section argues against:
// "the prevailing encryption-based methods can be very low in efficiency
// [and flexibility]" for federated LTR.
//
// Construction (single-keyword SSE with deterministic search tokens):
//
//   - For each term t, the index key is HMAC-SHA256(K_token, t) — the
//     server can match tokens but learns nothing about the underlying
//     term beyond repetition patterns (standard SSE leakage).
//   - The posting list (docID, count pairs) of each term is encrypted
//     with AES-CTR under a per-term key derived from K_enc, so the
//     server cannot read memberships without a query.
//   - A search is: querier derives the token, server returns the
//     encrypted posting list, querier decrypts.
//
// The package exists as a *comparator*: expbench's sse experiment
// measures build time, index size, per-query latency and — the decisive
// axis — what it cannot do: answering a reverse top-K requires shipping
// the full posting list per term (traffic proportional to document
// frequency), supports no merging across owners, and every index is
// bound to one key holder. Tests pin the functional behaviour;
// bench_test.go compares it against the sketch pipeline.
package ssebaseline

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Errors returned by this package.
var (
	ErrBadKey      = errors.New("ssebaseline: key must be at least 16 bytes")
	ErrSealed      = errors.New("ssebaseline: index is sealed; no further updates")
	ErrNotSealed   = errors.New("ssebaseline: index must be sealed before searching")
	ErrBadPayload  = errors.New("ssebaseline: malformed encrypted posting list")
	ErrUnknownTerm = errors.New("ssebaseline: no posting list for token")
)

// Posting is one decrypted posting-list entry.
type Posting struct {
	DocID int32
	Count int32
}

// Token is the deterministic search token for one term.
type Token [32]byte

// Client holds the secret keys; it can build indexes and issue queries.
type Client struct {
	tokenKey []byte
	encKey   []byte
}

// NewClient derives the token and encryption keys from a master secret.
func NewClient(masterKey []byte) (*Client, error) {
	if len(masterKey) < 16 {
		return nil, ErrBadKey
	}
	return &Client{
		tokenKey: deriveKey(masterKey, "sse/token"),
		encKey:   deriveKey(masterKey, "sse/enc"),
	}, nil
}

// deriveKey computes HMAC-SHA256(master, label).
func deriveKey(master []byte, label string) []byte {
	h := hmac.New(sha256.New, master)
	h.Write([]byte(label))
	return h.Sum(nil)
}

// TokenFor computes the search token of a term.
func (c *Client) TokenFor(term uint64) Token {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], term)
	h := hmac.New(sha256.New, c.tokenKey)
	h.Write(buf[:])
	var t Token
	copy(t[:], h.Sum(nil))
	return t
}

// termCipher builds the AES-CTR stream for one term's posting list.
func (c *Client) termCipher(token Token) (cipher.Stream, error) {
	key := deriveKey(c.encKey, string(token[:16]))
	block, err := aes.NewCipher(key[:32])
	if err != nil {
		return nil, fmt.Errorf("ssebaseline: cipher init: %w", err)
	}
	iv := make([]byte, block.BlockSize())
	copy(iv, token[16:])
	return cipher.NewCTR(block, iv), nil
}

// Index is the server-side encrypted index: token -> encrypted posting
// list. Building happens client-side; the sealed structure is what the
// untrusted server stores.
type Index struct {
	lists   map[Token][]byte
	pending map[uint64][]Posting
	client  *Client
	sealed  bool
}

// NewIndex starts an index build under a client's keys.
func NewIndex(c *Client) *Index {
	return &Index{
		lists:   make(map[Token][]byte),
		pending: make(map[uint64][]Posting),
		client:  c,
	}
}

// AddDocument records a document's term counts into the pending build.
func (ix *Index) AddDocument(docID int, counts map[uint64]int64) error {
	if ix.sealed {
		return ErrSealed
	}
	for term, cnt := range counts {
		ix.pending[term] = append(ix.pending[term], Posting{DocID: int32(docID), Count: int32(cnt)})
	}
	return nil
}

// Seal encrypts every posting list and discards the plaintext. After
// sealing, the index answers token queries only — this is exactly the
// inflexibility the paper highlights: adding documents requires a
// rebuild (or a fresh sub-index per epoch).
func (ix *Index) Seal() error {
	if ix.sealed {
		return ErrSealed
	}
	for term, list := range ix.pending {
		sort.Slice(list, func(i, j int) bool { return list[i].DocID < list[j].DocID })
		plain := make([]byte, 8*len(list))
		for i, p := range list {
			binary.LittleEndian.PutUint32(plain[8*i:], uint32(p.DocID))
			binary.LittleEndian.PutUint32(plain[8*i+4:], uint32(p.Count))
		}
		token := ix.client.TokenFor(term)
		stream, err := ix.client.termCipher(token)
		if err != nil {
			return err
		}
		ct := make([]byte, len(plain))
		stream.XORKeyStream(ct, plain)
		ix.lists[token] = ct
	}
	ix.pending = nil
	ix.sealed = true
	return nil
}

// Lookup is the server-side operation: return the encrypted posting list
// for a token.
func (ix *Index) Lookup(token Token) ([]byte, error) {
	if !ix.sealed {
		return nil, ErrNotSealed
	}
	ct, ok := ix.lists[token]
	if !ok {
		return nil, ErrUnknownTerm
	}
	out := make([]byte, len(ct))
	copy(out, ct)
	return out, nil
}

// SizeBytes returns the server-side storage footprint.
func (ix *Index) SizeBytes() int64 {
	var n int64
	for _, ct := range ix.lists {
		n += int64(len(ct)) + 32
	}
	return n
}

// NumTerms returns the number of indexed terms.
func (ix *Index) NumTerms() int { return len(ix.lists) }

// Decrypt recovers a posting list from a Lookup payload.
func (c *Client) Decrypt(token Token, payload []byte) ([]Posting, error) {
	if len(payload)%8 != 0 {
		return nil, ErrBadPayload
	}
	stream, err := c.termCipher(token)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, len(payload))
	stream.XORKeyStream(plain, payload)
	out := make([]Posting, len(payload)/8)
	for i := range out {
		out[i] = Posting{
			DocID: int32(binary.LittleEndian.Uint32(plain[8*i:])),
			Count: int32(binary.LittleEndian.Uint32(plain[8*i+4:])),
		}
	}
	return out, nil
}

// Search runs the full client round trip: token, lookup, decrypt.
func (c *Client) Search(ix *Index, term uint64) ([]Posting, error) {
	token := c.TokenFor(term)
	payload, err := ix.Lookup(token)
	if err != nil {
		return nil, err
	}
	return c.Decrypt(token, payload)
}

// ReverseTopK answers the paper's reverse top-K query through the SSE
// index: fetch and decrypt the term's full posting list, then rank.
// Note what this costs relative to the RTK-Sketch: traffic and
// decryption work proportional to the term's document frequency, and
// the querier must hold the index keys — no symmetric two-sided privacy.
func (c *Client) ReverseTopK(ix *Index, term uint64, k int) ([]Posting, int64, error) {
	token := c.TokenFor(term)
	payload, err := ix.Lookup(token)
	if err != nil {
		if errors.Is(err, ErrUnknownTerm) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	traffic := int64(len(payload)) + int64(len(token))
	list, err := c.Decrypt(token, payload)
	if err != nil {
		return nil, traffic, err
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Count != list[j].Count {
			return list[i].Count > list[j].Count
		}
		return list[i].DocID < list[j].DocID
	})
	if k > 0 && len(list) > k {
		list = list[:k]
	}
	return list, traffic, nil
}
