package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewFamilyValidation(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		z, w int
		ok   bool
	}{
		{"valid polynomial", KindPolynomial, 5, 64, true},
		{"valid md5", KindMD5, 3, 128, true},
		{"zero rows", KindPolynomial, 0, 64, false},
		{"negative rows", KindPolynomial, -1, 64, false},
		{"width one", KindPolynomial, 5, 1, false},
		{"width zero", KindPolynomial, 5, 0, false},
		{"bad kind", Kind(42), 5, 64, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFamily(tc.kind, tc.z, tc.w, 1)
			if tc.ok && err != nil {
				t.Fatalf("NewFamily(%v,%d,%d) unexpected error: %v", tc.kind, tc.z, tc.w, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("NewFamily(%v,%d,%d) expected error, got none", tc.kind, tc.z, tc.w)
			}
			if tc.ok && (f.Z() != tc.z || f.W() != tc.w) {
				t.Fatalf("dimensions mismatch: got z=%d w=%d", f.Z(), f.W())
			}
		})
	}
}

func TestMustNewFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewFamily with invalid args should panic")
		}
	}()
	MustNewFamily(KindPolynomial, 0, 10, 1)
}

func TestDeterminism(t *testing.T) {
	for _, kind := range []Kind{KindPolynomial, KindMD5} {
		a := MustNewFamily(kind, 7, 101, 42)
		b := MustNewFamily(kind, 7, 101, 42)
		for row := 0; row < 7; row++ {
			for term := uint64(0); term < 200; term++ {
				if a.Index(row, term) != b.Index(row, term) {
					t.Fatalf("kind %v: Index not deterministic at row=%d term=%d", kind, row, term)
				}
				if a.Sign(row, term) != b.Sign(row, term) {
					t.Fatalf("kind %v: Sign not deterministic at row=%d term=%d", kind, row, term)
				}
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := MustNewFamily(KindPolynomial, 4, 1<<20, 1)
	b := MustNewFamily(KindPolynomial, 4, 1<<20, 2)
	same := 0
	const n = 1000
	for term := uint64(0); term < n; term++ {
		if a.Index(0, term) == b.Index(0, term) {
			same++
		}
	}
	if same > n/100 {
		t.Fatalf("families with different seeds collide too often: %d/%d", same, n)
	}
}

func TestIndexInRange(t *testing.T) {
	for _, kind := range []Kind{KindPolynomial, KindMD5} {
		f := MustNewFamily(kind, 5, 37, 7)
		check := func(term uint64, row uint8) bool {
			r := int(row) % f.Z()
			idx := f.Index(r, term)
			s := f.Sign(r, term)
			return idx < uint32(f.W()) && (s == 1 || s == -1)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("kind %v: %v", kind, err)
		}
	}
}

// TestUniformity checks that the index hash distributes terms roughly
// uniformly over the w buckets (chi-square against a loose threshold).
func TestUniformity(t *testing.T) {
	for _, kind := range []Kind{KindPolynomial, KindMD5} {
		const w = 32
		const n = 64000
		f := MustNewFamily(kind, 1, w, 99)
		counts := make([]int, w)
		for term := uint64(0); term < n; term++ {
			counts[f.Index(0, term)]++
		}
		expected := float64(n) / w
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 31 degrees of freedom; p=0.001 critical value ~ 61.1. Allow slack.
		if chi2 > 80 {
			t.Fatalf("kind %v: chi-square too large: %f (counts %v)", kind, chi2, counts)
		}
	}
}

// TestPairwiseCollision checks Pr[h(x)=h(y)] is close to 1/w for x != y,
// the property Theorem 1 of the paper relies on.
func TestPairwiseCollision(t *testing.T) {
	const w = 64
	const trials = 4000
	f := MustNewFamily(KindPolynomial, 8, w, 5)
	sm := NewSplitMix64(77)
	collisions := 0
	total := 0
	for row := 0; row < f.Z(); row++ {
		for i := 0; i < trials; i++ {
			x := sm.Next()
			y := sm.Next()
			if x == y {
				continue
			}
			if f.Index(row, x) == f.Index(row, y) {
				collisions++
			}
			total++
		}
	}
	got := float64(collisions) / float64(total)
	want := 1.0 / w
	if math.Abs(got-want) > 0.5*want {
		t.Fatalf("pairwise collision rate %f, want ~%f", got, want)
	}
}

// TestSignBalance checks the sign hash is roughly balanced between -1/+1.
func TestSignBalance(t *testing.T) {
	f := MustNewFamily(KindPolynomial, 4, 16, 11)
	const n = 20000
	for row := 0; row < f.Z(); row++ {
		sum := 0
		for term := uint64(0); term < n; term++ {
			sum += int(f.Sign(row, term))
		}
		if math.Abs(float64(sum)) > 3*math.Sqrt(n) {
			t.Fatalf("row %d sign bias too large: %d over %d draws", row, sum, n)
		}
	}
}

func TestMulMod61(t *testing.T) {
	cases := []struct{ x, y, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{mersenne61 - 1, 1, mersenne61 - 1},
		{mersenne61 - 1, mersenne61 - 1, 1}, // (-1)*(-1) = 1 mod p
		{2, mersenne61 - 1, mersenne61 - 2}, // 2*(-1) = -2 mod p
		{1 << 30, 1 << 30, 1 << 60},
	}
	for _, tc := range cases {
		if got := mulMod61(tc.x, tc.y); got != tc.want {
			t.Fatalf("mulMod61(%d,%d) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

// TestMulMod61Property cross-checks mulMod61 against big-free reference
// arithmetic using the identity on small operands.
func TestMulMod61Property(t *testing.T) {
	check := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		return mulMod61(x, y) == (x*y)%mersenne61
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeed(t *testing.T) {
	s1 := DeriveSeed([]byte("shared-secret"), "sketch-hash")
	s2 := DeriveSeed([]byte("shared-secret"), "sketch-hash")
	s3 := DeriveSeed([]byte("shared-secret"), "other-label")
	s4 := DeriveSeed([]byte("other-secret"), "sketch-hash")
	if s1 != s2 {
		t.Fatal("DeriveSeed not deterministic")
	}
	if s1 == s3 {
		t.Fatal("DeriveSeed ignores label")
	}
	if s1 == s4 {
		t.Fatal("DeriveSeed ignores secret")
	}
}

func TestKindString(t *testing.T) {
	if KindPolynomial.String() != "polynomial" || KindMD5.String() != "md5" {
		t.Fatal("unexpected Kind string values")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	a := NewSplitMix64(123)
	b := NewSplitMix64(123)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("SplitMix64 not deterministic")
		}
		if seen[va] {
			t.Fatalf("SplitMix64 repeated value within 1000 draws: %d", va)
		}
		seen[va] = true
	}
}

func BenchmarkIndexPolynomial(b *testing.B) {
	f := MustNewFamily(KindPolynomial, 30, 200, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Index(i%30, uint64(i))
	}
}

func BenchmarkIndexMD5(b *testing.B) {
	f := MustNewFamily(KindMD5, 30, 200, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Index(i%30, uint64(i))
	}
}
