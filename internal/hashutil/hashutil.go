// Package hashutil provides the pairwise-independent hash families used by
// every sketch in the CS-F-LTR system.
//
// A Family bundles z row hashes h_a : T -> [0, w) together with z sign
// hashes g_a : T -> {-1, +1}, exactly the (H, G) pair required by Count
// Sketch and by the RTK-Sketch built on top of it. Two constructions are
// offered:
//
//   - KindPolynomial: h(x) = ((a*x + b) mod p) mod w over the Mersenne
//     prime p = 2^61 - 1. This is the classical pairwise-independent
//     family and is the default for benchmarks.
//   - KindMD5: keyed MD5, matching the hash the paper reports using. The
//     key never leaves the federation, so the coordinating server cannot
//     evaluate the hashes (Section IV-B, Step 1 of the paper).
//
// All functions are deterministic given (kind, seed, z, w): every party in
// a federation that derives the same seed (see package keyex) evaluates
// identical hash families, which is what lets one party query another
// party's sketches.
package hashutil

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Kind selects a hash-family construction.
type Kind int

const (
	// KindPolynomial selects pairwise-independent polynomial hashing over
	// the Mersenne prime 2^61-1. Fast; used by default.
	KindPolynomial Kind = iota
	// KindMD5 selects keyed MD5 hashing, the construction named by the
	// paper. Slower but key-hiding.
	KindMD5
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindPolynomial:
		return "polynomial"
	case KindMD5:
		return "md5"
	default:
		return fmt.Sprintf("hashutil.Kind(%d)", int(k))
	}
}

// mersenne61 is the Mersenne prime 2^61 - 1 used as the field modulus for
// the polynomial family.
const mersenne61 = (1 << 61) - 1

// Errors returned by NewFamily.
var (
	ErrBadRows  = errors.New("hashutil: number of rows z must be in [1, 1<<20]")
	ErrBadWidth = errors.New("hashutil: width w must be in [2, 1<<30]")
	ErrBadKind  = errors.New("hashutil: unknown hash kind")
)

// Upper bounds on family geometry; parameters beyond these are always a
// configuration error (or hostile serialized input) and would make the
// coefficient allocation explode.
const (
	MaxRows  = 1 << 20
	MaxWidth = 1 << 30
)

// rowParams holds the per-row coefficients of one polynomial hash pair.
type rowParams struct {
	a, b uint64 // index hash: ((a*x + b) mod p) mod w
	c, d uint64 // sign hash:  ((c*x + d) mod p) mod 2 -> {-1,+1}
}

// Family is a fixed set of z pairwise-independent (index, sign) hash pairs
// with index range [0, w). A Family is immutable after construction and is
// safe for concurrent use.
type Family struct {
	kind Kind
	z    int
	w    uint32
	// seed is the shared federation hash seed: the server must never
	// learn it (PAPER.md §IV-B Step 1), so a Family must not be
	// marshalled, logged, or embedded in a wire message.
	//
	//csfltr:private
	seed uint64
	//csfltr:private
	rows []rowParams // polynomial coefficients (also salts MD5 rows)
	//csfltr:private
	key [16]byte // MD5 key material derived from seed
}

// NewFamily constructs a hash family of kind k with z rows and index range
// [0, w), deterministically derived from seed.
func NewFamily(k Kind, z, w int, seed uint64) (*Family, error) {
	if z <= 0 || z > MaxRows {
		return nil, fmt.Errorf("%w (got %d)", ErrBadRows, z)
	}
	if w < 2 || w > MaxWidth {
		return nil, fmt.Errorf("%w (got %d)", ErrBadWidth, w)
	}
	if k != KindPolynomial && k != KindMD5 {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, int(k))
	}
	f := &Family{kind: k, z: z, w: uint32(w), seed: seed}
	sm := NewSplitMix64(seed)
	f.rows = make([]rowParams, z)
	for i := range f.rows {
		f.rows[i] = rowParams{
			a: 1 + sm.Next()%(mersenne61-1), // a in [1, p)
			b: sm.Next() % mersenne61,       // b in [0, p)
			c: 1 + sm.Next()%(mersenne61-1),
			d: sm.Next() % mersenne61,
		}
	}
	binary.LittleEndian.PutUint64(f.key[:8], sm.Next())
	binary.LittleEndian.PutUint64(f.key[8:], sm.Next())
	return f, nil
}

// MustNewFamily is NewFamily that panics on error; for use with constant
// parameters known to be valid.
func MustNewFamily(k Kind, z, w int, seed uint64) *Family {
	f, err := NewFamily(k, z, w, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// Kind reports the construction used by the family.
func (f *Family) Kind() Kind { return f.kind }

// Z returns the number of hash rows.
func (f *Family) Z() int { return f.z }

// W returns the index range: Index always falls in [0, W).
func (f *Family) W() int { return int(f.w) }

// Seed returns the seed the family was derived from.
func (f *Family) Seed() uint64 { return f.seed }

// mulMod61 computes (x*y) mod (2^61-1) without overflow.
func mulMod61(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	// Split the 128-bit product into 61-bit limbs and fold: since
	// 2^61 ≡ 1 (mod p), each limb folds down by addition.
	r := lo&mersenne61 + (lo>>61 | hi<<3)
	if r >= mersenne61 {
		r -= mersenne61
	}
	// hi can be up to 2^64; the fold above used hi<<3 which may itself
	// exceed p; one extra reduction keeps the result canonical.
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// affineMod61 computes ((a*x + b) mod p) for the Mersenne prime p.
func affineMod61(a, x, b uint64) uint64 {
	r := mulMod61(a, x%mersenne61) + b
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// Index evaluates h_row(term) in [0, W).
func (f *Family) Index(row int, term uint64) uint32 {
	p := &f.rows[row]
	switch f.kind {
	case KindMD5:
		return uint32(f.md5Hash(row, term, 0) % uint64(f.w))
	default:
		return uint32(affineMod61(p.a, term, p.b) % uint64(f.w))
	}
}

// Sign evaluates g_row(term) in {-1, +1}.
func (f *Family) Sign(row int, term uint64) int32 {
	p := &f.rows[row]
	var bit uint64
	switch f.kind {
	case KindMD5:
		bit = f.md5Hash(row, term, 1) & 1
	default:
		bit = affineMod61(p.c, term, p.d) & 1
	}
	if bit == 0 {
		return -1
	}
	return 1
}

// md5Hash computes the keyed MD5 hash of (row, term, purpose) reduced to a
// uint64. purpose separates the index-hash and sign-hash domains.
func (f *Family) md5Hash(row int, term uint64, purpose byte) uint64 {
	var buf [16 + 8 + 8 + 1]byte
	copy(buf[:16], f.key[:])
	binary.LittleEndian.PutUint64(buf[16:], uint64(row))
	binary.LittleEndian.PutUint64(buf[24:], term)
	buf[32] = purpose
	sum := md5.Sum(buf[:])
	return binary.LittleEndian.Uint64(sum[:8])
}

// SplitMix64 is a tiny, fast, well-distributed PRNG used for deterministic
// seed expansion (Steele et al.). It is NOT a cryptographic generator; it
// only expands already-secret seed material into hash coefficients.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a generator seeded with s.
func NewSplitMix64(s uint64) *SplitMix64 { return &SplitMix64{state: s} }

// Next returns the next 64-bit value of the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives a labelled 64-bit seed from shared
// secret material. Parties that agree on a secret (via Diffie-Hellman, see
// package keyex) call DeriveSeed(secret, "sketch-hash") etc. to obtain the
// seeds for each hash family in the protocol, keeping them hidden from the
// coordinating server.
func DeriveSeed(secret []byte, label string) uint64 {
	h := md5.New()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write(secret)
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}
