// Package store persists sketch state to disk. The paper stresses that
// sketches are "reusable after construction" — a party builds its
// per-document sketches and RTK-Sketch once, then serves queries across
// sessions and federation reconfigurations; this package provides the
// crash-safe storage for that: atomic writes (temp file + rename), CRC32
// integrity footers, and format-version checks.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/sketch"
)

// Errors returned by this package.
var (
	ErrChecksum = errors.New("store: checksum mismatch")
	ErrTooShort = errors.New("store: file too short")
)

// footerSize is the CRC32 (4 bytes) + payload length (8 bytes) trailer.
const footerSize = 12

// writeAtomic writes payload to path via a temporary file in the same
// directory, appending an integrity footer, then renames into place.
func writeAtomic(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".store-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	//csfltr:allow uncheckederr -- best-effort cleanup; a leftover temp file is harmless
	defer os.Remove(tmpName) // no-op after successful rename

	var footer [footerSize]byte
	binary.LittleEndian.PutUint32(footer[:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(footer[4:], uint64(len(payload)))
	if _, err := tmp.Write(payload); err == nil {
		_, err = tmp.Write(footer[:])
	}
	if err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing temp file: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	return nil
}

// readVerified reads a file written by writeAtomic and verifies its
// footer.
func readVerified(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	if len(data) < footerSize {
		return nil, fmt.Errorf("%w: %s (%d bytes)", ErrTooShort, path, len(data))
	}
	payload := data[:len(data)-footerSize]
	footer := data[len(data)-footerSize:]
	wantCRC := binary.LittleEndian.Uint32(footer[:4])
	wantLen := binary.LittleEndian.Uint64(footer[4:])
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, footer says %d",
			ErrChecksum, path, len(payload), wantLen)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	return payload, nil
}

// SaveOwner snapshots a document owner's full sketch state to path
// atomically. The snapshot includes the federation hash seed — protect
// the file like the raw corpus.
func SaveOwner(path string, o *core.Owner) error {
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		return fmt.Errorf("store: serializing owner: %w", err)
	}
	return writeAtomic(path, buf.Bytes())
}

// LoadOwner restores an owner snapshot. mech supplies the fresh DP
// randomness (not persisted); use dp.ForEpsilon with the snapshot's
// epsilon, available afterwards via Owner.Params().
func LoadOwner(path string, mech dp.Mechanism) (*core.Owner, error) {
	payload, err := readVerified(path)
	if err != nil {
		return nil, err
	}
	o, err := core.ReadOwner(bytes.NewReader(payload), mech)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return o, nil
}

// SaveSketch persists a single sketch table atomically.
func SaveSketch(path string, t *sketch.Table) error {
	data, err := t.MarshalBinary()
	if err != nil {
		return fmt.Errorf("store: serializing sketch: %w", err)
	}
	return writeAtomic(path, data)
}

// LoadSketch restores a sketch table saved with SaveSketch.
func LoadSketch(path string) (*sketch.Table, error) {
	payload, err := readVerified(path)
	if err != nil {
		return nil, err
	}
	t, err := sketch.UnmarshalTable(payload)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return t, nil
}

// Copy streams a verified snapshot to w (e.g. for backup shipping)
// without deserializing it.
func Copy(path string, w io.Writer) (int64, error) {
	payload, err := readVerified(path)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(payload)
	return int64(n), err
}
