package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
)

func testOwner(t *testing.T, keepTables bool) *core.Owner {
	t.Helper()
	p := core.DefaultParams()
	p.W = 64
	p.Z = 6
	p.Z1 = 3
	p.K = 5
	p.Alpha = 2
	p.Epsilon = 0
	var opts []core.OwnerOption
	if !keepTables {
		opts = append(opts, core.WithoutDocTables())
	}
	o, err := core.NewOwner(p, 42, dp.Disabled(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for id := 0; id < 30; id++ {
		counts := map[uint64]int64{}
		for j := 0; j < 40; j++ {
			counts[uint64(rng.Intn(200))]++
		}
		counts[999] = int64(30 - id) // probe with known ranking
		if err := o.AddDocument(id, counts); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// queryTop runs an RTK query against an owner and returns doc ids.
func queryTop(t *testing.T, o *core.Owner, term uint64, k int) []int {
	t.Helper()
	q, err := core.NewQuerier(o.Params(), 42, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.RTKReverseTopK(q, o, term, k)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(res))
	for i, dc := range res {
		ids[i] = dc.DocID
	}
	return ids
}

func TestSaveLoadOwnerRoundTrip(t *testing.T) {
	for _, keep := range []bool{true, false} {
		o := testOwner(t, keep)
		path := filepath.Join(t.TempDir(), "owner.snap")
		if err := SaveOwner(path, o); err != nil {
			t.Fatal(err)
		}
		got, err := LoadOwner(path, dp.Disabled())
		if err != nil {
			t.Fatal(err)
		}
		if got.Params() != o.Params() {
			t.Fatalf("params differ: %+v vs %+v", got.Params(), o.Params())
		}
		if len(got.DocIDs()) != 30 {
			t.Fatalf("doc roster lost: %d", len(got.DocIDs()))
		}
		length, unique, err := got.DocMeta(3)
		if err != nil {
			t.Fatal(err)
		}
		wl, wu, _ := o.DocMeta(3)
		if length != wl || unique != wu {
			t.Fatal("doc metadata lost")
		}
		// Identical query results before and after.
		before := queryTop(t, o, 999, 5)
		after := queryTop(t, got, 999, 5)
		if len(before) != len(after) {
			t.Fatalf("result sizes differ: %v vs %v", before, after)
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("keep=%v: results differ: %v vs %v", keep, before, after)
			}
		}
		// TF queries only work when tables were kept.
		qr, err := core.NewQuerier(got.Params(), 42, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		query, priv := qr.BuildQuery(999)
		resp, err := got.AnswerTF(0, query)
		if keep {
			if err != nil {
				t.Fatal(err)
			}
			if est, err := qr.Recover(priv, resp); err != nil || est != 30 {
				t.Fatalf("restored TF = %v, %v", est, err)
			}
		} else if !errors.Is(err, core.ErrNoSketches) {
			t.Fatalf("dropped tables should refuse TF: %v", err)
		}
	}
}

func TestLoadOwnerRejectsCorruption(t *testing.T) {
	o := testOwner(t, true)
	path := filepath.Join(t.TempDir(), "owner.snap")
	if err := SaveOwner(path, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte.
	corrupted := append([]byte(nil), data...)
	corrupted[100] ^= 0xff
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOwner(path, dp.Disabled()); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: want ErrChecksum, got %v", err)
	}
	// Truncated file.
	if err := os.WriteFile(path, data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOwner(path, dp.Disabled()); !errors.Is(err, ErrTooShort) {
		t.Fatalf("truncated file: want ErrTooShort, got %v", err)
	}
	// Missing file.
	if _, err := LoadOwner(filepath.Join(t.TempDir(), "nope"), dp.Disabled()); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestLoadOwnerNilMechanism(t *testing.T) {
	o := testOwner(t, true)
	path := filepath.Join(t.TempDir(), "owner.snap")
	if err := SaveOwner(path, o); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOwner(path, nil); err == nil {
		t.Fatal("nil mechanism should be rejected")
	}
}

func TestSaveLoadSketch(t *testing.T) {
	fam, err := hashutil.NewFamily(hashutil.KindPolynomial, 4, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	tbl := sketch.MustNew(sketch.Count, fam)
	for i := uint64(0); i < 100; i++ {
		tbl.Add(i, int64(i%7))
	}
	path := filepath.Join(t.TempDir(), "table.sk")
	if err := SaveSketch(path, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSketch(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if got.Estimate(i) != tbl.Estimate(i) {
			t.Fatalf("estimates differ after reload for term %d", i)
		}
	}
}

func TestCopy(t *testing.T) {
	fam, _ := hashutil.NewFamily(hashutil.KindPolynomial, 2, 16, 1)
	tbl := sketch.MustNew(sketch.Count, fam)
	tbl.Add(5, 3)
	path := filepath.Join(t.TempDir(), "t.sk")
	if err := SaveSketch(path, tbl); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Copy(path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("Copy wrote %d bytes, buffer has %d", n, buf.Len())
	}
	if _, err := sketch.UnmarshalTable(buf.Bytes()); err != nil {
		t.Fatalf("copied payload not parseable: %v", err)
	}
}

// TestSaveFailurePaths exercises filesystem error handling: saving into
// a directory that does not exist must fail without leaving artifacts.
func TestSaveFailurePaths(t *testing.T) {
	o := testOwner(t, true)
	missing := filepath.Join(t.TempDir(), "no", "such", "dir", "owner.snap")
	if err := SaveOwner(missing, o); err == nil {
		t.Fatal("saving into a missing directory should fail")
	}
	fam, _ := hashutil.NewFamily(hashutil.KindPolynomial, 2, 8, 1)
	tbl := sketch.MustNew(sketch.Count, fam)
	if err := SaveSketch(missing, tbl); err == nil {
		t.Fatal("sketch save into a missing directory should fail")
	}
	if _, err := LoadSketch(missing); err == nil {
		t.Fatal("loading a missing sketch should fail")
	}
	if _, err := Copy(missing, &bytes.Buffer{}); err == nil {
		t.Fatal("copying a missing file should fail")
	}
}

// TestLoadSketchRejectsCorruptPayload: a valid CRC wrapper around an
// invalid sketch payload must still be rejected by the sketch layer.
func TestLoadSketchRejectsCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.sk")
	if err := writeAtomic(path, []byte("not a sketch at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSketch(path); err == nil {
		t.Fatal("invalid payload should be rejected")
	}
	if _, err := LoadOwner(path, dp.Disabled()); err == nil {
		t.Fatal("invalid owner payload should be rejected")
	}
}

func TestAtomicNoPartialFiles(t *testing.T) {
	dir := t.TempDir()
	o := testOwner(t, true)
	path := filepath.Join(dir, "owner.snap")
	if err := SaveOwner(path, o); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save; directory must contain exactly the
	// snapshot (no leftover temp files).
	if err := SaveOwner(path, o); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "owner.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("unexpected directory contents: %v", names)
	}
}

func BenchmarkSaveLoadOwner(b *testing.B) {
	p := core.DefaultParams()
	p.W = 128
	p.Z = 10
	p.Z1 = 5
	p.K = 10
	p.Alpha = 3
	p.Epsilon = 0
	o, err := core.NewOwner(p, 42, dp.Disabled())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for id := 0; id < 200; id++ {
		counts := map[uint64]int64{}
		for j := 0; j < 60; j++ {
			counts[uint64(rng.Intn(2000))]++
		}
		if err := o.AddDocument(id, counts); err != nil {
			b.Fatal(err)
		}
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "owner.snap")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SaveOwner(path, o); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadOwner(path, dp.Disabled()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSaveLoadSaveDeterminism: persisting, restoring, and persisting
// again must produce byte-identical files — the serialization is
// canonical, so snapshots can be compared and deduplicated by content.
func TestSaveLoadSaveDeterminism(t *testing.T) {
	dir := t.TempDir()
	o := testOwner(t, true)
	first := filepath.Join(dir, "owner1.snap")
	if err := SaveOwner(first, o); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadOwner(first, dp.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	second := filepath.Join(dir, "owner2.snap")
	if err := SaveOwner(second, restored); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("owner snapshot not canonical: save/load/save differs (%d vs %d bytes)",
			len(a), len(b))
	}

	fam, err := hashutil.NewFamily(hashutil.KindPolynomial, 4, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	tbl := sketch.MustNew(sketch.Count, fam)
	for i := uint64(0); i < 100; i++ {
		tbl.Add(i, int64(i%7)+1)
	}
	s1 := filepath.Join(dir, "t1.sk")
	if err := SaveSketch(s1, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSketch(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := filepath.Join(dir, "t2.sk")
	if err := SaveSketch(s2, back); err != nil {
		t.Fatal(err)
	}
	a, _ = os.ReadFile(s1)
	b, _ = os.ReadFile(s2)
	if !bytes.Equal(a, b) {
		t.Fatalf("sketch snapshot not canonical: save/load/save differs (%d vs %d bytes)",
			len(a), len(b))
	}
}

// TestFooterTampering attacks the integrity trailer field by field: a
// flipped CRC, a lying length field, and a file that is nothing but a
// footer must all be rejected with the documented sentinel errors.
func TestFooterTampering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sk")
	fam, _ := hashutil.NewFamily(hashutil.KindPolynomial, 2, 16, 1)
	tbl := sketch.MustNew(sketch.Count, fam)
	tbl.Add(5, 3)
	if err := SaveSketch(path, tbl); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(name string, mutate func([]byte)) {
		data := append([]byte(nil), pristine...)
		mutate(data)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSketch(path); !errors.Is(err, ErrChecksum) {
			t.Fatalf("%s: want ErrChecksum, got %v", name, err)
		}
	}
	tamper("flipped CRC field", func(d []byte) {
		d[len(d)-footerSize] ^= 0x01
	})
	tamper("lying length field", func(d []byte) {
		d[len(d)-1] ^= 0x01 // high byte of the uint64 payload length
	})
	tamper("truncated payload, intact footer", func(d []byte) {
		copy(d[1:], d[2:]) // shift payload left; footer fields untouched
	})

	// Shorter than a footer: rejected before any field is read.
	if err := os.WriteFile(path, pristine[:footerSize-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSketch(path); !errors.Is(err, ErrTooShort) {
		t.Fatalf("sub-footer file: want ErrTooShort, got %v", err)
	}
	// A footer-only file with consistent fields (empty payload, CRC of
	// nothing) passes the integrity layer and must then be rejected by the
	// payload decoder.
	empty := make([]byte, footerSize)
	binary.LittleEndian.PutUint32(empty[:4], crc32.ChecksumIEEE(nil))
	if err := os.WriteFile(path, empty, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSketch(path); err == nil || errors.Is(err, ErrChecksum) || errors.Is(err, ErrTooShort) {
		t.Fatalf("footer-only file: want a payload decode error, got %v", err)
	}
}
