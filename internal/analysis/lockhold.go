package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold flags blocking operations performed while a mutex is held:
// channel sends, net/http and net/rpc round-trips, and resilience.Call
// attempts. Any of these inside a critical section couples lock wait
// time to peer latency — with the PR 3 fan-out pool that is deadlock
// fuel: a worker blocked on a send while holding the shard lock stalls
// every sibling, and a breaker probe under a registry lock serializes
// the whole silo.
//
// The scan is region-based and intra-procedural: mu.Lock()/mu.RLock()
// opens a held region in the enclosing statement list, the matching
// Unlock closes it, and a deferred Unlock holds until function exit.
// Nested blocks inherit (a copy of) the held set, so an early unlock
// inside a branch correctly ends the region for that branch only.
// Goroutine and closure bodies do not inherit the held set — they run
// on their own stacks.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "flags channel sends and RPC/HTTP/resilience calls made while a mutex is held",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanHeld(pass, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				scanHeld(pass, fn.Body.List, map[string]bool{})
			}
			return true
		})
	}
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// scanHeld walks one statement list tracking which mutexes are held.
// Nested statement lists get a copy of the held set: acquisitions and
// releases inside a branch do not leak past it (conservative in both
// directions, precise for the early-unlock-inside-if idiom).
func scanHeld(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				name, kind := lockOp(pass, call)
				switch kind {
				case lockAcquire:
					held[name] = true
					continue
				case lockRelease:
					delete(held, name)
					continue
				}
			}
		case *ast.DeferStmt:
			// A deferred Unlock runs at return: the lock stays held for
			// the rest of this list. Other deferred calls don't run here.
			continue
		case *ast.BlockStmt:
			scanHeld(pass, s.List, copyHeld(held))
			continue
		case *ast.IfStmt:
			if len(held) > 0 {
				if s.Init != nil {
					checkBlockingNode(pass, s.Init, held)
				}
				checkBlockingNode(pass, s.Cond, held)
			}
			scanHeld(pass, s.Body.List, copyHeld(held))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				scanHeld(pass, e.List, copyHeld(held))
			case *ast.IfStmt:
				scanHeld(pass, []ast.Stmt{e}, copyHeld(held))
			}
			continue
		case *ast.ForStmt:
			if len(held) > 0 {
				if s.Init != nil {
					checkBlockingNode(pass, s.Init, held)
				}
				if s.Cond != nil {
					checkBlockingNode(pass, s.Cond, held)
				}
			}
			scanHeld(pass, s.Body.List, copyHeld(held))
			continue
		case *ast.RangeStmt:
			if len(held) > 0 {
				checkBlockingNode(pass, s.X, held)
			}
			scanHeld(pass, s.Body.List, copyHeld(held))
			continue
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeld(pass, cc.Body, copyHeld(held))
				}
			}
			continue
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanHeld(pass, cc.Body, copyHeld(held))
				}
			}
			continue
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if len(held) > 0 && cc.Comm != nil {
						checkBlockingNode(pass, cc.Comm, held)
					}
					scanHeld(pass, cc.Body, copyHeld(held))
				}
			}
			continue
		case *ast.LabeledStmt:
			scanHeld(pass, []ast.Stmt{s.Stmt}, held)
			continue
		}
		if len(held) > 0 {
			checkBlockingNode(pass, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// checkBlockingNode reports blocking operations inside one node while
// held is non-empty. Closure bodies are skipped — they run elsewhere.
func checkBlockingNode(pass *Pass, n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reportBlocked(pass, node.Pos(), "channel send", held)
		case *ast.CallExpr:
			if fn := calleeFunc(pass, node); fn != nil {
				if desc := blockingCallee(fn); desc != "" {
					reportBlocked(pass, node.Pos(), desc, held)
				}
			}
		}
		return true
	})
}

func reportBlocked(pass *Pass, pos token.Pos, desc string, held map[string]bool) {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	pass.Reportf(pos,
		"%s while holding %s; release the mutex before blocking, or the fan-out pool deadlocks behind it",
		desc, strings.Join(names, ", "))
}

// blockingCallee classifies calls that can block on a peer or a
// consumer: HTTP/RPC round-trips and resilience attempts.
func blockingCallee(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path, name := pkg.Path(), fn.Name()
	switch {
	case path == "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "Serve", "ListenAndServe", "ListenAndServeTLS":
			return "net/http round-trip (" + name + ")"
		}
	case path == "net/rpc":
		if name == "Call" || name == "Dial" || name == "DialHTTP" || name == "DialHTTPPath" {
			return "net/rpc " + name
		}
	case strings.HasSuffix(path, "/resilience") && name == "Call":
		return "resilience.Call attempt"
	}
	return ""
}

// lockOp classifies a call as a mutex acquire/release and names the
// mutex expression. Only sync.Mutex/RWMutex receivers (or structs that
// embed one, whose promoted Lock is the same lock) count.
func lockOp(pass *Pass, call *ast.CallExpr) (string, lockKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	if !isMutexRecv(pass.TypeOf(sel.X)) {
		return "", lockNone
	}
	return mutexName(sel.X), kind
}

// isMutexRecv reports whether t is a sync mutex, a pointer to one, or a
// struct embedding one (whose promoted Lock locks the embedded mutex).
func isMutexRecv(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
		return true
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Embedded() && isMutexRecv(f.Type()) {
				return true
			}
		}
	}
	return false
}

// mutexName renders the mutex expression for the held set and the
// diagnostic (m, s.mu, shards[i].mu → shards.mu).
func mutexName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return mutexName(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return mutexName(x.X)
	case *ast.IndexExpr:
		return mutexName(x.X)
	case *ast.CallExpr:
		return mutexName(x.Fun) + "()"
	}
	return "mutex"
}
