package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// TelemetryLabel flags unbounded strings used as metric label values in
// telemetry.L(...) calls. Every distinct label value materializes a new
// series in the registry and a new line in the Prometheus exposition,
// so per-query, per-document, or per-request identifiers as labels grow
// memory without bound and blow up scrape size (classic cardinality
// explosion).
//
// The check is a name-taint heuristic, tuned to this codebase: constant
// values are always fine; non-constant values are flagged when the
// expression mentions an identifier that names an identifier-like
// quantity (id/docID/query/term/user/request...), calls
// telemetry.RequestID, or builds a string with fmt.Sprintf/Sprint from
// non-constant parts. Bounded dynamic values (route, method, field,
// status code) pass.
var TelemetryLabel = &Analyzer{
	Name: "telemetrylabel",
	Doc:  "flags unbounded per-query/per-doc identifiers used as metric label values",
	Run:  runTelemetryLabel,
}

// taintedNameRE matches identifiers that denote unbounded identifier
// spaces. Matched case-insensitively against each name segment.
var taintedNameRE = regexp.MustCompile(`(?i)^(id|ids|uid|uuid|guid|rid|docid|queryid|query|term|doc|user|request|trace|session)$`)

func runTelemetryLabel(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Name() != "L" || fn.Pkg() == nil || !isTelemetryPath(fn.Pkg().Path()) {
				return true
			}
			if len(call.Args) != 2 {
				return true
			}
			key, val := call.Args[0], call.Args[1]
			if tv, ok := pass.Pkg.Info.Types[val]; ok && tv.Value != nil {
				return true // constant label value: always bounded
			}
			if why := unboundedReason(pass, val); why != "" {
				pass.Reportf(val.Pos(),
					"metric label %s takes an unbounded value (%s); label values must be low-cardinality — put identifiers in logs or span events, not labels",
					keyLabel(pass, key), why)
			}
			return true
		})
	}
}

// keyLabel renders the label key argument for the message.
func keyLabel(pass *Pass, key ast.Expr) string {
	if tv, ok := pass.Pkg.Info.Types[key]; ok && tv.Value != nil {
		return tv.Value.String()
	}
	return "value"
}

// unboundedReason walks the label-value expression and returns a short
// explanation if it is taint-matched, or "" if it looks bounded.
func unboundedReason(pass *Pass, e ast.Expr) string {
	var reason string
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.Ident:
			if isTaintedName(node.Name) {
				reason = "identifier " + node.Name + " names a per-item id"
			}
		case *ast.SelectorExpr:
			if isTaintedName(node.Sel.Name) {
				reason = "field " + node.Sel.Name + " names a per-item id"
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass, node); fn != nil {
				name := fn.Name()
				if name == "RequestID" {
					reason = "RequestID() is unique per request"
					return false
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(name == "Sprintf" || name == "Sprint" || name == "Sprintln") &&
					!allConstant(pass, node.Args) {
					reason = "fmt." + name + " formats a dynamic value"
					// keep walking: an id inside gives a better reason
				}
			}
		}
		return true
	})
	return reason
}

// isTaintedName applies taintedNameRE to each underscore/camel-case
// segment of an identifier.
func isTaintedName(name string) bool {
	for _, seg := range splitNameSegments(name) {
		if taintedNameRE.MatchString(seg) {
			return true
		}
	}
	return false
}

// splitNameSegments splits fooBarID / foo_bar_id into segments. An
// all-caps run sticks to its own segment (docID -> [doc, ID]).
func splitNameSegments(name string) []string {
	var segs []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			segs = append(segs, cur.String())
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range name {
		switch {
		case r == '_':
			flush()
			prevLower = false
			continue
		case r >= 'A' && r <= 'Z':
			if prevLower {
				flush()
			}
			prevLower = false
		default:
			prevLower = true
		}
		cur.WriteRune(r)
	}
	flush()
	return segs
}

// allConstant reports whether every expression is a typed constant.
func allConstant(pass *Pass, exprs []ast.Expr) bool {
	for _, e := range exprs {
		tv, ok := pass.Pkg.Info.Types[e]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}
