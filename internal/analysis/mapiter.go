package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter flags `range` loops over maps whose body performs an
// order-sensitive side effect in iteration order: writing to an
// io.Writer / strings.Builder / hash.Hash (method Write*), or calling a
// fmt print function. Go randomizes map iteration order, so such loops
// produce nondeterministic output — which breaks golden-test tables,
// sketch serialization, and anything hashed.
//
// Loops that only collect keys or values into a slice (to be sorted
// afterwards) are the intended fix and are not flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags range-over-map loops that write output or feed hashes in iteration order",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Inside //csfltr:deterministic functions the determinism
			// analyzer subsumes this check with a stricter rule.
			if fd, ok := n.(*ast.FuncDecl); ok &&
				hasDirective([]*ast.CommentGroup{fd.Doc}, deterministicDirective) {
				return false
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
				return true
			}
			reportOrderedSinks(pass, rng)
			return true
		})
	}
}

// reportOrderedSinks walks a range-over-map body looking for calls with
// order-dependent observable effects. Nested range statements over
// non-map collections are still within iteration order of the outer map
// and are included.
func reportOrderedSinks(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !isOrderedSink(fn) {
			return true
		}
		pass.Reportf(call.Pos(),
			"map iteration order is random: call to %s inside `range` over %s emits output in nondeterministic order; collect and sort keys first",
			fn.Name(), typeLabel(pass, rng.X))
		return true
	})
}

// isOrderedSink reports whether a call's observable effect depends on
// invocation order: stream writes and fmt printing.
func isOrderedSink(fn *types.Func) bool {
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// typeLabel renders the ranged expression's type compactly.
func typeLabel(pass *Pass, e ast.Expr) string {
	t := pass.TypeOf(e)
	if t == nil {
		return "map"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
