package analysis

import (
	"go/ast"
	"go/types"
)

// LockCopy flags values of mutex-containing types being copied: passed
// or returned by value in a function signature, or copied by an
// assignment/range from an existing value. A copied sync.Mutex is a
// *different* mutex — the copy guards nothing, and under contention the
// original's critical sections silently stop excluding each other. In
// this codebase the fan-out pool, breaker registry, and cache shards
// all embed mutexes in long-lived structs; every one of them must move
// by pointer.
//
// Fresh values (composite literals, new(T)) are fine; only copies of an
// existing value are flagged.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags mutex-containing structs passed, returned, or assigned by value",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkLockSignature(pass, node.Type)
			case *ast.FuncLit:
				checkLockSignature(pass, node.Type)
			case *ast.AssignStmt:
				checkLockAssign(pass, node)
			case *ast.RangeStmt:
				if node.Value != nil {
					if lock := lockInside(pass.TypeOf(node.Value)); lock != "" {
						pass.Reportf(node.Value.Pos(),
							"range value copies a %s-containing element by value; iterate by index or store pointers",
							lock)
					}
				}
			}
			return true
		})
	}
}

// checkLockSignature flags by-value parameters and results whose type
// contains a lock.
func checkLockSignature(pass *Pass, ft *ast.FuncType) {
	check := func(list *ast.FieldList, what string) {
		if list == nil {
			return
		}
		for _, field := range list.List {
			lock := lockInside(pass.TypeOf(field.Type))
			if lock == "" {
				continue
			}
			pass.Reportf(field.Type.Pos(),
				"%s %s a %s by value; the copy is a different lock — use a pointer",
				what, passVerb(what), lock)
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

func passVerb(what string) string {
	if what == "result" {
		return "returns"
	}
	return "passes"
}

// checkLockAssign flags x = y / x := y where y is an existing value (an
// identifier, selector, dereference, or index — not a fresh composite
// literal or call result) of a lock-containing type.
func checkLockAssign(pass *Pass, stmt *ast.AssignStmt) {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return
	}
	for i, rhs := range stmt.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		if id, ok := ast.Unparen(stmt.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if lock := lockInside(pass.TypeOf(rhs)); lock != "" {
			pass.Reportf(rhs.Pos(),
				"assignment copies a %s by value; the copy is a different lock — use a pointer",
				lock)
		}
	}
}

// lockInside reports the sync primitive a by-value copy of t would
// duplicate ("sync.Mutex", ...), or "". Pointers, slices, maps, and
// channels share the underlying value and are not copies; struct fields
// and array elements are traversed.
func lockInside(t types.Type) string {
	return lockInType(t, make(map[types.Type]bool))
}

func lockInType(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return "sync." + obj.Name()
			}
		}
		return lockInType(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInType(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInType(u.Elem(), seen)
	}
	return ""
}
