package analysis

import (
	"go/ast"
	"go/types"
)

// Markers is the federation-wide index of silo-private declarations:
// every type name, struct field, or variable annotated with
// `//csfltr:private`. A type *contains* private data if its own
// declaration is marked or any type reachable through its structure
// (struct fields, pointers, slices, arrays, maps, channels) is.
type Markers struct {
	objs  map[types.Object]bool
	cache map[types.Type]bool
}

// CollectMarkers scans every package for //csfltr:private directives.
// The directive attaches to:
//
//   - a type declaration — the whole named type is private;
//   - a struct field — that field (and any struct embedding it) is
//     private even if the field's type is public;
//   - a var/const declaration — the variable itself is private.
func CollectMarkers(pkgs []*Package) *Markers {
	m := &Markers{
		objs:  make(map[types.Object]bool),
		cache: make(map[types.Type]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			m.collectFile(pkg, f)
		}
	}
	return m
}

func (m *Markers) collectFile(pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.GenDecl:
			declMarked := hasDirective([]*ast.CommentGroup{d.Doc}, privateDirective)
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if declMarked || hasDirective([]*ast.CommentGroup{s.Doc, s.Comment}, privateDirective) {
						m.markDef(pkg, s.Name)
					}
				case *ast.ValueSpec:
					if declMarked || hasDirective([]*ast.CommentGroup{s.Doc, s.Comment}, privateDirective) {
						for _, name := range s.Names {
							m.markDef(pkg, name)
						}
					}
				}
			}
		case *ast.StructType:
			for _, field := range d.Fields.List {
				if hasDirective([]*ast.CommentGroup{field.Doc, field.Comment}, privateDirective) {
					for _, name := range field.Names {
						m.markDef(pkg, name)
					}
				}
			}
		}
		return true
	})
}

func (m *Markers) markDef(pkg *Package, ident *ast.Ident) {
	if obj := pkg.Info.Defs[ident]; obj != nil {
		m.objs[obj] = true
	}
}

// IsPrivate reports whether obj's declaration carries //csfltr:private.
func (m *Markers) IsPrivate(obj types.Object) bool { return m.objs[obj] }

// Empty reports whether no private declarations were found.
func (m *Markers) Empty() bool { return len(m.objs) == 0 }

// DirectlyPrivate reports whether t itself (after unaliasing and
// pointer dereference) is a named type whose declaration is marked —
// the whole value is the secret, not merely a container with some
// private constituent. Field selection from a directly-private type
// never launders taint; selection of a public field from a mere
// container does.
func (m *Markers) DirectlyPrivate(t types.Type) bool {
	for t != nil {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return m.objs[tt.Obj()]
		default:
			return false
		}
	}
	return false
}

// ContainsPrivate reports whether values of type t can carry
// silo-private data: t is a marked named type, or private data is
// reachable through t's structure.
func (m *Markers) ContainsPrivate(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := m.cache[t]; ok {
		return v
	}
	// Pre-seed false to terminate recursive types; overwrite below.
	m.cache[t] = false
	v := m.containsPrivate(t)
	m.cache[t] = v
	return v
}

func (m *Markers) containsPrivate(t types.Type) bool {
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		if m.objs[tt.Obj()] {
			return true
		}
		return m.ContainsPrivate(tt.Underlying())
	case *types.Pointer:
		return m.ContainsPrivate(tt.Elem())
	case *types.Slice:
		return m.ContainsPrivate(tt.Elem())
	case *types.Array:
		return m.ContainsPrivate(tt.Elem())
	case *types.Chan:
		return m.ContainsPrivate(tt.Elem())
	case *types.Map:
		return m.ContainsPrivate(tt.Key()) || m.ContainsPrivate(tt.Elem())
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			if m.objs[f] || m.ContainsPrivate(f.Type()) {
				return true
			}
		}
	}
	return false
}

// PrivateName renders the first marked constituent of t for messages,
// preferring the named type itself.
func (m *Markers) PrivateName(t types.Type) string {
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		if m.objs[tt.Obj()] {
			return tt.Obj().Pkg().Name() + "." + tt.Obj().Name()
		}
		return m.PrivateName(tt.Underlying())
	case *types.Pointer:
		return m.PrivateName(tt.Elem())
	case *types.Slice:
		return m.PrivateName(tt.Elem())
	case *types.Array:
		return m.PrivateName(tt.Elem())
	case *types.Chan:
		return m.PrivateName(tt.Elem())
	case *types.Map:
		if m.ContainsPrivate(tt.Key()) {
			return m.PrivateName(tt.Key())
		}
		return m.PrivateName(tt.Elem())
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			if m.objs[f] {
				return f.Name()
			}
			if m.ContainsPrivate(f.Type()) {
				return m.PrivateName(f.Type())
			}
		}
	}
	return t.String()
}
