package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// PrivacyBoundary flags silo-private data (declarations marked
// //csfltr:private) escaping the silo:
//
//   - declared as a field of a wire-message struct (a struct with JSON
//     field tags, or named *Args/*Reply/*Request/*Response/*Message);
//   - flowing into a marshal path (encoding/json, encoding/gob), a
//     fmt/log formatting call, a telemetry label constructor, or a
//     trace attribute constructor (AStr/AInt/AFloat/ABool), where it
//     would end up in process output, metric exposition, or the flight
//     recorder's span trees and audit records.
//
// Flows are tracked interprocedurally (taint.go): a private value
// laundered through helper parameters, returns, receivers, struct-field
// assignments, or closures is still caught up to a bounded call depth,
// and the diagnostic carries the full call chain. Calls into the
// sketch/hash/DP packages (or //csfltr:sanitizes functions) stop the
// taint: their outputs are exactly the derived values allowed to cross.
//
// This is the paper's core invariant (PAPER.md §IV): only sketched,
// DP-noised, or keyed-hashed values may cross the federation boundary.
var PrivacyBoundary = &Analyzer{
	Name: "privacyboundary",
	Doc:  "flags //csfltr:private data flowing (incl. through helpers) into wire structs, marshal paths, fmt/log/metric labels, or trace attributes",
	Run:  runPrivacyBoundary,
}

// wireNameRE matches struct type names that are wire messages by naming
// convention (the net/rpc argument/reply pattern).
var wireNameRE = regexp.MustCompile(`(Args|Reply|Request|Response|Message)$`)

func runPrivacyBoundary(pass *Pass) {
	if pass.Markers.Empty() {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				reportTaintFlows(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if spec, ok := n.(*ast.TypeSpec); ok {
				checkWireStruct(pass, spec)
			}
			return true
		})
	}
}

// reportTaintFlows runs the local taint analysis over one function with
// the //csfltr:private markers as sources and reports every sink hit.
func reportTaintFlows(pass *Pass, fd *ast.FuncDecl) {
	lf := newLocalFlow(pass.taint, pass.Pkg, fd, false)
	lf.run()
	enclosing := "func"
	if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		enclosing = funcDisplayName(obj)
	}
	for _, hit := range lf.hits {
		name := privateSourceName(pass, hit.expr)
		if len(hit.reach.chain) <= 1 {
			// Direct sink: the classic intra-procedural finding.
			pass.Reportf(hit.pos,
				"silo-private value (%s) passed to %s %s; private data must not reach %s",
				name, hit.reach.kind, hit.reach.sink, sinkTarget(hit.reach.kind))
			continue
		}
		chain := append([]string{enclosing}, hit.reach.chain...)
		pass.ReportChain(hit.pos, chain,
			"silo-private value (%s) reaches %s %s via %s; private data must not reach %s",
			name, hit.reach.kind, hit.reach.sink, strings.Join(chain, " -> "),
			sinkTarget(hit.reach.kind))
	}
}

// privateSourceName renders the marked constituent behind a tainted
// expression: the expression's own type when it is private, the operand
// of a laundering conversion, or a generic description for values that
// picked up taint through local data flow.
func privateSourceName(pass *Pass, expr ast.Expr) string {
	if t := pass.TypeOf(expr); t != nil && pass.Markers.ContainsPrivate(t) {
		return pass.Markers.PrivateName(t)
	}
	if inner := conversionOperand(pass, expr); inner != nil {
		if t := pass.TypeOf(inner); t != nil && pass.Markers.ContainsPrivate(t) {
			return pass.Markers.PrivateName(t)
		}
	}
	return "derived from a //csfltr:private source"
}

// checkWireStruct flags private data declared inside a wire-message
// struct.
func checkWireStruct(pass *Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	if !wireNameRE.MatchString(spec.Name.Name) && !hasJSONTag(st) {
		return
	}
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !pass.Markers.ContainsPrivate(t) {
			continue
		}
		pass.Reportf(field.Pos(),
			"wire struct %s carries silo-private data (%s); only sketched, DP-noised, or keyed-hashed values may cross the federation boundary",
			spec.Name.Name, pass.Markers.PrivateName(t))
	}
}

// wireTypeName reports the declared name of t when it is a wire-message
// struct — by naming convention or by carrying json field tags — and ""
// otherwise. Pointers are dereferenced: storing into (*SearchReply).F
// crosses the boundary all the same.
func wireTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if wireNameRE.MatchString(name) {
		return name
	}
	for i := 0; i < st.NumFields(); i++ {
		if strings.Contains(st.Tag(i), `json:"`) {
			return name
		}
	}
	return ""
}

// hasJSONTag reports whether any field of the struct carries a json
// tag, the marker of a serialized wire shape.
func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if field.Tag != nil && strings.Contains(field.Tag.Value, `json:"`) {
			return true
		}
	}
	return false
}

// conversionOperand returns the operand of a type-conversion expression
// (T(x) -> x), or nil if e is not a conversion. Conversions preserve the
// value, so a private operand stays private through them; builtin and
// ordinary calls (len, hash functions...) return nil since their results
// are derived.
func conversionOperand(pass *Pass, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return call.Args[0]
	}
	return nil
}

// sinkKind classifies a callee as a privacy sink; "" means not a sink.
func sinkKind(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path, name := pkg.Path(), fn.Name()
	switch {
	case path == "fmt" && (strings.HasPrefix(name, "Print") ||
		strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint") ||
		name == "Errorf" || name == "Sprintf" || name == "Appendf"):
		return "format call"
	case path == "log":
		return "log call"
	case path == "encoding/json" || path == "encoding/gob" || path == "encoding/xml":
		return "marshal call"
	case isTelemetryPath(path) && (name == "L" || name == "Label"):
		return "telemetry label"
	case isTelemetryPath(path) && (name == "AStr" || name == "AInt" ||
		name == "AFloat" || name == "ABool"):
		return "trace attribute"
	case isWirePath(path) && (strings.HasPrefix(name, "Append") || name == "Pack"):
		// The binary codec's encoders put their arguments on the
		// federation wire, exactly like a wire-struct field assignment.
		return "wire encode"
	}
	return ""
}

// sinkTarget names where the data would leak for the diagnostic text.
func sinkTarget(kind string) string {
	switch kind {
	case "wire struct field", "wire encode":
		return "the federation wire"
	case "marshal call":
		return "a serialized payload"
	case "telemetry label":
		return "metric exposition"
	case "trace attribute":
		return "the flight recorder"
	default:
		return "process output"
	}
}

// isTelemetryPath matches this repo's telemetry package (and a fixture
// stand-in ending in /telemetry).
func isTelemetryPath(path string) bool {
	return path == "csfltr/internal/telemetry" || strings.HasSuffix(path, "/telemetry")
}

// isWirePath matches this repo's binary codec package (and a fixture
// stand-in ending in /wire).
func isWirePath(path string) bool {
	return path == "csfltr/internal/wire" || strings.HasSuffix(path, "/wire")
}

// calleeFunc resolves the *types.Func a call invokes (nil for builtins,
// type conversions, and indirect calls through non-selector variables).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pass.Pkg.Info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}
