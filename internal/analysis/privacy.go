package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// PrivacyBoundary flags silo-private data (declarations marked
// //csfltr:private) escaping the silo:
//
//   - declared as a field of a wire-message struct (a struct with JSON
//     field tags, or named *Args/*Reply/*Request/*Response/*Message);
//   - passed to a marshal path (encoding/json, encoding/gob);
//   - passed to fmt/log formatting, a telemetry label constructor, or a
//     trace attribute constructor (AStr/AInt/AFloat/ABool), where it
//     would end up in process output, metric exposition, or the flight
//     recorder's span trees and audit records.
//
// This is the paper's core invariant (PAPER.md §IV): only sketched,
// DP-noised, or keyed-hashed values may cross the federation boundary.
var PrivacyBoundary = &Analyzer{
	Name: "privacyboundary",
	Doc:  "flags //csfltr:private data flowing into wire structs, marshal paths, fmt/log/metric labels, or trace attributes",
	Run:  runPrivacyBoundary,
}

// wireNameRE matches struct type names that are wire messages by naming
// convention (the net/rpc argument/reply pattern).
var wireNameRE = regexp.MustCompile(`(Args|Reply|Request|Response|Message)$`)

func runPrivacyBoundary(pass *Pass) {
	if pass.Markers.Empty() {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.TypeSpec:
				checkWireStruct(pass, node)
			case *ast.CallExpr:
				checkSinkCall(pass, node)
			}
			return true
		})
	}
}

// checkWireStruct flags private data declared inside a wire-message
// struct.
func checkWireStruct(pass *Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	if !wireNameRE.MatchString(spec.Name.Name) && !hasJSONTag(st) {
		return
	}
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !pass.Markers.ContainsPrivate(t) {
			continue
		}
		pass.Reportf(field.Pos(),
			"wire struct %s carries silo-private data (%s); only sketched, DP-noised, or keyed-hashed values may cross the federation boundary",
			spec.Name.Name, pass.Markers.PrivateName(t))
	}
}

// hasJSONTag reports whether any field of the struct carries a json
// tag, the marker of a serialized wire shape.
func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if field.Tag != nil && strings.Contains(field.Tag.Value, `json:"`) {
			return true
		}
	}
	return false
}

// checkSinkCall flags private values passed to marshal, format, or
// metric-label calls.
func checkSinkCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return
	}
	kind := sinkKind(fn)
	if kind == "" {
		return
	}
	for _, arg := range call.Args {
		expr := arg
		t := pass.TypeOf(expr)
		if t == nil || !pass.Markers.ContainsPrivate(t) {
			// A type conversion does not launder privacy: string(rq)
			// carries the same bytes as rq.
			inner := conversionOperand(pass, arg)
			if inner == nil {
				continue
			}
			it := pass.TypeOf(inner)
			if it == nil || !pass.Markers.ContainsPrivate(it) {
				continue
			}
			expr, t = inner, it
		}
		pass.Reportf(expr.Pos(),
			"silo-private value (%s) passed to %s %s; private data must not reach %s",
			pass.Markers.PrivateName(t), kind, fn.FullName(), sinkTarget(kind))
	}
}

// conversionOperand returns the operand of a type-conversion expression
// (T(x) -> x), or nil if e is not a conversion. Conversions preserve the
// value, so a private operand stays private through them; builtin and
// ordinary calls (len, hash functions...) return nil since their results
// are derived.
func conversionOperand(pass *Pass, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return call.Args[0]
	}
	return nil
}

// sinkKind classifies a callee as a privacy sink; "" means not a sink.
func sinkKind(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path, name := pkg.Path(), fn.Name()
	switch {
	case path == "fmt" && (strings.HasPrefix(name, "Print") ||
		strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint") ||
		name == "Errorf" || name == "Sprintf" || name == "Appendf"):
		return "format call"
	case path == "log":
		return "log call"
	case path == "encoding/json" || path == "encoding/gob" || path == "encoding/xml":
		return "marshal call"
	case isTelemetryPath(path) && (name == "L" || name == "Label"):
		return "telemetry label"
	case isTelemetryPath(path) && (name == "AStr" || name == "AInt" ||
		name == "AFloat" || name == "ABool"):
		return "trace attribute"
	}
	return ""
}

// sinkTarget names where the data would leak for the diagnostic text.
func sinkTarget(kind string) string {
	switch kind {
	case "marshal call":
		return "a serialized payload"
	case "telemetry label":
		return "metric exposition"
	case "trace attribute":
		return "the flight recorder"
	default:
		return "process output"
	}
}

// isTelemetryPath matches this repo's telemetry package (and a fixture
// stand-in ending in /telemetry).
func isTelemetryPath(path string) bool {
	return path == "csfltr/internal/telemetry" || strings.HasSuffix(path, "/telemetry")
}

// calleeFunc resolves the *types.Func a call invokes (nil for builtins,
// type conversions, and indirect calls through non-selector variables).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pass.Pkg.Info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}
