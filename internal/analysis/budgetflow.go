package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BudgetFlow enforces the epsilon accounting contract: a function
// marked //csfltr:releases hands previously-unreleased estimates to a
// querying peer, so somewhere on its call paths (to a bounded depth) it
// must either charge the privacy budget — dp.Accountant.Spend or
// dp.Accountant.Replayed — or delegate to a function declared
// //csfltr:replay, the qcache zero-epsilon contract for re-serving
// bytes that were already paid for. A releases-marked function with
// neither is an unaccounted release: the silo's epsilon ledger drifts
// from what actually left the building.
//
// The check is containment-based, not path-sensitive: it proves a spend
// exists somewhere under the function, not that every branch spends.
// Branch-level auditing is what the flight recorder's per-query cost
// records are for; this analyzer catches the structural omission.
var BudgetFlow = &Analyzer{
	Name: "budgetflow",
	Doc:  "flags //csfltr:releases functions with no dp.Accountant spend/replay on any path",
	Run:  runBudgetFlow,
}

// maxBudgetDepth bounds the descent looking for the spend.
const maxBudgetDepth = 4

func runBudgetFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			facts := pass.Graph.FactsOf(obj)
			if facts == nil || !facts.Releases {
				continue
			}
			if facts.Replay {
				continue
			}
			if spendsWithin(pass, obj, map[*types.Func]bool{}, 0) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"%s is marked //csfltr:releases but no reachable path spends privacy budget; call dp.Accountant.Spend/Replayed or mark the replay contract with //csfltr:replay",
				funcDisplayName(obj))
		}
	}
}

// spendsWithin reports whether fn's body — or a callee within the depth
// bound — charges the accountant or delegates to a declared replay.
func spendsWithin(pass *Pass, fn *types.Func, visited map[*types.Func]bool, depth int) bool {
	if depth > maxBudgetDepth || visited[fn] {
		return false
	}
	facts := pass.Graph.FactsOf(fn)
	if facts == nil || facts.Decl.Body == nil {
		return false
	}
	visited[fn] = true

	found := false
	inner := &Pass{Context: pass.Context, Pkg: facts.Pkg}
	ast.Inspect(facts.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(inner, call)
		if callee == nil {
			return true
		}
		if isBudgetSpend(callee) {
			found = true
			return false
		}
		if cf := pass.Graph.FactsOf(callee); cf != nil && cf.Replay {
			found = true
			return false
		}
		if spendsWithin(pass, callee, visited, depth+1) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBudgetSpend matches the dp.Accountant charge points.
func isBudgetSpend(fn *types.Func) bool {
	if fn.Name() != "Spend" && fn.Name() != "Replayed" {
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "/dp")
}
