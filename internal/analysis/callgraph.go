package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Function-level directives recognized by the v2 analyzers. Each
// attaches to a FuncDecl's doc comment:
//
//   - //csfltr:sanitizes — the function's results are derived values
//     (keyed hashes, sketches, DP-noised estimates); privacy taint does
//     not propagate through its return values;
//   - //csfltr:deterministic — the function is part of a merge/ranking
//     path pinned bit-identical; it and its bounded in-module callees
//     must not consult wall-clock time, global math/rand state, or
//     order-sensitive map iteration (see determinism.go);
//   - //csfltr:releases — the function returns released estimates to a
//     querying peer; every such path must pay via dp.Accountant (Spend
//     or Replayed) or be a declared replay (see budgetflow.go);
//   - //csfltr:replay — the function re-serves previously released
//     bytes; the zero-epsilon replay contract satisfies budgetflow.
const (
	sanitizesDirective     = "//csfltr:sanitizes"
	deterministicDirective = "//csfltr:deterministic"
	releasesDirective      = "//csfltr:releases"
	replayDirective        = "//csfltr:replay"
)

// FuncFacts is everything the interprocedural analyzers know about one
// declared function: its body, its home package (for type info), and
// its directives.
type FuncFacts struct {
	Decl *ast.FuncDecl
	Pkg  *Package

	Sanitizes     bool
	Deterministic bool
	Releases      bool
	Replay        bool
}

// CallGraph is the federation-wide index of function declarations the
// interprocedural analyzers resolve call sites against. It is a
// lightweight type-based graph: nodes are *types.Func objects with
// bodies in loaded packages; edges are discovered lazily at call sites
// via the type-checker's Uses/Selections maps, so only statically
// resolvable calls (direct calls and concrete method calls) are
// followed. Interface dispatch, func-typed variables, and method values
// are deliberately out of scope — analyzers treat them conservatively.
type CallGraph struct {
	funcs map[*types.Func]*FuncFacts
}

// BuildCallGraph indexes every function declaration of every loaded
// package, including dependencies outside the analyzed pattern set, so
// a helper in internal/hashutil resolves from internal/federation.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{funcs: make(map[*types.Func]*FuncFacts)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.funcs[obj] = &FuncFacts{
					Decl:          fd,
					Pkg:           pkg,
					Sanitizes:     hasDirective([]*ast.CommentGroup{fd.Doc}, sanitizesDirective),
					Deterministic: hasDirective([]*ast.CommentGroup{fd.Doc}, deterministicDirective),
					Releases:      hasDirective([]*ast.CommentGroup{fd.Doc}, releasesDirective),
					Replay:        hasDirective([]*ast.CommentGroup{fd.Doc}, replayDirective),
				}
			}
		}
	}
	return g
}

// FactsOf returns the declaration facts for fn, or nil when fn has no
// body in any loaded package (stdlib, interface methods, builtins).
func (g *CallGraph) FactsOf(fn *types.Func) *FuncFacts {
	if g == nil || fn == nil {
		return nil
	}
	return g.funcs[fn]
}

// isSanitizer reports whether a call to fn launders privacy taint by
// construction: the sketch/hash/DP packages only ever release derived
// values, and any function can opt in with //csfltr:sanitizes.
func (g *CallGraph) isSanitizer(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if facts := g.FactsOf(fn); facts != nil && facts.Sanitizes {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	for _, suffix := range []string{"/hashutil", "/sketch", "/dp", "/keyex"} {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	// Cryptographic digests are one-way by definition.
	return strings.HasPrefix(path, "crypto/") || path == "hash" || strings.HasPrefix(path, "hash/")
}

// receiverExpr extracts the receiver expression of a method call
// (x.M(...) -> x), or nil for plain function calls.
func receiverExpr(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.Pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// funcDisplayName renders fn for diagnostics and call chains:
// pkg.Func or pkg.(*Recv).Method, shortened to the package base name.
func funcDisplayName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		qual := func(p *types.Package) string { return "" }
		return strings.TrimPrefix(types.TypeString(rt, qual), "*") + "." + name
	}
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + name
	}
	return name
}
