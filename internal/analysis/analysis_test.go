package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCase binds a testdata directory to the analyzer it exercises.
var fixtureCases = []struct {
	dir      string
	analyzer *Analyzer
}{
	{"privacy", PrivacyBoundary},
	{"taint", PrivacyBoundary},
	{"mapiter", MapIter},
	{"uncheckederr", UncheckedErr},
	{"telemetrylabel", TelemetryLabel},
	{"lockcopy", LockCopy},
	{"lockhold", LockHold},
	{"determinism", Determinism},
	{"budgetflow", BudgetFlow},
	{"allowaudit", MapIter},
}

// TestFixtures runs each analyzer over its testdata package and checks
// the diagnostics against the `// want "substring"` comments: every
// want line must produce a matching diagnostic, every diagnostic must
// be wanted, and suppressed lines must stay silent.
func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			diags, wants := runFixture(t, tc.dir, tc.analyzer)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no // want expectations", tc.dir)
			}
			for _, problem := range compareFixture(diags, wants) {
				t.Error(problem)
			}
		})
	}
}

// TestFixtureHarness is the harness's own fixture: testdata/meta holds
// one want comment nothing matches and one diagnostic nothing wants,
// and compareFixture must fail on both — otherwise every other fixture
// could rot silently.
func TestFixtureHarness(t *testing.T) {
	diags, wants := runFixture(t, "meta", MapIter)
	problems := compareFixture(diags, wants)
	var unmatchedWant, unexpectedDiag bool
	for _, p := range problems {
		if strings.Contains(p, "wanted diagnostic") {
			unmatchedWant = true
		}
		if strings.Contains(p, "unexpected diagnostic") {
			unexpectedDiag = true
		}
	}
	if !unmatchedWant {
		t.Errorf("harness did not fail the unmatched want comment; problems: %v", problems)
	}
	if !unexpectedDiag {
		t.Errorf("harness did not fail the unexpected diagnostic; problems: %v", problems)
	}
	if len(problems) != 2 {
		t.Errorf("expected exactly 2 problems from testdata/meta, got %d: %v", len(problems), problems)
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	line   int
	substr string
}

// compareFixture matches diagnostics against want expectations and
// returns every discrepancy: a want with no diagnostic on its line
// containing its substring, or a diagnostic no want claims.
func compareFixture(diags []Diagnostic, wants []want) []string {
	var problems []string
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !matched[i] && d.Pos.Line == w.line && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems,
				fmt.Sprintf("line %d: wanted diagnostic containing %q, got none", w.line, w.substr))
		}
	}
	for i, d := range diags {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	return problems
}

// runFixture loads one testdata package, runs a single analyzer with
// suppressions applied, and extracts the fixture's want expectations.
func runFixture(t *testing.T, dir string, a *Analyzer) ([]Diagnostic, []want) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", dir), "fixture/"+dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(loader.Fset, loader.Packages())
	var diags []Diagnostic
	RunPackage(ctx, pkg, []*Analyzer{a}, &diags)
	diags = ctx.applySuppressions([]*Package{pkg}, diags)

	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry wants; the block form lets a
				// want share a line with a directive under test.
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, `want "`)
				if !ok {
					continue
				}
				substr, ok := strings.CutSuffix(rest, `"`)
				if !ok {
					t.Fatalf("malformed want comment: %s", c.Text)
				}
				wants = append(wants, want{line: loader.Fset.Position(c.Pos()).Line, substr: substr})
			}
		}
	}
	return diags, wants
}

// TestRepoIsClean asserts the acceptance criterion directly: the full
// analyzer suite reports nothing on the repository itself.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"//csfltr:allow uncheckederr -- best-effort cleanup", []string{"uncheckederr"}, "best-effort cleanup", true},
		{"//csfltr:allow privacyboundary,mapiter -- two at once", []string{"privacyboundary", "mapiter"}, "two at once", true},
		{"//csfltr:allow all", []string{"all"}, "", true},
		{"//csfltr:allowed nothing", nil, "", false},
		{"// regular comment", nil, "", false},
	}
	for _, tc := range cases {
		names, reason, ok := parseAllow(tc.text)
		if ok != tc.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if fmt.Sprint(names) != fmt.Sprint(tc.names) {
			t.Errorf("parseAllow(%q) names = %v, want %v", tc.text, names, tc.names)
		}
		if reason != tc.reason {
			t.Errorf("parseAllow(%q) reason = %q, want %q", tc.text, reason, tc.reason)
		}
	}
}

// TestReasonlessAllowDoesNotSuppress pins the v2 suppression contract:
// a //csfltr:allow without `-- reason` must not cover anything and must
// itself surface as an "allow" finding (exercised end-to-end by the
// allowaudit fixture; this covers the index directly).
func TestReasonlessAllowDoesNotSuppress(t *testing.T) {
	names, reason, ok := parseAllow("//csfltr:allow mapiter")
	if !ok || reason != "" {
		t.Fatalf("parseAllow = (%v, %q, %v)", names, reason, ok)
	}
	names, reason, ok = parseAllow("//csfltr:allow mapiter --   ")
	if !ok || reason != "" {
		t.Fatalf("whitespace-only reason must parse empty, got %q (ok=%v, names=%v)", reason, ok, names)
	}
}

func TestSplitNameSegments(t *testing.T) {
	cases := map[string][]string{
		"docID":      {"doc", "ID"},
		"request_id": {"request", "id"},
		"route":      {"route"},
		"QueryID":    {"Query", "ID"},
		"httpCode":   {"http", "Code"},
	}
	for in, wantSegs := range cases {
		got := splitNameSegments(in)
		if fmt.Sprint(got) != fmt.Sprint(wantSegs) {
			t.Errorf("splitNameSegments(%q) = %v, want %v", in, got, wantSegs)
		}
	}
	if !isTaintedName("docID") || !isTaintedName("request_id") || !isTaintedName("uuid") {
		t.Error("id-like names must be tainted")
	}
	if isTaintedName("route") || isTaintedName("method") || isTaintedName("httpCode") || isTaintedName("valid") {
		t.Error("bounded names must not be tainted")
	}
}

func TestDiscoverPackages(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.DiscoverPackages([]string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "csfltr/internal/analysis" {
		t.Fatalf("DiscoverPackages = %v, want [csfltr/internal/analysis] (testdata must be skipped)", paths)
	}
	all, err := loader.DiscoverPackages([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(all))
	for _, p := range all {
		if seen[p] {
			t.Fatalf("duplicate package %s", p)
		}
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package leaked into discovery: %s", p)
		}
	}
	for _, must := range []string{"csfltr", "csfltr/internal/federation", "csfltr/cmd/csfltr-vet"} {
		if !seen[must] {
			t.Errorf("DiscoverPackages missing %s (got %d packages)", must, len(all))
		}
	}
}

// TestMarkersCrossPackage checks that a type marked in one package is
// recognized when used from another: the real textkit.TermVector marker
// must poison a struct in a freshly loaded dependent package.
func TestMarkersCrossPackage(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("csfltr/internal/textkit")
	if err != nil {
		t.Fatal(err)
	}
	markers := CollectMarkers(loader.Packages())
	if markers.Empty() {
		t.Fatal("no //csfltr:private markers found in internal/textkit")
	}
	tv := pkg.Types.Scope().Lookup("TermVector")
	if tv == nil {
		t.Fatal("TermVector not found")
	}
	if !markers.IsPrivate(tv) {
		t.Error("TermVector must be marked private")
	}
	if !markers.ContainsPrivate(tv.Type()) {
		t.Error("TermVector's type must contain private data")
	}
	doc := pkg.Types.Scope().Lookup("Document")
	if doc == nil || !markers.ContainsPrivate(doc.Type()) {
		t.Error("Document must contain private data")
	}
	q := pkg.Types.Scope().Lookup("Query")
	if q == nil {
		t.Fatal("Query not found")
	}
	if markers.IsPrivate(q) {
		t.Error("Query itself is not marked; only structural containment applies")
	}
}
