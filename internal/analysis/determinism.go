package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the bit-identical contract on merge/ranking
// paths: a function marked //csfltr:deterministic — and everything it
// calls in this module, to a bounded depth — must not consult the wall
// clock (time.Now/Since/Until), the global math/rand state, or emit in
// map-iteration order. The fan-out merge (PR 3) and the quorum
// degrade paths (PR 4) pin cross-silo results bit-identical so replicas
// agree on released bytes; any of these three sources silently breaks
// that, and with it the qcache replay contract.
//
// Within a deterministic function, this analyzer subsumes mapiter: map
// ranges with order-sensitive effects are reported here (mapiter skips
// marked functions), and additionally a map range that appends into a
// slice which is never sorted in the same function is flagged — the
// collect-then-sort idiom is the intended fix, collecting alone is not.
//
// Descent stops at: functions themselves marked deterministic (they are
// checked at their own root), sanitizer packages, and the resilience
// and telemetry packages, whose internal timing (backoff, timestamps)
// is infrastructure that never feeds released bytes.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock, global math/rand, and map-order dependence on //csfltr:deterministic paths",
	Run:  runDeterminism,
}

// maxDetDepth bounds the callee descent from a deterministic root.
const maxDetDepth = 3

// detViolation is one nondeterminism source found in a callee, carried
// up to the root for reporting at the call site.
type detViolation struct {
	desc  string
	chain []string
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			facts := pass.Graph.FactsOf(obj)
			if facts == nil || !facts.Deterministic {
				continue
			}
			checkDetBody(pass, facts, map[*types.Func]bool{obj: true})
		}
	}
}

// checkDetBody reports nondeterminism in one deterministic root: direct
// violations at their own position, callee violations at the call site
// with the supporting chain.
func checkDetBody(pass *Pass, facts *FuncFacts, visited map[*types.Func]bool) {
	ast.Inspect(facts.Decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			checkDetMapRange(pass, facts, node)
		case *ast.CallExpr:
			fn := calleeFunc(&Pass{Context: pass.Context, Pkg: facts.Pkg}, node)
			if fn == nil {
				return true
			}
			if desc := directNondeterminism(fn); desc != "" {
				pass.Reportf(node.Pos(),
					"deterministic path %s; merge/ranking output must be bit-identical across replicas", desc)
				return true
			}
			for _, v := range calleeViolations(pass, fn, visited, 1) {
				chain := append([]string{funcDisplayName(fn)}, v.chain...)
				pass.ReportChain(node.Pos(), chain,
					"deterministic path %s via %s; merge/ranking output must be bit-identical across replicas",
					v.desc, strings.Join(chain, " -> "))
			}
		}
		return true
	})
}

// calleeViolations collects the nondeterminism sources inside fn's body
// (and its callees, to the depth bound). Violations suppressed by a
// //csfltr:allow at their own site are not carried up.
func calleeViolations(pass *Pass, fn *types.Func, visited map[*types.Func]bool, depth int) []detViolation {
	if depth > maxDetDepth || visited[fn] || !descendForDeterminism(pass, fn) {
		return nil
	}
	facts := pass.Graph.FactsOf(fn)
	if facts == nil || facts.Decl.Body == nil {
		return nil
	}
	visited[fn] = true
	defer delete(visited, fn)

	var out []detViolation
	ast.Inspect(facts.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(&Pass{Context: pass.Context, Pkg: facts.Pkg}, call)
		if callee == nil {
			return true
		}
		if pass.allows.covers(pass.Fset.Position(call.Pos()), "determinism") {
			return true
		}
		if desc := directNondeterminism(callee); desc != "" {
			out = append(out, detViolation{desc: desc, chain: nil})
			return true
		}
		for _, v := range calleeViolations(pass, callee, visited, depth+1) {
			out = append(out, detViolation{
				desc:  v.desc,
				chain: append([]string{funcDisplayName(callee)}, v.chain...),
			})
		}
		return true
	})
	return out
}

// descendForDeterminism gates the callee descent: functions with their
// own deterministic mark are checked at their own root, sanitizers and
// the resilience/telemetry infrastructure own their timing.
func descendForDeterminism(pass *Pass, fn *types.Func) bool {
	facts := pass.Graph.FactsOf(fn)
	if facts == nil || facts.Deterministic {
		return false
	}
	if pass.Graph.isSanitizer(fn) {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if strings.HasSuffix(path, "/resilience") || strings.HasSuffix(path, "/telemetry") {
			return false
		}
	}
	return true
}

// directNondeterminism classifies a callee as a nondeterminism source:
// wall clock reads and global math/rand state. Seeded *rand.Rand
// methods and the rand.New*/NewSource constructors are deterministic
// given their seed and are not flagged.
func directNondeterminism(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path, name := pkg.Path(), fn.Name()
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			return "reads the wall clock (time." + name + ")"
		}
	case "math/rand", "math/rand/v2":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !strings.HasPrefix(name, "New") {
			return "draws from the global math/rand state (rand." + name + "); use a seeded *rand.Rand"
		}
	}
	return ""
}

// checkDetMapRange flags order-sensitive map iteration inside a
// deterministic function: ordered sinks in the body (the mapiter rule),
// and appends into a slice that the function never sorts.
func checkDetMapRange(pass *Pass, facts *FuncFacts, rng *ast.RangeStmt) {
	inner := &Pass{Context: pass.Context, Pkg: facts.Pkg}
	t := inner.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
		return
	}
	appendTargets := make(map[types.Object]ast.Expr)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(inner, node); fn != nil && isOrderedSink(fn) {
				pass.Reportf(node.Pos(),
					"deterministic path emits during `range` over %s; map iteration order is random — collect and sort first",
					typeLabel(inner, rng.X))
			}
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(node.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if base := baseIdent(node.Lhs[i]); base != nil {
					if obj := inner.Pkg.Info.ObjectOf(base); obj != nil {
						appendTargets[obj] = node.Lhs[i]
					}
				}
			}
		}
		return true
	})
	for obj, lhs := range appendTargets {
		if !sortedInFunc(inner, facts.Decl, obj) {
			pass.Reportf(lhs.Pos(),
				"deterministic path appends to %s in map-iteration order and never sorts it; sort before the slice is used",
				obj.Name())
		}
	}
}

// sortedInFunc reports whether obj is passed to a sort/slices sorting
// call anywhere in fn — the collect-then-sort idiom.
func sortedInFunc(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		path := callee.Pkg().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if !strings.Contains(callee.Name(), "Sort") && callee.Name() != "Strings" &&
			callee.Name() != "Ints" && callee.Name() != "Float64s" {
			return true
		}
		for _, arg := range call.Args {
			if base := baseIdent(arg); base != nil && pass.Pkg.Info.ObjectOf(base) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
