package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Interprocedural privacy-taint engine.
//
// The intra-procedural privacyboundary check (privacy.go) sees a
// private value handed *directly* to a sink. This engine additionally
// follows the value through helper calls: function parameters, method
// receivers, return values, struct-field assignments, closures, and the
// pure string-transform stdlib, up to a bounded call depth — so
// log(format(doc.Term)) is flagged even though format's parameter is a
// plain string.
//
// Mechanics: every declared function gets a memoized *summary* mapping
// each parameter (receiver = index 0) to (a) the sinks its taint
// reaches inside the function, with the call chain, and (b) whether its
// taint flows into a return value. Summaries are computed by a local
// flow analysis (fixed point over assignments, then one reporting walk)
// that consults callee summaries at call sites. Checking a package runs
// the same local analysis with the markers (//csfltr:private) as the
// only taint source.
//
// Taint labels: -1 is "derived from a //csfltr:private source"; 0..n
// are the enclosing function's parameters (summary mode only). A sink
// hit whose labels include -1 is reported where it happens; a hit that
// depends only on a parameter is exported through the summary and
// reported at the call site that supplies the private argument, keeping
// exactly one diagnostic per flow.
//
// Conservative by design: interface dispatch, func-typed values, and
// method values are not followed; calls into the sketch/hash/DP
// packages (and //csfltr:sanitizes functions) stop taint, since their
// outputs are the derived values that are allowed to cross the wire.

// maxTaintDepth bounds the summary recursion (frames of helper calls a
// private value is followed through).
const maxTaintDepth = 5

// labelSet is a small set of taint labels.
type labelSet map[int]bool

const labelPrivate = -1

func (s labelSet) merge(other labelSet) bool {
	changed := false
	for l := range other {
		if !s[l] {
			s[l] = true
			changed = true
		}
	}
	return changed
}

func (s labelSet) hasParam() bool {
	for l := range s {
		if l >= 0 {
			return true
		}
	}
	return false
}

// sinkReach describes one sink reachable from a tainted value: its
// classification, the sink function, and the call chain leading to it
// (display names, outermost callee first, sink last).
type sinkReach struct {
	kind  string
	sink  string
	chain []string
}

// taintSummary is one function's interprocedural behavior. toReturn is
// per result slot: slot -> the parameter labels that flow into that
// result, so `res, traceID, err := Search(...)` taints only the slots
// the callee actually derives from tainted inputs instead of smearing
// one tainted result across every target of the tuple assignment.
type taintSummary struct {
	toSink   map[int][]sinkReach
	toReturn map[int]labelSet
}

// taintEngine owns the summary cache for one analysis run.
type taintEngine struct {
	markers   *Markers
	graph     *CallGraph
	allows    allowIndex
	fset      *token.FileSet
	summaries map[*types.Func]*taintSummary
	visiting  map[*types.Func]bool
}

func newTaintEngine(fset *token.FileSet, markers *Markers, graph *CallGraph, allows allowIndex) *taintEngine {
	return &taintEngine{
		markers:   markers,
		graph:     graph,
		allows:    allows,
		fset:      fset,
		summaries: make(map[*types.Func]*taintSummary),
		visiting:  make(map[*types.Func]bool),
	}
}

// summarize computes (memoized) the taint summary of fn, or an empty
// summary at the depth bound, on recursion, or for bodyless functions.
func (e *taintEngine) summarize(fn *types.Func) *taintSummary {
	if s, ok := e.summaries[fn]; ok {
		return s
	}
	empty := &taintSummary{toSink: map[int][]sinkReach{}, toReturn: map[int]labelSet{}}
	facts := e.graph.FactsOf(fn)
	if facts == nil || facts.Decl.Body == nil || e.visiting[fn] || len(e.visiting) >= maxTaintDepth {
		return empty
	}
	e.visiting[fn] = true
	defer delete(e.visiting, fn)

	lf := newLocalFlow(e, facts.Pkg, facts.Decl, true)
	lf.run()

	s := &taintSummary{toSink: map[int][]sinkReach{}, toReturn: lf.rets}
	for _, hit := range lf.hits {
		if hit.labels[labelPrivate] {
			// Fires locally when the defining package is checked; the
			// summary exports only caller-dependent reaches so each
			// flow yields exactly one diagnostic.
			continue
		}
		for l := range hit.labels {
			s.toSink[l] = append(s.toSink[l], hit.reach)
		}
	}
	e.summaries[fn] = s
	return s
}

// flowHit is one tainted value reaching a sink, recorded at the
// offending expression in the analyzed function.
type flowHit struct {
	pos    token.Pos
	expr   ast.Expr
	labels labelSet
	reach  sinkReach
}

// objField keys first-level struct-field taint: base object + first
// selector segment, so a tainted s.Raw never poisons a sibling s.ID.
type objField struct {
	obj   types.Object
	field string
}

// localFlow runs the per-function taint analysis.
type localFlow struct {
	eng     *taintEngine
	pkg     *Package
	decl    *ast.FuncDecl
	summary bool // params are sources; returns are tracked

	params  map[types.Object]int
	results map[types.Object]int
	objs    map[types.Object]labelSet
	fields  map[objField]labelSet

	hits []flowHit
	rets map[int]labelSet
}

func newLocalFlow(e *taintEngine, pkg *Package, decl *ast.FuncDecl, summaryMode bool) *localFlow {
	lf := &localFlow{
		eng:     e,
		pkg:     pkg,
		decl:    decl,
		summary: summaryMode,
		params:  make(map[types.Object]int),
		results: make(map[types.Object]int),
		objs:    make(map[types.Object]labelSet),
		fields:  make(map[objField]labelSet),
		rets:    make(map[int]labelSet),
	}
	if summaryMode {
		idx := 0
		if decl.Recv != nil {
			for _, f := range decl.Recv.List {
				for _, name := range f.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						lf.params[obj] = idx
					}
				}
			}
			idx = 1
		}
		if decl.Type.Params != nil {
			for _, f := range decl.Type.Params.List {
				for _, name := range f.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						lf.params[obj] = idx
					}
					idx++
				}
				if len(f.Names) == 0 {
					idx++
				}
			}
		}
		if decl.Type.Results != nil {
			slot := 0
			for _, f := range decl.Type.Results.List {
				for _, name := range f.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						lf.results[obj] = slot
					}
					slot++
				}
				if len(f.Names) == 0 {
					slot++
				}
			}
		}
	}
	return lf
}

func (lf *localFlow) run() {
	if lf.decl.Body == nil {
		return
	}
	// Fixed point over assignments: object/field taint grows
	// monotonically, so a handful of rounds converges.
	for round := 0; round < 8; round++ {
		if !lf.propagate() {
			break
		}
	}
	lf.report()
}

// taintObj merges labels into an object's taint set.
func (lf *localFlow) taintObj(obj types.Object, labels labelSet) bool {
	if obj == nil || len(labels) == 0 {
		return false
	}
	set := lf.objs[obj]
	if set == nil {
		set = make(labelSet)
		lf.objs[obj] = set
	}
	return set.merge(labels)
}

func (lf *localFlow) taintField(key objField, labels labelSet) bool {
	if key.obj == nil || len(labels) == 0 {
		return false
	}
	set := lf.fields[key]
	if set == nil {
		set = make(labelSet)
		lf.fields[key] = set
	}
	return set.merge(labels)
}

// assignTo applies taint to one assignment target.
func (lf *localFlow) assignTo(lhs ast.Expr, labels labelSet) bool {
	if len(labels) == 0 {
		return false
	}
	switch target := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if target.Name == "_" {
			return false
		}
		return lf.taintObj(lf.objectOf(target), labels)
	case *ast.SelectorExpr:
		// s.F = x poisons the (base, F) field subtree; writes through
		// pointers and elements land on the base object.
		if base, field := baseAndField(target); base != nil {
			if obj := lf.objectOf(base); obj != nil {
				return lf.taintField(objField{obj: obj, field: field}, labels)
			}
		}
		return false
	case *ast.IndexExpr:
		if base := baseIdent(target.X); base != nil {
			return lf.taintObj(lf.objectOf(base), labels)
		}
		return false
	case *ast.StarExpr:
		if base := baseIdent(target.X); base != nil {
			return lf.taintObj(lf.objectOf(base), labels)
		}
		return false
	}
	return false
}

// propagate runs one transfer round; reports whether anything changed.
func (lf *localFlow) propagate() bool {
	changed := false
	ast.Inspect(lf.decl.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if len(stmt.Lhs) == len(stmt.Rhs) {
				for i, lhs := range stmt.Lhs {
					if lf.assignTo(lhs, lf.exprTaint(stmt.Rhs[i])) {
						changed = true
					}
				}
			} else if len(stmt.Rhs) == 1 {
				if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok {
					if slots, ok := lf.callSlotTaint(call, len(stmt.Lhs)); ok {
						for i, lhs := range stmt.Lhs {
							if lf.assignTo(lhs, slots[i]) {
								changed = true
							}
						}
						return true
					}
				}
				// Tuple assignment without a callee summary: every
				// target inherits the source's taint, except error
				// values — private data inside an error is caught at
				// the fmt.Errorf construction sink, so the error's
				// identity is not itself a carrier.
				labels := lf.exprTaint(stmt.Rhs[0])
				for _, lhs := range stmt.Lhs {
					if isErrorType(lf.pkg.Info.TypeOf(lhs)) {
						continue
					}
					if lf.assignTo(lhs, labels) {
						changed = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range stmt.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if lf.taintObj(lf.pkg.Info.Defs[name], lf.exprTaint(vs.Values[i])) {
							changed = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			labels := lf.exprTaint(stmt.X)
			// Over slices, arrays, strings and ints the key is a
			// structural index, not data from the container; only map
			// keys and channel elements carry the container's taint.
			if rangeKeyCarries(lf.pkg.Info.TypeOf(stmt.X)) {
				if lf.assignTo(stmt.Key, labels) {
					changed = true
				}
			}
			if stmt.Value != nil && lf.assignTo(stmt.Value, labels) {
				changed = true
			}
		case *ast.SendStmt:
			if base := baseIdent(stmt.Chan); base != nil {
				if lf.taintObj(lf.objectOf(base), lf.exprTaint(stmt.Value)) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// report walks every call once, recording sink hits, and (in summary
// mode) collects the labels reaching return values.
func (lf *localFlow) report() {
	seen := make(map[string]bool)
	var walk func(n ast.Node, inClosure bool)
	walk = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.FuncLit:
				// Closures share the enclosing object environment:
				// sinks inside them count, their returns do not.
				walk(node.Body, true)
				return false
			case *ast.CallExpr:
				lf.checkCall(node, seen)
			case *ast.AssignStmt:
				lf.checkWireAssign(node, seen)
			case *ast.ReturnStmt:
				if lf.summary && !inClosure {
					total := lf.resultSlots()
					if len(node.Results) == 1 && total > 1 {
						// `return f()` fills several slots from one call;
						// without the callee's slot map here, smear.
						labels := lf.exprTaint(node.Results[0])
						for slot := 0; slot < total; slot++ {
							lf.addRet(slot, labels)
						}
					} else {
						for i, res := range node.Results {
							lf.addRet(i, lf.exprTaint(res))
						}
					}
				}
			}
			return true
		})
	}
	walk(lf.decl.Body, false)
	if lf.summary {
		for obj, slot := range lf.results {
			lf.addRet(slot, lf.objs[obj])
		}
	}
}

// rangeKeyCarries reports whether the range key over a value of type t
// is data from the container (map keys, channel elements, iterator
// yields) rather than a structural int index.
func rangeKeyCarries(t types.Type) bool {
	if t == nil {
		return true
	}
	switch tt := types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Array, *types.Basic:
		return false
	case *types.Pointer:
		return rangeKeyCarries(tt.Elem())
	}
	return true
}

// resultSlots counts the function's result values.
func (lf *localFlow) resultSlots() int {
	if lf.decl.Type.Results == nil {
		return 0
	}
	n := 0
	for _, f := range lf.decl.Type.Results.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// addRet merges the parameter labels of one return slot into the
// summary-to-be; derived-private (-1) labels are dropped because the
// caller re-derives them from the result's type.
func (lf *localFlow) addRet(slot int, labels labelSet) {
	for l := range labels {
		if l < 0 {
			continue
		}
		if lf.rets[slot] == nil {
			lf.rets[slot] = make(labelSet)
		}
		lf.rets[slot][l] = true
	}
}

// recordHit appends one sink hit, deduplicating by (position, sink,
// chain) and honoring suppressions in summary mode (a justified allow
// at the sink covers every caller: the reach is not exported).
func (lf *localFlow) recordHit(expr ast.Expr, labels labelSet, reach sinkReach, seen map[string]bool) {
	if len(labels) == 0 {
		return
	}
	if lf.summary && lf.eng.allows.covers(lf.eng.fset.Position(expr.Pos()), "privacyboundary") {
		return
	}
	key := fmt.Sprintf("%d|%s|%s", expr.Pos(), reach.kind, strings.Join(reach.chain, ">"))
	if seen[key] {
		return
	}
	seen[key] = true
	lf.hits = append(lf.hits, flowHit{pos: expr.Pos(), expr: expr, labels: labels, reach: reach})
}

// checkWireAssign records a hit when a tainted value is stored into a
// field of a wire-message struct — the assignment is the boundary
// crossing even before any marshal call serializes it.
func (lf *localFlow) checkWireAssign(stmt *ast.AssignStmt, seen map[string]bool) {
	for i, lhs := range stmt.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		wire := wireTypeName(lf.pkg.Info.TypeOf(sel.X))
		if wire == "" {
			continue
		}
		var rhs ast.Expr
		switch {
		case len(stmt.Lhs) == len(stmt.Rhs):
			rhs = stmt.Rhs[i]
		case len(stmt.Rhs) == 1:
			rhs = stmt.Rhs[0]
		default:
			continue
		}
		field := wire + "." + sel.Sel.Name
		lf.recordHit(rhs, lf.exprTaint(rhs), sinkReach{
			kind: "wire struct field", sink: field, chain: []string{field},
		}, seen)
	}
}

// checkCall records sink hits at one call site: direct sinks, and
// summarized callees whose parameter taint reaches a sink.
func (lf *localFlow) checkCall(call *ast.CallExpr, seen map[string]bool) {
	fn := lf.calleeFunc(call)
	if fn == nil {
		return
	}
	if kind := sinkKind(fn); kind != "" {
		for _, arg := range call.Args {
			lf.recordHit(arg, lf.exprTaint(arg), sinkReach{
				kind: kind, sink: fn.FullName(), chain: []string{fn.FullName()},
			}, seen)
		}
		return
	}
	if lf.eng.graph.isSanitizer(fn) {
		return
	}
	facts := lf.eng.graph.FactsOf(fn)
	if facts == nil {
		return
	}
	summary := lf.eng.summarize(fn)
	if len(summary.toSink) == 0 {
		return
	}
	for idx, arg := range lf.callArgs(call, fn) {
		if arg == nil {
			continue
		}
		labels := lf.exprTaint(arg)
		if len(labels) == 0 {
			continue
		}
		for _, reach := range summary.toSink[idx] {
			lf.recordHit(arg, labels, sinkReach{
				kind:  reach.kind,
				sink:  reach.sink,
				chain: append([]string{funcDisplayName(fn)}, reach.chain...),
			}, seen)
		}
	}
}

// callArgs maps a call's expressions to the callee's parameter indexes
// (receiver first). Index i of the returned slice is the expression
// bound to parameter i, nil when unknown. Variadic tails map onto the
// final parameter.
func (lf *localFlow) callArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	var out []ast.Expr
	if sig.Recv() != nil {
		out = append(out, receiverExpr(&Pass{Pkg: lf.pkg}, call))
	}
	n := sig.Params().Len()
	for i := 0; i < n; i++ {
		out = append(out, nil)
	}
	base := 0
	if sig.Recv() != nil {
		base = 1
	}
	for i, arg := range call.Args {
		slot := i
		if slot >= n {
			slot = n - 1 // variadic tail
		}
		if slot < 0 {
			break
		}
		if out[base+slot] == nil {
			out[base+slot] = arg
		} else {
			// Several variadic arguments share the last parameter; keep
			// the first tainted one by preferring an already-set slot
			// only when it is untainted.
			if len(lf.exprTaint(out[base+slot])) == 0 && len(lf.exprTaint(arg)) > 0 {
				out[base+slot] = arg
			}
		}
	}
	return out
}

// propagatorPath matches stdlib packages whose functions are pure value
// transforms: taint flows from arguments to results.
func propagatorPath(path string) bool {
	switch path {
	case "strings", "strconv", "bytes", "slices", "maps",
		"encoding/hex", "encoding/base64", "unicode", "unicode/utf8":
		return true
	}
	return false
}

// exprTaint computes the labels carried by one expression.
func (lf *localFlow) exprTaint(e ast.Expr) labelSet {
	out := make(labelSet)
	if e == nil {
		return out
	}
	if t := lf.pkg.Info.TypeOf(e); t != nil && lf.eng.markers.ContainsPrivate(t) {
		out[labelPrivate] = true
	}
	switch expr := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := lf.objectOf(expr)
		if obj == nil {
			break
		}
		if idx, ok := lf.params[obj]; ok {
			out[idx] = true
		}
		if lf.eng.markers.IsPrivate(obj) {
			out[labelPrivate] = true
		}
		out.merge(lf.objs[obj])
		for key, labels := range lf.fields {
			if key.obj == obj {
				out.merge(labels)
			}
		}
	case *ast.SelectorExpr:
		if sel := lf.pkg.Info.Uses[expr.Sel]; sel != nil && lf.eng.markers.IsPrivate(sel) {
			out[labelPrivate] = true
		}
		if base, field := baseAndField(expr); base != nil {
			if obj := lf.objectOf(base); obj != nil {
				if lf.selectorCarries(expr) {
					if idx, ok := lf.params[obj]; ok {
						out[idx] = true
					}
					out.merge(lf.objs[obj])
				}
				out.merge(lf.fields[objField{obj: obj, field: field}])
			}
		}
	case *ast.IndexExpr:
		out.merge(lf.exprTaint(expr.X))
	case *ast.SliceExpr:
		out.merge(lf.exprTaint(expr.X))
	case *ast.StarExpr:
		out.merge(lf.exprTaint(expr.X))
	case *ast.UnaryExpr:
		out.merge(lf.exprTaint(expr.X))
	case *ast.BinaryExpr:
		switch expr.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Comparisons and boolean logic yield derived bits, not the
			// value itself.
		default:
			out.merge(lf.exprTaint(expr.X))
			out.merge(lf.exprTaint(expr.Y))
		}
	case *ast.CompositeLit:
		for _, elt := range expr.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				out.merge(lf.exprTaint(kv.Value))
				continue
			}
			out.merge(lf.exprTaint(elt))
		}
	case *ast.TypeAssertExpr:
		out.merge(lf.exprTaint(expr.X))
	case *ast.CallExpr:
		out.merge(lf.callTaint(expr))
	}
	return out
}

// callTaint computes the taint of a call's result.
func (lf *localFlow) callTaint(call *ast.CallExpr) labelSet {
	out := make(labelSet)
	// Type conversions preserve the value byte-for-byte.
	if tv, ok := lf.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return lf.exprTaint(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := lf.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				for _, arg := range call.Args {
					out.merge(lf.exprTaint(arg))
				}
			case "min", "max":
				for _, arg := range call.Args {
					out.merge(lf.exprTaint(arg))
				}
			}
			// len, cap, make, new, ... yield derived or fresh values.
			return out
		}
	}
	fn := lf.calleeFunc(call)
	if fn == nil {
		return out
	}
	if sinkKind(fn) != "" {
		// The sink finding fires at this call; treating its result as
		// clean keeps one diagnostic per flow.
		return out
	}
	if lf.eng.graph.isSanitizer(fn) {
		return out
	}
	if pkg := fn.Pkg(); pkg != nil && propagatorPath(pkg.Path()) {
		for _, arg := range call.Args {
			out.merge(lf.exprTaint(arg))
		}
		if recv := receiverExpr(&Pass{Pkg: lf.pkg}, call); recv != nil {
			out.merge(lf.exprTaint(recv))
		}
		return out
	}
	if lf.eng.graph.FactsOf(fn) == nil {
		return out
	}
	summary := lf.eng.summarize(fn)
	if len(summary.toReturn) == 0 {
		return out
	}
	args := lf.callArgs(call, fn)
	for _, labels := range summary.toReturn {
		for l := range labels {
			if l >= 0 && l < len(args) && args[l] != nil {
				out.merge(lf.exprTaint(args[l]))
			}
		}
	}
	return out
}

// callSlotTaint computes per-result-slot taint for a call to a
// summarized in-module function: slot i carries the taint of exactly
// the arguments the callee derives result i from. Reports false when
// the callee has no summary (unresolved, stdlib, closure), in which
// case tuple assignments fall back to smearing with the error-slot
// exemption.
func (lf *localFlow) callSlotTaint(call *ast.CallExpr, n int) ([]labelSet, bool) {
	fn := lf.calleeFunc(call)
	if fn == nil || lf.eng.graph.FactsOf(fn) == nil {
		return nil, false
	}
	out := make([]labelSet, n)
	for i := range out {
		out[i] = make(labelSet)
	}
	if sinkKind(fn) != "" || lf.eng.graph.isSanitizer(fn) {
		return out, true // sink and sanitizer results are clean
	}
	summary := lf.eng.summarize(fn)
	args := lf.callArgs(call, fn)
	for slot, labels := range summary.toReturn {
		if slot < 0 || slot >= n {
			continue
		}
		for l := range labels {
			if l >= 0 && l < len(args) && args[l] != nil {
				out[slot].merge(lf.exprTaint(args[l]))
			}
		}
	}
	return out, true
}

// objectOf resolves an identifier to its object (use or def).
func (lf *localFlow) objectOf(id *ast.Ident) types.Object {
	if obj := lf.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return lf.pkg.Info.Defs[id]
}

// calleeFunc resolves the called function within this flow's package.
func (lf *localFlow) calleeFunc(call *ast.CallExpr) *types.Func {
	return calleeFunc(&Pass{Pkg: lf.pkg}, call)
}

// selectorCarries reports whether selecting expr.Sel keeps the base's
// taint. Field selection is the one laundering edge in the lattice: a
// struct that merely *contains* private constituents does not taint its
// public fields (pipeline.Cfg off a corpus-holding pipeline is clean),
// while a field that is itself marked, a field whose type can hold
// private data, and any field of a directly-marked type (the whole
// value is the secret) all stay tainted. Unresolvable selections stay
// tainted — when in doubt, carry.
func (lf *localFlow) selectorCarries(expr *ast.SelectorExpr) bool {
	obj := lf.pkg.Info.Uses[expr.Sel]
	if obj == nil {
		return true
	}
	if lf.eng.markers.IsPrivate(obj) || lf.eng.markers.ContainsPrivate(obj.Type()) {
		return true
	}
	return lf.eng.markers.DirectlyPrivate(lf.pkg.Info.TypeOf(expr.X))
}

// baseAndField unwraps a selector chain to its base identifier and the
// first field segment: s.A.B -> (s, "A"); (*p).F -> (p, "F").
func baseAndField(sel *ast.SelectorExpr) (*ast.Ident, string) {
	field := sel.Sel.Name
	x := sel.X
	for {
		switch inner := ast.Unparen(x).(type) {
		case *ast.Ident:
			return inner, field
		case *ast.SelectorExpr:
			field = inner.Sel.Name
			x = inner.X
		case *ast.IndexExpr:
			x = inner.X
		case *ast.StarExpr:
			x = inner.X
		default:
			return nil, ""
		}
	}
}

// baseIdent unwraps selectors, indexes, derefs and parens to the base
// identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch inner := ast.Unparen(e).(type) {
		case *ast.Ident:
			return inner
		case *ast.SelectorExpr:
			e = inner.X
		case *ast.IndexExpr:
			e = inner.X
		case *ast.StarExpr:
			e = inner.X
		case *ast.UnaryExpr:
			e = inner.X
		default:
			return nil
		}
	}
}
