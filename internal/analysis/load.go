package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: the unit every analyzer runs over.
type Package struct {
	Path  string      // import path ("csfltr/internal/core")
	Dir   string      // absolute directory
	Files []*ast.File // non-test files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without shelling
// out to the go tool: intra-module imports are resolved against the
// module root, everything else (the standard library) is type-checked
// from $GOROOT/src via go/importer's source importer. Test files are
// excluded — the analyzers guard production code paths.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Packages returns every package loaded so far, sorted by import path.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Load type-checks the package with the given import path, loading its
// intra-module dependencies first. Standard-library paths are delegated
// to the source importer and not returned as *Package.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if !l.inModule(path) {
		return nil, fmt.Errorf("analysis: %s is outside module %s", path, l.ModulePath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
}

// LoadDir type-checks the package in dir under the import path asPath.
// It is the entry point fixture tests use for testdata packages, which
// have no real import path.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if p, ok := l.pkgs[asPath]; ok {
		return p, nil
	}
	if l.loading[asPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", asPath)
	}
	l.loading[asPath] = true
	defer delete(l.loading, asPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", asPath, err)
	}
	p := &Package{Path: asPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[asPath] = p
	return p, nil
}

// importPkg resolves one import during type-checking.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if l.inModule(path) {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// inModule reports whether path names a package of this module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// parseDir parses the non-test Go files of one directory with comments.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if fileExcluded(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// fileExcluded reports whether a file opts out of the build (and hence
// of analysis) via a `//go:build ignore`-style constraint.
func fileExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// DiscoverPackages maps Go package patterns to import paths within the
// module. Supported forms: "./..." (every package), "./dir/..."
// (subtree), "./dir" (single package). Directories named testdata,
// hidden directories, and directories without Go files are skipped.
func (l *Loader) DiscoverPackages(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			add(l.pathFor(base))
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(l.pathFor(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// pathFor converts an absolute directory to its module import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
