// Package analysis is the project-specific static-analysis suite behind
// cmd/csfltr-vet. It enforces, at compile time, the invariants the
// CS-F-LTR system cannot test its way out of:
//
//   - the privacy boundary — raw term statistics, DH private keys and
//     shared hash seeds (anything marked `//csfltr:private`) must never
//     flow into wire-message structs, marshal paths, or fmt/log/metric
//     label arguments — including through helper calls, tracked
//     interprocedurally over a type-based call graph (taint.go);
//   - determinism — paper tables, sketch contents and merge/ranking
//     paths marked `//csfltr:deterministic` must not depend on map
//     iteration order, wall-clock time, or global math/rand state;
//   - budget flow — every path releasing estimates to a peer
//     (`//csfltr:releases`) must pay via dp.Accountant or be a declared
//     zero-epsilon replay;
//   - concurrency hygiene — mutex-containing structs must not be copied
//     (lockcopy), and no blocking channel/RPC/HTTP operation may run
//     while a mutex is held (lockhold);
//
// plus two first-order hygiene properties: silently dropped errors on
// transport/store/encoder calls, and unbounded metric-label cardinality.
//
// The suite is stdlib-only: packages are loaded by the Loader in this
// package (go/parser + go/types with a source importer), not by
// golang.org/x/tools. Findings can be suppressed at a specific line with
// `//csfltr:allow <analyzer>[,<analyzer>] -- <justification>` on the
// flagged line or the line above it; the justification is mandatory —
// a suppression without one is itself reported and does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer, a position, a message, and —
// for interprocedural findings — the call chain from the flagged
// expression to the offending sink.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the call path supporting an interprocedural finding
	// (enclosing function first, sink last); empty for local findings.
	Chain []string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Context is the run-wide state shared by every pass: the file set, the
// federation-wide privacy markers, the call graph over every loaded
// package, the suppression index, and the taint-summary cache.
type Context struct {
	Fset    *token.FileSet
	Markers *Markers
	Graph   *CallGraph

	allows allowIndex
	taint  *taintEngine
}

// NewContext builds the shared analysis context over every loaded
// package (markers and the call graph span dependencies outside the
// analyzed pattern set, so a marked type or helper in internal/textkit
// is known everywhere).
func NewContext(fset *token.FileSet, pkgs []*Package) *Context {
	ctx := &Context{
		Fset:    fset,
		Markers: CollectMarkers(pkgs),
		Graph:   BuildCallGraph(pkgs),
		allows:  buildAllowIndex(fset, pkgs),
	}
	ctx.taint = newTaintEngine(fset, ctx.Markers, ctx.Graph, ctx.allows)
	return ctx
}

// Pass is the per-package, per-analyzer unit of work handed to Run.
type Pass struct {
	*Context
	Pkg *Package

	diags *[]Diagnostic
	name  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportChain(pos, nil, format, args...)
}

// ReportChain records a diagnostic carrying a supporting call chain.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// TypeOf returns the static type of an expression (nil if unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Analyzer is one named check.
type Analyzer struct {
	Name string // stable identifier, used in //csfltr:allow
	Doc  string // one-line description for -list
	Run  func(*Pass)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PrivacyBoundary,
		MapIter,
		UncheckedErr,
		TelemetryLabel,
		LockCopy,
		LockHold,
		Determinism,
		BudgetFlow,
	}
}

// Run loads the packages matching patterns under the module rooted at
// root, builds the shared context (markers, call graph, suppressions),
// runs every analyzer over every matched package, and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := loader.DiscoverPackages(patterns)
	if err != nil {
		return nil, err
	}
	matched := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		matched = append(matched, p)
	}
	ctx := NewContext(loader.Fset, loader.Packages())
	var diags []Diagnostic
	for _, p := range matched {
		RunPackage(ctx, p, analyzers, &diags)
	}
	diags = ctx.applySuppressions(matched, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// RunPackage applies analyzers to one package, appending to diags. It
// does not apply suppressions; Run does.
func RunPackage(ctx *Context, pkg *Package, analyzers []*Analyzer, diags *[]Diagnostic) {
	for _, a := range analyzers {
		pass := &Pass{Context: ctx, Pkg: pkg, diags: diags, name: a.Name}
		a.Run(pass)
	}
}

// allowDirective is the suppression marker prefix.
const allowDirective = "//csfltr:allow"

// privateDirective marks a type, field, or variable as silo-private.
const privateDirective = "//csfltr:private"

// allowEntry is one parsed //csfltr:allow directive.
type allowEntry struct {
	pos    token.Position
	names  []string
	reason string
}

// allowIndex maps filename -> line -> analyzer names allowed there; a
// directive covers its own line and the line directly below it.
type allowIndex struct {
	byLine  map[string]map[int]map[string]bool
	invalid []allowEntry // directives missing the mandatory reason
}

// buildAllowIndex collects every //csfltr:allow directive over the given
// packages. Directives without a `-- reason` justification are recorded
// as invalid and do not suppress anything.
func buildAllowIndex(fset *token.FileSet, pkgs []*Package) allowIndex {
	idx := allowIndex{byLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					if reason == "" {
						idx.invalid = append(idx.invalid, allowEntry{pos: pos, names: names})
						continue
					}
					byLine := idx.byLine[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						idx.byLine[pos.Filename] = byLine
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						for _, n := range names {
							set[n] = true
						}
					}
				}
			}
		}
	}
	return idx
}

// covers reports whether the given position is suppressed for analyzer.
func (idx allowIndex) covers(pos token.Position, analyzer string) bool {
	set := idx.byLine[pos.Filename][pos.Line]
	return set[analyzer] || set["all"]
}

// applySuppressions drops diagnostics covered by a valid //csfltr:allow
// directive and reports reason-less directives found in the matched
// packages as findings of their own.
func (ctx *Context) applySuppressions(matched []*Package, diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if ctx.allows.covers(d.Pos, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	matchedFiles := make(map[string]bool)
	for _, pkg := range matched {
		for _, f := range pkg.Files {
			matchedFiles[ctx.Fset.Position(f.Package).Filename] = true
		}
	}
	for _, inv := range ctx.allows.invalid {
		if !matchedFiles[inv.pos.Filename] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      inv.pos,
			Analyzer: "allow",
			Message: fmt.Sprintf(
				"suppression of %s has no justification; write //csfltr:allow %s -- <reason>",
				strings.Join(inv.names, ","), strings.Join(inv.names, ",")),
		})
	}
	return out
}

// parseAllow parses "//csfltr:allow name1,name2 -- reason" into the
// analyzer names and the justification; ok is false for non-allow
// comments.
func parseAllow(text string) (names []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, allowDirective)
	if !found {
		return nil, "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false
	}
	// Everything after " -- " is the human justification.
	if i := strings.Index(rest, "--"); i >= 0 {
		reason = strings.TrimSpace(rest[i+2:])
		rest = rest[:i]
	}
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason, true
}

// hasDirective reports whether a comment group contains the given
// directive as a standalone comment line.
func hasDirective(groups []*ast.CommentGroup, directive string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == directive || strings.HasPrefix(text, directive+" ") {
				return true
			}
		}
	}
	return false
}
