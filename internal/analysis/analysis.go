// Package analysis is the project-specific static-analysis suite behind
// cmd/csfltr-vet. It enforces, at compile time, the two invariants the
// CS-F-LTR system cannot test its way out of:
//
//   - the privacy boundary — raw term statistics, DH private keys and
//     shared hash seeds (anything marked `//csfltr:private`) must never
//     flow into wire-message structs, marshal paths, or fmt/log/metric
//     label arguments;
//   - determinism — paper tables and sketch contents must not depend on
//     Go's randomized map iteration order.
//
// plus two hygiene properties that bite a concurrent federation hardest:
// silently dropped errors on transport/store/encoder calls, and
// unbounded metric-label cardinality.
//
// The suite is stdlib-only: packages are loaded by the Loader in this
// package (go/parser + go/types with a source importer), not by
// golang.org/x/tools. Findings can be suppressed at a specific line with
// `//csfltr:allow <analyzer>[,<analyzer>] -- <justification>` on the
// flagged line or the line above it; the justification is mandatory by
// convention and reviewed like code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer, a position, and a message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is the per-package unit of work handed to an analyzer's Run.
type Pass struct {
	Fset    *token.FileSet
	Pkg     *Package
	Markers *Markers

	diags *[]Diagnostic
	name  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression (nil if unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Analyzer is one named check.
type Analyzer struct {
	Name string // stable identifier, used in //csfltr:allow
	Doc  string // one-line description for -list
	Run  func(*Pass)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PrivacyBoundary,
		MapIter,
		UncheckedErr,
		TelemetryLabel,
	}
}

// Run loads the packages matching patterns under the module rooted at
// root, builds the federation-wide privacy-marker index, runs every
// analyzer over every matched package, and returns the surviving
// (non-suppressed) diagnostics sorted by position.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := loader.DiscoverPackages(patterns)
	if err != nil {
		return nil, err
	}
	matched := make([]*Package, 0, len(paths))
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		matched = append(matched, p)
	}
	// Markers are collected over everything the loader saw — including
	// dependencies pulled in outside the pattern set — so a marked type
	// in internal/textkit is private everywhere.
	markers := CollectMarkers(loader.Packages())
	var diags []Diagnostic
	for _, p := range matched {
		RunPackage(loader.Fset, p, markers, analyzers, &diags)
	}
	diags = filterSuppressed(loader.Fset, matched, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// RunPackage applies analyzers to one package, appending to diags. It
// does not apply suppressions; Run does.
func RunPackage(fset *token.FileSet, pkg *Package, markers *Markers, analyzers []*Analyzer, diags *[]Diagnostic) {
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkg: pkg, Markers: markers, diags: diags, name: a.Name}
		a.Run(pass)
	}
}

// allowDirective is the suppression marker prefix.
const allowDirective = "//csfltr:allow"

// privateDirective marks a type, field, or variable as silo-private.
const privateDirective = "//csfltr:private"

// filterSuppressed drops diagnostics covered by a //csfltr:allow
// directive on the same line or the line directly above.
func filterSuppressed(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// filename -> line -> analyzer names allowed there.
	allowed := make(map[string]map[int]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := allowed[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						allowed[pos.Filename] = byLine
					}
					// The directive covers its own line (trailing
					// comment) and the next line (comment above).
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						for _, n := range names {
							set[n] = true
						}
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if set := allowed[d.Pos.Filename][d.Pos.Line]; set[d.Analyzer] || set["all"] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseAllow parses "//csfltr:allow name1,name2 -- reason" into the
// analyzer names; ok is false for non-allow comments.
func parseAllow(text string) (names []string, ok bool) {
	rest, found := strings.CutPrefix(text, allowDirective)
	if !found {
		return nil, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	// Everything after " -- " is the human justification.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, true
}

// hasDirective reports whether a comment group contains the given
// directive as a standalone comment line.
func hasDirective(groups []*ast.CommentGroup, directive string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == directive || strings.HasPrefix(text, directive+" ") {
				return true
			}
		}
	}
	return false
}
