package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErr flags statements that call a function returning an error
// and silently discard it — the failure mode that turns a transport
// glitch, a truncated store write, or a failed encode into corrupted
// federation state. An explicit `_ =` assignment is treated as a
// deliberate, reviewable decision and is not flagged.
//
// Exemptions, matching idiomatic Go:
//
//   - fmt.Print/Printf/Println (stdout chatter) and fmt.Fprint* when
//     the destination is an in-memory buffer (strings.Builder,
//     bytes.Buffer) or the process's own stdout/stderr;
//   - methods on strings.Builder / bytes.Buffer, and Write on a
//     hash.Hash, all documented to never return a non-nil error;
//   - `defer x.Close()` on read paths, where the error is meaningless.
//     On *write* paths — the function also writes to x, directly or via
//     io.Copy/fmt.Fprint/an encoder wrapped around it — the deferred
//     Close error is the final flush and IS flagged: dropping it is how
//     a short write to the store goes unnoticed.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flags dropped errors on transport, store, and encoder calls",
	Run:  runUncheckedErr,
}

func runUncheckedErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				switch stmt := m.(type) {
				case *ast.FuncLit:
					return false // gets its own visit from the outer walk
				case *ast.ExprStmt:
					if call, ok := stmt.X.(*ast.CallExpr); ok {
						checkDroppedError(pass, call, false, body)
					}
				case *ast.DeferStmt:
					checkDroppedError(pass, stmt.Call, true, body)
					return false // the call itself is handled above
				case *ast.GoStmt:
					checkDroppedError(pass, stmt.Call, false, body)
					return false
				}
				return true
			})
			return true
		})
	}
}

func checkDroppedError(pass *Pass, call *ast.CallExpr, deferred bool, body *ast.BlockStmt) {
	if !returnsError(pass, call) {
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return // builtin, conversion, or func-typed variable: out of scope
	}
	if deferred && fn.Name() == "Close" {
		if !closesWritePath(pass, body, call) {
			return
		}
		pass.Reportf(call.Pos(),
			"error result of deferred %s is dropped on a write path; the Close error is the final flush — capture it",
			fn.FullName())
		return
	}
	if exemptErrorDrop(pass, fn, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error result of %s is dropped; check it or assign to _ with a justification",
		fn.FullName())
}

// closesWritePath reports whether the value closed by a deferred Close
// was written to in the same function: a Write*/ReadFrom method on it,
// or the value handed as the writer to io.Copy*, fmt.Fprint*, or a
// New*Encoder/New*Writer wrapper. On such paths the Close error
// carries the final flush and must not be dropped.
func closesWritePath(pass *Pass, body *ast.BlockStmt, closeCall *ast.CallExpr) bool {
	sel, ok := ast.Unparen(closeCall.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := baseIdent(sel.X)
	if base == nil {
		return false
	}
	obj := pass.Pkg.Info.ObjectOf(base)
	if obj == nil {
		return false
	}
	sameObj := func(e ast.Expr) bool {
		b := baseIdent(e)
		return b != nil && pass.Pkg.Info.ObjectOf(b) == obj
	}
	written := false
	ast.Inspect(body, func(n ast.Node) bool {
		if written {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sameObj(s.X) {
			name := s.Sel.Name
			if strings.HasPrefix(name, "Write") || name == "ReadFrom" {
				written = true
				return false
			}
		}
		if fn := calleeFunc(pass, call); fn != nil {
			if idx, ok := writerArgIndex(fn); ok && idx < len(call.Args) && sameObj(call.Args[idx]) {
				written = true
				return false
			}
		}
		return true
	})
	return written
}

// writerArgIndex returns the parameter position of fn that receives an
// io.Writer the caller keeps responsibility for flushing.
func writerArgIndex(fn *types.Func) (int, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, false
	}
	name := fn.Name()
	switch {
	case pkg.Path() == "io" && strings.HasPrefix(name, "Copy"):
		return 0, true
	case pkg.Path() == "fmt" && strings.HasPrefix(name, "Fprint"):
		return 0, true
	case strings.HasPrefix(name, "New") &&
		(strings.HasSuffix(name, "Encoder") || strings.HasSuffix(name, "Writer")):
		return 0, true
	}
	return 0, false
}

// returnsError reports whether the call's sole or last result is error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch tt := t.(type) {
	case *types.Tuple:
		return tt.Len() > 0 && isErrorType(tt.At(tt.Len()-1).Type())
	default:
		return isErrorType(tt)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptErrorDrop applies the idiomatic-Go exemptions.
func exemptErrorDrop(pass *Pass, fn *types.Func, call *ast.CallExpr) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	if pkg.Path() == "fmt" {
		if strings.HasPrefix(name, "Print") {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return isBufferedDest(pass, call.Args[0])
		}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if isInMemoryWriter(recv.Type()) {
			return true
		}
		// hash.Hash documents: "It never returns an error." The method
		// resolves to (io.Writer).Write, so look at the receiver
		// expression's static type.
		if strings.HasPrefix(name, "Write") {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isHashHash(pass.TypeOf(sel.X)) {
				return true
			}
		}
	}
	return false
}

// isHashHash matches the hash.Hash / hash.Hash32 / hash.Hash64
// interfaces.
func isHashHash(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "hash" &&
		strings.HasPrefix(named.Obj().Name(), "Hash")
}

// isBufferedDest reports whether an io.Writer argument is an in-memory
// buffer or the process's own stdout/stderr.
func isBufferedDest(pass *Pass, arg ast.Expr) bool {
	if isInMemoryWriter(pass.TypeOf(arg)) {
		return true
	}
	sel, ok := ast.Unparen(arg).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
		if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			return true
		}
	}
	return false
}

// isInMemoryWriter matches *strings.Builder and *bytes.Buffer, whose
// write methods are documented to never fail.
func isInMemoryWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}
