// Package determinismfix exercises the determinism analyzer: wall
// clock, global math/rand, and map-iteration order on paths marked
// //csfltr:deterministic, including violations reached through helper
// calls.
package determinismfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// mergeScores is the sound shape: collect map keys, sort, then emit.
//
//csfltr:deterministic
func mergeScores(parts map[string][]float64) []float64 {
	var keys []string
	for k := range parts {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	var out []float64
	for _, k := range keys {
		out = append(out, parts[k]...)
	}
	return out
}

//csfltr:deterministic
func stampedMerge(a, b []float64) []float64 {
	_ = time.Now() // want "reads the wall clock"
	out := append(append([]float64{}, a...), b...)
	return out
}

//csfltr:deterministic
func jitteredRank(xs []float64) int {
	return rand.Intn(len(xs)) // want "global math/rand"
}

//csfltr:deterministic
func seededRank(xs []float64, rng *rand.Rand) int {
	return rng.Intn(len(xs)) // ok: seeded source, deterministic given the seed
}

// stamp is an unmarked helper hiding a clock read.
func stamp() int64 { return time.Now().UnixNano() }

// tick adds a second frame between the root and the clock.
func tick() int64 { return stamp() }

//csfltr:deterministic
func mergeWithHelper(xs []float64) int64 {
	return stamp() // want "reads the wall clock (time.Now) via determinismfix.stamp"
}

//csfltr:deterministic
func deepMerge() int64 {
	return tick() // want "via determinismfix.tick -> determinismfix.stamp"
}

// unpinned is not marked: the clock read is its own business.
func unpinned() int64 { return time.Now().UnixNano() } // ok: not a deterministic path

//csfltr:deterministic
func unsortedCollect(parts map[string]float64) []float64 {
	var out []float64
	for _, v := range parts {
		out = append(out, v) // want "appends to out in map-iteration order and never sorts"
	}
	return out
}

//csfltr:deterministic
func printMerge(parts map[string]float64) {
	for k, v := range parts {
		fmt.Printf("%s=%f\n", k, v) // want "emits during `range` over"
	}
}
