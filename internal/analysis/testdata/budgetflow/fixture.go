// Package budgetflowfix exercises the budgetflow analyzer: functions
// releasing estimates must pay via dp.Accountant or declare the
// zero-epsilon replay contract.
package budgetflowfix

import "csfltr/internal/dp"

type server struct {
	acct *dp.Accountant
}

// Estimate spends directly: the paid release.
//
//csfltr:releases
func (s *server) Estimate(peer string) (float64, error) { // ok: spends inline
	if err := s.acct.Spend(peer, 0.1); err != nil {
		return 0, err
	}
	return 42, nil
}

// EstimateFree hands out an estimate with no accounting anywhere.
//
//csfltr:releases
func (s *server) EstimateFree(peer string) float64 { // want "marked //csfltr:releases but no reachable path spends"
	_ = peer
	return 42
}

// charge is the helper that actually pays.
func (s *server) charge(peer string) error { return s.acct.Spend(peer, 0.1) }

// EstimateVia spends through a helper within the descent bound.
//
//csfltr:releases
func (s *server) EstimateVia(peer string) float64 { // ok: spends via charge
	if s.charge(peer) != nil {
		return 0
	}
	return 42
}

// ReplayCached re-serves previously released (already paid-for) bytes.
//
//csfltr:releases
//csfltr:replay
func (s *server) ReplayCached(peer string) float64 { // ok: declared replay
	_ = peer
	return 42
}

// serveFromCache owns the replay contract for cached answers.
//
//csfltr:replay
func (s *server) serveFromCache(peer string) (float64, bool) {
	_ = peer
	return 42, true
}

// EstimateCached delegates the cache hit to a declared replay and pays
// for the miss.
//
//csfltr:releases
func (s *server) EstimateCached(peer string) float64 { // ok: replay on hits, spend on misses
	if v, ok := s.serveFromCache(peer); ok {
		return v
	}
	if err := s.acct.Spend(peer, 0.1); err != nil {
		return 0
	}
	return 42
}

// EstimateReplayed records the zero-epsilon replay in the ledger.
//
//csfltr:releases
func (s *server) EstimateReplayed(peer string) float64 { // ok: records the replay
	s.acct.Replayed(peer)
	return 42
}

// unmarked releases nothing as far as the contract goes: no check.
func unmarked() float64 { return 42 } // ok: not marked
