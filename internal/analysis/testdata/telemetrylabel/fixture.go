// Package labelfix exercises the telemetrylabel analyzer: unbounded
// per-item identifiers as metric label values versus bounded dynamic
// values.
package labelfix

import (
	"fmt"
	"strconv"

	"csfltr/internal/telemetry"
)

func labels(reg *telemetry.Registry, docID int, route, method, query string, code int) {
	reg.Counter("a_total", "h", telemetry.L("route", route)).Inc()                     // ok: bounded route set
	reg.Counter("b_total", "h", telemetry.L("method", method)).Inc()                   // ok: bounded method set
	reg.Counter("c_total", "h", telemetry.L("code", strconv.Itoa(code))).Inc()         // ok: bounded status codes
	reg.Counter("d_total", "h", telemetry.L("mode", "fast")).Inc()                     // ok: constant
	reg.Counter("e_total", "h", telemetry.L("doc", strconv.Itoa(docID))).Inc()         // want "unbounded value"
	reg.Counter("f_total", "h", telemetry.L("query", query)).Inc()                     // want "unbounded value"
	reg.Counter("g_total", "h", telemetry.L("req", telemetry.RequestID())).Inc()       // want "unbounded value"
	reg.Counter("i_total", "h", telemetry.L("shard", fmt.Sprintf("s%d", docID))).Inc() // want "unbounded value"
}

// resilienceLabels mirrors the labels the resilience substrate attaches
// to its metrics: party names, breaker states, search outcomes and
// fault kinds are bounded (roster plus small enums); the raw query term
// that triggered a retry is not.
func resilienceLabels(reg *telemetry.Registry, party, state, outcome, kind string, term uint64) {
	reg.Gauge("k_state", "h", telemetry.L("party", party)).Set(2)                                   // ok: roster-bounded
	reg.Counter("l_total", "h", telemetry.L("state", state)).Inc()                                  // ok: breaker state enum
	reg.Counter("m_total", "h", telemetry.L("party", party), telemetry.L("outcome", outcome)).Inc() // ok: per-party outcome enum
	reg.Counter("n_total", "h", telemetry.L("kind", kind)).Inc()                                    // ok: fault kind enum
	reg.Counter("o_total", "h", telemetry.L("term", strconv.FormatUint(term, 10))).Inc()            // want "unbounded value"
}

// cacheLabels mirrors the answer-cache metrics: the lookup tier and
// result are tiny enums and the stale-served party is roster-bounded,
// but a rendered cache key (or any digest of one) is one series per
// distinct query and must never become a label.
func cacheLabels(reg *telemetry.Registry, tier, result, party string, key [16]byte) {
	reg.Counter("p_total", "h", telemetry.L("tier", tier), telemetry.L("result", result)).Inc() // ok: {query,task} x {hit,miss}
	reg.Counter("q_total", "h", telemetry.L("party", party)).Inc()                              // ok: roster-bounded
	reg.Counter("r_total", "h", telemetry.L("key", fmt.Sprintf("%x", key))).Inc()               // want "unbounded value"
}

// traceLabels draws the line between span attributes and metric labels
// for trace-scoped identifiers: a trace or request ID costs one attr on
// one span (bounded by the trace ring), but as a metric label it is one
// series per query — the canonical cardinality explosion.
func traceLabels(reg *telemetry.Registry, traceID, requestID string) {
	_ = telemetry.AStr("trace", traceID)                                           // ok: span attr, not a metric label
	_ = telemetry.AStr("request", requestID)                                       // ok: span attr, not a metric label
	reg.Counter("s_total", "h", telemetry.L("trace", traceID)).Inc()               // want "unbounded value"
	reg.Counter("t_total", "h", telemetry.L("request", requestID)).Inc()           // want "unbounded value"
	reg.Counter("u_total", "h", telemetry.L("transport", "http")).Inc()            // ok: tiny transport enum
	reg.Counter("v_total", "h", telemetry.L("tier", "query")).Inc()                // ok: cache tier enum
	reg.Counter("w_total", "h", telemetry.L("outcome", "budget_refused")).Inc()    // ok: audit outcome enum
	reg.Counter("x_total", "h", telemetry.L("span", telemetry.NewTraceID())).Inc() // want "unbounded value"
}

func allowedLabel(reg *telemetry.Registry, docID int) {
	//csfltr:allow telemetrylabel -- fixture: suppression must silence the finding below
	reg.Counter("j_total", "h", telemetry.L("doc", strconv.Itoa(docID))).Inc()
}

// transportLabels mirrors the csfltr_transport_bytes_total family: the
// codec and api labels are tiny enums ({raw,wire} and a fixed API set),
// but a rendered wire frame — or any per-payload digest of one — is one
// series per message and must stay out of labels.
func transportLabels(reg *telemetry.Registry, codec, api string, frame []byte) {
	reg.Counter("y_total", "h", telemetry.L("codec", codec), telemetry.L("api", api)).Inc() // ok: {raw,wire} x fixed API set
	reg.Counter("z_total", "h", telemetry.L("frame", fmt.Sprintf("%x", frame))).Inc()       // want "unbounded value"
}

// secaggLabels mirrors the secure-aggregation metrics: the stage label
// is a three-value enum (mask/aggregate/recover), but a round number or
// a dropped-party seed rendered into a label mints one series per round
// and must stay out.
func secaggLabels(reg *telemetry.Registry, round uint64, seed [32]byte) {
	stages := [...]string{"mask", "aggregate", "recover"}
	for _, s := range stages {
		reg.Counter("ag_total", "h", telemetry.L("stage", s)).Inc() // ok: fixed stage enum
	}
	reg.Counter("ah_total", "h", telemetry.L("round", fmt.Sprintf("r%d", round))).Inc() // want "unbounded value"
	reg.Counter("ai_total", "h", telemetry.L("seed", fmt.Sprintf("%x", seed))).Inc()    // want "unbounded value"
}

// shardLabels mirrors the sharded party backends' label scheme
// (internal/shard/labels.go): shard and replica label values come from
// clamped fixed tables, and the per-replica breaker label concatenates
// two table entries — every value is drawn from a finite set fixed at
// compile time. Formatting the raw indices instead mints one series per
// index value and is flagged.
func shardLabels(reg *telemetry.Registry, si, ri int) {
	shards := [...]string{"s0", "s1", "s2", "s3", "overflow"}
	replicas := [...]string{"r0", "r1", "overflow"}
	if si < 0 || si >= len(shards) {
		si = len(shards) - 1
	}
	if ri < 0 || ri >= len(replicas) {
		ri = len(replicas) - 1
	}
	reg.Counter("aa_total", "h", telemetry.L("shard", shards[si])).Inc()                      // ok: clamped table lookup
	reg.Counter("ab_total", "h", telemetry.L("replica", replicas[ri])).Inc()                  // ok: clamped table lookup
	reg.Gauge("ac_state", "h", telemetry.L("shard", shards[si]+"/"+replicas[ri])).Set(1)      // ok: concatenation of table entries
	reg.Counter("ad_total", "h", telemetry.L("shard", fmt.Sprintf("s%d/r%d", si, ri))).Inc()  // want "unbounded value"
	reg.Counter("ae_total", "h", telemetry.L("replica", "r"+strconv.Itoa(ri%2))).Inc()        // ok: two-value modulus
	reg.Counter("af_total", "h", telemetry.L("shard", fmt.Sprintf("shard-%d", si*100))).Inc() // want "unbounded value"
}
