// Package taintfix exercises the interprocedural half of the
// privacyboundary analyzer: a private value laundered through helper
// parameters, returns, receivers, struct fields, and closures must
// still be flagged — with the full call chain — while the same flow
// through a sanitizer must stay silent.
package taintfix

import (
	"log"
	"strconv"
	"strings"

	"csfltr/internal/telemetry"
)

// RawTerm is a stand-in for a raw (unhashed) query term.
//
//csfltr:private
type RawTerm string

// EstimateReply is a wire struct by the *Reply naming convention.
type EstimateReply struct {
	Payload string
	Count   int
}

// wrap is a pure local transform: taint passes through its return.
func wrap(s string) string { return "q=" + strings.TrimSpace(s) }

// logVia / logImpl: two helper frames between the caller and the log
// sink. Neither parameter is a private type — only the flow makes the
// call a leak.
func logVia(s string) { logImpl(s) }

func logImpl(s string) { log.Printf("term=%s", s) }

// stashVia / stashImpl: two helper frames ending in a wire-struct
// field store.
func stashVia(reply *EstimateReply, s string) { stashImpl(reply, s) }

func stashImpl(reply *EstimateReply, s string) { reply.Payload = s }

// attrVia / attrImpl: two helper frames ending in a trace attribute.
func attrVia(s string) telemetry.Attr { return attrImpl(s) }

func attrImpl(s string) telemetry.Attr { return telemetry.AStr("term", s) }

// pseudoHash stands in for the keyed-hash sanitizer: its result is a
// derived value and may cross any boundary.
//
//csfltr:sanitizes
func pseudoHash(s string) string { return strconv.Itoa(len(s)) }

// emit launders the private term through a conversion and a string
// helper, then leaks it three ways. Every sink is ≥2 helper calls from
// this function and each diagnostic must carry the chain.
func emit(raw RawTerm, reply *EstimateReply) {
	s := wrap(string(raw))
	logVia(s)            // want "reaches log call log.Printf via taintfix.emit -> taintfix.logVia -> taintfix.logImpl"
	stashVia(reply, s)   // want "reaches wire struct field EstimateReply.Payload via taintfix.emit -> taintfix.stashVia -> taintfix.stashImpl"
	_ = attrVia(s)       // want "reaches trace attribute"
	reply.Payload = s    // want "passed to wire struct field EstimateReply.Payload"
	reply.Count = len(s) // ok: a derived count
}

// emitSanitized is the same flow with the sanitizer in the middle:
// nothing downstream of pseudoHash is private any more.
func emitSanitized(raw RawTerm, reply *EstimateReply) {
	h := pseudoHash(string(raw))
	logVia(h)          // ok: sanitized
	stashVia(reply, h) // ok: sanitized
	_ = attrVia(h)     // ok: sanitized
	reply.Payload = h  // ok: sanitized
}

// silo exercises the receiver and struct-field paths.
type silo struct {
	raw RawTerm
}

func (s *silo) leak() {
	logVia(string(s.raw)) // want "reaches log call log.Printf via silo.leak -> taintfix.logVia -> taintfix.logImpl"
}

// carrier exercises first-level field sensitivity: taint lands on the
// field that was assigned, not on its siblings.
type carrier struct {
	term string
	name string
}

func fieldFlow(raw RawTerm) {
	var c carrier
	c.term = string(raw)
	c.name = "silo-a"
	logVia(c.term) // want "reaches log call"
	logVia(c.name) // ok: sibling field never carried taint
}

// closureLeak exercises closures sharing the enclosing environment.
func closureLeak(raw RawTerm) {
	f := func() {
		logVia(string(raw)) // want "reaches log call"
	}
	f()
}

// allowedAtSink shows a justified suppression at the laundering call
// site silencing the finding.
func allowedAtSink(raw RawTerm) {
	//csfltr:allow privacyboundary -- fixture: term is re-hashed downstream of this debug helper
	logVia(string(raw))
}
