// Package uncheckedfix exercises the uncheckederr analyzer: dropped
// error results versus checked, explicitly discarded, and exempt calls.
package uncheckedfix

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
)

func dropped(w io.Writer, f *os.File) {
	fmt.Fprintf(w, "hello") // want "error result of fmt.Fprintf is dropped"
	f.Close()               // want "Close is dropped"
	f.Sync()                // want "Sync is dropped"
	go f.Sync()             // want "Sync is dropped"
}

func checked(w io.Writer, f *os.File) error {
	if _, err := fmt.Fprintf(w, "hello"); err != nil { // ok: checked
		return err
	}
	defer f.Close() // ok: deferred Close is idiomatic on read paths
	var b bytes.Buffer
	fmt.Fprintf(&b, "x") // ok: in-memory buffer cannot fail
	b.WriteString("y")   // ok: bytes.Buffer never errors
	h := sha256.New()
	h.Write([]byte("z"))            // ok: hash.Hash documents no errors
	fmt.Println("done")             // ok: stdout chatter
	fmt.Fprintln(os.Stderr, "note") // ok: process stderr
	_ = f.Sync()                    // ok: explicit, reviewable discard
	return nil
}

func allowedDrop(f *os.File) {
	//csfltr:allow uncheckederr -- fixture: suppression must silence the finding below
	f.Sync()
}
