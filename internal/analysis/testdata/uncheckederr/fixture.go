// Package uncheckedfix exercises the uncheckederr analyzer: dropped
// error results versus checked, explicitly discarded, and exempt calls.
package uncheckedfix

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func dropped(w io.Writer, f *os.File) {
	fmt.Fprintf(w, "hello") // want "error result of fmt.Fprintf is dropped"
	f.Close()               // want "Close is dropped"
	f.Sync()                // want "Sync is dropped"
	go f.Sync()             // want "Sync is dropped"
}

func checked(w io.Writer, f *os.File) error {
	if _, err := fmt.Fprintf(w, "hello"); err != nil { // ok: checked
		return err
	}
	defer f.Close() // ok: deferred Close is idiomatic on read paths
	var b bytes.Buffer
	fmt.Fprintf(&b, "x") // ok: in-memory buffer cannot fail
	b.WriteString("y")   // ok: bytes.Buffer never errors
	h := sha256.New()
	h.Write([]byte("z"))            // ok: hash.Hash documents no errors
	fmt.Println("done")             // ok: stdout chatter
	fmt.Fprintln(os.Stderr, "note") // ok: process stderr
	_ = f.Sync()                    // ok: explicit, reviewable discard
	return nil
}

func allowedDrop(f *os.File) {
	//csfltr:allow uncheckederr -- fixture: suppression must silence the finding below
	f.Sync()
}

// writePath: the deferred Close error is the final flush of bytes this
// function wrote — dropping it hides a short write.
func writePath(f *os.File, src io.Reader) error {
	defer f.Close() // want "dropped on a write path"
	if _, err := f.Write([]byte("header")); err != nil {
		return err
	}
	_, err := io.Copy(f, src)
	return err
}

// writePathViaEncoder writes through a wrapper around the file; the
// handle is still a write path.
func writePathViaEncoder(f *os.File, v any) error {
	defer f.Close() // want "dropped on a write path"
	return json.NewEncoder(f).Encode(v)
}

// writePathHandled returns the Close error instead of deferring it
// away: the sound shape for a write path.
func writePathHandled(f *os.File) error {
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close() // ok: Close error propagated
}

// readPathDefer keeps the idiomatic exemption: nothing written through
// the handle, the deferred Close error is meaningless.
func readPathDefer(f *os.File) ([]byte, error) {
	defer f.Close() // ok: read path
	return io.ReadAll(f)
}
