// Package metafix deliberately desynchronizes its want comments from
// the analyzer output so TestFixtureHarness can prove the fixture
// harness fails both ways: an unexpected diagnostic (the mapiter
// finding below carries no want) and an unmatched want (the clean loop
// claims one). It is consumed by TestFixtureHarness only — adding it to
// fixtureCases would rightly fail.
package metafix

import "fmt"

func emit(m map[string]int) {
	for k := range m {
		fmt.Println(k) // deliberately missing its want comment
	}
}

func clean(xs []int) {
	for _, x := range xs {
		_ = x // want "this expectation deliberately matches nothing"
	}
}
