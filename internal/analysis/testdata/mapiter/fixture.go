// Package mapiterfix exercises the mapiter analyzer: range-over-map
// loops with order-sensitive writes versus the collect-and-sort idiom.
package mapiterfix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func leakWriter(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "nondeterministic order"
	}
}

func leakBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "nondeterministic order"
	}
	return b.String()
}

func leakNested(w io.Writer, m map[string][]int) {
	for k, vs := range m {
		for _, v := range vs {
			fmt.Fprintf(w, "%s=%d\n", k, v) // want "nondeterministic order"
		}
	}
}

func sorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: collect, then sort below
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k]) // ok: slice iteration is ordered
	}
}

func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // ok: commutative fold, no ordered sink
	}
	return total
}

func allowedSink(w io.Writer, m map[string]int) {
	for k := range m {
		//csfltr:allow mapiter -- fixture: suppression must silence the finding below
		fmt.Fprintln(w, k)
	}
}
