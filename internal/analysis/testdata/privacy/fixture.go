// Package privacyfix exercises the privacyboundary analyzer: marked
// types flowing into wire structs, marshal paths, and format calls.
package privacyfix

import (
	"encoding/json"
	"fmt"

	"csfltr/internal/telemetry"
	"csfltr/internal/wire"
)

// TermVector is a stand-in for the raw term-count vector.
//
//csfltr:private
type TermVector map[uint64]int

// PrivateKey is a stand-in DH private key.
//
//csfltr:private
type PrivateKey struct{ X int }

// SketchPayload carries only derived values and may cross the wire.
type SketchPayload struct {
	Cols []uint32 `json:"cols"`
}

// LeakyArgs is a wire struct (by the *Args naming convention) carrying
// raw counts.
type LeakyArgs struct {
	Counts TermVector // want "wire struct LeakyArgs carries silo-private data"
}

// LeakyMessage is a wire struct (by json tags) embedding a private key.
type LeakyMessage struct {
	Key  *PrivateKey `json:"key"` // want "wire struct LeakyMessage carries silo-private data"
	Name string      `json:"name"`
}

// CleanArgs carries derived values only: no diagnostic.
type CleanArgs struct {
	Payload SketchPayload
}

// Holder embeds a private type one structural level down.
type Holder struct{ tv TermVector }

func sinks(tv TermVector, pk *PrivateKey, h Holder, p SketchPayload) {
	fmt.Println(tv)         // want "passed to format call"
	fmt.Printf("%v\n", pk)  // want "passed to format call"
	fmt.Print(h)            // want "passed to format call"
	_, _ = json.Marshal(tv) // want "passed to marshal call"
	fmt.Println(len(tv))    // ok: an int, not the vector itself
	_, _ = json.Marshal(p)  // ok: derived payload
	fmt.Println(pk.X == 0)  // ok: a bool
	_, _ = json.Marshal(&p) // ok: pointer to derived payload
}

func allowed(tv TermVector) {
	//csfltr:allow privacyboundary -- fixture: suppression must silence the finding below
	fmt.Println(tv)
}

// LeakyCacheEntry is a wire struct (by json tags) keying a cache on the
// raw term vector — the shape the answer cache must never take.
type LeakyCacheEntry struct {
	Terms TermVector `json:"terms"` // want "wire struct LeakyCacheEntry carries silo-private data"
	Docs  []uint64   `json:"docs"`
}

// CacheEntryMessage is the sound shape: entries are addressed by a
// fixed-width keyed hash and carry derived values only.
type CacheEntryMessage struct {
	Key        [16]byte `json:"key"`
	Generation uint64   `json:"generation"`
	Docs       []uint64 `json:"docs"`
}

func cacheSinks(tv TermVector, m CacheEntryMessage) {
	_, _ = json.Marshal(m)     // ok: hashed key + derived docs
	fmt.Println(m.Key)         // ok: the hash is not private
	_, _ = json.Marshal(tv)    // want "passed to marshal call"
	fmt.Printf("key=%x\n", tv) // want "passed to format call"
}

// RawQuery is a stand-in for a raw (unhashed) query term string.
//
//csfltr:private
type RawQuery string

// traceAttrs exercises the flight-recorder boundary: span attributes are
// exported over /v1/trace and in Chrome dumps, so only keyed hashes and
// derived values may become attribute values — never a private value,
// whether passed directly or laundered through fmt.
func traceAttrs(tv TermVector, rq RawQuery, termHash string) {
	_ = telemetry.AStr("term", termHash)           // ok: keyed hash
	_ = telemetry.AInt("terms", int64(len(tv)))    // ok: a count, not the vector
	_ = telemetry.AStr("query", string(rq))        // want "passed to trace attribute"
	_ = telemetry.AStr("terms", fmt.Sprint(tv))    // want "passed to format call"
	_ = telemetry.AStr("q", fmt.Sprintf("%s", rq)) // want "passed to format call"
}

// LeakyAuditRow is an audit-ledger row shape (wire struct by json tags)
// carrying the raw query — the shape AuditParty/AuditRecord must never
// take.
type LeakyAuditRow struct {
	Query   RawQuery `json:"query"` // want "wire struct LeakyAuditRow carries silo-private data"
	Epsilon float64  `json:"epsilon"`
}

// CleanAuditRow is the sound audit row: keyed term hash plus derived
// accounting values only.
type CleanAuditRow struct {
	Term    string  `json:"term"` // keyed hash, not the raw term
	Queries int     `json:"queries"`
	Epsilon float64 `json:"epsilon"`
}

// RawRows is a stand-in for an unsketched per-document count matrix.
//
//csfltr:private
type RawRows [][]int64

// RawFrame is a stand-in for a serialized private blob.
//
//csfltr:private
type RawFrame []byte

// wireSinks exercises the binary codec boundary: the wire package's
// encoders put their arguments on the federation wire, so only sketch
// rows, obfuscated columns and DP-noised values may reach them — never
// a marked raw value.
func wireSinks(raw RawRows, frame RawFrame, sketched [][]int64, payload []byte) {
	_ = wire.AppendRowMatrix(nil, raw)            // want "passed to wire encode"
	_ = wire.Pack(nil, frame)                     // want "passed to wire encode"
	_ = wire.AppendRowMatrix(nil, sketched)       // ok: sketched rows are released material
	_ = wire.Pack(nil, payload)                   // ok: derived payload
	_ = wire.AppendUvarint(nil, uint64(len(raw))) // ok: a count, not the matrix
}

// RawModelUpdate is a stand-in for a party's plaintext model update —
// the vector secure training must never put on the wire unmasked.
//
//csfltr:private
type RawModelUpdate []float64

// maskUpdate stands in for the secagg quantize-and-mask pipeline: its
// result is ring-masked material that is uniform to the server, so it
// may cross the wire.
//
//csfltr:sanitizes
func maskUpdate(u RawModelUpdate) []uint64 {
	out := make([]uint64, len(u))
	for i, v := range u {
		out[i] = uint64(int64(v)) ^ 0x9e3779b97f4a7c15
	}
	return out
}

// LeakyUpdateMsg is a wire struct carrying the plaintext update — the
// shape a secure-aggregation submission must never take.
type LeakyUpdateMsg struct {
	Update RawModelUpdate `json:"update"` // want "wire struct LeakyUpdateMsg carries silo-private data"
	Round  uint64         `json:"round"`
}

// MaskedUpdateMsg is the sound submission shape: masked ring words only.
type MaskedUpdateMsg struct {
	Vec   []uint64 `json:"vec"`
	Round uint64   `json:"round"`
}

func secaggSinks(raw RawModelUpdate) {
	_, _ = json.Marshal(raw)                                    // want "passed to marshal call"
	_ = wire.AppendModel(nil, raw, 0)                           // want "passed to wire encode"
	masked := maskUpdate(raw)                                   // sanitizer stops the taint
	_, _ = json.Marshal(MaskedUpdateMsg{Vec: masked, Round: 1}) // ok: masked material
	_ = wire.AppendUvarint(nil, uint64(len(raw)))               // ok: a count, not the update
}
