// Package lockcopyfix exercises the lockcopy analyzer: mutex-containing
// values passed, returned, or copied by value versus the sound pointer
// shapes.
package lockcopyfix

import "sync"

// Registry is the shape every long-lived csfltr struct takes: a mutex
// guarding a map.
type Registry struct {
	mu    sync.Mutex
	peers map[string]int
}

func byValue(r Registry) int { // want "parameter passes a sync.Mutex by value"
	return len(r.peers)
}

func byPointer(r *Registry) int { // ok: shared lock
	return len(r.peers)
}

func returnsValue() Registry { // want "result returns a sync.Mutex by value"
	return Registry{peers: map[string]int{}}
}

func returnsPointer() *Registry { // ok
	return &Registry{peers: map[string]int{}}
}

func assignCopy(r *Registry) {
	snapshot := *r // want "assignment copies a sync.Mutex by value"
	snapshot.mu.Lock()
	snapshot.mu.Unlock()
}

func freshValue() {
	var r Registry // ok: a fresh zero value, not a copy
	r.mu.Lock()
	r.mu.Unlock()
}

func rangeCopy(rs []Registry) int {
	n := 0
	for _, r := range rs { // want "range value copies a sync.Mutex-containing element"
		n += len(r.peers)
	}
	for i := range rs { // ok: by index
		n += len(rs[i].peers)
	}
	return n
}

func waitByValue(wg sync.WaitGroup) { // want "parameter passes a sync.WaitGroup by value"
	wg.Wait()
}

func waitByPointer(wg *sync.WaitGroup) { // ok
	wg.Wait()
}

// sliceOfPointers shares the locks: no copies anywhere.
func sliceOfPointers(rs []*Registry) int { // ok: pointers share the lock
	n := 0
	for _, r := range rs {
		n += len(r.peers)
	}
	return n
}
