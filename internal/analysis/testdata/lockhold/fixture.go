// Package lockholdfix exercises the lockhold analyzer: blocking
// operations (channel sends, HTTP/RPC round-trips, resilience
// attempts) inside mutex critical sections, versus releasing first.
package lockholdfix

import (
	"net/http"
	"net/rpc"
	"sync"

	"csfltr/internal/resilience"
)

type pool struct {
	mu  sync.Mutex
	out chan int
}

func (p *pool) sendWhileHeld(v int) {
	p.mu.Lock()
	p.out <- v // want "channel send while holding p.mu"
	p.mu.Unlock()
}

func (p *pool) sendAfterUnlock(v int) {
	p.mu.Lock()
	v++
	p.mu.Unlock()
	p.out <- v // ok: released first
}

func (p *pool) deferredHold(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out <- v // want "channel send while holding p.mu"
}

func (p *pool) httpWhileHeld(url string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := http.Get(url) // want "net/http round-trip"
	return err
}

func (p *pool) rpcWhileHeld(c *rpc.Client) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return c.Call("Peer.Estimate", 1, nil) // want "net/rpc Call while holding"
}

func (p *pool) resilienceWhileHeld() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, _, err := resilience.Call(resilience.Policy{}, 1, func() (int, error) { // want "resilience.Call attempt while holding"
		return 0, nil
	})
	return err
}

func (p *pool) branchUnlock(fast bool, v int) {
	p.mu.Lock()
	if fast {
		p.mu.Unlock()
		p.out <- v // ok: this branch released first
		return
	}
	p.mu.Unlock()
}

func (p *pool) goroutineBody(v int) {
	p.mu.Lock()
	go func() {
		p.out <- v // ok: runs on its own stack, after the critical section
	}()
	p.mu.Unlock()
}

func (p *pool) selectWhileHeld(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.out <- v: // want "channel send while holding p.mu"
	default:
	}
}

type registry struct {
	mu    sync.RWMutex
	peers map[string]*rpc.Client
}

func (r *registry) readThenCall(name string) error {
	r.mu.RLock()
	c := r.peers[name]
	r.mu.RUnlock()
	return c.Call("Peer.Ping", 1, nil) // ok: released before the round-trip
}

type shard struct {
	sync.Mutex
	ch chan int
}

func (s *shard) embeddedHeld(v int) {
	s.Lock()
	s.ch <- v // want "channel send while holding s"
	s.Unlock()
}
