// Package allowauditfix exercises the mandatory-reason suppression
// contract: a //csfltr:allow without `-- reason` must not suppress the
// underlying finding and must itself be reported, while a justified
// allow silences its line exactly as before.
package allowauditfix

import "fmt"

func emitNoReason(m map[string]int) {
	for k := range m {
		/* want "suppression of mapiter has no justification" */ //csfltr:allow mapiter
		fmt.Println(k)                                           // want "map iteration order is random"
	}
}

func emitWithReason(m map[string]int) {
	for k := range m {
		//csfltr:allow mapiter -- fixture: debug dump, output order irrelevant
		fmt.Println(k) // ok: justified suppression
	}
}
