package federation

import (
	"math/rand"
	"reflect"
	"testing"

	"csfltr/internal/textkit"
)

// shardTestDocs builds a deterministic per-party corpus whose document
// ids spread across doc-range blocks (ids stride past the default
// shard block size), so every shard of a sharded party actually holds
// documents.
func shardTestDocs(n int, rngSeed int64) []*textkit.Document {
	rng := rand.New(rand.NewSource(rngSeed))
	docs := make([]*textkit.Document, n)
	for i := range docs {
		body := make([]textkit.TermID, 0, 14)
		for t := 0; t < 14; t++ {
			body = append(body, textkit.TermID(rng.Intn(30)))
		}
		id := i*64 + rng.Intn(40)
		docs[i] = textkit.NewDocument(id, -1, []textkit.TermID{textkit.TermID(100 + i)}, body)
	}
	return docs
}

// shardTestFed builds an A/B/C federation at the given shard/replica
// fan with identical corpora, seeds and randomness at every fan.
func shardTestFed(t *testing.T, shards, replicas int) *Federation {
	t.Helper()
	p := testParams()
	p.Shards = shards
	p.Replicas = replicas
	fed, err := NewDeterministic([]string{"A", "B", "C"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	c, _ := fed.Party("C")
	if err := b.IngestAll(shardTestDocs(24, 501)); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestAll(shardTestDocs(16, 502)); err != nil {
		t.Fatal(err)
	}
	return fed
}

// shardTestTerms is the query mix every fan is compared under.
var shardTestTerms = [][]uint64{
	{3, 7},
	{1, 4, 9},
	{12, 3},
	{20},
	{5, 5, 8},
}

// TestShardedSearchBitIdentical is the federation-level determinism
// contract of the sharded backends: at Epsilon=0, whole SearchResults —
// hits, merged cost, per-party reports — are bit-identical across
// 1, 2 and 4 shards (with and without replicas) and the legacy
// unsharded path, including after a document removal.
func TestShardedSearchBitIdentical(t *testing.T) {
	ref := shardTestFed(t, 0, 0) // legacy single-owner backends
	var want []*SearchResult
	for _, terms := range shardTestTerms {
		res, err := ref.Search("A", terms, 5)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	refB, _ := ref.Party("B")
	victim := refB.docRefs[5]
	if err := refB.RemoveDocument(victim); err != nil {
		t.Fatal(err)
	}
	wantAfter, err := ref.Search("A", shardTestTerms[1], 5)
	if err != nil {
		t.Fatal(err)
	}

	for _, fan := range []struct{ shards, replicas int }{
		{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2},
	} {
		fed := shardTestFed(t, fan.shards, fan.replicas)
		b, _ := fed.Party("B")
		if fan.shards > 1 || fan.replicas > 1 {
			if !b.Sharded() || b.Group(FieldBody) == nil || b.Owner(FieldBody) != nil {
				t.Fatalf("fan %+v: party backend not sharded", fan)
			}
		}
		for i, terms := range shardTestTerms {
			got, err := fed.Search("A", terms, 5)
			if err != nil {
				t.Fatalf("fan %+v terms %v: %v", fan, terms, err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("fan %+v terms %v: SearchResult differs from unsharded:\ngot  %+v\nwant %+v",
					fan, terms, got, want[i])
			}
		}
		if err := b.RemoveDocument(victim); err != nil {
			t.Fatalf("fan %+v: RemoveDocument: %v", fan, err)
		}
		got, err := fed.Search("A", shardTestTerms[1], 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantAfter) {
			t.Fatalf("fan %+v: post-removal SearchResult differs from unsharded", fan)
		}
	}
}

// TestShardedSearchReplicaChaos is the chaos acceptance test: with a
// replica killed mid-run at a fixed seed, every search still answers
// (availability 1.0), answers stay bit-identical to an untouched
// control federation, and the trace tree of a post-kill search records
// the failover — a failed "shard.attempt" on the dead replica followed
// by a successful attempt on its peer.
func TestShardedSearchReplicaChaos(t *testing.T) {
	fed := shardTestFed(t, 2, 2)
	control := shardTestFed(t, 2, 2)
	fed.Server.EnableTracing(TraceConfig{})

	mix := func(round int) []uint64 {
		// Distinct terms per round so the shard groups' raw caches miss
		// and every round exercises live replica calls.
		return []uint64{uint64(round % 25), uint64((round*7 + 3) % 25)}
	}
	served := 0
	const rounds = 12
	var postKillTrace string
	for round := 0; round < rounds; round++ {
		if round == 4 {
			b, _ := fed.Party("B")
			b.Group(FieldBody).KillReplica(0, 0)
		}
		res, traceID, err := fed.SearchTraced("A", mix(round), 5)
		if err != nil {
			t.Fatalf("round %d: search failed after replica kill: %v", round, err)
		}
		want, err := control.Search("A", mix(round), 5)
		if err != nil {
			t.Fatal(err)
		}
		// The traced run carries per-party trace state the control does
		// not; compare the released surfaces.
		if !reflect.DeepEqual(res.Hits, want.Hits) || res.Cost != want.Cost {
			t.Fatalf("round %d: replica kill changed the answer", round)
		}
		served++
		if round == 4 {
			postKillTrace = traceID
		}
	}
	if served != rounds {
		t.Fatalf("availability %d/%d, want %d/%d", served, rounds, rounds, rounds)
	}

	spans, ok := fed.Server.TraceTree(postKillTrace)
	if !ok {
		t.Fatal("no trace tree for the post-kill search")
	}
	var failed, recovered bool
	for _, sp := range spans {
		if sp.Name != "shard.attempt" {
			continue
		}
		switch sp.Attr("outcome") {
		case "failed":
			failed = true
		case "ok":
			recovered = true
		}
	}
	if !failed || !recovered {
		t.Fatalf("post-kill trace missing failover attempts (failed=%v ok=%v)", failed, recovered)
	}
}

// TestShardedPartyMetrics checks the per-shard telemetry surface: a
// sharded federation records shard-labeled transport bytes and replica
// breaker gauges under the bounded label tables.
func TestShardedPartyMetrics(t *testing.T) {
	fed := shardTestFed(t, 2, 2)
	if _, err := fed.Search("A", []uint64{3, 7}, 5); err != nil {
		t.Fatal(err)
	}
	snap := fed.Server.Metrics().Snapshot()
	var shardBytes, breakers int
	for _, m := range snap.Metrics {
		for _, s := range m.Series {
			if s.Labels["shard"] == "" {
				continue
			}
			switch m.Name {
			case MetricTransportBytes:
				if s.Value > 0 {
					shardBytes++
				}
			case MetricBreakerState:
				breakers++
			}
		}
	}
	if shardBytes == 0 {
		t.Fatal("no shard-labeled transport byte series recorded")
	}
	// 2 shards x 2 replicas x 2 fields x 3 parties (the querier's own
	// backends register too) = 24 gauges.
	if breakers != 24 {
		t.Fatalf("replica breaker gauges = %d, want 24", breakers)
	}
}
