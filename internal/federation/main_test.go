package federation

import (
	"testing"

	"csfltr/internal/leakcheck"
)

// TestMain fails the package if the fan-out pool, cache backfill, or
// hedged dispatch leaks a goroutine past the end of the test run.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
