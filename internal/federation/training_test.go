package federation

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"csfltr/internal/ltr"
)

// trainData builds a linearly separable per-party dataset with known
// weights.
func trainData(n int, seed int64) []ltr.Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ltr.Instance, n)
	for i := range out {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 1.5*x[0] - 2*x[1] + 0.3 + 0.05*rng.NormFloat64()
		out[i] = ltr.Instance{Features: x, Label: y, QueryKey: "q"}
	}
	return out
}

func TestFederationTrainRoundRobin(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{
		"A": trainData(400, 1),
		"B": trainData(400, 2),
		"C": trainData(400, 3),
	}
	cfg := ltr.DefaultSGDConfig()
	fed.Server.ResetTraffic()
	model, stats, err := fed.TrainRoundRobin(2, data, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.W[0]-1.5) > 0.15 || math.Abs(model.W[1]+2) > 0.15 {
		t.Fatalf("federated model did not converge: %+v", model)
	}
	// Accounting: 30 rounds x 3 parties x 2 hops.
	if stats.ModelHops != 180 {
		t.Fatalf("ModelHops = %d, want 180", stats.ModelHops)
	}
	wantBytes := int64(180) * 8 * 3 // dim 2 + bias
	if stats.BytesRelayed != wantBytes {
		t.Fatalf("BytesRelayed = %d, want %d", stats.BytesRelayed, wantBytes)
	}
	tr := fed.Server.Traffic()
	if tr.Bytes != wantBytes || tr.Messages != 180 {
		t.Fatalf("server traffic %+v does not match training stats", tr)
	}
	if stats.Rounds != 30 {
		t.Fatalf("Rounds = %d", stats.Rounds)
	}
}

func TestFederationTrainSkipsEmptyParties(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{"A": trainData(300, 1)}
	model, stats, err := fed.TrainRoundRobin(2, data, 10, ltr.DefaultSGDConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || stats.ModelHops != 20 { // only party A moves the model
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFederationTrainErrors(t *testing.T) {
	fed, err := NewDeterministic([]string{"A"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.TrainRoundRobin(2, nil, 10, ltr.DefaultSGDConfig()); !errors.Is(err, ErrNoTrainingData) {
		t.Fatalf("empty data: %v", err)
	}
	bad := ltr.DefaultSGDConfig()
	bad.LearningRate = 0
	if _, _, err := fed.TrainRoundRobin(2, map[string][]ltr.Instance{"A": trainData(10, 1)}, 10, bad); err == nil {
		t.Fatal("bad SGD config should error")
	}
	if _, _, err := fed.TrainRoundRobin(2, map[string][]ltr.Instance{"A": trainData(10, 1)}, 0, ltr.DefaultSGDConfig()); err == nil {
		t.Fatal("zero rounds should error")
	}
}
