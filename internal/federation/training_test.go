package federation

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/ltr"
	"csfltr/internal/resilience"
)

// trainData builds a linearly separable per-party dataset with known
// weights.
func trainData(n int, seed int64) []ltr.Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ltr.Instance, n)
	for i := range out {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 1.5*x[0] - 2*x[1] + 0.3 + 0.05*rng.NormFloat64()
		out[i] = ltr.Instance{Features: x, Label: y, QueryKey: "q"}
	}
	return out
}

func TestFederationTrainRoundRobin(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{
		"A": trainData(400, 1),
		"B": trainData(400, 2),
		"C": trainData(400, 3),
	}
	cfg := ltr.DefaultSGDConfig()
	fed.Server.ResetTraffic()
	model, stats, err := fed.TrainRoundRobin(2, data, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.W[0]-1.5) > 0.15 || math.Abs(model.W[1]+2) > 0.15 {
		t.Fatalf("federated model did not converge: %+v", model)
	}
	// Accounting: 30 rounds x 3 parties x 2 hops.
	if stats.ModelHops != 180 {
		t.Fatalf("ModelHops = %d, want 180", stats.ModelHops)
	}
	// Reference column: the historical fixed-width estimate, 8 bytes per
	// weight plus the bias per hop. BytesRelayed now carries the framed
	// encoded sizes, which for a tiny dense float model run slightly
	// above the raw estimate (frame header + value-vector flags) but
	// must stay within a small constant of it per hop.
	legacyBytes := int64(180) * modelWireSize(2)
	if stats.BytesRelayed <= 0 {
		t.Fatal("BytesRelayed not accounted")
	}
	perHopOverhead := (stats.BytesRelayed - legacyBytes) / 180
	if perHopOverhead < 0 || perHopOverhead > 16 {
		t.Fatalf("BytesRelayed = %d (legacy reference %d): framing overhead %d bytes/hop out of range",
			stats.BytesRelayed, legacyBytes, perHopOverhead)
	}
	tr := fed.Server.Traffic()
	if tr.Bytes != stats.BytesRelayed || tr.Messages != 180 {
		t.Fatalf("server traffic %+v does not match training stats %+v", tr, stats)
	}
	// The transport family carries the same bytes under api="train".
	if got := fed.Server.TransportBytes(CodecRaw, "train"); got != stats.BytesRelayed {
		t.Fatalf("transport bytes %d != BytesRelayed %d", got, stats.BytesRelayed)
	}
	if stats.Rounds != 30 {
		t.Fatalf("Rounds = %d", stats.Rounds)
	}
	if stats.Retries != 0 {
		t.Fatalf("Retries = %d on a clean run", stats.Retries)
	}
}

// TestFederationTrainChaosRetries proves the training relay path goes
// through the chaos interceptor: with a seeded transient error rate the
// run still completes, retries are recorded in the stats and the retry
// counters, and injected faults are counted.
func TestFederationTrainChaosRetries(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(42)
	in.SetDefault(chaos.Profile{ErrorRate: 0.3})
	fed.Server.SetChaos(in)
	policy := resilience.DefaultPolicy()
	policy.MaxAttempts = 8
	policy = policy.WithSleep(func(time.Duration) {})
	fed.SetResiliencePolicy(policy)
	data := map[string][]ltr.Instance{
		"A": trainData(200, 1),
		"B": trainData(200, 2),
		"C": trainData(200, 3),
	}
	model, stats, err := fed.TrainRoundRobin(2, data, 20, ltr.DefaultSGDConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || stats.ModelHops != 120 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Retries == 0 {
		t.Fatal("30% error rate injected no retried hops")
	}
	// The same seeds give the same retry count: the whole path is
	// deterministic.
	fed2, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	in2 := chaos.New(42)
	in2.SetDefault(chaos.Profile{ErrorRate: 0.3})
	fed2.Server.SetChaos(in2)
	fed2.SetResiliencePolicy(policy)
	model2, stats2, err := fed2.TrainRoundRobin(2, data, 20, ltr.DefaultSGDConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Retries != stats.Retries {
		t.Fatalf("retries not deterministic: %d vs %d", stats2.Retries, stats.Retries)
	}
	if model2.B != model.B || model2.W[0] != model.W[0] {
		t.Fatal("chaos retries changed the learned model")
	}
}

// TestFederationTrainHopFailsPermanently aborts the run when a party is
// hard down and its breaker-guarded hop exhausts its retries.
func TestFederationTrainHopFailsPermanently(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(7)
	in.SetProfile("B", chaos.Profile{Down: true})
	fed.Server.SetChaos(in)
	data := map[string][]ltr.Instance{
		"A": trainData(50, 1),
		"B": trainData(50, 2),
	}
	_, _, err = fed.TrainRoundRobin(2, data, 5, ltr.DefaultSGDConfig())
	if err == nil {
		t.Fatal("training should fail when a party is down")
	}
	if !errors.Is(err, chaos.ErrInjected) && !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("unexpected failure: %v", err)
	}
}

func TestFederationTrainSkipsEmptyParties(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{"A": trainData(300, 1)}
	model, stats, err := fed.TrainRoundRobin(2, data, 10, ltr.DefaultSGDConfig())
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || stats.ModelHops != 20 { // only party A moves the model
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFederationTrainErrors(t *testing.T) {
	fed, err := NewDeterministic([]string{"A"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.TrainRoundRobin(2, nil, 10, ltr.DefaultSGDConfig()); !errors.Is(err, ErrNoTrainingData) {
		t.Fatalf("empty data: %v", err)
	}
	bad := ltr.DefaultSGDConfig()
	bad.LearningRate = 0
	if _, _, err := fed.TrainRoundRobin(2, map[string][]ltr.Instance{"A": trainData(10, 1)}, 10, bad); err == nil {
		t.Fatal("bad SGD config should error")
	}
	if _, _, err := fed.TrainRoundRobin(2, map[string][]ltr.Instance{"A": trainData(10, 1)}, 0, ltr.DefaultSGDConfig()); err == nil {
		t.Fatal("zero rounds should error")
	}
}
