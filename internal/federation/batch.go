package federation

import (
	"fmt"
	"math/rand"
	"sync"

	"csfltr/internal/core"
)

// TopKRequest names one reverse top-K query of a batch.
type TopKRequest struct {
	To    string // document-owner party
	Field Field
	Term  uint64
	K     int
}

// TopKResult pairs a request with its outcome.
type TopKResult struct {
	Request TopKRequest
	Docs    []core.DocCount
	Cost    core.Cost
	Err     error
}

// BatchReverseTopK runs many reverse top-K queries from one party
// concurrently with at most parallelism in-flight queries. Results are
// returned in request order; individual failures are reported per result
// rather than aborting the batch. Every query spends privacy budget with
// the querier's accountant exactly as the sequential path does; budget
// refusals surface as per-result errors.
//
// Each worker uses its own deterministically-seeded querier (obfuscation
// randomness), so a batch is reproducible for a fixed federation and
// request list regardless of scheduling.
func (f *Federation) BatchReverseTopK(from string, reqs []TopKRequest, parallelism int, useRTK bool) ([]TopKResult, error) {
	if parallelism <= 0 {
		parallelism = 1
	}
	src, err := f.Party(from)
	if err != nil {
		return nil, err
	}
	results := make([]TopKResult, len(reqs))
	for i, r := range reqs {
		results[i].Request = r
	}
	// Pre-resolve one querier per request (seeded by index) so results
	// do not depend on worker scheduling.
	queriers := make([]*core.Querier, len(reqs))
	for i := range reqs {
		q, err := core.NewQuerier(f.Params, f.HashSeed, rand.New(rand.NewSource(int64(i)*7919+1)))
		if err != nil {
			return nil, err
		}
		queriers[i] = q
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := &results[i]
			if r.Request.To == from {
				r.Err = ErrSelfQuery
				return
			}
			owner, err := f.Server.OwnerFor(r.Request.To, r.Request.Field)
			if err != nil {
				r.Err = err
				return
			}
			if err := src.account.Spend(r.Request.To, f.Params.Epsilon); err != nil {
				r.Err = err
				return
			}
			if useRTK {
				r.Docs, r.Cost, r.Err = core.RTKReverseTopK(queriers[i], owner, r.Request.Term, r.Request.K)
			} else {
				r.Docs, r.Cost, r.Err = core.NaiveReverseTopK(queriers[i], owner, r.Request.Term, r.Request.K)
			}
		}(i)
	}
	wg.Wait()
	return results, nil
}

// BatchErrors collects the non-nil errors of a batch, labelled by
// request.
func BatchErrors(results []TopKResult) []error {
	var out []error
	for _, r := range results {
		if r.Err != nil {
			out = append(out, fmt.Errorf("federation: %s/%v term %d: %w",
				r.Request.To, r.Request.Field, r.Request.Term, r.Err))
		}
	}
	return out
}
