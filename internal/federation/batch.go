package federation

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/qcache"
	"csfltr/internal/resilience"
	"csfltr/internal/telemetry"
)

// runPool executes fn(0..n-1) on at most `workers` goroutines, returning
// when every task has finished. Tasks are claimed from an atomic counter
// in index order, so workers stay busy without a scheduler goroutine or
// per-task channel traffic. The pool reports its pressure into the
// metrics' fanout gauges (in-flight tasks and queue depth); m may be nil
// in tests. This is the single worker-pool implementation behind every
// parallel federation operation (federated search fan-out, batch reverse
// top-K).
func runPool(workers, n int, m *serverMetrics, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if m != nil {
		m.poolQueue.Add(float64(n))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if m != nil {
					m.poolQueue.Dec()
					m.poolInFlight.Inc()
				}
				fn(i)
				if m != nil {
					m.poolInFlight.Dec()
				}
			}
		}()
	}
	wg.Wait()
}

// TopKRequest names one reverse top-K query of a batch.
type TopKRequest struct {
	To    string // document-owner party
	Field Field
	Term  uint64
	K     int
}

// TopKResult pairs a request with its outcome.
type TopKResult struct {
	Request TopKRequest
	Docs    []core.DocCount
	Cost    core.Cost
	Err     error
}

// BatchReverseTopK runs many reverse top-K queries from one party
// concurrently with at most parallelism in-flight queries. Results are
// returned in request order; individual failures are reported per result
// rather than aborting the batch. Every query spends privacy budget with
// the querier's accountant exactly as the sequential path does; budget
// refusals surface as per-result errors.
//
// Each worker uses its own deterministically-seeded querier (obfuscation
// randomness), so a batch is reproducible for a fixed federation and
// request list regardless of scheduling.
//
// Queries run under the federation's resilience policy (per-attempt
// deadline, bounded retries with deterministic backoff). When
// Params.MinParties > 0, a request to a party whose circuit breaker is
// open fails immediately with resilience.ErrBreakerOpen — before any
// privacy budget is spent — and attempted requests feed the breaker in
// request order after the pool drains, so breaker evolution does not
// depend on scheduling.
//
// With Params.CacheBytes > 0, RTK requests to local parties consult the
// federated answer cache first: a hit replays the previously released
// noisy answer without spending budget (recorded as a replay with the
// accountant). Note the reproducibility caveat: which duplicate of a
// repeated request populates the cache depends on worker scheduling, so
// enable caching only where replays are acceptable.
func (f *Federation) BatchReverseTopK(from string, reqs []TopKRequest, parallelism int, useRTK bool) ([]TopKResult, error) {
	if parallelism <= 0 {
		parallelism = 1
	}
	src, err := f.Party(from)
	if err != nil {
		return nil, err
	}
	m := f.Server.metrics()
	degraded := f.Params.MinParties > 0
	policy := f.ResiliencePolicy()
	results := make([]TopKResult, len(reqs))
	attempted := make([]bool, len(reqs))
	cached := make([]bool, len(reqs))
	retried := make([]int, len(reqs))
	for i, r := range reqs {
		results[i].Request = r
	}
	root := m.reg.StartRootSpan("batch", nil)
	if root.Context().Valid() {
		root.AddAttr(
			telemetry.AStr("querier", from),
			telemetry.AInt("requests", int64(len(reqs))))
	}
	start := time.Now()
	// Pre-resolve one querier per request (seeded by index) so results
	// do not depend on worker scheduling, and settle breaker admission
	// up front in request order.
	queriers := make([]*core.Querier, len(reqs))
	for i := range reqs {
		if degraded && reqs[i].To != from && !f.breakerFor(reqs[i].To).Allow() {
			results[i].Err = resilience.ErrBreakerOpen
			continue
		}
		q, err := core.NewQuerier(f.Params, f.HashSeed, rand.New(rand.NewSource(int64(i)*7919+1)))
		if err != nil {
			root.End()
			return nil, err
		}
		queriers[i] = q
	}
	// With the answer cache enabled, each request first consults the
	// batch task tier; a hit replays the released noisy answer at zero
	// budget spend. Keys bind the answering owner's ingest generation,
	// which is only observable for local parties — requests to remote
	// (RPC/HTTP-registered) parties always take the live path.
	c := f.cache()
	runPool(parallelism, len(reqs), m, func(i int) {
		r := &results[i]
		if r.Err != nil { // breaker refused above
			return
		}
		if r.Request.To == from {
			r.Err = ErrSelfQuery
			return
		}
		sp := m.reg.StartChildSpan("batch.rtk_query", root.Context(), nil)
		traced := sp.Context().Valid()
		if traced {
			sp.AddAttr(
				telemetry.AStr("party", r.Request.To),
				telemetry.AStr("term", f.TermHash(r.Request.Term)))
		}
		defer func() {
			if traced {
				if r.Err != nil {
					markFault(sp, r.Err)
					sp.AddAttr(telemetry.AStr("error", r.Err.Error()))
				}
				sp.AddAttr(telemetry.ABool("cached", cached[i]))
			}
			sp.End()
		}()
		var full, base qcache.Key
		cacheable := false
		if c != nil && useRTK {
			if dst, err := f.Party(r.Request.To); err == nil {
				gens := dst.generations(r.Request.Field)
				full, base = f.batchKeys(from, r.Request, gens)
				cacheable = true
				if v, ok := c.Get(full, base); ok {
					m.cacheFor(cacheTierTask, cacheHit).Inc()
					hit := v.(cachedTask)
					r.Docs, r.Cost = hit.docs, hit.cost
					src.account.Replayed(r.Request.To)
					cached[i] = true
					return
				}
				m.cacheFor(cacheTierTask, cacheMiss).Inc()
			}
		}
		owner, err := f.Server.OwnerFor(r.Request.To, r.Request.Field)
		if err != nil {
			r.Err = err
			return
		}
		if traced {
			if tc, ok := owner.(traceCarrier); ok {
				owner = tc.WithTrace(sp.Context())
			}
		}
		if err := src.account.Spend(r.Request.To, f.Params.Epsilon); err != nil {
			r.Err = err
			return
		}
		attempted[i] = true
		out, attempts, err := resilience.Call(policy, f.callSeed(r.Request.To, r.Request.Term),
			func() (rtkOut, error) {
				var o rtkOut
				var err error
				if useRTK {
					o.docs, o.cost, err = core.RTKReverseTopK(queriers[i], owner, r.Request.Term, r.Request.K)
				} else {
					o.docs, o.cost, err = core.NaiveReverseTopK(queriers[i], owner, r.Request.Term, r.Request.K)
				}
				return o, err
			})
		r.Docs, r.Cost, r.Err = out.docs, out.cost, err
		retried[i] = attempts - 1
		if traced {
			sp.AddAttr(telemetry.AInt("attempts", int64(attempts)))
		}
		if attempts > 1 {
			m.retriesFor(r.Request.To).Add(int64(attempts - 1))
		}
		if cacheable && r.Err == nil {
			c.Put(full, base, cachedTaskSize(r.Docs), cachedTask{docs: r.Docs, cost: r.Cost})
		}
	})
	if degraded {
		for i := range results {
			if attempted[i] {
				f.breakerFor(results[i].Request.To).Record(results[i].Err == nil)
			}
		}
	}
	d := root.End()
	f.commitBatchAudit(root.Context().TraceID, from, results, attempted, cached, retried, start, d)
	codec := codecRaw
	if f.Server.WireCodecEnabled() {
		codec = codecWire
	}
	for i := range results {
		if results[i].Err == nil && len(results[i].Docs) > 0 {
			m.recordTransport(from, apiBatch, codec, sizeTopKRelease(codec, results[i].Docs))
		}
	}
	return results, nil
}

// commitBatchAudit turns one finished batch into its audit record
// (no-op when the flight recorder is off). Per-party rows aggregate the
// batch's requests in request order: Queries counts exactly the
// accountant's Spend calls (attempted requests), Cached the zero-spend
// replays, so epsilon reconciliation against dp.Accountant holds for
// batches the same way it does for searches.
func (f *Federation) commitBatchAudit(traceID, from string, results []TopKResult,
	attempted, cached []bool, retried []int, start time.Time, d time.Duration) {
	if !f.Server.TracingEnabled() {
		return
	}
	eps := f.Params.Epsilon
	rows := make(map[string]*AuditParty)
	var order []string
	for i := range results {
		r := &results[i]
		p := rows[r.Request.To]
		if p == nil {
			p = &AuditParty{
				Party:     r.Request.To,
				Transport: f.Server.transportFor(r.Request.To),
				Outcome:   OutcomeOK,
			}
			rows[r.Request.To] = p
			order = append(order, r.Request.To)
		}
		if attempted[i] {
			p.Queries++
			p.Epsilon += eps
		}
		if cached[i] {
			p.Cached++
		}
		p.Retries += retried[i]
		p.Bytes += r.Cost.BytesSent + r.Cost.BytesReceived
		p.Messages += int64(r.Cost.Messages)
		if r.Err != nil && p.Err == "" {
			p.Outcome = OutcomeFailed
			p.Err = r.Err.Error()
		}
	}
	sort.Strings(order)
	rec := AuditRecord{
		TraceID:       traceID,
		Op:            "batch",
		Querier:       from,
		Terms:         len(results),
		StartUnixNano: start.UnixNano(),
		DurationNanos: int64(d),
		Outcome:       AuditOK,
	}
	for _, name := range order {
		p := rows[name]
		if p.Outcome != OutcomeOK {
			rec.Outcome = AuditPartial
			rec.Partial = true
		}
		rec.EpsilonSpent += p.Epsilon
		rec.Bytes += p.Bytes
		rec.Messages += p.Messages
		rec.Parties = append(rec.Parties, *p)
	}
	f.Server.auditAppend(rec)
}

// BatchErrors collects the non-nil errors of a batch, labelled by
// request.
func BatchErrors(results []TopKResult) []error {
	var out []error
	for _, r := range results {
		if r.Err != nil {
			out = append(out, fmt.Errorf("federation: %s/%v term %d: %w",
				r.Request.To, r.Request.Field, r.Request.Term, r.Err))
		}
	}
	return out
}
