package federation

import (
	"bytes"
	"encoding/gob"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"csfltr/internal/core"
)

// TestGobHooksRoundTrip drives the custom GobEncoder/GobDecoder pairs
// through a real gob stream — the path every net/rpc call takes.
func TestGobHooksRoundTrip(t *testing.T) {
	tr := traceMeta{TraceID: "t1", ParentSpan: "s1", RequestID: "r1"}
	tfArgs := &TFArgs{Party: "B", Field: FieldTitle, DocID: 7,
		Query: core.TFQuery{Cols: []uint32{3, 9, 4096}}, Trace: tr}
	rtkArgs := &RTKArgs{Party: "A", Field: FieldBody,
		Query: core.TFQuery{Cols: []uint32{1, 2, 3, 500}}, Trace: traceMeta{}}
	tfReply := &TFReply{Resp: core.TFResponse{Values: []float64{1, -2.5, 300}}}
	rtkReply := &RTKReply{Resp: core.RTKResponse{Cells: []core.RTKCell{
		{IDs: []int32{1, 5, 9}, Values: []float64{4, 2, 1}},
		{IDs: []int32{}, Values: []float64{}},
	}}}
	roundTrip := func(in, out any) {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(in); err != nil {
			t.Fatalf("encode %T: %v", in, err)
		}
		if err := gob.NewDecoder(&buf).Decode(out); err != nil {
			t.Fatalf("decode %T: %v", in, err)
		}
	}
	var gotTFArgs TFArgs
	roundTrip(tfArgs, &gotTFArgs)
	if !reflect.DeepEqual(&gotTFArgs, tfArgs) {
		t.Fatalf("TFArgs diverged:\n got %+v\nwant %+v", gotTFArgs, *tfArgs)
	}
	var gotRTKArgs RTKArgs
	roundTrip(rtkArgs, &gotRTKArgs)
	if !reflect.DeepEqual(&gotRTKArgs, rtkArgs) {
		t.Fatalf("RTKArgs diverged:\n got %+v\nwant %+v", gotRTKArgs, *rtkArgs)
	}
	var gotTFReply TFReply
	roundTrip(tfReply, &gotTFReply)
	if !reflect.DeepEqual(&gotTFReply, tfReply) {
		t.Fatalf("TFReply diverged:\n got %+v\nwant %+v", gotTFReply, *tfReply)
	}
	var gotRTKReply RTKReply
	roundTrip(rtkReply, &gotRTKReply)
	if len(gotRTKReply.Resp.Cells) != 2 ||
		!reflect.DeepEqual(gotRTKReply.Resp.Cells[0], rtkReply.Resp.Cells[0]) {
		t.Fatalf("RTKReply diverged:\n got %+v\nwant %+v", gotRTKReply, *rtkReply)
	}
}

// TestHTTPWireNegotiation runs a wire-mode client against the gateway
// and checks its answers match the JSON-mode client's bit for bit.
func TestHTTPWireNegotiation(t *testing.T) {
	_, ts := httpFed(t)
	jsonOwner := NewHTTPOwner(ts.URL, "B", FieldBody, nil)
	wireOwner := NewHTTPOwner(ts.URL, "B", FieldBody, nil)
	wireOwner.EnableWire(true)

	q := &core.TFQuery{Cols: []uint32{1, 7, 42, 301, 8, 99, 200, 450, 3}}
	wantTF, err := jsonOwner.AnswerTF(0, q)
	if err != nil {
		t.Fatal(err)
	}
	gotTF, err := wireOwner.AnswerTF(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTF, wantTF) {
		t.Fatalf("wire TF diverged:\n got %+v\nwant %+v", gotTF, wantTF)
	}
	wantRTK, err := jsonOwner.AnswerRTK(q)
	if err != nil {
		t.Fatal(err)
	}
	gotRTK, err := wireOwner.AnswerRTK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRTK.Cells) != len(wantRTK.Cells) {
		t.Fatalf("wire RTK cell count diverged: %d vs %d", len(gotRTK.Cells), len(wantRTK.Cells))
	}
	for i := range gotRTK.Cells {
		if !reflect.DeepEqual(gotRTK.Cells[i].IDs, wantRTK.Cells[i].IDs) ||
			!reflect.DeepEqual(gotRTK.Cells[i].Values, wantRTK.Cells[i].Values) {
			t.Fatalf("wire RTK cell %d diverged", i)
		}
	}
}

// TestHTTPWireFallback: a wire-mode client against a JSON-only gateway
// (simulated by stripping the Accept negotiation server-side) must fall
// back to decoding the JSON reply.
func TestHTTPWireFallback(t *testing.T) {
	_, ts := httpFed(t)
	// A proxy that rewrites wire requests to JSON-era behaviour: it
	// strips the Accept header so the gateway answers JSON, and converts
	// the wire request body to its JSON equivalent.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r2, _ := http.NewRequest(r.Method, ts.URL+r.URL.Path, r.Body)
		r2.Header = r.Header.Clone()
		r2.Header.Del("Accept")
		resp, err := http.DefaultTransport.RoundTrip(r2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				break
			}
		}
	}))
	defer proxy.Close()

	owner := NewHTTPOwner(proxy.URL, "B", FieldBody, nil)
	owner.EnableWire(true)
	q := &core.TFQuery{Cols: []uint32{2, 8, 11, 70, 140, 300, 410, 17, 33}}
	// The gateway still understands the wire request body (Content-Type
	// survives the proxy) but answers JSON; the client must sniff and
	// fall back.
	resp, err := owner.AnswerRTK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) == 0 {
		t.Fatal("fallback path returned no cells")
	}
}

// TestHTTPWireBadBody: a malformed wire body must be a clean 400, not a
// panic or a misdecode.
func TestHTTPWireBadBody(t *testing.T) {
	_, ts := httpFed(t)
	for _, path := range []string{"/v1/parties/B/body/tf", "/v1/parties/B/body/rtk"} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader("\x01\x02garbage"))
		req.Header.Set("Content-Type", WireContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestSearchResultCodec round-trips a real federated search result.
func TestSearchResultCodec(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	res, err := fed.Search("A", []uint64{5, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res.Parties = append(res.Parties, PartyReport{
		Party: "ghost", Outcome: "failed", Err: "synthetic", Retries: 2,
		StaleFor: 3 * time.Second,
	})
	got, err := DecodeSearchResult(AppendSearchResult(nil, res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("search result diverged:\n got %+v\nwant %+v", got, res)
	}
	if _, err := DecodeSearchResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage should not decode")
	}
}

// TestTransportBytesAccounting: the same search charged under both
// codecs — the wire accounting must come in well under raw, and the
// ranking must be identical (the codec changes bytes, never results).
func TestTransportBytesAccounting(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	srv := fed.Server

	rawRes, err := fed.Search("A", []uint64{5, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rawRTK := srv.TransportBytes(codecRaw, apiRTK)
	rawAll := srv.TransportBytes(codecRaw, "")
	if rawRTK == 0 || rawAll == 0 {
		t.Fatalf("raw transport bytes not recorded: rtk=%d all=%d", rawRTK, rawAll)
	}
	if srv.TransportBytes(codecWire, "") != 0 {
		t.Fatal("wire bytes recorded while codec off")
	}

	srv.ResetTraffic()
	if srv.TransportBytes(codecRaw, "") != 0 {
		t.Fatal("ResetTraffic did not clear transport series")
	}
	srv.SetWireCodec(true)
	defer srv.SetWireCodec(false)
	wireRes, err := fed.Search("A", []uint64{5, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wireRTK := srv.TransportBytes(codecWire, apiRTK)
	if wireRTK == 0 {
		t.Fatal("wire transport bytes not recorded")
	}
	if wireRTK*2 > rawRTK {
		t.Fatalf("wire rtk bytes %d not under half of raw %d", wireRTK, rawRTK)
	}
	if !reflect.DeepEqual(wireRes.Hits, rawRes.Hits) {
		t.Fatalf("codec changed the ranking:\n got %+v\nwant %+v", wireRes.Hits, rawRes.Hits)
	}
}
