package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/telemetry"
	"csfltr/internal/wire"
)

// HTTP transport: a JSON gateway over the same OwnerAPI surface as the
// net/rpc transport, for clients outside the Go ecosystem. Routes:
//
//	GET  /v1/parties                                  -> {"parties": [...]}
//	GET  /v1/parties/{name}/{field}/docs              -> {"ids": [...]}
//	GET  /v1/parties/{name}/{field}/docs/{id}/meta    -> {"length": L, "unique": U}
//	POST /v1/parties/{name}/{field}/tf                -> perturbed values
//	POST /v1/parties/{name}/{field}/rtk               -> RTK cells
//	GET  /v1/metrics                                  -> Prometheus text format
//	GET  /v1/cache                                    -> answer-cache counters (404 when disabled)
//
// field is "body" or "title". POST bodies carry the obfuscated column
// vector; the gateway never sees hash keys or private index sets, same
// as the coordinating server it fronts.
//
// Every route runs behind middleware that assigns (or propagates) an
// X-Request-ID, counts requests and errors per route, times them into a
// latency histogram and tracks in-flight requests; wrong-method requests
// get a JSON 405 with an Allow header. Error envelopes echo the request
// ID so a client report can be joined against server telemetry.

// httpTFRequest is the POST /tf body.
type httpTFRequest struct {
	DocID int      `json:"doc_id"`
	Cols  []uint32 `json:"cols"`
}

// httpTFResponse is the POST /tf reply.
type httpTFResponse struct {
	Values []float64 `json:"values"`
}

// httpRTKRequest is the POST /rtk body.
type httpRTKRequest struct {
	Cols []uint32 `json:"cols"`
}

// httpRTKCell mirrors core.RTKCell in JSON.
type httpRTKCell struct {
	IDs    []int32   `json:"ids"`
	Values []float64 `json:"values"`
}

// httpRTKResponse is the POST /rtk reply.
type httpRTKResponse struct {
	Cells []httpRTKCell `json:"cells"`
}

// httpSearchRequest is the POST /v1/search body: a whole federated
// query from one party.
type httpSearchRequest struct {
	From  string   `json:"from"`
	Terms []uint64 `json:"terms"`
	K     int      `json:"k"`
}

// httpSearchHit mirrors SearchHit in JSON.
type httpSearchHit struct {
	Party string  `json:"party"`
	DocID int     `json:"doc_id"`
	Score float64 `json:"score"`
}

// httpPartyReport mirrors the availability part of PartyReport.
type httpPartyReport struct {
	Party   string `json:"party"`
	Outcome string `json:"outcome"`
	Err     string `json:"error,omitempty"`
	Cached  int    `json:"cached,omitempty"`
}

// httpSearchResponse is the POST /v1/search reply.
type httpSearchResponse struct {
	Hits    []httpSearchHit   `json:"hits"`
	Partial bool              `json:"partial,omitempty"`
	Parties []httpPartyReport `json:"parties"`
	TraceID string            `json:"trace_id,omitempty"`
}

// httpError is the uniform error envelope. RequestID echoes the
// X-Request-ID the middleware assigned (or propagated) so client-side
// reports can be joined against server telemetry.
type httpError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// maxHTTPBody caps request bodies (column vectors are tiny).
const maxHTTPBody = 1 << 20

// requestIDKey is the context key the middleware stores the request ID
// under.
type requestIDKey struct{}

// HTTPRequestID returns the request ID assigned to r by the gateway
// middleware ("" outside a gateway request).
func HTTPRequestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// Trace-propagation headers, carried alongside X-Request-ID. A caller
// inside a traced federation search stamps both; the gateway parents its
// route span (and the party-side work under it) below the caller's span
// so the coordinator-side tree stays coherent across process hops.
const (
	headerTraceID     = "X-Trace-ID"
	headerTraceParent = "X-Trace-Parent"
)

// traceCtxKey is the context key for the propagated span context.
type traceCtxKey struct{}

// HTTPTraceContext returns the span context propagated to r via the
// X-Trace-* headers (zero value when the request was untraced or the
// server has tracing disabled).
func HTTPTraceContext(r *http.Request) telemetry.SpanContext {
	ctx, _ := r.Context().Value(traceCtxKey{}).(telemetry.SpanContext)
	return ctx
}

// statusWriter captures the response status for route metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// HTTPHandler exposes the federation server as an http.Handler,
// including the /v1/metrics Prometheus route over the server's registry.
func HTTPHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	handle := func(method, pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, instrumentHTTP(s, method, route, h))
	}
	handle(http.MethodGet, "/v1/parties", "/v1/parties", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"parties": s.PartyNames()})
	})
	handle(http.MethodGet, "/v1/metrics", "/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.Handler(s.Metrics()).ServeHTTP(w, r)
	})
	handle(http.MethodGet, "/v1/cache", "/v1/cache", func(w http.ResponseWriter, r *http.Request) {
		stats, ok := s.CacheStats()
		if !ok {
			writeError(w, r, http.StatusNotFound, "federation: answer cache not enabled")
			return
		}
		writeJSON(w, http.StatusOK, stats)
	})
	handle(http.MethodGet, "/v1/events", "/v1/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"events": s.Metrics().Events()})
	})
	handle(http.MethodGet, "/v1/audit", "/v1/audit", func(w http.ResponseWriter, r *http.Request) {
		if !s.TracingEnabled() {
			writeError(w, r, http.StatusNotFound, "federation: tracing not enabled")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"records": s.AuditRecords(),
			"slow":    s.Metrics().SlowQueries(),
		})
	})
	handle(http.MethodGet, "/v1/trace/{id}", "/v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans, haveSpans := s.TraceTree(id)
		audit, haveAudit := s.AuditFor(id)
		if !haveSpans && !haveAudit {
			writeError(w, r, http.StatusNotFound, "federation: unknown trace "+id)
			return
		}
		out := map[string]any{"trace_id": id, "spans": spans}
		if haveAudit {
			out["audit"] = audit
		}
		writeJSON(w, http.StatusOK, out)
	})
	handle(http.MethodPost, "/v1/search", "/v1/search", func(w http.ResponseWriter, r *http.Request) {
		fn := s.searcher.Load()
		if fn == nil {
			writeError(w, r, http.StatusNotFound, "federation: no search backend attached")
			return
		}
		if a := s.admission.Load(); a != nil {
			release, ok, reason := a.admit()
			if !ok {
				w.Header().Set("Retry-After",
					strconv.Itoa(int((a.cfg.RetryAfter+time.Second-1)/time.Second)))
				writeError(w, r, http.StatusTooManyRequests, "federation: overloaded: "+reason)
				return
			}
			defer release()
		}
		var req httpSearchRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.From == "" || len(req.Terms) == 0 {
			writeError(w, r, http.StatusBadRequest, "federation: search needs from and terms")
			return
		}
		res, traceID, err := (*fn)(req.From, req.Terms, req.K)
		if err != nil {
			writeError(w, r, statusFor(err), err.Error())
			return
		}
		out := httpSearchResponse{
			Hits:    make([]httpSearchHit, len(res.Hits)),
			Partial: res.Partial,
			Parties: make([]httpPartyReport, len(res.Parties)),
			TraceID: traceID,
		}
		for i, h := range res.Hits {
			out.Hits[i] = httpSearchHit{Party: h.Party, DocID: h.DocID, Score: h.Score}
		}
		for i, p := range res.Parties {
			out.Parties[i] = httpPartyReport{Party: p.Party, Outcome: p.Outcome, Err: p.Err, Cached: p.Cached}
		}
		writeJSON(w, http.StatusOK, out)
	})
	handle(http.MethodGet, "/v1/parties/{name}/{field}/docs", "/v1/parties/{name}/{field}/docs",
		func(w http.ResponseWriter, r *http.Request) {
			owner, ok := resolveOwner(w, r, s)
			if !ok {
				return
			}
			writeJSON(w, http.StatusOK, map[string][]int{"ids": owner.DocIDs()})
		})
	handle(http.MethodGet, "/v1/parties/{name}/{field}/docs/{id}/meta", "/v1/parties/{name}/{field}/docs/{id}/meta",
		func(w http.ResponseWriter, r *http.Request) {
			owner, ok := resolveOwner(w, r, s)
			if !ok {
				return
			}
			id, err := strconv.Atoi(r.PathValue("id"))
			if err != nil {
				writeError(w, r, http.StatusBadRequest, "invalid doc id")
				return
			}
			length, unique, err := owner.DocMeta(id)
			if err != nil {
				writeError(w, r, statusFor(err), err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]int{"length": length, "unique": unique})
		})
	handle(http.MethodPost, "/v1/parties/{name}/{field}/tf", "/v1/parties/{name}/{field}/tf",
		func(w http.ResponseWriter, r *http.Request) {
			owner, ok := resolveOwner(w, r, s)
			if !ok {
				return
			}
			var docID int
			var cols []uint32
			if wireRequest(r) {
				body, ok := readWireBody(w, r)
				if !ok {
					return
				}
				var err error
				if docID, cols, err = decodeWireTFRequest(body); err != nil {
					writeError(w, r, http.StatusBadRequest, "invalid wire body: "+err.Error())
					return
				}
			} else {
				var req httpTFRequest
				if !readJSON(w, r, &req) {
					return
				}
				docID, cols = req.DocID, req.Cols
			}
			resp, err := owner.AnswerTF(docID, &core.TFQuery{Cols: cols})
			if err != nil {
				writeError(w, r, statusFor(err), err.Error())
				return
			}
			if wantsWire(r) {
				writeWire(w, wire.AppendTFResponse(nil, resp))
				return
			}
			writeJSON(w, http.StatusOK, httpTFResponse{Values: resp.Values})
		})
	handle(http.MethodPost, "/v1/parties/{name}/{field}/rtk", "/v1/parties/{name}/{field}/rtk",
		func(w http.ResponseWriter, r *http.Request) {
			owner, ok := resolveOwner(w, r, s)
			if !ok {
				return
			}
			var cols []uint32
			if wireRequest(r) {
				body, ok := readWireBody(w, r)
				if !ok {
					return
				}
				q, err := wire.DecodeTFQuery(body)
				if err != nil {
					writeError(w, r, http.StatusBadRequest, "invalid wire body: "+err.Error())
					return
				}
				cols = q.Cols
			} else {
				var req httpRTKRequest
				if !readJSON(w, r, &req) {
					return
				}
				cols = req.Cols
			}
			resp, err := owner.AnswerRTK(&core.TFQuery{Cols: cols})
			if err != nil {
				writeError(w, r, statusFor(err), err.Error())
				return
			}
			if wantsWire(r) {
				writeWire(w, wire.AppendRTKResponse(nil, resp))
				return
			}
			out := httpRTKResponse{Cells: make([]httpRTKCell, len(resp.Cells))}
			for i, c := range resp.Cells {
				out.Cells[i] = httpRTKCell{IDs: c.IDs, Values: c.Values}
			}
			writeJSON(w, http.StatusOK, out)
		})
	// Catch-all so unknown paths also get the JSON envelope, a request
	// ID and a metrics sample (route label "other").
	handle("", "/", "other", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, http.StatusNotFound, "no such route")
	})
	return mux
}

// instrumentHTTP wraps one route handler with the gateway middleware:
// request-ID assignment/propagation, trace-context propagation via the
// X-Trace-* headers, method enforcement (405 + Allow), the in-flight
// gauge, the per-route latency histogram and the per-route/status
// request and error counters. method "" accepts any.
func instrumentHTTP(s *Server, method, route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := s.metrics()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = telemetry.RequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))

		m.httpInFlight.Inc()
		defer m.httpInFlight.Dec()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		parent := telemetry.SpanContext{
			TraceID: r.Header.Get(headerTraceID),
			SpanID:  r.Header.Get(headerTraceParent),
		}
		sp := m.reg.StartChildSpan("http."+route, parent, m.reg.Histogram(
			"csfltr_http_request_duration_seconds", "HTTP gateway request latency.", nil,
			telemetry.L("route", route)))
		if ctx := sp.Context(); ctx.Valid() {
			sp.AddAttr(telemetry.AStr("transport", transportHTTP))
			sp.SetRequestID(rid)
			w.Header().Set(headerTraceID, ctx.TraceID)
			r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, ctx))
		}
		switch {
		case method == "" || r.Method == method,
			method == http.MethodGet && r.Method == http.MethodHead:
			h(sw, r)
		default:
			sw.Header().Set("Allow", method)
			writeError(sw, r, http.StatusMethodNotAllowed, "method "+r.Method+" not allowed")
		}
		sp.End()
		m.reg.Counter("csfltr_http_requests_total", "HTTP gateway requests served.",
			telemetry.L("route", route), telemetry.L("code", strconv.Itoa(sw.code))).Inc()
		if sw.code >= 400 {
			m.reg.Counter("csfltr_http_errors_total", "HTTP gateway requests that failed.",
				telemetry.L("route", route)).Inc()
		}
	})
}

// resolveOwner extracts {name}/{field} and resolves the routed owner —
// re-parented under the request's propagated span context when present —
// writing the error response itself on failure.
func resolveOwner(w http.ResponseWriter, r *http.Request, s *Server) (core.OwnerAPI, bool) {
	field, err := parseField(r.PathValue("field"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return nil, false
	}
	owner, err := s.OwnerFor(r.PathValue("name"), field)
	if err != nil {
		writeError(w, r, statusFor(err), err.Error())
		return nil, false
	}
	return traceOwner(owner, HTTPTraceContext(r)), true
}

// parseField maps the path segment to a Field.
func parseField(s string) (Field, error) {
	switch strings.ToLower(s) {
	case "body":
		return FieldBody, nil
	case "title":
		return FieldTitle, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownField, s)
	}
}

// statusFor maps protocol errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownParty), errors.Is(err, core.ErrUnknownDoc):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadQuery), errors.Is(err, ErrUnknownField),
		errors.Is(err, ErrSelfQuery):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNoSketches):
		return http.StatusConflict
	case errors.Is(err, ErrQuorum):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes a JSON response with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform error envelope, echoing the request ID.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, httpError{Error: msg, RequestID: HTTPRequestID(r)})
}

// wireRequest reports whether the request body is wire-framed.
func wireRequest(r *http.Request) bool {
	return isWireContent(r.Header.Get("Content-Type"))
}

// wantsWire reports whether the client asked for a wire-framed response.
// Anything else (including no Accept at all) gets JSON, so codec-unaware
// clients keep working against a codec-aware gateway.
func wantsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), WireContentType)
}

// isWireContent matches the wire media type, with or without parameters.
func isWireContent(ct string) bool {
	return ct == WireContentType || strings.HasPrefix(ct, WireContentType+";")
}

// readWireBody reads a bounded wire-framed body, writing the error
// response on failure.
func readWireBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxHTTPBody))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "unreadable body")
		return nil, false
	}
	return body, true
}

// writeWire writes a wire-framed success response.
func writeWire(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", WireContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// readJSON decodes a bounded JSON body, writing the error response on
// failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxHTTPBody))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "unreadable body")
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// HTTPOwner is a core.OwnerAPI backed by the HTTP gateway — the Go
// client for non-RPC deployments. Construct with NewHTTPOwner. A
// trace-bound copy (WithTrace) stamps the X-Trace-* headers on every
// request so the gateway continues the caller's span tree.
type HTTPOwner struct {
	base   string
	party  string
	field  Field
	client *http.Client
	ctx    telemetry.SpanContext
	wire   bool
}

// EnableWire switches the sketch endpoints (/tf, /rtk) to the compact
// binary wire bodies; the roster and metadata calls stay JSON. The
// client advertises the codec per request (Content-Type plus Accept)
// and sniffs the response Content-Type, so a gateway that predates the
// codec still interoperates — its JSON replies decode on the fallback
// path. Call before sharing the owner across goroutines.
func (h *HTTPOwner) EnableWire(on bool) { h.wire = on }

// WithTrace implements traceCarrier.
func (h *HTTPOwner) WithTrace(ctx telemetry.SpanContext) core.OwnerAPI {
	cp := *h
	cp.ctx = ctx
	return &cp
}

// NewHTTPOwner builds an HTTP-backed owner view. base is the gateway
// root (e.g. "http://host:port"); client may be nil for
// http.DefaultClient.
func NewHTTPOwner(base, party string, field Field, client *http.Client) *HTTPOwner {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPOwner{
		base:   strings.TrimRight(base, "/"),
		party:  party,
		field:  field,
		client: client,
	}
}

// url builds an endpoint path.
func (h *HTTPOwner) url(suffix string) string {
	return fmt.Sprintf("%s/v1/parties/%s/%s%s", h.base, h.party, h.field, suffix)
}

// stamp tags a request with a fresh request ID and, when this owner is
// trace-bound, the trace-propagation headers.
func (h *HTTPOwner) stamp(req *http.Request) {
	req.Header.Set("X-Request-ID", telemetry.RequestID())
	if h.ctx.Valid() {
		req.Header.Set(headerTraceID, h.ctx.TraceID)
		req.Header.Set(headerTraceParent, h.ctx.SpanID)
	}
}

// getJSON performs a GET (tagged with a fresh request ID) and decodes
// the response.
func (h *HTTPOwner) getJSON(url string, v any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	h.stamp(req)
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeOrError(resp, v)
}

// postJSON performs a POST with a JSON body (tagged with a fresh request
// ID) and decodes the response.
func (h *HTTPOwner) postJSON(url string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	h.stamp(req)
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeOrError(resp, v)
}

// decodeOrError decodes a success body or surfaces the error envelope.
func decodeOrError(resp *http.Response, v any) error {
	if resp.StatusCode != http.StatusOK {
		return respError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// respError surfaces the JSON error envelope of a non-200 response.
func respError(resp *http.Response) error {
	var e httpError
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("federation: http %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("federation: http %d", resp.StatusCode)
}

// postWire performs a POST with a wire-framed body, advertising the
// codec in both directions, and returns the raw body plus whether the
// gateway answered in wire form.
func (h *HTTPOwner) postWire(url string, body []byte) ([]byte, bool, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", WireContentType)
	req.Header.Set("Accept", WireContentType)
	h.stamp(req)
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, respError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return data, isWireContent(resp.Header.Get("Content-Type")), nil
}

// DocIDs implements core.OwnerAPI.
func (h *HTTPOwner) DocIDs() []int {
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := h.getJSON(h.url("/docs"), &out); err != nil {
		return nil
	}
	return out.IDs
}

// DocMeta implements core.OwnerAPI.
func (h *HTTPOwner) DocMeta(docID int) (int, int, error) {
	var out struct {
		Length int `json:"length"`
		Unique int `json:"unique"`
	}
	if err := h.getJSON(h.url(fmt.Sprintf("/docs/%d/meta", docID)), &out); err != nil {
		return 0, 0, err
	}
	return out.Length, out.Unique, nil
}

// AnswerTF implements core.OwnerAPI.
func (h *HTTPOwner) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	if h.wire {
		body, isWire, err := h.postWire(h.url("/tf"), encodeWireTFRequest(docID, q.Cols))
		if err != nil {
			return nil, err
		}
		if isWire {
			return wire.DecodeTFResponse(body)
		}
		var out httpTFResponse // codec-unaware gateway: JSON despite Accept
		if err := json.Unmarshal(body, &out); err != nil {
			return nil, err
		}
		return &core.TFResponse{Values: out.Values}, nil
	}
	var out httpTFResponse
	if err := h.postJSON(h.url("/tf"), httpTFRequest{DocID: docID, Cols: q.Cols}, &out); err != nil {
		return nil, err
	}
	return &core.TFResponse{Values: out.Values}, nil
}

// AnswerRTK implements core.OwnerAPI.
func (h *HTTPOwner) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	if h.wire {
		body, isWire, err := h.postWire(h.url("/rtk"), wire.AppendTFQuery(nil, q))
		if err != nil {
			return nil, err
		}
		if isWire {
			return wire.DecodeRTKResponse(body)
		}
		var out httpRTKResponse // codec-unaware gateway: JSON despite Accept
		if err := json.Unmarshal(body, &out); err != nil {
			return nil, err
		}
		return rtkFromHTTP(out), nil
	}
	var out httpRTKResponse
	if err := h.postJSON(h.url("/rtk"), httpRTKRequest{Cols: q.Cols}, &out); err != nil {
		return nil, err
	}
	return rtkFromHTTP(out), nil
}

// rtkFromHTTP converts the JSON cell mirror back to the core type.
func rtkFromHTTP(out httpRTKResponse) *core.RTKResponse {
	resp := &core.RTKResponse{Cells: make([]core.RTKCell, len(out.Cells))}
	for i, c := range out.Cells {
		resp.Cells[i] = core.RTKCell{IDs: c.IDs, Values: c.Values}
	}
	return resp
}

// httpEndpoint adapts an HTTP-gateway party host to the server's
// endpoint registry, the third transport next to in-process relay and
// net/rpc.
type httpEndpoint struct {
	base   string
	name   string
	client *http.Client
}

func (e *httpEndpoint) ownerAPI(f Field) (core.OwnerAPI, error) {
	if f < 0 || f >= numFields {
		return nil, fmt.Errorf("%w: %d", ErrUnknownField, int(f))
	}
	return NewHTTPOwner(e.base, e.name, f, e.client), nil
}

// transport implements endpoint.
func (e *httpEndpoint) transport() string { return transportHTTP }

// RegisterHTTPRemote connects the coordinator to a party served behind
// an HTTP gateway rooted at base and adds it to the roster under name.
// client may be nil for http.DefaultClient. Queries to the remote party
// are still traffic-accounted by this server, which relays them.
func (s *Server) RegisterHTTPRemote(name, base string, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	return s.register(name, &httpEndpoint{base: base, name: name, client: client})
}

// ChaosTransport wraps an http.RoundTripper with the fault injector, so
// HTTP-transport federations can run under the same per-party chaos
// profiles as the in-process relay: it extracts the target party from
// the gateway path (/v1/parties/{name}/...), applies the party's
// profile (latency sleep, injected fault) and only then forwards the
// request. base nil means http.DefaultTransport. Install it on the
// client used by NewHTTPOwner:
//
//	c := &http.Client{Transport: federation.ChaosTransport(in, nil)}
//	owner := federation.NewHTTPOwner(url, "B", federation.FieldBody, c)
func ChaosTransport(in *chaos.Injector, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &chaosRoundTripper{in: in, base: base}
}

// chaosRoundTripper implements http.RoundTripper over an injector.
type chaosRoundTripper struct {
	in   *chaos.Injector
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (c *chaosRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	if party := partyFromPath(path); party != "" {
		if err := c.in.Intercept(party, "http", chaosContent(uint64(len(path)), pathContent(path))); err != nil {
			return nil, err
		}
	}
	return c.base.RoundTrip(req)
}

// partyFromPath extracts {name} from a /v1/parties/{name}/... gateway
// path ("" if the path has another shape).
func partyFromPath(path string) string {
	const prefix = "/v1/parties/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	rest := path[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i > 0 {
		return rest[:i]
	}
	return rest
}

// pathContent folds a URL path into the column-vector shape
// chaosContent consumes.
func pathContent(path string) []uint32 {
	out := make([]uint32, 0, (len(path)+3)/4)
	var cur uint32
	for i := 0; i < len(path); i++ {
		cur = cur<<8 | uint32(path[i])
		if i%4 == 3 {
			out = append(out, cur)
			cur = 0
		}
	}
	if len(path)%4 != 0 {
		out = append(out, cur)
	}
	return out
}
