package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"csfltr/internal/core"
)

// HTTP transport: a JSON gateway over the same OwnerAPI surface as the
// net/rpc transport, for clients outside the Go ecosystem. Routes:
//
//	GET  /v1/parties                                  -> {"parties": [...]}
//	GET  /v1/parties/{name}/{field}/docs              -> {"ids": [...]}
//	GET  /v1/parties/{name}/{field}/docs/{id}/meta    -> {"length": L, "unique": U}
//	POST /v1/parties/{name}/{field}/tf                -> perturbed values
//	POST /v1/parties/{name}/{field}/rtk               -> RTK cells
//
// field is "body" or "title". POST bodies carry the obfuscated column
// vector; the gateway never sees hash keys or private index sets, same
// as the coordinating server it fronts.

// httpTFRequest is the POST /tf body.
type httpTFRequest struct {
	DocID int      `json:"doc_id"`
	Cols  []uint32 `json:"cols"`
}

// httpTFResponse is the POST /tf reply.
type httpTFResponse struct {
	Values []float64 `json:"values"`
}

// httpRTKRequest is the POST /rtk body.
type httpRTKRequest struct {
	Cols []uint32 `json:"cols"`
}

// httpRTKCell mirrors core.RTKCell in JSON.
type httpRTKCell struct {
	IDs    []int32   `json:"ids"`
	Values []float64 `json:"values"`
}

// httpRTKResponse is the POST /rtk reply.
type httpRTKResponse struct {
	Cells []httpRTKCell `json:"cells"`
}

// httpError is the uniform error envelope.
type httpError struct {
	Error string `json:"error"`
}

// maxHTTPBody caps request bodies (column vectors are tiny).
const maxHTTPBody = 1 << 20

// HTTPHandler exposes the federation server as an http.Handler.
func HTTPHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/parties", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"parties": s.PartyNames()})
	})
	mux.HandleFunc("GET /v1/parties/{name}/{field}/docs", func(w http.ResponseWriter, r *http.Request) {
		owner, ok := resolveOwner(w, r, s)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string][]int{"ids": owner.DocIDs()})
	})
	mux.HandleFunc("GET /v1/parties/{name}/{field}/docs/{id}/meta", func(w http.ResponseWriter, r *http.Request) {
		owner, ok := resolveOwner(w, r, s)
		if !ok {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{"invalid doc id"})
			return
		}
		length, unique, err := owner.DocMeta(id)
		if err != nil {
			writeJSON(w, statusFor(err), httpError{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"length": length, "unique": unique})
	})
	mux.HandleFunc("POST /v1/parties/{name}/{field}/tf", func(w http.ResponseWriter, r *http.Request) {
		owner, ok := resolveOwner(w, r, s)
		if !ok {
			return
		}
		var req httpTFRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := owner.AnswerTF(req.DocID, &core.TFQuery{Cols: req.Cols})
		if err != nil {
			writeJSON(w, statusFor(err), httpError{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, httpTFResponse{Values: resp.Values})
	})
	mux.HandleFunc("POST /v1/parties/{name}/{field}/rtk", func(w http.ResponseWriter, r *http.Request) {
		owner, ok := resolveOwner(w, r, s)
		if !ok {
			return
		}
		var req httpRTKRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := owner.AnswerRTK(&core.TFQuery{Cols: req.Cols})
		if err != nil {
			writeJSON(w, statusFor(err), httpError{err.Error()})
			return
		}
		out := httpRTKResponse{Cells: make([]httpRTKCell, len(resp.Cells))}
		for i, c := range resp.Cells {
			out.Cells[i] = httpRTKCell{IDs: c.IDs, Values: c.Values}
		}
		writeJSON(w, http.StatusOK, out)
	})
	return mux
}

// resolveOwner extracts {name}/{field} and resolves the routed owner,
// writing the error response itself on failure.
func resolveOwner(w http.ResponseWriter, r *http.Request, s *Server) (core.OwnerAPI, bool) {
	field, err := parseField(r.PathValue("field"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{err.Error()})
		return nil, false
	}
	owner, err := s.OwnerFor(r.PathValue("name"), field)
	if err != nil {
		writeJSON(w, statusFor(err), httpError{err.Error()})
		return nil, false
	}
	return owner, true
}

// parseField maps the path segment to a Field.
func parseField(s string) (Field, error) {
	switch strings.ToLower(s) {
	case "body":
		return FieldBody, nil
	case "title":
		return FieldTitle, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownField, s)
	}
}

// statusFor maps protocol errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownParty), errors.Is(err, core.ErrUnknownDoc):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadQuery), errors.Is(err, ErrUnknownField):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNoSketches):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes a JSON response with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// readJSON decodes a bounded JSON body, writing the error response on
// failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxHTTPBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{"unreadable body"})
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{"invalid JSON: " + err.Error()})
		return false
	}
	return true
}

// HTTPOwner is a core.OwnerAPI backed by the HTTP gateway — the Go
// client for non-RPC deployments. Construct with NewHTTPOwner.
type HTTPOwner struct {
	base   string
	party  string
	field  Field
	client *http.Client
}

// NewHTTPOwner builds an HTTP-backed owner view. base is the gateway
// root (e.g. "http://host:port"); client may be nil for
// http.DefaultClient.
func NewHTTPOwner(base, party string, field Field, client *http.Client) *HTTPOwner {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPOwner{
		base:   strings.TrimRight(base, "/"),
		party:  party,
		field:  field,
		client: client,
	}
}

// url builds an endpoint path.
func (h *HTTPOwner) url(suffix string) string {
	return fmt.Sprintf("%s/v1/parties/%s/%s%s", h.base, h.party, h.field, suffix)
}

// getJSON performs a GET and decodes the response.
func (h *HTTPOwner) getJSON(url string, v any) error {
	resp, err := h.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeOrError(resp, v)
}

// postJSON performs a POST with a JSON body and decodes the response.
func (h *HTTPOwner) postJSON(url string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := h.client.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeOrError(resp, v)
}

// decodeOrError decodes a success body or surfaces the error envelope.
func decodeOrError(resp *http.Response, v any) error {
	if resp.StatusCode != http.StatusOK {
		var e httpError
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("federation: http %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("federation: http %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// DocIDs implements core.OwnerAPI.
func (h *HTTPOwner) DocIDs() []int {
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := h.getJSON(h.url("/docs"), &out); err != nil {
		return nil
	}
	return out.IDs
}

// DocMeta implements core.OwnerAPI.
func (h *HTTPOwner) DocMeta(docID int) (int, int, error) {
	var out struct {
		Length int `json:"length"`
		Unique int `json:"unique"`
	}
	if err := h.getJSON(h.url(fmt.Sprintf("/docs/%d/meta", docID)), &out); err != nil {
		return 0, 0, err
	}
	return out.Length, out.Unique, nil
}

// AnswerTF implements core.OwnerAPI.
func (h *HTTPOwner) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	var out httpTFResponse
	if err := h.postJSON(h.url("/tf"), httpTFRequest{DocID: docID, Cols: q.Cols}, &out); err != nil {
		return nil, err
	}
	return &core.TFResponse{Values: out.Values}, nil
}

// AnswerRTK implements core.OwnerAPI.
func (h *HTTPOwner) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	var out httpRTKResponse
	if err := h.postJSON(h.url("/rtk"), httpRTKRequest{Cols: q.Cols}, &out); err != nil {
		return nil, err
	}
	resp := &core.RTKResponse{Cells: make([]core.RTKCell, len(out.Cells))}
	for i, c := range out.Cells {
		resp.Cells[i] = core.RTKCell{IDs: c.IDs, Values: c.Values}
	}
	return resp, nil
}
