package federation

import (
	"errors"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

func batchFed(t *testing.T) *Federation {
	t.Helper()
	p := testParams()
	fed, err := NewDeterministic([]string{"A", "B", "C"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"B", "C"} {
		party, _ := fed.Party(name)
		for id := 0; id < 20; id++ {
			body := make([]textkit.TermID, 0, 10)
			for j := 0; j <= id%5; j++ {
				body = append(body, textkit.TermID(100+j))
			}
			body = append(body, textkit.TermID(999)) // common filler
			if err := party.IngestDocument(textkit.NewDocument(id, -1, nil, body)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fed
}

func TestBatchReverseTopK(t *testing.T) {
	fed := batchFed(t)
	reqs := []TopKRequest{
		{To: "B", Field: FieldBody, Term: 100, K: 3},
		{To: "C", Field: FieldBody, Term: 101, K: 3},
		{To: "B", Field: FieldBody, Term: 104, K: 3},
		{To: "C", Field: FieldBody, Term: 100, K: 3},
	}
	results, err := fed.BatchReverseTopK("A", reqs, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
		if r.Request != reqs[i] {
			t.Fatalf("result %d out of order", i)
		}
		if len(r.Docs) == 0 {
			t.Fatalf("request %d returned nothing", i)
		}
		if r.Cost.Messages == 0 {
			t.Fatalf("request %d has no cost", i)
		}
	}
	// Term 100 occurs in every doc; term 104 only in ids with id%5==4.
	for _, dc := range results[2].Docs {
		if dc.DocID%5 != 4 {
			t.Fatalf("term 104 matched doc %d", dc.DocID)
		}
	}
}

// TestBatchDeterministicAcrossParallelism: the same batch must return
// identical results regardless of the parallelism level.
func TestBatchDeterministicAcrossParallelism(t *testing.T) {
	fed := batchFed(t)
	reqs := []TopKRequest{
		{To: "B", Field: FieldBody, Term: 100, K: 5},
		{To: "C", Field: FieldBody, Term: 102, K: 5},
		{To: "B", Field: FieldBody, Term: 103, K: 5},
	}
	seq, err := fed.BatchReverseTopK("A", reqs, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	fed2 := batchFed(t)
	par, err := fed2.BatchReverseTopK("A", reqs, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if len(seq[i].Docs) != len(par[i].Docs) {
			t.Fatalf("request %d: lengths differ", i)
		}
		for j := range seq[i].Docs {
			if seq[i].Docs[j] != par[i].Docs[j] {
				t.Fatalf("request %d doc %d differs across parallelism", i, j)
			}
		}
	}
}

func TestBatchPartialFailures(t *testing.T) {
	fed := batchFed(t)
	reqs := []TopKRequest{
		{To: "B", Field: FieldBody, Term: 100, K: 3},
		{To: "A", Field: FieldBody, Term: 100, K: 3},   // self query
		{To: "ZZZ", Field: FieldBody, Term: 100, K: 3}, // unknown party
	}
	results, err := fed.BatchReverseTopK("A", reqs, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("good request failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrSelfQuery) {
		t.Fatalf("self query: %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrUnknownParty) {
		t.Fatalf("unknown party: %v", results[2].Err)
	}
	errs := BatchErrors(results)
	if len(errs) != 2 {
		t.Fatalf("BatchErrors = %v", errs)
	}
}

func TestBatchUnknownSource(t *testing.T) {
	fed := batchFed(t)
	if _, err := fed.BatchReverseTopK("ZZZ", nil, 2, true); !errors.Is(err, ErrUnknownParty) {
		t.Fatal("unknown source should error")
	}
}

func TestBatchNaivePath(t *testing.T) {
	fed := batchFed(t)
	results, err := fed.BatchReverseTopK("A",
		[]TopKRequest{{To: "B", Field: FieldBody, Term: 100, K: 2}}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Cost.Messages != 20 { // one per document under NAIVE
		t.Fatalf("naive messages = %d", results[0].Cost.Messages)
	}
}

func TestBatchConcurrentSafetyWithRace(t *testing.T) {
	// Exercises concurrent owner access; meaningful under -race.
	fed := batchFed(t)
	var reqs []TopKRequest
	for term := uint64(100); term < 105; term++ {
		reqs = append(reqs,
			TopKRequest{To: "B", Field: FieldBody, Term: term, K: 3},
			TopKRequest{To: "C", Field: FieldBody, Term: term, K: 3})
	}
	results, err := fed.BatchReverseTopK("A", reqs, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if errs := BatchErrors(results); len(errs) != 0 {
		t.Fatalf("batch errors: %v", errs)
	}
	_ = core.Cost{}
}
