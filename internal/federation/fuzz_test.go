package federation

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

// FuzzHTTPEnvelope hardens the gateway's JSON envelope decoder: for any
// request body thrown at the TF/RTK POST routes the handler must not
// panic, must always answer with a JSON body, must echo the caller's
// X-Request-ID in error envelopes, and must only use the documented
// status codes.
func FuzzHTTPEnvelope(f *testing.F) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 7)
	if err != nil {
		f.Fatal(err)
	}
	a, _ := fed.Party("A")
	if err := a.IngestAll([]*textkit.Document{doc(0, 5, 5, 6), doc(1, 6, 7)}); err != nil {
		f.Fatal(err)
	}
	handler := HTTPHandler(fed.Server)

	f.Add(uint8(0), []byte(`{"doc_id":0,"cols":[1,2,3,4,5,6,7,8,9]}`))
	f.Add(uint8(1), []byte(`{"cols":[1,2,3,4,5,6,7,8,9]}`))
	f.Add(uint8(0), []byte(`{not json`))
	f.Add(uint8(1), []byte(``))
	f.Add(uint8(2), []byte(`{"doc_id":99,"cols":[]}`))
	f.Add(uint8(3), []byte(`{"cols":null}`))
	f.Add(uint8(0), []byte(`{"doc_id":1e309,"cols":[0]}`))
	f.Add(uint8(1), []byte(strings.Repeat(`[`, 10000)))

	routes := []string{
		"/v1/parties/A/body/tf",
		"/v1/parties/A/body/rtk",
		"/v1/parties/A/title/tf",
		"/v1/parties/nobody/body/rtk",
	}
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusConflict: true, http.StatusMethodNotAllowed: true,
		http.StatusInternalServerError: true,
	}

	f.Fuzz(func(t *testing.T, route uint8, body []byte) {
		path := routes[int(route)%len(routes)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("X-Request-ID", "fuzz-rid")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("%s: unexpected status %d for body %q", path, rec.Code, body)
		}
		if got := rec.Header().Get("X-Request-ID"); got != "fuzz-rid" {
			t.Fatalf("%s: request id not propagated: %q", path, got)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: non-JSON content type %q (status %d)", path, ct, rec.Code)
		}
		if rec.Code == http.StatusOK {
			var ok map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil {
				t.Fatalf("%s: 200 body is not JSON: %v", path, err)
			}
			return
		}
		var env struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: error body is not an envelope: %v (%q)", path, err, rec.Body.String())
		}
		if env.Error == "" {
			t.Fatalf("%s: error envelope with empty error (status %d)", path, rec.Code)
		}
		if env.RequestID != "fuzz-rid" {
			t.Fatalf("%s: envelope request id %q, want fuzz-rid", path, env.RequestID)
		}
	})
}

// gobBytes encodes a value for the FuzzRPCDecode seed corpus.
func gobBytes(f *testing.F, v any) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRPCDecode hardens the net/rpc message decode path: for any byte
// stream presented as a gob-encoded argument struct, decoding plus the
// dispatched RPCService method must not panic. Malformed streams must
// fail in the decoder; well-formed but hostile arguments (unknown
// parties, out-of-range sketch columns, absurd document ids) must come
// back as ordinary errors from the service.
func FuzzRPCDecode(f *testing.F) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 7)
	if err != nil {
		f.Fatal(err)
	}
	a, _ := fed.Party("A")
	if err := a.IngestAll([]*textkit.Document{doc(0, 5, 5, 6), doc(1, 6, 7)}); err != nil {
		f.Fatal(err)
	}
	svc := &RPCService{server: fed.Server}

	cols := make([]uint32, testParams().Z)
	for i := range cols {
		cols[i] = uint32(i)
	}
	valid := [][]byte{
		gobBytes(f, &DocIDsArgs{Party: "A", Field: FieldBody}),
		gobBytes(f, &DocMetaArgs{Party: "A", Field: FieldBody, DocID: 0}),
		gobBytes(f, &TFArgs{Party: "A", Field: FieldBody, DocID: 0, Query: core.TFQuery{Cols: cols}}),
		gobBytes(f, &RTKArgs{Party: "A", Field: FieldTitle, Query: core.TFQuery{Cols: cols}}),
	}
	for method, payload := range valid {
		f.Add(uint8(method), payload)
		// Truncated and bit-flipped variants of each valid stream.
		f.Add(uint8(method), payload[:len(payload)/2])
		flipped := bytes.Clone(payload)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(uint8(method), flipped)
	}
	f.Add(uint8(1), gobBytes(f, &DocMetaArgs{Party: "nobody", Field: Field(99), DocID: -1}))
	f.Add(uint8(3), gobBytes(f, &RTKArgs{Party: "A", Field: FieldBody,
		Query: core.TFQuery{Cols: []uint32{1 << 30, 2, 3, 4, 5, 6, 7, 8, 9}}}))
	f.Add(uint8(0), []byte{})
	f.Add(uint8(2), []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, method uint8, payload []byte) {
		dec := gob.NewDecoder(bytes.NewReader(payload))
		switch method % 4 {
		case 0:
			var args DocIDsArgs
			if dec.Decode(&args) != nil {
				return
			}
			var reply DocIDsReply
			_ = svc.DocIDs(&args, &reply)
		case 1:
			var args DocMetaArgs
			if dec.Decode(&args) != nil {
				return
			}
			var reply DocMetaReply
			_ = svc.DocMeta(&args, &reply)
		case 2:
			var args TFArgs
			if dec.Decode(&args) != nil {
				return
			}
			var reply TFReply
			_ = svc.AnswerTF(&args, &reply)
		case 3:
			var args RTKArgs
			if dec.Decode(&args) != nil {
				return
			}
			var reply RTKReply
			_ = svc.AnswerRTK(&args, &reply)
		}
	})
}
