package federation

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csfltr/internal/textkit"
)

// FuzzHTTPEnvelope hardens the gateway's JSON envelope decoder: for any
// request body thrown at the TF/RTK POST routes the handler must not
// panic, must always answer with a JSON body, must echo the caller's
// X-Request-ID in error envelopes, and must only use the documented
// status codes.
func FuzzHTTPEnvelope(f *testing.F) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 7)
	if err != nil {
		f.Fatal(err)
	}
	a, _ := fed.Party("A")
	if err := a.IngestAll([]*textkit.Document{doc(0, 5, 5, 6), doc(1, 6, 7)}); err != nil {
		f.Fatal(err)
	}
	handler := HTTPHandler(fed.Server)

	f.Add(uint8(0), []byte(`{"doc_id":0,"cols":[1,2,3,4,5,6,7,8,9]}`))
	f.Add(uint8(1), []byte(`{"cols":[1,2,3,4,5,6,7,8,9]}`))
	f.Add(uint8(0), []byte(`{not json`))
	f.Add(uint8(1), []byte(``))
	f.Add(uint8(2), []byte(`{"doc_id":99,"cols":[]}`))
	f.Add(uint8(3), []byte(`{"cols":null}`))
	f.Add(uint8(0), []byte(`{"doc_id":1e309,"cols":[0]}`))
	f.Add(uint8(1), []byte(strings.Repeat(`[`, 10000)))

	routes := []string{
		"/v1/parties/A/body/tf",
		"/v1/parties/A/body/rtk",
		"/v1/parties/A/title/tf",
		"/v1/parties/nobody/body/rtk",
	}
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusConflict: true, http.StatusMethodNotAllowed: true,
		http.StatusInternalServerError: true,
	}

	f.Fuzz(func(t *testing.T, route uint8, body []byte) {
		path := routes[int(route)%len(routes)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("X-Request-ID", "fuzz-rid")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("%s: unexpected status %d for body %q", path, rec.Code, body)
		}
		if got := rec.Header().Get("X-Request-ID"); got != "fuzz-rid" {
			t.Fatalf("%s: request id not propagated: %q", path, got)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: non-JSON content type %q (status %d)", path, ct, rec.Code)
		}
		if rec.Code == http.StatusOK {
			var ok map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil {
				t.Fatalf("%s: 200 body is not JSON: %v", path, err)
			}
			return
		}
		var env struct {
			Error     string `json:"error"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: error body is not an envelope: %v (%q)", path, err, rec.Body.String())
		}
		if env.Error == "" {
			t.Fatalf("%s: error envelope with empty error (status %d)", path, rec.Code)
		}
		if env.RequestID != "fuzz-rid" {
			t.Fatalf("%s: envelope request id %q, want fuzz-rid", path, env.RequestID)
		}
	})
}
