package federation

import (
	"time"

	"csfltr/internal/core"
	"csfltr/internal/qcache"
)

// Federated answer cache (see internal/qcache and DESIGN.md §12).
//
// Two tiers of released noisy answers are cached:
//
//   - task tier: one party's RTK answer to one (querier, term) query —
//     the unit the degraded-mode stale-serve backfills from;
//   - query tier: a whole merged SearchResult — the unit a repeated hot
//     query replays bit-identically without any fan-out.
//
// Both are DP post-processing of answers that already left the owner,
// so a hit spends zero additional privacy budget (dp.Accountant
// records it as a replay instead).
//
// Keys never contain raw terms or party-private state: they are keyed
// hashes over the logical query identity (querier, answering party,
// term id, protocol parameters, ingest generation) under lanes derived
// from the federation hash seed. Ingestion bumps the owner generation,
// which is folded into every full key, so corpus changes invalidate
// cached answers without any explicit flush.

// Cache key domains. Search and batch task entries are kept apart even
// though they answer the same logical query: Search replays answers
// released to the federation's long-lived querier while BatchReverseTopK
// uses per-request seeded queriers, and mixing the two would break the
// warm-search bit-identity guarantee.
const (
	keyKindSearchTask uint64 = iota + 1
	keyKindSearchQuery
	keyKindBatchTask
)

// cachedTask is one cached (party, term) RTK answer: the recovered
// document estimates plus the communication cost the original exchange
// paid. Replays re-report the recorded cost so warm results stay
// bit-identical to the cold ones; the telemetry relay counters remain
// the ground truth for bytes actually moved.
type cachedTask struct {
	docs []core.DocCount
	cost core.Cost
}

// cachedTaskSize estimates the resident bytes of one task entry.
func cachedTaskSize(docs []core.DocCount) int64 {
	return 64 + 16*int64(len(docs))
}

// searchResultSize estimates the resident bytes of one merged result.
func searchResultSize(res *SearchResult) int64 {
	n := int64(96)
	n += 40 * int64(len(res.Hits))
	for i := range res.Parties {
		n += 96 + int64(len(res.Parties[i].Party)+len(res.Parties[i].Err))
	}
	return n
}

// cloneSearchResult deep-copies a cached result so callers can own
// their slices (cache entries and singleflight followers share the
// stored value).
func cloneSearchResult(res *SearchResult) *SearchResult {
	out := *res
	out.Hits = append([]SearchHit(nil), res.Hits...)
	out.Parties = append([]PartyReport(nil), res.Parties...)
	return &out
}

// cache returns the federation's answer cache, constructing it on first
// use, or nil when Params.CacheBytes is 0 — the cache-off configuration
// runs exactly the pre-cache code path.
func (f *Federation) cache() *qcache.Cache {
	if f.Params.CacheBytes <= 0 {
		return nil
	}
	f.cacheOnce.Do(func() {
		qc := qcache.New(f.Params.CacheBytes)
		f.flight = qcache.NewGroup(qc)
		f.keyer = qcache.NewKeyer(f.HashSeed)
		m := f.Server.metrics()
		m.reg.GaugeFunc(MetricCacheSizeBytes,
			"Resident bytes in the federated answer cache.",
			func() float64 { return float64(qc.Bytes()) })
		m.reg.GaugeFunc(MetricCacheEntries,
			"Live entries in the federated answer cache.",
			func() float64 { return float64(qc.Len()) })
		f.Server.setCacheStats(qc.Stats)
		f.qc = qc
	})
	return f.qc
}

// CacheStats returns the answer cache's counters (zero Stats when the
// cache is disabled).
func (f *Federation) CacheStats() qcache.Stats {
	c := f.cache()
	if c == nil {
		return qcache.Stats{}
	}
	return c.Stats()
}

// foldGens folds a backend's ingest generation vector into a key: the
// component count then every component. A sharded party contributes one
// component per shard, so a mutation invalidates only full keys bound
// to the owning shard's moved component; unsharded parties contribute
// the single scalar generation, reproducing the pre-shard keys' shape.
func foldGens(b *qcache.Builder, gens []uint64) *qcache.Builder {
	b.Int(len(gens))
	for _, g := range gens {
		b.U64(g)
	}
	return b
}

// taskKeys derives the full (generation-bound) and base (stale-lookup)
// keys of one search task answer. gens is the answering party's
// generation vector (nil for the generation-free base lookup).
func (f *Federation) taskKeys(from, party string, term uint64, gens []uint64) (full, base qcache.Key) {
	begin := func() *qcache.Builder {
		return f.keyer.Begin(keyKindSearchTask).
			String(from).String(party).Int(int(FieldBody)).
			U64(term).F64(f.Params.Epsilon).Int(f.Params.K)
	}
	return foldGens(begin(), gens).Key(), begin().Key()
}

// queryKeys derives the keys of a whole merged search. The full key
// binds every answering party's ingest generation, so any ingest
// anywhere invalidates the merged entry; terms are already deduplicated
// in first-seen order, which the key preserves (term order affects
// nothing downstream, but a canonical order costs a sort and first-seen
// is already canonical per caller).
func (f *Federation) queryKeys(from string, terms []uint64, k int) (full, base qcache.Key) {
	fb := f.keyer.Begin(keyKindSearchQuery).
		String(from).Int(k).F64(f.Params.Epsilon).Int(f.Params.MinParties)
	bb := f.keyer.Begin(keyKindSearchQuery).
		String(from).Int(k).F64(f.Params.Epsilon).Int(f.Params.MinParties)
	for _, t := range terms {
		fb.U64(t)
		bb.U64(t)
	}
	for _, p := range f.Parties {
		if p.Name == from {
			continue
		}
		foldGens(fb.String(p.Name), p.generations(FieldBody))
		bb.String(p.Name)
	}
	return fb.Key(), bb.Key()
}

// batchKeys derives the keys of one batch reverse top-K answer.
func (f *Federation) batchKeys(from string, req TopKRequest, gens []uint64) (full, base qcache.Key) {
	begin := func() *qcache.Builder {
		return f.keyer.Begin(keyKindBatchTask).
			String(from).String(req.To).Int(int(req.Field)).
			U64(req.Term).F64(f.Params.Epsilon).Int(req.K)
	}
	return foldGens(begin(), gens).Key(), begin().Key()
}

// staleBackfill tries to serve a lost party from recent cache entries:
// every one of the search's terms must have a base-key entry younger
// than Params.CacheMaxStale, or the party stays lost (a partially
// backfilled party would re-introduce the ranking's dependence on which
// queries happened to be cached — the same reason the live merge is
// all-or-nothing per party). Returns the per-term answers and the age
// of the oldest one. Serving from cache re-releases bytes that were
// already paid for when first fetched, so this is the zero-epsilon
// replay contract.
//
//csfltr:replay
func (f *Federation) staleBackfill(c *qcache.Cache, from, party string, terms []uint64) ([]cachedTask, time.Duration, bool) {
	out := make([]cachedTask, 0, len(terms))
	var oldest time.Duration
	for _, term := range terms {
		_, base := f.taskKeys(from, party, term, nil)
		v, age, ok := c.GetStale(base, f.Params.CacheMaxStale)
		if !ok {
			return nil, 0, false
		}
		if age > oldest {
			oldest = age
		}
		out = append(out, v.(cachedTask))
	}
	return out, oldest, true
}
