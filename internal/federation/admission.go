package federation

import (
	"sync/atomic"
	"time"

	"csfltr/internal/telemetry"
)

// Gateway admission control (see DESIGN.md §16).
//
// The /v1/search route runs a whole federated fan-out per request, so
// under sustained overload an unbounded gateway converts excess QPS
// into unbounded queueing — every request eventually answers, seconds
// late, and tail latency explodes. Admission control bounds the work
// the gateway accepts instead: at most MaxInFlight searches execute
// concurrently, at most MaxQueue more wait for a slot, and a waiter
// that cannot start within QueueTimeout is shed. Shed requests get an
// immediate 429 with a Retry-After hint, so under overload the gateway
// degrades to a bounded-latency service that answers what it can and
// refuses the rest quickly — never to a slow service that answers
// everything late.

// Admission metric families.
const (
	// MetricAdmissionShed counts requests refused by admission control,
	// labeled by reason ("queue_full": the wait queue was at capacity on
	// arrival; "deadline": the request queued but no slot freed within
	// QueueTimeout).
	MetricAdmissionShed = "csfltr_http_admission_shed_total"
	// MetricAdmissionQueueDepth is the number of requests currently
	// waiting for an execution slot.
	MetricAdmissionQueueDepth = "csfltr_http_admission_queue_depth"
	// MetricAdmissionInFlight is the number of admitted searches
	// currently executing.
	MetricAdmissionInFlight = "csfltr_http_admission_in_flight"
)

// Shed reason label values (bounded).
const (
	shedQueueFull = "queue_full"
	shedDeadline  = "deadline"
)

// Admission control defaults: a small execution bound (each search is
// itself a parallel fan-out), a queue a few times deeper, and a wait
// deadline well under a client timeout.
const (
	DefaultMaxInFlight  = 4
	DefaultMaxQueue     = 16
	DefaultQueueTimeout = 250 * time.Millisecond
	DefaultRetryAfter   = time.Second
)

// AdmissionConfig bounds the gateway's concurrent search work. Zero
// fields resolve to the defaults above.
type AdmissionConfig struct {
	// MaxInFlight is the number of searches executing concurrently.
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for a slot;
	// arrivals beyond it are shed immediately.
	MaxQueue int
	// QueueTimeout sheds a queued request that could not start in time.
	QueueTimeout time.Duration
	// RetryAfter is the Retry-After hint stamped on 429 responses.
	RetryAfter time.Duration
}

// withDefaults resolves zero fields.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// admission is the controller: a slot semaphore plus a bounded,
// deadline-shed wait queue, with its occupancy exported as gauges.
type admission struct {
	cfg    AdmissionConfig
	slots  chan struct{}
	queued atomic.Int64

	inFlight     *telemetry.Gauge
	queueDepth   *telemetry.Gauge
	shedFull     *telemetry.Counter
	shedDeadline *telemetry.Counter
}

// SetAdmission installs admission control on the gateway's search
// route. Call before serving traffic; calling again replaces the
// controller (occupancy restarts from zero).
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	cfg = cfg.withDefaults()
	reg := s.Metrics()
	a := &admission{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInFlight),
		inFlight: reg.Gauge(MetricAdmissionInFlight,
			"Admitted gateway searches currently executing."),
		queueDepth: reg.Gauge(MetricAdmissionQueueDepth,
			"Gateway search requests waiting for an execution slot."),
		shedFull: reg.Counter(MetricAdmissionShed,
			"Gateway search requests refused by admission control.",
			telemetry.L("reason", shedQueueFull)),
		shedDeadline: reg.Counter(MetricAdmissionShed,
			"Gateway search requests refused by admission control.",
			telemetry.L("reason", shedDeadline)),
	}
	s.admission.Store(a)
}

// Admission returns the installed config and whether admission control
// is active.
func (s *Server) Admission() (AdmissionConfig, bool) {
	a := s.admission.Load()
	if a == nil {
		return AdmissionConfig{}, false
	}
	return a.cfg, true
}

// admit tries to claim an execution slot, waiting in the bounded queue
// up to the deadline. On success it returns the release func; on shed
// it returns the bounded reason label (the shed counter is already
// incremented).
func (a *admission) admit() (release func(), ok bool, reason string) {
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Inc()
		return a.release, true, ""
	default:
	}
	if a.queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		a.shedFull.Inc()
		return nil, false, shedQueueFull
	}
	a.queueDepth.Inc()
	t := time.NewTimer(a.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.queueDepth.Dec()
		a.inFlight.Inc()
		return a.release, true, ""
	case <-t.C:
		a.queued.Add(-1)
		a.queueDepth.Dec()
		a.shedDeadline.Inc()
		return nil, false, shedDeadline
	}
}

// release frees the slot an admitted request held.
func (a *admission) release() {
	<-a.slots
	a.inFlight.Dec()
}

// gatewaySearcher is the federated-search entry point the /v1/search
// route calls — SearchTraced of the federation that attached itself via
// setSearcher.
type gatewaySearcher func(from string, terms []uint64, k int) (*SearchResult, string, error)

// setSearcher attaches a federation's search entry point to the
// gateway (done by the Federation constructors).
func (s *Server) setSearcher(fn gatewaySearcher) {
	s.searcher.Store(&fn)
}
