package federation

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

// cacheParams returns search parameters with the answer cache enabled
// and a real epsilon, so budget spending is observable.
func cacheParams() core.Params {
	p := testParams()
	p.Epsilon = 0.5
	p.CacheBytes = 1 << 20
	return p
}

// cacheFed builds the A/B/C search federation with caching enabled.
func cacheFed(t *testing.T, p core.Params) *Federation {
	t.Helper()
	fed, err := NewDeterministic([]string{"A", "B", "C"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	c, _ := fed.Party("C")
	mustIngest(t, b, 0, []textkit.TermID{10, 10, 10, 11, 11})
	mustIngest(t, b, 1, []textkit.TermID{99, 98})
	mustIngest(t, c, 0, []textkit.TermID{10, 10})
	mustIngest(t, c, 1, []textkit.TermID{11})
	return fed
}

// TestWarmSearchBitIdenticalZeroSpend is the tentpole acceptance test:
// repeating a search on a warm cache returns a bit-identical result and
// spends zero additional epsilon — the replays are recorded with the
// accountant instead.
func TestWarmSearchBitIdenticalZeroSpend(t *testing.T) {
	fed := cacheFed(t, cacheParams())
	terms := []uint64{10, 11}
	a, _ := fed.Party("A")

	cold, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	spentB, spentC := a.Accountant().Spent("B"), a.Accountant().Spent("C")
	if spentB != 1.0 || spentC != 1.0 { // 2 terms x eps 0.5
		t.Fatalf("cold spend B=%v C=%v, want 1.0 each", spentB, spentC)
	}

	warm, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm result differs from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if got := a.Accountant().Spent("B"); got != spentB {
		t.Fatalf("warm search spent budget against B: %v -> %v", spentB, got)
	}
	if got := a.Accountant().Spent("C"); got != spentC {
		t.Fatalf("warm search spent budget against C: %v -> %v", spentC, got)
	}
	if got := a.Accountant().Replays("B"); got != int64(len(terms)) {
		t.Fatalf("Replays(B) = %d, want %d", got, len(terms))
	}
	st := fed.CacheStats()
	if st.Hits == 0 || st.Stores == 0 {
		t.Fatalf("cache never used: %+v", st)
	}
	// A third run still replays the same bytes.
	again, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Fatal("third search diverged")
	}
}

// TestWarmResultIsCallerOwned: mutating a replayed result must not
// corrupt the cache entry behind it.
func TestWarmResultIsCallerOwned(t *testing.T) {
	fed := cacheFed(t, cacheParams())
	terms := []uint64{10, 11}
	if _, err := fed.Search("A", terms, 3); err != nil {
		t.Fatal(err)
	}
	warm, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Hits {
		warm.Hits[i].Score = -1
	}
	warm.Parties[0].Outcome = "corrupted"
	next, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range next.Hits {
		if h.Score == -1 {
			t.Fatal("caller mutation leaked into the cache")
		}
	}
	if next.Parties[0].Outcome == "corrupted" {
		t.Fatal("caller mutation leaked into the cached party report")
	}
}

// TestIngestInvalidatesCache: ingesting into one party bumps its
// generation, which must force fresh queries to that party while the
// untouched party's answers keep replaying from the task tier.
func TestIngestInvalidatesCache(t *testing.T) {
	fed := cacheFed(t, cacheParams())
	terms := []uint64{10, 11}
	a, _ := fed.Party("A")
	b, _ := fed.Party("B")

	if _, err := fed.Search("A", terms, 3); err != nil {
		t.Fatal(err)
	}
	spentB, spentC := a.Accountant().Spent("B"), a.Accountant().Spent("C")
	genBefore := b.Owner(FieldBody).Generation()
	mustIngest(t, b, 7, []textkit.TermID{10, 42})
	if got := b.Owner(FieldBody).Generation(); got <= genBefore {
		t.Fatalf("ingest did not bump generation: %d -> %d", genBefore, got)
	}

	res, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Accountant().Spent("B"); got != spentB+1.0 {
		t.Fatalf("post-ingest search must re-query B: spent %v -> %v", spentB, got)
	}
	if got := a.Accountant().Spent("C"); got != spentC {
		t.Fatalf("post-ingest search re-queried untouched C: spent %v -> %v", spentC, got)
	}
	for _, rep := range res.Parties {
		switch rep.Party {
		case "B":
			if rep.Cached != 0 || rep.Queries != len(terms) {
				t.Fatalf("B after ingest: %+v, want all fresh", rep)
			}
		case "C":
			if rep.Cached != len(terms) || rep.Queries != 0 {
				t.Fatalf("C after ingest: %+v, want all replayed", rep)
			}
		}
	}
}

// TestConcurrentIdenticalSearchesCoalesce: N concurrent identical
// searches must perform exactly one fan-out's worth of budget spend and
// return identical results — either absorbed into the leader's flight
// or replayed from the entry the leader stored.
func TestConcurrentIdenticalSearchesCoalesce(t *testing.T) {
	fed := cacheFed(t, cacheParams())
	// A WAN-ish link keeps the leader's fan-out in flight long enough
	// for the followers to pile in.
	fed.Server.SetPartyLink("B", 10*time.Millisecond)
	fed.Server.SetPartyLink("C", 10*time.Millisecond)
	terms := []uint64{10, 11}
	a, _ := fed.Party("A")

	const n = 8
	var wg sync.WaitGroup
	results := make([]*SearchResult, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = fed.Search("A", terms, 3)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("search %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("result %d differs from result 0", i)
		}
	}
	// Exactly one fan-out spent budget: 2 terms x eps 0.5 per party.
	if got := a.Accountant().Spent("B"); got != 1.0 {
		t.Fatalf("spent(B) = %v after %d concurrent searches, want 1.0", got, n)
	}
	if got := a.Accountant().Spent("C"); got != 1.0 {
		t.Fatalf("spent(C) = %v, want 1.0", got)
	}
	st := fed.CacheStats()
	if st.Coalesced+st.Hits < n-1 {
		t.Fatalf("only %d of %d duplicates were absorbed: %+v", st.Coalesced+st.Hits, n-1, st)
	}
}

// TestStaleServeBackfillsLostParty: with stale-serve enabled, a party
// whose fresh queries fail is backfilled from its last released answers
// instead of being dropped — the report says stale, the result is not
// Partial, and the merged ranking still covers the party.
func TestStaleServeBackfillsLostParty(t *testing.T) {
	p := cacheParams()
	p.MinParties = 1
	p.CacheMaxStale = time.Hour
	fed := cacheFed(t, p)
	terms := []uint64{10, 11}

	if _, err := fed.Search("A", terms, 3); err != nil {
		t.Fatal(err)
	}
	// Invalidate B's fresh entries (ingest) and take B down: the new
	// generation forces live queries, which fail, and the pre-ingest
	// answers become the stale backfill.
	b, _ := fed.Party("B")
	mustIngest(t, b, 7, []textkit.TermID{10})
	in := chaos.New(1)
	in.SetProfile("B", chaos.Profile{Down: true})
	fed.Server.SetChaos(in)

	res, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatalf("stale-serve search failed: %v", err)
	}
	if res.Partial {
		t.Fatal("backfilled search reported Partial")
	}
	var bRep *PartyReport
	for i := range res.Parties {
		if res.Parties[i].Party == "B" {
			bRep = &res.Parties[i]
		}
	}
	if bRep == nil || bRep.Outcome != OutcomeStale {
		t.Fatalf("B report = %+v, want stale", bRep)
	}
	if bRep.Cached != len(terms) {
		t.Fatalf("B backfilled %d terms, want %d", bRep.Cached, len(terms))
	}
	covered := false
	for _, h := range res.Hits {
		if h.Party == "B" {
			covered = true
		}
	}
	if !covered {
		t.Fatal("stale-served party missing from the merged ranking")
	}
	if st := fed.CacheStats(); st.StaleHits == 0 {
		t.Fatalf("no stale hits recorded: %+v", st)
	}
}

// TestStaleServeRespectsMaxStale: an entry older than CacheMaxStale
// must not be served; the party is dropped and the result is Partial.
func TestStaleServeRespectsMaxStale(t *testing.T) {
	p := cacheParams()
	p.MinParties = 1
	p.CacheMaxStale = time.Nanosecond
	fed := cacheFed(t, p)
	terms := []uint64{10, 11}
	if _, err := fed.Search("A", terms, 3); err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	mustIngest(t, b, 7, []textkit.TermID{10})
	in := chaos.New(1)
	in.SetProfile("B", chaos.Profile{Down: true})
	fed.Server.SetChaos(in)
	time.Sleep(time.Millisecond) // age past the 1ns bound

	res, err := fed.Search("A", terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expired entries still served: result not Partial")
	}
	for _, rep := range res.Parties {
		if rep.Party == "B" && rep.Outcome == OutcomeStale {
			t.Fatal("B served past CacheMaxStale")
		}
	}
}

// TestCacheDisabledUnchanged: CacheBytes=0 keeps the uncached path —
// repeated searches spend budget every time and no cache metrics move.
func TestCacheDisabledUnchanged(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	fed := cacheFed(t, p)
	a, _ := fed.Party("A")
	for i := 0; i < 2; i++ {
		if _, err := fed.Search("A", []uint64{10, 11}, 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Accountant().Spent("B"); got != 2.0 {
		t.Fatalf("uncached spend = %v, want 2.0", got)
	}
	if _, ok := fed.Server.CacheStats(); ok {
		t.Fatal("cache attached despite CacheBytes=0")
	}
}

// TestBudgetGaugeExported: a search registers per-(querier, peer)
// remaining-budget gauges whose callback tracks the accountant.
func TestBudgetGaugeExported(t *testing.T) {
	p := cacheParams()
	fed, err := NewDeterministic([]string{"A", "B"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Re-register the querier with a concrete budget so Remaining is
	// finite.
	a, err := NewParty("Q", PartyConfig{Params: p, Seed: 42, RNGSeed: 1, Budget: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.Server.Register(a); err != nil {
		t.Fatal(err)
	}
	fed.Parties = append(fed.Parties, a)
	b, _ := fed.Party("B")
	mustIngest(t, b, 0, []textkit.TermID{10, 11})

	if _, err := fed.Search("Q", []uint64{10, 11}, 3); err != nil {
		t.Fatal(err)
	}
	snap := fed.Server.Metrics().Snapshot()
	ms := snap.Metric(MetricBudgetRemaining)
	if ms == nil {
		t.Fatalf("%s not exported", MetricBudgetRemaining)
	}
	found := false
	for _, s := range ms.Series {
		if s.Labels["party"] == "Q" && s.Labels["peer"] == "B" {
			found = true
			if s.Value != 1.0 { // 2.0 budget - 2 queries x 0.5
				t.Fatalf("remaining budget gauge = %v, want 1.0", s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no (Q, B) series in %+v", ms.Series)
	}
	// The callback stays current: a warm replay spends nothing.
	if _, err := fed.Search("Q", []uint64{10, 11}, 3); err != nil {
		t.Fatal(err)
	}
	snap = fed.Server.Metrics().Snapshot()
	for _, s := range snap.Metric(MetricBudgetRemaining).Series {
		if s.Labels["party"] == "Q" && s.Labels["peer"] == "B" && s.Value != 1.0 {
			t.Fatalf("replay moved the budget gauge to %v", s.Value)
		}
	}
}

// TestCacheHTTPRoute: /v1/cache serves the counters as JSON once the
// cache exists and 404s when it is disabled.
func TestCacheHTTPRoute(t *testing.T) {
	off := cacheFed(t, testParams())
	h := HTTPHandler(off.Server)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/cache", nil))
	if rec.Code != 404 {
		t.Fatalf("cache-off /v1/cache = %d, want 404", rec.Code)
	}

	fed := cacheFed(t, cacheParams())
	if _, err := fed.Search("A", []uint64{10, 11}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Search("A", []uint64{10, 11}, 3); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	HTTPHandler(fed.Server).ServeHTTP(rec, httptest.NewRequest("GET", "/v1/cache", nil))
	if rec.Code != 200 {
		t.Fatalf("/v1/cache = %d, want 200", rec.Code)
	}
	var stats struct {
		Hits   int64 `json:"hits"`
		Stores int64 `json:"stores"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("bad /v1/cache body: %v", err)
	}
	if stats.Stores == 0 || stats.Hits == 0 {
		t.Fatalf("counters empty: %+v", stats)
	}
}

// TestBatchCacheReplays: repeated RTK batch requests to a local party
// replay from the cache with zero additional spend.
func TestBatchCacheReplays(t *testing.T) {
	fed := cacheFed(t, cacheParams())
	a, _ := fed.Party("A")
	reqs := []TopKRequest{{To: "B", Field: FieldBody, Term: 10, K: 3}}
	first, err := fed.BatchReverseTopK("A", reqs, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}
	spent := a.Accountant().Spent("B")
	second, err := fed.BatchReverseTopK("A", reqs, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Err != nil {
		t.Fatal(second[0].Err)
	}
	if got := a.Accountant().Spent("B"); got != spent {
		t.Fatalf("batch replay spent budget: %v -> %v", spent, got)
	}
	if !reflect.DeepEqual(first[0].Docs, second[0].Docs) {
		t.Fatal("batch replay returned different docs")
	}
	if a.Accountant().Replays("B") == 0 {
		t.Fatal("batch replay not recorded with the accountant")
	}
}

// BenchmarkSearchColdCache measures the uncached fan-out under a
// simulated WAN link — the baseline the warm path is compared against.
func BenchmarkSearchColdCache(b *testing.B) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, benchCacheParams(0), 42, 7)
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, fed)
	fed.Server.SetPartyLink("B", 2*time.Millisecond)
	fed.Server.SetPartyLink("C", 2*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Search("A", []uint64{10, 11}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchWarmCache measures the replay path: everything after
// the first iteration is a query-tier hit.
func BenchmarkSearchWarmCache(b *testing.B) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, benchCacheParams(1<<20), 42, 7)
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, fed)
	fed.Server.SetPartyLink("B", 2*time.Millisecond)
	fed.Server.SetPartyLink("C", 2*time.Millisecond)
	if _, err := fed.Search("A", []uint64{10, 11}, 3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Search("A", []uint64{10, 11}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCacheParams(cacheBytes int64) core.Params {
	p := core.DefaultParams()
	p.W = 512
	p.Z = 9
	p.Z1 = 5
	p.Epsilon = 0.5
	p.K = 5
	p.CacheBytes = cacheBytes
	return p
}

func benchIngest(b *testing.B, fed *Federation) {
	b.Helper()
	for _, name := range []string{"B", "C"} {
		p, _ := fed.Party(name)
		if err := p.IngestDocument(textkit.NewDocument(0, -1, nil,
			[]textkit.TermID{10, 10, 11})); err != nil {
			b.Fatal(err)
		}
	}
}
