package federation

import (
	"errors"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/resilience"
)

// SetResiliencePolicy installs the retry/deadline/breaker policy used
// by federated fan-outs from this federation. Call it before serving
// queries: existing breakers keep the policy they were created with.
// The zero value of a Federation uses resilience.DefaultPolicy with the
// federation's permanent-error classifier.
func (f *Federation) SetResiliencePolicy(p resilience.Policy) {
	f.resMu.Lock()
	defer f.resMu.Unlock()
	if p.Retryable == nil {
		p.Retryable = Retryable
	}
	f.policy = &p
}

// ResiliencePolicy returns the effective policy.
func (f *Federation) ResiliencePolicy() resilience.Policy {
	f.resMu.Lock()
	defer f.resMu.Unlock()
	return f.policyLocked()
}

// policyLocked resolves the policy default; callers hold resMu.
func (f *Federation) policyLocked() resilience.Policy {
	if f.policy == nil {
		p := resilience.DefaultPolicy()
		p.Retryable = Retryable
		f.policy = &p
	}
	return *f.policy
}

// breakerFor returns (creating on first use) the circuit breaker
// guarding calls to one party, wired to publish its state into the
// breaker-state gauge (0 closed, 1 half-open, 2 open).
func (f *Federation) breakerFor(party string) *resilience.Breaker {
	f.resMu.Lock()
	defer f.resMu.Unlock()
	if f.breakers == nil {
		f.breakers = make(map[string]*resilience.Breaker)
	}
	b, ok := f.breakers[party]
	if !ok {
		b = resilience.NewBreaker(f.policyLocked())
		g := f.Server.metrics().breakerGauge(party)
		g.Set(float64(resilience.Closed))
		b.OnChange(func(s resilience.State) { g.Set(float64(s)) })
		f.breakers[party] = b
	}
	return b
}

// BreakerState reports the breaker position for one party (Closed if no
// call has created the breaker yet).
func (f *Federation) BreakerState(party string) resilience.State {
	f.resMu.Lock()
	b := f.breakers[party]
	f.resMu.Unlock()
	if b == nil {
		return resilience.Closed
	}
	return b.State()
}

// Retryable is the federation's default retry classifier: protocol
// errors that can never succeed — malformed queries, unknown documents
// or parties, exhausted privacy budget — are permanent; everything else
// (injected faults, transport errors, deadline overruns) is worth
// retrying.
func Retryable(err error) bool {
	for _, permanent := range []error{
		core.ErrBadParams,
		core.ErrBadQuery,
		core.ErrUnknownDoc,
		core.ErrNoSketches,
		dp.ErrBudgetExceeded,
		ErrUnknownParty,
		ErrUnknownField,
		ErrSelfQuery,
	} {
		if errors.Is(err, permanent) {
			return false
		}
	}
	return true
}

// callSeed derives the deterministic backoff-jitter seed for one
// logical call from the federation hash seed and the task identity, so
// retry pacing is reproducible for a fixed federation and query
// sequence.
func (f *Federation) callSeed(party string, term uint64) uint64 {
	h := f.HashSeed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(party); i++ {
		h ^= uint64(party[i])
		h *= 0x100000001b3
	}
	return h ^ term
}
