package federation

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/telemetry"
)

// Flight recorder: a bounded append-only ledger of per-query audit
// records, paired with the registry's trace store (see DESIGN.md §13).
// One record per federated query answers, after the fact, the questions
// the paper's headline metrics raise per query: how much privacy budget
// each peer was charged, how many bytes moved over which transport, what
// was replayed for free, and how degraded the answer was.
//
// Privacy contract: records carry term *counts* and keyed term hashes
// only — never raw terms, documents or anything marked //csfltr:private.

// Audit outcome values (bounded vocabulary).
const (
	AuditOK            = "ok"             // full roster answered freshly
	AuditPartial       = "partial"        // degraded: some parties missing
	AuditQuorumLost    = "quorum_lost"    // fewer than MinParties answered
	AuditBudgetRefused = "budget_refused" // aborted by the accountant
	AuditError         = "error"          // failed for any other reason
	AuditReplay        = "replay"         // served from the query-tier cache
	AuditCoalesced     = "coalesced"      // absorbed into an in-flight twin
)

// AuditParty is one data party's row in an audit record.
type AuditParty struct {
	Party     string `json:"party"`
	Transport string `json:"transport,omitempty"`
	// Outcome is the per-party search outcome vocabulary (OutcomeOK,
	// OutcomeFailed, OutcomeSkipped, OutcomeStale) or AuditReplay when
	// the whole query replayed from the cache.
	Outcome string `json:"outcome"`
	// Queries counts privacy-budget spends against this party — exactly
	// the accountant's Spend calls, including spends whose query later
	// failed (budget is charged before dispatch).
	Queries int `json:"queries"`
	// Cached counts zero-spend replays served for this party.
	Cached  int `json:"cached"`
	Retries int `json:"retries"`
	// Epsilon is the privacy budget this query charged against the
	// party: Queries × the per-query epsilon. Replays contribute zero.
	Epsilon       float64 `json:"epsilon"`
	Bytes         int64   `json:"bytes"`
	Messages      int64   `json:"messages"`
	StaleForNanos int64   `json:"stale_for_nanos,omitempty"`
	Err           string  `json:"error,omitempty"`
}

// AuditStage is the wall-clock spent in one pipeline stage.
type AuditStage struct {
	Stage         string `json:"stage"`
	DurationNanos int64  `json:"duration_nanos"`
}

// AuditRecord is one federated query in the flight recorder.
type AuditRecord struct {
	TraceID string `json:"trace_id,omitempty"`
	// Op is "search" or "batch".
	Op      string `json:"op"`
	Querier string `json:"querier"`
	// Terms is the number of deduplicated query terms (count only — the
	// terms themselves never enter the record).
	Terms         int    `json:"terms"`
	K             int    `json:"k,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	Outcome       string `json:"outcome"`
	Partial       bool   `json:"partial,omitempty"`
	// EpsilonSpent is the total privacy budget the query charged, summed
	// over parties.
	EpsilonSpent float64      `json:"epsilon_spent"`
	Bytes        int64        `json:"bytes"`
	Messages     int64        `json:"messages"`
	Parties      []AuditParty `json:"parties,omitempty"`
	Stages       []AuditStage `json:"stages,omitempty"`
	Err          string       `json:"error,omitempty"`
}

// auditLog is the bounded append-only ring of audit records.
type auditLog struct {
	mu   sync.Mutex
	buf  []AuditRecord
	next int
	full bool
}

func newAuditLog(capacity int) *auditLog {
	return &auditLog{buf: make([]AuditRecord, capacity)}
}

func (l *auditLog) append(rec AuditRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = rec
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

func (l *auditLog) records() []AuditRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]AuditRecord(nil), l.buf[:l.next]...)
	}
	out := make([]AuditRecord, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

func (l *auditLog) byTrace(id string) (AuditRecord, bool) {
	if id == "" {
		return AuditRecord{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Newest match wins; scan backwards through the ring.
	n := len(l.buf)
	if !l.full {
		n = l.next
	}
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		if l.buf[idx].TraceID == id {
			return l.buf[idx], true
		}
	}
	return AuditRecord{}, false
}

// TraceConfig configures the flight recorder (Server.EnableTracing).
// The zero value selects every default.
type TraceConfig struct {
	// MaxTraces bounds retained traces (default 256, oldest evicted).
	MaxTraces int
	// MaxSpansPerTrace bounds each trace's spans (default 512).
	MaxSpansPerTrace int
	// AuditCapacity sizes the audit ring (default 1024).
	AuditCapacity int
	// EventCapacity, when positive, also enables the registry's
	// structured event log at that capacity.
	EventCapacity int
	// SlowLogCapacity sizes the slow-query log (default 64).
	SlowLogCapacity int
	// SlowFloor is an explicit slow-query threshold; zero means adaptive
	// (a span is slow when it reaches its histogram's p99 bound).
	SlowFloor time.Duration
}

// EnableTracing turns on the tracing substrate end to end: the
// registry's trace store, slow-query log (and optionally event log), and
// the server's per-query audit ledger. Searches run after this call
// produce one trace tree each, retrievable via Server.TraceTree /
// GET /v1/trace/{id}, plus one audit record via Server.AuditRecords /
// GET /v1/audit. Enabling is idempotent; there is no disable switch —
// construct a fresh server to trace-free state.
func (s *Server) EnableTracing(cfg TraceConfig) {
	reg := s.Metrics()
	reg.EnableTracing(cfg.MaxTraces, cfg.MaxSpansPerTrace)
	if cfg.EventCapacity > 0 {
		reg.EnableEvents(cfg.EventCapacity)
	}
	slowCap := cfg.SlowLogCapacity
	if slowCap <= 0 {
		slowCap = 64
	}
	reg.EnableSlowLog(slowCap, cfg.SlowFloor)
	auditCap := cfg.AuditCapacity
	if auditCap <= 0 {
		auditCap = 1024
	}
	if s.audit.Load() == nil {
		s.audit.CompareAndSwap(nil, newAuditLog(auditCap))
	}
}

// TracingEnabled reports whether the flight recorder is on.
func (s *Server) TracingEnabled() bool { return s.audit.Load() != nil }

// AuditRecords returns the retained audit records, oldest first.
func (s *Server) AuditRecords() []AuditRecord {
	l := s.audit.Load()
	if l == nil {
		return nil
	}
	return l.records()
}

// AuditFor returns the audit record of one trace.
func (s *Server) AuditFor(traceID string) (AuditRecord, bool) {
	l := s.audit.Load()
	if l == nil {
		return AuditRecord{}, false
	}
	return l.byTrace(traceID)
}

// TraceTree returns the retained spans of one trace, ordered parents
// before children (see telemetry.SortSpans).
func (s *Server) TraceTree(id string) ([]telemetry.SpanRecord, bool) {
	spans, ok := s.Metrics().Trace(id)
	if ok {
		telemetry.SortSpans(spans)
	}
	return spans, ok
}

// auditAppend commits one record to the ledger (no-op when off).
func (s *Server) auditAppend(rec AuditRecord) {
	if l := s.audit.Load(); l != nil {
		l.append(rec)
	}
}

// transportFor names the transport behind one roster entry ("" for an
// unknown party).
func (s *Server) transportFor(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.parties[name]; ok {
		return e.transport()
	}
	return ""
}

// TermHash is the privacy-safe identity of a query term in span
// attributes, audit records and logs: a keyed hash under the federation
// hash seed, stable within the federation and meaningless outside it.
// Raw term IDs never appear in telemetry.
func (f *Federation) TermHash(term uint64) string {
	h := f.HashSeed ^ 0x9e3779b97f4a7c15
	h ^= term
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return strconv.FormatUint(h, 16)
}

// searchRun threads per-query trace and audit state from Search through
// the cache and fan-out layers.
type searchRun struct {
	parent telemetry.SpanContext // root search span (invalid when untraced)
	audit  bool                  // flight recorder on
	terms  int                   // deduplicated term count

	mu       sync.Mutex
	outcome  string               // AuditReplay / AuditCoalesced override
	stages   []AuditStage         // stage wall-clock in execution order
	costs    map[string]core.Cost // per-party wire cost
	refused  []PartyReport        // roster state at a budget refusal
	replayed []string             // parties of a query-tier replay
}

// addStage records one stage's wall-clock (audit only).
func (r *searchRun) addStage(stage string, d time.Duration) {
	if r == nil || !r.audit {
		return
	}
	r.mu.Lock()
	r.stages = append(r.stages, AuditStage{Stage: stage, DurationNanos: int64(d)})
	r.mu.Unlock()
}

// addCost attributes one task's wire cost to a party (audit only).
func (r *searchRun) addCost(party string, c core.Cost) {
	if r == nil || !r.audit {
		return
	}
	r.mu.Lock()
	if r.costs == nil {
		r.costs = make(map[string]core.Cost)
	}
	cur := r.costs[party]
	cur.Add(c)
	r.costs[party] = cur
	r.mu.Unlock()
}

// commitSearchAudit turns one finished search into its audit record.
func (f *Federation) commitSearchAudit(run *searchRun, from string, k int,
	start time.Time, d time.Duration, res *SearchResult, err error) {
	if run == nil || !run.audit {
		return
	}
	eps := f.Params.Epsilon
	rec := AuditRecord{
		TraceID:       run.parent.TraceID,
		Op:            "search",
		Querier:       from,
		Terms:         run.terms,
		K:             k,
		StartUnixNano: start.UnixNano(),
		DurationNanos: int64(d),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	addParty := func(p AuditParty) {
		rec.EpsilonSpent += p.Epsilon
		rec.Bytes += p.Bytes
		rec.Messages += p.Messages
		rec.Parties = append(rec.Parties, p)
	}
	fromReport := func(rep PartyReport) AuditParty {
		c := run.costs[rep.Party]
		return AuditParty{
			Party:         rep.Party,
			Transport:     f.Server.transportFor(rep.Party),
			Outcome:       rep.Outcome,
			Queries:       rep.Queries,
			Cached:        rep.Cached,
			Retries:       rep.Retries,
			Epsilon:       float64(rep.Queries) * eps,
			Bytes:         c.BytesSent + c.BytesReceived,
			Messages:      int64(c.Messages),
			StaleForNanos: int64(rep.StaleFor),
			Err:           rep.Err,
		}
	}
	switch {
	case run.outcome == AuditCoalesced:
		// The leader's record owns the fan-out's budget and bytes; the
		// absorbed caller charges nothing.
		rec.Outcome = AuditCoalesced
	case run.outcome == AuditReplay:
		// Whole-query cache replay: every party served at zero spend. The
		// cached result's reports describe the original fan-out, so the
		// replay builds fresh zero-epsilon rows instead.
		rec.Outcome = AuditReplay
		for _, party := range run.replayed {
			addParty(AuditParty{
				Party:     party,
				Transport: f.Server.transportFor(party),
				Outcome:   AuditReplay,
				Cached:    run.terms,
			})
		}
	case errors.Is(err, dp.ErrBudgetExceeded):
		// The roster loop aborted mid-enumeration: earlier parties' spends
		// (and the refusing party's partial spend) already happened and
		// must stay on the books.
		rec.Outcome = AuditBudgetRefused
		for _, rep := range run.refused {
			addParty(fromReport(rep))
		}
	case res == nil:
		rec.Outcome = AuditError
	default:
		switch {
		case errors.Is(err, ErrQuorum):
			rec.Outcome = AuditQuorumLost
		case err != nil:
			rec.Outcome = AuditError
		case res.Partial:
			rec.Outcome = AuditPartial
		default:
			rec.Outcome = AuditOK
		}
		rec.Partial = res.Partial
		for _, rep := range res.Parties {
			addParty(fromReport(rep))
		}
	}
	rec.Stages = run.stages
	f.Server.auditAppend(rec)
}
