package federation

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/resilience"
	"csfltr/internal/textkit"
)

// chaosSearchParams: sequential fan-out (DP noise draw order is
// scheduling-dependent under concurrency, and this suite asserts
// bit-identical replays WITH a live epsilon), degraded mode with a
// 2-party quorum.
func chaosSearchParams() core.Params {
	p := testParams()
	p.Epsilon = 0.5
	p.MinParties = 2
	p.Parallelism = 1
	return p
}

// fastPolicy is the suite's retry policy: two attempts, no real sleeps,
// breaker trips after 3 consecutive failures and stays open.
func fastPolicy() resilience.Policy {
	p := resilience.DefaultPolicy()
	p.MaxAttempts = 2
	p.BaseBackoff = time.Microsecond
	p.MaxBackoff = 10 * time.Microsecond
	p.CallTimeout = 30 * time.Second
	p.FailureThreshold = 3
	p.OpenTimeout = time.Hour // stays open for the whole test
	return p
}

// chaosFedUnderTest builds the acceptance federation: querier Q plus
// three data parties, P0 hard-down and P1 at a 30% injected error rate,
// all decisions derived from one chaos seed.
func chaosFedUnderTest(t *testing.T, params core.Params, chaosSeed uint64) *Federation {
	t.Helper()
	fed, err := NewDeterministic([]string{"Q", "P0", "P1", "P2"}, params, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range fed.Parties[1:] {
		rng := rand.New(rand.NewSource(int64(pi) + 1))
		for id := 0; id < 30; id++ {
			body := make([]textkit.TermID, 20)
			for j := range body {
				body[j] = textkit.TermID(rng.Intn(200))
			}
			if err := p.IngestDocument(textkit.NewDocument(id, -1, nil, body)); err != nil {
				t.Fatal(err)
			}
		}
	}
	in := chaos.New(chaosSeed)
	in.SetProfile("P0", chaos.Profile{Down: true})
	in.SetProfile("P1", chaos.Profile{ErrorRate: 0.3})
	fed.Server.SetChaos(in)
	fed.SetResiliencePolicy(fastPolicy())
	return fed
}

// reportString flattens a per-party report for comparison.
func reportString(reps []PartyReport) string {
	var b strings.Builder
	for _, r := range reps {
		fmt.Fprintf(&b, "%s=%s(q=%d,r=%d);", r.Party, r.Outcome, r.Queries, r.Retries)
	}
	return b.String()
}

// TestDegradedSearchSeededChaos is the PR's acceptance test: with one
// party hard-down and one at a 30% error rate, a quorum-policy search
// returns a Partial result ranked identically across two runs with the
// same seed; the dead party's failures trip its breaker so a second
// search skips it, spending zero DP budget on queries never sent; and
// the open breaker is observable via /v1/metrics.
func TestDegradedSearchSeededChaos(t *testing.T) {
	terms := []uint64{5, 42, 133}
	run := func() (*Federation, *SearchResult) {
		// Seed 130 realizes the interesting regime: P1's 30% error rate
		// bites (retries happen) but retries save every P1 query.
		fed := chaosFedUnderTest(t, chaosSearchParams(), 130)
		res, err := fed.Search("Q", terms, 5)
		if err != nil {
			t.Fatalf("degraded search failed outright: %v", err)
		}
		return fed, res
	}
	fed, res := run()
	if !res.Partial {
		t.Fatal("result with a hard-down party is not Partial")
	}
	if len(res.Hits) == 0 {
		t.Fatal("degenerate test: no hits from surviving parties")
	}
	byParty := map[string]PartyReport{}
	for _, rep := range res.Parties {
		byParty[rep.Party] = rep
	}
	if byParty["P0"].Outcome != OutcomeFailed {
		t.Fatalf("P0 outcome %+v, want failed", byParty["P0"])
	}
	if byParty["P2"].Outcome != OutcomeOK {
		t.Fatalf("P2 outcome %+v, want ok", byParty["P2"])
	}
	if byParty["P0"].Retries == 0 {
		t.Fatal("down party recorded no retries")
	}
	if byParty["P1"].Outcome != OutcomeOK || byParty["P1"].Retries == 0 {
		t.Fatalf("P1 report %+v, want ok with retries (seed 130 regime)", byParty["P1"])
	}
	for _, hit := range res.Hits {
		if hit.Party == "P0" {
			t.Fatalf("hit %+v from the dead party", hit)
		}
	}

	// Bit-identical replay: a second federation with the same seeds must
	// reproduce the ranking AND the per-party outcome report exactly.
	_, res2 := run()
	if len(res2.Hits) != len(res.Hits) {
		t.Fatalf("replay: %d hits vs %d", len(res2.Hits), len(res.Hits))
	}
	for i := range res.Hits {
		if res.Hits[i] != res2.Hits[i] {
			t.Fatalf("replay hit %d: %+v vs %+v", i, res2.Hits[i], res.Hits[i])
		}
	}
	if a, b := reportString(res.Parties), reportString(res2.Parties); a != b {
		t.Fatalf("replay party report differs:\n  %s\n  %s", b, a)
	}

	// P0's three failed queries tripped its breaker (threshold 3).
	if st := fed.BreakerState("P0"); st != resilience.Open {
		t.Fatalf("P0 breaker state %v after failed search, want Open", st)
	}

	// Second search on the same federation: P0 is skipped before any
	// budget is spent on it.
	src, _ := fed.Party("Q")
	spentP0 := src.Accountant().Spent("P0")
	spentP2 := src.Accountant().Spent("P2")
	res3, err := fed.Search("Q", terms, 5)
	if err != nil {
		t.Fatalf("second search: %v", err)
	}
	byParty3 := map[string]PartyReport{}
	for _, rep := range res3.Parties {
		byParty3[rep.Party] = rep
	}
	if byParty3["P0"].Outcome != OutcomeSkipped || byParty3["P0"].Queries != 0 {
		t.Fatalf("P0 second-search report %+v, want skipped with 0 queries", byParty3["P0"])
	}
	if got := src.Accountant().Spent("P0"); got != spentP0 {
		t.Fatalf("budget spent on a skipped party: %v -> %v", spentP0, got)
	}
	if got := src.Accountant().Spent("P2"); got <= spentP2 {
		t.Fatalf("no budget spent on a live party: %v -> %v", spentP2, got)
	}

	// The open breaker is observable through the metrics route.
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := MetricBreakerState + `{party="P0"} 2`
	if !strings.Contains(string(body), want) {
		t.Fatalf("/v1/metrics does not expose the open breaker: want line %q in:\n%s", want, body)
	}
	if !strings.Contains(string(body), MetricInjectedFaults) {
		t.Fatal("/v1/metrics does not expose injected fault counters")
	}
	if !strings.Contains(string(body), MetricDegradedSearches) {
		t.Fatal("/v1/metrics does not expose the degraded-search counter")
	}
}

// TestChaosSearchDeterministicAcrossPools: fault decisions are keyed on
// call content, not arrival order, so a faulty search must return the
// same ranking and outcomes at every pool size (epsilon 0 — DP noise
// draw order IS scheduling-dependent, which is exactly why the
// acceptance test above pins Parallelism=1 instead).
func TestChaosSearchDeterministicAcrossPools(t *testing.T) {
	terms := []uint64{5, 42, 133, 77}
	build := func(workers int) *Federation {
		p := chaosSearchParams()
		p.Epsilon = 0
		p.Parallelism = workers
		return chaosFedUnderTest(t, p, 9001)
	}
	base := build(1)
	want, err := base.Search("Q", terms, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Hits) == 0 {
		t.Fatal("degenerate test: no hits")
	}
	for _, workers := range []int{2, 4, 0} {
		fed := build(workers)
		got, err := fed.Search("Q", terms, 5)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("workers=%d: %d hits, want %d", workers, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("workers=%d: hit %d = %+v, want %+v", workers, i, got.Hits[i], want.Hits[i])
			}
		}
		if a, b := reportString(got.Parties), reportString(want.Parties); a != b {
			t.Fatalf("workers=%d: party report differs:\n  %s\n  %s", workers, a, b)
		}
		if got.Partial != want.Partial || got.Cost != want.Cost {
			t.Fatalf("workers=%d: partial/cost %v %+v, want %v %+v",
				workers, got.Partial, got.Cost, want.Partial, want.Cost)
		}
	}
}

// TestSearchQuorumLost: losing more parties than MinParties allows must
// fail with ErrQuorum while still returning the per-party report.
func TestSearchQuorumLost(t *testing.T) {
	p := chaosSearchParams()
	p.MinParties = 3
	fed := chaosFedUnderTest(t, p, 123)
	in := fed.Server.Chaos()
	in.SetProfile("P1", chaos.Profile{Partitioned: true})
	in.SetProfile("P2", chaos.Profile{Down: true})
	res, err := fed.Search("Q", []uint64{5, 42}, 5)
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
	if res == nil || len(res.Parties) != 3 {
		t.Fatalf("quorum loss dropped the party report: %+v", res)
	}
	for _, rep := range res.Parties {
		if rep.Outcome != OutcomeFailed {
			t.Fatalf("party %s outcome %s, want failed", rep.Party, rep.Outcome)
		}
	}
}

// TestStrictModeStillFails: without a quorum policy (MinParties 0) any
// party failure must fail the whole search, exactly as before the
// resilience layer existed.
func TestStrictModeStillFails(t *testing.T) {
	p := chaosSearchParams()
	p.MinParties = 0
	fed := chaosFedUnderTest(t, p, 123)
	if _, err := fed.Search("Q", []uint64{5, 42}, 5); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("strict search with a dead party returned %v, want an injected fault", err)
	}
}

// TestBatchReverseTopKUnderChaos: batch queries to a tripped party are
// refused up front with ErrBreakerOpen and spend no budget.
func TestBatchReverseTopKUnderChaos(t *testing.T) {
	fed := chaosFedUnderTest(t, chaosSearchParams(), 123)
	reqs := []TopKRequest{
		{To: "P0", Field: FieldBody, Term: 5, K: 3},
		{To: "P0", Field: FieldBody, Term: 42, K: 3},
		{To: "P0", Field: FieldBody, Term: 133, K: 3},
		{To: "P2", Field: FieldBody, Term: 5, K: 3},
	}
	results, err := fed.BatchReverseTopK("Q", reqs, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if results[i].Err == nil {
			t.Fatalf("request %d to the dead party succeeded", i)
		}
	}
	if results[3].Err != nil {
		t.Fatalf("request to the live party failed: %v", results[3].Err)
	}
	// Three consecutive failures tripped P0's breaker.
	if st := fed.BreakerState("P0"); st != resilience.Open {
		t.Fatalf("P0 breaker %v after failed batch, want Open", st)
	}
	src, _ := fed.Party("Q")
	spent := src.Accountant().Spent("P0")
	again, err := fed.BatchReverseTopK("Q", reqs[:1], 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(again[0].Err, resilience.ErrBreakerOpen) {
		t.Fatalf("tripped party's request err = %v, want ErrBreakerOpen", again[0].Err)
	}
	if got := src.Accountant().Spent("P0"); got != spent {
		t.Fatalf("budget spent on a breaker-refused request: %v -> %v", spent, got)
	}
}

// TestHTTPChaosTransport: the HTTP client transport applies per-party
// profiles by parsing the gateway path, so remote federations get the
// same chaos regime as in-process ones.
func TestHTTPChaosTransport(t *testing.T) {
	fed := searchFed(t)
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	in := chaos.New(7)
	in.SetProfile("B", chaos.Profile{Down: true})
	client := &http.Client{Transport: ChaosTransport(in, nil)}
	a, _ := fed.Party("A")

	dead := NewHTTPOwner(ts.URL, "B", FieldBody, client)
	if _, _, err := core.RTKReverseTopK(a.Querier(), dead, 10, 3); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("query through a down HTTP link returned %v, want an injected fault", err)
	}
	alive := NewHTTPOwner(ts.URL, "C", FieldBody, client)
	if _, _, err := core.RTKReverseTopK(a.Querier(), alive, 10, 3); err != nil {
		t.Fatalf("query to an unprofiled party failed: %v", err)
	}
}

// TestPartyFromPath pins the gateway-path parser the HTTP chaos
// transport relies on.
func TestPartyFromPath(t *testing.T) {
	cases := map[string]string{
		"/v1/parties/B/body/rtk":         "B",
		"/v1/parties/silo-7/title/tf":    "silo-7",
		"/v1/parties/X":                  "X",
		"/v1/metrics":                    "",
		"/v2/parties/B/body/rtk":         "",
		"/v1/parties/":                   "",
		"/v1/parties/B/body/docs/0/meta": "B",
	}
	for path, want := range cases {
		if got := partyFromPath(path); got != want {
			t.Fatalf("partyFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}
