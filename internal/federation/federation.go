// Package federation is the cross-silo substrate of CS-F-LTR: parties,
// the coordinating (honest-but-curious) server, message routing with
// byte-level traffic accounting, and the key-agreement ceremony that
// hides the shared hash seed from the server.
//
// Topology (Section III-A of the paper): N parties each hold private
// documents and queries; a central server relays every protocol message
// but must not learn raw data — parties derive the keyed-hash seed
// pairwise via Diffie-Hellman (package keyex) so the server only ever
// sees obfuscated column indexes and perturbed counters.
//
// Two transports are provided: direct in-process routing through Server,
// and a TCP net/rpc transport (see rpc.go) exposing the same OwnerAPI.
package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/hashutil"
	"csfltr/internal/keyex"
	"csfltr/internal/qcache"
	"csfltr/internal/resilience"
	"csfltr/internal/shard"
	"csfltr/internal/telemetry"
	"csfltr/internal/textkit"
	"csfltr/internal/wire"
)

// Errors returned by this package.
var (
	ErrUnknownParty = errors.New("federation: unknown party")
	ErrUnknownField = errors.New("federation: unknown document field")
	ErrSelfQuery    = errors.New("federation: party cannot run the cross-party protocol against itself")
)

// Field selects which document field a cross-party query addresses. The
// 16-dimensional feature vector needs term counts from both the body and
// the title, so each party maintains one sketch set per field.
type Field int

const (
	// FieldBody addresses document bodies.
	FieldBody Field = iota
	// FieldTitle addresses document titles.
	FieldTitle
	numFields
)

// String returns the field name.
func (f Field) String() string {
	switch f {
	case FieldBody:
		return "body"
	case FieldTitle:
		return "title"
	default:
		return fmt.Sprintf("federation.Field(%d)", int(f))
	}
}

// TrafficStats aggregates the bytes and messages relayed by the server,
// the communication-cost quantity of Fig. 4 / Section VI-D. It is a
// read-side view over the server's telemetry registry (the relayed
// messages/bytes counter families), not a separate ledger.
type TrafficStats struct {
	Messages int64
	Bytes    int64
}

// endpoint resolves a party's owner API per field. Local parties resolve
// in-process; remote (party-hosted) endpoints resolve to an RPC- or
// HTTP-backed client. transport names the wire for telemetry
// ("inproc", "rpc", "http").
type endpoint interface {
	ownerAPI(f Field) (core.OwnerAPI, error)
	transport() string
}

// Transport label values (bounded).
const (
	transportInproc = "inproc"
	transportRPC    = "rpc"
	transportHTTP   = "http"
)

// traceCarrier is implemented by owner views that can forward a trace
// context downstream: the routed owner (span parenting) and the RPC/HTTP
// clients (on-the-wire propagation). WithTrace returns a shallow copy
// bound to ctx; the receiver is never mutated.
type traceCarrier interface {
	WithTrace(ctx telemetry.SpanContext) core.OwnerAPI
}

// Server is the coordinating server: a message router with traffic
// accounting. It is honest-but-curious — it relays faithfully and records
// everything it can see, but never holds hash keys or raw documents. Safe
// for concurrent use.
//
// Every relayed message is accounted in the server's telemetry registry
// (per-party message/byte counters, per-API-call latency histograms);
// Traffic and TrainingStats are views over that registry.
type Server struct {
	mu      sync.Mutex
	parties map[string]endpoint
	m       *serverMetrics

	// chaosInj simulates the links between the server and each party:
	// per-party latency and fault profiles, all deterministic from the
	// injector's seed (see SetChaos / SetPartyLink). Nil (the default)
	// relays immediately and faultlessly.
	chaosInj atomic.Pointer[chaos.Injector]

	// cacheStats, when set, reads the federation answer cache's counters
	// for the HTTP gateway's /v1/cache route (see cache.go). Nil until a
	// cache-enabled federation runs its first search.
	cacheStats atomic.Pointer[func() qcache.Stats]

	// audit is the per-query flight recorder (see trace.go). Nil until
	// EnableTracing.
	audit atomic.Pointer[auditLog]

	// wireCodec selects the byte accounting the transport layer reports
	// under MetricTransportBytes: false (default) counts the fixed-width
	// WireSize of each message, true counts the compact binary frames
	// from internal/wire. Flipping it never changes protocol results —
	// only how many bytes each relayed message is charged.
	wireCodec atomic.Bool

	// searcher serves the gateway's POST /v1/search route (installed by
	// the Federation constructors via setSearcher). Nil until a
	// federation attaches.
	searcher atomic.Pointer[gatewaySearcher]

	// admission bounds the gateway's concurrent search work (see
	// SetAdmission in admission.go). Nil means unbounded.
	admission atomic.Pointer[admission]
}

// NewServer creates an empty server with a fresh telemetry registry.
func NewServer() *Server {
	return NewServerWithRegistry(telemetry.NewRegistry())
}

// NewServerWithRegistry creates an empty server recording into reg —
// for embedding the federation into a process-wide registry (e.g. the
// experiments harness or a binary's -debug-addr endpoint).
func NewServerWithRegistry(reg *telemetry.Registry) *Server {
	return &Server{parties: make(map[string]endpoint), m: newServerMetrics(reg)}
}

// Metrics returns the server's telemetry registry — the source the
// HTTP gateway's /v1/metrics route and the debug endpoint serve.
func (s *Server) Metrics() *telemetry.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.reg
}

// SetRegistry redirects the server's telemetry into reg. Call it before
// serving traffic: recorded series do not migrate. In-process parties
// already on the roster are re-wired to the new registry.
func (s *Server) SetRegistry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = newServerMetrics(reg)
	for _, e := range s.parties {
		if p, ok := e.(*Party); ok {
			p.attachDPHist(s.m.stage[StageDPNoise])
			p.attachShardHooks(s.m)
		}
	}
}

// metrics returns the handle cache under the roster lock.
func (s *Server) metrics() *serverMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Register adds an in-process party to the federation roster and wires
// the party's DP mechanisms into the server's dp_noise stage histogram.
func (s *Server) Register(p *Party) error {
	if err := s.register(p.Name, p); err != nil {
		return err
	}
	s.mu.Lock()
	p.attachDPHist(s.m.stage[StageDPNoise])
	p.attachShardHooks(s.m)
	s.mu.Unlock()
	return nil
}

// register adds any endpoint under a unique name. Registering new
// parties at runtime is free for existing members — exactly the
// reusability property the paper attributes to the sketch construction.
func (s *Server) register(name string, e endpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.parties[name]; dup {
		return fmt.Errorf("federation: party %q already registered", name)
	}
	s.parties[name] = e
	return nil
}

// Unregister removes a party from the roster (e.g. a silo leaving the
// federation). Unknown names are a no-op.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.parties, name)
}

// PartyNames returns the registered party names, sorted.
func (s *Server) PartyNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.parties))
	for n := range s.parties {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Traffic returns a snapshot of the relayed traffic counters, summed
// over every party and op.
func (s *Server) Traffic() TrafficStats {
	return s.metrics().traffic()
}

// ResetTraffic zeroes the traffic counters (between experiment runs).
func (s *Server) ResetTraffic() {
	s.metrics().resetTraffic()
}

// SetChaos installs a fault injector simulating the server↔party links:
// per-party latency, jitter, error/timeout rates, crashes and
// partitions, every decision deterministic from the injector's seed.
// Injected faults are counted in the server's telemetry
// (csfltr_chaos_injected_faults_total by party and kind). Passing nil
// removes injection entirely. Safe to call concurrently; results, cost
// accounting and traffic counters are unaffected by pure-latency
// profiles.
func (s *Server) SetChaos(in *chaos.Injector) {
	if in != nil {
		in.SetOnFault(func(party, kind string) {
			s.metrics().faultFor(party, kind).Inc()
		})
	}
	s.chaosInj.Store(in)
}

// Chaos returns the installed injector (nil if none).
func (s *Server) Chaos() *chaos.Injector { return s.chaosInj.Load() }

// SetWireCodec switches the transport byte accounting between the
// fixed-width raw sizes (false, the default) and the compact binary
// wire frames (true). Concurrency-safe; takes effect on the next
// relayed message.
func (s *Server) SetWireCodec(on bool) { s.wireCodec.Store(on) }

// WireCodecEnabled reports whether wire-codec accounting is active.
func (s *Server) WireCodecEnabled() bool { return s.wireCodec.Load() }

// TransportBytes sums the MetricTransportBytes series recorded under
// codec ("raw" or "wire"), optionally filtered by api ("" sums every
// api) — the view the experiments harness reads to compare encodings.
func (s *Server) TransportBytes(codec, api string) int64 {
	return s.metrics().transportBytes(codec, api)
}

// ensureChaos returns the installed injector, creating a seed-0 one on
// first use so the link-configuration helpers work without an explicit
// SetChaos.
func (s *Server) ensureChaos() *chaos.Injector {
	if in := s.chaosInj.Load(); in != nil {
		return in
	}
	in := chaos.New(0)
	in.SetOnFault(func(party, kind string) {
		s.metrics().faultFor(party, kind).Inc()
	})
	if s.chaosInj.CompareAndSwap(nil, in) {
		return in
	}
	return s.chaosInj.Load()
}

// SetPartyLink installs a simulated network round-trip time for one
// party's link, applied to every owner call relayed to that party (one
// sleep per message, since each OwnerAPI call is one request/response
// exchange). Cross-silo federations are WAN-separated with
// heterogeneous links, so query latency is round-trip dominated; the
// delay makes in-process benchmarks and experiments reproduce that
// regime — in particular it is what the concurrent FederatedSearch
// fan-out overlaps. Zero removes the delay. The party's other fault
// knobs are preserved.
func (s *Server) SetPartyLink(party string, rtt time.Duration) {
	in := s.ensureChaos()
	p := in.PartyProfile(party)
	p.Latency = rtt
	in.SetProfile(party, p)
}

// setCacheStats installs the answer-cache stats reader the /v1/cache
// route serves (done once, when the federation's cache is created).
func (s *Server) setCacheStats(fn func() qcache.Stats) {
	s.cacheStats.Store(&fn)
}

// CacheStats returns the answer cache's counters and whether a cache is
// attached at all.
func (s *Server) CacheStats() (qcache.Stats, bool) {
	fn := s.cacheStats.Load()
	if fn == nil {
		return qcache.Stats{}, false
	}
	return (*fn)(), true
}

// intercept applies the installed chaos profile to one relayed owner
// call: simulated link latency, then the injected fault, if any.
func (s *Server) intercept(party, op string, content uint64) error {
	in := s.chaosInj.Load()
	if in == nil {
		return nil
	}
	return in.Intercept(party, op, content)
}

// lookup resolves a party endpoint by name.
func (s *Server) lookup(name string) (endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.parties[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownParty, name)
	}
	return p, nil
}

// OwnerFor returns an OwnerAPI view of the named party's field, routed
// through the server with traffic accounting. The returned value is what
// a querier party hands to core.NaiveReverseTopK / core.RTKReverseTopK.
func (s *Server) OwnerFor(name string, field Field) (core.OwnerAPI, error) {
	if field < 0 || field >= numFields {
		return nil, fmt.Errorf("%w: %d", ErrUnknownField, int(field))
	}
	p, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	api, err := p.ownerAPI(field)
	if err != nil {
		return nil, err
	}
	return &routedOwner{m: s.metrics(), srv: s, party: name, api: api, transport: p.transport()}, nil
}

// routedOwner proxies OwnerAPI calls through the server, recording
// per-party traffic and per-API-call latency. Every transport (HTTP,
// net/rpc and in-process) resolves owners through Server.OwnerFor, so
// this is the single place bytes are counted.
type routedOwner struct {
	m         *serverMetrics
	srv       *Server
	party     string
	api       core.OwnerAPI
	transport string
}

// codecLabel is the MetricTransportBytes codec label the server is
// currently accounting under.
func (r *routedOwner) codecLabel() string {
	if r.srv.wireCodec.Load() {
		return codecWire
	}
	return codecRaw
}

// sizeTFQueryAs / sizeTFRespAs / sizeRTKRespAs charge a message with the
// byte size the active codec puts on the wire: the historical
// fixed-width accounting for "raw", the framed compact encoding for
// "wire". The roster and metadata calls are codec-independent and keep
// their fixed charges under either label.
func sizeTFQueryAs(codec string, q *core.TFQuery) int64 {
	if codec == codecWire {
		return wire.SizeTFQuery(q)
	}
	return q.WireSize()
}

func sizeTFRespAs(codec string, resp *core.TFResponse) int64 {
	if codec == codecWire {
		return wire.SizeTFResponse(resp)
	}
	return resp.WireSize()
}

func sizeRTKRespAs(codec string, resp *core.RTKResponse) int64 {
	if codec == codecWire {
		return wire.SizeRTKResponse(resp)
	}
	return resp.WireSize()
}

// WithTrace implements traceCarrier: the returned owner parents each API
// call's span under ctx, tags it with party/transport/fault attributes,
// and forwards the per-call span context over trace-carrying transports.
// The untraced methods below stay allocation-identical to pre-tracing
// behaviour.
func (r *routedOwner) WithTrace(ctx telemetry.SpanContext) core.OwnerAPI {
	if !ctx.Valid() {
		return r
	}
	return &tracedOwner{r: r, ctx: ctx}
}

// tracedOwner decorates routedOwner with a parent span context.
type tracedOwner struct {
	r   *routedOwner
	ctx telemetry.SpanContext
}

// apiSpan starts the per-call child span with the standard attributes.
func (t *tracedOwner) apiSpan(api string) *telemetry.TraceSpan {
	return t.r.m.reg.StartChildSpan("server.api."+api, t.ctx, t.r.m.api[api],
		telemetry.AStr("party", t.r.party), telemetry.AStr("transport", t.r.transport))
}

// wireAPI forwards the call-level span context to the transport client
// when it can carry one (RPC args fields, HTTP X-Trace-* headers).
func (t *tracedOwner) wireAPI(ctx telemetry.SpanContext) core.OwnerAPI {
	if tc, ok := t.r.api.(traceCarrier); ok {
		return tc.WithTrace(ctx)
	}
	return t.r.api
}

// markFault tags the span with the injected-fault kind (or nothing for
// ordinary errors, which the caller's span records itself).
func markFault(sp *telemetry.TraceSpan, err error) {
	if kind := chaos.FaultKind(err); kind != "" {
		sp.AddAttr(telemetry.AStr("fault", kind))
	}
}

func (t *tracedOwner) DocIDs() []int {
	sp := t.apiSpan(apiDocIDs)
	defer sp.End()
	r := t.r
	if err := r.srv.intercept(r.party, apiDocIDs, 0); err != nil {
		markFault(sp, err)
		return nil
	}
	ids := t.wireAPI(sp.Context()).DocIDs()
	r.m.record(r.party, opQuery, int64(8*len(ids)))
	r.m.recordTransport(r.party, apiDocIDs, r.codecLabel(), int64(8*len(ids)))
	return ids
}

func (t *tracedOwner) DocMeta(docID int) (int, int, error) {
	sp := t.apiSpan(apiDocMeta)
	defer sp.End()
	r := t.r
	if err := r.srv.intercept(r.party, apiDocMeta, uint64(docID)); err != nil {
		markFault(sp, err)
		return 0, 0, err
	}
	length, unique, err := t.wireAPI(sp.Context()).DocMeta(docID)
	r.m.record(r.party, opQuery, 16)
	r.m.recordTransport(r.party, apiDocMeta, r.codecLabel(), 16)
	return length, unique, err
}

func (t *tracedOwner) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	sp := t.apiSpan(apiTF)
	defer sp.End()
	r := t.r
	codec := r.codecLabel()
	r.m.record(r.party, opQuery, q.WireSize())
	r.m.recordTransport(r.party, apiTF, codec, sizeTFQueryAs(codec, q))
	if err := r.srv.intercept(r.party, apiTF, chaosContent(uint64(docID)+1, q.Cols)); err != nil {
		markFault(sp, err)
		return nil, err
	}
	resp, err := t.wireAPI(sp.Context()).AnswerTF(docID, q)
	if err != nil {
		return nil, err
	}
	r.m.record(r.party, opQuery, resp.WireSize())
	r.m.recordTransport(r.party, apiTF, codec, sizeTFRespAs(codec, resp))
	sp.AddAttr(telemetry.AInt("bytes", q.WireSize()+resp.WireSize()))
	return resp, nil
}

func (t *tracedOwner) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	sp := t.apiSpan(apiRTK)
	defer sp.End()
	r := t.r
	codec := r.codecLabel()
	r.m.record(r.party, opQuery, q.WireSize())
	r.m.recordTransport(r.party, apiRTK, codec, sizeTFQueryAs(codec, q))
	if err := r.srv.intercept(r.party, apiRTK, chaosContent(0, q.Cols)); err != nil {
		markFault(sp, err)
		return nil, err
	}
	resp, err := t.wireAPI(sp.Context()).AnswerRTK(q)
	if err != nil {
		return nil, err
	}
	r.m.record(r.party, opQuery, resp.WireSize())
	r.m.recordTransport(r.party, apiRTK, codec, sizeRTKRespAs(codec, resp))
	sp.AddAttr(telemetry.AInt("bytes", q.WireSize()+resp.WireSize()))
	return resp, nil
}

func (r *routedOwner) DocIDs() []int {
	sp := r.m.apiSpan(apiDocIDs)
	if err := r.srv.intercept(r.party, apiDocIDs, 0); err != nil {
		sp.End()
		return nil
	}
	ids := r.api.DocIDs()
	sp.End()
	r.m.record(r.party, opQuery, int64(8*len(ids)))
	r.m.recordTransport(r.party, apiDocIDs, r.codecLabel(), int64(8*len(ids)))
	return ids
}

func (r *routedOwner) DocMeta(docID int) (int, int, error) {
	sp := r.m.apiSpan(apiDocMeta)
	if err := r.srv.intercept(r.party, apiDocMeta, uint64(docID)); err != nil {
		sp.End()
		return 0, 0, err
	}
	length, unique, err := r.api.DocMeta(docID)
	sp.End()
	r.m.record(r.party, opQuery, 16)
	r.m.recordTransport(r.party, apiDocMeta, r.codecLabel(), 16)
	return length, unique, err
}

func (r *routedOwner) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	sp := r.m.apiSpan(apiTF)
	defer sp.End()
	codec := r.codecLabel()
	r.m.record(r.party, opQuery, q.WireSize())
	r.m.recordTransport(r.party, apiTF, codec, sizeTFQueryAs(codec, q))
	if err := r.srv.intercept(r.party, apiTF, chaosContent(uint64(docID)+1, q.Cols)); err != nil {
		return nil, err
	}
	resp, err := r.api.AnswerTF(docID, q)
	if err != nil {
		return nil, err
	}
	r.m.record(r.party, opQuery, resp.WireSize())
	r.m.recordTransport(r.party, apiTF, codec, sizeTFRespAs(codec, resp))
	return resp, nil
}

func (r *routedOwner) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	sp := r.m.apiSpan(apiRTK)
	defer sp.End()
	codec := r.codecLabel()
	r.m.record(r.party, opQuery, q.WireSize())
	r.m.recordTransport(r.party, apiRTK, codec, sizeTFQueryAs(codec, q))
	if err := r.srv.intercept(r.party, apiRTK, chaosContent(0, q.Cols)); err != nil {
		return nil, err
	}
	resp, err := r.api.AnswerRTK(q)
	if err != nil {
		return nil, err
	}
	r.m.record(r.party, opQuery, resp.WireSize())
	r.m.recordTransport(r.party, apiRTK, codec, sizeRTKRespAs(codec, resp))
	return resp, nil
}

// chaosContent folds a query's column vector (and a discriminator) into
// the call-content identity chaos keys fault decisions on: the same
// logical query draws the same fate no matter when or on which worker
// it is relayed, which is what keeps fault replays bit-identical under
// a concurrent fan-out.
func chaosContent(disc uint64, cols []uint32) uint64 {
	h := disc ^ 0xcbf29ce484222325
	for _, c := range cols {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// partyBackend is the per-field storage engine behind a party: either a
// single core.Owner (the legacy path) or a sharded, replicated
// shard.Group facade. Both expose the owner query API plus the ingest
// and cache-generation surface the federation needs; which one backs a
// party is invisible to the protocol (the sharded facade is
// bit-identical to a single owner at Epsilon=0, see internal/shard).
type partyBackend interface {
	core.OwnerAPI
	AddDocument(docID int, counts map[uint64]int64) error
	AddDocuments(docs []core.DocCounts, workers int) error
	RemoveDocument(docID int) error
	Generation() uint64
	Generations() []uint64
}

// singleBackend adapts a single core.Owner to the backend surface: its
// generation vector has one component.
type singleBackend struct{ *core.Owner }

func (s singleBackend) Generations() []uint64 { return []uint64{s.Owner.Generation()} }

// Party is one silo: a name, the owner-side sketch state for each
// document field, a querier endpoint and a per-peer privacy accountant.
// When Params.Shards or Params.Replicas exceeds 1 the per-field state is
// a sharded, replicated shard.Group instead of a single owner.
type Party struct {
	Name string

	params   core.Params
	querier  *core.Querier
	owners   [numFields]*core.Owner  // nil when the party is sharded
	groups   [numFields]*shard.Group // nil when the party is unsharded
	backends [numFields]partyBackend
	mechs    [numFields]*timedMechanism
	account  *dp.Accountant
	docRefs  []int // ingested document ids
	queryRNG *rand.Rand
}

// attachDPHist points the party's DP mechanism timers at a stage
// histogram (done when the party joins a server).
func (p *Party) attachDPHist(h *telemetry.Histogram) {
	for _, m := range p.mechs {
		if m != nil {
			m.attach(h)
		}
	}
}

// attachShardHooks wires a sharded party's groups into the server's
// telemetry: replica attempt spans into the flight recorder, per-shard
// outcome counters, replica breaker gauges and per-shard transport
// bytes. All labels come from the bounded shard label tables plus the
// party name and field — never raw identifiers. No-op for unsharded
// parties.
func (p *Party) attachShardHooks(m *serverMetrics) {
	for f := Field(0); f < numFields; f++ {
		g := p.groups[f]
		if g == nil {
			continue
		}
		name, field := p.Name, f.String()
		g.SetHooks(shard.Hooks{
			Registry: m.reg,
			OnOutcome: func(sh string, ok bool) {
				out := OutcomeOK
				if !ok {
					out = OutcomeFailed
				}
				m.shardOutcomeFor(name, field, sh, out).Inc()
			},
			BreakerChange: func(lbl string, st resilience.State) {
				m.shardBreakerGauge(name, field, lbl).Set(float64(st))
			},
			OnTransport: func(api, sh string, bytes int64) {
				m.shardTransportFor(name, field, sh, api).Add(bytes)
			},
		})
	}
}

// PartyConfig configures party construction.
type PartyConfig struct {
	Params core.Params
	// Seed is the federation hash seed shared by all parties (derive it
	// with the Federation constructor or keyex + hashutil.DeriveSeed).
	Seed uint64
	// RNGSeed drives this party's private randomness (obfuscation, DP).
	RNGSeed int64
	// Budget is the optional per-peer DP budget for the accountant
	// (0 = track only).
	Budget float64
	// KeepDocTables controls whether per-document sketches are retained
	// (required for TF queries and the NAIVE baseline). Default true.
	DropDocTables bool
}

// NewParty builds a party endpoint.
func NewParty(name string, cfg PartyConfig) (*Party, error) {
	if name == "" {
		return nil, errors.New("federation: party name must not be empty")
	}
	rng := rand.New(rand.NewSource(cfg.RNGSeed))
	querier, err := core.NewQuerier(cfg.Params, cfg.Seed, rand.New(rand.NewSource(cfg.RNGSeed+1)))
	if err != nil {
		return nil, err
	}
	p := &Party{
		Name:     name,
		params:   cfg.Params,
		querier:  querier,
		account:  dp.NewAccountant(cfg.Budget),
		queryRNG: rng,
	}
	sharded := cfg.Params.Shards > 1 || cfg.Params.Replicas > 1
	for f := Field(0); f < numFields; f++ {
		mech, err := dp.ForEpsilon(cfg.Params.Epsilon, rand.New(rand.NewSource(cfg.RNGSeed+2+int64(f))))
		if err != nil {
			return nil, err
		}
		// Wrap the mechanism so noise-drawing time is attributable to
		// the dp_noise stage once the party joins a server.
		timed := &timedMechanism{inner: mech}
		p.mechs[f] = timed
		if sharded {
			// The group facade is the DP release point — it holds the
			// party's mechanism while the shard owners inside run
			// noise-free, keeping one draw per released answer.
			grp, err := shard.New(shard.Config{
				Params:        cfg.Params,
				Seed:          cfg.Seed,
				Mech:          timed,
				DropDocTables: cfg.DropDocTables,
			})
			if err != nil {
				return nil, err
			}
			p.groups[f] = grp
			p.backends[f] = grp
			continue
		}
		var opts []core.OwnerOption
		if cfg.DropDocTables {
			opts = append(opts, core.WithoutDocTables())
		}
		owner, err := core.NewOwner(cfg.Params, cfg.Seed, timed, opts...)
		if err != nil {
			return nil, err
		}
		p.owners[f] = owner
		p.backends[f] = singleBackend{owner}
	}
	return p, nil
}

// backend returns the storage engine for a field.
func (p *Party) backend(f Field) partyBackend { return p.backends[f] }

// generations returns the field's per-shard ingest generation vector
// (one component for an unsharded party) — what cache keys bind so
// invalidation stays shard-local.
func (p *Party) generations(f Field) []uint64 { return p.backends[f].Generations() }

// transport implements endpoint.
func (p *Party) transport() string { return transportInproc }

// ownerAPI implements endpoint for in-process parties.
func (p *Party) ownerAPI(f Field) (core.OwnerAPI, error) {
	if f < 0 || f >= numFields {
		return nil, fmt.Errorf("%w: %d", ErrUnknownField, int(f))
	}
	return p.backends[f], nil
}

// Owner exposes the single-owner endpoint for a field (e.g. for direct
// local inspection or space accounting). Nil when the party is sharded —
// use Group then.
func (p *Party) Owner(f Field) *core.Owner { return p.owners[f] }

// Group exposes the sharded owner facade for a field. Nil when the
// party is unsharded — use Owner then.
func (p *Party) Group(f Field) *shard.Group { return p.groups[f] }

// Sharded reports whether the party's fields are backed by shard
// groups.
func (p *Party) Sharded() bool { return p.groups[FieldBody] != nil }

// RemoveDocument deletes one document from both field backends. On a
// sharded party only the owning shard's generation moves, so cached
// answers keyed by the other shards' generations stay valid.
func (p *Party) RemoveDocument(docID int) error {
	if err := p.backends[FieldBody].RemoveDocument(docID); err != nil {
		return fmt.Errorf("federation: remove body of doc %d: %w", docID, err)
	}
	if err := p.backends[FieldTitle].RemoveDocument(docID); err != nil {
		return fmt.Errorf("federation: remove title of doc %d: %w", docID, err)
	}
	for i, id := range p.docRefs {
		if id == docID {
			p.docRefs = append(p.docRefs[:i], p.docRefs[i+1:]...)
			break
		}
	}
	return nil
}

// Querier returns the party's querier endpoint.
func (p *Party) Querier() *core.Querier { return p.querier }

// Params returns the shared protocol parameters.
func (p *Party) Params() core.Params { return p.params }

// Accountant returns the party's per-peer privacy accountant.
func (p *Party) Accountant() *dp.Accountant { return p.account }

// IngestDocument sketches one document into both field owners (protocol
// Step 1). The document's local ID is used as the sketch document id.
func (p *Party) IngestDocument(d *textkit.Document) error {
	if err := p.backends[FieldBody].AddDocument(d.ID, CountsToUint64(d.BodyCounts())); err != nil {
		return fmt.Errorf("federation: ingest body of doc %d: %w", d.ID, err)
	}
	if err := p.backends[FieldTitle].AddDocument(d.ID, CountsToUint64(d.TitleCounts())); err != nil {
		return fmt.Errorf("federation: ingest title of doc %d: %w", d.ID, err)
	}
	p.docRefs = append(p.docRefs, d.ID)
	return nil
}

// IngestAll sketches a slice of documents.
func (p *Party) IngestAll(docs []*textkit.Document) error {
	for _, d := range docs {
		if err := p.IngestDocument(d); err != nil {
			return err
		}
	}
	return nil
}

// IngestAllParallel bulk-loads a document slice on a bounded worker pool
// (workers <= 0 resolves to Params.Parallelism / GOMAXPROCS). Term-count
// extraction runs in parallel per document, the two field owners load
// concurrently with each other, and each owner shards its sketch build
// across the pool (see core.Owner.AddDocuments); the resulting party
// state is identical to a sequential IngestAll in slice order. On error
// the party may hold one field's batch but not the other — callers
// should treat the party as unusable, exactly as after a failed
// IngestAll.
func (p *Party) IngestAllParallel(docs []*textkit.Document, workers int) error {
	if workers <= 0 {
		workers = p.params.Workers(len(docs))
	}
	bodies := make([]core.DocCounts, len(docs))
	titles := make([]core.DocCounts, len(docs))
	var next atomic.Int64
	var wg sync.WaitGroup
	n := workers
	if n > len(docs) {
		n = len(docs)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				d := docs[i]
				bodies[i] = core.DocCounts{DocID: d.ID, Counts: CountsToUint64(d.BodyCounts())}
				titles[i] = core.DocCounts{DocID: d.ID, Counts: CountsToUint64(d.TitleCounts())}
			}
		}()
	}
	wg.Wait()
	var bodyErr, titleErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		bodyErr = p.backends[FieldBody].AddDocuments(bodies, workers)
	}()
	go func() {
		defer wg.Done()
		titleErr = p.backends[FieldTitle].AddDocuments(titles, workers)
	}()
	wg.Wait()
	if bodyErr != nil {
		return fmt.Errorf("federation: bulk ingest bodies: %w", bodyErr)
	}
	if titleErr != nil {
		return fmt.Errorf("federation: bulk ingest titles: %w", titleErr)
	}
	for _, d := range docs {
		p.docRefs = append(p.docRefs, d.ID)
	}
	return nil
}

// NumDocs returns the number of ingested documents.
func (p *Party) NumDocs() int { return len(p.docRefs) }

// CountsToUint64 converts a textkit term vector into the raw-count map
// the sketch layer consumes.
func CountsToUint64(tv textkit.TermVector) map[uint64]int64 {
	out := make(map[uint64]int64, len(tv))
	for t, c := range tv {
		out[uint64(t)] = int64(c)
	}
	return out
}

// Federation bundles a server and its parties after a completed setup
// ceremony.
type Federation struct {
	Server  *Server
	Parties []*Party
	Params  core.Params
	// HashSeed is the shared seed derived from the DH ceremony. It is
	// exposed for feature extraction within parties; in the deployed
	// system it never reaches the server.
	HashSeed uint64

	// Resilience state (see resilience.go): the retry/breaker policy
	// and the lazily-created per-party circuit breakers.
	resMu    sync.Mutex
	policy   *resilience.Policy
	breakers map[string]*resilience.Breaker

	// Answer cache state (see cache.go), created lazily on the first
	// search when Params.CacheBytes > 0.
	cacheOnce sync.Once
	qc        *qcache.Cache
	flight    *qcache.Group
	keyer     *qcache.Keyer
}

// Assemble bundles an already-populated server and its registered
// parties into a Federation without running a setup ceremony — for
// embedders that construct and ingest parties themselves (the demo
// server does). It attaches the federated search entry point to the
// server's gateway, so POST /v1/search serves. The parties must already
// be registered with srv and share params and hashSeed.
func Assemble(srv *Server, parties []*Party, params core.Params, hashSeed uint64) *Federation {
	fed := &Federation{Server: srv, Parties: parties, Params: params, HashSeed: hashSeed}
	srv.setSearcher(fed.SearchTraced)
	return fed
}

// New runs the full setup ceremony for the named parties: Diffie-Hellman
// pairwise agreement, sealed distribution of the federation secret
// (package keyex), hash-seed derivation, party construction and server
// registration. rngSeed makes party-side randomness reproducible.
func New(names []string, params core.Params, rngSeed int64) (*Federation, error) {
	if len(names) == 0 {
		return nil, errors.New("federation: need at least one party")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	secrets, err := keyex.AgreeFederationSecret(len(names), nil)
	if err != nil {
		return nil, fmt.Errorf("federation: key agreement: %w", err)
	}
	// All parties hold the same secret; derive the sketch-hash seed.
	seed := hashutil.DeriveSeed(secrets[0], "csfltr/sketch-hash/v1")
	srv := NewServer()
	fed := &Federation{Server: srv, Params: params, HashSeed: seed}
	srv.setSearcher(fed.SearchTraced)
	for i, name := range names {
		p, err := NewParty(name, PartyConfig{
			Params:  params,
			Seed:    seed,
			RNGSeed: rngSeed + int64(i)*1000,
		})
		if err != nil {
			return nil, err
		}
		if err := srv.Register(p); err != nil {
			return nil, err
		}
		fed.Parties = append(fed.Parties, p)
	}
	return fed, nil
}

// NewDeterministic builds a federation with a fixed hash seed instead of
// running the DH ceremony — for reproducible experiments and tests.
func NewDeterministic(names []string, params core.Params, hashSeed uint64, rngSeed int64) (*Federation, error) {
	if len(names) == 0 {
		return nil, errors.New("federation: need at least one party")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	srv := NewServer()
	fed := &Federation{Server: srv, Params: params, HashSeed: hashSeed}
	srv.setSearcher(fed.SearchTraced)
	for i, name := range names {
		p, err := NewParty(name, PartyConfig{
			Params:  params,
			Seed:    hashSeed,
			RNGSeed: rngSeed + int64(i)*1000,
		})
		if err != nil {
			return nil, err
		}
		if err := srv.Register(p); err != nil {
			return nil, err
		}
		fed.Parties = append(fed.Parties, p)
	}
	return fed, nil
}

// Party returns the party with the given name.
func (f *Federation) Party(name string) (*Party, error) {
	for _, p := range f.Parties {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownParty, name)
}

// ReverseTopK runs the reverse top-K document query from one party
// against another through the server, spending privacy budget with the
// querier's accountant. useRTK selects Algorithm 5 (true) or the NAIVE
// Algorithm 3 (false).
func (f *Federation) ReverseTopK(from, to string, field Field, term uint64, k int, useRTK bool) ([]core.DocCount, core.Cost, error) {
	if from == to {
		return nil, core.Cost{}, ErrSelfQuery
	}
	src, err := f.Party(from)
	if err != nil {
		return nil, core.Cost{}, err
	}
	dst, err := f.Server.OwnerFor(to, field)
	if err != nil {
		return nil, core.Cost{}, err
	}
	if err := src.account.Spend(to, f.Params.Epsilon); err != nil {
		return nil, core.Cost{}, err
	}
	defer f.Server.metrics().stageSpan(StageRTKQuery).End()
	if useRTK {
		return core.RTKReverseTopK(src.querier, dst, term, k)
	}
	return core.NaiveReverseTopK(src.querier, dst, term, k)
}

// CrossTF runs one cross-party TF query (Algorithms 1 and 2) from one
// party against a specific document of another party.
func (f *Federation) CrossTF(from, to string, field Field, docID int, term uint64) (float64, error) {
	if from == to {
		return 0, ErrSelfQuery
	}
	src, err := f.Party(from)
	if err != nil {
		return 0, err
	}
	dst, err := f.Server.OwnerFor(to, field)
	if err != nil {
		return 0, err
	}
	if err := src.account.Spend(to, f.Params.Epsilon); err != nil {
		return 0, err
	}
	defer f.Server.metrics().stageSpan(StageTFQuery).End()
	query, priv := src.querier.BuildQuery(term)
	resp, err := dst.AnswerTF(docID, query)
	if err != nil {
		return 0, err
	}
	return src.querier.Recover(priv, resp)
}
