package federation

import (
	"errors"
	"math"
	"testing"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/keyex"
	"csfltr/internal/ltr"
	"csfltr/internal/resilience"
	"csfltr/internal/secagg"
)

// mse computes mean squared prediction error of a model over data.
func mse(m *ltr.LinearModel, data []ltr.Instance) float64 {
	var sum float64
	for _, inst := range data {
		d := m.Score(inst.Features) - inst.Label
		sum += d * d
	}
	return sum / float64(len(data))
}

// TestTrainSecureFedAvgMatchesPlaintext is the core acceptance test:
// the secure run must produce the same model as the in-process
// plaintext federated average at the same seeds, within the per-round
// quantization bound, and converge on the synthetic linear task.
func TestTrainSecureFedAvgMatchesPlaintext(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{
		"A": trainData(400, 1),
		"B": trainData(400, 2),
		"C": trainData(400, 3),
	}
	cfg := ltr.DefaultSGDConfig()
	const rounds = 30
	secure, stats, err := fed.TrainSecureFedAvg(2, data, rounds, cfg,
		SecAggOptions{Entropy: keyex.SeededEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	// Plaintext reference: ltr.TrainFedAvg with the party order the
	// roster induces (names sort A, B, C).
	plain, err := ltr.TrainFedAvg(2, [][]ltr.Instance{data["A"], data["B"], data["C"]}, rounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization error compounds through local training, but stays
	// tiny at the default 2^-24 grid.
	const tol = 1e-4
	for i := range plain.W {
		if d := math.Abs(secure.W[i] - plain.W[i]); d > tol {
			t.Fatalf("weight %d: secure %v vs plaintext %v (diff %g)", i, secure.W[i], plain.W[i], d)
		}
	}
	if d := math.Abs(secure.B - plain.B); d > tol {
		t.Fatalf("bias: secure %v vs plaintext %v", secure.B, plain.B)
	}
	if math.Abs(secure.W[0]-1.5) > 0.15 || math.Abs(secure.W[1]+2) > 0.15 {
		t.Fatalf("secure model did not converge: %+v", secure)
	}
	if stats.Rounds != rounds || stats.Recoveries != 0 || stats.Drops != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// One masked update per party per round, all accounted.
	if stats.ModelHops != rounds*3 {
		t.Fatalf("ModelHops = %d, want %d", stats.ModelHops, rounds*3)
	}
	if stats.BytesRelayed != stats.MaskedBytes || stats.RevealBytes != 0 {
		t.Fatalf("byte split inconsistent: %+v", stats)
	}
	// Masked vectors are incompressible uniform words: a frame costs at
	// least 8 bytes per ring element.
	if stats.MaskedBytes < int64(rounds*3*(2+1)*8) {
		t.Fatalf("MaskedBytes = %d implausibly small", stats.MaskedBytes)
	}
	if stats.QuantErrorBound <= 0 || stats.QuantErrorBound > 1e-6 {
		t.Fatalf("QuantErrorBound = %g", stats.QuantErrorBound)
	}
	if got := fed.Server.TransportBytes(CodecRaw, "secagg"); got != stats.BytesRelayed {
		t.Fatalf("transport bytes %d != BytesRelayed %d", got, stats.BytesRelayed)
	}
}

// TestTrainSecureFedAvgParityWithRoundRobin checks ranking-quality
// parity between the two training topologies on the same dataset:
// different dynamics, same task, comparable NDCG and MSE.
func TestTrainSecureFedAvgParityWithRoundRobin(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{
		"A": trainData(400, 1),
		"B": trainData(400, 2),
		"C": trainData(400, 3),
	}
	cfg := ltr.DefaultSGDConfig()
	secure, _, err := fed.TrainSecureFedAvg(2, data, 30, cfg,
		SecAggOptions{Entropy: keyex.SeededEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	fed2, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr, _, err := fed2.TrainRoundRobin(2, data, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	holdout := trainData(500, 99)
	es, er := ltr.Evaluate(secure, holdout), ltr.Evaluate(rr, holdout)
	if math.Abs(es.NDCG-er.NDCG) > 0.02 {
		t.Fatalf("NDCG parity broken: secure %v vs round-robin %v", es.NDCG, er.NDCG)
	}
	ms, mr := mse(secure, holdout), mse(rr, holdout)
	if math.Abs(ms-mr) > 0.05 {
		t.Fatalf("MSE parity broken: secure %v vs round-robin %v", ms, mr)
	}
}

// TestTrainSecureFedAvgDropRecovery chaos-kills one party mid-run and
// checks the seeded drop is recovered via seed reveals: the run
// completes, recoveries are recorded, and — because recovery cancels
// the dropped party's masks exactly and local seeds key on roster
// index — the learned model is bit-identical to a run where that party
// simply had no data.
func TestTrainSecureFedAvgDropRecovery(t *testing.T) {
	data := map[string][]ltr.Instance{
		"A": trainData(300, 1),
		"B": trainData(300, 2),
		"C": trainData(300, 3),
	}
	cfg := ltr.DefaultSGDConfig()
	const rounds = 12

	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(7)
	in.SetProfile("C", chaos.Profile{Down: true})
	fed.Server.SetChaos(in)
	policy := resilience.DefaultPolicy()
	policy = policy.WithSleep(func(time.Duration) {})
	fed.SetResiliencePolicy(policy)
	dropped, stats, err := fed.TrainSecureFedAvg(2, data, rounds, cfg,
		SecAggOptions{Entropy: keyex.SeededEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != rounds {
		t.Fatalf("run stalled: %+v", stats)
	}
	if stats.Drops == 0 || stats.Recoveries == 0 {
		t.Fatalf("dead party injected no drops/recoveries: %+v", stats)
	}
	if stats.Recoveries != stats.Drops {
		t.Fatalf("every drop must be recovered: %+v", stats)
	}
	if stats.RevealBytes == 0 {
		t.Fatal("seed reveals not accounted")
	}

	// Reference: same federation, C contributes nothing, no chaos.
	ref, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	noC := map[string][]ltr.Instance{"A": data["A"], "B": data["B"]}
	want, _, err := ref.TrainSecureFedAvg(2, noC, rounds, cfg,
		SecAggOptions{Entropy: keyex.SeededEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.W {
		if dropped.W[i] != want.W[i] {
			t.Fatalf("weight %d: recovered run %v != no-data run %v", i, dropped.W[i], want.W[i])
		}
	}
	if dropped.B != want.B {
		t.Fatalf("bias: recovered run %v != no-data run %v", dropped.B, want.B)
	}
	// And the recovered model still converges.
	if math.Abs(dropped.W[0]-1.5) > 0.2 || math.Abs(dropped.W[1]+2) > 0.2 {
		t.Fatalf("recovered model did not converge: %+v", dropped)
	}
}

// TestTrainSecureFedAvgEntropyIndependence: the learned model must not
// depend on the key-agreement entropy — masks cancel bit-exactly
// whatever the secrets are.
func TestTrainSecureFedAvgEntropyIndependence(t *testing.T) {
	data := map[string][]ltr.Instance{
		"A": trainData(150, 1),
		"B": trainData(150, 2),
	}
	cfg := ltr.DefaultSGDConfig()
	var models []*ltr.LinearModel
	for _, seed := range []uint64{1, 2} {
		fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := fed.TrainSecureFedAvg(2, data, 8, cfg,
			SecAggOptions{Entropy: keyex.SeededEntropy(seed)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	if models[0].W[0] != models[1].W[0] || models[0].B != models[1].B {
		t.Fatal("model depends on mask entropy: cancellation is not exact")
	}
}

// TestTrainSecureFedAvgQuorum fails the round when too few parties
// survive.
func TestTrainSecureFedAvgQuorum(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(3)
	in.SetDefault(chaos.Profile{Down: true})
	fed.Server.SetChaos(in)
	policy := resilience.DefaultPolicy()
	policy = policy.WithSleep(func(time.Duration) {})
	fed.SetResiliencePolicy(policy)
	data := map[string][]ltr.Instance{
		"A": trainData(50, 1),
		"B": trainData(50, 2),
	}
	_, _, err = fed.TrainSecureFedAvg(2, data, 4, ltr.DefaultSGDConfig(), SecAggOptions{})
	if !errors.Is(err, ErrSecAggQuorum) {
		t.Fatalf("want ErrSecAggQuorum, got %v", err)
	}
}

// TestTrainSecureFedAvgValidation covers argument checking.
func TestTrainSecureFedAvgValidation(t *testing.T) {
	fed, err := NewDeterministic([]string{"A"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ltr.DefaultSGDConfig()
	if _, _, err := fed.TrainSecureFedAvg(2, nil, 5, cfg, SecAggOptions{}); !errors.Is(err, ErrNoTrainingData) {
		t.Fatalf("empty data: %v", err)
	}
	good := map[string][]ltr.Instance{"A": trainData(10, 1)}
	if _, _, err := fed.TrainSecureFedAvg(2, good, 0, cfg, SecAggOptions{}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	bad := cfg
	bad.LearningRate = 0
	if _, _, err := fed.TrainSecureFedAvg(2, good, 5, bad, SecAggOptions{}); err == nil {
		t.Fatal("bad SGD config accepted")
	}
	badQ := SecAggOptions{Quant: secagg.Config{Scale: -1, Clip: 1}}
	if _, _, err := fed.TrainSecureFedAvg(2, good, 5, cfg, badQ); err == nil {
		t.Fatal("bad quantization config accepted")
	}
}

// TestSecAggTelemetry checks the secure-run metric families appear with
// bounded labels.
func TestSecAggTelemetry(t *testing.T) {
	fed, err := NewDeterministic([]string{"A", "B"}, testParams(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := map[string][]ltr.Instance{
		"A": trainData(60, 1),
		"B": trainData(60, 2),
	}
	if _, _, err := fed.TrainSecureFedAvg(2, data, 3, ltr.DefaultSGDConfig(),
		SecAggOptions{Entropy: keyex.SeededEntropy(1)}); err != nil {
		t.Fatal(err)
	}
	snap := fed.Server.Metrics().Snapshot()
	found := map[string]bool{}
	for _, mf := range snap.Metrics {
		found[mf.Name] = true
		if mf.Name == MetricSecAggStageDuration {
			allowed := map[string]bool{
				StageSecAggMask: true, StageSecAggAggregate: true, StageSecAggRecover: true,
			}
			for _, s := range mf.Series {
				if !allowed[s.Labels["stage"]] {
					t.Fatalf("unbounded secagg stage label %q", s.Labels["stage"])
				}
			}
		}
	}
	for _, name := range []string{MetricSecAggRounds, MetricSecAggStageDuration, MetricSecAggQuantError} {
		if !found[name] {
			t.Fatalf("metric %s not exported", name)
		}
	}
}
