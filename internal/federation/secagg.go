package federation

import (
	"errors"
	"fmt"
	"io"
	"math"

	"csfltr/internal/keyex"
	"csfltr/internal/ltr"
	"csfltr/internal/resilience"
	"csfltr/internal/secagg"
)

// ErrSecAggQuorum is returned when a secure round loses so many parties
// that the surviving submitter count falls below the quorum threshold.
var ErrSecAggQuorum = errors.New("federation: secure aggregation below quorum")

// SecAggOptions configures Federation.TrainSecureFedAvg. The zero value
// is usable: default quantization grid, crypto/rand key-agreement
// entropy, quorum from Params.MinParties.
type SecAggOptions struct {
	// Quant is the fixed-point grid shared by every party. Zero value
	// means secagg.DefaultConfig().
	Quant secagg.Config
	// Entropy feeds the pairwise DH ceremony (nil = crypto/rand). Tests
	// pass keyex.SeededEntropy for reproducible mask material; the
	// learned model does not depend on it either way, because pairwise
	// masks cancel exactly in the ring.
	Entropy io.Reader
	// Threshold is the minimum number of surviving submitters needed to
	// release a round (t of N). 0 means max(1, Params.MinParties).
	Threshold int
}

// SecAggStats reports what a secure training run cost. Hops and bytes
// are read back from the server's relay counters (op="secagg"), so
// secure-training traffic is accounted in exactly one place, like query
// relays and round-robin hops.
type SecAggStats struct {
	Rounds     int
	Recoveries int // dropped parties cancelled via seed reveals
	Drops      int // submissions lost to faults (before recovery)
	ModelHops  int // masked updates + seed reveals relayed
	// BytesRelayed is all op="secagg" relay bytes; MaskedBytes and
	// RevealBytes split it by message type.
	BytesRelayed    int64
	MaskedBytes     int64
	RevealBytes     int64
	Retries         int     // submission attempts beyond the first
	QuantErrorBound float64 // worst-case per-weight error of each aggregate
}

// TrainSecureFedAvg trains with federated averaging where the
// coordinating server never sees a plaintext model update: each round,
// every active party trains a clone of the global model locally, masks
// its quantized weights with per-round pairwise mask streams derived
// from the DH secrets (secagg), and submits only the masked vector. The
// server sums the submissions blind; the masks cancel exactly in the
// ring, so the released average equals the plaintext federated average
// within the quantization bound.
//
// Submissions pass through the chaos interceptor and the federation's
// retry policy and per-party breakers. A party whose submission fails
// permanently is dropped from the round: the surviving submitters
// reveal the per-round pairwise seeds they share with it, the server
// reconstructs and cancels its residual masks, and the round completes
// over the survivors (t-of-N recovery). The round fails only if the
// survivor count falls below the quorum threshold or a reveal cannot be
// obtained.
func (f *Federation) TrainSecureFedAvg(dim int, data map[string][]ltr.Instance, rounds int, cfg ltr.SGDConfig, opts SecAggOptions) (*ltr.LinearModel, SecAggStats, error) {
	var stats SecAggStats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if rounds <= 0 {
		return nil, stats, fmt.Errorf("ltr round count must be positive, got %d", rounds)
	}
	quant := opts.Quant
	if quant == (secagg.Config{}) {
		quant = secagg.DefaultConfig()
	}
	if err := quant.Validate(); err != nil {
		return nil, stats, err
	}
	names := f.Server.PartyNames()
	n := len(names)
	total := 0
	for _, name := range names {
		total += len(data[name])
	}
	if total == 0 {
		return nil, stats, ErrNoTrainingData
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 1
		if f.Params.MinParties > threshold {
			threshold = f.Params.MinParties
		}
	}

	// Key agreement: every pair of parties derives a shared secret; only
	// public keys would travel through the server in the deployed flow.
	secrets, err := keyex.AgreePairwise(n, opts.Entropy)
	if err != nil {
		return nil, stats, err
	}
	maskers := make([]*secagg.Masker, n)
	for i := range maskers {
		mk, err := secagg.NewMasker(i, secrets[i])
		if err != nil {
			return nil, stats, err
		}
		maskers[i] = mk
	}

	model := ltr.NewLinearModel(dim)
	local := cfg
	local.Epochs = 1
	codec := f.trainCodecLabel()
	m := f.Server.metrics()
	startHops, startBytes := m.trafficFor(opSecAgg)
	startRetries := trainRetriesTotal(m, names)
	stats.QuantErrorBound = quant.ErrorBound(n)
	msgN := uint64(0) // chaos-stream discriminator across all messages

	for r := 0; r < rounds; r++ {
		round := m.reg.StartSpan("training.round", m.roundDur)
		local.LearningRate = cfg.LearningRate * math.Pow(cfg.LRDecay, float64(r))

		// Roster for this round: parties with data whose breaker admits
		// calls. Every masker must use the identical roster, so it is
		// fixed before any submission.
		active := make([]bool, n)
		activeCount := 0
		for i, name := range names {
			if len(data[name]) > 0 && f.breakerFor(name).Allow() {
				active[i] = true
				activeCount++
			}
		}
		if activeCount < threshold {
			round.End()
			return nil, stats, fmt.Errorf("%w: %d active of %d required at round %d",
				ErrSecAggQuorum, activeCount, threshold, r)
		}
		agg, err := secagg.NewAggregator(dim+1, active)
		if err != nil {
			round.End()
			return nil, stats, err
		}

		// Local training + masking + submission, party by party.
		var dropped []int
		for i, name := range names {
			if !active[i] {
				continue
			}
			clone := model.Clone()
			local.Seed = cfg.Seed + int64(r*n+i)
			if err := local.Train(clone, data[name]); err != nil {
				round.End()
				return nil, stats, fmt.Errorf("federation: secure round %d party %s: %w", r, name, err)
			}
			maskSpan := m.secaggStageSpan(StageSecAggMask)
			update := make(secagg.RawUpdate, 0, dim+1)
			update = append(update, clone.W...)
			update = append(update, clone.B)
			masked, err := maskers[i].Mask(uint64(r), secagg.Quantize(update, quant), active)
			maskSpan.End()
			if err != nil {
				round.End()
				return nil, stats, err
			}
			msg := secagg.MaskedUpdate{Round: uint64(r), Party: uint32(i), Vec: masked}
			frame := msg.Marshal(nil)
			msgN++
			if err := f.secaggRelay(name, msgN, int64(len(frame))); err != nil {
				// Transient-exhausted or breaker-refused: the party is
				// dropped from this round and recovered below.
				dropped = append(dropped, i)
				stats.Drops++
				continue
			}
			m.recordTransport(name, apiSecAgg, codec, int64(len(frame)))
			stats.MaskedBytes += int64(len(frame))
			// Server side: decode and accumulate blind.
			decoded, err := secagg.UnmarshalMaskedUpdate(frame)
			if err != nil {
				round.End()
				return nil, stats, err
			}
			if err := agg.Add(int(decoded.Party), decoded.Vec); err != nil {
				round.End()
				return nil, stats, err
			}
		}
		survivors := activeCount - len(dropped)
		if survivors < threshold {
			round.End()
			return nil, stats, fmt.Errorf("%w: %d survivors of %d required at round %d",
				ErrSecAggQuorum, survivors, threshold, r)
		}

		// t-of-N recovery: cancel each dropped party's residual masks
		// with seed reveals from every surviving submitter.
		for _, d := range dropped {
			recoverSpan := m.secaggStageSpan(StageSecAggRecover)
			reveals := make(map[int]secagg.Seed, survivors)
			for j, name := range names {
				if !agg.Submitted(j) {
					continue
				}
				seed, err := maskers[j].Reveal(uint64(r), d)
				if err != nil {
					recoverSpan.End()
					round.End()
					return nil, stats, err
				}
				msg := secagg.SeedReveal{Round: uint64(r), From: uint32(j), Dropped: uint32(d), Seed: seed}
				frame := msg.Marshal(nil)
				msgN++
				if err := f.secaggRelay(name, msgN, int64(len(frame))); err != nil {
					// A survivor that cannot deliver its reveal stalls
					// recovery of this party; without the reveal the sum
					// stays masked, so the round cannot be released.
					recoverSpan.End()
					round.End()
					return nil, stats, fmt.Errorf("federation: secure round %d: reveal from %s for dropped %s: %w",
						r, name, names[d], err)
				}
				m.recordTransport(name, apiSecAgg, codec, int64(len(frame)))
				stats.RevealBytes += int64(len(frame))
				decoded, err := secagg.UnmarshalSeedReveal(frame)
				if err != nil {
					recoverSpan.End()
					round.End()
					return nil, stats, err
				}
				reveals[int(decoded.From)] = decoded.Seed
			}
			if err := agg.RemoveDropped(d, reveals); err != nil {
				recoverSpan.End()
				round.End()
				return nil, stats, err
			}
			stats.Recoveries++
			m.secaggRecoveriesCounter().Inc()
			recoverSpan.End()
		}

		// Blind aggregate: masks cancelled, exact ring sum, averaged on
		// the fixed-point grid.
		aggSpan := m.secaggStageSpan(StageSecAggAggregate)
		sum, count, err := agg.Sum()
		if err != nil {
			aggSpan.End()
			round.End()
			return nil, stats, err
		}
		avg := secagg.Dequantize(sum, quant, count)
		copy(model.W, avg[:dim])
		model.B = avg[dim]
		aggSpan.End()
		m.secaggRoundsCounter().Inc()
		m.secaggQuantHist().Observe(quant.ErrorBound(count))
		round.End()
		stats.Rounds++
	}

	endHops, endBytes := m.trafficFor(opSecAgg)
	stats.ModelHops = int(endHops - startHops)
	stats.BytesRelayed = endBytes - startBytes
	stats.Retries = int(trainRetriesTotal(m, names) - startRetries)
	return model, stats, nil
}

// secaggRelay runs the chaos interceptor for one secure-aggregation
// message under the federation's retry policy and breaker, then charges
// its framed size to the op="secagg" relay series. content discriminates
// the message in the chaos stream.
func (f *Federation) secaggRelay(name string, content uint64, frame int64) error {
	m := f.Server.metrics()
	br := f.breakerFor(name)
	if !br.Allow() {
		return fmt.Errorf("federation: secagg relay to %s: %w", name, resilience.ErrBreakerOpen)
	}
	_, attempts, err := resilience.Call(f.ResiliencePolicy(), f.callSeed(name, content),
		func() (struct{}, error) {
			return struct{}{}, f.Server.intercept(name, opSecAgg, content)
		})
	if attempts > 1 {
		m.retriesFor(name).Add(int64(attempts - 1))
	}
	br.Record(err == nil)
	if err != nil {
		return fmt.Errorf("federation: secagg relay to %s: %w", name, err)
	}
	m.record(name, opSecAgg, frame)
	return nil
}
