package federation

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csfltr/internal/core"
)

// httpFed builds a federation and an httptest server fronting it.
func httpFed(t *testing.T) (*Federation, *httptest.Server) {
	t.Helper()
	fed := twoPartyFed(t, testParams())
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	t.Cleanup(ts.Close)
	return fed, ts
}

func TestHTTPParties(t *testing.T) {
	_, ts := httpFed(t)
	resp, err := http.Get(ts.URL + "/v1/parties")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Parties []string `json:"parties"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Parties) != 2 || out.Parties[0] != "A" {
		t.Fatalf("parties = %v", out.Parties)
	}
}

func TestHTTPDocsAndMeta(t *testing.T) {
	_, ts := httpFed(t)
	var docs struct {
		IDs []int `json:"ids"`
	}
	resp, err := http.Get(ts.URL + "/v1/parties/B/body/docs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs.IDs) != 3 {
		t.Fatalf("docs = %v", docs.IDs)
	}
	var meta struct{ Length, Unique int }
	resp2, err := http.Get(ts.URL + "/v1/parties/B/body/docs/0/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.Length != 5 || meta.Unique != 2 {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := httpFed(t)
	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		{"GET", "/v1/parties/ZZZ/body/docs", "", http.StatusNotFound},
		{"GET", "/v1/parties/B/wings/docs", "", http.StatusBadRequest},
		{"GET", "/v1/parties/B/body/docs/xx/meta", "", http.StatusBadRequest},
		{"GET", "/v1/parties/B/body/docs/999/meta", "", http.StatusNotFound},
		{"POST", "/v1/parties/B/body/tf", "{not json", http.StatusBadRequest},
		{"POST", "/v1/parties/B/body/tf", `{"doc_id":0,"cols":[1]}`, http.StatusBadRequest},
		{"POST", "/v1/parties/B/body/rtk", `{"cols":[1,2]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var resp *http.Response
		var err error
		if tc.method == "GET" {
			resp, err = http.Get(ts.URL + tc.path)
		} else {
			resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

// TestHTTPOwnerFullProtocol drives the complete reverse top-K and TF
// protocols through the HTTP transport and checks agreement with the
// direct path.
func TestHTTPOwnerFullProtocol(t *testing.T) {
	fed, ts := httpFed(t)
	a, _ := fed.Party("A")

	remote := NewHTTPOwner(ts.URL, "B", FieldBody, ts.Client())
	ids := remote.DocIDs()
	if len(ids) != 3 {
		t.Fatalf("DocIDs = %v", ids)
	}
	got, cost, err := core.RTKReverseTopK(a.Querier(), remote, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].DocID != 0 {
		t.Fatalf("HTTP RTK = %v", got)
	}
	if cost.Messages != 1 {
		t.Fatalf("cost = %+v", cost)
	}
	// TF protocol.
	query, priv := a.Querier().BuildQuery(5)
	resp, err := remote.AnswerTF(0, query)
	if err != nil {
		t.Fatal(err)
	}
	est, err := a.Querier().Recover(priv, resp)
	if err != nil {
		t.Fatal(err)
	}
	if est != 4 {
		t.Fatalf("HTTP TF = %v, want 4", est)
	}
	// NAIVE path over HTTP.
	naive, _, err := core.NaiveReverseTopK(a.Querier(), remote, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) == 0 || naive[0].DocID != 0 {
		t.Fatalf("HTTP NAIVE = %v", naive)
	}
	// Unknown doc meta errors.
	if _, _, err := remote.DocMeta(999); err == nil {
		t.Fatal("unknown doc should error over HTTP")
	}
	// Unknown party: empty roster, query errors.
	ghost := NewHTTPOwner(ts.URL, "ZZZ", FieldBody, ts.Client())
	if ids := ghost.DocIDs(); ids != nil {
		t.Fatalf("ghost roster = %v", ids)
	}
	if _, err := ghost.AnswerRTK(query); err == nil {
		t.Fatal("ghost query should error")
	}
}

// TestHTTPTrafficAccounted: requests through the gateway are charged to
// the same server traffic counters.
func TestHTTPTrafficAccounted(t *testing.T) {
	fed, ts := httpFed(t)
	fed.Server.ResetTraffic()
	a, _ := fed.Party("A")
	remote := NewHTTPOwner(ts.URL, "B", FieldBody, ts.Client())
	if _, _, err := core.RTKReverseTopK(a.Querier(), remote, 5, 2); err != nil {
		t.Fatal(err)
	}
	if tr := fed.Server.Traffic(); tr.Messages < 2 || tr.Bytes == 0 {
		t.Fatalf("gateway traffic not accounted: %+v", tr)
	}
}
