package federation

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/ltr"
	"csfltr/internal/telemetry"
)

// rtkQueryVia runs one fixed RTK query through the given owner view and
// returns the server traffic it generated.
func rtkQueryVia(t *testing.T, fed *Federation, owner core.OwnerAPI) TrafficStats {
	t.Helper()
	a, _ := fed.Party("A")
	before := fed.Server.Traffic()
	if _, _, err := core.RTKReverseTopK(a.Querier(), owner, 5, 2); err != nil {
		t.Fatal(err)
	}
	after := fed.Server.Traffic()
	return TrafficStats{Messages: after.Messages - before.Messages, Bytes: after.Bytes - before.Bytes}
}

// TestTransportByteParity is the regression test for consolidated byte
// accounting: the same reverse top-K query must be charged identical
// message and byte counts whether it arrives in-process, over HTTP or
// over net/rpc — all three route through the server's single accounting
// helper.
func TestTransportByteParity(t *testing.T) {
	fed := twoPartyFed(t, testParams())

	direct, err := fed.Server.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	inProc := rtkQueryVia(t, fed, direct)
	if inProc.Messages == 0 || inProc.Bytes == 0 {
		t.Fatalf("in-process query not accounted: %+v", inProc)
	}

	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	overHTTP := rtkQueryVia(t, fed, NewHTTPOwner(ts.URL, "B", FieldBody, ts.Client()))

	rs, err := ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	client, err := Dial(rs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	overRPC := rtkQueryVia(t, fed, client.OwnerFor("B", FieldBody))

	if overHTTP != inProc {
		t.Fatalf("HTTP traffic %+v != in-process %+v", overHTTP, inProc)
	}
	if overRPC != inProc {
		t.Fatalf("RPC traffic %+v != in-process %+v", overRPC, inProc)
	}
}

// TestTrafficIsRegistryView: the legacy TrafficStats API reads the same
// numbers the Prometheus counters expose, and ResetTraffic zeroes both.
func TestTrafficIsRegistryView(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	owner, err := fed.Server.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fed.Party("A")
	if _, _, err := core.RTKReverseTopK(a.Querier(), owner, 5, 2); err != nil {
		t.Fatal(err)
	}
	tr := fed.Server.Traffic()
	if tr.Messages == 0 || tr.Bytes == 0 {
		t.Fatalf("no traffic recorded: %+v", tr)
	}
	snap := fed.Server.Metrics().Snapshot()
	var msgs, bytes int64
	for _, s := range snap.Metric(MetricRelayedMessages).Series {
		if s.Labels["party"] != "B" || s.Labels["op"] != opQuery {
			t.Fatalf("unexpected relay series labels %v", s.Labels)
		}
		msgs += int64(s.Value)
	}
	for _, s := range snap.Metric(MetricRelayedBytes).Series {
		bytes += int64(s.Value)
	}
	if msgs != tr.Messages || bytes != tr.Bytes {
		t.Fatalf("registry (%d msgs, %d B) != TrafficStats %+v", msgs, bytes, tr)
	}
	fed.Server.ResetTraffic()
	if tr := fed.Server.Traffic(); tr != (TrafficStats{}) {
		t.Fatalf("ResetTraffic left %+v", tr)
	}
}

// TestAPILatencyRecorded: owner API calls through the server land in the
// per-API latency histogram.
func TestAPILatencyRecorded(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	owner, err := fed.Server.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fed.Party("A")
	if _, _, err := core.RTKReverseTopK(a.Querier(), owner, 5, 2); err != nil {
		t.Fatal(err)
	}
	m := fed.Server.Metrics().Snapshot().Metric(MetricAPILatency)
	if m == nil {
		t.Fatal("API latency histogram missing")
	}
	var rtk int64
	for _, s := range m.Series {
		if s.Labels["api"] == apiRTK {
			rtk = s.Count
		}
	}
	if rtk == 0 {
		t.Fatal("rtk API call not timed")
	}
}

// TestSearchStagesRecorded: a federated search populates the rtk_query
// and merge stage histograms and the search counters.
func TestSearchStagesRecorded(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	if _, _, err := fed.FederatedSearch("A", []uint64{5, 9}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.CrossTF("A", "B", FieldBody, 0, 5); err != nil {
		t.Fatal(err)
	}
	snap := fed.Server.Metrics().Snapshot()
	stages := map[string]int64{}
	if m := snap.Metric(MetricSearchStageDuration); m != nil {
		for _, s := range m.Series {
			stages[s.Labels["stage"]] = s.Count
		}
	}
	if stages[StageRTKQuery] == 0 {
		t.Fatalf("rtk_query stage not timed: %v", stages)
	}
	if stages[StageMerge] == 0 {
		t.Fatalf("merge stage not timed: %v", stages)
	}
	if stages[StageTFQuery] == 0 {
		t.Fatalf("tf_query stage not timed: %v", stages)
	}
	if m := snap.Metric(MetricSearchRequests); m == nil || m.Series[0].Value != 1 {
		t.Fatalf("search request counter wrong: %+v", m)
	}
	if m := snap.Metric(MetricSearchDuration); m == nil || m.Series[0].Count != 1 {
		t.Fatalf("search duration histogram wrong: %+v", m)
	}
}

// TestDPNoiseStageRecorded: with DP enabled, answering queries draws
// noise and the draws are timed into the dp_noise stage.
func TestDPNoiseStageRecorded(t *testing.T) {
	p := testParams()
	p.Epsilon = 1
	fed := twoPartyFed(t, p)
	owner, err := fed.Server.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fed.Party("A")
	if _, _, err := core.RTKReverseTopK(a.Querier(), owner, 5, 2); err != nil {
		t.Fatal(err)
	}
	snap := fed.Server.Metrics().Snapshot()
	var dpCount int64
	if m := snap.Metric(MetricSearchStageDuration); m != nil {
		for _, s := range m.Series {
			if s.Labels["stage"] == StageDPNoise {
				dpCount = s.Count
			}
		}
	}
	if dpCount == 0 {
		t.Fatal("dp_noise stage not timed under epsilon > 0")
	}
}

// TestTrainingStatsFromRegistry: TrainRoundRobin's hop/byte stats are a
// view over the op="train" relay counters and round durations land in
// the training histogram.
func TestTrainingStatsFromRegistry(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	data := map[string][]ltr.Instance{
		"A": {{Features: []float64{1, 0}, Label: 1, QueryKey: "q0"}},
		"B": {{Features: []float64{0, 1}, Label: 0, QueryKey: "q1"}},
	}
	cfg := ltr.DefaultSGDConfig()
	_, stats, err := fed.TrainRoundRobin(2, data, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 || stats.ModelHops != 12 {
		t.Fatalf("stats = %+v, want 3 rounds / 12 hops", stats)
	}
	// BytesRelayed carries the framed encoded model per hop; the legacy
	// fixed-width figure (12 hops x (2 weights + bias) x 8 bytes) is the
	// reference the framing overhead is measured against.
	legacyBytes := int64(12) * modelWireSize(2)
	// Compact integral values can dip below the fixed-width figure, so
	// the lower bound is loose.
	perHopOverhead := (stats.BytesRelayed - legacyBytes) / 12
	if perHopOverhead < -16 || perHopOverhead > 16 {
		t.Fatalf("BytesRelayed = %d (legacy reference %d): framing overhead %d bytes/hop out of range",
			stats.BytesRelayed, legacyBytes, perHopOverhead)
	}
	snap := fed.Server.Metrics().Snapshot()
	var trainBytes int64
	for _, s := range snap.Metric(MetricRelayedBytes).Series {
		if s.Labels["op"] == opTrain {
			trainBytes += int64(s.Value)
		}
	}
	if trainBytes != stats.BytesRelayed {
		t.Fatalf("registry train bytes = %d, want %d", trainBytes, stats.BytesRelayed)
	}
	if m := snap.Metric(MetricTrainingRoundDuration); m == nil || m.Series[0].Count != 3 {
		t.Fatalf("round duration histogram wrong: %+v", m)
	}
}

// TestRPCMetricsRecorded: RPC calls are counted, timed and error-tallied
// per method.
func TestRPCMetricsRecorded(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	rs, err := ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	client, err := Dial(rs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	owner := client.OwnerFor("B", FieldBody)
	if ids := owner.DocIDs(); len(ids) != 3 {
		t.Fatalf("DocIDs over RPC = %v", ids)
	}
	// Unknown party produces an RPC error sample.
	if _, _, err := client.OwnerFor("ZZZ", FieldBody).DocMeta(0); err == nil {
		t.Fatal("unknown party should error")
	}
	snap := fed.Server.Metrics().Snapshot()
	reqs := map[string]int64{}
	if m := snap.Metric("csfltr_rpc_requests_total"); m != nil {
		for _, s := range m.Series {
			reqs[s.Labels["method"]] = int64(s.Value)
		}
	}
	if reqs["DocIDs"] != 1 || reqs["DocMeta"] != 1 {
		t.Fatalf("rpc request counters = %v", reqs)
	}
	if m := snap.Metric("csfltr_rpc_errors_total"); m == nil || m.Series[0].Labels["method"] != "DocMeta" {
		t.Fatalf("rpc error counter missing: %+v", m)
	}
	if m := snap.Metric("csfltr_rpc_request_duration_seconds"); m == nil {
		t.Fatal("rpc latency histogram missing")
	}
}

// TestHTTPMetricsRoute: the gateway serves Prometheus text including
// request counters, latency histograms and relayed-bytes counters after
// a federated query has flowed through it.
func TestHTTPMetricsRoute(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	a, _ := fed.Party("A")
	remote := NewHTTPOwner(ts.URL, "B", FieldBody, ts.Client())
	if _, _, err := core.RTKReverseTopK(a.Querier(), remote, 5, 2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"csfltr_http_requests_total{",
		"csfltr_http_request_duration_seconds_bucket{",
		`csfltr_server_relayed_bytes_total{op="query",party="B"}`,
		"csfltr_server_api_latency_seconds_bucket{",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/v1/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestHTTPMethodNotAllowed: wrong-method requests get a JSON 405 with an
// Allow header and the request ID echoed in the envelope.
func TestHTTPMethodNotAllowed(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	cases := []struct {
		method, path, wantAllow string
	}{
		{"POST", "/v1/parties", "GET"},
		{"DELETE", "/v1/parties/B/body/docs", "GET"},
		{"GET", "/v1/parties/B/body/tf", "POST"},
		{"PUT", "/v1/parties/B/body/rtk", "POST"},
		{"POST", "/v1/metrics", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", "parity-check-42")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.wantAllow {
			t.Fatalf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.wantAllow)
		}
		if !strings.Contains(string(body), `"request_id":"parity-check-42"`) {
			t.Fatalf("%s %s: envelope missing request id: %s", tc.method, tc.path, body)
		}
	}
}

// TestHTTPRequestID: the gateway assigns an ID when absent, echoes a
// caller-provided one, and unknown routes return the JSON envelope.
func TestHTTPRequestID(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/parties")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("gateway did not assign a request id")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/parties", nil)
	req.Header.Set("X-Request-ID", "caller-7")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Fatalf("propagated id = %q, want caller-7", got)
	}

	resp3, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound || !strings.Contains(string(body), `"request_id"`) {
		t.Fatalf("unknown route: status %d body %s", resp3.StatusCode, body)
	}
}

// TestSetRegistry: a server embedded into an external registry records
// there, including re-wired party DP timers.
func TestSetRegistry(t *testing.T) {
	p := testParams()
	p.Epsilon = 1
	fed := twoPartyFed(t, p)
	reg := telemetry.NewRegistry()
	fed.Server.SetRegistry(reg)
	owner, err := fed.Server.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fed.Party("A")
	if _, _, err := core.RTKReverseTopK(a.Querier(), owner, 5, 2); err != nil {
		t.Fatal(err)
	}
	if fed.Server.Metrics() != reg {
		t.Fatal("Metrics() did not return the injected registry")
	}
	snap := reg.Snapshot()
	if m := snap.Metric(MetricRelayedBytes); m == nil {
		t.Fatal("relay counters absent from injected registry")
	}
	var dpCount int64
	if m := snap.Metric(MetricSearchStageDuration); m != nil {
		for _, s := range m.Series {
			if s.Labels["stage"] == StageDPNoise {
				dpCount = s.Count
			}
		}
	}
	if dpCount == 0 {
		t.Fatal("party DP timers not re-wired to injected registry")
	}
	if tr := fed.Server.Traffic(); tr.Messages == 0 {
		t.Fatalf("Traffic view broken after SetRegistry: %+v", tr)
	}
}
