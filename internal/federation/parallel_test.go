package federation

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"csfltr/internal/telemetry"
	"csfltr/internal/textkit"
)

// parallelDocs builds a deterministic document set for one party.
func parallelDocs(seed int64, n int) []*textkit.Document {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]*textkit.Document, n)
	for i := range docs {
		body := make([]textkit.TermID, 30)
		for j := range body {
			body[j] = textkit.TermID(rng.Intn(400))
		}
		title := []textkit.TermID{body[0], body[1]}
		docs[i] = textkit.NewDocument(i, -1, title, body)
	}
	return docs
}

// parallelSearchFed builds a 5-party federation (querier Q + 4 data
// parties) with a few hundred documents each.
func parallelSearchFed(t *testing.T) *Federation {
	t.Helper()
	fed, err := NewDeterministic([]string{"Q", "A", "B", "C", "D"}, testParams(), 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range fed.Parties[1:] {
		for _, d := range parallelDocs(int64(i)+1, 60) {
			if err := p.IngestDocument(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fed
}

// TestFederatedSearchParallelMatchesSequential: the concurrent fan-out
// must return exactly the sequential ranking and cost at every pool
// size — term plans are built once in deterministic order and per-task
// results merge in task order, so scheduling cannot leak into scores.
func TestFederatedSearchParallelMatchesSequential(t *testing.T) {
	terms := []uint64{3, 17, 17, 99, 250}
	base := parallelSearchFed(t)
	base.Params.Parallelism = 1
	wantHits, wantCost, err := base.FederatedSearch("Q", terms, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantHits) == 0 {
		t.Fatal("degenerate test: sequential search found nothing")
	}
	for _, workers := range []int{2, 4, 16, 0 /* GOMAXPROCS */} {
		fed := parallelSearchFed(t)
		fed.Params.Parallelism = workers
		hits, cost, err := fed.FederatedSearch("Q", terms, 12)
		if err != nil {
			t.Fatal(err)
		}
		if cost != wantCost {
			t.Fatalf("workers=%d: cost %+v, want %+v", workers, cost, wantCost)
		}
		if len(hits) != len(wantHits) {
			t.Fatalf("workers=%d: %d hits, want %d", workers, len(hits), len(wantHits))
		}
		for i := range hits {
			if hits[i] != wantHits[i] {
				t.Fatalf("workers=%d: hit %d = %+v, want %+v", workers, i, hits[i], wantHits[i])
			}
		}
	}
}

// TestFederatedSearchBudgetAbortsBeforeDispatch: the whole fan-out's
// privacy budget is spent up front, so a refusal must abort the search
// before any query is relayed.
func TestFederatedSearchBudgetAbortsBeforeDispatch(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	fed, err := NewDeterministic([]string{"B", "C"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Querier with a budget covering the first (party, term) spend only.
	q, err := NewParty("Q", PartyConfig{Params: p, Seed: 42, RNGSeed: 1, Budget: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.Server.Register(q); err != nil {
		t.Fatal(err)
	}
	fed.Parties = append(fed.Parties, q)
	b, _ := fed.Party("B")
	mustIngest(t, b, 0, []textkit.TermID{1, 2})
	before := fed.Server.Traffic()
	if _, _, err := fed.FederatedSearch("Q", []uint64{1, 2}, 3); err == nil {
		t.Fatal("budget overrun should abort the search")
	}
	if after := fed.Server.Traffic(); after != before {
		t.Fatalf("queries were dispatched despite budget refusal: before %+v, after %+v",
			before, after)
	}
}

// TestRunPool exercises the shared worker pool directly: every task runs
// exactly once at any pool size, and the depth gauges drain back to zero.
func TestRunPool(t *testing.T) {
	m := newServerMetrics(telemetry.NewRegistry())
	for _, workers := range []int{-1, 0, 1, 3, 7, 100} {
		const n = 50
		var ran [n]atomic.Int32
		runPool(workers, n, m, func(i int) { ran[i].Add(1) })
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		if q := m.poolQueue.Value(); q != 0 {
			t.Fatalf("workers=%d: queue depth gauge left at %v", workers, q)
		}
		if f := m.poolInFlight.Value(); f != 0 {
			t.Fatalf("workers=%d: in-flight gauge left at %v", workers, f)
		}
	}
	// Degenerate inputs are no-ops.
	runPool(4, 0, m, func(int) { t.Fatal("ran a task for n=0") })
	runPool(4, -3, nil, func(int) { t.Fatal("ran a task for n<0") })
}

// TestIngestAllParallelMatchesSequential: bulk party ingestion must be
// observationally identical to the document-at-a-time loop — same
// document refs and same federated search results (which exercise both
// the body owners and the metadata).
func TestIngestAllParallelMatchesSequential(t *testing.T) {
	docs := parallelDocs(3, 120)
	build := func(bulk bool) *Federation {
		fed, err := NewDeterministic([]string{"Q", "A"}, testParams(), 42, 7)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := fed.Party("A")
		if bulk {
			if err := a.IngestAllParallel(docs, 4); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, d := range docs {
				if err := a.IngestDocument(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		return fed
	}
	seq := build(false)
	par := build(true)
	seqParty, _ := seq.Party("A")
	parParty, _ := par.Party("A")
	if len(seqParty.docRefs) != len(parParty.docRefs) {
		t.Fatalf("docRefs: %d vs %d", len(seqParty.docRefs), len(parParty.docRefs))
	}
	terms := []uint64{5, 42, 133, 301}
	wantHits, wantCost, err := seq.FederatedSearch("Q", terms, 15)
	if err != nil {
		t.Fatal(err)
	}
	gotHits, gotCost, err := par.FederatedSearch("Q", terms, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantHits) == 0 {
		t.Fatal("degenerate test: no hits")
	}
	if gotCost != wantCost || len(gotHits) != len(wantHits) {
		t.Fatalf("bulk-ingested federation answers differently: %d hits %+v vs %d hits %+v",
			len(gotHits), gotCost, len(wantHits), wantCost)
	}
	for i := range wantHits {
		if gotHits[i] != wantHits[i] {
			t.Fatalf("hit %d: %+v vs %+v", i, gotHits[i], wantHits[i])
		}
	}
}

// TestSetPartyLink: a configured per-party round trip must be
// observable on that party's relayed owner calls only, and removable
// again.
func TestSetPartyLink(t *testing.T) {
	fed := searchFed(t)
	const rtt = 30 * time.Millisecond
	fed.Server.SetPartyLink("B", rtt)
	owner, err := fed.Server.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := owner.DocMeta(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < rtt {
		t.Fatalf("relayed call took %v, want >= %v", elapsed, rtt)
	}
	// Another party's link is untouched.
	other, err := fed.Server.OwnerFor("C", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	other.DocIDs()
	if elapsed := time.Since(start); elapsed >= rtt {
		t.Fatalf("unconfigured party's call took %v", elapsed)
	}
	fed.Server.SetPartyLink("B", 0)
	start = time.Now()
	if _, _, err := owner.DocMeta(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > rtt {
		t.Fatalf("delay did not reset: call took %v", elapsed)
	}
}

// TestSetPartyLinkAllParties: configuring every party's link one by one
// applies one round trip per relayed call to each of them (the
// per-party replacement for the removed global SetLinkDelay knob).
func TestSetPartyLinkAllParties(t *testing.T) {
	fed := searchFed(t)
	const rtt = 30 * time.Millisecond
	for _, party := range []string{"B", "C"} {
		fed.Server.SetPartyLink(party, rtt)
	}
	for _, party := range []string{"B", "C"} {
		owner, err := fed.Server.OwnerFor(party, FieldBody)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, _, err := owner.DocMeta(0); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed < rtt {
			t.Fatalf("party %s: relayed call took %v, want >= %v", party, elapsed, rtt)
		}
	}
	for _, party := range []string{"B", "C"} {
		fed.Server.SetPartyLink(party, 0)
	}
	owner, _ := fed.Server.OwnerFor("B", FieldBody)
	start := time.Now()
	if _, _, err := owner.DocMeta(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > rtt {
		t.Fatalf("delay did not reset: call took %v", elapsed)
	}
}
