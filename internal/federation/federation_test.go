package federation

import (
	"errors"
	"math"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

// testParams returns collision-light protocol parameters with DP off.
func testParams() core.Params {
	p := core.DefaultParams()
	p.W = 512
	p.Z = 9
	p.Z1 = 5
	p.Epsilon = 0
	p.K = 5
	return p
}

func doc(id int, body ...textkit.TermID) *textkit.Document {
	return textkit.NewDocument(id, -1, []textkit.TermID{textkit.TermID(1000 + id)}, body)
}

func twoPartyFed(t *testing.T, p core.Params) *Federation {
	t.Helper()
	fed, err := NewDeterministic([]string{"A", "B"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fed.Party("A")
	b, _ := fed.Party("B")
	if err := a.IngestAll([]*textkit.Document{
		doc(0, 5, 5, 6),
		doc(1, 6, 7),
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestAll([]*textkit.Document{
		doc(0, 5, 5, 5, 5, 9),
		doc(1, 5, 9, 9),
		doc(2, 8, 8, 8),
	}); err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestFieldString(t *testing.T) {
	if FieldBody.String() != "body" || FieldTitle.String() != "title" {
		t.Fatal("field names wrong")
	}
	if Field(9).String() == "" {
		t.Fatal("unknown field should render")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewDeterministic(nil, testParams(), 1, 1); err == nil {
		t.Fatal("no parties should error")
	}
	bad := testParams()
	bad.Z = 0
	if _, err := NewDeterministic([]string{"A"}, bad, 1, 1); !errors.Is(err, core.ErrBadParams) {
		t.Fatalf("bad params: %v", err)
	}
	if _, err := NewParty("", PartyConfig{Params: testParams()}); err == nil {
		t.Fatal("empty name should error")
	}
}

func TestNewWithCeremony(t *testing.T) {
	fed, err := New([]string{"A", "B", "C"}, testParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Parties) != 3 {
		t.Fatalf("parties = %d", len(fed.Parties))
	}
	if fed.HashSeed == 0 {
		t.Fatal("ceremony produced zero seed (suspicious)")
	}
	names := fed.Server.PartyNames()
	if len(names) != 3 || names[0] != "A" || names[2] != "C" {
		t.Fatalf("names = %v", names)
	}
}

func TestServerRegisterDuplicate(t *testing.T) {
	srv := NewServer()
	p, err := NewParty("A", PartyConfig{Params: testParams(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(p); err == nil {
		t.Fatal("duplicate registration should error")
	}
	if _, err := srv.OwnerFor("ZZZ", FieldBody); !errors.Is(err, ErrUnknownParty) {
		t.Fatal("unknown party should error")
	}
	if _, err := srv.OwnerFor("A", Field(9)); !errors.Is(err, ErrUnknownField) {
		t.Fatal("unknown field should error")
	}
}

func TestCrossTFExact(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	// Term 5 occurs 4x in B's doc 0, 1x in doc 1, 0x in doc 2.
	cases := []struct {
		docID int
		want  float64
	}{{0, 4}, {1, 1}, {2, 0}}
	for _, tc := range cases {
		got, err := fed.CrossTF("A", "B", FieldBody, tc.docID, 5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("CrossTF doc %d = %v, want %v", tc.docID, got, tc.want)
		}
	}
	// Title field is sketched separately.
	got, err := fed.CrossTF("A", "B", FieldTitle, 1, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("title TF = %v, want 1", got)
	}
}

func TestCrossTFSelfQuery(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	if _, err := fed.CrossTF("A", "A", FieldBody, 0, 5); !errors.Is(err, ErrSelfQuery) {
		t.Fatal("self query should be rejected")
	}
	if _, _, err := fed.ReverseTopK("A", "A", FieldBody, 5, 3, true); !errors.Is(err, ErrSelfQuery) {
		t.Fatal("self reverse top-K should be rejected")
	}
	if _, err := fed.CrossTF("ZZ", "B", FieldBody, 0, 5); !errors.Is(err, ErrUnknownParty) {
		t.Fatal("unknown source should error")
	}
	if _, err := fed.CrossTF("A", "ZZ", FieldBody, 0, 5); !errors.Is(err, ErrUnknownParty) {
		t.Fatal("unknown target should error")
	}
}

func TestReverseTopKBothAlgorithms(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	for _, useRTK := range []bool{false, true} {
		got, cost, err := fed.ReverseTopK("A", "B", FieldBody, 5, 2, useRTK)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[0].DocID != 0 {
			t.Fatalf("useRTK=%v: top doc = %v, want doc 0", useRTK, got)
		}
		if cost.BytesReceived == 0 {
			t.Fatalf("useRTK=%v: no response traffic recorded", useRTK)
		}
	}
}

func TestTrafficAccounting(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	fed.Server.ResetTraffic()
	if _, _, err := fed.ReverseTopK("A", "B", FieldBody, 5, 2, true); err != nil {
		t.Fatal(err)
	}
	tr := fed.Server.Traffic()
	if tr.Messages < 2 || tr.Bytes <= 0 {
		t.Fatalf("traffic = %+v, want at least request+response", tr)
	}
	fed.Server.ResetTraffic()
	if got := fed.Server.Traffic(); got.Messages != 0 || got.Bytes != 0 {
		t.Fatal("ResetTraffic did not clear counters")
	}
}

func TestPrivacyAccounting(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	fed := twoPartyFed(t, p)
	a, _ := fed.Party("A")
	if _, err := fed.CrossTF("A", "B", FieldBody, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.ReverseTopK("A", "B", FieldBody, 5, 2, true); err != nil {
		t.Fatal(err)
	}
	if got := a.Accountant().Spent("B"); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("accountant recorded %v, want 1.0 (two queries at eps=0.5)", got)
	}
}

func TestPrivacyBudgetEnforced(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	party, err := NewParty("A", PartyConfig{Params: p, Seed: 42, RNGSeed: 1, Budget: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewParty("B", PartyConfig{Params: p, Seed: 42, RNGSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.IngestDocument(doc(0, 5, 5)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.Register(party); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(other); err != nil {
		t.Fatal(err)
	}
	fed := &Federation{Server: srv, Parties: []*Party{party, other}, Params: p, HashSeed: 42}
	if _, err := fed.CrossTF("A", "B", FieldBody, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Second query would exceed 0.7 budget.
	if _, err := fed.CrossTF("A", "B", FieldBody, 0, 5); err == nil {
		t.Fatal("budget overrun should be refused")
	}
}

func TestIngestDuplicate(t *testing.T) {
	p, err := NewParty("A", PartyConfig{Params: testParams(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IngestDocument(doc(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.IngestDocument(doc(0, 2)); err == nil {
		t.Fatal("duplicate doc id should error")
	}
	if p.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d", p.NumDocs())
	}
}

func TestCountsToUint64(t *testing.T) {
	tv := textkit.TermVector{3: 2, 9: 5}
	m := CountsToUint64(tv)
	if len(m) != 2 || m[3] != 2 || m[9] != 5 {
		t.Fatalf("CountsToUint64 = %v", m)
	}
}

func TestRPCTransport(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	rpcSrv, err := ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rpcSrv.Close()
	client, err := Dial(rpcSrv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	remote := client.OwnerFor("B", FieldBody)
	ids := remote.DocIDs()
	if len(ids) != 3 {
		t.Fatalf("remote DocIDs = %v", ids)
	}
	length, unique, err := remote.DocMeta(0)
	if err != nil || length != 5 || unique != 2 {
		t.Fatalf("remote DocMeta = %d,%d,%v", length, unique, err)
	}
	// Full reverse top-K through the RPC transport.
	a, _ := fed.Party("A")
	got, _, err := core.RTKReverseTopK(a.Querier(), remote, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].DocID != 0 {
		t.Fatalf("remote RTK top doc = %v", got)
	}
	naive, _, err := core.NaiveReverseTopK(a.Querier(), remote, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) == 0 || naive[0].DocID != 0 {
		t.Fatalf("remote NAIVE top doc = %v", naive)
	}
	// Errors propagate.
	if _, _, err := remote.DocMeta(999); err == nil {
		t.Fatal("remote unknown doc should error")
	}
	unknown := client.OwnerFor("ZZZ", FieldBody)
	if ids := unknown.DocIDs(); ids != nil {
		t.Fatalf("unknown party roster = %v", ids)
	}
	if _, err := unknown.AnswerRTK(&core.TFQuery{Cols: make([]uint32, testParams().Z)}); err == nil {
		t.Fatal("unknown party query should error")
	}
}

func TestRPCServerClose(t *testing.T) {
	fed := twoPartyFed(t, testParams())
	rpcSrv, err := ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := rpcSrv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rpcSrv.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if _, err := Dial(rpcSrv.Addr); err == nil {
		t.Fatal("dialing a closed server should fail")
	}
}
