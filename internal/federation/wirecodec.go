package federation

import (
	"fmt"
	"math"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/wire"
)

// This file builds the federation-level codecs on internal/wire: the
// payload helpers shared by the net/rpc gob hooks (rpc.go), the HTTP
// wire bodies (http.go) and the SearchResult codec. Only released,
// non-private material is ever encoded — obfuscated column vectors,
// perturbed values, document ids and outcome metadata — the same
// surface the JSON and gob encodings already exposed; raw terms and
// hash keys never reach a codec (enforced by the privacyboundary
// analyzer's wire-struct sinks).

// WireContentType is the HTTP media type of wire-framed bodies. A
// client that sends it as Accept gets wire responses; one that sends a
// wire request body labels it with this Content-Type.
const WireContentType = "application/x-csfltr-wire"

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeString consumes a length-prefixed string.
func decodeString(data []byte) (string, []byte, error) {
	n, rest, err := wire.Uvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("%w: string length exceeds input", wire.ErrMalformed)
	}
	return string(rest[:n]), rest[n:], nil
}

// appendCols appends a column vector (count + uvarint indexes).
func appendCols(dst []byte, cols []uint32) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = wire.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// decodeCols consumes a column vector.
func decodeCols(data []byte) ([]uint32, []byte, error) {
	n, rest, err := wire.Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: column count exceeds input", wire.ErrMalformed)
	}
	cols := make([]uint32, n)
	for i := range cols {
		v, r, err := wire.Uvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		if v > math.MaxUint32 {
			return nil, nil, fmt.Errorf("%w: column index out of range", wire.ErrMalformed)
		}
		cols[i], rest = uint32(v), r
	}
	return cols, rest, nil
}

// appendTrace appends the trace metadata triple.
func appendTrace(dst []byte, t traceMeta) []byte {
	dst = appendString(dst, t.TraceID)
	dst = appendString(dst, t.ParentSpan)
	return appendString(dst, t.RequestID)
}

// decodeTrace consumes the trace metadata triple.
func decodeTrace(data []byte) (traceMeta, []byte, error) {
	var t traceMeta
	var err error
	if t.TraceID, data, err = decodeString(data); err != nil {
		return t, nil, err
	}
	if t.ParentSpan, data, err = decodeString(data); err != nil {
		return t, nil, err
	}
	if t.RequestID, data, err = decodeString(data); err != nil {
		return t, nil, err
	}
	return t, data, nil
}

// encodeWireTFRequest frames the HTTP /tf request body: the document id
// and the obfuscated column vector.
func encodeWireTFRequest(docID int, cols []uint32) []byte {
	payload := wire.AppendVarint(nil, int64(docID))
	payload = appendCols(payload, cols)
	return wire.Pack(nil, payload)
}

// decodeWireTFRequest unframes an HTTP /tf request body.
func decodeWireTFRequest(data []byte) (int, []uint32, error) {
	payload, err := wire.Unpack(data)
	if err != nil {
		return 0, nil, err
	}
	id, rest, err := wire.Varint(payload)
	if err != nil {
		return 0, nil, err
	}
	cols, rest, err := decodeCols(rest)
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: trailing bytes", wire.ErrMalformed)
	}
	return int(id), cols, nil
}

// AppendSearchResult appends the framed encoding of a federated search
// result: the merged ranking, the communication cost and the per-party
// availability report — everything a coordinator releases to a client.
func AppendSearchResult(dst []byte, r *SearchResult) []byte {
	payload := wire.AppendUvarint(nil, uint64(len(r.Hits)))
	for _, h := range r.Hits {
		payload = appendString(payload, h.Party)
		payload = wire.AppendVarint(payload, int64(h.DocID))
		payload = appendFloat(payload, h.Score)
	}
	payload = wire.AppendVarint(payload, int64(r.Cost.Messages))
	payload = wire.AppendVarint(payload, r.Cost.BytesSent)
	payload = wire.AppendVarint(payload, r.Cost.BytesReceived)
	payload = wire.AppendVarint(payload, int64(r.Cost.SketchLookups))
	flag := byte(0)
	if r.Partial {
		flag = 1
	}
	payload = append(payload, flag)
	payload = wire.AppendUvarint(payload, uint64(len(r.Parties)))
	for _, p := range r.Parties {
		payload = appendString(payload, p.Party)
		payload = appendString(payload, p.Outcome)
		payload = appendString(payload, p.Err)
		payload = wire.AppendVarint(payload, int64(p.Queries))
		payload = wire.AppendVarint(payload, int64(p.Retries))
		payload = wire.AppendVarint(payload, int64(p.Cached))
		payload = wire.AppendVarint(payload, int64(p.StaleFor))
	}
	return wire.Pack(dst, payload)
}

// DecodeSearchResult decodes a framed search result.
func DecodeSearchResult(data []byte) (*SearchResult, error) {
	payload, err := wire.Unpack(data)
	if err != nil {
		return nil, err
	}
	nhits, rest, err := wire.Uvarint(payload)
	if err != nil {
		return nil, err
	}
	if nhits > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: hit count exceeds input", wire.ErrMalformed)
	}
	out := &SearchResult{}
	if nhits > 0 {
		out.Hits = make([]SearchHit, nhits)
	}
	for i := range out.Hits {
		h := &out.Hits[i]
		if h.Party, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		var id int64
		if id, rest, err = wire.Varint(rest); err != nil {
			return nil, err
		}
		h.DocID = int(id)
		if h.Score, rest, err = decodeFloat(rest); err != nil {
			return nil, err
		}
	}
	var v int64
	if v, rest, err = wire.Varint(rest); err != nil {
		return nil, err
	}
	out.Cost.Messages = int(v)
	if out.Cost.BytesSent, rest, err = wire.Varint(rest); err != nil {
		return nil, err
	}
	if out.Cost.BytesReceived, rest, err = wire.Varint(rest); err != nil {
		return nil, err
	}
	if v, rest, err = wire.Varint(rest); err != nil {
		return nil, err
	}
	out.Cost.SketchLookups = int(v)
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: missing partial flag", wire.ErrMalformed)
	}
	switch rest[0] {
	case 0:
	case 1:
		out.Partial = true
	default:
		return nil, fmt.Errorf("%w: bad partial flag", wire.ErrMalformed)
	}
	rest = rest[1:]
	nparties, rest, err := wire.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	if nparties > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: party count exceeds input", wire.ErrMalformed)
	}
	if nparties > 0 {
		out.Parties = make([]PartyReport, nparties)
	}
	for i := range out.Parties {
		p := &out.Parties[i]
		if p.Party, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if p.Outcome, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if p.Err, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if v, rest, err = wire.Varint(rest); err != nil {
			return nil, err
		}
		p.Queries = int(v)
		if v, rest, err = wire.Varint(rest); err != nil {
			return nil, err
		}
		p.Retries = int(v)
		if v, rest, err = wire.Varint(rest); err != nil {
			return nil, err
		}
		p.Cached = int(v)
		if v, rest, err = wire.Varint(rest); err != nil {
			return nil, err
		}
		p.StaleFor = time.Duration(v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", wire.ErrMalformed)
	}
	return out, nil
}

// sizeSearchRelease charges one released SearchResult under the active
// codec: the in-memory estimate the cache already uses for "raw", the
// framed binary encoding for "wire".
func sizeSearchRelease(codec string, res *SearchResult) int64 {
	if codec != codecWire {
		return searchResultSize(res)
	}
	return int64(len(AppendSearchResult(nil, res)))
}

// sizeTopKRelease charges one batch reverse top-K release under the
// active codec: the historical 12 bytes per (doc, count) pair for
// "raw", the framed single-cell RTK encoding for "wire".
func sizeTopKRelease(codec string, docs []core.DocCount) int64 {
	if codec != codecWire {
		return 12 * int64(len(docs))
	}
	cell := core.RTKCell{IDs: make([]int32, len(docs)), Values: make([]float64, len(docs))}
	for i, d := range docs {
		cell.IDs[i] = int32(d.DocID)
		cell.Values[i] = d.Count
	}
	return wire.SizeRTKResponse(&core.RTKResponse{Cells: []core.RTKCell{cell}})
}

// appendFloat appends a float64 as its little-endian bit pattern
// (scores are post-estimation aggregates; exactness matters more than
// another byte or two of compression).
func appendFloat(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	return append(dst,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// decodeFloat consumes one little-endian float64.
func decodeFloat(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated float", wire.ErrMalformed)
	}
	bits := uint64(data[0]) | uint64(data[1])<<8 | uint64(data[2])<<16 | uint64(data[3])<<24 |
		uint64(data[4])<<32 | uint64(data[5])<<40 | uint64(data[6])<<48 | uint64(data[7])<<56
	return math.Float64frombits(bits), data[8:], nil
}
