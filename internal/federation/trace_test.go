package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/telemetry"
	"csfltr/internal/textkit"
)

// TestTracedDegradedSearchFlightRecorder is the PR's acceptance test:
// a chaos-seeded degraded search under tracing yields ONE coherent span
// tree — fan-out, per-(party, term) RTK queries with retry attempts and
// injected faults, merge — retrievable via GET /v1/trace/{id} together
// with its audit record, and exportable as valid Chrome trace JSON.
func TestTracedDegradedSearchFlightRecorder(t *testing.T) {
	fed := chaosFedUnderTest(t, chaosSearchParams(), 130)
	fed.Server.EnableTracing(TraceConfig{EventCapacity: 256})
	terms := []uint64{5, 42, 133}

	res, traceID, err := fed.SearchTraced("Q", terms, 5)
	if err != nil {
		t.Fatalf("degraded search failed outright: %v", err)
	}
	if !res.Partial {
		t.Fatal("result with a hard-down party is not Partial")
	}
	if traceID == "" {
		t.Fatal("traced search returned no trace ID")
	}

	spans, ok := fed.Server.TraceTree(traceID)
	if !ok {
		t.Fatalf("trace %s not retained", traceID)
	}
	count := map[string]int{}
	faults := 0
	attemptsOnRetriedTask := false
	for _, sp := range spans {
		count[sp.Name]++
		if sp.TraceID != traceID {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, traceID)
		}
		if sp.Attr("fault") != "" {
			faults++
		}
		if sp.Name == "search.stage."+StageRTKQuery && sp.Attr("attempts") == "2" {
			attemptsOnRetriedTask = true
		}
		if sp.Name == "search.stage."+StageRTKQuery {
			if sp.Attr("party") == "" || sp.Attr("term") == "" {
				t.Fatalf("rtk_query span missing party/term attrs: %+v", sp)
			}
			for _, term := range terms {
				if sp.Attr("term") == fmt.Sprint(term) {
					t.Fatalf("raw term leaked into span attrs: %+v", sp)
				}
			}
		}
	}
	if count["search"] != 1 {
		t.Fatalf("want exactly one root search span, got %d", count["search"])
	}
	if count["search.stage."+StageFanout] != 1 || count["search.stage."+StageMerge] != 1 {
		t.Fatalf("missing pipeline stage spans: %v", count)
	}
	// 3 terms x 3 data parties = 9 RTK tasks.
	if count["search.stage."+StageRTKQuery] != 9 {
		t.Fatalf("rtk_query spans = %d, want 9 (counts: %v)", count["search.stage."+StageRTKQuery], count)
	}
	// P0 is hard-down (2 attempts x 3 terms) and seed 130 makes P1 retry:
	// attempts must exceed tasks.
	if count["search.attempt"] <= count["search.stage."+StageRTKQuery] {
		t.Fatalf("attempt spans (%d) do not exceed tasks (%d) despite chaos retries",
			count["search.attempt"], count["search.stage."+StageRTKQuery])
	}
	if faults == 0 {
		t.Fatal("no span recorded an injected fault kind")
	}
	if !attemptsOnRetriedTask {
		t.Fatal("no rtk_query span recorded attempts=2")
	}
	// Every non-root span links back inside the same tree.
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	for _, sp := range spans {
		if sp.ParentID != "" && !ids[sp.ParentID] {
			t.Fatalf("span %s parent %s not in tree", sp.Name, sp.ParentID)
		}
	}

	// The flight recorder's audit record reconciles with the report.
	audit, ok := fed.Server.AuditFor(traceID)
	if !ok {
		t.Fatalf("no audit record for trace %s", traceID)
	}
	if audit.Outcome != AuditPartial || !audit.Partial {
		t.Fatalf("audit outcome %q partial=%v, want partial", audit.Outcome, audit.Partial)
	}
	if audit.Terms != len(terms) || audit.Op != "search" || audit.Querier != "Q" {
		t.Fatalf("audit header %+v", audit)
	}
	if len(audit.Parties) != 3 {
		t.Fatalf("audit parties = %d, want 3", len(audit.Parties))
	}
	for _, p := range audit.Parties {
		if p.Transport != transportInproc {
			t.Fatalf("party %s transport %q, want inproc", p.Party, p.Transport)
		}
		if p.Epsilon != float64(p.Queries)*fed.Params.Epsilon {
			t.Fatalf("party %s epsilon %v != queries %d x %v", p.Party, p.Epsilon, p.Queries, fed.Params.Epsilon)
		}
	}
	if len(audit.Stages) == 0 {
		t.Fatal("audit record has no stage timings")
	}

	// GET /v1/trace/{id} serves the same tree + audit record.
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s -> %d", traceID, resp.StatusCode)
	}
	var tr struct {
		TraceID string                 `json:"trace_id"`
		Spans   []telemetry.SpanRecord `json:"spans"`
		Audit   *AuditRecord           `json:"audit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != traceID || len(tr.Spans) != len(spans) || tr.Audit == nil {
		t.Fatalf("trace route: id=%s spans=%d audit=%v", tr.TraceID, len(tr.Spans), tr.Audit)
	}
	if resp2, err := http.Get(ts.URL + "/v1/trace/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace -> %d, want 404", resp2.StatusCode)
		}
	}

	// GET /v1/audit serves the ledger.
	aresp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var al struct {
		Records []AuditRecord `json:"records"`
	}
	if err := json.NewDecoder(aresp.Body).Decode(&al); err != nil {
		t.Fatal(err)
	}
	if len(al.Records) == 0 || al.Records[len(al.Records)-1].TraceID != traceID {
		t.Fatalf("audit route records = %+v", al.Records)
	}

	// Chrome trace-event export is valid JSON with one event per span.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) != len(spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(ct.TraceEvents), len(spans))
	}
}

// TestAuditEpsilonReconciliation: summing the audit ledger's per-party
// epsilon must reproduce dp.Accountant's spend exactly, and the ledger's
// cached counts must reproduce the accountant's zero-epsilon replays —
// across fresh fan-outs AND whole-query cache replays.
func TestAuditEpsilonReconciliation(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	p.CacheBytes = 1 << 20
	p.Parallelism = 1
	fed, err := NewDeterministic([]string{"A", "B", "C"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	c, _ := fed.Party("C")
	mustIngest(t, b, 0, []textkit.TermID{10, 10, 11})
	mustIngest(t, c, 0, []textkit.TermID{10})
	fed.Server.EnableTracing(TraceConfig{})

	terms := []uint64{10, 11}
	if _, _, err := fed.SearchTraced("A", terms, 3); err != nil {
		t.Fatal(err)
	}
	// Identical repeat: whole-query replay, zero spend.
	if _, _, err := fed.SearchTraced("A", terms, 3); err != nil {
		t.Fatal(err)
	}
	// A subset query: its only term replays from the TASK tier (term 11's
	// per-party answers were cached by the first fan-out), so it spends
	// nothing either — the audit rows must say Cached=1, Queries=0.
	if _, _, err := fed.SearchTraced("A", []uint64{11}, 3); err != nil {
		t.Fatal(err)
	}

	src, _ := fed.Party("A")
	records := fed.Server.AuditRecords()
	if len(records) != 3 {
		t.Fatalf("audit records = %d, want 3", len(records))
	}
	if records[1].Outcome != AuditReplay {
		t.Fatalf("second record outcome %q, want replay", records[1].Outcome)
	}
	if records[1].EpsilonSpent != 0 {
		t.Fatalf("replay record charged epsilon %v", records[1].EpsilonSpent)
	}
	for _, pr := range records[2].Parties {
		if pr.Queries != 0 || pr.Cached != 1 {
			t.Fatalf("task-tier replay row %+v, want 0 queries / 1 cached", pr)
		}
	}
	eps := map[string]float64{}
	cachedCount := map[string]int{}
	for _, rec := range records {
		for _, pr := range rec.Parties {
			eps[pr.Party] += pr.Epsilon
			cachedCount[pr.Party] += pr.Cached
		}
	}
	for _, row := range src.Accountant().Ledger() {
		if got := eps[row.Peer]; got != row.Spent {
			t.Fatalf("peer %s: audit epsilon %v != accountant spend %v", row.Peer, got, row.Spent)
		}
		if got := int64(cachedCount[row.Peer]); got != row.Replays {
			t.Fatalf("peer %s: audit cached %d != accountant replays %d", row.Peer, got, row.Replays)
		}
		// Only the first fan-out spent: 2 terms x 0.5.
		if row.Spent != 1.0 {
			t.Fatalf("peer %s spent %v, want 1.0", row.Peer, row.Spent)
		}
	}
}

// TestAuditBudgetRefusal: a mid-roster budget refusal aborts the search
// but its audit record keeps the partial spends — the rows that already
// charged the accountant — so reconciliation still holds.
func TestAuditBudgetRefusal(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	srv := NewServer()
	fed := &Federation{Server: srv, Params: p, HashSeed: 42}
	for i, name := range []string{"A", "B", "C"} {
		// Budget 1.0 refuses each party's third 0.5 spend.
		pt, err := NewParty(name, PartyConfig{Params: p, Seed: 42, RNGSeed: 7 + int64(i)*1000, Budget: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Register(pt); err != nil {
			t.Fatal(err)
		}
		fed.Parties = append(fed.Parties, pt)
	}
	b, _ := fed.Party("B")
	mustIngest(t, b, 0, []textkit.TermID{10, 10, 11})
	srv.EnableTracing(TraceConfig{})

	// Three terms x 0.5 = 1.5 > budget 1.0: refusal on B's third term,
	// after two spends on B and none on C.
	_, traceID, err := fed.SearchTraced("A", []uint64{10, 11, 12}, 3)
	if err == nil {
		t.Fatal("expected budget refusal")
	}
	audit, ok := srv.AuditFor(traceID)
	if !ok {
		t.Fatal("no audit record for refused search")
	}
	if audit.Outcome != AuditBudgetRefused {
		t.Fatalf("audit outcome %q, want budget_refused", audit.Outcome)
	}
	if len(audit.Parties) != 1 || audit.Parties[0].Party != "B" {
		t.Fatalf("audit parties %+v, want the refusing party B", audit.Parties)
	}
	if audit.Parties[0].Queries != 2 || audit.Parties[0].Epsilon != 1.0 {
		t.Fatalf("refused row %+v, want 2 queries / epsilon 1.0", audit.Parties[0])
	}
	src, _ := fed.Party("A")
	if got := src.Accountant().Spent("B"); got != audit.Parties[0].Epsilon {
		t.Fatalf("audit epsilon %v != accountant spend %v", audit.Parties[0].Epsilon, got)
	}
	if got := src.Accountant().Spent("C"); got != 0 {
		t.Fatalf("accountant charged C %v after abort", got)
	}
}

// parityParams: sequential, retry-friendly, no quorum loss.
func parityParams() core.Params {
	p := testParams()
	p.MinParties = 1
	p.Parallelism = 1
	return p
}

// parityParty replicates NewDeterministic's party construction for
// manually assembled topologies.
func parityParty(t *testing.T, name string, params core.Params, i int64) *Party {
	t.Helper()
	pt, err := NewParty(name, PartyConfig{Params: params, Seed: 42, RNGSeed: 7 + i*1000})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// parityIngest loads the same corpus into P1/P2 regardless of topology.
func parityIngest(t *testing.T, parties ...*Party) {
	t.Helper()
	for pi, p := range parties {
		rng := rand.New(rand.NewSource(int64(pi) + 1))
		for id := 0; id < 20; id++ {
			body := make([]textkit.TermID, 15)
			for j := range body {
				body[j] = textkit.TermID(rng.Intn(100))
			}
			if err := p.IngestDocument(textkit.NewDocument(id, -1, nil, body)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// parityChaos installs the same content-keyed fault profile on a
// coordinator: P1 fails 40% of calls, so retries (and retry spans)
// appear deterministically by call content across transports.
func parityChaos(s *Server) {
	in := chaos.New(99)
	in.SetProfile("P1", chaos.Profile{ErrorRate: 0.4})
	s.SetChaos(in)
}

// spanShape canonicalizes a trace tree into a transport-independent
// string: span names plus party/term/attempts/fault attrs, children
// sorted, IDs and durations dropped.
func spanShape(spans []telemetry.SpanRecord) string {
	children := map[string][]telemetry.SpanRecord{}
	var roots []telemetry.SpanRecord
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	for _, sp := range spans {
		if sp.ParentID == "" || !ids[sp.ParentID] {
			roots = append(roots, sp)
			continue
		}
		children[sp.ParentID] = append(children[sp.ParentID], sp)
	}
	var render func(sp telemetry.SpanRecord) string
	render = func(sp telemetry.SpanRecord) string {
		var b strings.Builder
		b.WriteString(sp.Name)
		for _, key := range []string{"party", "term", "attempts", "fault"} {
			if v := sp.Attr(key); v != "" {
				fmt.Fprintf(&b, " %s=%s", key, v)
			}
		}
		kids := children[sp.SpanID]
		rendered := make([]string, len(kids))
		for i, k := range kids {
			rendered[i] = render(k)
		}
		sort.Strings(rendered)
		if len(rendered) > 0 {
			b.WriteString("{" + strings.Join(rendered, ";") + "}")
		}
		return b.String()
	}
	rendered := make([]string, len(roots))
	for i, r := range roots {
		rendered[i] = render(r)
	}
	sort.Strings(rendered)
	return strings.Join(rendered, "\n")
}

// TestTraceParityAcrossTransports: the same chaos-seeded query produces
// the same coordinator-side span tree shape — including retry attempts —
// whether the data parties are in-process, behind net/rpc hosts or
// behind HTTP gateways, and the remote hosts' registries carry spans
// under the SAME propagated trace ID.
func TestTraceParityAcrossTransports(t *testing.T) {
	params := parityParams()
	terms := []uint64{3, 17}

	// In-process topology.
	inproc, err := NewDeterministic([]string{"Q", "P1", "P2"}, params, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := inproc.Party("P1")
	p2, _ := inproc.Party("P2")
	parityIngest(t, p1, p2)
	parityChaos(inproc.Server)
	inproc.SetResiliencePolicy(fastPolicy())
	inproc.Server.EnableTracing(TraceConfig{})

	// net/rpc topology: P1 and P2 on their own hosts.
	rpcQ := parityParty(t, "Q", params, 0)
	rpcP1 := parityParty(t, "P1", params, 1)
	rpcP2 := parityParty(t, "P2", params, 2)
	parityIngest(t, rpcP1, rpcP2)
	var rpcHostRegs []*telemetry.Registry
	coordRPC := NewServer()
	if err := coordRPC.Register(rpcQ); err != nil {
		t.Fatal(err)
	}
	for _, pt := range []*Party{rpcP1, rpcP2} {
		hs := NewServer()
		hs.EnableTracing(TraceConfig{})
		rpcHostRegs = append(rpcHostRegs, hs.Metrics())
		if err := hs.Register(pt); err != nil {
			t.Fatal(err)
		}
		host, err := ListenAndServe(hs, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer host.Close()
		client, err := coordRPC.RegisterRemote(pt.Name, host.Addr)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
	}
	parityChaos(coordRPC)
	coordRPC.EnableTracing(TraceConfig{})
	fedRPC := &Federation{Server: coordRPC, Parties: []*Party{rpcQ, rpcP1, rpcP2}, Params: params, HashSeed: 42}
	fedRPC.SetResiliencePolicy(fastPolicy())

	// HTTP topology: P1 and P2 behind their own gateways.
	htQ := parityParty(t, "Q", params, 0)
	htP1 := parityParty(t, "P1", params, 1)
	htP2 := parityParty(t, "P2", params, 2)
	parityIngest(t, htP1, htP2)
	var httpHostRegs []*telemetry.Registry
	coordHTTP := NewServer()
	if err := coordHTTP.Register(htQ); err != nil {
		t.Fatal(err)
	}
	for _, pt := range []*Party{htP1, htP2} {
		hs := NewServer()
		hs.EnableTracing(TraceConfig{})
		httpHostRegs = append(httpHostRegs, hs.Metrics())
		if err := hs.Register(pt); err != nil {
			t.Fatal(err)
		}
		gw := httptest.NewServer(HTTPHandler(hs))
		defer gw.Close()
		if err := coordHTTP.RegisterHTTPRemote(pt.Name, gw.URL, nil); err != nil {
			t.Fatal(err)
		}
	}
	parityChaos(coordHTTP)
	coordHTTP.EnableTracing(TraceConfig{})
	fedHTTP := &Federation{Server: coordHTTP, Parties: []*Party{htQ, htP1, htP2}, Params: params, HashSeed: 42}
	fedHTTP.SetResiliencePolicy(fastPolicy())

	shapes := map[string]string{}
	traceIDs := map[string]string{}
	for name, fed := range map[string]*Federation{"inproc": inproc, "rpc": fedRPC, "http": fedHTTP} {
		res, traceID, err := fed.SearchTraced("Q", terms, 5)
		if err != nil {
			t.Fatalf("%s search: %v", name, err)
		}
		if len(res.Hits) == 0 {
			t.Fatalf("%s search returned no hits", name)
		}
		spans, ok := fed.Server.TraceTree(traceID)
		if !ok {
			t.Fatalf("%s trace missing", name)
		}
		shapes[name] = spanShape(spans)
		traceIDs[name] = traceID
		audit, ok := fed.Server.AuditFor(traceID)
		if !ok {
			t.Fatalf("%s audit missing", name)
		}
		for _, pr := range audit.Parties {
			want := map[string]string{"inproc": transportInproc, "rpc": transportRPC, "http": transportHTTP}[name]
			if pr.Transport != want {
				t.Fatalf("%s audit transport for %s = %q, want %q", name, pr.Party, pr.Transport, want)
			}
		}
	}
	if shapes["inproc"] != shapes["rpc"] {
		t.Fatalf("inproc vs rpc tree shape:\n%s\n---\n%s", shapes["inproc"], shapes["rpc"])
	}
	if shapes["inproc"] != shapes["http"] {
		t.Fatalf("inproc vs http tree shape:\n%s\n---\n%s", shapes["inproc"], shapes["http"])
	}
	if !strings.Contains(shapes["inproc"], "attempts=2") {
		t.Fatalf("parity shape has no retries — chaos profile too tame:\n%s", shapes["inproc"])
	}

	// The party hosts recorded their server-side spans under the
	// coordinator's propagated trace ID.
	for name, regs := range map[string][]*telemetry.Registry{"rpc": rpcHostRegs, "http": httpHostRegs} {
		found := false
		for _, reg := range regs {
			if _, ok := reg.Trace(traceIDs[name]); ok {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: no remote host registry carries trace %s", name, traceIDs[name])
		}
	}
}

// TestEventsRouteFieldsStable is the satellite regression: /v1/events
// serves the structured event log; old fields are bitwise-stable and
// traced spans additionally carry trace_id/request_id.
func TestEventsRouteFieldsStable(t *testing.T) {
	fed := searchFed(t)
	fed.Server.EnableTracing(TraceConfig{EventCapacity: 128})
	if _, traceID, err := fed.SearchTraced("A", []uint64{10, 11}, 3); err != nil {
		t.Fatal(err)
	} else if traceID == "" {
		t.Fatal("no trace id")
	}

	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Events) == 0 {
		t.Fatal("no events recorded")
	}
	tracedSeen := false
	for _, ev := range out.Events {
		// The stable pre-trace contract.
		for _, key := range []string{"name", "start_unix_nano", "duration_nanos"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing stable field %q: %v", key, ev)
			}
		}
		if id, ok := ev["trace_id"].(string); ok && id != "" {
			tracedSeen = true
		}
	}
	if !tracedSeen {
		t.Fatal("no event carries a trace_id despite tracing on")
	}
}

// TestBatchAudit: batch operations land in the flight recorder too,
// with Queries counting exactly the accountant's spends.
func TestBatchAudit(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.25
	fed, err := NewDeterministic([]string{"A", "B"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	mustIngest(t, b, 0, []textkit.TermID{10, 10, 11})
	fed.Server.EnableTracing(TraceConfig{})

	reqs := []TopKRequest{
		{To: "B", Field: FieldBody, Term: 10, K: 2},
		{To: "B", Field: FieldBody, Term: 11, K: 2},
	}
	results, err := fed.BatchReverseTopK("A", reqs, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("batch result error: %v", r.Err)
		}
	}
	records := fed.Server.AuditRecords()
	if len(records) != 1 {
		t.Fatalf("audit records = %d, want 1", len(records))
	}
	rec := records[0]
	if rec.Op != "batch" || rec.Outcome != AuditOK {
		t.Fatalf("batch record %+v", rec)
	}
	if len(rec.Parties) != 1 || rec.Parties[0].Queries != 2 {
		t.Fatalf("batch parties %+v, want B with 2 queries", rec.Parties)
	}
	src, _ := fed.Party("A")
	if got := src.Accountant().Spent("B"); got != rec.Parties[0].Epsilon {
		t.Fatalf("batch audit epsilon %v != accountant %v", rec.Parties[0].Epsilon, got)
	}
	spans, ok := fed.Server.TraceTree(rec.TraceID)
	if !ok {
		t.Fatalf("batch trace %s missing", rec.TraceID)
	}
	count := map[string]int{}
	for _, sp := range spans {
		count[sp.Name]++
	}
	if count["batch"] != 1 || count["batch.rtk_query"] != 2 {
		t.Fatalf("batch span counts %v", count)
	}
}
