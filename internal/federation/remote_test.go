package federation

import (
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

// TestPartyHostedTopology runs the fully distributed deployment: party B
// lives in its own "process" behind its own TCP listener; the
// coordinator registers it remotely and relays a local party A's
// queries to it.
func TestPartyHostedTopology(t *testing.T) {
	params := testParams()

	// Party B: its own host.
	b, err := NewParty("B", PartyConfig{Params: params, Seed: 42, RNGSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.IngestDocument(textkit.NewDocument(0, -1,
		[]textkit.TermID{500}, []textkit.TermID{7, 7, 7, 8})); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestDocument(textkit.NewDocument(1, -1,
		[]textkit.TermID{501}, []textkit.TermID{7, 9})); err != nil {
		t.Fatal(err)
	}
	host, err := ServeParty(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	// Coordinator: local party A + remote registration of B.
	coord := NewServer()
	a, err := NewParty("A", PartyConfig{Params: params, Seed: 42, RNGSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Register(a); err != nil {
		t.Fatal(err)
	}
	client, err := coord.RegisterRemote("B", host.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	names := coord.PartyNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("roster = %v", names)
	}

	// Query through the coordinator: A -> coordinator -> B's host.
	owner, err := coord.OwnerFor("B", FieldBody)
	if err != nil {
		t.Fatal(err)
	}
	got, cost, err := core.RTKReverseTopK(a.Querier(), owner, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].DocID != 0 {
		t.Fatalf("remote reverse top-K = %v", got)
	}
	if cost.Messages != 1 {
		t.Fatalf("messages = %d", cost.Messages)
	}
	// Traffic is accounted at the coordinator.
	if tr := coord.Traffic(); tr.Messages < 2 || tr.Bytes == 0 {
		t.Fatalf("coordinator traffic = %+v", tr)
	}
	// TF queries and metadata also traverse the relay.
	length, unique, err := owner.DocMeta(0)
	if err != nil || length != 4 || unique != 2 {
		t.Fatalf("remote DocMeta = %d,%d,%v", length, unique, err)
	}
	query, priv := a.Querier().BuildQuery(7)
	resp, err := owner.AnswerTF(0, query)
	if err != nil {
		t.Fatal(err)
	}
	est, err := a.Querier().Recover(priv, resp)
	if err != nil {
		t.Fatal(err)
	}
	if est != 3 {
		t.Fatalf("remote TF = %v, want 3", est)
	}
}

// TestRegisterRemoteDuplicate: duplicate names are refused and the
// dialled connection does not leak into the roster.
func TestRegisterRemoteDuplicate(t *testing.T) {
	params := testParams()
	b, err := NewParty("B", PartyConfig{Params: params, Seed: 42, RNGSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	host, err := ServeParty(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	coord := NewServer()
	c1, err := coord.RegisterRemote("B", host.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := coord.RegisterRemote("B", host.Addr); err == nil {
		t.Fatal("duplicate remote registration should fail")
	}
	if _, err := coord.RegisterRemote("C", "127.0.0.1:1"); err == nil {
		t.Fatal("unreachable host should fail")
	}
}

// TestUnregister removes a party from the roster.
func TestUnregister(t *testing.T) {
	coord := NewServer()
	a, err := NewParty("A", PartyConfig{Params: testParams(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Register(a); err != nil {
		t.Fatal(err)
	}
	coord.Unregister("A")
	if len(coord.PartyNames()) != 0 {
		t.Fatal("party still registered")
	}
	coord.Unregister("A") // no-op
	// Name is reusable after unregistration.
	if err := coord.Register(a); err != nil {
		t.Fatal(err)
	}
}
