package federation

import (
	"sort"

	"csfltr/internal/core"
)

// SearchHit is one federated search result: a document at some party
// with its aggregated relevance score (sum of estimated per-term counts,
// the relevance surrogate of Definition 3).
type SearchHit struct {
	Party string
	DocID int
	Score float64
}

// FederatedSearch runs a whole query against every other party: one
// reverse top-K document query per (query term, party), merged by
// summing per-term count estimates per document, truncated to the k
// globally best hits. This is the user-facing "search the federation"
// operation that the augmentation pipeline uses internally for training
// data generation.
//
// Privacy budget is spent per (term, party) query against the querier's
// accountant; a budget refusal aborts the search.
func (f *Federation) FederatedSearch(from string, terms []uint64, k int) ([]SearchHit, core.Cost, error) {
	var total core.Cost
	m := f.Server.metrics()
	m.searchReqs.Inc()
	defer m.reg.StartSpan("search", m.searchDur).End()
	src, err := f.Party(from)
	if err != nil {
		return nil, total, err
	}
	if k <= 0 {
		k = f.Params.K
	}
	type key struct {
		party string
		doc   int
	}
	scores := make(map[key]float64)
	// Deduplicate query terms.
	seen := make(map[uint64]struct{}, len(terms))
	for _, party := range f.Parties {
		if party.Name == from {
			continue
		}
		owner, err := f.Server.OwnerFor(party.Name, FieldBody)
		if err != nil {
			return nil, total, err
		}
		for t := range seen {
			delete(seen, t)
		}
		for _, term := range terms {
			if _, dup := seen[term]; dup {
				continue
			}
			seen[term] = struct{}{}
			if err := src.account.Spend(party.Name, f.Params.Epsilon); err != nil {
				return nil, total, err
			}
			sp := m.stageSpan(StageRTKQuery)
			docs, cost, err := core.RTKReverseTopK(src.querier, owner, term, f.Params.K)
			sp.End()
			if err != nil {
				return nil, total, err
			}
			total.Add(cost)
			for _, dc := range docs {
				if dc.Count <= 0 {
					continue
				}
				scores[key{party: party.Name, doc: dc.DocID}] += dc.Count
			}
		}
	}
	merge := m.stageSpan(StageMerge)
	hits := make([]SearchHit, 0, len(scores))
	for kk, s := range scores {
		hits = append(hits, SearchHit{Party: kk.party, DocID: kk.doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Party != hits[j].Party {
			return hits[i].Party < hits[j].Party
		}
		return hits[i].DocID < hits[j].DocID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	merge.End()
	return hits, total, nil
}
