package federation

import (
	"errors"
	"fmt"
	"sort"

	"csfltr/internal/core"
	"csfltr/internal/resilience"
)

// ErrQuorum is returned when degraded-mode search loses so many parties
// that fewer than Params.MinParties answered.
var ErrQuorum = errors.New("federation: quorum lost: too few parties answered")

// SearchHit is one federated search result: a document at some party
// with its aggregated relevance score (sum of estimated per-term counts,
// the relevance surrogate of Definition 3).
type SearchHit struct {
	Party string
	DocID int
	Score float64
}

// PartyReport is one party's outcome in a federated search.
type PartyReport struct {
	Party string
	// Outcome is OutcomeOK, OutcomeFailed or OutcomeSkipped.
	Outcome string
	// Err describes the first failure for a failed party ("" otherwise).
	Err string
	// Queries is the number of reverse top-K queries addressed to the
	// party (0 for a skipped party — no query sent, no budget spent).
	Queries int
	// Retries is the number of retry attempts beyond each query's first
	// try.
	Retries int
}

// SearchResult is the full outcome of one federated search: the merged
// ranking plus the per-party availability report.
type SearchResult struct {
	Hits []SearchHit
	Cost core.Cost
	// Partial is true when at least one party was skipped or failed, so
	// Hits covers only the surviving parties.
	Partial bool
	// Parties reports every data party's outcome, in roster order.
	Parties []PartyReport
}

// searchTask is one (party, term) reverse top-K query of a federated
// search fan-out.
type searchTask struct {
	party string
	owner core.OwnerAPI
	plan  *core.Plan
}

// rtkOut is one task's result, produced inside a resilience.Call so a
// timed-out attempt can be abandoned without racing the merge.
type rtkOut struct {
	docs []core.DocCount
	cost core.Cost
}

// FederatedSearch runs a whole query against every other party and
// returns the merged top-k hits. It is the strict variant of Search:
// any party failure fails the whole search (even under a MinParties
// policy the quorum machinery runs, but the flat signature drops the
// per-party report — callers that want degraded results should use
// Search). Kept for compatibility with existing call sites.
func (f *Federation) FederatedSearch(from string, terms []uint64, k int) ([]SearchHit, core.Cost, error) {
	res, err := f.Search(from, terms, k)
	if err != nil {
		return nil, core.Cost{}, err
	}
	return res.Hits, res.Cost, nil
}

// Search runs a whole query against every other party: one reverse
// top-K document query per (query term, party), merged by summing
// per-term count estimates per document, truncated to the k globally
// best hits. This is the user-facing "search the federation" operation
// that the augmentation pipeline uses internally for training data
// generation.
//
// The per-(party, term) queries are independent, so they are dispatched
// onto a bounded worker pool (Params.Parallelism workers; 0 defaults to
// GOMAXPROCS, 1 is the sequential baseline). The result is identical at
// every pool size: each term's obfuscated query plan is built once, in
// deterministic term order, and shared read-only by all parties' tasks;
// per-task results land in a slot indexed by task and are merged in task
// order, so score accumulation order — and therefore floating-point
// rounding and the final ranking — never depends on scheduling.
//
// Privacy budget is spent per (term, party) query against the querier's
// accountant, and it is spent for the whole fan-out *before* dispatch:
// a budget refusal aborts the search deterministically, before any query
// leaves the party.
//
// Each query runs under the federation's resilience policy: bounded
// retries with deterministic backoff and a per-attempt deadline. With
// Params.MinParties > 0 the search degrades instead of failing: a party
// whose circuit breaker is open is skipped before any of its budget is
// spent, a party with any failed query is dropped from the merge (its
// outcomes feed the breaker), and the search succeeds with Partial set
// as long as at least MinParties parties fully answered — otherwise it
// returns ErrQuorum alongside the per-party report. A failed party
// contributes nothing to Hits even for its succeeded queries, so the
// ranking never depends on which fraction of a party's queries happened
// to finish.
func (f *Federation) Search(from string, terms []uint64, k int) (*SearchResult, error) {
	m := f.Server.metrics()
	m.searchReqs.Inc()
	defer m.reg.StartSpan("search", m.searchDur).End()
	src, err := f.Party(from)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = f.Params.K
	}
	degraded := f.Params.MinParties > 0
	policy := f.ResiliencePolicy()

	// Deduplicate query terms, preserving first-seen order, and build
	// each term's obfuscated plan exactly once. Plan construction draws
	// from the querier's private randomness, so it stays on this
	// goroutine, in deterministic order.
	seen := make(map[uint64]struct{}, len(terms))
	plans := make([]*core.Plan, 0, len(terms))
	for _, term := range terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		plans = append(plans, src.querier.Plan(term))
	}

	// Enumerate the (party, term) fan-out in roster order and spend the
	// whole privacy budget up front: if any spend is refused the search
	// aborts before a single query is dispatched, exactly where the
	// sequential path would have stopped. Under the quorum policy a
	// party with an open breaker is skipped here, BEFORE its budget is
	// spent — the paper's accountant never charges for queries that are
	// never sent.
	result := &SearchResult{}
	var tasks []searchTask
	taskStart := make(map[string]int) // party -> first task index
	taskCount := make(map[string]int)
	for _, party := range f.Parties {
		if party.Name == from {
			continue
		}
		if degraded && !f.breakerFor(party.Name).Allow() {
			result.Parties = append(result.Parties, PartyReport{
				Party:   party.Name,
				Outcome: OutcomeSkipped,
				Err:     resilience.ErrBreakerOpen.Error(),
			})
			continue
		}
		owner, err := f.Server.OwnerFor(party.Name, FieldBody)
		if err != nil {
			return nil, err
		}
		taskStart[party.Name] = len(tasks)
		for _, plan := range plans {
			if err := src.account.Spend(party.Name, f.Params.Epsilon); err != nil {
				return nil, err
			}
			tasks = append(tasks, searchTask{party: party.Name, owner: owner, plan: plan})
		}
		taskCount[party.Name] = len(plans)
		result.Parties = append(result.Parties, PartyReport{
			Party:   party.Name,
			Outcome: OutcomeOK,
			Queries: len(plans),
		})
	}

	// Fan out on the worker pool. Each task writes only its own slot, so
	// workers never contend on shared state; the fanout span measures the
	// wall-clock of the whole dispatch while the per-task rtk_query spans
	// accumulate worker time. The resilience wrapper bounds each attempt
	// with the policy deadline and retries transient failures with
	// deterministic backoff.
	docs := make([][]core.DocCount, len(tasks))
	costs := make([]core.Cost, len(tasks))
	errs := make([]error, len(tasks))
	retries := make([]int, len(tasks))
	fanout := m.stageSpan(StageFanout)
	runPool(f.Params.Workers(len(tasks)), len(tasks), m, func(i int) {
		sp := m.stageSpan(StageRTKQuery)
		t := tasks[i]
		out, attempts, err := resilience.Call(policy, f.callSeed(t.party, t.plan.Term()),
			func() (rtkOut, error) {
				var o rtkOut
				var err error
				o.docs, o.cost, err = core.RTKWithPlan(t.plan, t.owner, f.Params.K)
				return o, err
			})
		docs[i], costs[i], errs[i], retries[i] = out.docs, out.cost, err, attempts-1
		sp.End()
	})
	fanout.End()

	// Merge in task order: deterministic accumulation, no shared-map
	// contention during the fan-out. Party inclusion is all-or-nothing:
	// either every one of a party's queries succeeded and all contribute,
	// or the party is dropped entirely. Breaker outcomes are recorded
	// here, in task order, so breaker state evolves deterministically.
	merge := m.stageSpan(StageMerge)
	defer merge.End()
	type key struct {
		party string
		doc   int
	}
	survivors := 0
	scores := make(map[key]float64)
	for ri := range result.Parties {
		rep := &result.Parties[ri]
		if rep.Outcome == OutcomeSkipped {
			m.outcomeFor(rep.Party, OutcomeSkipped).Inc()
			continue
		}
		start, count := taskStart[rep.Party], taskCount[rep.Party]
		var firstErr error
		for i := start; i < start+count; i++ {
			rep.Retries += retries[i]
			if errs[i] != nil && firstErr == nil {
				firstErr = errs[i]
			}
		}
		if rep.Retries > 0 {
			m.retriesFor(rep.Party).Add(int64(rep.Retries))
		}
		if firstErr != nil && !degraded {
			// Strict mode: pre-PR behavior, first error fails the search.
			return nil, firstErr
		}
		if degraded {
			b := f.breakerFor(rep.Party)
			for i := start; i < start+count; i++ {
				b.Record(errs[i] == nil)
			}
		}
		if firstErr != nil {
			rep.Outcome = OutcomeFailed
			rep.Err = firstErr.Error()
			m.outcomeFor(rep.Party, OutcomeFailed).Inc()
			continue
		}
		m.outcomeFor(rep.Party, OutcomeOK).Inc()
		survivors++
		for i := start; i < start+count; i++ {
			result.Cost.Add(costs[i])
			for _, dc := range docs[i] {
				if dc.Count <= 0 {
					continue
				}
				scores[key{party: rep.Party, doc: dc.DocID}] += dc.Count
			}
		}
	}
	result.Partial = survivors < len(result.Parties)
	if result.Partial {
		m.degraded.Inc()
	}
	if degraded && survivors < f.Params.MinParties {
		return result, fmt.Errorf("%w: %d of %d parties answered, need %d",
			ErrQuorum, survivors, len(result.Parties), f.Params.MinParties)
	}

	hits := make([]SearchHit, 0, len(scores))
	for kk, s := range scores {
		hits = append(hits, SearchHit{Party: kk.party, DocID: kk.doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Party != hits[j].Party {
			return hits[i].Party < hits[j].Party
		}
		return hits[i].DocID < hits[j].DocID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	result.Hits = hits
	return result, nil
}
