package federation

import (
	"sort"

	"csfltr/internal/core"
)

// SearchHit is one federated search result: a document at some party
// with its aggregated relevance score (sum of estimated per-term counts,
// the relevance surrogate of Definition 3).
type SearchHit struct {
	Party string
	DocID int
	Score float64
}

// searchTask is one (party, term) reverse top-K query of a federated
// search fan-out.
type searchTask struct {
	party string
	owner core.OwnerAPI
	plan  *core.Plan
}

// FederatedSearch runs a whole query against every other party: one
// reverse top-K document query per (query term, party), merged by
// summing per-term count estimates per document, truncated to the k
// globally best hits. This is the user-facing "search the federation"
// operation that the augmentation pipeline uses internally for training
// data generation.
//
// The per-(party, term) queries are independent, so they are dispatched
// onto a bounded worker pool (Params.Parallelism workers; 0 defaults to
// GOMAXPROCS, 1 is the sequential baseline). The result is identical at
// every pool size: each term's obfuscated query plan is built once, in
// deterministic term order, and shared read-only by all parties' tasks;
// per-task results land in a slot indexed by task and are merged in task
// order, so score accumulation order — and therefore floating-point
// rounding and the final ranking — never depends on scheduling.
//
// Privacy budget is spent per (term, party) query against the querier's
// accountant, and it is spent for the whole fan-out *before* dispatch:
// a budget refusal aborts the search deterministically, before any query
// leaves the party.
func (f *Federation) FederatedSearch(from string, terms []uint64, k int) ([]SearchHit, core.Cost, error) {
	var total core.Cost
	m := f.Server.metrics()
	m.searchReqs.Inc()
	defer m.reg.StartSpan("search", m.searchDur).End()
	src, err := f.Party(from)
	if err != nil {
		return nil, total, err
	}
	if k <= 0 {
		k = f.Params.K
	}

	// Deduplicate query terms, preserving first-seen order, and build
	// each term's obfuscated plan exactly once. Plan construction draws
	// from the querier's private randomness, so it stays on this
	// goroutine, in deterministic order.
	seen := make(map[uint64]struct{}, len(terms))
	plans := make([]*core.Plan, 0, len(terms))
	for _, term := range terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		plans = append(plans, src.querier.Plan(term))
	}

	// Enumerate the (party, term) fan-out in roster order and spend the
	// whole privacy budget up front: if any spend is refused the search
	// aborts before a single query is dispatched, exactly where the
	// sequential path would have stopped.
	var tasks []searchTask
	for _, party := range f.Parties {
		if party.Name == from {
			continue
		}
		owner, err := f.Server.OwnerFor(party.Name, FieldBody)
		if err != nil {
			return nil, total, err
		}
		for _, plan := range plans {
			if err := src.account.Spend(party.Name, f.Params.Epsilon); err != nil {
				return nil, total, err
			}
			tasks = append(tasks, searchTask{party: party.Name, owner: owner, plan: plan})
		}
	}

	// Fan out on the worker pool. Each task writes only its own slot, so
	// workers never contend on shared state; the fanout span measures the
	// wall-clock of the whole dispatch while the per-task rtk_query spans
	// accumulate worker time.
	docs := make([][]core.DocCount, len(tasks))
	costs := make([]core.Cost, len(tasks))
	errs := make([]error, len(tasks))
	fanout := m.stageSpan(StageFanout)
	runPool(f.Params.Workers(len(tasks)), len(tasks), m, func(i int) {
		sp := m.stageSpan(StageRTKQuery)
		docs[i], costs[i], errs[i] = core.RTKWithPlan(tasks[i].plan, tasks[i].owner, f.Params.K)
		sp.End()
	})
	fanout.End()

	// Merge in task order: deterministic accumulation, no shared-map
	// contention during the fan-out.
	merge := m.stageSpan(StageMerge)
	defer merge.End()
	type key struct {
		party string
		doc   int
	}
	scores := make(map[key]float64)
	for i := range tasks {
		if errs[i] != nil {
			return nil, total, errs[i]
		}
		total.Add(costs[i])
		for _, dc := range docs[i] {
			if dc.Count <= 0 {
				continue
			}
			scores[key{party: tasks[i].party, doc: dc.DocID}] += dc.Count
		}
	}
	hits := make([]SearchHit, 0, len(scores))
	for kk, s := range scores {
		hits = append(hits, SearchHit{Party: kk.party, DocID: kk.doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Party != hits[j].Party {
			return hits[i].Party < hits[j].Party
		}
		return hits[i].DocID < hits[j].DocID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, total, nil
}
