package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/qcache"
	"csfltr/internal/resilience"
	"csfltr/internal/telemetry"
)

// ErrQuorum is returned when degraded-mode search loses so many parties
// that fewer than Params.MinParties answered.
var ErrQuorum = errors.New("federation: quorum lost: too few parties answered")

// SearchHit is one federated search result: a document at some party
// with its aggregated relevance score (sum of estimated per-term counts,
// the relevance surrogate of Definition 3).
type SearchHit struct {
	Party string
	DocID int
	Score float64
}

// PartyReport is one party's outcome in a federated search.
type PartyReport struct {
	Party string
	// Outcome is OutcomeOK, OutcomeFailed, OutcomeSkipped or
	// OutcomeStale.
	Outcome string
	// Err describes the first failure for a failed party ("" otherwise).
	Err string
	// Queries is the number of reverse top-K queries actually sent to
	// the party (0 for a skipped party; cache replays are counted in
	// Cached instead — no query sent, no budget spent).
	Queries int
	// Retries is the number of retry attempts beyond each query's first
	// try.
	Retries int
	// Cached is the number of this party's answers served from the
	// federated answer cache at zero privacy cost.
	Cached int
	// StaleFor is the age of the oldest cache entry used to backfill
	// this party when Outcome is OutcomeStale (0 otherwise).
	StaleFor time.Duration
}

// SearchResult is the full outcome of one federated search: the merged
// ranking plus the per-party availability report.
type SearchResult struct {
	Hits []SearchHit
	Cost core.Cost
	// Partial is true when at least one party contributed nothing —
	// skipped or failed with no stale backfill — so Hits covers only
	// the parties that answered (freshly or from cache).
	Partial bool
	// Parties reports every data party's outcome, in roster order.
	Parties []PartyReport
}

// searchTask is one (party, term) reverse top-K query of a federated
// search fan-out.
type searchTask struct {
	party string
	owner core.OwnerAPI
	plan  *core.Plan
	// Cache identity and state (zero-valued when the cache is off): a
	// cached task is never dispatched — its slot is prefilled from hit.
	full, base qcache.Key
	cached     bool
	hit        cachedTask
}

// rtkOut is one task's result, produced inside a resilience.Call so a
// timed-out attempt can be abandoned without racing the merge.
type rtkOut struct {
	docs []core.DocCount
	cost core.Cost
}

// FederatedSearch runs a whole query against every other party and
// returns the merged top-k hits. It is the strict variant of Search:
// any party failure fails the whole search (even under a MinParties
// policy the quorum machinery runs, but the flat signature drops the
// per-party report — callers that want degraded results should use
// Search). Kept for compatibility with existing call sites.
//
//csfltr:releases
func (f *Federation) FederatedSearch(from string, terms []uint64, k int) ([]SearchHit, core.Cost, error) {
	res, err := f.Search(from, terms, k)
	if err != nil {
		return nil, core.Cost{}, err
	}
	return res.Hits, res.Cost, nil
}

// dedupeTerms drops repeated terms, preserving first-seen order.
func dedupeTerms(terms []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(terms))
	out := make([]uint64, 0, len(terms))
	for _, term := range terms {
		if _, dup := seen[term]; dup {
			continue
		}
		seen[term] = struct{}{}
		out = append(out, term)
	}
	return out
}

// Search runs a whole query against every other party: one reverse
// top-K document query per (query term, party), merged by summing
// per-term count estimates per document, truncated to the k globally
// best hits. This is the user-facing "search the federation" operation
// that the augmentation pipeline uses internally for training data
// generation.
//
// With Params.CacheBytes > 0 the search goes through the federated
// answer cache (see cache.go and internal/qcache): a repeat of a recent
// identical query replays the cached merged result bit-identically,
// spending zero privacy budget (DP post-processing); concurrent
// identical searches are coalesced onto one fan-out via singleflight;
// and individual (party, term) answers are replayed from the task tier
// even when the whole query misses. With CacheBytes == 0 (the default)
// the uncached path below runs unchanged.
//
// The per-(party, term) queries are independent, so they are dispatched
// onto a bounded worker pool (Params.Parallelism workers; 0 defaults to
// GOMAXPROCS, 1 is the sequential baseline). The result is identical at
// every pool size: each term's obfuscated query plan is built once, in
// deterministic term order, and shared read-only by all parties' tasks;
// per-task results land in a slot indexed by task and are merged in task
// order, so score accumulation order — and therefore floating-point
// rounding and the final ranking — never depends on scheduling.
//
// Privacy budget is spent per (term, party) query against the querier's
// accountant, and it is spent for the whole fan-out *before* dispatch:
// a budget refusal aborts the search deterministically, before any query
// leaves the party. Cache replays spend nothing and are recorded with
// dp.Accountant.Replayed.
//
// Each query runs under the federation's resilience policy: bounded
// retries with deterministic backoff and a per-attempt deadline. With
// Params.MinParties > 0 the search degrades instead of failing: a party
// whose circuit breaker is open is skipped before any of its budget is
// spent, a party with any failed query is dropped from the merge (its
// outcomes feed the breaker), and the search succeeds with Partial set
// as long as at least MinParties parties answered — otherwise it
// returns ErrQuorum alongside the per-party report. A failed party
// contributes nothing to Hits even for its succeeded queries, so the
// ranking never depends on which fraction of a party's queries happened
// to finish. When Params.CacheMaxStale > 0 a skipped or failed party
// may instead be backfilled from recent cache entries (all of the
// query's terms, bounded age — reported per party as OutcomeStale with
// StaleFor); a backfilled party counts toward the quorum and toward a
// complete (non-Partial) result.
//
//csfltr:releases
func (f *Federation) Search(from string, terms []uint64, k int) (*SearchResult, error) {
	res, _, err := f.SearchTraced(from, terms, k)
	return res, err
}

// SearchTraced is Search plus its trace identity: with tracing enabled
// (Server.EnableTracing) it returns the trace ID under which the whole
// query's span tree was recorded — fan-out, per-(party, term) reverse
// top-K queries with retry attempts and injected faults, cache replays,
// stale serves and the merge — retrievable via Server.TraceTree or
// GET /v1/trace/{id}, alongside one flight-recorder audit record. With
// tracing off the trace ID is "" and the search runs the untraced hot
// path unchanged.
//
//csfltr:releases
func (f *Federation) SearchTraced(from string, terms []uint64, k int) (*SearchResult, string, error) {
	m := f.Server.metrics()
	m.searchReqs.Inc()
	src, err := f.Party(from)
	if err != nil {
		return nil, "", err
	}
	if k <= 0 {
		k = f.Params.K
	}
	uniq := dedupeTerms(terms)
	root := m.reg.StartRootSpan("search", m.searchDur)
	if root.Context().Valid() {
		root.AddAttr(
			telemetry.AStr("querier", from),
			telemetry.AInt("terms", int64(len(uniq))),
			telemetry.AInt("k", int64(k)))
	}
	run := &searchRun{parent: root.Context(), audit: f.Server.TracingEnabled(), terms: len(uniq)}
	start := time.Now()
	res, err := f.searchDispatch(src, from, uniq, k, run)
	if err != nil && root.Context().Valid() {
		root.AddAttr(telemetry.AStr("error", err.Error()))
	}
	d := root.End()
	f.commitSearchAudit(run, from, k, start, d, res, err)
	if err == nil && res != nil {
		codec := codecRaw
		if f.Server.WireCodecEnabled() {
			codec = codecWire
		}
		m.recordTransport(from, apiSearch, codec, sizeSearchRelease(codec, res))
	}
	return res, root.Context().TraceID, err
}

// searchDispatch runs the cache and coalescing tiers in front of the
// fan-out, threading the per-query trace/audit state through.
//
//csfltr:releases
func (f *Federation) searchDispatch(src *Party, from string, uniq []uint64, k int,
	run *searchRun) (*SearchResult, error) {
	m := f.Server.metrics()
	c := f.cache()
	if c == nil {
		return f.searchUncached(src, from, uniq, k, run)
	}

	full, base := f.queryKeys(from, uniq, k)
	if v, ok := c.Get(full, base); ok {
		m.cacheFor(cacheTierQuery, cacheHit).Inc()
		res := v.(*SearchResult)
		// Every party's whole contribution is a zero-spend replay.
		for _, rep := range res.Parties {
			for range uniq {
				src.account.Replayed(rep.Party)
			}
		}
		run.outcome = AuditReplay
		for _, rep := range res.Parties {
			run.replayed = append(run.replayed, rep.Party)
		}
		if run.parent.Valid() {
			sp := m.reg.StartChildSpan("search.cache.replay", run.parent, nil,
				telemetry.AStr("tier", cacheTierQuery),
				telemetry.AInt("parties", int64(len(res.Parties))))
			sp.End()
		}
		return cloneSearchResult(res), nil
	}
	m.cacheFor(cacheTierQuery, cacheMiss).Inc()

	// Coalesce concurrent identical searches: one leader fans out, every
	// concurrent duplicate shares its result (and its budget spend).
	v, err, leader := f.flight.Do(full, func() (any, error) {
		res, err := f.searchUncached(src, from, uniq, k, run)
		if err == nil && res != nil && allOK(res) {
			// Only fully-fresh complete results are cached at the query
			// tier: a degraded or stale-backfilled merge must not be
			// frozen past the outage that produced it.
			c.Put(full, base, searchResultSize(res), cloneSearchResult(res))
		}
		return res, err
	})
	if !leader {
		// The leader's closure — and therefore the leader's searchRun —
		// owns the fan-out's budget, bytes and spans. This caller's audit
		// record is a bare coalesced marker so budgets never double-count.
		m.coalescedCounter().Inc()
		run.outcome = AuditCoalesced
		if run.parent.Valid() {
			sp := m.reg.StartChildSpan("search.coalesced", run.parent, nil)
			sp.End()
		}
	}
	res, _ := v.(*SearchResult)
	if res != nil && !leader {
		res = cloneSearchResult(res) // followers must not alias the leader's slices
	}
	return res, err
}

// allOK reports whether every party answered freshly and fully.
func allOK(res *SearchResult) bool {
	for _, rep := range res.Parties {
		if rep.Outcome != OutcomeOK {
			return false
		}
	}
	return true
}

// searchUncached is the fan-out path of Search: everything except the
// query-tier cache and singleflight, which wrap it. With the cache
// enabled it still consults the task tier per (party, term) and
// backfills lost parties from stale entries; with the cache disabled it
// is byte-for-byte the pre-cache search.
//
//csfltr:releases
func (f *Federation) searchUncached(src *Party, from string, terms []uint64, k int,
	run *searchRun) (*SearchResult, error) {
	m := f.Server.metrics()
	degraded := f.Params.MinParties > 0
	policy := f.ResiliencePolicy()
	c := f.cache() // nil when disabled

	// Deduplicate query terms, preserving first-seen order, and build
	// each term's obfuscated plan exactly once. Plan construction draws
	// from the querier's private randomness, so it stays on this
	// goroutine, in deterministic order.
	uniq := dedupeTerms(terms)
	plans := make([]*core.Plan, 0, len(uniq))
	for _, term := range uniq {
		plans = append(plans, src.querier.Plan(term))
	}

	// Enumerate the (party, term) fan-out in roster order and spend the
	// whole privacy budget up front: if any spend is refused the search
	// aborts before a single query is dispatched, exactly where the
	// sequential path would have stopped. Under the quorum policy a
	// party with an open breaker is skipped here, BEFORE its budget is
	// spent — the paper's accountant never charges for queries that are
	// never sent. A task whose answer is already cached is likewise
	// never spent for: the replay is free (post-processing) and the
	// accountant records it separately.
	result := &SearchResult{}
	var tasks []searchTask
	taskStart := make(map[string]int) // party -> first task index
	taskCount := make(map[string]int)
	for _, party := range f.Parties {
		if party.Name == from {
			continue
		}
		m.budgetGauge(from, party.Name, src.account)
		if degraded && !f.breakerFor(party.Name).Allow() {
			if run.parent.Valid() {
				sp := m.reg.StartChildSpan("search.skip", run.parent, nil,
					telemetry.AStr("party", party.Name),
					telemetry.AStr("reason", "breaker_open"))
				sp.End()
			}
			result.Parties = append(result.Parties, PartyReport{
				Party:   party.Name,
				Outcome: OutcomeSkipped,
				Err:     resilience.ErrBreakerOpen.Error(),
			})
			continue
		}
		owner, err := f.Server.OwnerFor(party.Name, FieldBody)
		if err != nil {
			return nil, err
		}
		var gens []uint64
		if c != nil {
			gens = party.generations(FieldBody)
		}
		taskStart[party.Name] = len(tasks)
		rep := PartyReport{Party: party.Name, Outcome: OutcomeOK}
		for _, plan := range plans {
			t := searchTask{party: party.Name, owner: owner, plan: plan}
			if c != nil {
				t.full, t.base = f.taskKeys(from, party.Name, plan.Term(), gens)
				if v, ok := c.Get(t.full, t.base); ok {
					m.cacheFor(cacheTierTask, cacheHit).Inc()
					t.cached = true
					t.hit = v.(cachedTask)
					src.account.Replayed(party.Name)
					rep.Cached++
				} else {
					m.cacheFor(cacheTierTask, cacheMiss).Inc()
				}
			}
			if !t.cached {
				if err := src.account.Spend(party.Name, f.Params.Epsilon); err != nil {
					// Snapshot the roster state for the audit record:
					// earlier parties' spends — and this party's partial
					// spend — already happened and stay on the books.
					if run.audit {
						rep.Outcome = OutcomeFailed
						rep.Err = err.Error()
						run.refused = append(
							append([]PartyReport(nil), result.Parties...), rep)
					}
					return nil, err
				}
				rep.Queries++
			}
			tasks = append(tasks, t)
		}
		taskCount[party.Name] = len(plans)
		result.Parties = append(result.Parties, rep)
	}

	// Fan out on the worker pool. Each task writes only its own slot, so
	// workers never contend on shared state; the fanout span measures the
	// wall-clock of the whole dispatch while the per-task rtk_query spans
	// accumulate worker time. The resilience wrapper bounds each attempt
	// with the policy deadline and retries transient failures with
	// deterministic backoff. Cached tasks are prefilled and never
	// dispatched.
	docs := make([][]core.DocCount, len(tasks))
	costs := make([]core.Cost, len(tasks))
	errs := make([]error, len(tasks))
	retries := make([]int, len(tasks))
	var pending []int
	for i := range tasks {
		if tasks[i].cached {
			docs[i], costs[i] = tasks[i].hit.docs, tasks[i].hit.cost
			if run.parent.Valid() {
				sp := m.reg.StartChildSpan("search.cache.replay", run.parent, nil,
					telemetry.AStr("tier", cacheTierTask),
					telemetry.AStr("party", tasks[i].party),
					telemetry.AStr("term", f.TermHash(tasks[i].plan.Term())))
				sp.End()
			}
			continue
		}
		pending = append(pending, i)
	}
	fanout := m.stageTrace(StageFanout, run.parent)
	runPool(f.Params.Workers(len(pending)), len(pending), m, func(pi int) {
		i := pending[pi]
		t := tasks[i]
		sp := m.stageTrace(StageRTKQuery, fanout.Context())
		traced := sp.Context().Valid()
		if traced {
			sp.AddAttr(
				telemetry.AStr("party", t.party),
				telemetry.AStr("term", f.TermHash(t.plan.Term())))
		}
		// The attempt counter is atomic because resilience.Call abandons
		// timed-out attempt goroutines: a late attempt can still be
		// running when the retry fires.
		var attemptN int64
		out, attempts, err := resilience.Call(policy, f.callSeed(t.party, t.plan.Term()),
			func() (rtkOut, error) {
				owner := t.owner
				var asp *telemetry.TraceSpan
				if traced {
					asp = m.reg.StartChildSpan("search.attempt", sp.Context(), nil,
						telemetry.AStr("party", t.party),
						telemetry.AInt("attempt", atomic.AddInt64(&attemptN, 1)))
					if tc, ok := owner.(traceCarrier); ok {
						owner = tc.WithTrace(asp.Context())
					}
				}
				var o rtkOut
				var err error
				o.docs, o.cost, err = core.RTKWithPlan(t.plan, owner, f.Params.K)
				if asp != nil {
					markFault(asp, err)
					if err != nil {
						asp.AddAttr(telemetry.AStr("error", err.Error()))
					}
					asp.End()
				}
				return o, err
			})
		docs[i], costs[i], errs[i], retries[i] = out.docs, out.cost, err, attempts-1
		if traced {
			sp.AddAttr(telemetry.AInt("attempts", int64(attempts)))
			if err != nil {
				markFault(sp, err)
				sp.AddAttr(telemetry.AStr("error", err.Error()))
			}
		}
		sp.End()
	})
	run.addStage(StageFanout, fanout.End())

	// Merge in task order: deterministic accumulation, no shared-map
	// contention during the fan-out. Party inclusion is all-or-nothing:
	// either every one of a party's queries succeeded and all contribute,
	// or the party is dropped entirely. Breaker outcomes are recorded
	// here, in task order, so breaker state evolves deterministically.
	merge := m.stageTrace(StageMerge, run.parent)
	defer func() { run.addStage(StageMerge, merge.End()) }()
	type key struct {
		party string
		doc   int
	}
	survivors := 0
	scores := make(map[key]float64)
	addDocs := func(party string, dcs []core.DocCount) {
		for _, dc := range dcs {
			if dc.Count <= 0 {
				continue
			}
			scores[key{party: party, doc: dc.DocID}] += dc.Count
		}
	}
	// backfill serves a lost party from recent cache entries when the
	// staleness policy allows; it counts as a survivor with OutcomeStale.
	backfill := func(rep *PartyReport) bool {
		if c == nil || f.Params.CacheMaxStale <= 0 {
			return false
		}
		hits, oldest, ok := f.staleBackfill(c, from, rep.Party, uniq)
		if !ok {
			return false
		}
		rep.Outcome = OutcomeStale
		rep.StaleFor = oldest
		rep.Cached = len(uniq)
		m.outcomeFor(rep.Party, OutcomeStale).Inc()
		m.staleFor(rep.Party).Inc()
		if merge.Context().Valid() {
			sp := m.reg.StartChildSpan("search.cache.stale_serve", merge.Context(), nil,
				telemetry.AStr("party", rep.Party),
				telemetry.AInt("terms", int64(len(uniq))),
				telemetry.AInt("stale_for_nanos", int64(oldest)))
			sp.End()
		}
		survivors++
		for _, h := range hits {
			result.Cost.Add(h.cost)
			addDocs(rep.Party, h.docs)
			src.account.Replayed(rep.Party)
			run.addCost(rep.Party, h.cost)
		}
		return true
	}
	for ri := range result.Parties {
		rep := &result.Parties[ri]
		if rep.Outcome == OutcomeSkipped {
			if backfill(rep) {
				continue
			}
			m.outcomeFor(rep.Party, OutcomeSkipped).Inc()
			continue
		}
		start, count := taskStart[rep.Party], taskCount[rep.Party]
		var firstErr error
		for i := start; i < start+count; i++ {
			rep.Retries += retries[i]
			if errs[i] != nil && firstErr == nil {
				firstErr = errs[i]
			}
		}
		if rep.Retries > 0 {
			m.retriesFor(rep.Party).Add(int64(rep.Retries))
		}
		if firstErr != nil && !degraded {
			// Strict mode: pre-PR behavior, first error fails the search.
			return nil, firstErr
		}
		if degraded {
			b := f.breakerFor(rep.Party)
			for i := start; i < start+count; i++ {
				if !tasks[i].cached {
					b.Record(errs[i] == nil)
				}
			}
		}
		if firstErr != nil {
			rep.Err = firstErr.Error()
			if backfill(rep) {
				continue
			}
			rep.Outcome = OutcomeFailed
			m.outcomeFor(rep.Party, OutcomeFailed).Inc()
			continue
		}
		m.outcomeFor(rep.Party, OutcomeOK).Inc()
		survivors++
		for i := start; i < start+count; i++ {
			result.Cost.Add(costs[i])
			addDocs(rep.Party, docs[i])
			run.addCost(rep.Party, costs[i])
			if c != nil && !tasks[i].cached {
				c.Put(tasks[i].full, tasks[i].base,
					cachedTaskSize(docs[i]), cachedTask{docs: docs[i], cost: costs[i]})
			}
		}
	}
	result.Partial = survivors < len(result.Parties)
	if result.Partial {
		m.degraded.Inc()
	}
	if degraded && survivors < f.Params.MinParties {
		return result, fmt.Errorf("%w: %d of %d parties answered, need %d",
			ErrQuorum, survivors, len(result.Parties), f.Params.MinParties)
	}

	hits := make([]SearchHit, 0, len(scores))
	for kk, s := range scores {
		hits = append(hits, SearchHit{Party: kk.party, DocID: kk.doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		if hits[i].Party != hits[j].Party {
			return hits[i].Party < hits[j].Party
		}
		return hits[i].DocID < hits[j].DocID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	result.Hits = hits
	return result, nil
}
