package federation

import (
	"errors"
	"testing"

	"csfltr/internal/textkit"
)

func searchFed(t *testing.T) *Federation {
	t.Helper()
	fed, err := NewDeterministic([]string{"A", "B", "C"}, testParams(), 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fed.Party("B")
	c, _ := fed.Party("C")
	// B doc 0 matches both terms heavily; C doc 0 matches one term.
	mustIngest(t, b, 0, []textkit.TermID{10, 10, 10, 11, 11})
	mustIngest(t, b, 1, []textkit.TermID{99, 98})
	mustIngest(t, c, 0, []textkit.TermID{10, 10})
	mustIngest(t, c, 1, []textkit.TermID{11})
	return fed
}

func mustIngest(t *testing.T, p *Party, id int, body []textkit.TermID) {
	t.Helper()
	if err := p.IngestDocument(textkit.NewDocument(id, -1, nil, body)); err != nil {
		t.Fatal(err)
	}
}

func TestFederatedSearch(t *testing.T) {
	fed := searchFed(t)
	hits, cost, err := fed.FederatedSearch("A", []uint64{10, 11}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Party != "B" || hits[0].DocID != 0 {
		t.Fatalf("top hit = %+v, want B/0", hits[0])
	}
	if hits[0].Score < 4.5 { // 3 + 2 exact
		t.Fatalf("top score = %v", hits[0].Score)
	}
	// Ordering: B/0 (5) > C/0 (2) >= C/1 (1).
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("hits not sorted: %+v", hits)
		}
	}
	if cost.Messages == 0 || cost.BytesReceived == 0 {
		t.Fatalf("cost not recorded: %+v", cost)
	}
	// Querier's own docs never appear.
	for _, h := range hits {
		if h.Party == "A" {
			t.Fatal("search returned the querier's own party")
		}
	}
}

func TestFederatedSearchDuplicateTerms(t *testing.T) {
	fed := searchFed(t)
	once, _, err := fed.FederatedSearch("A", []uint64{10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	fed2 := searchFed(t)
	twice, _, err := fed2.FederatedSearch("A", []uint64{10, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(once) != len(twice) {
		t.Fatal("duplicate terms changed the hit set")
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Fatal("duplicate terms double-scored")
		}
	}
}

func TestFederatedSearchTruncation(t *testing.T) {
	fed := searchFed(t)
	hits, _, err := fed.FederatedSearch("A", []uint64{10, 11}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("k=1 returned %d hits", len(hits))
	}
	// k <= 0 defaults to params.K.
	hits, _, err = fed.FederatedSearch("A", []uint64{10, 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("default k returned nothing")
	}
}

func TestFederatedSearchUnknownParty(t *testing.T) {
	fed := searchFed(t)
	if _, _, err := fed.FederatedSearch("ZZZ", []uint64{1}, 3); !errors.Is(err, ErrUnknownParty) {
		t.Fatal("unknown querier should error")
	}
}

func TestFederatedSearchBudget(t *testing.T) {
	p := testParams()
	p.Epsilon = 0.5
	fed, err := NewDeterministic([]string{"A", "B"}, p, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild party A with a tight budget.
	a, err := NewParty("A2", PartyConfig{Params: p, Seed: 42, RNGSeed: 1, Budget: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.Server.Register(a); err != nil {
		t.Fatal(err)
	}
	fed.Parties = append(fed.Parties, a)
	b, _ := fed.Party("B")
	mustIngest(t, b, 0, []textkit.TermID{1, 2})
	// Two terms -> two queries at eps=0.5 exceeds the 0.5 budget.
	if _, _, err := fed.FederatedSearch("A2", []uint64{1, 2}, 3); err == nil {
		t.Fatal("budget overrun should abort the search")
	}
}
