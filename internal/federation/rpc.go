package federation

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"csfltr/internal/core"
	"csfltr/internal/telemetry"
	"csfltr/internal/wire"
)

// serviceName is the net/rpc service under which the federation server is
// exported.
const serviceName = "CSFLTR"

// RPC argument/reply types. All fields are exported for encoding/gob.

// traceMeta is the trace context embedded in every RPC argument struct.
// Empty fields mean "untraced". Gob tolerates both directions of version
// skew: old decoders ignore unknown fields, missing fields decode to
// zero values — so tracing-aware and tracing-unaware peers interoperate.
type traceMeta struct {
	TraceID    string
	ParentSpan string
	RequestID  string
}

// context converts the wire fields back into a span context.
func (t traceMeta) context() telemetry.SpanContext {
	return telemetry.SpanContext{TraceID: t.TraceID, SpanID: t.ParentSpan}
}

// metaFor builds the wire fields from a caller's span context.
func metaFor(ctx telemetry.SpanContext) traceMeta {
	return traceMeta{TraceID: ctx.TraceID, ParentSpan: ctx.SpanID}
}

// DocIDsArgs requests the document id roster of one party field.
type DocIDsArgs struct {
	Party string
	Field Field
	Trace traceMeta
}

// DocIDsReply carries the roster.
type DocIDsReply struct{ IDs []int }

// DocMetaArgs requests non-private document metadata.
type DocMetaArgs struct {
	Party string
	Field Field
	DocID int
	Trace traceMeta
}

// DocMetaReply carries document length metadata.
type DocMetaReply struct{ Length, Unique int }

// TFArgs carries a cross-party TF query (Algorithm 1's obfuscated hash
// vector) addressed to one document.
type TFArgs struct {
	Party string
	Field Field
	DocID int
	Query core.TFQuery
	Trace traceMeta
}

// TFReply carries the perturbed owner response (Algorithm 2).
type TFReply struct{ Resp core.TFResponse }

// RTKArgs carries a reverse top-K query.
type RTKArgs struct {
	Party string
	Field Field
	Query core.TFQuery
	Trace traceMeta
}

// RTKReply carries the RTK-Sketch cells.
type RTKReply struct{ Resp core.RTKResponse }

// The four structs that dominate RPC traffic implement
// gob.GobEncoder/GobDecoder over internal/wire, so net/rpc ships the
// compact framed form (varint-delta document ids, zig-zag varint
// counts, flate above the size threshold) instead of gob's reflected
// struct encoding. The frame's version byte, not gob's type system, now
// governs evolution of these payloads: changing a field means bumping
// wire.Version, and both directions reject frames they do not
// understand instead of silently misreading them. The small roster and
// metadata messages stay on plain gob.

// GobEncode implements gob.GobEncoder.
func (a *TFArgs) GobEncode() ([]byte, error) {
	payload := appendString(nil, a.Party)
	payload = wire.AppendVarint(payload, int64(a.Field))
	payload = wire.AppendVarint(payload, int64(a.DocID))
	payload = appendCols(payload, a.Query.Cols)
	payload = appendTrace(payload, a.Trace)
	return wire.Pack(nil, payload), nil
}

// GobDecode implements gob.GobDecoder.
func (a *TFArgs) GobDecode(data []byte) error {
	payload, err := wire.Unpack(data)
	if err != nil {
		return err
	}
	if a.Party, payload, err = decodeString(payload); err != nil {
		return err
	}
	var v int64
	if v, payload, err = wire.Varint(payload); err != nil {
		return err
	}
	a.Field = Field(v)
	if v, payload, err = wire.Varint(payload); err != nil {
		return err
	}
	a.DocID = int(v)
	if a.Query.Cols, payload, err = decodeCols(payload); err != nil {
		return err
	}
	if a.Trace, payload, err = decodeTrace(payload); err != nil {
		return err
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: trailing bytes", wire.ErrMalformed)
	}
	return nil
}

// GobEncode implements gob.GobEncoder.
func (a *RTKArgs) GobEncode() ([]byte, error) {
	payload := appendString(nil, a.Party)
	payload = wire.AppendVarint(payload, int64(a.Field))
	payload = appendCols(payload, a.Query.Cols)
	payload = appendTrace(payload, a.Trace)
	return wire.Pack(nil, payload), nil
}

// GobDecode implements gob.GobDecoder.
func (a *RTKArgs) GobDecode(data []byte) error {
	payload, err := wire.Unpack(data)
	if err != nil {
		return err
	}
	if a.Party, payload, err = decodeString(payload); err != nil {
		return err
	}
	var v int64
	if v, payload, err = wire.Varint(payload); err != nil {
		return err
	}
	a.Field = Field(v)
	if a.Query.Cols, payload, err = decodeCols(payload); err != nil {
		return err
	}
	if a.Trace, payload, err = decodeTrace(payload); err != nil {
		return err
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: trailing bytes", wire.ErrMalformed)
	}
	return nil
}

// GobEncode implements gob.GobEncoder.
func (r *TFReply) GobEncode() ([]byte, error) {
	return wire.AppendTFResponse(nil, &r.Resp), nil
}

// GobDecode implements gob.GobDecoder.
func (r *TFReply) GobDecode(data []byte) error {
	resp, err := wire.DecodeTFResponse(data)
	if err != nil {
		return err
	}
	r.Resp = *resp
	return nil
}

// GobEncode implements gob.GobEncoder.
func (r *RTKReply) GobEncode() ([]byte, error) {
	return wire.AppendRTKResponse(nil, &r.Resp), nil
}

// GobDecode implements gob.GobDecoder.
func (r *RTKReply) GobDecode(data []byte) error {
	resp, err := wire.DecodeRTKResponse(data)
	if err != nil {
		return err
	}
	r.Resp = *resp
	return nil
}

// RPCService exposes a Server over net/rpc; each method resolves the
// target party and delegates to the same routed owners the in-process
// transport uses, so traffic accounting is shared.
type RPCService struct{ server *Server }

// instrument starts the per-method RPC telemetry (in-flight gauge,
// latency span — parented under the caller's propagated trace context
// when present and tracing is on) and returns the server-side span
// context plus the completion hook to defer: it records the request into
// the per-method request and error counters.
func (s *RPCService) instrument(method string, meta traceMeta, errp *error) (telemetry.SpanContext, func()) {
	m := s.server.metrics()
	m.rpcInFlight.Inc()
	sp := m.reg.StartChildSpan("rpc."+method, meta.context(), m.reg.Histogram(
		"csfltr_rpc_request_duration_seconds", "net/rpc request latency.", nil,
		telemetry.L("method", method)))
	if sp.Context().Valid() {
		sp.AddAttr(telemetry.AStr("transport", transportRPC))
		sp.SetRequestID(meta.RequestID)
	}
	return sp.Context(), func() {
		sp.End()
		m.rpcInFlight.Dec()
		m.reg.Counter("csfltr_rpc_requests_total", "net/rpc requests served.",
			telemetry.L("method", method)).Inc()
		if *errp != nil {
			m.reg.Counter("csfltr_rpc_errors_total", "net/rpc requests that returned an error.",
				telemetry.L("method", method)).Inc()
		}
	}
}

// traceOwner re-parents a resolved owner under the request's span
// context when the request carried one.
func traceOwner(owner core.OwnerAPI, ctx telemetry.SpanContext) core.OwnerAPI {
	if !ctx.Valid() {
		return owner
	}
	if tc, ok := owner.(traceCarrier); ok {
		return tc.WithTrace(ctx)
	}
	return owner
}

// DocIDs serves the roster of a party field.
func (s *RPCService) DocIDs(args *DocIDsArgs, reply *DocIDsReply) (err error) {
	ctx, done := s.instrument("DocIDs", args.Trace, &err)
	defer done()
	owner, err := s.server.OwnerFor(args.Party, args.Field)
	if err != nil {
		return err
	}
	reply.IDs = traceOwner(owner, ctx).DocIDs()
	return nil
}

// DocMeta serves non-private document metadata.
func (s *RPCService) DocMeta(args *DocMetaArgs, reply *DocMetaReply) (err error) {
	ctx, done := s.instrument("DocMeta", args.Trace, &err)
	defer done()
	owner, err := s.server.OwnerFor(args.Party, args.Field)
	if err != nil {
		return err
	}
	length, unique, err := traceOwner(owner, ctx).DocMeta(args.DocID)
	if err != nil {
		return err
	}
	reply.Length, reply.Unique = length, unique
	return nil
}

// AnswerTF relays a TF query to the owning party.
func (s *RPCService) AnswerTF(args *TFArgs, reply *TFReply) (err error) {
	ctx, done := s.instrument("AnswerTF", args.Trace, &err)
	defer done()
	owner, err := s.server.OwnerFor(args.Party, args.Field)
	if err != nil {
		return err
	}
	resp, err := traceOwner(owner, ctx).AnswerTF(args.DocID, &args.Query)
	if err != nil {
		return err
	}
	reply.Resp = *resp
	return nil
}

// AnswerRTK relays a reverse top-K query to the owning party.
func (s *RPCService) AnswerRTK(args *RTKArgs, reply *RTKReply) (err error) {
	ctx, done := s.instrument("AnswerRTK", args.Trace, &err)
	defer done()
	owner, err := s.server.OwnerFor(args.Party, args.Field)
	if err != nil {
		return err
	}
	resp, err := traceOwner(owner, ctx).AnswerRTK(&args.Query)
	if err != nil {
		return err
	}
	reply.Resp = *resp
	return nil
}

// RPCServer runs a federation server on a TCP listener.
type RPCServer struct {
	Addr string // actual listen address (host:port)

	ln   net.Listener
	wg   sync.WaitGroup
	once sync.Once
}

// ListenAndServe exports srv over net/rpc on addr (e.g. "127.0.0.1:0" for
// an ephemeral port) and serves connections until Close is called.
func ListenAndServe(srv *Server, addr string) (*RPCServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("federation: listen %s: %w", addr, err)
	}
	rs := rpc.NewServer()
	if err := rs.RegisterName(serviceName, &RPCService{server: srv}); err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("federation: register rpc service: %w", err)
	}
	out := &RPCServer{Addr: ln.Addr().String(), ln: ln}
	out.wg.Add(1)
	go func() {
		defer out.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			out.wg.Add(1)
			go func() {
				defer out.wg.Done()
				rs.ServeConn(conn)
			}()
		}
	}()
	return out, nil
}

// Close stops accepting connections and waits for in-flight ones.
func (s *RPCServer) Close() error {
	var err error
	s.once.Do(func() {
		err = s.ln.Close()
	})
	return err
}

// Client is a connection to a remote federation server.
type Client struct{ rpc *rpc.Client }

// Dial connects to a federation RPC server.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("federation: dial %s: %w", addr, err)
	}
	return &Client{rpc: c}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// OwnerFor returns an OwnerAPI view of a remote party's field. Transport
// errors from the roster call surface as an empty roster; query methods
// return errors normally.
func (c *Client) OwnerFor(party string, field Field) core.OwnerAPI {
	return &remoteOwner{client: c.rpc, party: party, field: field}
}

// ServeParty hosts a single party in its own process: a private
// coordinator containing only this party, exported over TCP. This is the
// fully distributed deployment mode — each silo keeps its sketches on
// its own machines and the central coordinator merely relays (see
// Server.RegisterRemote).
func ServeParty(p *Party, addr string) (*RPCServer, error) {
	s := NewServer()
	if err := s.Register(p); err != nil {
		return nil, err
	}
	return ListenAndServe(s, addr)
}

// remoteEndpoint adapts a dialled party host to the server's endpoint
// registry.
type remoteEndpoint struct {
	client *Client
	name   string
}

func (r *remoteEndpoint) ownerAPI(f Field) (core.OwnerAPI, error) {
	if f < 0 || f >= numFields {
		return nil, fmt.Errorf("%w: %d", ErrUnknownField, int(f))
	}
	return r.client.OwnerFor(r.name, f), nil
}

// transport implements endpoint.
func (r *remoteEndpoint) transport() string { return transportRPC }

// RegisterRemote connects the coordinator to a party-hosted endpoint
// (see ServeParty) and adds it to the roster under name. The returned
// client should be closed when the party is unregistered. Queries to
// the remote party are still traffic-accounted by this server, which
// relays them.
func (s *Server) RegisterRemote(name, addr string) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := s.register(name, &remoteEndpoint{client: c, name: name}); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// remoteOwner implements core.OwnerAPI over net/rpc. A trace-bound copy
// (WithTrace) stamps its span context into every argument struct so the
// party host can continue the tree.
type remoteOwner struct {
	client *rpc.Client
	party  string
	field  Field
	ctx    telemetry.SpanContext
}

// WithTrace implements traceCarrier.
func (r *remoteOwner) WithTrace(ctx telemetry.SpanContext) core.OwnerAPI {
	cp := *r
	cp.ctx = ctx
	return &cp
}

func (r *remoteOwner) DocIDs() []int {
	var reply DocIDsReply
	args := &DocIDsArgs{Party: r.party, Field: r.field, Trace: metaFor(r.ctx)}
	if err := r.client.Call(serviceName+".DocIDs", args, &reply); err != nil {
		return nil
	}
	return reply.IDs
}

func (r *remoteOwner) DocMeta(docID int) (int, int, error) {
	var reply DocMetaReply
	err := r.client.Call(serviceName+".DocMeta",
		&DocMetaArgs{Party: r.party, Field: r.field, DocID: docID, Trace: metaFor(r.ctx)}, &reply)
	if err != nil {
		return 0, 0, err
	}
	return reply.Length, reply.Unique, nil
}

func (r *remoteOwner) AnswerTF(docID int, q *core.TFQuery) (*core.TFResponse, error) {
	var reply TFReply
	err := r.client.Call(serviceName+".AnswerTF",
		&TFArgs{Party: r.party, Field: r.field, DocID: docID, Query: *q, Trace: metaFor(r.ctx)}, &reply)
	if err != nil {
		return nil, err
	}
	return &reply.Resp, nil
}

func (r *remoteOwner) AnswerRTK(q *core.TFQuery) (*core.RTKResponse, error) {
	var reply RTKReply
	err := r.client.Call(serviceName+".AnswerRTK",
		&RTKArgs{Party: r.party, Field: r.field, Query: *q, Trace: metaFor(r.ctx)}, &reply)
	if err != nil {
		return nil, err
	}
	return &reply.Resp, nil
}
