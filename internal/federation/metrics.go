package federation

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"csfltr/internal/dp"
	"csfltr/internal/telemetry"
)

// Metric families exported by the federation layer. Names follow the
// csfltr_<subsystem>_<name>_<unit> convention; the constants exist so
// tooling (expbench's latency breakdown, dashboards, tests) can address
// them without string drift.
const (
	// MetricRelayedMessages / MetricRelayedBytes count every protocol
	// message the coordinating server relays, labeled by party and op
	// ("query" or "train"). TrafficStats is a view over these.
	MetricRelayedMessages = "csfltr_server_relayed_messages_total"
	MetricRelayedBytes    = "csfltr_server_relayed_bytes_total"
	// MetricTransportBytes counts the bytes a protocol message occupies
	// on the active transport encoding, labeled by party, api and codec
	// ("raw" for the fixed-width WireSize accounting, "wire" for the
	// compact binary frames). MetricRelayedBytes keeps its historical
	// fixed-width semantics so traffic numbers stay comparable across
	// runs; this family is where codec savings show up.
	MetricTransportBytes = "csfltr_transport_bytes_total"
	// MetricAPILatency is per-owner-API-call latency at the server,
	// labeled by api (docids, docmeta, tf, rtk).
	MetricAPILatency = "csfltr_server_api_latency_seconds"
	// MetricSearchStageDuration times the cross-party query pipeline,
	// labeled by stage (tf_query, rtk_query, dp_noise, merge).
	MetricSearchStageDuration = "csfltr_search_stage_duration_seconds"
	// MetricSearchDuration / MetricSearchRequests cover whole federated
	// searches end to end.
	MetricSearchDuration = "csfltr_search_duration_seconds"
	MetricSearchRequests = "csfltr_search_requests_total"
	// MetricTrainingRoundDuration times one round-robin training round.
	MetricTrainingRoundDuration = "csfltr_training_round_duration_seconds"
	// MetricSecAggRounds counts completed secure-aggregation training
	// rounds; MetricSecAggRecoveries counts dropout recoveries (one per
	// dropped party per round that was cancelled via seed reveals).
	MetricSecAggRounds     = "csfltr_secagg_rounds_total"
	MetricSecAggRecoveries = "csfltr_secagg_recoveries_total"
	// MetricSecAggStageDuration times the secure-aggregation pipeline,
	// labeled by stage (mask, aggregate, recover).
	MetricSecAggStageDuration = "csfltr_secagg_stage_duration_seconds"
	// MetricSecAggQuantError observes the worst-case per-weight
	// quantization error bound of each released aggregate.
	MetricSecAggQuantError = "csfltr_secagg_quantization_error"
	// MetricFanoutInFlight / MetricFanoutQueueDepth instrument the bounded
	// worker pool behind the parallel fan-out operations (federated search,
	// batch reverse top-K): tasks currently executing and tasks still
	// queued. Sampled gauges — scrape mid-search to see pool pressure.
	MetricFanoutInFlight   = "csfltr_fanout_in_flight_tasks"
	MetricFanoutQueueDepth = "csfltr_fanout_queue_depth"
	// MetricBreakerState is the per-party circuit breaker position,
	// labeled by party: 0 closed, 1 half-open, 2 open (the numeric
	// contract of resilience.State).
	MetricBreakerState = "csfltr_resilience_breaker_state"
	// MetricRetries counts retry attempts beyond the first try, labeled
	// by party.
	MetricRetries = "csfltr_resilience_retries_total"
	// MetricPartyOutcome counts per-party outcomes of federated
	// searches, labeled by party and outcome (ok, failed, skipped).
	MetricPartyOutcome = "csfltr_search_party_outcome_total"
	// MetricDegradedSearches counts federated searches that completed
	// without the full roster (Partial results).
	MetricDegradedSearches = "csfltr_search_degraded_total"
	// MetricInjectedFaults counts faults injected by the chaos layer,
	// labeled by party and kind (error, timeout, down, partition).
	MetricInjectedFaults = "csfltr_chaos_injected_faults_total"
	// MetricCacheLookups counts answer-cache lookups, labeled by tier
	// (query, task) and result (hit, miss).
	MetricCacheLookups = "csfltr_qcache_lookups_total"
	// MetricCacheCoalesced counts searches that were absorbed into
	// another identical in-flight search instead of fanning out.
	MetricCacheCoalesced = "csfltr_qcache_coalesced_total"
	// MetricCacheStaleServed counts parties backfilled from stale cache
	// entries in degraded searches, labeled by party.
	MetricCacheStaleServed = "csfltr_qcache_stale_served_total"
	// MetricCacheSizeBytes / MetricCacheEntries are callback gauges over
	// the answer cache's residency, current at scrape time.
	MetricCacheSizeBytes = "csfltr_qcache_size_bytes"
	MetricCacheEntries   = "csfltr_qcache_entries"
	// MetricBudgetRemaining is the unspent per-peer privacy budget of a
	// querier's accountant, labeled by party (the querier) and peer (who
	// the budget is against). -1 encodes an unlimited budget.
	MetricBudgetRemaining = "csfltr_dp_budget_remaining_epsilon"
)

// Per-party search outcome label values (bounded).
const (
	OutcomeOK      = "ok"      // every query to the party succeeded
	OutcomeFailed  = "failed"  // the party was queried but failed
	OutcomeSkipped = "skipped" // the party was skipped (breaker open)
	OutcomeStale   = "stale"   // lost, but backfilled from cache entries
)

// Answer-cache lookup label values (bounded).
const (
	cacheTierQuery = "query"
	cacheTierTask  = "task"
	cacheHit       = "hit"
	cacheMiss      = "miss"
)

// Relay op label values: what the server was relaying for.
const (
	opQuery  = "query"
	opTrain  = "train"
	opSecAgg = "secagg"
)

// Owner API label values.
const (
	apiDocIDs  = "docids"
	apiDocMeta = "docmeta"
	apiTF      = "tf"
	apiRTK     = "rtk"
	// Release-side apis: what the coordinator hands back to clients.
	// These appear only in the MetricTransportBytes family.
	apiSearch = "search"
	apiBatch  = "batch"
	// Training-side apis: round-robin model hops and secure-aggregation
	// submissions/reveals. These also appear only in MetricTransportBytes.
	apiTrain  = "train"
	apiSecAgg = "secagg"
)

// Secure-aggregation pipeline stage label values.
const (
	StageSecAggMask      = "mask"
	StageSecAggAggregate = "aggregate"
	StageSecAggRecover   = "recover"
)

// SecAggStages lists the secure-aggregation stages in execution order.
var SecAggStages = []string{StageSecAggMask, StageSecAggAggregate, StageSecAggRecover}

// Query pipeline stage label values.
const (
	StageTFQuery  = "tf_query"
	StageRTKQuery = "rtk_query"
	StageDPNoise  = "dp_noise"
	StageFanout   = "fanout"
	StageMerge    = "merge"
)

// SearchStages lists the pipeline stages in execution order. fanout spans
// the whole parallel dispatch of one search, so its duration is wall
// clock while the rtk_query stage it encloses accumulates per-query time
// across workers; the ratio of the two is the realized parallelism.
var SearchStages = []string{StageTFQuery, StageRTKQuery, StageDPNoise, StageFanout, StageMerge}

// relayKey identifies one (party, op) relay counter pair.
type relayKey struct{ party, op string }

// transportKey identifies one (party, api, codec) transport byte series.
type transportKey struct{ party, api, codec string }

// shardSeriesKey identifies one per-shard series of a sharded party:
// party, field, bounded shard label, and the series-specific
// discriminator (api for transport bytes, outcome for outcome counters,
// empty for breaker gauges). Every component is drawn from a closed set
// — party names from the roster, fields from the Field enum, shard and
// replica labels from internal/shard's clamped tables.
type shardSeriesKey struct{ party, field, shard, aux string }

// CodecRaw / CodecWire are the MetricTransportBytes codec label values —
// exported so harnesses (expbench, the experiments sweeps) can query
// Server.TransportBytes without string drift.
const (
	CodecRaw  = "raw"
	CodecWire = "wire"

	codecRaw  = CodecRaw
	codecWire = CodecWire
)

// relayCounters is the cached handle pair for one relay series.
type relayCounters struct{ msgs, bytes *telemetry.Counter }

// serverMetrics bundles the server's registry with cached hot-path
// metric handles. It has its own lock so relay accounting never contends
// with the roster mutex.
type serverMetrics struct {
	reg *telemetry.Registry

	api      map[string]*telemetry.Histogram
	stage    map[string]*telemetry.Histogram
	roundDur *telemetry.Histogram

	searchDur  *telemetry.Histogram
	searchReqs *telemetry.Counter
	degraded   *telemetry.Counter

	rpcInFlight  *telemetry.Gauge
	httpInFlight *telemetry.Gauge

	poolInFlight *telemetry.Gauge
	poolQueue    *telemetry.Gauge

	mu        sync.Mutex
	relay     map[relayKey]relayCounters
	breaker   map[string]*telemetry.Gauge
	retries   map[string]*telemetry.Counter
	outcomes  map[relayKey]*telemetry.Counter // reusing relayKey as (party, outcome)
	faults    map[relayKey]*telemetry.Counter // (party, kind)
	cache     map[relayKey]*telemetry.Counter // (tier, result)
	stale     map[string]*telemetry.Counter   // party
	budget    map[relayKey]struct{}           // (querier, peer) gauges registered
	coalesce  *telemetry.Counter              // lazily created
	transport map[transportKey]*telemetry.Counter

	// Secure-aggregation series, lazily created on the first secure
	// training round so plain federations never export them.
	secaggStage  map[string]*telemetry.Histogram
	secaggRounds *telemetry.Counter
	secaggRecov  *telemetry.Counter
	secaggQuant  *telemetry.Histogram

	// Per-shard series of sharded parties (see attachShardHooks).
	shardTransport map[shardSeriesKey]*telemetry.Counter
	shardBreaker   map[shardSeriesKey]*telemetry.Gauge
	shardOutcome   map[shardSeriesKey]*telemetry.Counter
}

// newServerMetrics creates the handle cache over reg.
func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		reg:      reg,
		api:      make(map[string]*telemetry.Histogram, 4),
		stage:    make(map[string]*telemetry.Histogram, 4),
		relay:    make(map[relayKey]relayCounters),
		breaker:  make(map[string]*telemetry.Gauge),
		retries:  make(map[string]*telemetry.Counter),
		outcomes: make(map[relayKey]*telemetry.Counter),
		faults:   make(map[relayKey]*telemetry.Counter),
		cache:    make(map[relayKey]*telemetry.Counter),
		stale:    make(map[string]*telemetry.Counter),
		budget:   make(map[relayKey]struct{}),

		transport:      make(map[transportKey]*telemetry.Counter),
		shardTransport: make(map[shardSeriesKey]*telemetry.Counter),
		shardBreaker:   make(map[shardSeriesKey]*telemetry.Gauge),
		shardOutcome:   make(map[shardSeriesKey]*telemetry.Counter),
	}
	for _, api := range []string{apiDocIDs, apiDocMeta, apiTF, apiRTK} {
		m.api[api] = reg.Histogram(MetricAPILatency,
			"Latency of one owner API call relayed by the server.", nil,
			telemetry.L("api", api))
	}
	for _, st := range SearchStages {
		m.stage[st] = reg.Histogram(MetricSearchStageDuration,
			"Time spent per cross-party query pipeline stage.", nil,
			telemetry.L("stage", st))
	}
	m.roundDur = reg.Histogram(MetricTrainingRoundDuration,
		"Duration of one round-robin distributed training round.", nil)
	m.searchDur = reg.Histogram(MetricSearchDuration,
		"End-to-end federated search latency.", nil)
	m.searchReqs = reg.Counter(MetricSearchRequests, "Federated searches served.")
	m.degraded = reg.Counter(MetricDegradedSearches,
		"Federated searches that completed without the full roster.")
	m.rpcInFlight = reg.Gauge("csfltr_rpc_in_flight_requests", "RPC calls currently executing.")
	m.httpInFlight = reg.Gauge("csfltr_http_in_flight_requests", "HTTP requests currently executing.")
	m.poolInFlight = reg.Gauge(MetricFanoutInFlight, "Fan-out pool tasks currently executing.")
	m.poolQueue = reg.Gauge(MetricFanoutQueueDepth, "Fan-out pool tasks waiting for a worker.")
	return m
}

// relayFor returns (creating on first use) the counter pair for one
// (party, op).
func (m *serverMetrics) relayFor(party, op string) relayCounters {
	k := relayKey{party: party, op: op}
	m.mu.Lock()
	defer m.mu.Unlock()
	rc, ok := m.relay[k]
	if !ok {
		labels := []telemetry.Label{telemetry.L("party", party), telemetry.L("op", op)}
		rc = relayCounters{
			msgs:  m.reg.Counter(MetricRelayedMessages, "Messages relayed by the coordinating server.", labels...),
			bytes: m.reg.Counter(MetricRelayedBytes, "Bytes relayed by the coordinating server.", labels...),
		}
		m.relay[k] = rc
	}
	return rc
}

// breakerGauge returns (creating on first use) one party's breaker
// state gauge. The gauge carries resilience.State's numeric contract:
// 0 closed, 1 half-open, 2 open.
func (m *serverMetrics) breakerGauge(party string) *telemetry.Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.breaker[party]
	if !ok {
		g = m.reg.Gauge(MetricBreakerState,
			"Per-party circuit breaker state (0 closed, 1 half-open, 2 open).",
			telemetry.L("party", party))
		m.breaker[party] = g
	}
	return g
}

// retriesFor returns one party's retry counter.
func (m *serverMetrics) retriesFor(party string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.retries[party]
	if !ok {
		c = m.reg.Counter(MetricRetries,
			"Retry attempts beyond the first try, per party.",
			telemetry.L("party", party))
		m.retries[party] = c
	}
	return c
}

// outcomeFor returns the counter for one (party, outcome) of federated
// searches.
func (m *serverMetrics) outcomeFor(party, outcome string) *telemetry.Counter {
	k := relayKey{party: party, op: outcome}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.outcomes[k]
	if !ok {
		c = m.reg.Counter(MetricPartyOutcome,
			"Per-party outcomes of federated searches.",
			telemetry.L("party", party), telemetry.L("outcome", outcome))
		m.outcomes[k] = c
	}
	return c
}

// faultFor returns the counter for one (party, fault kind) of injected
// chaos faults.
func (m *serverMetrics) faultFor(party, kind string) *telemetry.Counter {
	k := relayKey{party: party, op: kind}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.faults[k]
	if !ok {
		c = m.reg.Counter(MetricInjectedFaults,
			"Faults injected by the chaos layer.",
			telemetry.L("party", party), telemetry.L("kind", kind))
		m.faults[k] = c
	}
	return c
}

// cacheFor returns the lookup counter for one (tier, result) of the
// answer cache.
func (m *serverMetrics) cacheFor(tier, result string) *telemetry.Counter {
	k := relayKey{party: tier, op: result}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cache[k]
	if !ok {
		c = m.reg.Counter(MetricCacheLookups,
			"Answer-cache lookups, by tier and result.",
			telemetry.L("tier", tier), telemetry.L("result", result))
		m.cache[k] = c
	}
	return c
}

// staleFor returns the stale-served counter for one party.
func (m *serverMetrics) staleFor(party string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.stale[party]
	if !ok {
		c = m.reg.Counter(MetricCacheStaleServed,
			"Parties backfilled from stale cache entries in degraded searches.",
			telemetry.L("party", party))
		m.stale[party] = c
	}
	return c
}

// secaggStageSpan starts a span for one secure-aggregation stage
// (mask, aggregate, recover), creating the histogram on first use.
func (m *serverMetrics) secaggStageSpan(stage string) telemetry.Span {
	m.mu.Lock()
	if m.secaggStage == nil {
		m.secaggStage = make(map[string]*telemetry.Histogram, 3)
	}
	h, ok := m.secaggStage[stage]
	if !ok {
		h = m.reg.Histogram(MetricSecAggStageDuration,
			"Time spent per secure-aggregation pipeline stage.", nil,
			telemetry.L("stage", stage))
		m.secaggStage[stage] = h
	}
	m.mu.Unlock()
	return m.reg.StartSpan("secagg."+stage, h)
}

// secaggRoundsCounter returns the completed secure round counter.
func (m *serverMetrics) secaggRoundsCounter() *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.secaggRounds == nil {
		m.secaggRounds = m.reg.Counter(MetricSecAggRounds,
			"Completed secure-aggregation training rounds.")
	}
	return m.secaggRounds
}

// secaggRecoveriesCounter returns the dropout-recovery counter.
func (m *serverMetrics) secaggRecoveriesCounter() *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.secaggRecov == nil {
		m.secaggRecov = m.reg.Counter(MetricSecAggRecoveries,
			"Dropped parties cancelled out of a secure round via seed reveals.")
	}
	return m.secaggRecov
}

// secaggQuantHist returns the quantization-error-bound histogram.
func (m *serverMetrics) secaggQuantHist() *telemetry.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.secaggQuant == nil {
		m.secaggQuant = m.reg.Histogram(MetricSecAggQuantError,
			"Worst-case per-weight quantization error bound of released aggregates.",
			[]float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3})
	}
	return m.secaggQuant
}

// coalescedCounter returns the singleflight-absorption counter.
func (m *serverMetrics) coalescedCounter() *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.coalesce == nil {
		m.coalesce = m.reg.Counter(MetricCacheCoalesced,
			"Searches absorbed into an identical in-flight search.")
	}
	return m.coalesce
}

// budgetGauge registers (once per (querier, peer)) a callback gauge
// reading the querier's remaining privacy budget against peer. The
// callback evaluates at scrape time, so the exported value tracks the
// accountant without per-spend bookkeeping; +Inf (unlimited budget) is
// encoded as -1 to stay representable in JSON snapshots.
func (m *serverMetrics) budgetGauge(querier, peer string, acct *dp.Accountant) {
	k := relayKey{party: querier, op: peer}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.budget[k]; ok {
		return
	}
	m.budget[k] = struct{}{}
	m.reg.GaugeFunc(MetricBudgetRemaining,
		"Unspent per-peer privacy budget of a querier's accountant (-1 = unlimited).",
		func() float64 {
			r := acct.Remaining(peer)
			if math.IsInf(r, 1) {
				return -1
			}
			return r
		},
		telemetry.L("party", querier), telemetry.L("peer", peer))
}

// record accounts one relayed message of n bytes — the single byte
// accounting point of the whole federation (query relays, model hops,
// every transport). TrafficStats and TrainingStats are read-side views
// over what this method wrote.
func (m *serverMetrics) record(party, op string, n int64) {
	rc := m.relayFor(party, op)
	rc.msgs.Inc()
	rc.bytes.Add(n)
}

// transportFor returns (creating on first use) the byte counter for one
// (party, api, codec) series.
func (m *serverMetrics) transportFor(party, api, codec string) *telemetry.Counter {
	k := transportKey{party: party, api: api, codec: codec}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.transport[k]
	if !ok {
		c = m.reg.Counter(MetricTransportBytes,
			"Bytes occupied by protocol messages on the active transport encoding.",
			telemetry.L("party", party), telemetry.L("api", api), telemetry.L("codec", codec))
		m.transport[k] = c
	}
	return c
}

// recordTransport is the single accounting point for transport-encoded
// bytes: every relayed message funnels through here exactly once, with
// the size the active codec actually puts on the wire.
func (m *serverMetrics) recordTransport(party, api, codec string, n int64) {
	m.transportFor(party, api, codec).Add(n)
}

// shardTransportFor returns the per-shard byte counter of one sharded
// party's field. These series carry an extra bounded "shard" label and
// account shard-level exchanges inside the party (always fixed-width,
// codec "raw"); the party-level series above remain the transport
// ground truth and transportBytes never sums the shard series.
func (m *serverMetrics) shardTransportFor(party, field, shard, api string) *telemetry.Counter {
	k := shardSeriesKey{party: party, field: field, shard: shard, aux: api}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.shardTransport[k]
	if !ok {
		c = m.reg.Counter(MetricTransportBytes,
			"Bytes occupied by protocol messages on the active transport encoding.",
			telemetry.L("party", party), telemetry.L("field", field),
			telemetry.L("shard", shard), telemetry.L("api", api),
			telemetry.L("codec", CodecRaw))
		m.shardTransport[k] = c
	}
	return c
}

// shardBreakerGauge returns the breaker-state gauge of one replica of a
// sharded party, labeled with the combined bounded "s<i>/r<j>" label.
func (m *serverMetrics) shardBreakerGauge(party, field, shard string) *telemetry.Gauge {
	k := shardSeriesKey{party: party, field: field, shard: shard}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.shardBreaker[k]
	if !ok {
		g = m.reg.Gauge(MetricBreakerState,
			"Per-replica circuit breaker state of a sharded party (0 closed, 1 half-open, 2 open).",
			telemetry.L("party", party), telemetry.L("field", field),
			telemetry.L("shard", shard))
		m.shardBreaker[k] = g
	}
	return g
}

// shardOutcomeFor returns the per-shard call outcome counter of one
// sharded party's field.
func (m *serverMetrics) shardOutcomeFor(party, field, shard, outcome string) *telemetry.Counter {
	k := shardSeriesKey{party: party, field: field, shard: shard, aux: outcome}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.shardOutcome[k]
	if !ok {
		c = m.reg.Counter(MetricPartyOutcome,
			"Per-shard outcomes of owner calls inside a sharded party.",
			telemetry.L("party", party), telemetry.L("field", field),
			telemetry.L("shard", shard), telemetry.L("outcome", outcome))
		m.shardOutcome[k] = c
	}
	return c
}

// transportBytes sums one codec's transport series, optionally filtered
// by api ("" means every api).
func (m *serverMetrics) transportBytes(codec, api string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for k, c := range m.transport {
		if k.codec != codec || (api != "" && k.api != api) {
			continue
		}
		total += c.Value()
	}
	return total
}

// traffic sums every relay series into the legacy TrafficStats view.
func (m *serverMetrics) traffic() TrafficStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t TrafficStats
	for _, rc := range m.relay {
		t.Messages += rc.msgs.Value()
		t.Bytes += rc.bytes.Value()
	}
	return t
}

// trafficFor sums the relay series of one op.
func (m *serverMetrics) trafficFor(op string) (msgs, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, rc := range m.relay {
		if k.op != op {
			continue
		}
		msgs += rc.msgs.Value()
		bytes += rc.bytes.Value()
	}
	return msgs, bytes
}

// resetTraffic zeroes every relay series.
func (m *serverMetrics) resetTraffic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rc := range m.relay {
		rc.msgs.Reset()
		rc.bytes.Reset()
	}
	for _, c := range m.transport {
		c.Reset()
	}
}

// apiSpan starts a latency span for one owner API call.
func (m *serverMetrics) apiSpan(api string) telemetry.Span {
	return m.reg.StartSpan("server.api."+api, m.api[api])
}

// stageSpan starts a span for one query pipeline stage.
func (m *serverMetrics) stageSpan(stage string) telemetry.Span {
	return m.reg.StartSpan("search.stage."+stage, m.stage[stage])
}

// stageTrace starts a pipeline-stage span parented under ctx; with an
// invalid ctx (tracing off) it degrades to stageSpan behaviour.
func (m *serverMetrics) stageTrace(stage string, ctx telemetry.SpanContext) *telemetry.TraceSpan {
	return m.reg.StartChildSpan("search.stage."+stage, ctx, m.stage[stage])
}

// timedMechanism decorates a dp.Mechanism so the time spent drawing
// noise is attributed to the dp_noise pipeline stage. The histogram is
// attached when the party joins a server; until then the mechanism is a
// zero-overhead passthrough.
type timedMechanism struct {
	inner dp.Mechanism
	hist  atomic.Pointer[telemetry.Histogram]
}

// attach points the decorator at a stage histogram (nil detaches).
func (t *timedMechanism) attach(h *telemetry.Histogram) { t.hist.Store(h) }

// Sample implements dp.Mechanism.
func (t *timedMechanism) Sample() float64 {
	h := t.hist.Load()
	if h == nil {
		return t.inner.Sample()
	}
	start := time.Now()
	v := t.inner.Sample()
	h.Observe(time.Since(start).Seconds())
	return v
}

// Perturb implements dp.Mechanism.
func (t *timedMechanism) Perturb(x float64) float64 {
	h := t.hist.Load()
	if h == nil {
		return t.inner.Perturb(x)
	}
	start := time.Now()
	v := t.inner.Perturb(x)
	h.Observe(time.Since(start).Seconds())
	return v
}

// Epsilon implements dp.Mechanism.
func (t *timedMechanism) Epsilon() float64 { return t.inner.Epsilon() }
