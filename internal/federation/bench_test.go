package federation

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

// benchFed builds a two-party federation with a few hundred documents at
// party B.
func benchFed(b *testing.B) *Federation {
	b.Helper()
	p := core.DefaultParams()
	p.Epsilon = 0
	p.K = 20
	fed, err := NewDeterministic([]string{"A", "B"}, p, 42, 7)
	if err != nil {
		b.Fatal(err)
	}
	party, _ := fed.Party("B")
	rng := rand.New(rand.NewSource(1))
	for id := 0; id < 400; id++ {
		body := make([]textkit.TermID, 80)
		for j := range body {
			body[j] = textkit.TermID(rng.Intn(3000))
		}
		if id%3 == 0 {
			body[0] = 9999 // probe term
		}
		if err := party.IngestDocument(textkit.NewDocument(id, -1, nil, body)); err != nil {
			b.Fatal(err)
		}
	}
	return fed
}

// BenchmarkInProcessRTK measures one reverse top-K through the
// in-process routed transport.
func BenchmarkInProcessRTK(b *testing.B) {
	fed := benchFed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fed.ReverseTopK("A", "B", FieldBody, 9999, 20, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRTK measures the same query over the TCP net/rpc
// transport (loopback).
func BenchmarkRPCRTK(b *testing.B) {
	fed := benchFed(b)
	srv, err := ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	a, _ := fed.Party("A")
	remote := client.OwnerFor("B", FieldBody)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RTKReverseTopK(a.Querier(), remote, 9999, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPRTK measures the same query over the HTTP/JSON gateway
// (loopback).
func BenchmarkHTTPRTK(b *testing.B) {
	fed := benchFed(b)
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	a, _ := fed.Party("A")
	remote := NewHTTPOwner(ts.URL, "B", FieldBody, ts.Client())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RTKReverseTopK(a.Querier(), remote, 9999, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedSearchCPU measures a three-term whole-query search
// with in-process owners and no simulated network: pure compute, the
// regime where parallel dispatch only pays off with multiple physical
// cores.
func BenchmarkFederatedSearchCPU(b *testing.B) {
	fed := benchFed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fed.FederatedSearch("A", []uint64{9999, 17, 23}, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFedN builds a federation with a querier party Q plus `parties`
// data parties of 150 documents each, and a simulated per-message WAN
// round trip of rtt on every data party's link (cross-silo parties are
// network-separated; see Server.SetPartyLink).
func benchFedN(b *testing.B, parties int, rtt time.Duration) *Federation {
	b.Helper()
	p := core.DefaultParams()
	p.Epsilon = 0
	p.K = 20
	names := []string{"Q"}
	for i := 0; i < parties; i++ {
		names = append(names, fmt.Sprintf("P%d", i))
	}
	fed, err := NewDeterministic(names, p, 42, 7)
	if err != nil {
		b.Fatal(err)
	}
	for pi, party := range fed.Parties[1:] {
		rng := rand.New(rand.NewSource(int64(pi) + 1))
		docs := make([]core.DocCounts, 150)
		for id := range docs {
			counts := make(map[uint64]int64)
			for j := 0; j < 40; j++ {
				counts[uint64(rng.Intn(3000))]++
			}
			docs[id] = core.DocCounts{DocID: id, Counts: counts}
		}
		if err := party.Owner(FieldBody).AddDocuments(docs, 0); err != nil {
			b.Fatal(err)
		}
	}
	for _, party := range fed.Parties[1:] {
		fed.Server.SetPartyLink(party.Name, rtt)
	}
	return fed
}

// BenchmarkFederatedSearch measures the concurrent query fan-out in the
// cross-silo regime: every relayed message carries a simulated 2ms WAN
// round trip, which is what the worker pool overlaps. The workers=1
// entries are the sequential baseline; result equality across pool sizes
// is asserted by TestFederatedSearchParallelMatchesSequential and the
// expbench parallelism sweep (BENCH_federation.json).
func BenchmarkFederatedSearch(b *testing.B) {
	const rtt = 2 * time.Millisecond
	terms := []uint64{17, 23, 99}
	for _, parties := range []int{2, 4, 8} {
		fed := benchFedN(b, parties, rtt)
		for _, workers := range []int{1, 4, 8} {
			if workers > parties*len(terms) {
				continue
			}
			fed.Params.Parallelism = workers
			b.Run(fmt.Sprintf("parties=%d/workers=%d", parties, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := fed.FederatedSearch("Q", terms, 20); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
