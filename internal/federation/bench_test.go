package federation

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"csfltr/internal/core"
	"csfltr/internal/textkit"
)

// benchFed builds a two-party federation with a few hundred documents at
// party B.
func benchFed(b *testing.B) *Federation {
	b.Helper()
	p := core.DefaultParams()
	p.Epsilon = 0
	p.K = 20
	fed, err := NewDeterministic([]string{"A", "B"}, p, 42, 7)
	if err != nil {
		b.Fatal(err)
	}
	party, _ := fed.Party("B")
	rng := rand.New(rand.NewSource(1))
	for id := 0; id < 400; id++ {
		body := make([]textkit.TermID, 80)
		for j := range body {
			body[j] = textkit.TermID(rng.Intn(3000))
		}
		if id%3 == 0 {
			body[0] = 9999 // probe term
		}
		if err := party.IngestDocument(textkit.NewDocument(id, -1, nil, body)); err != nil {
			b.Fatal(err)
		}
	}
	return fed
}

// BenchmarkInProcessRTK measures one reverse top-K through the
// in-process routed transport.
func BenchmarkInProcessRTK(b *testing.B) {
	fed := benchFed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fed.ReverseTopK("A", "B", FieldBody, 9999, 20, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRTK measures the same query over the TCP net/rpc
// transport (loopback).
func BenchmarkRPCRTK(b *testing.B) {
	fed := benchFed(b)
	srv, err := ListenAndServe(fed.Server, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	a, _ := fed.Party("A")
	remote := client.OwnerFor("B", FieldBody)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RTKReverseTopK(a.Querier(), remote, 9999, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPRTK measures the same query over the HTTP/JSON gateway
// (loopback).
func BenchmarkHTTPRTK(b *testing.B) {
	fed := benchFed(b)
	ts := httptest.NewServer(HTTPHandler(fed.Server))
	defer ts.Close()
	a, _ := fed.Party("A")
	remote := NewHTTPOwner(ts.URL, "B", FieldBody, ts.Client())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RTKReverseTopK(a.Querier(), remote, 9999, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedSearch measures a three-term whole-query search.
func BenchmarkFederatedSearch(b *testing.B) {
	fed := benchFed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fed.FederatedSearch("A", []uint64{9999, 17, 23}, 20); err != nil {
			b.Fatal(err)
		}
	}
}
