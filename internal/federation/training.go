package federation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"csfltr/internal/ltr"
	"csfltr/internal/resilience"
	"csfltr/internal/wire"
)

// ErrNoTrainingData is returned when every party's dataset is empty.
var ErrNoTrainingData = errors.New("federation: no training data at any party")

// modelWireSize returns the historical fixed-width accounting size of a
// model update: 8 bytes per weight plus the bias. Kept as the "raw"
// codec reference figure; the relay counters now carry real framed
// bytes (see modelHopSize).
func modelWireSize(dim int) int64 { return int64(8 * (dim + 1)) }

// TrainingStats reports what the distributed training run cost. Hops
// and bytes are read back from the server's relay counters (op="train")
// rather than tallied separately, so training traffic is accounted in
// exactly one place. BytesRelayed reflects the bytes the wire codec
// actually frames per hop (varint-coded, compressed above threshold),
// not the fixed 8-bytes-per-weight estimate.
type TrainingStats struct {
	Rounds       int
	ModelHops    int   // model hand-offs through the server
	BytesRelayed int64 // encoded model bytes moved through the server
	Retries      int   // hop attempts beyond the first, across all hops
}

// trainHop runs the chaos interceptor for one model hand-off under the
// federation's retry policy and breaker, then charges the hop's framed
// byte size to the op="train" relay series and the transport family.
// content discriminates the hop in the chaos stream so each hand-off
// faults independently.
func (f *Federation) trainHop(name string, content uint64, frame int64, codec string) error {
	m := f.Server.metrics()
	br := f.breakerFor(name)
	if !br.Allow() {
		return fmt.Errorf("federation: training hop to %s: %w", name, resilience.ErrBreakerOpen)
	}
	_, attempts, err := resilience.Call(f.ResiliencePolicy(), f.callSeed(name, content),
		func() (struct{}, error) {
			return struct{}{}, f.Server.intercept(name, opTrain, content)
		})
	if attempts > 1 {
		m.retriesFor(name).Add(int64(attempts - 1))
	}
	br.Record(err == nil)
	if err != nil {
		return fmt.Errorf("federation: training hop to %s: %w", name, err)
	}
	m.record(name, opTrain, frame)
	m.recordTransport(name, apiTrain, codec, frame)
	return nil
}

// trainCodecLabel is the transport codec label training hops are
// accounted under (training always moves framed models).
func (f *Federation) trainCodecLabel() string {
	if f.Server.WireCodecEnabled() {
		return codecWire
	}
	return codecRaw
}

// TrainRoundRobin runs the paper's round-robin distributed SGD *over the
// federation topology*: the global model is handed from party to party
// through the coordinating server, each holder trains one local epoch on
// its own instances, and every hand-off is charged to the server's
// traffic accounting with the byte size the wire codec actually frames.
// data maps party name to that party's training instances (already
// feature-extracted and normalized by the caller).
//
// Hand-offs pass through the chaos interceptor and the federation's
// retry policy and per-party breakers, like every query relay: an
// injected transient fault is retried with deterministic backoff, and a
// hop that fails permanently aborts the run.
//
// The learning dynamics are identical to ltr.TrainRoundRobin; this
// wrapper exists so experiments can report the *communication* cost of
// training, which the in-process trainer cannot see.
func (f *Federation) TrainRoundRobin(dim int, data map[string][]ltr.Instance, rounds int, cfg ltr.SGDConfig) (*ltr.LinearModel, TrainingStats, error) {
	var stats TrainingStats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if rounds <= 0 {
		return nil, stats, fmt.Errorf("ltr round count must be positive, got %d", rounds)
	}
	names := f.Server.PartyNames()
	total := 0
	for _, name := range names {
		total += len(data[name])
	}
	if total == 0 {
		return nil, stats, ErrNoTrainingData
	}
	model := ltr.NewLinearModel(dim)
	local := cfg
	local.Epochs = 1
	orderRNG := rand.New(rand.NewSource(cfg.Seed + 7))
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	codec := f.trainCodecLabel()
	m := f.Server.metrics()
	startHops, startBytes := m.trafficFor(opTrain)
	startRetries := trainRetriesTotal(m, names)
	hopN := uint64(0)
	for r := 0; r < rounds; r++ {
		round := m.reg.StartSpan("training.round", m.roundDur)
		local.LearningRate = cfg.LearningRate * math.Pow(cfg.LRDecay, float64(r))
		orderRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pi := range order {
			name := names[pi]
			d := data[name]
			if len(d) == 0 {
				continue
			}
			// Server relays the current model to the party and receives
			// the update back: two hops, each charged with the framed
			// encoded size of the model it carries.
			hopN++
			down := int64(len(wire.AppendModel(nil, model.W, model.B)))
			if err := f.trainHop(name, hopN, down, codec); err != nil {
				round.End()
				return nil, stats, fmt.Errorf("federation: round %d: %w", r, err)
			}
			local.Seed = cfg.Seed + int64(r*len(names)+pi)
			if err := local.Train(model, d); err != nil {
				round.End()
				return nil, stats, fmt.Errorf("federation: round %d party %s: %w", r, name, err)
			}
			hopN++
			up := int64(len(wire.AppendModel(nil, model.W, model.B)))
			if err := f.trainHop(name, hopN, up, codec); err != nil {
				round.End()
				return nil, stats, fmt.Errorf("federation: round %d: %w", r, err)
			}
		}
		round.End()
		stats.Rounds++
	}
	endHops, endBytes := m.trafficFor(opTrain)
	stats.ModelHops = int(endHops - startHops)
	stats.BytesRelayed = endBytes - startBytes
	stats.Retries = int(trainRetriesTotal(m, names) - startRetries)
	return model, stats, nil
}

// trainRetriesTotal sums the retry counters of the training roster, so
// TrainingStats can report the delta a run caused.
func trainRetriesTotal(m *serverMetrics, names []string) int64 {
	var total int64
	for _, name := range names {
		total += m.retriesFor(name).Value()
	}
	return total
}
