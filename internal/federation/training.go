package federation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"csfltr/internal/ltr"
)

// ErrNoTrainingData is returned when every party's dataset is empty.
var ErrNoTrainingData = errors.New("federation: no training data at any party")

// modelWireSize returns the encoded size of a model update relayed
// through the server: 8 bytes per weight plus the bias.
func modelWireSize(dim int) int64 { return int64(8 * (dim + 1)) }

// TrainingStats reports what the distributed training run cost. Hops
// and bytes are read back from the server's relay counters (op="train")
// rather than tallied separately, so training traffic is accounted in
// exactly one place.
type TrainingStats struct {
	Rounds       int
	ModelHops    int   // model hand-offs through the server
	BytesRelayed int64 // model bytes moved through the server
}

// TrainRoundRobin runs the paper's round-robin distributed SGD *over the
// federation topology*: the global model is handed from party to party
// through the coordinating server, each holder trains one local epoch on
// its own instances, and every hand-off is charged to the server's
// traffic accounting. data maps party name to that party's training
// instances (already feature-extracted and normalized by the caller).
//
// The learning dynamics are identical to ltr.TrainRoundRobin; this
// wrapper exists so experiments can report the *communication* cost of
// training, which the in-process trainer cannot see.
func (f *Federation) TrainRoundRobin(dim int, data map[string][]ltr.Instance, rounds int, cfg ltr.SGDConfig) (*ltr.LinearModel, TrainingStats, error) {
	var stats TrainingStats
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if rounds <= 0 {
		return nil, stats, fmt.Errorf("ltr round count must be positive, got %d", rounds)
	}
	names := f.Server.PartyNames()
	total := 0
	for _, name := range names {
		total += len(data[name])
	}
	if total == 0 {
		return nil, stats, ErrNoTrainingData
	}
	model := ltr.NewLinearModel(dim)
	local := cfg
	local.Epochs = 1
	orderRNG := rand.New(rand.NewSource(cfg.Seed + 7))
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	hop := modelWireSize(dim)
	m := f.Server.metrics()
	startHops, startBytes := m.trafficFor(opTrain)
	for r := 0; r < rounds; r++ {
		round := m.reg.StartSpan("training.round", m.roundDur)
		local.LearningRate = cfg.LearningRate * math.Pow(cfg.LRDecay, float64(r))
		orderRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pi := range order {
			name := names[pi]
			d := data[name]
			if len(d) == 0 {
				continue
			}
			// Server relays the current model to the party and receives
			// the update back: two hops.
			m.record(name, opTrain, hop)
			local.Seed = cfg.Seed + int64(r*len(names)+pi)
			if err := local.Train(model, d); err != nil {
				return nil, stats, fmt.Errorf("federation: round %d party %s: %w", r, name, err)
			}
			m.record(name, opTrain, hop)
		}
		round.End()
		stats.Rounds++
	}
	endHops, endBytes := m.trafficFor(opTrain)
	stats.ModelHops = int(endHops - startHops)
	stats.BytesRelayed = endBytes - startBytes
	return model, stats, nil
}
