package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/ssebaseline"
)

// newSeededRand is a tiny helper for deterministic query randomness.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SSEComparison contrasts the encryption-based SSE baseline with the
// sketch pipeline on the same workload — the quantitative form of the
// paper's introduction claim that "encryption-based privacy-preserving
// schemes can be very low in efficiency and flexibility".
type SSEComparison struct {
	Docs int

	// Build cost.
	SSEBuildMillis    float64
	SketchBuildMillis float64
	SSEIndexBytes     int64
	SketchBytes       int64 // RTK-Sketch footprint

	// Per reverse top-K query.
	SSEQueryMicros    float64
	SketchQueryMicros float64
	SSETrafficBytes   int64
	RTKTrafficBytes   int64

	// Result agreement of the two systems against exact top-K.
	SSECover    float64 // 1.0 by construction (SSE is exact)
	SketchCover float64
}

// RunSSEComparison builds both systems over the Fig. 4 workload and
// measures one probe term's reverse top-K through each.
func RunSSEComparison(cfg Fig4Config) (*SSEComparison, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := buildFig4Workload(cfg)
	out := &SSEComparison{Docs: cfg.Docs}

	// --- SSE baseline ---
	client, err := ssebaseline.NewClient(bytes.Repeat([]byte{0x5e}, 32))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ix := ssebaseline.NewIndex(client)
	for id := 0; id < cfg.Docs; id++ {
		if err := ix.AddDocument(id, w.counts[id]); err != nil {
			return nil, err
		}
	}
	if err := ix.Seal(); err != nil {
		return nil, err
	}
	out.SSEBuildMillis = float64(time.Since(start).Microseconds()) / 1000
	out.SSEIndexBytes = ix.SizeBytes()

	// --- Sketch pipeline ---
	start = time.Now()
	owner, err := core.NewOwner(cfg.Base, uint64(cfg.Seed)+7, dp.Disabled(), core.WithoutDocTables())
	if err != nil {
		return nil, err
	}
	for id := 0; id < cfg.Docs; id++ {
		if err := owner.AddDocument(id, w.counts[id]); err != nil {
			return nil, err
		}
	}
	out.SketchBuildMillis = float64(time.Since(start).Microseconds()) / 1000
	out.SketchBytes = owner.RTKSizeBytes()

	// --- Queries ---
	querier, err := core.NewQuerier(cfg.Base, uint64(cfg.Seed)+7, newSeededRand(cfg.Seed+13))
	if err != nil {
		return nil, err
	}
	k := cfg.Base.K
	var sseTime, rtkTime time.Duration
	var sseCoverSum, rtkCoverSum float64
	for _, term := range w.probes {
		truth := core.ExactReverseTopK(w.counts, term, k)

		qs := time.Now()
		sseTop, traffic, err := client.ReverseTopK(ix, term, k)
		sseTime += time.Since(qs)
		if err != nil {
			return nil, err
		}
		out.SSETrafficBytes = traffic
		sseDocs := make([]core.DocCount, len(sseTop))
		for i, p := range sseTop {
			sseDocs[i] = core.DocCount{DocID: int(p.DocID), Count: float64(p.Count)}
		}
		sseCoverSum += core.CoverRate(sseDocs, truth)

		qs = time.Now()
		rtkTop, cost, err := core.RTKReverseTopK(querier, owner, term, k)
		rtkTime += time.Since(qs)
		if err != nil {
			return nil, err
		}
		out.RTKTrafficBytes = cost.BytesReceived
		rtkCoverSum += core.CoverRate(rtkTop, truth)
	}
	n := float64(len(w.probes))
	out.SSEQueryMicros = float64(sseTime.Microseconds()) / n
	out.SketchQueryMicros = float64(rtkTime.Microseconds()) / n
	out.SSECover = sseCoverSum / n
	out.SketchCover = rtkCoverSum / n
	return out, nil
}

// RenderSSEComparison formats the comparison.
func RenderSSEComparison(r *SSEComparison) string {
	return fmt.Sprintf(`SSE baseline vs sketch pipeline (%d documents):
  build:   SSE %.1f ms (%.1f MB index)  |  sketches %.1f ms (%.1f MB RTK)
  query:   SSE %.1f us, %d B traffic    |  RTK %.1f us, %d B traffic
  cover:   SSE %.3f (exact)             |  RTK %.3f (approximate)
  flexibility: SSE is sealed after build (updates need a rebuild) and the
  querier must hold the index keys; sketches update incrementally and
  answer any party under the shared hash seed with two-sided privacy.
`,
		r.Docs,
		r.SSEBuildMillis, float64(r.SSEIndexBytes)/(1<<20),
		r.SketchBuildMillis, float64(r.SketchBytes)/(1<<20),
		r.SSEQueryMicros, r.SSETrafficBytes,
		r.SketchQueryMicros, r.RTKTrafficBytes,
		r.SSECover, r.SketchCover)
}
