package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteFig5SVG renders one Fig. 5 panel as a standalone SVG scatter plot
// (relevant instances as filled circles, irrelevant as hollow), the
// publication-style artifact corresponding to the paper's panels. Pure
// stdlib; no plotting dependency.
func WriteFig5SVG(w io.Writer, panel Fig5Panel, width, height int) error {
	if width < 100 {
		width = 100
	}
	if height < 100 {
		height = 100
	}
	if len(panel.Points) == 0 {
		return fmt.Errorf("%w: panel %q has no points", ErrBadConfig, panel.Strategy.Name)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range panel.Points {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	const margin = 24.0
	plotW := float64(width) - 2*margin
	plotH := float64(height) - 2*margin
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-family="sans-serif" font-size="12" text-anchor="middle">%s (probe-acc %.3f)</text>`+"\n",
		width/2, escapeXML(panel.Strategy.Name), panel.Probes.ProbeAccuracy)
	for i, p := range panel.Points {
		x := margin + (p[0]-minX)/(maxX-minX)*plotW
		y := margin + (1-(p[1]-minY)/(maxY-minY))*plotH
		if panel.Labels[i] > 0 {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="#c0392b" fill-opacity="0.75"/>`+"\n", x, y)
		} else {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="none" stroke="#2980b9" stroke-opacity="0.75"/>`+"\n", x, y)
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeXML escapes the five XML special characters.
func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
