package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/shard"
	"csfltr/internal/telemetry"
)

// LoadConfig configures the sustained-load benchmark behind
// `expbench -exp load` and the checked-in BENCH_load.json: an open-loop
// generator drives the HTTP gateway at a fixed fraction of its measured
// capacity with a Zipf query mix while the data parties run sharded,
// replicated backends. Each shard count gets its own federation; per-call
// owner work is simulated with a fixed single-node service time split
// across shards (the scale-out analogue of the parallelism sweep's
// RTTMicros), so on a small CI machine the sweep still measures the real
// quantity of interest — how scatter-gather divides per-node work — and
// the speedup is not an artifact of host core count.
type LoadConfig struct {
	// ShardCounts are the per-party shard fans to sweep, ascending; the
	// first entry is the throughput baseline the speedup is quoted
	// against.
	ShardCounts []int `json:"shard_counts"`
	Replicas    int   `json:"replicas"` // read replicas per shard (>= 2 for the chaos kill)

	Parties      int `json:"parties"` // data-holding parties; one extra querier party is added
	DocsPerParty int `json:"docs_per_party"`
	DocLen       int `json:"doc_len"`
	Vocab        int `json:"vocab"`
	Terms        int `json:"terms"` // query terms per federated search

	// DetermChecks is the number of fixed queries whose SearchResults
	// are compared bit-for-bit against an unsharded reference federation
	// before the load phase.
	DetermChecks int `json:"determinism_checks"`

	// ServiceMicros is the simulated RTK service time of the whole party
	// corpus on a single node; each shard's replica call sleeps
	// ServiceMicros/shards, so per-node work shrinks as the corpus is
	// partitioned.
	ServiceMicros int64 `json:"service_micros"`

	// ProbeSearches is the closed-loop capacity probe length: that many
	// searches through the gateway with exactly MaxInFlight workers.
	ProbeSearches int `json:"probe_searches"`
	// Requests is the number of open-loop arrivals per shard count,
	// offered at TargetUtil of the probed capacity.
	Requests   int     `json:"requests"`
	TargetUtil float64 `json:"target_util"`
	ZipfS      float64 `json:"zipf_s"` // Zipf skew of the query term mix (> 1)

	// KillReplica chaos-kills one replica (first data party, body field,
	// shard 0, replica 0) halfway through each open-loop run; admitted
	// requests must still all answer.
	KillReplica bool `json:"kill_replica"`

	// Admission bounds, resolved through federation.SetAdmission.
	MaxInFlight        int   `json:"max_in_flight"`
	MaxQueue           int   `json:"max_queue"`
	QueueTimeoutMillis int64 `json:"queue_timeout_millis"`

	Seed   int64       `json:"seed"`
	Params core.Params `json:"params"`
}

// DefaultLoadConfig is the checked-in BENCH_load.json workload: two
// sharded data parties swept across 1/2/4 shards with 2 replicas each,
// a 60ms single-node service time (large enough that the simulated
// per-node work, not host CPU, sets capacity), and one replica
// chaos-killed halfway through every open-loop run.
func DefaultLoadConfig() LoadConfig {
	p := core.DefaultParams()
	p.Epsilon = 0 // determinism across shard fans; DP noise order is scheduling-dependent
	p.K = 10
	return LoadConfig{
		ShardCounts:        []int{1, 2, 4},
		Replicas:           2,
		Parties:            2,
		DocsPerParty:       400,
		DocLen:             60,
		Vocab:              2000,
		Terms:              3,
		DetermChecks:       8,
		ServiceMicros:      60000,
		ProbeSearches:      60,
		Requests:           360,
		TargetUtil:         0.8,
		ZipfS:              1.1,
		KillReplica:        true,
		MaxInFlight:        federation.DefaultMaxInFlight,
		MaxQueue:           federation.DefaultMaxQueue,
		QueueTimeoutMillis: 500,
		Seed:               1,
		Params:             p,
	}
}

// TestLoadConfig shrinks the sweep to unit-test scale.
func TestLoadConfig() LoadConfig {
	cfg := DefaultLoadConfig()
	cfg.ShardCounts = []int{1, 2}
	cfg.DocsPerParty = 80
	cfg.DocLen = 30
	cfg.Vocab = 400
	cfg.DetermChecks = 3
	cfg.ServiceMicros = 4000
	cfg.ProbeSearches = 16
	cfg.Requests = 60
	return cfg
}

// Validate reports whether the configuration is usable.
func (c LoadConfig) Validate() error {
	switch {
	case len(c.ShardCounts) == 0:
		return fmt.Errorf("%w: no shard counts", ErrBadConfig)
	case c.Replicas < 1:
		return fmt.Errorf("%w: Replicas=%d", ErrBadConfig, c.Replicas)
	case c.Parties < 1:
		return fmt.Errorf("%w: Parties=%d", ErrBadConfig, c.Parties)
	case c.DocsPerParty < 1 || c.DocLen < 1 || c.Vocab < 2 || c.Terms < 1:
		return fmt.Errorf("%w: empty workload", ErrBadConfig)
	case c.DetermChecks < 1:
		return fmt.Errorf("%w: DetermChecks=%d", ErrBadConfig, c.DetermChecks)
	case c.ServiceMicros < 0:
		return fmt.Errorf("%w: ServiceMicros=%d", ErrBadConfig, c.ServiceMicros)
	case c.ProbeSearches < 1 || c.Requests < 1:
		return fmt.Errorf("%w: empty load phase", ErrBadConfig)
	case c.TargetUtil <= 0 || c.TargetUtil > 1:
		return fmt.Errorf("%w: TargetUtil=%v", ErrBadConfig, c.TargetUtil)
	case c.ZipfS <= 1:
		return fmt.Errorf("%w: ZipfS=%v must be > 1", ErrBadConfig, c.ZipfS)
	case c.KillReplica && c.Replicas < 2:
		return fmt.Errorf("%w: KillReplica needs Replicas >= 2", ErrBadConfig)
	case c.Params.Epsilon != 0:
		return fmt.Errorf("%w: the determinism check needs Epsilon=0", ErrBadConfig)
	}
	prev := 0
	for _, n := range c.ShardCounts {
		if n < 1 || n <= prev {
			return fmt.Errorf("%w: shard counts %v must be ascending and >= 1", ErrBadConfig, c.ShardCounts)
		}
		prev = n
	}
	return c.Params.Validate()
}

// LoadPoint is one measured shard count.
type LoadPoint struct {
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	// Deterministic records that every pre-load check query returned a
	// SearchResult bit-identical to the unsharded reference federation.
	Deterministic bool `json:"deterministic"`
	// CapacityQPS is the closed-loop probe throughput with MaxInFlight
	// workers; OfferedQPS is the open-loop rate (TargetUtil * capacity).
	CapacityQPS float64 `json:"capacity_qps"`
	OfferedQPS  float64 `json:"offered_qps"`
	// Sent / OK / Shed / Failed partition the open-loop arrivals: 200s,
	// admission 429s, anything else.
	Sent   int `json:"sent"`
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`
	// Availability is OK over admitted (non-shed) requests — the chaos
	// acceptance bar is 1.0 with a replica killed mid-run.
	Availability  float64 `json:"availability"`
	ShedRate      float64 `json:"shed_rate"`
	ThroughputQPS float64 `json:"throughput_qps"`
	// Latency quantiles from the gateway's own
	// csfltr_http_request_duration_seconds{route="/v1/search"} histogram
	// over the open-loop phase (bucket upper bounds, seconds; -1 when the
	// quantile falls in the overflow bucket). Shed 429s are part of the
	// distribution — they are gateway responses too.
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	P999Seconds float64 `json:"p999_seconds"`
	// P999Bounded is the sustained-load bar: the tail stayed inside the
	// histogram's finite buckets (<= 10s) under 80%-capacity load with
	// the replica kill.
	P999Bounded   bool `json:"p999_bounded"`
	ReplicaKilled bool `json:"replica_killed"`
}

// LoadResult is the sweep outcome.
type LoadResult struct {
	Config LoadConfig  `json:"config"`
	Points []LoadPoint `json:"points"`
	// Deterministic is the AND of every point's determinism check.
	Deterministic bool `json:"deterministic"`
	// SearchSpeedup is the open-loop throughput of the largest shard
	// count over the first (baseline) shard count.
	SearchSpeedup float64 `json:"search_speedup"`
}

// loadFed builds one sweep federation at the given shard fan: querier Q
// plus cfg.Parties data parties with the parallelism sweep's seeded
// corpora. shards == 0 builds the unsharded reference (legacy
// single-Owner backends, no replicas).
func loadFed(cfg LoadConfig, shards int) (*federation.Federation, error) {
	p := cfg.Params
	if shards > 0 {
		p.Shards = shards
		p.Replicas = cfg.Replicas
	}
	names := []string{"Q"}
	for i := 0; i < cfg.Parties; i++ {
		names = append(names, partyName(i))
	}
	fed, err := federation.NewDeterministic(names, p, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, err
	}
	docs := ParallelismConfig{Seed: cfg.Seed, DocsPerParty: cfg.DocsPerParty, DocLen: cfg.DocLen, Vocab: cfg.Vocab}
	for i := 0; i < cfg.Parties; i++ {
		if err := fed.Parties[i+1].IngestAllParallel(parallelismDocs(docs, i), 0); err != nil {
			return nil, err
		}
	}
	return fed, nil
}

// loadQueries draws the shared query stream: every shard fan replays the
// same Zipf-skewed term mix, so points differ only in backend fan.
func loadQueries(cfg LoadConfig, n int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Vocab-1))
	qs := make([][]uint64, n)
	for i := range qs {
		terms := make([]uint64, cfg.Terms)
		for j := range terms {
			terms[j] = zipf.Uint64()
		}
		qs[i] = terms
	}
	return qs
}

// postSearch sends one gateway search and classifies the response.
func postSearch(client *http.Client, url string, terms []uint64, k int) (code int, err error) {
	body, err := json.Marshal(struct {
		From  string   `json:"from"`
		Terms []uint64 `json:"terms"`
		K     int      `json:"k"`
	}{From: "Q", Terms: terms, K: k})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// quantileOrNeg clamps non-finite quantiles (overflow bucket, empty
// histogram) to -1 so the result marshals to JSON.
func quantileOrNeg(h *telemetry.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// RunLoadSweep measures sustained-load gateway serving at every shard
// count: a determinism check against the unsharded reference, a
// closed-loop capacity probe, then the open-loop phase at TargetUtil of
// capacity with the optional mid-run replica kill.
func RunLoadSweep(cfg LoadConfig) (*LoadResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ref, err := loadFed(cfg, 0)
	if err != nil {
		return nil, err
	}
	checks := loadQueries(cfg, cfg.DetermChecks, cfg.Seed+7717)
	want := make([]*federation.SearchResult, len(checks))
	for i, q := range checks {
		if want[i], err = ref.Search("Q", q, cfg.Params.K); err != nil {
			return nil, err
		}
	}
	probeQs := loadQueries(cfg, cfg.ProbeSearches, cfg.Seed+104729)
	openQs := loadQueries(cfg, cfg.Requests, cfg.Seed+1299709)

	res := &LoadResult{Config: cfg, Deterministic: true}
	for _, shards := range cfg.ShardCounts {
		pt, err := runLoadPoint(cfg, shards, checks, want, probeQs, openQs)
		if err != nil {
			return nil, err
		}
		res.Deterministic = res.Deterministic && pt.Deterministic
		res.Points = append(res.Points, *pt)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.ThroughputQPS > 0 {
		res.SearchSpeedup = last.ThroughputQPS / first.ThroughputQPS
	}
	return res, nil
}

// runLoadPoint measures one shard count.
func runLoadPoint(cfg LoadConfig, shards int, checks [][]uint64, want []*federation.SearchResult,
	probeQs, openQs [][]uint64) (*LoadPoint, error) {
	fed, err := loadFed(cfg, shards)
	if err != nil {
		return nil, err
	}
	pt := &LoadPoint{Shards: shards, Replicas: cfg.Replicas, Deterministic: true}

	// Determinism first, on the quiet federation: sharded scatter-gather
	// must release bit-identical SearchResults.
	for i, q := range checks {
		got, err := fed.Search("Q", q, cfg.Params.K)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(got, want[i]) {
			pt.Deterministic = false
		}
	}

	// Simulated per-node service time: the whole-corpus RTK cost split
	// across shards. Installed after the determinism check so that phase
	// stays fast.
	perCall := time.Duration(cfg.ServiceMicros) * time.Microsecond / time.Duration(shards)
	for i := 0; i < cfg.Parties; i++ {
		for _, f := range []federation.Field{federation.FieldBody, federation.FieldTitle} {
			if g := fed.Parties[i+1].Group(f); g != nil {
				g.SetIntercept(func(_, _ int, api string) error {
					if api == shard.APIRTK {
						time.Sleep(perCall)
					}
					return nil
				})
			}
		}
	}

	fed.Server.SetAdmission(federation.AdmissionConfig{
		MaxInFlight:  cfg.MaxInFlight,
		MaxQueue:     cfg.MaxQueue,
		QueueTimeout: time.Duration(cfg.QueueTimeoutMillis) * time.Millisecond,
	})
	adm, _ := fed.Server.Admission()
	srv := httptest.NewServer(federation.HTTPHandler(fed.Server))
	defer srv.Close()
	client := srv.Client()

	// Closed-loop capacity probe: exactly MaxInFlight workers keep the
	// gateway's execution slots full; the completion rate is capacity.
	var next atomic.Int64
	var probeErr atomic.Pointer[error]
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < adm.MaxInFlight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(probeQs) {
					return
				}
				code, err := postSearch(client, srv.URL, probeQs[i], cfg.Params.K)
				if err == nil && code != http.StatusOK && code != http.StatusTooManyRequests {
					err = fmt.Errorf("probe search: HTTP %d", code)
				}
				if err != nil {
					probeErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := probeErr.Load(); p != nil {
		return nil, *p
	}
	pt.CapacityQPS = float64(len(probeQs)) / time.Since(start).Seconds()
	pt.OfferedQPS = cfg.TargetUtil * pt.CapacityQPS

	// Open-loop phase: fixed-interval arrivals at the offered rate, each
	// a goroutine of its own — a slow gateway does not slow the
	// generator, it grows the queue and then sheds.
	hist := fed.Server.Metrics().Histogram("csfltr_http_request_duration_seconds",
		"HTTP gateway request latency.", nil, telemetry.L("route", "/v1/search"))
	hist.Reset()
	interval := time.Duration(float64(time.Second) / pt.OfferedQPS)
	killAt := -1
	if cfg.KillReplica {
		killAt = cfg.Requests / 2
	}
	var ok, shed, failed atomic.Int64
	begin := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		if d := time.Until(begin.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		if i == killAt {
			fed.Parties[1].Group(federation.FieldBody).KillReplica(0, 0)
			pt.ReplicaKilled = true
		}
		wg.Add(1)
		go func(terms []uint64) {
			defer wg.Done()
			switch code, err := postSearch(client, srv.URL, terms, cfg.Params.K); {
			case err != nil:
				failed.Add(1)
			case code == http.StatusOK:
				ok.Add(1)
			case code == http.StatusTooManyRequests:
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}(openQs[i])
	}
	wg.Wait()
	elapsed := time.Since(begin)

	pt.Sent = cfg.Requests
	pt.OK = int(ok.Load())
	pt.Shed = int(shed.Load())
	pt.Failed = int(failed.Load())
	if admitted := pt.Sent - pt.Shed; admitted > 0 {
		pt.Availability = float64(pt.OK) / float64(admitted)
	}
	pt.ShedRate = float64(pt.Shed) / float64(pt.Sent)
	pt.ThroughputQPS = float64(pt.OK) / elapsed.Seconds()
	pt.P50Seconds = quantileOrNeg(hist, 0.50)
	pt.P99Seconds = quantileOrNeg(hist, 0.99)
	pt.P999Seconds = quantileOrNeg(hist, 0.999)
	pt.P999Bounded = pt.P999Seconds >= 0
	return pt, nil
}

// RenderLoad renders the sweep as the table expbench prints.
func RenderLoad(res *LoadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d parties x %d docs, %d-term Zipf(s=%.2f) mix, %d req/point at %.0f%% capacity, service %dus/node, kill_replica=%v\n",
		res.Config.Parties, res.Config.DocsPerParty, res.Config.Terms, res.Config.ZipfS,
		res.Config.Requests, res.Config.TargetUtil*100, res.Config.ServiceMicros, res.Config.KillReplica)
	fmt.Fprintf(&b, "%6s %8s %12s %12s %12s %6s %8s %6s %12s %10s %10s %10s\n",
		"shards", "replicas", "capacity_qps", "offered_qps", "tput_qps", "ok", "shed", "fail", "availability", "p50_s", "p99_s", "p999_s")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%6d %8d %12.1f %12.1f %12.1f %6d %8d %6d %12.3f %10.4f %10.4f %10.4f\n",
			p.Shards, p.Replicas, p.CapacityQPS, p.OfferedQPS, p.ThroughputQPS,
			p.OK, p.Shed, p.Failed, p.Availability, p.P50Seconds, p.P99Seconds, p.P999Seconds)
	}
	fmt.Fprintf(&b, "deterministic=%v search_speedup=%.2fx (%d shards vs %d)\n",
		res.Deterministic, res.SearchSpeedup,
		res.Points[len(res.Points)-1].Shards, res.Points[0].Shards)
	return b.String()
}
