package experiments

import (
	"fmt"
	"math/rand"

	"csfltr/internal/corpus"
	"csfltr/internal/embed"
	"csfltr/internal/features"
	"csfltr/internal/hashutil"
	"csfltr/internal/sketch"
	"csfltr/internal/textkit"
)

// Fig5Strategy describes one panel of Fig. 5: which sketch (if any)
// supplies the term counts behind the 16-dimensional features.
type Fig5Strategy struct {
	Name  string
	Exact bool        // no sketch at all (panel a)
	Kind  sketch.Kind // Count or CountMin
	W     int         // hash range
	Z     int         // total rows in the sketch
	Z1    int         // rows actually used by the estimator
}

// PaperFig5Strategies returns the paper's eight panels: no sketch, Count
// Sketch at w=200/100/50, CM sketch at w=200, and Count Sketch at
// z1=5/3/1.
func PaperFig5Strategies() []Fig5Strategy {
	return []Fig5Strategy{
		{Name: "no-sketch", Exact: true},
		{Name: "count-w200-z1-10", Kind: sketch.Count, W: 200, Z: 30, Z1: 10},
		{Name: "count-w100", Kind: sketch.Count, W: 100, Z: 30, Z1: 10},
		{Name: "count-w50", Kind: sketch.Count, W: 50, Z: 30, Z1: 10},
		{Name: "cm-w200", Kind: sketch.CountMin, W: 200, Z: 30, Z1: 10},
		{Name: "count-z1-5", Kind: sketch.Count, W: 200, Z: 30, Z1: 5},
		{Name: "count-z1-3", Kind: sketch.Count, W: 200, Z: 30, Z1: 3},
		{Name: "count-z1-1", Kind: sketch.Count, W: 200, Z: 30, Z1: 1},
	}
}

// Fig5Panel is one rendered panel: the 2-D embedding of the sampled
// instances under a strategy, their binary labels and the quantitative
// separability probes.
type Fig5Panel struct {
	Strategy Fig5Strategy
	Points   [][]float64 // len(samples) x 2
	Labels   []int       // 1 = positive (relevance 1 or 2), 0 = negative
	Probes   embed.Separability
}

// Fig5Config configures the visualization experiment.
type Fig5Config struct {
	Corpus  corpus.Config
	Params  features.Params
	Samples int // total sampled instances (the paper uses 400)
	TSNE    embed.TSNEConfig
	Seed    int64
}

// DefaultFig5Config mirrors the paper: 400 samples, t-SNE embedding.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Corpus:  corpus.DefaultConfig(),
		Params:  features.DefaultParams(),
		Samples: 400,
		TSNE:    embed.DefaultTSNEConfig(),
		Seed:    1,
	}
}

// TestFig5Config returns a fast configuration for unit tests.
func TestFig5Config() Fig5Config {
	cfg := DefaultFig5Config()
	cfg.Corpus = corpus.TestConfig()
	cfg.Samples = 60
	cfg.TSNE.Iterations = 60
	cfg.TSNE.ExaggerateFor = 20
	return cfg
}

// Validate reports whether the configuration is usable.
func (c Fig5Config) Validate() error {
	if err := c.Corpus.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Samples < 10 {
		return fmt.Errorf("%w: Samples=%d", ErrBadConfig, c.Samples)
	}
	return c.TSNE.Validate()
}

// fig5Sample is one sampled (query, document, label) triple.
type fig5Sample struct {
	query *textkit.Query
	doc   *textkit.Document
	label int // binary
}

// sampleInstances draws a balanced set of positive and negative
// query-document pairs from the corpus ground truth.
func sampleInstances(c *corpus.Corpus, samples int, seed int64) []fig5Sample {
	rng := rand.New(rand.NewSource(seed))
	var positives, negatives []fig5Sample
	for pi, party := range c.Parties {
		for _, q := range party.Queries {
			qref := corpus.QueryRef{Party: pi, Query: q.ID}
			for _, sd := range c.GroundTruth(qref) {
				positives = append(positives, fig5Sample{
					query: q,
					doc:   c.Parties[sd.Ref.Party].Docs[sd.Ref.Doc],
					label: 1,
				})
			}
		}
	}
	rng.Shuffle(len(positives), func(i, j int) { positives[i], positives[j] = positives[j], positives[i] })
	half := samples / 2
	if len(positives) > half {
		positives = positives[:half]
	}
	need := samples - len(positives)
	for len(negatives) < need {
		pi := rng.Intn(len(c.Parties))
		party := c.Parties[pi]
		q := party.Queries[rng.Intn(len(party.Queries))]
		dp := rng.Intn(len(c.Parties))
		doc := c.Parties[dp].Docs[rng.Intn(len(c.Parties[dp].Docs))]
		qref := corpus.QueryRef{Party: pi, Query: q.ID}
		if c.Label(qref, corpus.DocRef{Party: dp, Doc: doc.ID}) != 0 {
			continue
		}
		negatives = append(negatives, fig5Sample{query: q, doc: doc, label: 0})
	}
	return append(positives, negatives...)
}

// strategyField builds the Field supplying counts for one document field
// under a strategy: exact counts, or point queries against a per-document
// sketch using z1 of the z rows.
func strategyField(s Fig5Strategy, tv textkit.TermVector, fam *hashutil.Family, rows []int) (features.Field, error) {
	if s.Exact {
		return features.ExactField(tv), nil
	}
	table, err := sketch.New(s.Kind, fam)
	if err != nil {
		return nil, err
	}
	for t, c := range tv {
		table.Add(uint64(t), int64(c))
	}
	count := func(t textkit.TermID) float64 {
		vals := make([]float64, len(rows))
		for i, a := range rows {
			vals[i] = float64(table.Cell(a, fam.Index(a, uint64(t))))
		}
		return sketch.EstimateFromRows(s.Kind, fam, uint64(t), rows, vals)
	}
	return features.FuncField(count, tv.Total(), tv.Unique()), nil
}

// RunFig5 renders every strategy panel: extract features under the
// strategy, embed with t-SNE and compute separability probes.
func RunFig5(cfg Fig5Config, strategies []Fig5Strategy) ([]Fig5Panel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(strategies) == 0 {
		return nil, fmt.Errorf("%w: no strategies", ErrBadConfig)
	}
	c, err := corpus.Generate(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	docSets := make([][]*textkit.Document, len(c.Parties))
	for i, p := range c.Parties {
		docSets[i] = p.Docs
	}
	stats := features.ComputeStats(docSets...)
	samples := sampleInstances(c, cfg.Samples, cfg.Seed)
	if len(samples) < 10 {
		return nil, fmt.Errorf("%w: corpus produced only %d samples", ErrBadConfig, len(samples))
	}
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = s.label
	}

	panels := make([]Fig5Panel, 0, len(strategies))
	for si, strat := range strategies {
		var fam *hashutil.Family
		var rows []int
		if !strat.Exact {
			if strat.Z <= 0 || strat.Z1 <= 0 || strat.Z1 > strat.Z || strat.W < 2 {
				return nil, fmt.Errorf("%w: strategy %q has z=%d z1=%d w=%d",
					ErrBadConfig, strat.Name, strat.Z, strat.Z1, strat.W)
			}
			fam, err = hashutil.NewFamily(hashutil.KindPolynomial, strat.Z, strat.W, uint64(cfg.Seed)+uint64(si))
			if err != nil {
				return nil, err
			}
			perm := rand.New(rand.NewSource(cfg.Seed + int64(si))).Perm(strat.Z)
			rows = perm[:strat.Z1]
		}
		vectors := make([][]float64, len(samples))
		for i, s := range samples {
			body, err := strategyField(strat, s.doc.BodyCounts(), fam, rows)
			if err != nil {
				return nil, err
			}
			title, err := strategyField(strat, s.doc.TitleCounts(), fam, rows)
			if err != nil {
				return nil, err
			}
			vectors[i] = features.Vector(s.query.UniqueTerms(), body, title, stats, cfg.Params)
		}
		nz := features.FitNormalizer(vectors)
		nz.ApplyAll(vectors)
		points, err := embed.TSNE(vectors, cfg.TSNE)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %q embed: %w", strat.Name, err)
		}
		probes, err := embed.Separate(vectors, labels, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %q probes: %w", strat.Name, err)
		}
		panels = append(panels, Fig5Panel{
			Strategy: strat,
			Points:   points,
			Labels:   labels,
			Probes:   probes,
		})
	}
	return panels, nil
}
