package experiments

import (
	"strings"
	"testing"
)

func TestRunCacheSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark")
	}
	cfg := TestCacheConfig()
	res, err := RunCacheSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReplayIdentical {
		t.Fatal("cached repeats diverged from their first occurrence")
	}
	if res.On.Replays == 0 {
		t.Fatal("no replays recorded despite a Zipf-repeat stream")
	}
	if res.Off.Replays != 0 {
		t.Fatalf("cache-off run recorded %d replays", res.Off.Replays)
	}
	// The cached run must spend strictly less budget than the uncached
	// one — repeats replay instead of re-querying.
	if res.On.EpsilonSpent >= res.Off.EpsilonSpent {
		t.Fatalf("cache saved no budget: on=%g off=%g",
			res.On.EpsilonSpent, res.Off.EpsilonSpent)
	}
	if res.HitRate <= 0 {
		t.Fatalf("hit rate %v", res.HitRate)
	}
	if res.On.Stats.Stores == 0 {
		t.Fatalf("cache never stored: %+v", res.On.Stats)
	}
	out := RenderCache(res)
	for _, want := range []string{"cache off", "cache on", "median speedup", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCacheConfigValidate(t *testing.T) {
	ok := TestCacheConfig()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*CacheConfig){
		func(c *CacheConfig) { c.Parties = 0 },
		func(c *CacheConfig) { c.DocsPerParty = 0 },
		func(c *CacheConfig) { c.Distinct = 0 },
		func(c *CacheConfig) { c.Requests = 0 },
		func(c *CacheConfig) { c.TermsPerQuery = 0 },
		func(c *CacheConfig) { c.ZipfS = 1 },
		func(c *CacheConfig) { c.RTTMicros = -1 },
		func(c *CacheConfig) { c.CacheBytes = 0 },
		func(c *CacheConfig) { c.Params.K = 0 },
	}
	for i, mutate := range bad {
		cfg := TestCacheConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d passed validation", i)
		}
	}
}
