package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestReportAddAndJSON(t *testing.T) {
	r := NewReport(map[string]string{"scale": "test"})
	r.Add("traffic", map[string]int{"bytes": 42})
	r.Add("traffic", map[string]int{"bytes": 43}) // duplicate id
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"traffic"`) || !strings.Contains(out, `"traffic-2"`) {
		t.Fatalf("duplicate ids not suffixed:\n%s", out)
	}
	var decoded struct {
		Meta    map[string]string         `json:"meta"`
		Results map[string]map[string]int `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Meta["scale"] != "test" {
		t.Fatal("meta lost")
	}
	if decoded.Results["traffic"]["bytes"] != 42 || decoded.Results["traffic-2"]["bytes"] != 43 {
		t.Fatalf("results lost: %v", decoded.Results)
	}
}

func TestReportNilMeta(t *testing.T) {
	r := NewReport(nil)
	r.Add("x", 1)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestReportConcurrent(t *testing.T) {
	r := NewReport(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add("same-id", g*1000+i)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("concurrent adds lost entries: %d", r.Len())
	}
}

// TestReportSerializesRealResults: the actual experiment result structs
// must be JSON-serializable (exported fields, no cycles).
func TestReportSerializesRealResults(t *testing.T) {
	r := NewReport(nil)
	r.Add("fig4", []Fig4Point{{Param: "alpha", Value: 5, CoverRate: 0.99}})
	r.Add("headline", &HeadlineResult{Docs: 100, Speedup: 10})
	r.Add("table1", &Table1Result{PartyNames: []string{"A"}})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"CoverRate", "Speedup", "PartyNames"} {
		if !strings.Contains(buf.String(), needle) {
			t.Fatalf("JSON missing %s", needle)
		}
	}
}
