package experiments

import (
	"strings"
	"testing"
)

// TestParallelismSweep runs the sweep at unit-test scale and checks the
// new sections: the in-run legacy ingest baseline and the wire-codec
// byte comparison.
func TestParallelismSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	cfg := TestParallelismConfig()
	cfg.Workers = []int{1, 2}
	res, err := RunParallelismSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("sweep not deterministic at Epsilon=0")
	}
	if len(res.Ingest) != len(cfg.Workers) || len(res.Search) != len(cfg.Workers) {
		t.Fatalf("point counts: ingest=%d search=%d", len(res.Ingest), len(res.Search))
	}
	if res.LegacyIngest == nil || res.LegacyIngest.NsPerOp == 0 {
		t.Fatal("legacy ingest baseline missing")
	}
	for _, p := range res.Ingest {
		if p.SpeedupVsLegacy <= 1 {
			t.Fatalf("workers=%d: speedup vs legacy %.2fx, want > 1x", p.Workers, p.SpeedupVsLegacy)
		}
	}
	if res.LegacyIngest.AllocsPerOp < 5*res.Ingest[0].AllocsPerOp {
		t.Fatalf("alloc reduction under 5x: legacy %d vs pooled %d",
			res.LegacyIngest.AllocsPerOp, res.Ingest[0].AllocsPerOp)
	}
	wb := res.WireBytes
	if wb == nil {
		t.Fatal("wire bytes section missing")
	}
	if !wb.Deterministic {
		t.Fatal("wire codec changed the ranking")
	}
	if wb.ReductionRatio < 2 {
		t.Fatalf("wire reduction %.2fx (raw %d, wire %d), want >= 2x",
			wb.ReductionRatio, wb.RawBytesPerSearch, wb.WireBytesPerSearch)
	}
	out := RenderParallelism(res)
	for _, want := range []string{"vs legacy", "legacy ingest", "wire codec:", "reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
