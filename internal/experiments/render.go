package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Every renderer below writes through a tabwriter into an in-memory
// strings.Builder, so writes are structurally infallible; wprintf,
// wprintln and flushTable state that contract once instead of
// discarding an error at every call site.

// wprintf is fmt.Fprintf to an in-memory destination; the error is
// structurally nil.
func wprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// wprintln is fmt.Fprintln to an in-memory destination.
func wprintln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

// flushTable flushes a tabwriter whose underlying writer is in-memory.
func flushTable(tw *tabwriter.Writer) { _ = tw.Flush() }

// RenderTable1 formats a Table1Result in the layout of the paper's
// Table I.
func RenderTable1(res *Table1Result) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintln(tw, "method\tparty\tERR\tnDCG@10\tnDCG")
	for i, name := range res.PartyNames {
		m := res.Local.PerParty[i]
		wprintf(tw, "Local\tParty %s\t%.3f\t%.3f\t%.3f\n", name, m.ERR, m.NDCG10, m.NDCG)
	}
	a := res.Local.Average
	wprintf(tw, "Local\tAverage\t%.3f\t%.3f\t%.3f\n", a.ERR, a.NDCG10, a.NDCG)
	for i, name := range res.PartyNames {
		m := res.LocalPlus.PerParty[i]
		wprintf(tw, "Local+\tParty %s\t%.3f\t%.3f\t%.3f\n", name, m.ERR, m.NDCG10, m.NDCG)
	}
	a = res.LocalPlus.Average
	wprintf(tw, "Local+\tAverage\t%.3f\t%.3f\t%.3f\n", a.ERR, a.NDCG10, a.NDCG)
	wprintf(tw, "Global\t\t%.3f\t%.3f\t%.3f\n", res.Global.ERR, res.Global.NDCG10, res.Global.NDCG)
	wprintf(tw, "CS-F-LTR\t\t%.3f\t%.3f\t%.3f\n", res.CSFLTR.ERR, res.CSFLTR.NDCG10, res.CSFLTR.NDCG)
	flushTable(tw)
	fmt.Fprintf(&b, "\naugmented instances per party: %v (local: %v)\n", res.AugSizes, res.LocalSizes)
	fmt.Fprintf(&b, "augmentation cost: %d messages, %.1f KB received\n",
		res.AugmentCost.Messages, float64(res.AugmentCost.BytesReceived)/1024)
	fmt.Fprintf(&b, "server traffic: %d messages, %.1f KB\n",
		res.ServerTraffic.Messages, float64(res.ServerTraffic.Bytes)/1024)
	return b.String()
}

// RenderFig4 formats one Fig. 4 sweep as an aligned table.
func RenderFig4(points []Fig4Point) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintln(tw, "param\tvalue\tcover-rate\trtk-us\tnaive-us\trtk-KB\tnaive-KB\trtk-resp-B\tnaive-resp-B")
	for _, p := range points {
		naiveUs := "-"
		if p.NaiveQueryMicros > 0 {
			naiveUs = fmt.Sprintf("%.1f", p.NaiveQueryMicros)
		}
		naiveResp := "-"
		if p.NaiveRespBytes > 0 {
			naiveResp = fmt.Sprintf("%d", p.NaiveRespBytes)
		}
		wprintf(tw, "%s\t%g\t%.3f\t%.1f\t%s\t%.1f\t%.1f\t%d\t%s\n",
			p.Param, p.Value, p.CoverRate, p.RTKQueryMicros, naiveUs,
			float64(p.RTKSpaceBytes)/1024, float64(p.NaiveSpaceBytes)/1024,
			p.RTKRespBytes, naiveResp)
	}
	flushTable(tw)
	return b.String()
}

// WriteFig4CSV writes a sweep as CSV.
func WriteFig4CSV(w io.Writer, points []Fig4Point) error {
	if _, err := fmt.Fprintln(w, "param,value,cover_rate,rtk_us,naive_us,rtk_space_bytes,naive_space_bytes,rtk_resp_bytes,naive_resp_bytes"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%g,%.6f,%.3f,%.3f,%d,%d,%d,%d\n",
			p.Param, p.Value, p.CoverRate, p.RTKQueryMicros, p.NaiveQueryMicros,
			p.RTKSpaceBytes, p.NaiveSpaceBytes, p.RTKRespBytes, p.NaiveRespBytes); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig5 formats the separability probes of every panel; the paper's
// visual claim becomes a comparable table.
func RenderFig5(panels []Fig5Panel) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintln(tw, "strategy\tprobe-acc\tcentroid-margin\tsilhouette")
	for _, p := range panels {
		wprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n",
			p.Strategy.Name, p.Probes.ProbeAccuracy, p.Probes.CentroidMargin, p.Probes.Silhouette)
	}
	flushTable(tw)
	return b.String()
}

// WriteFig5PointsCSV writes one panel's embedding as CSV
// (x, y, label).
func WriteFig5PointsCSV(w io.Writer, panel Fig5Panel) error {
	if _, err := fmt.Fprintln(w, "x,y,label"); err != nil {
		return err
	}
	for i, pt := range panel.Points {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f,%d\n", pt[0], pt[1], panel.Labels[i]); err != nil {
			return err
		}
	}
	return nil
}

// Scatter renders a 2-D labelled point cloud as ASCII art (o = positive,
// . = negative, 8 = overlap), the terminal stand-in for Fig. 5's panels.
func Scatter(points [][]float64, labels []int, width, height int) string {
	if len(points) == 0 || width < 2 || height < 2 {
		return ""
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i, p := range points {
		x := int((p[0] - minX) / (maxX - minX) * float64(width-1))
		y := int((p[1] - minY) / (maxY - minY) * float64(height-1))
		ch := byte('.')
		if labels[i] > 0 {
			ch = 'o'
		}
		cur := grid[y][x]
		switch {
		case cur == ' ':
			grid[y][x] = ch
		case cur != ch:
			grid[y][x] = '8' // both classes in one cell
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderEstimatorAblation formats the estimator ablation side by side.
func RenderEstimatorAblation(ab *EstimatorAblation) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintf(tw, "%s\tcover(zero-fill)\tcover(present-rows)\n", ab.Param)
	for i := range ab.ZeroFill {
		wprintf(tw, "%g\t%.3f\t%.3f\n",
			ab.ZeroFill[i].Value, ab.ZeroFill[i].CoverRate, ab.Present[i].CoverRate)
	}
	flushTable(tw)
	return b.String()
}

// RenderAggregatorAblation formats the aggregation-strategy ablation.
func RenderAggregatorAblation(ab *AggregatorAblation) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintln(tw, "aggregator\tERR\tnDCG@10\tnDCG")
	wprintf(tw, "round-robin\t%.3f\t%.3f\t%.3f\n",
		ab.RoundRobin.ERR, ab.RoundRobin.NDCG10, ab.RoundRobin.NDCG)
	wprintf(tw, "fedavg\t%.3f\t%.3f\t%.3f\n",
		ab.FedAvg.ERR, ab.FedAvg.NDCG10, ab.FedAvg.NDCG)
	flushTable(tw)
	return b.String()
}

// RenderFig6a formats the privacy-budget sweep.
func RenderFig6a(points []Fig6aPoint) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintln(tw, "epsilon\tERR\tnDCG@10\tnDCG")
	for _, p := range points {
		eps := fmt.Sprintf("%g", p.Epsilon)
		if p.Epsilon == 0 {
			eps = "off"
		}
		wprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", eps, p.Metrics.ERR, p.Metrics.NDCG10, p.Metrics.NDCG)
	}
	flushTable(tw)
	return b.String()
}

// RenderFig6b formats the party-count sweep.
func RenderFig6b(points []Fig6bPoint) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	wprintln(tw, "parties\tERR\tnDCG@10\tnDCG")
	for _, p := range points {
		wprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", p.Parties, p.Metrics.ERR, p.Metrics.NDCG10, p.Metrics.NDCG)
	}
	flushTable(tw)
	return b.String()
}

// RenderHeadline formats the NAIVE vs RTK headline comparison.
func RenderHeadline(res *HeadlineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reverse top-K over %d documents (single term):\n", res.Docs)
	fmt.Fprintf(&b, "  NAIVE: %.2f ms/query, %.1f KB response, %.1f MB owner memory\n",
		res.NaiveMillis, float64(res.NaiveBytes)/1024, float64(res.NaiveSpace)/(1024*1024))
	fmt.Fprintf(&b, "  RTK:   %.3f ms/query, %.1f KB response, %.1f MB owner memory\n",
		res.RTKMillis, float64(res.RTKBytes)/1024, float64(res.RTKSpace)/(1024*1024))
	fmt.Fprintf(&b, "  speedup: %.0fx, space reduction: %.1fx, cover rate: %.3f\n",
		res.Speedup, res.SpaceReduction, res.CoverRate)
	fmt.Fprintf(&b, "  deployed at %.1f ms RTT (NAIVE: 1 round trip/doc, RTK: 1 total):\n", res.RTTMillis)
	fmt.Fprintf(&b, "    NAIVE %.1f s vs RTK %.1f ms (%.0fx)\n",
		res.NaiveDeployedSec, res.RTKDeployedMs, res.DeployedSpeedup)
	return b.String()
}
