package experiments

import (
	"fmt"

	"csfltr/internal/core"
	"csfltr/internal/features"
	"csfltr/internal/federation"
	"csfltr/internal/ltr"
)

// MethodResult holds metrics for a per-party method (Local, Local+):
// one row per party plus the average row, matching Table I's layout.
type MethodResult struct {
	PerParty []ltr.Metrics
	Average  ltr.Metrics
}

// averageOf computes the mean metrics across parties.
func averageOf(per []ltr.Metrics) ltr.Metrics {
	var avg ltr.Metrics
	if len(per) == 0 {
		return avg
	}
	for _, m := range per {
		avg.ERR += m.ERR
		avg.NDCG += m.NDCG
		avg.NDCG10 += m.NDCG10
	}
	n := float64(len(per))
	avg.ERR /= n
	avg.NDCG /= n
	avg.NDCG10 /= n
	return avg
}

// Table1Result reproduces Table I: ERR / nDCG@10 / nDCG for Local (per
// party + average), Local+ (per party + average), Global and CS-F-LTR,
// all evaluated on the shared external test set.
type Table1Result struct {
	PartyNames []string
	Local      MethodResult
	LocalPlus  MethodResult
	Global     ltr.Metrics
	CSFLTR     ltr.Metrics

	// AugmentCost is the total protocol cost of generating every party's
	// augmented data.
	AugmentCost core.Cost
	// ServerTraffic is the total traffic relayed by the server.
	ServerTraffic federation.TrafficStats
	// TrainSizes records per-party (local, augmented) instance counts.
	LocalSizes []int
	AugSizes   []int
}

// RunTable1 executes the full comparison on an initialized pipeline.
func RunTable1(p *Pipeline) (*Table1Result, error) {
	n := len(p.Fed.Parties)
	res := &Table1Result{}
	for i := 0; i < n; i++ {
		res.PartyNames = append(res.PartyNames, partyName(i))
	}
	test := p.TestData()
	if len(test) == 0 {
		return nil, fmt.Errorf("%w: empty test set", ErrBadConfig)
	}

	local := make([][]ltr.Instance, n)
	augmented := make([][]ltr.Instance, n)
	for i := 0; i < n; i++ {
		local[i] = p.LocalData(i)
		res.LocalSizes = append(res.LocalSizes, len(local[i]))
		aug, err := p.Augment(i, true)
		if err != nil {
			return nil, err
		}
		augmented[i] = aug.Instances
		res.AugSizes = append(res.AugSizes, len(aug.Instances))
		res.AugmentCost.Add(aug.Cost)
	}

	// Local: each party trains alone on its local data.
	for i := 0; i < n; i++ {
		m, nz, err := p.trainModel(local[i])
		if err != nil {
			return nil, fmt.Errorf("experiments: local model %s: %w", partyName(i), err)
		}
		res.Local.PerParty = append(res.Local.PerParty, evaluate(m, nz, test))
	}
	res.Local.Average = averageOf(res.Local.PerParty)

	// Local+: local plus own augmented data, still trained alone.
	for i := 0; i < n; i++ {
		data := append(append([]ltr.Instance(nil), local[i]...), augmented[i]...)
		m, nz, err := p.trainModel(data)
		if err != nil {
			return nil, fmt.Errorf("experiments: local+ model %s: %w", partyName(i), err)
		}
		res.LocalPlus.PerParty = append(res.LocalPlus.PerParty, evaluate(m, nz, test))
	}
	res.LocalPlus.Average = averageOf(res.LocalPlus.PerParty)

	// Global: horizontal FL over local data only (lossless features).
	gm, gnz, err := p.trainFederated(local)
	if err != nil {
		return nil, fmt.Errorf("experiments: global model: %w", err)
	}
	res.Global = evaluate(gm, gnz, test)

	// CS-F-LTR: federated training over local + augmented data.
	combined := make([][]ltr.Instance, n)
	for i := 0; i < n; i++ {
		combined[i] = append(append([]ltr.Instance(nil), local[i]...), augmented[i]...)
	}
	cm, cnz, err := p.trainFederated(combined)
	if err != nil {
		return nil, fmt.Errorf("experiments: cs-f-ltr model: %w", err)
	}
	res.CSFLTR = evaluate(cm, cnz, test)

	res.ServerTraffic = p.Fed.Server.Traffic()
	return res, nil
}

// AggregatorAblation compares the paper's round-robin distributed SGD
// against federated averaging on the same augmented data — the
// alternative aggregation the paper notes is "also compatible".
type AggregatorAblation struct {
	RoundRobin ltr.Metrics
	FedAvg     ltr.Metrics
}

// RunAggregatorAblation trains CS-F-LTR's combined (local + augmented)
// per-party datasets with both aggregation strategies and evaluates on
// the shared test set.
func RunAggregatorAblation(p *Pipeline) (*AggregatorAblation, error) {
	n := len(p.Fed.Parties)
	test := p.TestData()
	combined := make([][]ltr.Instance, n)
	var all [][]float64
	for i := 0; i < n; i++ {
		local := p.LocalData(i)
		aug, err := p.Augment(i, true)
		if err != nil {
			return nil, err
		}
		combined[i] = append(local, aug.Instances...)
		for _, inst := range combined[i] {
			all = append(all, inst.Features)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("%w: no training data", ErrBadConfig)
	}
	nz := features.FitNormalizer(all)
	normed := make([][]ltr.Instance, n)
	for i, d := range combined {
		normed[i] = make([]ltr.Instance, len(d))
		for j, inst := range d {
			v := nz.Apply(append([]float64(nil), inst.Features...))
			normed[i][j] = ltr.Instance{Features: v, Label: inst.Label, QueryKey: inst.QueryKey}
		}
	}
	out := &AggregatorAblation{}
	rr, err := ltr.TrainRoundRobin(features.Dim, normed, p.Cfg.Rounds, p.Cfg.SGD)
	if err != nil {
		return nil, err
	}
	out.RoundRobin = evaluate(rr, nz, test)
	fa, err := ltr.TrainFedAvg(features.Dim, normed, p.Cfg.Rounds, p.Cfg.SGD)
	if err != nil {
		return nil, err
	}
	out.FedAvg = evaluate(fa, nz, test)
	return out, nil
}

// Fig6aPoint is one epsilon setting's result (Fig. 6a).
type Fig6aPoint struct {
	Epsilon float64
	Metrics ltr.Metrics
}

// RunFig6a sweeps the privacy budget epsilon (0 = DP off, the paper's
// convention) and reports CS-F-LTR metrics at each setting.
func RunFig6a(cfg PipelineConfig, epsilons []float64) ([]Fig6aPoint, error) {
	out := make([]Fig6aPoint, 0, len(epsilons))
	for _, eps := range epsilons {
		c := cfg
		c.Params.Epsilon = eps
		p, err := NewPipeline(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6a eps=%v: %w", eps, err)
		}
		res, err := RunTable1(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6a eps=%v: %w", eps, err)
		}
		out = append(out, Fig6aPoint{Epsilon: eps, Metrics: res.CSFLTR})
	}
	return out, nil
}

// Fig6bPoint is one party-count setting's result (Fig. 6b).
type Fig6bPoint struct {
	Parties int
	Metrics ltr.Metrics
}

// RunFig6b sweeps the number of *participating* parties over a fixed
// corpus and a fixed external test set: the federation always contains
// max(parties) silos, but only the first n collaborate in training (and
// only query each other during augmentation). With n=1 the run
// degenerates to party A's Local model, exactly the paper's leftmost
// point; adding parties adds training data and cross-party positives.
func RunFig6b(cfg PipelineConfig, parties []int) ([]Fig6bPoint, error) {
	if len(parties) == 0 {
		return nil, fmt.Errorf("%w: no party counts", ErrBadConfig)
	}
	maxN := 0
	for _, n := range parties {
		if n <= 0 {
			return nil, fmt.Errorf("%w: party count %d", ErrBadConfig, n)
		}
		if n > maxN {
			maxN = n
		}
	}
	c := cfg
	c.Corpus.NumParties = maxN
	if len(c.Corpus.LabelNoise) != 0 && len(c.Corpus.LabelNoise) != maxN {
		noise := make([]float64, maxN)
		for i := range noise {
			noise[i] = c.Corpus.LabelNoise[i%len(c.Corpus.LabelNoise)]
		}
		c.Corpus.LabelNoise = noise
	}
	p, err := NewPipeline(c)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6b: %w", err)
	}
	test := p.TestData()

	out := make([]Fig6bPoint, 0, len(parties))
	for _, n := range parties {
		peers := make([]int, n)
		for i := range peers {
			peers[i] = i
		}
		combined := make([][]ltr.Instance, n)
		for i := 0; i < n; i++ {
			local := p.LocalData(i)
			if n > 1 {
				aug, err := p.AugmentAmong(i, true, peers)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig6b n=%d: %w", n, err)
				}
				local = append(local, aug.Instances...)
			}
			combined[i] = local
		}
		m, nz, err := p.trainFederated(combined)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6b n=%d: %w", n, err)
		}
		out = append(out, Fig6bPoint{Parties: n, Metrics: evaluate(m, nz, test)})
	}
	return out, nil
}
