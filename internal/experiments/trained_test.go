package experiments

import (
	"bytes"
	"testing"
)

func TestTrainCSFLTRAndPersist(t *testing.T) {
	p := testPipeline(t)
	trained, err := TrainCSFLTR(p)
	if err != nil {
		t.Fatal(err)
	}
	if trained.TestMetrics.NDCG == 0 {
		t.Fatal("trained model learned nothing")
	}
	var buf bytes.Buffer
	if _, err := trained.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadTrainedModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same scores on arbitrary raw vectors.
	raw := make([]float64, 16)
	for i := range raw {
		raw[i] = float64(i) * 0.5
	}
	if got, want := restored.Score(raw), trained.Score(raw); got != want {
		t.Fatalf("restored model scores differently: %v vs %v", got, want)
	}
	// Evaluation against the same pipeline matches.
	m1 := EvaluateTrained(trained, p)
	m2 := EvaluateTrained(restored, p)
	if m1 != m2 {
		t.Fatalf("metrics differ after round trip: %+v vs %+v", m1, m2)
	}
	if m1 != trained.TestMetrics {
		t.Fatalf("EvaluateTrained (%+v) disagrees with training-time metrics (%+v)", m1, trained.TestMetrics)
	}
}

func TestTrainedModelGeneralizes(t *testing.T) {
	p := testPipeline(t)
	trained, err := TrainCSFLTR(p)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh corpus from a different seed: the model should still rank far
	// better than random.
	cfg := TestPipelineConfig()
	cfg.Seed = 99
	cfg.Corpus.Seed = 99
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateTrained(trained, p2)
	if m.NDCG10 < 0.4 {
		t.Fatalf("model fails to generalize across seeds: nDCG@10 = %v", m.NDCG10)
	}
}

func TestReadTrainedModelCorrupt(t *testing.T) {
	p := testPipeline(t)
	trained, err := TrainCSFLTR(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trained.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadTrainedModel(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("truncated bundle should error")
	}
	if _, err := ReadTrainedModel(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Fatal("bundle missing normalizer tail should error")
	}
}
