package experiments

import (
	"errors"
	"strings"
	"testing"
)

func TestSecAggConfigValidate(t *testing.T) {
	if err := DefaultSecAggConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TestSecAggConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*SecAggConfig){
		func(c *SecAggConfig) { c.Parties = 1 },
		func(c *SecAggConfig) { c.PerParty = 0 },
		func(c *SecAggConfig) { c.Dim = 0 },
		func(c *SecAggConfig) { c.Rounds = 0 },
		func(c *SecAggConfig) { c.DownCounts = nil },
		func(c *SecAggConfig) { c.DownCounts = []int{-1} },
		func(c *SecAggConfig) { c.DownCounts = []int{4} }, // no survivor
		func(c *SecAggConfig) { c.Params.MinParties = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultSecAggConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestRunSecAggSweep(t *testing.T) {
	cfg := TestSecAggConfig()
	res, err := RunSecAggSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.DownCounts) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(cfg.DownCounts))
	}
	if !res.Deterministic {
		t.Fatal("secure training must be deterministic at fixed seeds")
	}
	for _, p := range res.Points {
		if p.Rounds != cfg.Rounds {
			t.Fatalf("down=%d: completed %d rounds, want %d", p.Down, p.Rounds, cfg.Rounds)
		}
		if p.SecureRoundMicros <= 0 || p.PlainRoundMicros <= 0 || p.Overhead <= 0 {
			t.Fatalf("down=%d: empty timings %+v", p.Down, p)
		}
		if p.MaskedBytesPerRound <= 0 {
			t.Fatalf("down=%d: no masked bytes accounted", p.Down)
		}
		if p.Down == 0 {
			if p.Drops != 0 || p.Recoveries != 0 || p.RevealBytes != 0 {
				t.Fatalf("clean run recorded drops: %+v", p)
			}
			// Quantization drift vs plaintext FedAvg stays inside a loose
			// multiple of the theoretical per-round bound.
			if p.MaxWeightDelta <= 0 || p.MaxWeightDelta > 1e-4 {
				t.Fatalf("clean run weight drift %g out of range", p.MaxWeightDelta)
			}
		} else {
			// Dead silos are dropped in round 0 and breaker-excluded after;
			// every drop must have been recovered.
			if p.Drops == 0 || p.Recoveries != p.Drops || p.RevealBytes <= 0 {
				t.Fatalf("down=%d: recovery not exercised: %+v", p.Down, p)
			}
		}
	}
	out := RenderSecAgg(res)
	for _, want := range []string{"secagg:", "overhead", "recoveries", "max_w_delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
