package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/qcache"
	"csfltr/internal/textkit"
)

// CacheConfig configures the answer-cache benchmark: the same
// Zipf-repeated query stream is executed against two identical
// federations — one with the cache disabled, one with it enabled — and
// the per-request latency distributions, cache counters and privacy
// spend are compared. This is the reproducible benchmark behind
// `expbench -exp cache` and the checked-in BENCH_cache.json.
type CacheConfig struct {
	Parties       int         `json:"parties"`          // data-holding parties; one extra querier party is added
	DocsPerParty  int         `json:"docs_per_party"`   // documents ingested per data party
	DocLen        int         `json:"doc_len"`          // body terms per document
	Vocab         int         `json:"vocab"`            // term universe size
	Distinct      int         `json:"distinct_queries"` // distinct queries in the pool
	Requests      int         `json:"requests"`         // total requests drawn from the pool
	TermsPerQuery int         `json:"terms_per_query"`  // terms per distinct query
	ZipfS         float64     `json:"zipf_s"`           // Zipf skew over the query pool (>1)
	RTTMicros     int64       `json:"rtt_micros"`       // simulated WAN round trip per relayed owner call
	CacheBytes    int64       `json:"cache_bytes"`      // capacity of the enabled run's cache
	Seed          int64       `json:"seed"`
	Params        core.Params `json:"params"`
}

// DefaultCacheConfig is the checked-in BENCH_cache.json workload: a
// 4-party cross-silo federation (5ms simulated round trips), epsilon
// 0.5 per released answer, and a 200-request stream Zipf-repeated over
// 50 distinct 3-term queries — the regime the paper's dashboards live
// in, where the same popular queries arrive over and over.
func DefaultCacheConfig() CacheConfig {
	p := core.DefaultParams()
	p.Epsilon = 0.5
	p.K = 50
	return CacheConfig{
		Parties:       4,
		DocsPerParty:  1200,
		DocLen:        120,
		Vocab:         5000,
		Distinct:      50,
		Requests:      200,
		TermsPerQuery: 3,
		ZipfS:         1.2,
		RTTMicros:     5000,
		CacheBytes:    1 << 22,
		Seed:          1,
		Params:        p,
	}
}

// TestCacheConfig shrinks the workload to unit-test scale.
func TestCacheConfig() CacheConfig {
	cfg := DefaultCacheConfig()
	cfg.DocsPerParty = 120
	cfg.DocLen = 40
	cfg.Vocab = 800
	cfg.Distinct = 8
	cfg.Requests = 30
	cfg.RTTMicros = 500
	cfg.Params.K = 20
	return cfg
}

// Validate reports whether the configuration is usable.
func (c CacheConfig) Validate() error {
	switch {
	case c.Parties < 1:
		return fmt.Errorf("%w: Parties=%d", ErrBadConfig, c.Parties)
	case c.DocsPerParty < 1 || c.DocLen < 1 || c.Vocab < 2:
		return fmt.Errorf("%w: empty corpus", ErrBadConfig)
	case c.Distinct < 1 || c.Requests < 1 || c.TermsPerQuery < 1:
		return fmt.Errorf("%w: empty query stream", ErrBadConfig)
	case c.ZipfS <= 1:
		return fmt.Errorf("%w: ZipfS=%g (must be > 1)", ErrBadConfig, c.ZipfS)
	case c.RTTMicros < 0:
		return fmt.Errorf("%w: RTTMicros=%d", ErrBadConfig, c.RTTMicros)
	case c.CacheBytes < 1:
		return fmt.Errorf("%w: CacheBytes=%d", ErrBadConfig, c.CacheBytes)
	}
	return c.Params.Validate()
}

// CacheRun is one side of the comparison (cache off or on).
type CacheRun struct {
	MedianNs     int64        `json:"median_ns"`
	P90Ns        int64        `json:"p90_ns"`
	TotalNs      int64        `json:"total_ns"`
	EpsilonSpent float64      `json:"epsilon_spent"`
	Replays      int64        `json:"replays"`
	Stats        qcache.Stats `json:"cache_stats"`
}

// CacheResult is the benchmark outcome. ReplayIdentical is the
// correctness cross-check: within the cached run, every repeat of a
// query must return exactly the result of its first occurrence.
type CacheResult struct {
	Config          CacheConfig `json:"config"`
	Off             CacheRun    `json:"cache_off"`
	On              CacheRun    `json:"cache_on"`
	MedianSpeedup   float64     `json:"median_speedup"`
	HitRate         float64     `json:"hit_rate"`
	ReplayIdentical bool        `json:"replay_identical"`
}

// cacheFed builds one benchmark federation: querier Q plus
// cfg.Parties data parties under simulated WAN links.
func cacheFed(cfg CacheConfig, cacheBytes int64) (*federation.Federation, error) {
	p := cfg.Params
	p.CacheBytes = cacheBytes
	names := []string{"Q"}
	for i := 0; i < cfg.Parties; i++ {
		names = append(names, partyName(i))
	}
	fed, err := federation.NewDeterministic(names, p, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Parties; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		docs := make([]*textkit.Document, cfg.DocsPerParty)
		for d := range docs {
			body := make([]textkit.TermID, cfg.DocLen)
			for j := range body {
				body[j] = textkit.TermID(rng.Intn(cfg.Vocab))
			}
			docs[d] = textkit.NewDocument(d, -1, nil, body)
		}
		if err := fed.Parties[i+1].IngestAllParallel(docs, 0); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Parties; i++ {
		fed.Server.SetPartyLink(partyName(i), time.Duration(cfg.RTTMicros)*time.Microsecond)
	}
	return fed, nil
}

// cacheStream draws the request stream: a pool of Distinct queries and
// a Zipf-skewed index sequence over it, both fixed by the seed so the
// off and on runs see byte-identical work.
func cacheStream(cfg CacheConfig) (pool [][]uint64, stream []int) {
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	pool = make([][]uint64, cfg.Distinct)
	for i := range pool {
		q := make([]uint64, cfg.TermsPerQuery)
		for j := range q {
			q[j] = uint64(rng.Intn(cfg.Vocab))
		}
		pool[i] = q
	}
	z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Distinct-1))
	stream = make([]int, cfg.Requests)
	for i := range stream {
		stream[i] = int(z.Uint64())
	}
	return pool, stream
}

// runCacheStream executes the stream sequentially and returns the
// per-request latencies plus, when check is true, whether every repeat
// replayed its query's first result exactly.
func runCacheStream(fed *federation.Federation, pool [][]uint64, stream []int, k int, check bool) ([]int64, bool, error) {
	lat := make([]int64, len(stream))
	first := make(map[int]*federation.SearchResult)
	identical := true
	for i, qi := range stream {
		start := time.Now()
		res, err := fed.Search("Q", pool[qi], k)
		if err != nil {
			return nil, false, fmt.Errorf("request %d (query %d): %w", i, qi, err)
		}
		lat[i] = time.Since(start).Nanoseconds()
		if !check {
			continue
		}
		if prev, ok := first[qi]; ok {
			if !reflect.DeepEqual(prev, res) {
				identical = false
			}
		} else {
			first[qi] = res
		}
	}
	return lat, identical, nil
}

// spentEpsilon totals the querier's spend across every data party.
func spentEpsilon(fed *federation.Federation, cfg CacheConfig) (spent float64, replays int64) {
	q, err := fed.Party("Q")
	if err != nil {
		return 0, 0
	}
	for i := 0; i < cfg.Parties; i++ {
		spent += q.Accountant().Spent(partyName(i))
		replays += q.Accountant().Replays(partyName(i))
	}
	return spent, replays
}

// percentileNs returns the p-quantile (0..1) of the latency sample.
func percentileNs(lat []int64, p float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func sumNs(lat []int64) int64 {
	var t int64
	for _, v := range lat {
		t += v
	}
	return t
}

// RunCacheSweep executes the Zipf-repeat stream against a cache-off and
// a cache-on federation and reports the latency, hit-rate and privacy
// spend comparison.
func RunCacheSweep(cfg CacheConfig) (*CacheResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, stream := cacheStream(cfg)
	res := &CacheResult{Config: cfg}

	off, err := cacheFed(cfg, 0)
	if err != nil {
		return nil, err
	}
	offLat, _, err := runCacheStream(off, pool, stream, cfg.Params.K, false)
	if err != nil {
		return nil, fmt.Errorf("cache off: %w", err)
	}
	res.Off = CacheRun{
		MedianNs: percentileNs(offLat, 0.5),
		P90Ns:    percentileNs(offLat, 0.9),
		TotalNs:  sumNs(offLat),
	}
	res.Off.EpsilonSpent, res.Off.Replays = spentEpsilon(off, cfg)

	on, err := cacheFed(cfg, cfg.CacheBytes)
	if err != nil {
		return nil, err
	}
	onLat, identical, err := runCacheStream(on, pool, stream, cfg.Params.K, true)
	if err != nil {
		return nil, fmt.Errorf("cache on: %w", err)
	}
	res.On = CacheRun{
		MedianNs: percentileNs(onLat, 0.5),
		P90Ns:    percentileNs(onLat, 0.9),
		TotalNs:  sumNs(onLat),
		Stats:    on.CacheStats(),
	}
	res.On.EpsilonSpent, res.On.Replays = spentEpsilon(on, cfg)
	res.ReplayIdentical = identical

	if res.On.MedianNs > 0 {
		res.MedianSpeedup = float64(res.Off.MedianNs) / float64(res.On.MedianNs)
	}
	if total := res.On.Stats.Hits + res.On.Stats.Misses; total > 0 {
		res.HitRate = float64(res.On.Stats.Hits) / float64(total)
	}
	return res, nil
}

// RenderCache renders the comparison as the table expbench prints.
func RenderCache(res *CacheResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache: %d parties x %d docs, %d requests over %d distinct %d-term queries (zipf s=%g, epsilon=%g, link RTT %s)\n",
		res.Config.Parties, res.Config.DocsPerParty, res.Config.Requests,
		res.Config.Distinct, res.Config.TermsPerQuery, res.Config.ZipfS,
		res.Config.Params.Epsilon, time.Duration(res.Config.RTTMicros)*time.Microsecond)
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s %9s\n",
		"", "median", "p90", "total", "eps spent", "replays")
	row := func(name string, r CacheRun) {
		fmt.Fprintf(&b, "%-10s %14s %14s %14s %14.1f %9d\n", name,
			time.Duration(r.MedianNs), time.Duration(r.P90Ns),
			time.Duration(r.TotalNs), r.EpsilonSpent, r.Replays)
	}
	row("cache off", res.Off)
	row("cache on", res.On)
	fmt.Fprintf(&b, "median speedup: %.1fx, hit rate: %.1f%%, replay-identical: %v\n",
		res.MedianSpeedup, 100*res.HitRate, res.ReplayIdentical)
	fmt.Fprintf(&b, "cache: %d entries, %d bytes, %d stores, %d evictions, %d coalesced\n",
		res.On.Stats.Entries, res.On.Stats.Bytes, res.On.Stats.Stores,
		res.On.Stats.Evictions, res.On.Stats.Coalesced)
	return b.String()
}
