package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline(TestPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineConfigValidate(t *testing.T) {
	if err := DefaultPipelineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TestPipelineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PipelineConfig){
		func(c *PipelineConfig) { c.Rounds = 0 },
		func(c *PipelineConfig) { c.TrainFrac = 0 },
		func(c *PipelineConfig) { c.TrainFrac = 1 },
		func(c *PipelineConfig) { c.AugPerQuery = -1 },
		func(c *PipelineConfig) { c.NegPerQuery = -1 },
		func(c *PipelineConfig) { c.Corpus.NumParties = 0 },
		func(c *PipelineConfig) { c.Params.Z = 0 },
	}
	for i, mut := range bad {
		c := TestPipelineConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestNewPipelineShape(t *testing.T) {
	p := testPipeline(t)
	n := p.Cfg.Corpus.NumParties
	if len(p.Fed.Parties) != n || len(p.trainQ) != n || len(p.testQ) != n {
		t.Fatal("pipeline party structures inconsistent")
	}
	for i := 0; i < n; i++ {
		if len(p.trainQ[i]) == 0 || len(p.testQ[i]) == 0 {
			t.Fatalf("party %d: empty train (%d) or test (%d) split",
				i, len(p.trainQ[i]), len(p.testQ[i]))
		}
		if p.Fed.Parties[i].NumDocs() != p.Cfg.Corpus.DocsPerParty {
			t.Fatalf("party %d ingested %d docs", i, p.Fed.Parties[i].NumDocs())
		}
	}
}

func TestLocalData(t *testing.T) {
	p := testPipeline(t)
	data := p.LocalData(0)
	if len(data) == 0 {
		t.Fatal("no local training data")
	}
	hasPos, hasNeg := false, false
	for _, inst := range data {
		if len(inst.Features) != 16 {
			t.Fatalf("feature dim %d", len(inst.Features))
		}
		if inst.Label > 0 {
			hasPos = true
		} else {
			hasNeg = true
		}
		if !strings.HasPrefix(inst.QueryKey, "p0.q") {
			t.Fatalf("bad query key %q", inst.QueryKey)
		}
	}
	if !hasPos || !hasNeg {
		t.Fatalf("local data lacks positives (%v) or negatives (%v)", hasPos, hasNeg)
	}
}

func TestAugment(t *testing.T) {
	p := testPipeline(t)
	res, err := p.Augment(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) == 0 {
		t.Fatal("augmentation produced no instances")
	}
	if res.Cost.Messages == 0 || res.Cost.BytesReceived == 0 {
		t.Fatalf("augmentation cost not recorded: %+v", res.Cost)
	}
	for _, inst := range res.Instances {
		if inst.Label != 1 && inst.Label != 2 {
			t.Fatalf("augmented label %v, want 1 or 2", inst.Label)
		}
		if len(inst.Features) != 16 {
			t.Fatalf("feature dim %d", len(inst.Features))
		}
	}
	// Per-query cap respected.
	perQuery := map[string]int{}
	for _, inst := range res.Instances {
		perQuery[inst.QueryKey]++
	}
	for k, n := range perQuery {
		if n > p.Cfg.AugPerQuery {
			t.Fatalf("query %s has %d augmented instances, cap %d", k, n, p.Cfg.AugPerQuery)
		}
	}
}

func TestTestData(t *testing.T) {
	p := testPipeline(t)
	test := p.TestData()
	if len(test) == 0 {
		t.Fatal("no test data")
	}
	labels := map[float64]bool{}
	for _, inst := range test {
		labels[inst.Label] = true
	}
	if !labels[0] || (!labels[1] && !labels[2]) {
		t.Fatalf("test labels lack classes: %v", labels)
	}
}

func TestRunTable1(t *testing.T) {
	p := testPipeline(t)
	res, err := RunTable1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Local.PerParty) != 4 || len(res.LocalPlus.PerParty) != 4 {
		t.Fatal("per-party metrics missing")
	}
	check := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v outside [0,1]", name, v)
		}
	}
	for i, m := range res.Local.PerParty {
		check("local ERR", m.ERR)
		check("local nDCG", m.NDCG)
		if m.NDCG == 0 {
			t.Fatalf("party %d local nDCG is zero — model learned nothing", i)
		}
	}
	check("global nDCG", res.Global.NDCG)
	check("csfltr nDCG", res.CSFLTR.NDCG)
	if res.CSFLTR.NDCG == 0 || res.Global.NDCG == 0 {
		t.Fatal("federated models learned nothing")
	}
	// Trained models should beat random ranking decisively on nDCG@10.
	if res.CSFLTR.NDCG10 < 0.3 {
		t.Fatalf("CS-F-LTR nDCG@10 = %v — suspiciously bad", res.CSFLTR.NDCG10)
	}
	if res.ServerTraffic.Messages == 0 {
		t.Fatal("no server traffic recorded")
	}
	out := RenderTable1(res)
	for _, needle := range []string{"Local", "Local+", "Global", "CS-F-LTR", "Party A", "Average"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("rendered table missing %q:\n%s", needle, out)
		}
	}
}

func TestRunAggregatorAblation(t *testing.T) {
	p := testPipeline(t)
	ab, err := RunAggregatorAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if ab.RoundRobin.NDCG == 0 || ab.FedAvg.NDCG == 0 {
		t.Fatalf("an aggregator learned nothing: %+v", ab)
	}
	if out := RenderAggregatorAblation(ab); !strings.Contains(out, "fedavg") {
		t.Fatal("render missing fedavg row")
	}
}

func TestRunEstimatorAblation(t *testing.T) {
	cfg := TestFig4Config()
	ab, err := RunEstimatorAblation(cfg, "alpha", []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.ZeroFill) != 2 || len(ab.Present) != 2 {
		t.Fatalf("ablation shapes wrong: %+v", ab)
	}
	// Zero-fill should never be materially worse than present-rows.
	for i := range ab.ZeroFill {
		if ab.ZeroFill[i].CoverRate+0.1 < ab.Present[i].CoverRate {
			t.Fatalf("zero-fill (%v) much worse than present-rows (%v)",
				ab.ZeroFill[i].CoverRate, ab.Present[i].CoverRate)
		}
	}
	if out := RenderEstimatorAblation(ab); !strings.Contains(out, "zero-fill") {
		t.Fatal("render missing header")
	}
}

func TestRunFig4Sweep(t *testing.T) {
	cfg := TestFig4Config()
	points, err := RunFig4Sweep(cfg, "alpha", []float64{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Cover rate should not decrease with alpha (larger heaps).
	if points[2].CoverRate+0.05 < points[0].CoverRate {
		t.Fatalf("cover rate fell with alpha: %v", points)
	}
	// Space grows with alpha.
	if points[2].RTKSpaceBytes <= points[0].RTKSpaceBytes {
		t.Fatalf("RTK space did not grow with alpha: %v vs %v",
			points[0].RTKSpaceBytes, points[2].RTKSpaceBytes)
	}
	for _, p := range points {
		if p.CoverRate < 0 || p.CoverRate > 1 {
			t.Fatalf("cover rate %v", p.CoverRate)
		}
		if p.RTKQueryMicros <= 0 {
			t.Fatalf("no RTK timing: %+v", p)
		}
	}
	// Rendering and CSV.
	if out := RenderFig4(points); !strings.Contains(out, "cover-rate") {
		t.Fatal("render missing header")
	}
	var buf bytes.Buffer
	if err := WriteFig4CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("CSV has %d lines", lines)
	}
}

func TestRunFig4SweepBadParam(t *testing.T) {
	cfg := TestFig4Config()
	if _, err := RunFig4Sweep(cfg, "bogus", []float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("unknown parameter should error")
	}
	if _, err := RunFig4Sweep(cfg, "alpha", nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty values should error")
	}
	cfg.Docs = 0
	if _, err := RunFig4Sweep(cfg, "alpha", []float64{1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad config should error")
	}
}

func TestPaperFig4Sweeps(t *testing.T) {
	sweeps := PaperFig4Sweeps()
	for _, key := range []string{"alpha", "beta", "k", "w", "z"} {
		if len(sweeps[key]) == 0 {
			t.Fatalf("missing sweep %q", key)
		}
	}
}

func TestRunHeadline(t *testing.T) {
	cfg := TestFig4Config()
	res, err := RunHeadline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock speedup is load-sensitive on shared CI machines; only
	// log it. The deployed projection (dominated by the deterministic
	// per-document round-trip count) must always favour RTK.
	t.Logf("measured speedup %.1fx, deployed %.1fx", res.Speedup, res.DeployedSpeedup)
	if res.DeployedSpeedup <= 1 {
		t.Fatalf("RTK should beat NAIVE at any RTT: deployed speedup %v", res.DeployedSpeedup)
	}
	if res.SpaceReduction <= 1 {
		t.Fatalf("RTK should be smaller than NAIVE: reduction %v", res.SpaceReduction)
	}
	if res.CoverRate < 0.5 {
		t.Fatalf("headline cover rate %v", res.CoverRate)
	}
	if out := RenderHeadline(res); !strings.Contains(out, "speedup") {
		t.Fatal("headline render missing speedup")
	}
}

func TestRunTrafficComparison(t *testing.T) {
	cfg := TestFig4Config()
	cfg.Docs = 200
	res, err := RunTrafficComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RTKTraffic.Bytes >= res.NaiveTraffic.Bytes {
		t.Fatalf("RTK traffic (%d) should undercut NAIVE (%d)",
			res.RTKTraffic.Bytes, res.NaiveTraffic.Bytes)
	}
	if res.RTKTraffic.Messages >= res.NaiveTraffic.Messages {
		t.Fatalf("RTK messages (%d) should undercut NAIVE (%d)",
			res.RTKTraffic.Messages, res.NaiveTraffic.Messages)
	}
}

func TestRunSSEComparison(t *testing.T) {
	cfg := TestFig4Config()
	res, err := RunSSEComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSECover < 0.999 {
		t.Fatalf("SSE is exact; cover %v", res.SSECover)
	}
	if res.SketchCover < 0.7 {
		t.Fatalf("sketch cover %v", res.SketchCover)
	}
	if res.SSEIndexBytes <= 0 || res.SketchBytes <= 0 {
		t.Fatal("sizes not measured")
	}
	if res.SSEQueryMicros <= 0 || res.SketchQueryMicros <= 0 {
		t.Fatal("query times not measured")
	}
	if out := RenderSSEComparison(res); !strings.Contains(out, "flexibility") {
		t.Fatal("render incomplete")
	}
	cfg.Docs = 0
	if _, err := RunSSEComparison(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad config should error")
	}
}

func TestRunFig5(t *testing.T) {
	cfg := TestFig5Config()
	strategies := []Fig5Strategy{
		PaperFig5Strategies()[0], // exact
		PaperFig5Strategies()[1], // count w=200
		PaperFig5Strategies()[7], // count z1=1
	}
	panels, err := RunFig5(cfg, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("got %d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Points) != len(p.Labels) || len(p.Points) == 0 {
			t.Fatalf("panel %q has inconsistent points/labels", p.Strategy.Name)
		}
	}
	// The exact panel should separate at least as well as the heavily
	// obfuscated z1=1 panel on the probe accuracy.
	if panels[0].Probes.ProbeAccuracy+0.03 < panels[2].Probes.ProbeAccuracy {
		t.Fatalf("exact (%v) should not separate worse than z1=1 (%v)",
			panels[0].Probes.ProbeAccuracy, panels[2].Probes.ProbeAccuracy)
	}
	if out := RenderFig5(panels); !strings.Contains(out, "probe-acc") {
		t.Fatal("fig5 render missing header")
	}
	var buf bytes.Buffer
	if err := WriteFig5PointsCSV(&buf, panels[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,y,label\n") {
		t.Fatal("fig5 CSV missing header")
	}
	if sc := Scatter(panels[0].Points, panels[0].Labels, 40, 12); len(sc) == 0 {
		t.Fatal("scatter rendering empty")
	}
}

func TestWriteFig5SVG(t *testing.T) {
	panel := Fig5Panel{
		Strategy: Fig5Strategy{Name: "count<w&50>"},
		Points:   [][]float64{{0, 0}, {1, 1}, {2, 0.5}},
		Labels:   []int{1, 0, 1},
	}
	var buf bytes.Buffer
	if err := WriteFig5SVG(&buf, panel, 200, 200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatalf("expected 3 points, got %d", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, "count&lt;w&amp;50&gt;") {
		t.Fatal("strategy name not XML-escaped")
	}
	// Degenerate cases.
	if err := WriteFig5SVG(&buf, Fig5Panel{Strategy: Fig5Strategy{Name: "x"}}, 200, 200); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty panel should error")
	}
	// Identical coordinates must not divide by zero.
	flat := Fig5Panel{Strategy: Fig5Strategy{Name: "flat"},
		Points: [][]float64{{1, 1}, {1, 1}}, Labels: []int{0, 1}}
	buf.Reset()
	if err := WriteFig5SVG(&buf, flat, 50, 50); err != nil { // also exercises min-size clamp
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("degenerate panel produced NaN coordinates")
	}
}

func TestRunFig5Validation(t *testing.T) {
	cfg := TestFig5Config()
	if _, err := RunFig5(cfg, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("no strategies should error")
	}
	bad := []Fig5Strategy{{Name: "broken", Kind: 0, W: 1, Z: 0, Z1: 0}}
	if _, err := RunFig5(cfg, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad strategy should error")
	}
	cfg.Samples = 1
	if _, err := RunFig5(cfg, PaperFig5Strategies()[:1]); !errors.Is(err, ErrBadConfig) {
		t.Fatal("too few samples should error")
	}
}

func TestRunFig6a(t *testing.T) {
	cfg := TestPipelineConfig()
	points, err := RunFig6a(cfg, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Metrics.NDCG == 0 {
			t.Fatalf("eps=%v: model learned nothing", p.Epsilon)
		}
	}
	if out := RenderFig6a(points); !strings.Contains(out, "off") {
		t.Fatalf("fig6a render should label eps=0 as off:\n%s", out)
	}
}

func TestRunFig6b(t *testing.T) {
	cfg := TestPipelineConfig()
	points, err := RunFig6b(cfg, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Parties != 1 || points[1].Parties != 3 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.Metrics.NDCG == 0 {
			t.Fatalf("n=%d: model learned nothing", p.Parties)
		}
	}
	if out := RenderFig6b(points); !strings.Contains(out, "parties") {
		t.Fatal("fig6b render missing header")
	}
}

func TestScatterEdgeCases(t *testing.T) {
	if Scatter(nil, nil, 10, 10) != "" {
		t.Fatal("empty scatter should be empty")
	}
	pts := [][]float64{{0, 0}, {0, 0}}
	out := Scatter(pts, []int{0, 1}, 8, 4)
	if !strings.Contains(out, "8") {
		t.Fatalf("overlapping classes should render as 8:\n%q", out)
	}
}

func TestPartyName(t *testing.T) {
	if partyName(0) != "A" || partyName(3) != "D" {
		t.Fatal("party naming wrong")
	}
	if partyName(30) != "P30" {
		t.Fatalf("partyName(30) = %s", partyName(30))
	}
}
