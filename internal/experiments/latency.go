package experiments

import (
	"fmt"
	"math"
	"strings"

	"csfltr/internal/federation"
	"csfltr/internal/telemetry"
)

// StageLatency summarizes the latency distribution of one protocol
// stage, read from the federation's stage-duration histogram.
type StageLatency struct {
	Stage   string  `json:"stage"`
	Calls   int64   `json:"calls"`
	TotalMS float64 `json:"total_ms"`
	MeanUS  float64 `json:"mean_us"`
	P50US   float64 `json:"p50_us"` // bucket upper-bound estimates
	P99US   float64 `json:"p99_us"`
	P999US  float64 `json:"p999_us"`
}

// LatencyResult is the output of RunLatencyProbe: where the cross-party
// query path spends its time, stage by stage.
type LatencyResult struct {
	Stages   []StageLatency          `json:"stages"`
	Searches int                     `json:"searches"`
	Traffic  federation.TrafficStats `json:"traffic"`
}

// StageBreakdown reads the per-stage latency histograms
// (csfltr_search_stage_duration_seconds) out of a registry and returns
// one row per protocol stage in pipeline order. Stages that never ran
// appear with zero calls so the table shape is stable.
func StageBreakdown(reg *telemetry.Registry) []StageLatency {
	snap := reg.Snapshot()
	byStage := make(map[string]telemetry.SeriesSnapshot)
	if m := snap.Metric(federation.MetricSearchStageDuration); m != nil {
		for _, s := range m.Series {
			byStage[s.Labels["stage"]] = s
		}
	}
	out := make([]StageLatency, 0, len(federation.SearchStages))
	for _, stage := range federation.SearchStages {
		row := StageLatency{Stage: stage}
		if s, ok := byStage[stage]; ok && s.Count > 0 {
			row.Calls = s.Count
			row.TotalMS = s.Sum * 1e3
			row.MeanUS = s.Sum / float64(s.Count) * 1e6
			row.P50US = s.Quantile(0.5) * 1e6
			row.P99US = s.Quantile(0.99) * 1e6
			row.P999US = s.Quantile(0.999) * 1e6
		}
		out = append(out, row)
	}
	return out
}

// RunLatencyProbe exercises the cross-party query path on a bounded
// sample of party 0's training queries — one federated search per query,
// plus TF queries against the best hit — and returns the per-stage
// latency breakdown from the federation's telemetry registry. With
// Params.Epsilon > 0 the dp_noise stage is exercised too.
func RunLatencyProbe(p *Pipeline) (*LatencyResult, error) {
	const maxQueries = 5
	from := partyName(0)
	queries := p.trainQ[0]
	if len(queries) > maxQueries {
		queries = queries[:maxQueries]
	}
	res := &LatencyResult{}
	for _, q := range queries {
		qterms := q.UniqueTerms()
		terms := make([]uint64, len(qterms))
		for i, t := range qterms {
			terms[i] = uint64(t)
		}
		hits, _, err := p.Fed.FederatedSearch(from, terms, p.Cfg.Params.K)
		if err != nil {
			return nil, fmt.Errorf("experiments: latency probe query %d: %w", q.ID, err)
		}
		res.Searches++
		if len(hits) == 0 {
			continue
		}
		for _, t := range qterms {
			if _, err := p.Fed.CrossTF(from, hits[0].Party, federation.FieldBody,
				hits[0].DocID, uint64(t)); err != nil {
				return nil, fmt.Errorf("experiments: latency probe TF query %d: %w", q.ID, err)
			}
		}
	}
	res.Stages = StageBreakdown(p.Fed.Server.Metrics())
	res.Traffic = p.Fed.Server.Traffic()
	return res, nil
}

// RenderStageBreakdown renders the per-stage table expbench prints.
func RenderStageBreakdown(stages []StageLatency) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %12s %12s %12s\n",
		"stage", "calls", "total(ms)", "mean(us)", "p50(us)", "p99(us)", "p999(us)")
	for _, s := range stages {
		if s.Calls == 0 {
			fmt.Fprintf(&b, "%-10s %8d %12s %12s %12s %12s %12s\n", s.Stage, 0, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-10s %8d %12.3f %12.1f %12s %12s %12s\n",
			s.Stage, s.Calls, s.TotalMS, s.MeanUS, renderUS(s.P50US), renderUS(s.P99US), renderUS(s.P999US))
	}
	return b.String()
}

// renderUS formats a microsecond quantile estimate, where +Inf means the
// observation fell past the last finite bucket bound.
func renderUS(v float64) string {
	if math.IsInf(v, 1) {
		return ">10s"
	}
	return fmt.Sprintf("%.1f", v)
}
