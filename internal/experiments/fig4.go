package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/federation"
	"csfltr/internal/textkit"
	"csfltr/internal/zipf"
)

// Fig4Config configures the RTK-Sketch performance evaluation (Fig. 4):
// a single document owner, a single querier and a set of probe terms with
// skewed cross-document counts.
type Fig4Config struct {
	// Docs is the number of documents at the owner (n in Section V).
	Docs int
	// DocLen is the number of terms per document.
	DocLen int
	// Vocab is the background vocabulary size.
	Vocab int
	// ProbeTerms is how many query terms the sweep averages over.
	ProbeTerms int
	// NaiveTerms caps how many probe terms also run the NAIVE baseline
	// (it is orders of magnitude slower); 0 disables NAIVE timing.
	NaiveTerms int
	// Base is the parameter setting that each sweep perturbs; the paper's
	// default is alpha=5, beta=0.1, w=200, z=30, K=150.
	Base core.Params
	// RTTMillis is the assumed network round-trip time used to project
	// deployed query latency in the headline comparison: NAIVE pays one
	// round trip per document, RTK pays one in total. The paper's
	// ">100 s vs <10 ms" gap is dominated by exactly this term.
	RTTMillis float64
	Seed      int64
}

// DefaultFig4Config returns a laptop-scale configuration preserving the
// skew structure of the paper's setup.
func DefaultFig4Config() Fig4Config {
	base := core.DefaultParams()
	base.Epsilon = 0 // Fig. 4 studies the sketch, not DP
	// Section V-C: "we will abuse z1 by z for simplification" — the
	// paper's RTK analysis and Fig. 4 run without query obfuscation, so
	// the soft intersection filters on beta*z rows.
	base.Z1 = base.Z
	return Fig4Config{
		Docs:       4000,
		DocLen:     300,
		Vocab:      20000,
		ProbeTerms: 10,
		NaiveTerms: 3,
		Base:       base,
		RTTMillis:  1,
		Seed:       1,
	}
}

// TestFig4Config returns a tiny configuration for unit tests.
func TestFig4Config() Fig4Config {
	cfg := DefaultFig4Config()
	cfg.Docs = 300
	cfg.DocLen = 80
	cfg.Vocab = 3000
	cfg.ProbeTerms = 4
	cfg.NaiveTerms = 2
	cfg.Base.K = 20
	cfg.Base.W = 128
	cfg.Base.Z = 12
	cfg.Base.Z1 = 12 // z1 = z, as in the paper's RTK analysis
	return cfg
}

// Validate reports whether the configuration is usable.
func (c Fig4Config) Validate() error {
	switch {
	case c.Docs <= 0 || c.DocLen <= 0 || c.Vocab < 100:
		return fmt.Errorf("%w: docs=%d len=%d vocab=%d", ErrBadConfig, c.Docs, c.DocLen, c.Vocab)
	case c.ProbeTerms <= 0:
		return fmt.Errorf("%w: ProbeTerms=%d", ErrBadConfig, c.ProbeTerms)
	case c.NaiveTerms < 0 || c.NaiveTerms > c.ProbeTerms:
		return fmt.Errorf("%w: NaiveTerms=%d", ErrBadConfig, c.NaiveTerms)
	}
	return c.Base.Validate()
}

// Fig4Point is one measurement of one sweep: the swept value, the
// cover rate against the exact reverse top-K, per-query wall times and
// owner-side space.
type Fig4Point struct {
	Param string  // swept parameter name
	Value float64 // swept value

	CoverRate float64
	// RTKQueryMicros and NaiveQueryMicros are mean per-term query times.
	RTKQueryMicros   float64
	NaiveQueryMicros float64
	// Space in bytes at the owner.
	RTKSpaceBytes   int64
	NaiveSpaceBytes int64
	// Traffic per query in bytes (owner -> querier).
	RTKRespBytes   int64
	NaiveRespBytes int64
}

// fig4Workload is the generated document collection plus probe terms.
type fig4Workload struct {
	counts map[int]map[uint64]int64 // docID -> term -> count
	probes []uint64
}

// buildFig4Workload synthesizes Zipfian documents with a set of "salient"
// probe terms whose counts decay across documents following the paper's
// Theorem 4 model (c_i proportional to L / i^q): the most relevant
// document repeats the term on the order of L/q times and counts decay
// polynomially, so reverse top-K is well-defined and the top-K counts
// stay well above the sketch collision noise — matching the MS MARCO
// structure the paper measures cover rates on.
func buildFig4Workload(cfg Fig4Config) *fig4Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	background := zipf.MustNew(cfg.Vocab, 1.05)
	w := &fig4Workload{counts: make(map[int]map[uint64]int64, cfg.Docs)}
	for t := 0; t < cfg.ProbeTerms; t++ {
		w.probes = append(w.probes, uint64(cfg.Vocab+1000+t))
	}
	// Each probe occurs in a quarter of the documents — well beyond the
	// heap capacity alpha*K at small alpha, so cell eviction is a real
	// effect, as it is at the paper's n=36,400.
	matching := cfg.Docs / 4
	if matching < 1 {
		matching = 1
	}
	// Peak count c1 and the slow polynomial decay put the K-th count a
	// few standard deviations above the sketch collision noise — strong
	// enough for reverse top-K to be meaningful, weak enough that rows
	// disagree near the boundary (which is what the beta filter trades
	// against; see Theorem 4's p_i < 1).
	c1 := float64(cfg.DocLen) / 4
	for id := 0; id < cfg.Docs; id++ {
		tc := make(map[uint64]int64)
		for i := 0; i < cfg.DocLen; i++ {
			tc[uint64(background.Sample(rng))]++
		}
		for ti, term := range w.probes {
			// Rotate which documents match each probe so the probes rank
			// distinct document subsets.
			r := (id + ti*(cfg.Docs/len(w.probes)+1)) % cfg.Docs
			if r < matching {
				c := int64(math.Round(c1 / math.Pow(float64(r+1), 0.5)))
				if c > 0 {
					tc[term] = c
				}
			}
		}
		w.counts[id] = tc
	}
	return w
}

// runFig4Point measures one parameter setting against a prepared
// workload.
func runFig4Point(cfg Fig4Config, params core.Params, w *fig4Workload, param string, value float64) (Fig4Point, error) {
	pt := Fig4Point{Param: param, Value: value}
	querier, err := core.NewQuerier(params, uint64(cfg.Seed)+7, rand.New(rand.NewSource(cfg.Seed+13)))
	if err != nil {
		return pt, err
	}
	owner, err := core.NewOwner(params, uint64(cfg.Seed)+7, dp.Disabled())
	if err != nil {
		return pt, err
	}
	for id := 0; id < cfg.Docs; id++ {
		if err := owner.AddDocument(id, w.counts[id]); err != nil {
			return pt, err
		}
	}
	pt.RTKSpaceBytes = owner.RTKSizeBytes()
	pt.NaiveSpaceBytes = owner.NaiveSizeBytes()

	var coverSum float64
	var rtkTime time.Duration
	var rtkBytes int64
	for _, term := range w.probes {
		truth := core.ExactReverseTopK(w.counts, term, params.K)
		start := time.Now()
		got, cost, err := core.RTKReverseTopK(querier, owner, term, params.K)
		rtkTime += time.Since(start)
		if err != nil {
			return pt, err
		}
		rtkBytes += cost.BytesReceived
		coverSum += core.CoverRate(got, truth)
	}
	n := float64(len(w.probes))
	pt.CoverRate = coverSum / n
	pt.RTKQueryMicros = float64(rtkTime.Microseconds()) / n
	pt.RTKRespBytes = rtkBytes / int64(len(w.probes))

	if cfg.NaiveTerms > 0 {
		var naiveTime time.Duration
		var naiveBytes int64
		for _, term := range w.probes[:cfg.NaiveTerms] {
			start := time.Now()
			_, cost, err := core.NaiveReverseTopK(querier, owner, term, params.K)
			naiveTime += time.Since(start)
			if err != nil {
				return pt, err
			}
			naiveBytes += cost.BytesReceived
		}
		pt.NaiveQueryMicros = float64(naiveTime.Microseconds()) / float64(cfg.NaiveTerms)
		pt.NaiveRespBytes = naiveBytes / int64(cfg.NaiveTerms)
	}
	return pt, nil
}

// RunFig4Sweep sweeps one protocol parameter ("alpha", "beta", "k", "w"
// or "z") over the given values, reproducing one column of Fig. 4.
func RunFig4Sweep(cfg Fig4Config, param string, values []float64) ([]Fig4Point, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: no sweep values", ErrBadConfig)
	}
	w := buildFig4Workload(cfg)
	out := make([]Fig4Point, 0, len(values))
	for _, v := range values {
		params := cfg.Base
		switch param {
		case "alpha":
			params.Alpha = int(v)
		case "beta":
			params.Beta = v
		case "k":
			params.K = int(v)
		case "w":
			params.W = int(v)
		case "z":
			params.Z = int(v)
			if cfg.Base.Z1 == cfg.Base.Z {
				params.Z1 = params.Z // preserve the z1 = z convention
			} else if params.Z1 > params.Z {
				params.Z1 = params.Z
			}
		default:
			return nil, fmt.Errorf("%w: unknown sweep parameter %q", ErrBadConfig, param)
		}
		pt, err := runFig4Point(cfg, params, w, param, v)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 %s=%v: %w", param, v, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// PaperFig4Sweeps returns the five sweeps of Fig. 4 with value grids
// bracketing the paper's defaults.
func PaperFig4Sweeps() map[string][]float64 {
	return map[string][]float64{
		"alpha": {1, 2, 3, 5, 7, 10},
		"beta":  {0.05, 0.1, 0.2, 0.3, 0.5},
		"k":     {50, 100, 150, 200, 300},
		"w":     {50, 100, 200, 400, 800},
		"z":     {10, 20, 30, 50, 70},
	}
}

// EstimatorAblation holds the cover rates of both RTK candidate
// estimators over one parameter sweep — the design-choice ablation
// DESIGN.md calls out (zero-fill vs the paper-literal present-rows
// median).
type EstimatorAblation struct {
	Param    string
	ZeroFill []Fig4Point
	Present  []Fig4Point
}

// RunEstimatorAblation sweeps one parameter under both estimator modes.
func RunEstimatorAblation(cfg Fig4Config, param string, values []float64) (*EstimatorAblation, error) {
	out := &EstimatorAblation{Param: param}
	zf := cfg
	zf.Base.Estimator = core.EstimatorZeroFill
	points, err := RunFig4Sweep(zf, param, values)
	if err != nil {
		return nil, err
	}
	out.ZeroFill = points
	pr := cfg
	pr.Base.Estimator = core.EstimatorPresentRows
	points, err = RunFig4Sweep(pr, param, values)
	if err != nil {
		return nil, err
	}
	out.Present = points
	return out, nil
}

// HeadlineResult is the Section VI-D headline comparison: one reverse
// top-K term query, NAIVE vs RTK, at a given document count.
type HeadlineResult struct {
	Docs           int
	NaiveMillis    float64
	RTKMillis      float64
	Speedup        float64
	NaiveBytes     int64 // per-query response traffic
	RTKBytes       int64
	NaiveSpace     int64 // owner-side memory
	RTKSpace       int64
	SpaceReduction float64
	CoverRate      float64 // RTK vs exact

	// Deployed-latency projection at the configured RTT: NAIVE performs
	// one server-relayed round trip per document, RTK one in total.
	RTTMillis        float64
	NaiveDeployedSec float64
	RTKDeployedMs    float64
	DeployedSpeedup  float64
}

// RunHeadline measures the NAIVE -> RTK improvement the paper summarizes
// as "from over 100s to less than 10ms" and "space ... roughly to 1/5".
func RunHeadline(cfg Fig4Config) (*HeadlineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := buildFig4Workload(cfg)
	pt, err := runFig4Point(cfg, cfg.Base, w, "headline", 0)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{
		Docs:        cfg.Docs,
		NaiveMillis: pt.NaiveQueryMicros / 1000,
		RTKMillis:   pt.RTKQueryMicros / 1000,
		NaiveBytes:  pt.NaiveRespBytes,
		RTKBytes:    pt.RTKRespBytes,
		NaiveSpace:  pt.NaiveSpaceBytes,
		RTKSpace:    pt.RTKSpaceBytes,
		CoverRate:   pt.CoverRate,
	}
	if res.RTKMillis > 0 {
		res.Speedup = res.NaiveMillis / res.RTKMillis
	}
	if res.RTKSpace > 0 {
		res.SpaceReduction = float64(res.NaiveSpace) / float64(res.RTKSpace)
	}
	res.RTTMillis = cfg.RTTMillis
	res.NaiveDeployedSec = (res.NaiveMillis + float64(cfg.Docs)*cfg.RTTMillis) / 1000
	res.RTKDeployedMs = res.RTKMillis + cfg.RTTMillis
	if res.RTKDeployedMs > 0 {
		res.DeployedSpeedup = res.NaiveDeployedSec * 1000 / res.RTKDeployedMs
	}
	return res, nil
}

// TrafficComparison measures relayed server traffic for one reverse
// top-K under both algorithms through a two-party federation — the
// communication-cost claim of Section V in end-to-end form.
type TrafficComparison struct {
	NaiveTraffic federation.TrafficStats
	RTKTraffic   federation.TrafficStats
}

// RunTrafficComparison ingests the Fig. 4 workload into a two-party
// federation and measures relayed bytes for one probe term.
func RunTrafficComparison(cfg Fig4Config) (*TrafficComparison, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := buildFig4Workload(cfg)
	fed, err := federation.NewDeterministic([]string{"A", "B"}, cfg.Base, uint64(cfg.Seed)+7, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b, _ := fed.Party("B")
	for id := 0; id < cfg.Docs; id++ {
		body := make(textkit.TermVector)
		for t, c := range w.counts[id] {
			body[textkit.TermID(t)] = int(c)
		}
		d := &textkit.Document{ID: id, Topic: -1, Body: flatten(body)}
		if err := b.IngestDocument(d); err != nil {
			return nil, err
		}
	}
	out := &TrafficComparison{}
	term := w.probes[0]
	fed.Server.ResetTraffic()
	if _, _, err := fed.ReverseTopK("A", "B", federation.FieldBody, term, cfg.Base.K, false); err != nil {
		return nil, err
	}
	out.NaiveTraffic = fed.Server.Traffic()
	fed.Server.ResetTraffic()
	if _, _, err := fed.ReverseTopK("A", "B", federation.FieldBody, term, cfg.Base.K, true); err != nil {
		return nil, err
	}
	out.RTKTraffic = fed.Server.Traffic()
	return out, nil
}

// flatten expands a term vector back into a term sequence (order is
// irrelevant to sketching).
func flatten(tv textkit.TermVector) []textkit.TermID {
	var out []textkit.TermID
	for t, c := range tv {
		for i := 0; i < c; i++ {
			out = append(out, t)
		}
	}
	return out
}
