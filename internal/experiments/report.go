package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Report accumulates experiment results for machine-readable export: the
// expbench -json flag writes one Report covering everything that ran.
// Safe for concurrent Add calls.
type Report struct {
	mu sync.Mutex
	// Meta describes the run (scale, seed, host notes).
	Meta map[string]string `json:"meta"`
	// Results maps experiment id (e.g. "table1", "fig4-alpha") to its
	// result struct.
	Results map[string]any `json:"results"`
}

// NewReport creates an empty report with the given metadata.
func NewReport(meta map[string]string) *Report {
	if meta == nil {
		meta = map[string]string{}
	}
	return &Report{Meta: meta, Results: make(map[string]any)}
}

// Add records one experiment's result under its id. Duplicate ids get a
// numeric suffix rather than silently overwriting.
func (r *Report) Add(id string, result any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := id
	for i := 2; ; i++ {
		if _, dup := r.Results[key]; !dup {
			break
		}
		key = fmt.Sprintf("%s-%d", id, i)
	}
	r.Results[key] = result
}

// Len returns the number of recorded results.
func (r *Report) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Results)
}

// WriteJSON serializes the report with indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Meta    map[string]string `json:"meta"`
		Results map[string]any    `json:"results"`
	}{r.Meta, r.Results}); err != nil {
		return fmt.Errorf("experiments: encoding report: %w", err)
	}
	return nil
}
