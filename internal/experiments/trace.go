package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/telemetry"
)

// TraceConfig configures the tracing-overhead benchmark behind
// `expbench -exp trace` and the checked-in BENCH_trace.json: the same
// federated-search workload runs on two identical federations, one with
// the flight recorder off and one with it on, and the per-search latency
// distributions are compared sample-exactly. The acceptance bar is a
// median overhead under 5%.
type TraceConfig struct {
	Parties      int         `json:"parties"` // data-holding parties; one extra querier is added
	DocsPerParty int         `json:"docs_per_party"`
	DocLen       int         `json:"doc_len"`
	Vocab        int         `json:"vocab"`
	Terms        int         `json:"terms"`    // query terms per federated search
	Searches     int         `json:"searches"` // measured searches per side
	Warmup       int         `json:"warmup"`   // unmeasured searches per side
	Seed         int64       `json:"seed"`
	Params       core.Params `json:"params"`
}

// DefaultTraceConfig is the checked-in BENCH_trace.json workload.
func DefaultTraceConfig() TraceConfig {
	p := core.DefaultParams()
	p.Epsilon = 0
	p.K = 50
	return TraceConfig{
		Parties:      3,
		DocsPerParty: 600,
		DocLen:       60,
		Vocab:        2000,
		Terms:        3,
		Searches:     120,
		Warmup:       10,
		Seed:         1,
		Params:       p,
	}
}

// TestTraceConfig shrinks the benchmark to unit-test scale.
func TestTraceConfig() TraceConfig {
	cfg := DefaultTraceConfig()
	cfg.DocsPerParty = 80
	cfg.DocLen = 30
	cfg.Vocab = 500
	cfg.Searches = 20
	cfg.Warmup = 2
	cfg.Params.K = 20
	return cfg
}

// Validate reports whether the configuration is usable.
func (c TraceConfig) Validate() error {
	switch {
	case c.Parties < 1:
		return fmt.Errorf("%w: Parties=%d", ErrBadConfig, c.Parties)
	case c.DocsPerParty < 1 || c.DocLen < 1 || c.Vocab < 2 || c.Terms < 1:
		return fmt.Errorf("%w: empty workload", ErrBadConfig)
	case c.Searches < 2:
		return fmt.Errorf("%w: Searches=%d", ErrBadConfig, c.Searches)
	case c.Warmup < 0:
		return fmt.Errorf("%w: Warmup=%d", ErrBadConfig, c.Warmup)
	}
	return c.Params.Validate()
}

// TraceSide is one side's exact-sample latency distribution.
type TraceSide struct {
	Searches int     `json:"searches"`
	P50US    float64 `json:"p50_us"`
	P99US    float64 `json:"p99_us"`
	P999US   float64 `json:"p999_us"`
	MeanUS   float64 `json:"mean_us"`
}

// TraceResult is the benchmark outcome.
type TraceResult struct {
	Config TraceConfig `json:"config"`
	Off    TraceSide   `json:"tracing_off"`
	On     TraceSide   `json:"tracing_on"`
	// MedianOverheadPct is the p50 latency delta of tracing on vs off, in
	// percent. The PR's acceptance bar is < 5.
	MedianOverheadPct float64 `json:"median_overhead_pct"`
	// TracedSpans / TracedSearches summarize the recorder's output on the
	// traced side, proving it actually recorded while being measured.
	TracedSpans    int  `json:"traced_spans"`
	TracedSearches int  `json:"traced_searches"`
	ChromeValid    bool `json:"chrome_export_valid"`
}

// traceFed builds one side's federation plus its query stream.
func traceFed(cfg TraceConfig) (*federation.Federation, []uint64, error) {
	names := []string{"Q"}
	for i := 0; i < cfg.Parties; i++ {
		names = append(names, partyName(i))
	}
	fed, err := federation.NewDeterministic(names, cfg.Params, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.Parties; i++ {
		if err := fed.Parties[i+1].IngestAllParallel(parallelismDocs(ParallelismConfig{
			Seed: cfg.Seed, DocsPerParty: cfg.DocsPerParty, DocLen: cfg.DocLen, Vocab: cfg.Vocab,
		}, i), 0); err != nil {
			return nil, nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	total := cfg.Warmup + cfg.Searches
	terms := make([]uint64, total*cfg.Terms)
	for i := range terms {
		terms[i] = uint64(rng.Intn(cfg.Vocab))
	}
	return fed, terms, nil
}

// sampleInterleaved runs the workload on both federations, alternating
// which side goes first each iteration so machine noise (GC, cold
// caches, scheduler drift) lands on both distributions equally instead
// of biasing whichever side ran first. Returns the sorted per-search
// latency samples for each side in microseconds.
func sampleInterleaved(offFed, onFed *federation.Federation, cfg TraceConfig, terms []uint64) (off, on []float64, err error) {
	off = make([]float64, 0, cfg.Searches)
	on = make([]float64, 0, cfg.Searches)
	one := func(fed *federation.Federation, q []uint64) (float64, error) {
		start := time.Now()
		if _, err := fed.Search("Q", q, cfg.Params.K); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Microseconds()), nil
	}
	for s := 0; s < cfg.Warmup+cfg.Searches; s++ {
		q := terms[s*cfg.Terms : (s+1)*cfg.Terms]
		first, second := offFed, onFed
		if s%2 == 1 {
			first, second = onFed, offFed
		}
		d1, err := one(first, q)
		if err != nil {
			return nil, nil, err
		}
		d2, err := one(second, q)
		if err != nil {
			return nil, nil, err
		}
		if s < cfg.Warmup {
			continue
		}
		dOff, dOn := d1, d2
		if first == onFed {
			dOff, dOn = d2, d1
		}
		off = append(off, dOff)
		on = append(on, dOn)
	}
	sort.Float64s(off)
	sort.Float64s(on)
	return off, on, nil
}

// exactQuantile reads a quantile from sorted samples (nearest rank).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// sideOf summarizes sorted samples.
func sideOf(sorted []float64) TraceSide {
	side := TraceSide{
		Searches: len(sorted),
		P50US:    exactQuantile(sorted, 0.5),
		P99US:    exactQuantile(sorted, 0.99),
		P999US:   exactQuantile(sorted, 0.999),
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	if len(sorted) > 0 {
		side.MeanUS = sum / float64(len(sorted))
	}
	return side
}

// RunTraceOverhead measures what end-to-end distributed tracing costs a
// federated search: the same workload on two identical federations,
// flight recorder off vs on, compared at exact sample quantiles. The
// traced side's output is validated as a side effect — every measured
// search must yield a retrievable trace tree, and the last tree must
// export as valid Chrome trace-event JSON.
func RunTraceOverhead(cfg TraceConfig) (*TraceResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &TraceResult{Config: cfg}

	offFed, terms, err := traceFed(cfg)
	if err != nil {
		return nil, err
	}
	onFed, _, err := traceFed(cfg)
	if err != nil {
		return nil, err
	}
	onFed.Server.EnableTracing(federation.TraceConfig{
		MaxTraces: cfg.Warmup + cfg.Searches + 1,
	})
	offSamples, onSamples, err := sampleInterleaved(offFed, onFed, cfg, terms)
	if err != nil {
		return nil, err
	}
	res.Off = sideOf(offSamples)
	res.On = sideOf(onSamples)
	if res.Off.P50US > 0 {
		res.MedianOverheadPct = (res.On.P50US - res.Off.P50US) / res.Off.P50US * 100
	}

	ids := onFed.Server.Metrics().TraceIDs()
	res.TracedSearches = len(ids)
	var last []telemetry.SpanRecord
	for _, id := range ids {
		if spans, ok := onFed.Server.TraceTree(id); ok {
			res.TracedSpans += len(spans)
			last = spans
		}
	}
	if len(last) > 0 {
		var buf bytes.Buffer
		if err := telemetry.WriteChromeTrace(&buf, last); err == nil {
			res.ChromeValid = json.Valid(buf.Bytes())
		}
	}
	return res, nil
}

// RenderTrace renders the overhead comparison expbench prints.
func RenderTrace(res *TraceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace overhead: %d parties x %d docs, %d-term query, K=%d, %d searches/side\n",
		res.Config.Parties, res.Config.DocsPerParty, res.Config.Terms,
		res.Config.Params.K, res.Config.Searches)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s\n", "side", "p50(us)", "p99(us)", "p999(us)", "mean(us)")
	row := func(name string, s TraceSide) {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f %10.1f\n", name, s.P50US, s.P99US, s.P999US, s.MeanUS)
	}
	row("tracing off", res.Off)
	row("tracing on", res.On)
	fmt.Fprintf(&b, "median overhead: %+.2f%% (bar: <5%%); %d traces, %d spans, chrome export valid: %v\n",
		res.MedianOverheadPct, res.TracedSearches, res.TracedSpans, res.ChromeValid)
	return b.String()
}
