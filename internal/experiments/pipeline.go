// Package experiments contains one runner per table and figure of the
// CS-F-LTR paper's evaluation (Section VI), plus the shared pipeline that
// turns a synthetic corpus into a federation, training data (local and
// cross-party augmented) and an external test set.
//
// Runners return plain result structs; rendering helpers turn them into
// the same rows/series the paper reports (see render.go). Absolute
// numbers differ from the paper — the substrate is a simulator, not the
// authors' testbed — but the shapes (who wins, by what factor, where the
// curves bend) are the reproduction targets; EXPERIMENTS.md records both.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"csfltr/internal/core"
	"csfltr/internal/corpus"
	"csfltr/internal/features"
	"csfltr/internal/federation"
	"csfltr/internal/ltr"
	"csfltr/internal/telemetry"
	"csfltr/internal/textkit"
)

// Errors returned by this package.
var ErrBadConfig = errors.New("experiments: invalid configuration")

// AugLabelMode selects how cross-party augmented instances are labelled.
// The paper only says the augmented data carries "positive labels"; the
// modes make the choice explicit and ablatable.
type AugLabelMode int

const (
	// AugLabelFlat labels every augmented instance "relevant" (1) — the
	// conservative reading, and the default: the reverse top-K evidence
	// (high estimated term count) justifies relevance, but not the
	// distinction between relevant and *highly* relevant.
	AugLabelFlat AugLabelMode = iota
	// AugLabelRank grades by retrieval rank: the HighCut best-scored
	// retrieved documents per query get label 2, the rest 1 — mirroring
	// the ground-truth labelling rule on estimated scores.
	AugLabelRank
	// AugLabelOracle uses ground-truth labels (diagnostic only).
	AugLabelOracle
)

// PipelineConfig configures the end-to-end CS-F-LTR pipeline.
type PipelineConfig struct {
	Corpus   corpus.Config
	Params   core.Params
	SGD      ltr.SGDConfig
	Features features.Params
	// Rounds of round-robin distributed SGD for federated training.
	Rounds int
	// TrainFrac is the fraction of each party's queries used for
	// training; the rest form the external test set.
	TrainFrac float64
	// AugPerQuery is the number of cross-party documents kept per query
	// during augmentation (the paper keeps on the order of K).
	AugPerQuery int
	// NegPerQuery is the number of sampled irrelevant local documents
	// per training query.
	NegPerQuery int
	// LocalLabelFrac is the fraction of a party's local ground-truth
	// positives it actually holds labels for. The paper's premise is
	// that "locally generated data (especially positive instances) are
	// insufficient"; this knob makes local supervision scarce so
	// cross-party augmentation has signal to add. 1 = full coverage.
	LocalLabelFrac float64
	// TestNegPerQuery is the number of sampled negatives per test query.
	TestNegPerQuery int
	// OracleAugment replaces the sketch/DP feature estimates of augmented
	// instances with exact cross-party counts. Diagnostic ablation only:
	// it quantifies how much of CS-F-LTR's quality gap is caused by
	// estimation noise in the privacy-preserving features (retrieval and
	// labelling still run through the real protocol).
	OracleAugment bool
	// AugLabel selects how augmented instances are labelled.
	AugLabel AugLabelMode
	// Seed drives sampling decisions outside the corpus generator.
	Seed int64
	// Metrics, when non-nil, receives the federation's telemetry (relay
	// counters, stage latency histograms) instead of a private registry —
	// for the latency probe and binaries exposing a -debug-addr endpoint.
	Metrics *telemetry.Registry `json:"-"`
}

// DefaultPipelineConfig returns a laptop-scale configuration with the
// paper's protocol defaults.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Corpus:          corpus.DefaultConfig(),
		Params:          core.DefaultParams(),
		SGD:             ltr.DefaultSGDConfig(),
		Features:        features.DefaultParams(),
		Rounds:          15,
		TrainFrac:       0.7,
		AugPerQuery:     20,
		NegPerQuery:     40,
		LocalLabelFrac:  0.35,
		TestNegPerQuery: 60,
		Seed:            1,
	}
}

// TestPipelineConfig returns a tiny configuration for unit tests.
func TestPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.Corpus = corpus.TestConfig()
	cfg.Params.W = 128
	cfg.Params.Z = 12
	cfg.Params.Z1 = 6
	cfg.Params.K = 20
	cfg.Params.Epsilon = 0
	cfg.Rounds = 8
	cfg.AugPerQuery = 10
	cfg.NegPerQuery = 10
	cfg.TestNegPerQuery = 15
	cfg.LocalLabelFrac = 0.6
	return cfg
}

// Validate reports whether the configuration is usable.
func (c PipelineConfig) Validate() error {
	if err := c.Corpus.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.SGD.Validate(); err != nil {
		return err
	}
	if err := c.Features.Validate(); err != nil {
		return err
	}
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("%w: Rounds=%d", ErrBadConfig, c.Rounds)
	case c.TrainFrac <= 0 || c.TrainFrac >= 1:
		return fmt.Errorf("%w: TrainFrac=%v", ErrBadConfig, c.TrainFrac)
	case c.AugPerQuery < 0:
		return fmt.Errorf("%w: AugPerQuery=%d", ErrBadConfig, c.AugPerQuery)
	case c.NegPerQuery < 0 || c.TestNegPerQuery < 0:
		return fmt.Errorf("%w: negatives must be non-negative", ErrBadConfig)
	case c.LocalLabelFrac <= 0 || c.LocalLabelFrac > 1:
		return fmt.Errorf("%w: LocalLabelFrac=%v", ErrBadConfig, c.LocalLabelFrac)
	}
	return nil
}

// Pipeline is a fully initialized experiment environment: corpus,
// federation with ingested sketches, collection statistics and the
// train/test query split.
type Pipeline struct {
	Cfg    PipelineConfig
	Corpus *corpus.Corpus
	Fed    *federation.Federation
	Stats  *features.Stats

	trainQ [][]*textkit.Query // per party
	testQ  [][]*textkit.Query
	rng    *rand.Rand
}

// NewPipeline generates the corpus, runs federation setup, ingests every
// document into its party's sketches and splits queries.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := corpus.Generate(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	names := make([]string, cfg.Corpus.NumParties)
	for i := range names {
		names[i] = partyName(i)
	}
	fed, err := federation.NewDeterministic(names, cfg.Params, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		fed.Server.SetRegistry(cfg.Metrics)
	}
	docSets := make([][]*textkit.Document, len(c.Parties))
	for i, party := range c.Parties {
		docSets[i] = party.Docs
		// Parallel bulk load (worker count from Params.Parallelism, 0 =
		// GOMAXPROCS); the resulting sketch state is identical to a
		// sequential IngestAll, so experiment results are unaffected.
		if err := fed.Parties[i].IngestAllParallel(party.Docs, 0); err != nil {
			return nil, err
		}
	}
	p := &Pipeline{
		Cfg:    cfg,
		Corpus: c,
		Fed:    fed,
		Stats:  features.ComputeStats(docSets...),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, party := range c.Parties {
		cut := int(cfg.TrainFrac * float64(len(party.Queries)))
		if cut < 1 {
			cut = 1
		}
		if cut >= len(party.Queries) {
			cut = len(party.Queries) - 1
		}
		if cut < 1 { // single-query parties train on everything
			cut = len(party.Queries)
		}
		p.trainQ = append(p.trainQ, party.Queries[:cut])
		p.testQ = append(p.testQ, party.Queries[cut:])
	}
	return p, nil
}

// partyName maps a party index to its display name (A, B, C, ...).
func partyName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("P%d", i)
}

// queryKey builds the metric grouping key for a query.
func queryKey(party, query int) string { return fmt.Sprintf("p%d.q%d", party, query) }

// exactInstance builds one training/evaluation instance with exact
// (lossless) features.
func (p *Pipeline) exactInstance(q *textkit.Query, qParty int, ref corpus.DocRef, label int) ltr.Instance {
	doc := p.Corpus.Parties[ref.Party].Docs[ref.Doc]
	vec := features.Vector(q.UniqueTerms(),
		features.ExactField(doc.BodyCounts()),
		features.ExactField(doc.TitleCounts()),
		p.Stats, p.Cfg.Features)
	return ltr.Instance{Features: vec, Label: float64(label), QueryKey: queryKey(qParty, q.ID)}
}

// LocalData builds party i's local training set with exact features: the
// party's ground-truth-positive local documents (as the party observes
// them, i.e. subject to its label noise) plus sampled local negatives.
func (p *Pipeline) LocalData(party int) []ltr.Instance {
	var out []ltr.Instance
	rng := rand.New(rand.NewSource(p.Cfg.Seed + int64(party)*7919))
	docsN := len(p.Corpus.Parties[party].Docs)
	for _, q := range p.trainQ[party] {
		qref := corpus.QueryRef{Party: party, Query: q.ID}
		inGT := make(map[int]struct{})
		for _, sd := range p.Corpus.GroundTruth(qref) {
			if sd.Ref.Party != party {
				continue // the party cannot see cross-party relevance locally
			}
			inGT[sd.Ref.Doc] = struct{}{}
			// Scarce supervision: the party only holds labels for a
			// fraction of its local positives (the paper's premise).
			if rng.Float64() > p.Cfg.LocalLabelFrac {
				continue
			}
			label := p.Corpus.LocalLabel(qref, sd.Ref)
			out = append(out, p.exactInstance(q, party, sd.Ref, label))
		}
		for n := 0; n < p.Cfg.NegPerQuery; n++ {
			d := rng.Intn(docsN)
			if _, hit := inGT[d]; hit {
				continue
			}
			ref := corpus.DocRef{Party: party, Doc: d}
			out = append(out, p.exactInstance(q, party, ref, 0))
		}
	}
	return out
}

// AugmentResult carries a party's cross-party augmented training set and
// the protocol cost of producing it.
type AugmentResult struct {
	Instances []ltr.Instance
	Cost      core.Cost
}

// Augment builds party i's augmented dataset X'_i: for every training
// query, reverse top-K document queries (Algorithm 5, or Algorithm 3 when
// useRTK is false) against every other party find candidate relevant
// documents; the merged top AugPerQuery become positively labelled
// instances whose features come from the privacy-preserving sketch
// estimates.
func (p *Pipeline) Augment(party int, useRTK bool) (*AugmentResult, error) {
	return p.AugmentAmong(party, useRTK, nil)
}

// AugmentAmong is Augment restricted to a peer set: only parties listed
// in peers are queried (nil means all). Fig. 6b uses this to vary how
// many parties participate while corpus and test set stay fixed.
func (p *Pipeline) AugmentAmong(party int, useRTK bool, peers []int) (*AugmentResult, error) {
	res := &AugmentResult{}
	from := partyName(party)
	n := len(p.Fed.Parties)
	allowed := func(j int) bool { return true }
	if peers != nil {
		set := make(map[int]struct{}, len(peers))
		for _, j := range peers {
			set[j] = struct{}{}
		}
		allowed = func(j int) bool { _, ok := set[j]; return ok }
	}
	if n < 2 || p.Cfg.AugPerQuery == 0 {
		return res, nil
	}
	for _, q := range p.trainQ[party] {
		terms := q.UniqueTerms()
		// candidate document scores per (party, doc), with per-term counts
		// retained for feature building.
		type cand struct {
			party  int
			doc    int
			score  float64
			counts map[textkit.TermID]float64
		}
		byRef := make(map[corpus.DocRef]*cand)
		for j := 0; j < n; j++ {
			if j == party || !allowed(j) {
				continue
			}
			to := partyName(j)
			for _, t := range terms {
				docs, cost, err := p.Fed.ReverseTopK(from, to, federation.FieldBody,
					uint64(t), p.Cfg.Params.K, useRTK)
				if err != nil {
					return nil, fmt.Errorf("experiments: augment party %d term %d: %w", party, t, err)
				}
				res.Cost.Add(cost)
				for _, dc := range docs {
					if dc.Count <= 0 {
						continue
					}
					ref := corpus.DocRef{Party: j, Doc: dc.DocID}
					c := byRef[ref]
					if c == nil {
						c = &cand{party: j, doc: dc.DocID, counts: make(map[textkit.TermID]float64)}
						byRef[ref] = c
					}
					c.counts[t] = dc.Count
					c.score += dc.Count
				}
			}
		}
		cands := make([]*cand, 0, len(byRef))
		for _, c := range byRef {
			cands = append(cands, c)
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			if cands[a].party != cands[b].party {
				return cands[a].party < cands[b].party
			}
			return cands[a].doc < cands[b].doc
		})
		if len(cands) > p.Cfg.AugPerQuery {
			cands = cands[:p.Cfg.AugPerQuery]
		}
		for rank, c := range cands {
			inst, err := p.augmentedInstance(q, party, c.party, c.doc, c.counts, rank)
			if err != nil {
				return nil, err
			}
			res.Instances = append(res.Instances, inst)
		}
	}
	return res, nil
}

// augLabel assigns the label of one augmented instance per the
// configured AugLabelMode.
func (p *Pipeline) augLabel(qParty, queryID, dParty, docID, rank int) float64 {
	switch p.Cfg.AugLabel {
	case AugLabelRank:
		if rank < p.Cfg.Corpus.HighCut {
			return 2
		}
		return 1
	case AugLabelOracle:
		return float64(p.Corpus.Label(
			corpus.QueryRef{Party: qParty, Query: queryID},
			corpus.DocRef{Party: dParty, Doc: docID}))
	default:
		return 1
	}
}

// augmentedInstance builds one cross-party instance: body counts come
// from the reverse top-K estimates (supplemented by TF queries for terms
// the heaps missed), title counts from cross-party TF queries, lengths
// from the non-private metadata. The label follows the ground-truth
// labelling shape: the HighCut best-scored retrieved documents are
// "highly relevant" (2), the rest "relevant" (1) — the paper's augmented
// data is positively labelled by construction.
func (p *Pipeline) augmentedInstance(q *textkit.Query, qParty, dParty, docID int,
	bodyCounts map[textkit.TermID]float64, rank int) (ltr.Instance, error) {
	label := p.augLabel(qParty, q.ID, dParty, docID, rank)
	if p.Cfg.OracleAugment {
		doc := p.Corpus.Parties[dParty].Docs[docID]
		vec := features.Vector(q.UniqueTerms(),
			features.ExactField(doc.BodyCounts()),
			features.ExactField(doc.TitleCounts()),
			p.Stats, p.Cfg.Features)
		return ltr.Instance{Features: vec, Label: label, QueryKey: queryKey(qParty, q.ID)}, nil
	}
	from, to := partyName(qParty), partyName(dParty)
	ownerBody, err := p.Fed.Server.OwnerFor(to, federation.FieldBody)
	if err != nil {
		return ltr.Instance{}, err
	}
	ownerTitle, err := p.Fed.Server.OwnerFor(to, federation.FieldTitle)
	if err != nil {
		return ltr.Instance{}, err
	}
	bLen, bUniq, err := ownerBody.DocMeta(docID)
	if err != nil {
		return ltr.Instance{}, err
	}
	tLen, tUniq, err := ownerTitle.DocMeta(docID)
	if err != nil {
		return ltr.Instance{}, err
	}
	terms := q.UniqueTerms()
	// Fill body counts missing from the reverse top-K responses.
	for _, t := range terms {
		if _, ok := bodyCounts[t]; ok {
			continue
		}
		c, err := p.Fed.CrossTF(from, to, federation.FieldBody, docID, uint64(t))
		if err != nil {
			return ltr.Instance{}, err
		}
		bodyCounts[t] = c
	}
	titleCounts := make(map[textkit.TermID]float64, len(terms))
	for _, t := range terms {
		c, err := p.Fed.CrossTF(from, to, federation.FieldTitle, docID, uint64(t))
		if err != nil {
			return ltr.Instance{}, err
		}
		titleCounts[t] = c
	}
	body := features.FuncField(func(t textkit.TermID) float64 { return bodyCounts[t] }, bLen, bUniq)
	title := features.FuncField(func(t textkit.TermID) float64 { return titleCounts[t] }, tLen, tUniq)
	vec := features.Vector(terms, body, title, p.Stats, p.Cfg.Features)
	return ltr.Instance{Features: vec, Label: label, QueryKey: queryKey(qParty, q.ID)}, nil
}

// TestData builds the shared external test set: for every held-out query,
// its full ground-truth ranking (any party's documents, true labels) plus
// sampled negatives, all with exact features.
func (p *Pipeline) TestData() []ltr.Instance {
	var out []ltr.Instance
	rng := rand.New(rand.NewSource(p.Cfg.Seed + 104729))
	for party, queries := range p.testQ {
		for _, q := range queries {
			qref := corpus.QueryRef{Party: party, Query: q.ID}
			gt := p.Corpus.GroundTruth(qref)
			inGT := make(map[corpus.DocRef]struct{}, len(gt))
			for _, sd := range gt {
				inGT[sd.Ref] = struct{}{}
				out = append(out, p.exactInstance(q, party, sd.Ref, sd.Label))
			}
			for n := 0; n < p.Cfg.TestNegPerQuery; n++ {
				ref := corpus.DocRef{
					Party: rng.Intn(len(p.Corpus.Parties)),
					Doc:   rng.Intn(p.Cfg.Corpus.DocsPerParty),
				}
				if _, hit := inGT[ref]; hit {
					continue
				}
				out = append(out, p.exactInstance(q, party, ref, 0))
			}
		}
	}
	// Shuffle: instances were appended positives-first, and the metric
	// tie-break preserves input order — an unshuffled test set would hand
	// a constant-score model a perfect ranking.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// trainModel normalizes data (fitting the normalizer on it), trains a
// fresh linear model and returns both.
func (p *Pipeline) trainModel(data []ltr.Instance) (*ltr.LinearModel, *features.Normalizer, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("%w: empty training set", ErrBadConfig)
	}
	vecs := make([][]float64, len(data))
	norm := make([]ltr.Instance, len(data))
	for i, inst := range data {
		vecs[i] = append([]float64(nil), inst.Features...)
	}
	nz := features.FitNormalizer(vecs)
	for i, inst := range data {
		norm[i] = ltr.Instance{Features: nz.Apply(vecs[i]), Label: inst.Label, QueryKey: inst.QueryKey}
	}
	m := ltr.NewLinearModel(features.Dim)
	cfg := p.Cfg.SGD
	cfg.Epochs = p.Cfg.Rounds
	if err := cfg.Train(m, norm); err != nil {
		return nil, nil, err
	}
	return m, nz, nil
}

// trainFederated runs round-robin distributed SGD over per-party data
// with a normalizer fitted on the union.
func (p *Pipeline) trainFederated(partyData [][]ltr.Instance) (*ltr.LinearModel, *features.Normalizer, error) {
	var all [][]float64
	for _, d := range partyData {
		for _, inst := range d {
			all = append(all, inst.Features)
		}
	}
	if len(all) == 0 {
		return nil, nil, fmt.Errorf("%w: no federated training data", ErrBadConfig)
	}
	nz := features.FitNormalizer(all)
	normed := make([][]ltr.Instance, len(partyData))
	for i, d := range partyData {
		normed[i] = make([]ltr.Instance, len(d))
		for j, inst := range d {
			v := nz.Apply(append([]float64(nil), inst.Features...))
			normed[i][j] = ltr.Instance{Features: v, Label: inst.Label, QueryKey: inst.QueryKey}
		}
	}
	m, err := ltr.TrainRoundRobin(features.Dim, normed, p.Cfg.Rounds, p.Cfg.SGD)
	if err != nil {
		return nil, nil, err
	}
	return m, nz, nil
}

// evaluate applies a model (with its normalizer) to the shared test set.
func evaluate(m *ltr.LinearModel, nz *features.Normalizer, test []ltr.Instance) ltr.Metrics {
	normed := make([]ltr.Instance, len(test))
	for i, inst := range test {
		v := nz.Apply(append([]float64(nil), inst.Features...))
		normed[i] = ltr.Instance{Features: v, Label: inst.Label, QueryKey: inst.QueryKey}
	}
	return ltr.Evaluate(m, normed)
}
