package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"csfltr/internal/core"
	"csfltr/internal/dp"
	"csfltr/internal/federation"
	"csfltr/internal/textkit"
)

// ParallelismConfig configures the parallelism sweep: how much a
// federated search and a bulk sketch load speed up as the worker pool
// grows. This is the reproducible benchmark behind `expbench -exp
// parallelism` and `make bench-json`.
type ParallelismConfig struct {
	Parties      int         `json:"parties"`        // data-holding parties; one extra querier party is added
	DocsPerParty int         `json:"docs_per_party"` // documents ingested per data party
	DocLen       int         `json:"doc_len"`        // body terms per document
	Vocab        int         `json:"vocab"`          // term universe size
	Terms        int         `json:"terms"`          // query terms per federated search
	Workers      []int       `json:"workers"`        // pool sizes to sweep; must start at 1 for speedups
	RTTMicros    int64       `json:"rtt_micros"`     // simulated WAN round-trip per relayed owner call
	Seed         int64       `json:"seed"`
	Params       core.Params `json:"params"`
}

// DefaultParallelismConfig is the checked-in BENCH_federation.json
// workload: a 4-party federation in the cross-silo regime — parties are
// WAN-separated, so each relayed owner call carries a simulated 5ms
// round trip (Server.SetPartyLink). That round trip is what the
// concurrent fan-out overlaps; CPU-bound stages only scale with
// physical cores.
func DefaultParallelismConfig() ParallelismConfig {
	p := core.DefaultParams()
	p.Epsilon = 0 // determinism across pool sizes; DP noise order is scheduling-dependent
	p.K = 50
	return ParallelismConfig{
		Parties:      4,
		DocsPerParty: 1200,
		DocLen:       120,
		Vocab:        5000,
		Terms:        4,
		Workers:      []int{1, 2, 4, 8},
		RTTMicros:    5000,
		Seed:         1,
		Params:       p,
	}
}

// TestParallelismConfig shrinks the sweep to unit-test scale.
func TestParallelismConfig() ParallelismConfig {
	cfg := DefaultParallelismConfig()
	cfg.DocsPerParty = 150
	cfg.DocLen = 40
	cfg.Vocab = 1000
	cfg.Workers = []int{1, 2, 4}
	cfg.RTTMicros = 1000
	cfg.Params.K = 20
	return cfg
}

// Validate reports whether the configuration is usable.
func (c ParallelismConfig) Validate() error {
	switch {
	case c.Parties < 1:
		return fmt.Errorf("%w: Parties=%d", ErrBadConfig, c.Parties)
	case c.DocsPerParty < 1 || c.DocLen < 1 || c.Vocab < 2 || c.Terms < 1:
		return fmt.Errorf("%w: empty workload", ErrBadConfig)
	case len(c.Workers) == 0 || c.Workers[0] != 1:
		return fmt.Errorf("%w: Workers must start at 1 (the sequential baseline)", ErrBadConfig)
	case c.RTTMicros < 0:
		return fmt.Errorf("%w: RTTMicros=%d", ErrBadConfig, c.RTTMicros)
	}
	for _, w := range c.Workers {
		if w < 1 {
			return fmt.Errorf("%w: worker count %d", ErrBadConfig, w)
		}
	}
	return c.Params.Validate()
}

// ParallelismPoint is one measured pool size.
type ParallelismPoint struct {
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_1_worker"`
	// SpeedupVsLegacy compares against the retained reference loader
	// (core.AddDocumentsReplay: fresh sketch table per document, boxed
	// container/heap pushes) measured in the same run — the honest
	// denominator on hosts where the worker curve is flat. Only the
	// ingest points carry it.
	SpeedupVsLegacy float64 `json:"speedup_vs_legacy,omitempty"`
}

// WireBytesSection compares the transport byte accounting of one
// federated search under the raw fixed-width encoding and the compact
// binary wire codec. Bytes cover the per-query protocol messages (the
// tf and rtk APIs); the reduction ratio is raw/wire.
type WireBytesSection struct {
	RawBytesPerSearch  int64   `json:"raw_bytes_per_search"`
	WireBytesPerSearch int64   `json:"wire_bytes_per_search"`
	ReductionRatio     float64 `json:"reduction_ratio"`
	// Deterministic confirms the codec changes accounting only: the
	// ranked hits under both codecs are identical.
	Deterministic bool `json:"deterministic"`
}

// ParallelismResult is the sweep outcome: the federated-search curve, the
// bulk-ingestion curve, the legacy-loader ingest baseline, the wire-codec
// byte comparison, and the determinism cross-check (results at every
// pool size must match the sequential baseline bit for bit).
type ParallelismResult struct {
	Config        ParallelismConfig  `json:"config"`
	Search        []ParallelismPoint `json:"federated_search"`
	Ingest        []ParallelismPoint `json:"bulk_ingest"`
	LegacyIngest  *ParallelismPoint  `json:"legacy_ingest,omitempty"`
	WireBytes     *WireBytesSection  `json:"wire_bytes,omitempty"`
	Deterministic bool               `json:"deterministic"`
}

// parallelismDocs builds the synthetic per-party document sets (seeded,
// Zipf-free uniform terms — the sweep measures orchestration, not sketch
// accuracy).
func parallelismDocs(cfg ParallelismConfig, party int) []*textkit.Document {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(party)*7919))
	docs := make([]*textkit.Document, cfg.DocsPerParty)
	for i := range docs {
		body := make([]textkit.TermID, cfg.DocLen)
		for j := range body {
			body[j] = textkit.TermID(rng.Intn(cfg.Vocab))
		}
		docs[i] = textkit.NewDocument(i, -1, nil, body)
	}
	return docs
}

// parallelismFed builds the sweep federation: one querier party "Q" plus
// cfg.Parties data parties, each bulk-loaded with its document set.
func parallelismFed(cfg ParallelismConfig) (*federation.Federation, []uint64, error) {
	names := []string{"Q"}
	for i := 0; i < cfg.Parties; i++ {
		names = append(names, partyName(i))
	}
	fed, err := federation.NewDeterministic(names, cfg.Params, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.Parties; i++ {
		if err := fed.Parties[i+1].IngestAllParallel(parallelismDocs(cfg, i), 0); err != nil {
			return nil, nil, err
		}
	}
	// The simulated round trip applies to queries only — it is installed
	// after ingestion, which is local to each party.
	for i := 0; i < cfg.Parties; i++ {
		fed.Server.SetPartyLink(partyName(i), time.Duration(cfg.RTTMicros)*time.Microsecond)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	terms := make([]uint64, cfg.Terms)
	for i := range terms {
		terms[i] = uint64(rng.Intn(cfg.Vocab))
	}
	return fed, terms, nil
}

// RunParallelismSweep measures FederatedSearch latency and Owner bulk
// ingestion at every configured pool size, verifying along the way that
// ranked results and cost accounting are identical to the 1-worker
// baseline. Timings use testing.Benchmark, so ns/op and allocs/op follow
// the usual `go test -bench` semantics.
func RunParallelismSweep(cfg ParallelismConfig) (*ParallelismResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &ParallelismResult{Config: cfg, Deterministic: true}

	// Federated search sweep. Each pool size gets a freshly seeded
	// federation so the querier's obfuscation randomness is at the same
	// state for the determinism probe.
	var baseHits []federation.SearchHit
	var baseCost core.Cost
	for _, w := range cfg.Workers {
		fed, terms, err := parallelismFed(cfg)
		if err != nil {
			return nil, err
		}
		fed.Params.Parallelism = w
		hits, cost, err := fed.FederatedSearch("Q", terms, cfg.Params.K)
		if err != nil {
			return nil, err
		}
		if w == 1 {
			baseHits, baseCost = hits, cost
		} else if !searchEqual(baseHits, hits) || cost != baseCost {
			res.Deterministic = false
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := fed.FederatedSearch("Q", terms, cfg.Params.K); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Search = append(res.Search, ParallelismPoint{
			Workers:     w,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// Bulk ingestion sweep: one owner loading party 0's documents.
	docs := parallelismDocs(cfg, 0)
	batch := make([]core.DocCounts, len(docs))
	for i, d := range docs {
		batch[i] = core.DocCounts{DocID: d.ID, Counts: federation.CountsToUint64(d.BodyCounts())}
	}
	for _, w := range cfg.Workers {
		w := w
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				owner, err := core.NewOwner(cfg.Params, uint64(cfg.Seed)+99, dp.Disabled())
				if err != nil {
					b.Fatal(err)
				}
				if err := owner.AddDocuments(batch, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Ingest = append(res.Ingest, ParallelismPoint{
			Workers:     w,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// Legacy ingest baseline: the pre-refactor loader on the same batch,
	// measured in the same run so the speedup survives host variance.
	lr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			owner, err := core.NewOwner(cfg.Params, uint64(cfg.Seed)+99, dp.Disabled())
			if err != nil {
				b.Fatal(err)
			}
			if err := owner.AddDocumentsReplay(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.LegacyIngest = &ParallelismPoint{
		Workers:     1,
		NsPerOp:     lr.NsPerOp(),
		AllocsPerOp: lr.AllocsPerOp(),
		BytesPerOp:  lr.AllocedBytesPerOp(),
	}

	fillSpeedups(res.Search)
	fillSpeedups(res.Ingest)
	if legacy := float64(res.LegacyIngest.NsPerOp); legacy > 0 {
		for i := range res.Ingest {
			if res.Ingest[i].NsPerOp > 0 {
				res.Ingest[i].SpeedupVsLegacy = legacy / float64(res.Ingest[i].NsPerOp)
			}
		}
	}

	wb, err := measureWireBytes(cfg)
	if err != nil {
		return nil, err
	}
	res.WireBytes = wb
	if !wb.Deterministic {
		res.Deterministic = false
	}
	return res, nil
}

// measureWireBytes runs the same federated search under both transport
// accountings — raw fixed-width first, then the wire codec on a freshly
// seeded federation so the querier randomness is aligned — and reports
// the per-query protocol bytes (tf + rtk) each one charges.
func measureWireBytes(cfg ParallelismConfig) (*WireBytesSection, error) {
	protocolBytes := func(srv *federation.Server, codec string) int64 {
		return srv.TransportBytes(codec, "tf") + srv.TransportBytes(codec, "rtk")
	}
	fed, terms, err := parallelismFed(cfg)
	if err != nil {
		return nil, err
	}
	rawHits, _, err := fed.FederatedSearch("Q", terms, cfg.Params.K)
	if err != nil {
		return nil, err
	}
	raw := protocolBytes(fed.Server, federation.CodecRaw)

	fed, terms, err = parallelismFed(cfg)
	if err != nil {
		return nil, err
	}
	fed.Server.SetWireCodec(true)
	wireHits, _, err := fed.FederatedSearch("Q", terms, cfg.Params.K)
	if err != nil {
		return nil, err
	}
	wire := protocolBytes(fed.Server, federation.CodecWire)

	wb := &WireBytesSection{
		RawBytesPerSearch:  raw,
		WireBytesPerSearch: wire,
		Deterministic:      searchEqual(rawHits, wireHits),
	}
	if wire > 0 {
		wb.ReductionRatio = float64(raw) / float64(wire)
	}
	return wb, nil
}

// fillSpeedups computes each point's speedup against the first (1-worker)
// point.
func fillSpeedups(points []ParallelismPoint) {
	if len(points) == 0 || points[0].NsPerOp == 0 {
		return
	}
	base := float64(points[0].NsPerOp)
	for i := range points {
		if points[i].NsPerOp > 0 {
			points[i].Speedup = base / float64(points[i].NsPerOp)
		}
	}
}

// searchEqual compares two ranked hit lists exactly.
func searchEqual(a, b []federation.SearchHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenderParallelism renders the sweep as the table expbench prints.
func RenderParallelism(res *ParallelismResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "federation: %d parties x %d docs, %d-term query, K=%d (epsilon=%g, link RTT %s)\n",
		res.Config.Parties, res.Config.DocsPerParty, res.Config.Terms,
		res.Config.Params.K, res.Config.Params.Epsilon,
		time.Duration(res.Config.RTTMicros)*time.Microsecond)
	fmt.Fprintf(&b, "deterministic across pool sizes: %v\n", res.Deterministic)
	render := func(name string, points []ParallelismPoint) {
		fmt.Fprintf(&b, "%-18s %8s %12s %12s %12s %9s %10s\n",
			name, "workers", "ns/op", "B/op", "allocs/op", "speedup", "vs legacy")
		for _, p := range points {
			legacy := "-"
			if p.SpeedupVsLegacy > 0 {
				legacy = fmt.Sprintf("%8.2fx", p.SpeedupVsLegacy)
			}
			fmt.Fprintf(&b, "%-18s %8d %12d %12d %12d %8.2fx %10s\n",
				"", p.Workers, p.NsPerOp, p.BytesPerOp, p.AllocsPerOp, p.Speedup, legacy)
		}
	}
	render("federated search", res.Search)
	render("bulk ingest", res.Ingest)
	if lp := res.LegacyIngest; lp != nil {
		fmt.Fprintf(&b, "%-18s %8s %12d %12d %12d\n",
			"legacy ingest", "-", lp.NsPerOp, lp.BytesPerOp, lp.AllocsPerOp)
	}
	if wb := res.WireBytes; wb != nil {
		fmt.Fprintf(&b, "wire codec: %d B/search raw -> %d B/search wire (%.1fx reduction, deterministic: %v)\n",
			wb.RawBytesPerSearch, wb.WireBytesPerSearch, wb.ReductionRatio, wb.Deterministic)
	}
	return b.String()
}

// WriteBenchJSON writes any sweep result as indented JSON — the shared
// writer behind the checked-in BENCH_*.json artifacts.
func WriteBenchJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteParallelismJSON writes the sweep result as indented JSON — the
// payload of the checked-in BENCH_federation.json.
func WriteParallelismJSON(w io.Writer, res *ParallelismResult) error {
	return WriteBenchJSON(w, res)
}
