package experiments

import (
	"errors"
	"strings"
	"testing"
)

func TestLoadConfigValidate(t *testing.T) {
	good := TestLoadConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	cases := []func(*LoadConfig){
		func(c *LoadConfig) { c.ShardCounts = nil },
		func(c *LoadConfig) { c.ShardCounts = []int{2, 1} }, // not ascending
		func(c *LoadConfig) { c.ShardCounts = []int{0} },
		func(c *LoadConfig) { c.Replicas = 0 },
		func(c *LoadConfig) { c.Replicas = 1 }, // KillReplica needs a peer
		func(c *LoadConfig) { c.Parties = 0 },
		func(c *LoadConfig) { c.DocsPerParty = 0 },
		func(c *LoadConfig) { c.DetermChecks = 0 },
		func(c *LoadConfig) { c.ServiceMicros = -1 },
		func(c *LoadConfig) { c.Requests = 0 },
		func(c *LoadConfig) { c.TargetUtil = 0 },
		func(c *LoadConfig) { c.TargetUtil = 1.5 },
		func(c *LoadConfig) { c.ZipfS = 1 },
		func(c *LoadConfig) { c.Params.Epsilon = 0.5 }, // determinism needs eps=0
	}
	for i, mutate := range cases {
		cfg := TestLoadConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

// TestRunLoadSweep runs the unit-scale sweep end to end: every point's
// determinism check must pass against the unsharded reference, the
// replica kill must not fail a single admitted request (availability
// 1.0), and the tail must stay inside the histogram's finite buckets.
func TestRunLoadSweep(t *testing.T) {
	cfg := TestLoadConfig()
	res, err := RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.ShardCounts) {
		t.Fatalf("%d points for %d shard counts", len(res.Points), len(cfg.ShardCounts))
	}
	if !res.Deterministic {
		t.Fatal("sharded sweep not deterministic vs unsharded reference")
	}
	for i, pt := range res.Points {
		if pt.Shards != cfg.ShardCounts[i] || pt.Replicas != cfg.Replicas {
			t.Fatalf("point %d: fan %d/%d, want %d/%d", i, pt.Shards, pt.Replicas, cfg.ShardCounts[i], cfg.Replicas)
		}
		if pt.OK+pt.Shed+pt.Failed != pt.Sent || pt.Sent != cfg.Requests {
			t.Fatalf("point %d: outcome partition broken: %+v", i, pt)
		}
		if pt.Failed != 0 {
			t.Fatalf("point %d: %d hard failures (admitted requests must answer): %+v", i, pt.Failed, pt)
		}
		if pt.Availability != 1 {
			t.Fatalf("point %d: availability %v with %+v", i, pt.Availability, pt)
		}
		if !pt.ReplicaKilled {
			t.Fatalf("point %d: replica kill never happened", i)
		}
		if !pt.P999Bounded || pt.P999Seconds < 0 {
			t.Fatalf("point %d: unbounded tail: %+v", i, pt)
		}
		if pt.CapacityQPS <= 0 || pt.ThroughputQPS <= 0 {
			t.Fatalf("point %d: no throughput measured: %+v", i, pt)
		}
	}

	table := RenderLoad(res)
	for _, want := range []string{"load:", "capacity_qps", "availability", "p999_s", "deterministic=true"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, table)
		}
	}
}
