package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestChaosConfigValidate(t *testing.T) {
	good := TestChaosConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	cases := []func(*ChaosConfig){
		func(c *ChaosConfig) { c.Parties = 0 },
		func(c *ChaosConfig) { c.DocsPerParty = 0 },
		func(c *ChaosConfig) { c.Searches = 0 },
		func(c *ChaosConfig) { c.DownParties = -1 },
		func(c *ChaosConfig) { c.DownParties = c.Parties }, // no survivor
		func(c *ChaosConfig) { c.ErrorRates = nil },
		func(c *ChaosConfig) { c.ErrorRates = []float64{1.5} },
		func(c *ChaosConfig) { c.RTTMicros = -1 },
		func(c *ChaosConfig) { c.Params.MinParties = 0 }, // quorum policy required
	}
	for i, mutate := range cases {
		cfg := TestChaosConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

// TestRunChaosSweep runs the unit-scale sweep end to end: with one dead
// silo every search degrades but none may fail (MinParties=1), retries
// and the dead party's open breaker must be visible at a positive error
// rate, and a same-config rerun must reproduce the availability numbers
// exactly (fault injection is seeded, not random).
func TestRunChaosSweep(t *testing.T) {
	cfg := TestChaosConfig()
	res, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.ErrorRates) {
		t.Fatalf("%d points for %d rates", len(res.Points), len(cfg.ErrorRates))
	}
	for i, pt := range res.Points {
		if pt.Searches != cfg.Searches || pt.OK+pt.Partial+pt.Failed != pt.Searches {
			t.Fatalf("point %d: outcome partition broken: %+v", i, pt)
		}
		if pt.OK != 0 {
			t.Fatalf("point %d: %d full-roster answers despite a hard-down party", i, pt.OK)
		}
		if pt.Failed != 0 {
			t.Fatalf("point %d: %d searches failed under MinParties=1: %+v", i, pt.Failed, pt)
		}
		if pt.Availability != 1 {
			t.Fatalf("point %d: availability %v, want 1", i, pt.Availability)
		}
		if pt.OpenBreakers < 1 {
			t.Fatalf("point %d: dead party's breaker never opened", i)
		}
	}
	// The rate-0 point retries only the dead party; a 30% rate must add
	// retries on the surviving links.
	if last := res.Points[len(res.Points)-1]; last.Retries <= res.Points[0].Retries {
		t.Fatalf("error rate added no retries: rate0=%d rate30=%d",
			res.Points[0].Retries, last.Retries)
	}

	rerun, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		a, b := res.Points[i], rerun.Points[i]
		a.AvgLatencyMicros, b.AvgLatencyMicros = 0, 0 // wall clock may differ
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("point %d not reproducible: %+v vs %+v", i, a, b)
		}
	}

	table := RenderChaos(res)
	for _, want := range []string{"chaos:", "error_rate", "availability", "breakers"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, table)
		}
	}
}
