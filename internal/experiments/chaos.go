package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/resilience"
)

// ChaosConfig configures the resilience sweep: availability and latency
// of degraded-mode federated search as per-party fault rates grow, with
// a fixed number of hard-down silos. This is the reproducible benchmark
// behind `expbench -exp chaos` and the checked-in BENCH_resilience.json.
type ChaosConfig struct {
	Parties      int         `json:"parties"` // data-holding parties; one extra querier party is added
	DocsPerParty int         `json:"docs_per_party"`
	DocLen       int         `json:"doc_len"`
	Vocab        int         `json:"vocab"`
	Terms        int         `json:"terms"`        // query terms per federated search
	Searches     int         `json:"searches"`     // searches per sweep point
	DownParties  int         `json:"down_parties"` // leading parties configured hard-down
	ErrorRates   []float64   `json:"error_rates"`  // per-call error rates for the surviving parties
	RTTMicros    int64       `json:"rtt_micros"`   // simulated WAN round trip per relayed owner call
	Seed         int64       `json:"seed"`         // workload randomness
	ChaosSeed    uint64      `json:"chaos_seed"`   // fault-injection seed (bit-identical replays)
	Params       core.Params `json:"params"`
}

// DefaultChaosConfig is the checked-in BENCH_resilience.json workload: a
// 4-party federation with one dead silo, swept across error rates on
// the surviving links, under a MinParties=1 quorum so searches degrade
// instead of failing.
func DefaultChaosConfig() ChaosConfig {
	p := core.DefaultParams()
	p.Epsilon = 0 // determinism across pool sizes; DP noise order is scheduling-dependent
	p.K = 50
	p.MinParties = 1
	return ChaosConfig{
		Parties:      4,
		DocsPerParty: 600,
		DocLen:       60,
		Vocab:        2000,
		Terms:        3,
		Searches:     40,
		DownParties:  1,
		ErrorRates:   []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5},
		RTTMicros:    200,
		Seed:         1,
		ChaosSeed:    42,
		Params:       p,
	}
}

// TestChaosConfig shrinks the sweep to unit-test scale.
func TestChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.DocsPerParty = 80
	cfg.DocLen = 30
	cfg.Vocab = 500
	cfg.Searches = 12
	cfg.ErrorRates = []float64{0, 0.3}
	cfg.RTTMicros = 0
	cfg.Params.K = 20
	return cfg
}

// Validate reports whether the configuration is usable.
func (c ChaosConfig) Validate() error {
	switch {
	case c.Parties < 1:
		return fmt.Errorf("%w: Parties=%d", ErrBadConfig, c.Parties)
	case c.DocsPerParty < 1 || c.DocLen < 1 || c.Vocab < 2 || c.Terms < 1:
		return fmt.Errorf("%w: empty workload", ErrBadConfig)
	case c.Searches < 1:
		return fmt.Errorf("%w: Searches=%d", ErrBadConfig, c.Searches)
	case c.DownParties < 0 || c.DownParties >= c.Parties:
		return fmt.Errorf("%w: DownParties=%d must leave a survivor among %d parties",
			ErrBadConfig, c.DownParties, c.Parties)
	case len(c.ErrorRates) == 0:
		return fmt.Errorf("%w: no error rates", ErrBadConfig)
	case c.RTTMicros < 0:
		return fmt.Errorf("%w: RTTMicros=%d", ErrBadConfig, c.RTTMicros)
	case c.Params.MinParties < 1:
		return fmt.Errorf("%w: chaos sweep needs the quorum policy (Params.MinParties >= 1)", ErrBadConfig)
	}
	for _, r := range c.ErrorRates {
		if r < 0 || r > 1 {
			return fmt.Errorf("%w: error rate %v", ErrBadConfig, r)
		}
	}
	return c.Params.Validate()
}

// ChaosPoint is one measured fault rate.
type ChaosPoint struct {
	ErrorRate float64 `json:"error_rate"`
	Searches  int     `json:"searches"`
	// OK / Partial / Failed partition the searches: full-roster answers,
	// degraded answers, and quorum losses or hard errors.
	OK      int `json:"ok"`
	Partial int `json:"partial"`
	Failed  int `json:"failed"`
	// Availability is the fraction of searches that returned a ranking
	// (full or degraded).
	Availability     float64 `json:"availability"`
	AvgLatencyMicros int64   `json:"avg_latency_micros"`
	Retries          int     `json:"retries"`
	// OpenBreakers counts parties whose breaker finished the point open.
	OpenBreakers int `json:"open_breakers"`
}

// ChaosResult is the sweep outcome.
type ChaosResult struct {
	Config ChaosConfig  `json:"config"`
	Points []ChaosPoint `json:"points"`
}

// chaosFed builds one sweep federation: querier Q plus cfg.Parties data
// parties with seeded synthetic documents, per-party links at
// cfg.RTTMicros, the leading cfg.DownParties parties hard-down and the
// rest at the given error rate, and a fast-retry resilience policy so a
// sweep point is not dominated by backoff sleeps.
func chaosFed(cfg ChaosConfig, rate float64) (*federation.Federation, []uint64, error) {
	names := []string{"Q"}
	for i := 0; i < cfg.Parties; i++ {
		names = append(names, partyName(i))
	}
	fed, err := federation.NewDeterministic(names, cfg.Params, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.Parties; i++ {
		if err := fed.Parties[i+1].IngestAllParallel(parallelismDocs(ParallelismConfig{
			Seed: cfg.Seed, DocsPerParty: cfg.DocsPerParty, DocLen: cfg.DocLen, Vocab: cfg.Vocab,
		}, i), 0); err != nil {
			return nil, nil, err
		}
	}
	in := chaos.New(cfg.ChaosSeed)
	rtt := time.Duration(cfg.RTTMicros) * time.Microsecond
	for i := 0; i < cfg.Parties; i++ {
		p := chaos.Profile{Latency: rtt}
		if i < cfg.DownParties {
			p.Down = true
		} else {
			p.ErrorRate = rate
		}
		in.SetProfile(partyName(i), p)
	}
	fed.Server.SetChaos(in)
	policy := resilience.DefaultPolicy()
	policy.BaseBackoff = 100 * time.Microsecond
	policy.MaxBackoff = time.Millisecond
	policy.OpenTimeout = time.Hour // no half-open probes mid-sweep
	fed.SetResiliencePolicy(policy)
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	terms := make([]uint64, cfg.Searches*cfg.Terms)
	for i := range terms {
		terms[i] = uint64(rng.Intn(cfg.Vocab))
	}
	return fed, terms, nil
}

// RunChaosSweep measures degraded-mode search availability, latency,
// retries and breaker state at every configured error rate. Each rate
// gets a fresh federation and a fresh injector with the same seed, so
// the whole sweep replays bit-identically.
func RunChaosSweep(cfg ChaosConfig) (*ChaosResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &ChaosResult{Config: cfg}
	for _, rate := range cfg.ErrorRates {
		fed, terms, err := chaosFed(cfg, rate)
		if err != nil {
			return nil, err
		}
		pt := ChaosPoint{ErrorRate: rate, Searches: cfg.Searches}
		var elapsed time.Duration
		for s := 0; s < cfg.Searches; s++ {
			q := terms[s*cfg.Terms : (s+1)*cfg.Terms]
			start := time.Now()
			out, err := fed.Search("Q", q, cfg.Params.K)
			elapsed += time.Since(start)
			if out != nil {
				for _, rep := range out.Parties {
					pt.Retries += rep.Retries
				}
			}
			switch {
			case err != nil:
				pt.Failed++
			case out.Partial:
				pt.Partial++
			default:
				pt.OK++
			}
		}
		pt.Availability = float64(pt.OK+pt.Partial) / float64(pt.Searches)
		pt.AvgLatencyMicros = elapsed.Microseconds() / int64(pt.Searches)
		for i := 0; i < cfg.Parties; i++ {
			if fed.BreakerState(partyName(i)) == resilience.Open {
				pt.OpenBreakers++
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RenderChaos renders the sweep as the table expbench prints.
func RenderChaos(res *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d parties (%d down) x %d docs, %d-term query, K=%d, quorum >= %d, %d searches/point, chaos seed %d\n",
		res.Config.Parties, res.Config.DownParties, res.Config.DocsPerParty,
		res.Config.Terms, res.Config.Params.K, res.Config.Params.MinParties,
		res.Config.Searches, res.Config.ChaosSeed)
	fmt.Fprintf(&b, "%10s %6s %8s %7s %13s %13s %8s %9s\n",
		"error_rate", "ok", "partial", "failed", "availability", "avg_lat_us", "retries", "breakers")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%10.2f %6d %8d %7d %13.3f %13d %8d %9d\n",
			p.ErrorRate, p.OK, p.Partial, p.Failed, p.Availability,
			p.AvgLatencyMicros, p.Retries, p.OpenBreakers)
	}
	return b.String()
}
