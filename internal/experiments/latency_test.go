package experiments

import (
	"strings"
	"testing"

	"csfltr/internal/federation"
	"csfltr/internal/telemetry"
)

func TestLatencyProbe(t *testing.T) {
	cfg := TestPipelineConfig()
	cfg.Params.Epsilon = 1 // exercise the dp_noise stage
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fed.Server.Metrics() != reg {
		t.Fatal("pipeline did not inject the registry into the federation server")
	}
	res, err := RunLatencyProbe(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Searches == 0 {
		t.Fatal("probe ran no searches")
	}
	if res.Traffic.Bytes == 0 {
		t.Fatalf("probe relayed no bytes: %+v", res.Traffic)
	}
	calls := map[string]int64{}
	for _, s := range res.Stages {
		calls[s.Stage] = s.Calls
	}
	for _, stage := range federation.SearchStages {
		if calls[stage] == 0 {
			t.Errorf("stage %s has zero calls: %v", stage, calls)
		}
	}
	out := RenderStageBreakdown(res.Stages)
	for _, stage := range federation.SearchStages {
		if !strings.Contains(out, stage) {
			t.Errorf("rendered table missing stage %s:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, "p99(us)") {
		t.Errorf("rendered table missing header:\n%s", out)
	}
}

func TestStageBreakdownEmptyRegistry(t *testing.T) {
	rows := StageBreakdown(telemetry.NewRegistry())
	if len(rows) != len(federation.SearchStages) {
		t.Fatalf("got %d rows, want %d", len(rows), len(federation.SearchStages))
	}
	for _, r := range rows {
		if r.Calls != 0 {
			t.Fatalf("empty registry reported calls: %+v", r)
		}
	}
	if out := RenderStageBreakdown(rows); !strings.Contains(out, "-") {
		t.Fatalf("empty rows should render dashes:\n%s", out)
	}
}
