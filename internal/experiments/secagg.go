package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"csfltr/internal/chaos"
	"csfltr/internal/core"
	"csfltr/internal/federation"
	"csfltr/internal/keyex"
	"csfltr/internal/ltr"
	"csfltr/internal/resilience"
)

// SecAggConfig configures the secure-aggregation overhead sweep: wall
// time per training round of TrainSecureFedAvg vs plaintext round-robin
// on the same synthetic linear dataset, across dropout scenarios. This
// is the reproducible benchmark behind `expbench -exp secagg` and the
// checked-in BENCH_secagg.json.
type SecAggConfig struct {
	Parties  int `json:"parties"`
	PerParty int `json:"per_party"` // training instances per party
	Dim      int `json:"dim"`       // model dimensionality
	Rounds   int `json:"rounds"`
	// DownCounts are the dropout scenarios: for each entry d, the
	// leading d parties are chaos-killed for the secure run (the
	// plaintext baseline always runs on clean links).
	DownCounts  []int       `json:"down_counts"`
	Seed        int64       `json:"seed"`
	EntropySeed uint64      `json:"entropy_seed"` // key-agreement entropy (reproducible masks)
	ChaosSeed   uint64      `json:"chaos_seed"`
	Params      core.Params `json:"params"`
}

// DefaultSecAggConfig is the checked-in BENCH_secagg.json workload: a
// 4-party federation training a small linear ranker, clean vs one and
// two dead silos.
func DefaultSecAggConfig() SecAggConfig {
	p := core.DefaultParams()
	p.MinParties = 1
	return SecAggConfig{
		Parties:     4,
		PerParty:    400,
		Dim:         8,
		Rounds:      30,
		DownCounts:  []int{0, 1, 2},
		Seed:        1,
		EntropySeed: 5,
		ChaosSeed:   42,
		Params:      p,
	}
}

// TestSecAggConfig shrinks the sweep to unit-test scale.
func TestSecAggConfig() SecAggConfig {
	cfg := DefaultSecAggConfig()
	cfg.PerParty = 80
	cfg.Rounds = 8
	cfg.DownCounts = []int{0, 1}
	return cfg
}

// Validate reports whether the configuration is usable.
func (c SecAggConfig) Validate() error {
	switch {
	case c.Parties < 2:
		return fmt.Errorf("%w: Parties=%d (pairwise masking needs at least 2)", ErrBadConfig, c.Parties)
	case c.PerParty < 1 || c.Dim < 1 || c.Rounds < 1:
		return fmt.Errorf("%w: empty workload", ErrBadConfig)
	case len(c.DownCounts) == 0:
		return fmt.Errorf("%w: no dropout scenarios", ErrBadConfig)
	case c.Params.MinParties < 1:
		return fmt.Errorf("%w: secagg sweep needs the quorum policy (Params.MinParties >= 1)", ErrBadConfig)
	}
	for _, d := range c.DownCounts {
		if d < 0 || d >= c.Parties {
			return fmt.Errorf("%w: DownCounts entry %d must leave a survivor among %d parties",
				ErrBadConfig, d, c.Parties)
		}
	}
	return c.Params.Validate()
}

// SecAggPoint is one measured dropout scenario.
type SecAggPoint struct {
	Down int `json:"down"` // chaos-killed parties in the secure run
	// Per-round wall time of the plaintext round-robin baseline (clean
	// links) and of the secure run (with the scenario's dead silos).
	PlainRoundMicros  int64   `json:"plain_round_micros"`
	SecureRoundMicros int64   `json:"secure_round_micros"`
	Overhead          float64 `json:"overhead"` // secure/plain per-round ratio
	SetupMicros       int64   `json:"setup_micros"`
	Rounds            int     `json:"rounds"`
	Drops             int     `json:"drops"`
	Recoveries        int     `json:"recoveries"`
	Retries           int     `json:"retries"`
	// Byte accounting of the secure run, read back from the op="secagg"
	// relay series.
	MaskedBytesPerRound int64 `json:"masked_bytes_per_round"`
	RevealBytes         int64 `json:"reveal_bytes"`
	// MaxWeightDelta is the largest |secure - plaintext FedAvg| weight
	// difference at the same seeds — the realized quantization drift.
	MaxWeightDelta float64 `json:"max_weight_delta"`
	// Deterministic records whether two identical secure runs produced
	// bit-identical models.
	Deterministic bool `json:"deterministic"`
}

// SecAggResult is the sweep outcome.
type SecAggResult struct {
	Config SecAggConfig  `json:"config"`
	Points []SecAggPoint `json:"points"`
	// Deterministic is the conjunction over all points.
	Deterministic bool `json:"deterministic"`
}

// secaggData builds the per-party synthetic linear dataset shared by
// both trainers in a sweep point.
func secaggData(cfg SecAggConfig) map[string][]ltr.Instance {
	out := make(map[string][]ltr.Instance, cfg.Parties)
	w := make([]float64, cfg.Dim)
	for i := range w {
		w[i] = math.Pow(-1, float64(i)) * (1 + float64(i)/4)
	}
	for p := 0; p < cfg.Parties; p++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
		data := make([]ltr.Instance, cfg.PerParty)
		for i := range data {
			x := make([]float64, cfg.Dim)
			y := 0.3
			for j := range x {
				x[j] = rng.NormFloat64()
				y += w[j] * x[j]
			}
			y += 0.05 * rng.NormFloat64()
			data[i] = ltr.Instance{Features: x, Label: y, QueryKey: "q"}
		}
		out[partyName(p)] = data
	}
	return out
}

// secaggFed builds one sweep federation with the leading down parties
// chaos-killed and a fast-retry resilience policy.
func secaggFed(cfg SecAggConfig, down int) (*federation.Federation, error) {
	names := make([]string, cfg.Parties)
	for i := range names {
		names[i] = partyName(i)
	}
	fed, err := federation.NewDeterministic(names, cfg.Params, uint64(cfg.Seed)+99, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if down > 0 {
		in := chaos.New(cfg.ChaosSeed)
		for i := 0; i < down; i++ {
			in.SetProfile(partyName(i), chaos.Profile{Down: true})
		}
		fed.Server.SetChaos(in)
	}
	policy := resilience.DefaultPolicy()
	policy.BaseBackoff = 100 * time.Microsecond
	policy.MaxBackoff = time.Millisecond
	policy.OpenTimeout = time.Hour // no half-open probes mid-sweep
	fed.SetResiliencePolicy(policy)
	return fed, nil
}

// roundMicros reads the per-round wall time out of the federation's
// training.round span histogram. Timing rounds from the spans keeps the
// one-off DH ceremony (reported separately as SetupMicros) out of the
// per-round figure.
func roundMicros(fed *federation.Federation, rounds int) int64 {
	snap := fed.Server.Metrics().Snapshot()
	m := snap.Metric(federation.MetricTrainingRoundDuration)
	if m == nil || len(m.Series) == 0 {
		return 1
	}
	us := int64(m.Series[0].Sum*1e6) / int64(rounds)
	if us < 1 {
		us = 1
	}
	return us
}

// runSecure runs one secure training pass and returns the model, stats
// and per-round wall micros.
func runSecure(cfg SecAggConfig, down int, data map[string][]ltr.Instance, sgd ltr.SGDConfig) (*ltr.LinearModel, federation.SecAggStats, int64, error) {
	fed, err := secaggFed(cfg, down)
	if err != nil {
		return nil, federation.SecAggStats{}, 0, err
	}
	model, stats, err := fed.TrainSecureFedAvg(cfg.Dim, data, cfg.Rounds, sgd,
		federation.SecAggOptions{Entropy: keyex.SeededEntropy(cfg.EntropySeed)})
	if err != nil {
		return nil, stats, 0, err
	}
	return model, stats, roundMicros(fed, cfg.Rounds), nil
}

// RunSecAggSweep measures secure-aggregation training overhead and
// recovery behaviour at every dropout scenario. Every run is seeded, so
// the whole sweep replays bit-identically.
func RunSecAggSweep(cfg SecAggConfig) (*SecAggResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	data := secaggData(cfg)
	sgd := ltr.DefaultSGDConfig()
	sgd.Seed = cfg.Seed

	// Plaintext baseline: round-robin on clean links, timed per round.
	plainFed, err := secaggFed(cfg, 0)
	if err != nil {
		return nil, err
	}
	if _, _, err := plainFed.TrainRoundRobin(cfg.Dim, data, cfg.Rounds, sgd); err != nil {
		return nil, err
	}
	plainPerRound := roundMicros(plainFed, cfg.Rounds)

	// Plaintext FedAvg reference for the quantization drift column.
	partyData := make([][]ltr.Instance, cfg.Parties)
	for i := range partyData {
		partyData[i] = data[partyName(i)]
	}
	fedavg, err := ltr.TrainFedAvg(cfg.Dim, partyData, cfg.Rounds, sgd)
	if err != nil {
		return nil, err
	}

	// The DH ceremony cost is per run, not per round; measure it once.
	setupStart := time.Now()
	if _, err := keyex.AgreePairwise(cfg.Parties, keyex.SeededEntropy(cfg.EntropySeed)); err != nil {
		return nil, err
	}
	setupMicros := time.Since(setupStart).Microseconds()

	res := &SecAggResult{Config: cfg, Deterministic: true}
	for _, down := range cfg.DownCounts {
		model, stats, secureUS, err := runSecure(cfg, down, data, sgd)
		if err != nil {
			return nil, err
		}
		again, _, _, err := runSecure(cfg, down, data, sgd)
		if err != nil {
			return nil, err
		}
		deterministic := model.B == again.B
		for i := range model.W {
			if model.W[i] != again.W[i] {
				deterministic = false
			}
		}
		maxDelta := math.Abs(model.B - fedavg.B)
		if down == 0 {
			for i := range model.W {
				if d := math.Abs(model.W[i] - fedavg.W[i]); d > maxDelta {
					maxDelta = d
				}
			}
		} else {
			maxDelta = 0 // different roster, drift vs full-roster FedAvg is meaningless
		}
		pt := SecAggPoint{
			Down:                down,
			PlainRoundMicros:    plainPerRound,
			SecureRoundMicros:   secureUS,
			SetupMicros:         setupMicros,
			Rounds:              stats.Rounds,
			Drops:               stats.Drops,
			Recoveries:          stats.Recoveries,
			Retries:             stats.Retries,
			MaskedBytesPerRound: stats.MaskedBytes / int64(cfg.Rounds),
			RevealBytes:         stats.RevealBytes,
			MaxWeightDelta:      maxDelta,
			Deterministic:       deterministic,
		}
		pt.Overhead = float64(pt.SecureRoundMicros) / float64(pt.PlainRoundMicros)
		if !deterministic {
			res.Deterministic = false
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RenderSecAgg renders the sweep as the table expbench prints.
func RenderSecAgg(res *SecAggResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "secagg: %d parties x %d instances, dim %d, %d rounds, entropy seed %d, chaos seed %d, setup %dus\n",
		res.Config.Parties, res.Config.PerParty, res.Config.Dim, res.Config.Rounds,
		res.Config.EntropySeed, res.Config.ChaosSeed, res.Points[0].SetupMicros)
	fmt.Fprintf(&b, "%5s %14s %15s %9s %6s %10s %8s %15s %13s %11s %6s\n",
		"down", "plain_us/round", "secure_us/round", "overhead", "drops", "recoveries", "retries",
		"masked_B/round", "reveal_bytes", "max_w_delta", "det")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%5d %14d %15d %9.2f %6d %10d %8d %15d %13d %11.2e %6v\n",
			p.Down, p.PlainRoundMicros, p.SecureRoundMicros, p.Overhead, p.Drops, p.Recoveries,
			p.Retries, p.MaskedBytesPerRound, p.RevealBytes, p.MaxWeightDelta, p.Deterministic)
	}
	return b.String()
}
