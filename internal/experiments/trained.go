package experiments

import (
	"fmt"
	"io"

	"csfltr/internal/features"
	"csfltr/internal/ltr"
)

// TrainedModel bundles a trained CS-F-LTR ranking model with the feature
// normalizer it requires and the metrics it achieved on the pipeline's
// external test set.
type TrainedModel struct {
	Model       *ltr.LinearModel
	Norm        *features.Normalizer
	TestMetrics ltr.Metrics
}

// TrainCSFLTR runs the full CS-F-LTR training path on an initialized
// pipeline — local data plus privacy-preserving cross-party augmentation
// for every party, round-robin distributed SGD — and evaluates on the
// external test set. This is the entry point for callers that want the
// model itself rather than the Table-I comparison.
func TrainCSFLTR(p *Pipeline) (*TrainedModel, error) {
	n := len(p.Fed.Parties)
	combined := make([][]ltr.Instance, n)
	for i := 0; i < n; i++ {
		local := p.LocalData(i)
		aug, err := p.Augment(i, true)
		if err != nil {
			return nil, err
		}
		combined[i] = append(local, aug.Instances...)
	}
	m, nz, err := p.trainFederated(combined)
	if err != nil {
		return nil, err
	}
	return &TrainedModel{
		Model:       m,
		Norm:        nz,
		TestMetrics: evaluate(m, nz, p.TestData()),
	}, nil
}

// Score applies the trained model to a raw (unnormalized) feature
// vector.
func (t *TrainedModel) Score(raw []float64) float64 {
	v := t.Norm.Apply(append([]float64(nil), raw...))
	return t.Model.Score(v)
}

// WriteTo persists the model and its normalizer as one stream.
func (t *TrainedModel) WriteTo(w io.Writer) (int64, error) {
	n1, err := t.Model.WriteTo(w)
	if err != nil {
		return n1, fmt.Errorf("experiments: writing model: %w", err)
	}
	n2, err := t.Norm.WriteTo(w)
	if err != nil {
		return n1 + n2, fmt.Errorf("experiments: writing normalizer: %w", err)
	}
	return n1 + n2, nil
}

// ReadTrainedModel restores a model persisted with WriteTo. TestMetrics
// are not persisted (they belong to the training-time test set).
func ReadTrainedModel(r io.Reader) (*TrainedModel, error) {
	m, err := ltr.ReadModel(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: reading model: %w", err)
	}
	nz, err := features.ReadNormalizer(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: reading normalizer: %w", err)
	}
	return &TrainedModel{Model: m, Norm: nz}, nil
}

// EvaluateTrained scores a trained model against a pipeline's external
// test set (e.g. a freshly generated corpus with the same seed, or a
// different seed for out-of-distribution evaluation).
func EvaluateTrained(t *TrainedModel, p *Pipeline) ltr.Metrics {
	return evaluate(t.Model, t.Norm, p.TestData())
}
