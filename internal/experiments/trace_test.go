package experiments

import (
	"errors"
	"strings"
	"testing"
)

func TestTraceConfigValidate(t *testing.T) {
	good := TestTraceConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	cases := []func(*TraceConfig){
		func(c *TraceConfig) { c.Parties = 0 },
		func(c *TraceConfig) { c.DocsPerParty = 0 },
		func(c *TraceConfig) { c.Terms = 0 },
		func(c *TraceConfig) { c.Searches = 1 },
		func(c *TraceConfig) { c.Warmup = -1 },
	}
	for i, mutate := range cases {
		cfg := TestTraceConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

// TestRunTraceOverhead runs the unit-scale overhead benchmark end to
// end: both sides must complete the full workload, the traced side must
// retain one trace tree per search with spans in it, and the last tree
// must round-trip through the Chrome trace-event exporter as valid
// JSON. Overhead itself is not asserted at this scale — latencies are
// microseconds and too noisy for a percentage bound; BENCH_trace.json
// records the default-scale number.
func TestRunTraceOverhead(t *testing.T) {
	cfg := TestTraceConfig()
	res, err := RunTraceOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.Searches != cfg.Searches || res.On.Searches != cfg.Searches {
		t.Fatalf("sample counts off=%d on=%d, want %d both",
			res.Off.Searches, res.On.Searches, cfg.Searches)
	}
	for _, side := range []TraceSide{res.Off, res.On} {
		if side.P50US <= 0 || side.P999US < side.P99US || side.P99US < side.P50US {
			t.Fatalf("quantiles not monotone: %+v", side)
		}
	}
	if res.TracedSearches != cfg.Warmup+cfg.Searches {
		t.Fatalf("traced side retained %d traces, want %d",
			res.TracedSearches, cfg.Warmup+cfg.Searches)
	}
	if res.TracedSpans <= res.TracedSearches {
		t.Fatalf("only %d spans over %d traces — trees are empty",
			res.TracedSpans, res.TracedSearches)
	}
	if !res.ChromeValid {
		t.Fatal("chrome trace export invalid")
	}

	table := RenderTrace(res)
	for _, want := range []string{"trace overhead:", "tracing off", "tracing on", "median overhead"} {
		if !strings.Contains(table, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, table)
		}
	}
}
