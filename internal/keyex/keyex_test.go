package keyex

import (
	"bytes"
	"errors"
	"io"
	"math/big"
	"testing"
)

func TestModP2048Properties(t *testing.T) {
	g := ModP2048()
	if g.P.BitLen() != 2048 {
		t.Fatalf("prime bit length = %d, want 2048", g.P.BitLen())
	}
	if !g.P.ProbablyPrime(16) {
		t.Fatal("modulus is not prime")
	}
	// Safe prime: (P-1)/2 should also be prime.
	q := new(big.Int).Rsh(new(big.Int).Sub(g.P, big.NewInt(1)), 1)
	if !q.ProbablyPrime(16) {
		t.Fatal("(P-1)/2 is not prime; group is not a safe-prime group")
	}
	if g.G.Cmp(big.NewInt(2)) != 0 {
		t.Fatal("generator should be 2")
	}
}

func TestSharedSecretAgreement(t *testing.T) {
	g := ModP2048()
	alice, err := g.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := g.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := alice.SharedSecret(bob.Public())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := bob.SharedSecret(alice.Public())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("DH shared secrets disagree")
	}
	if len(sa) != 32 {
		t.Fatalf("secret length = %d, want 32", len(sa))
	}

	carol, err := g.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := alice.SharedSecret(carol.Public())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sa, sc) {
		t.Fatal("distinct peers yielded the same shared secret")
	}
}

func TestRejectBadPublicKeys(t *testing.T) {
	g := ModP2048()
	k, err := g.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(g.P, big.NewInt(1)), // P-1: order-2 element
		new(big.Int).Set(g.P),
		new(big.Int).Add(g.P, big.NewInt(5)),
	}
	for i, pub := range bad {
		if _, err := k.SharedSecret(pub); !errors.Is(err, ErrInvalidPublicKey) {
			t.Fatalf("case %d: expected ErrInvalidPublicKey, got %v", i, err)
		}
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	secret := bytes.Repeat([]byte{7}, 32)
	msg := []byte("the federation hash seed")
	box, err := Seal(secret, msg, "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(secret, box, "label")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	secret := bytes.Repeat([]byte{7}, 32)
	box, err := Seal(secret, []byte("payload"), "label", nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), box...)
	tampered[len(tampered)-1] ^= 1
	if _, err := Open(secret, tampered, "label"); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tampered box: expected ErrDecrypt, got %v", err)
	}
	if _, err := Open(secret, box, "wrong-label"); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong label: expected ErrDecrypt, got %v", err)
	}
	wrong := bytes.Repeat([]byte{8}, 32)
	if _, err := Open(wrong, box, "label"); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong secret: expected ErrDecrypt, got %v", err)
	}
	if _, err := Open(secret, box[:4], "label"); !errors.Is(err, ErrCiphertextShort) {
		t.Fatalf("short box: expected ErrCiphertextShort, got %v", err)
	}
}

func TestAgreeFederationSecret(t *testing.T) {
	secrets, err := AgreeFederationSecret(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(secrets) != 4 {
		t.Fatalf("got %d secrets, want 4", len(secrets))
	}
	for i := 1; i < 4; i++ {
		if !bytes.Equal(secrets[0], secrets[i]) {
			t.Fatalf("party %d received a different federation secret", i)
		}
	}
	if len(secrets[0]) != 32 {
		t.Fatalf("secret length %d, want 32", len(secrets[0]))
	}
}

func TestAgreeFederationSecretSingleParty(t *testing.T) {
	secrets, err := AgreeFederationSecret(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(secrets) != 1 || len(secrets[0]) != 32 {
		t.Fatal("single-party federation should still yield one secret")
	}
}

func TestAgreeFederationSecretRejectsZeroParties(t *testing.T) {
	if _, err := AgreeFederationSecret(0, nil); err == nil {
		t.Fatal("expected error for zero parties")
	}
}

func TestSeededEntropyDeterministic(t *testing.T) {
	a := make([]byte, 300)
	b := make([]byte, 300)
	if _, err := SeededEntropy(42).Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := SeededEntropy(42).Read(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different streams")
	}
	if _, err := SeededEntropy(43).Read(b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical streams")
	}
	// Reading in odd-sized chunks must yield the same stream as one read.
	r := SeededEntropy(42)
	chunked := make([]byte, 0, 300)
	for len(chunked) < 300 {
		buf := make([]byte, 7)
		n := 7
		if rem := 300 - len(chunked); rem < n {
			n = rem
		}
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			t.Fatal(err)
		}
		chunked = append(chunked, buf[:n]...)
	}
	if !bytes.Equal(a, chunked) {
		t.Fatal("chunked reads diverge from a single read")
	}
}

func TestAgreePairwise(t *testing.T) {
	const n = 4
	secrets, err := AgreePairwise(n, SeededEntropy(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(secrets) != n {
		t.Fatalf("got %d rows, want %d", len(secrets), n)
	}
	for i := 0; i < n; i++ {
		if secrets[i][i] != nil {
			t.Fatalf("diagonal [%d][%d] should be nil", i, i)
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if len(secrets[i][j]) != 32 {
				t.Fatalf("secret [%d][%d] length %d, want 32", i, j, len(secrets[i][j]))
			}
			if !bytes.Equal(secrets[i][j], secrets[j][i]) {
				t.Fatalf("secrets [%d][%d] and [%d][%d] disagree", i, j, j, i)
			}
		}
	}
	// Distinct pairs must not share a secret.
	if bytes.Equal(secrets[0][1], secrets[0][2]) {
		t.Fatal("distinct pairs yielded identical secrets")
	}
	// Seeded entropy makes the whole ceremony reproducible.
	again, err := AgreePairwise(n, SeededEntropy(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(secrets[0][1], again[0][1]) {
		t.Fatal("seeded ceremony is not reproducible")
	}
	other, err := AgreePairwise(n, SeededEntropy(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(secrets[0][1], other[0][1]) {
		t.Fatal("different entropy seeds produced identical ceremonies")
	}
}

func TestAgreePairwiseRejectsZeroParties(t *testing.T) {
	if _, err := AgreePairwise(0, nil); err == nil {
		t.Fatal("expected error for zero parties")
	}
}
