// Package keyex implements the key-agreement layer of CS-F-LTR.
//
// Section IV-B (Step 1) of the paper requires that all parties build their
// sketches with the *same* keyed hash functions while the coordinating
// server never learns the key: "The hash functions can be keyed where the
// private keys are securely generated (e.g., with Diffie-Hellman key
// agreement) so that they can be hidden from the server."
//
// This package provides:
//
//   - Finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group
//     (math/big), giving every pair of parties a shared secret even though
//     all traffic is routed through the honest-but-curious server.
//   - A small authenticated sealing primitive (AES-GCM with an
//     SHA-256-derived key) with which the federation leader distributes
//     the common hash seed to every other party under the pairwise DH
//     secrets.
//
// The resulting federation secret is fed to hashutil.DeriveSeed to obtain
// the seeds of every hash family used in the protocol.
package keyex

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors returned by this package.
var (
	ErrInvalidPublicKey = errors.New("keyex: invalid peer public key")
	ErrCiphertextShort  = errors.New("keyex: ciphertext too short")
	ErrDecrypt          = errors.New("keyex: message authentication failed")
)

// modp2048Hex is the RFC 3526 group 14 prime (2048-bit MODP group).
const modp2048Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// Group describes a finite-field Diffie-Hellman group with prime modulus P
// and generator G.
type Group struct {
	P *big.Int
	G *big.Int
}

// ModP2048 returns the RFC 3526 2048-bit MODP group (group 14), a safe
// prime group suitable for classic DH.
func ModP2048() *Group {
	p, ok := new(big.Int).SetString(modp2048Hex, 16)
	if !ok {
		panic("keyex: invalid built-in prime") // unreachable: constant
	}
	return &Group{P: p, G: big.NewInt(2)}
}

// PrivateKey is one party's DH key pair within a group. The private
// exponent (and anything embedding it) must never be marshalled,
// logged, or placed in a wire message; only Public() may travel.
//
//csfltr:private
type PrivateKey struct {
	group *Group
	x     *big.Int // private exponent
	pub   *big.Int // G^x mod P
}

// GenerateKey samples a fresh private key from rnd (crypto/rand.Reader in
// production; a deterministic reader in tests).
func (g *Group) GenerateKey(rnd io.Reader) (*PrivateKey, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	// Sample x uniformly in [2, P-2].
	max := new(big.Int).Sub(g.P, big.NewInt(3))
	x, err := rand.Int(rnd, max)
	if err != nil {
		return nil, fmt.Errorf("keyex: sampling private exponent: %w", err)
	}
	x.Add(x, big.NewInt(2))
	pub := new(big.Int).Exp(g.G, x, g.P)
	return &PrivateKey{group: g, x: x, pub: pub}, nil
}

// Public returns the public key G^x mod P.
func (k *PrivateKey) Public() *big.Int { return new(big.Int).Set(k.pub) }

// validatePeer rejects public keys outside [2, P-2], which would collapse
// the shared secret to a constant.
func (k *PrivateKey) validatePeer(peer *big.Int) error {
	if peer == nil {
		return fmt.Errorf("%w: nil", ErrInvalidPublicKey)
	}
	two := big.NewInt(2)
	pm2 := new(big.Int).Sub(k.group.P, two)
	if peer.Cmp(two) < 0 || peer.Cmp(pm2) > 0 {
		return fmt.Errorf("%w: out of range", ErrInvalidPublicKey)
	}
	return nil
}

// SharedSecret computes the 32-byte shared secret with the peer's public
// key: SHA-256(peer^x mod P).
func (k *PrivateKey) SharedSecret(peer *big.Int) ([]byte, error) {
	if err := k.validatePeer(peer); err != nil {
		return nil, err
	}
	s := new(big.Int).Exp(peer, k.x, k.group.P)
	sum := sha256.Sum256(s.Bytes())
	return sum[:], nil
}

// deriveAEAD builds an AES-256-GCM AEAD from a shared secret and a
// domain-separation label.
func deriveAEAD(secret []byte, label string) (cipher.AEAD, error) {
	h := sha256.New()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write(secret)
	key := h.Sum(nil)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("keyex: building cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("keyex: building GCM: %w", err)
	}
	return aead, nil
}

// Seal encrypts and authenticates msg under the shared secret. The label
// provides domain separation (e.g. "federation-seed"). The nonce is drawn
// from rnd and prepended to the ciphertext.
func Seal(secret, msg []byte, label string, rnd io.Reader) ([]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	aead, err := deriveAEAD(secret, label)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return nil, fmt.Errorf("keyex: sampling nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, msg, []byte(label)), nil
}

// Open decrypts a Seal-produced box, verifying its authenticity.
func Open(secret, box []byte, label string) ([]byte, error) {
	aead, err := deriveAEAD(secret, label)
	if err != nil {
		return nil, err
	}
	if len(box) < aead.NonceSize() {
		return nil, ErrCiphertextShort
	}
	nonce, ct := box[:aead.NonceSize()], box[aead.NonceSize():]
	msg, err := aead.Open(nil, nonce, ct, []byte(label))
	if err != nil {
		return nil, ErrDecrypt
	}
	return msg, nil
}

// FederationSeedLabel is the domain-separation label used when the leader
// distributes the federation hash seed.
const FederationSeedLabel = "csfltr/federation-seed/v1"

// seededEntropy is a deterministic entropy stream: counter-mode SHA-256
// over a 64-bit seed. Every keyex entry point accepts an io.Reader and
// defaults to crypto/rand when given nil; this reader is the injectable
// alternative for tests and fixtures that need the whole ceremony —
// private exponents, sealed boxes, secagg round keys — reproducible
// from one integer. Never use it in production key agreement.
type seededEntropy struct {
	seed    uint64
	counter uint64
	buf     []byte // unread tail of the current block
}

// SeededEntropy returns a deterministic io.Reader producing the same
// byte stream for the same seed. It exists so key-agreement-derived
// state (pairwise secrets, secagg round seeds, determinism analyzer
// fixtures) can be pinned in tests; production callers pass nil readers
// and get crypto/rand, exactly as before.
func SeededEntropy(seed uint64) io.Reader {
	return &seededEntropy{seed: seed}
}

// Read implements io.Reader; it never fails.
func (s *seededEntropy) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(s.buf) == 0 {
			var block [16]byte
			binary.BigEndian.PutUint64(block[0:8], s.seed)
			binary.BigEndian.PutUint64(block[8:16], s.counter)
			s.counter++
			sum := sha256.Sum256(block[:])
			s.buf = sum[:]
		}
		c := copy(p[n:], s.buf)
		s.buf = s.buf[c:]
		n += c
	}
	return n, nil
}

// AgreePairwise runs the pairwise Diffie-Hellman ceremony for n parties
// in-process and returns the symmetric matrix of 32-byte shared
// secrets: secrets[i][j] is party i's secret with party j (equal to
// secrets[j][i]); the diagonal is nil. Only public keys would travel
// through the coordinating server in the deployed message flow, so the
// server never learns any pairwise secret. These are the secrets the
// secure-aggregation layer expands into per-round mask seeds.
//
// rnd may be nil, in which case crypto/rand is used.
func AgreePairwise(n int, rnd io.Reader) ([][][]byte, error) {
	if n <= 0 {
		return nil, errors.New("keyex: federation must have at least one party")
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	group := ModP2048()
	keys := make([]*PrivateKey, n)
	for i := range keys {
		k, err := group.GenerateKey(rnd)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	secrets := make([][][]byte, n)
	for i := range secrets {
		secrets[i] = make([][]byte, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, err := keys[i].SharedSecret(keys[j].Public())
			if err != nil {
				return nil, err
			}
			// Both sides derive the same secret; hand each party its copy.
			secrets[i][j] = append([]byte(nil), s...)
			secrets[j][i] = append([]byte(nil), s...)
		}
	}
	return secrets, nil
}

// AgreeFederationSecret runs the full seed-agreement ceremony for n
// parties in-process and returns each party's copy of the 32-byte
// federation secret. It models exactly the message flow the federation
// substrate performs over its transport: party 0 (the leader) samples the
// secret and seals it for every other party under the pairwise DH secret;
// the sealed boxes are what travels through the server, so the server
// never sees the seed. Returns one identical secret slice per party.
//
// rnd may be nil, in which case crypto/rand is used.
func AgreeFederationSecret(n int, rnd io.Reader) ([][]byte, error) {
	if n <= 0 {
		return nil, errors.New("keyex: federation must have at least one party")
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	group := ModP2048()
	keys := make([]*PrivateKey, n)
	for i := range keys {
		k, err := group.GenerateKey(rnd)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	// Leader samples the federation secret.
	seed := make([]byte, 32)
	if _, err := io.ReadFull(rnd, seed); err != nil {
		return nil, fmt.Errorf("keyex: sampling federation secret: %w", err)
	}
	out := make([][]byte, n)
	out[0] = append([]byte(nil), seed...)
	for i := 1; i < n; i++ {
		// Leader -> party i: seal under pairwise secret. Both sides compute
		// the same pairwise secret from the exchanged public keys.
		sLeader, err := keys[0].SharedSecret(keys[i].Public())
		if err != nil {
			return nil, err
		}
		box, err := Seal(sLeader, seed, FederationSeedLabel, rnd)
		if err != nil {
			return nil, err
		}
		sParty, err := keys[i].SharedSecret(keys[0].Public())
		if err != nil {
			return nil, err
		}
		msg, err := Open(sParty, box, FederationSeedLabel)
		if err != nil {
			return nil, fmt.Errorf("keyex: party %d cannot open seed box: %w", i, err)
		}
		out[i] = msg
	}
	return out, nil
}
