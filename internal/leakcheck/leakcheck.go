// Package leakcheck is the runtime counterpart of the csfltr-vet
// concurrency analyzers: a snapshot-diff goroutine-leak detector wired
// into TestMain. The static checks (lockhold, lockcopy) catch the
// blocking patterns that *cause* stuck goroutines; leakcheck catches
// the stuck goroutines themselves — a fan-out worker still parked on a
// result channel, a singleflight waiter nobody signalled, an abandoned
// resilience attempt whose buffered channel was never drained.
//
// Protocol: TestMain snapshots the live goroutines before m.Run, runs
// the tests, then diffs. Goroutines present after the run but not in
// the baseline are leak candidates; because legitimately short-lived
// goroutines (timed-out resilience attempts completing into their
// buffered channels, http idle-connection teardown) may still be
// draining at that instant, the diff is retried with backoff for a
// grace period and only goroutines that survive it are reported. The
// test binary then fails (exit 1) with the full stack of every leaked
// goroutine, so `go test -race ./...` turns a leak into a red build.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// maxStackBytes bounds the all-goroutine stack snapshot.
const maxStackBytes = 1 << 22

// defaultGrace is how long the final diff waits for in-flight
// goroutines to drain before declaring them leaked.
const defaultGrace = 2 * time.Second

// Goroutine is one parsed entry of a runtime stack dump.
type Goroutine struct {
	ID    int
	State string // "chan receive", "select", "IO wait", ...
	Stack string // full stack block, header included
}

// ignored reports whether a goroutine is infrastructure that outlives
// any test on purpose: the test driver itself, runtime helpers, signal
// plumbing, and this package's own machinery.
func ignored(g Goroutine) bool {
	for _, marker := range []string{
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runTests",
		"testing.RunTests",
		"testing.Main",
		"runtime.goexit0",
		"runtime.gc",
		"runtime.forcegchelper",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.runfinq",
		"runtime.ReadTrace",
		"os/signal.signal_recv",
		"os/signal.loop",
		"leakcheck.Snapshot",
		"leakcheck.Main",
	} {
		if strings.Contains(g.Stack, marker) {
			return true
		}
	}
	return false
}

// Snapshot captures every live goroutine except ignored infrastructure.
func Snapshot() []Goroutine {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		if len(buf) >= maxStackBytes {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []Goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		g, ok := parseGoroutine(block)
		if !ok || ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// parseGoroutine decodes one "goroutine N [state]:" block.
func parseGoroutine(block string) (Goroutine, bool) {
	block = strings.TrimSpace(block)
	rest, ok := strings.CutPrefix(block, "goroutine ")
	if !ok {
		return Goroutine{}, false
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Goroutine{}, false
	}
	id, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return Goroutine{}, false
	}
	state := ""
	if open := strings.IndexByte(rest, '['); open >= 0 {
		if end := strings.IndexByte(rest[open:], ']'); end > 0 {
			state = rest[open+1 : open+end]
		}
	}
	return Goroutine{ID: id, State: state, Stack: block}, true
}

// Leaked returns the goroutines alive now that were not in baseline,
// retrying with backoff until grace expires so legitimately-draining
// goroutines (timed-out attempts, connection teardown) don't count.
func Leaked(baseline []Goroutine, grace time.Duration) []Goroutine {
	base := make(map[int]bool, len(baseline))
	for _, g := range baseline {
		base[g.ID] = true
	}
	deadline := time.Now().Add(grace)
	wait := time.Millisecond
	for {
		var leaked []Goroutine
		for _, g := range Snapshot() {
			if !base[g.ID] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
}

// Main is the TestMain body: snapshot, run, diff, fail on leaks.
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	os.Exit(run(m))
}

// run is Main without the os.Exit, for leakcheck's own tests.
func run(m *testing.M) int {
	baseline := Snapshot()
	code := m.Run()
	if code != 0 {
		return code
	}
	leaked := Leaked(baseline, defaultGrace)
	if len(leaked) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this package's tests:\n\n", len(leaked))
	for _, g := range leaked {
		fmt.Fprintf(os.Stderr, "%s\n\n", g.Stack)
	}
	return 1
}
