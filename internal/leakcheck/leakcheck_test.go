package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCatchesDeliberateLeak is the acceptance check: a goroutine parked
// on a channel nobody sends to must show up in the diff, and must
// disappear once released.
func TestCatchesDeliberateLeak(t *testing.T) {
	baseline := Snapshot()

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release // parked: this is the leak
	}()
	<-started

	leaked := Leaked(baseline, 50*time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("deliberately leaked goroutine was not detected")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g.Stack, "TestCatchesDeliberateLeak") {
			found = true
			if g.State != "chan receive" {
				t.Errorf("leaked goroutine state = %q, want chan receive", g.State)
			}
		}
	}
	if !found {
		t.Fatalf("leak report does not implicate this test; got %d other goroutine(s)", len(leaked))
	}

	close(release)
	if still := Leaked(baseline, 2*time.Second); len(still) != 0 {
		t.Fatalf("released goroutine still reported as leaked: %d remain", len(still))
	}
}

// TestSnapshotIgnoresInfrastructure asserts the runtime/testing
// machinery never pollutes a baseline.
func TestSnapshotIgnoresInfrastructure(t *testing.T) {
	for _, g := range Snapshot() {
		if strings.Contains(g.Stack, "testing.(*M).Run") {
			t.Errorf("test driver goroutine not ignored:\n%s", g.Stack)
		}
	}
}

func TestParseGoroutine(t *testing.T) {
	block := "goroutine 42 [chan receive]:\nmain.worker()\n\t/tmp/x.go:10 +0x20\ncreated by main.main\n\t/tmp/x.go:5 +0x44"
	g, ok := parseGoroutine(block)
	if !ok {
		t.Fatal("parseGoroutine failed")
	}
	if g.ID != 42 || g.State != "chan receive" {
		t.Errorf("parsed (%d, %q), want (42, chan receive)", g.ID, g.State)
	}
	if _, ok := parseGoroutine("not a goroutine header"); ok {
		t.Error("garbage block must not parse")
	}
}

// TestMain wires leakcheck into its own package, so the suite guards
// itself.
func TestMain(m *testing.M) {
	Main(m)
}
