package telemetry

import (
	"strings"
	"testing"
)

// FuzzWritePrometheus hardens the text-exposition writer against
// hostile label values and help strings: whatever bytes land in a
// label, the output must keep its line structure — every line is a
// # HELP / # TYPE line or a sample of the registered families, so a
// label value can never inject a forged sample or comment line.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("route", "request latency.")
	f.Add("a\nb", `quo"te`)
	f.Add(`back\slash`, "multi\nline help")
	f.Add("", "")
	f.Add("\n# HELP forged_metric bad\nforged_metric 1", "x")

	f.Fuzz(func(t *testing.T, val, help string) {
		reg := NewRegistry()
		reg.Counter("csfltr_fuzz_total", help, L("k", val)).Add(3)
		reg.Gauge("csfltr_fuzz_gauge", help, L("k", val)).Set(1.5)
		reg.Histogram("csfltr_fuzz_seconds", help, []float64{0.1, 1}, L("k", val)).Observe(0.5)

		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(b.String(), "\n") {
			if line == "" {
				continue
			}
			switch {
			case strings.HasPrefix(line, "# HELP csfltr_fuzz_"),
				strings.HasPrefix(line, "# TYPE csfltr_fuzz_"),
				strings.HasPrefix(line, "csfltr_fuzz_"):
				// structurally sound line
			default:
				t.Fatalf("label value %q / help %q injected exposition line %q", val, help, line)
			}
		}
	})
}
