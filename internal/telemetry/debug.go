package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// StartRuntimeCollector registers process-level gauges (goroutines, heap
// bytes, GC cycles) in r and refreshes them every interval until the
// returned stop function is called. Collection also runs once
// immediately so short-lived processes report something.
func StartRuntimeCollector(r *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	goroutines := r.Gauge("csfltr_runtime_goroutines", "Number of live goroutines.")
	heapAlloc := r.Gauge("csfltr_runtime_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.Gauge("csfltr_runtime_heap_sys_bytes", "Bytes of heap obtained from the OS.")
	gcCycles := r.Gauge("csfltr_runtime_gc_cycles", "Completed GC cycles.")
	gcPause := r.Gauge("csfltr_runtime_gc_pause_total_seconds", "Cumulative GC stop-the-world pause.")
	collect := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	}
	collect()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				collect()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// DebugMux returns the debug surface for a registry:
//
//	/metrics        Prometheus text format
//	/debug/vars     expvar-style JSON snapshot
//	/debug/pprof/*  net/http/pprof profiling endpoints
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug/profiling endpoint (see ServeDebug).
type DebugServer struct {
	Addr string // actual listen address

	srv         *http.Server
	ln          net.Listener
	stopRuntime func()
	once        sync.Once
}

// ServeDebug serves DebugMux(r) on addr (e.g. "127.0.0.1:6060", or port
// 0 for ephemeral) and starts the runtime gauge collector. This is what
// the -debug-addr flag of cmd/csfltr and cmd/expbench mounts.
func ServeDebug(r *Registry, addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	d := &DebugServer{
		Addr:        ln.Addr().String(),
		srv:         &http.Server{Handler: DebugMux(r)},
		ln:          ln,
		stopRuntime: StartRuntimeCollector(r, 5*time.Second),
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Close stops the debug server and the runtime collector.
func (d *DebugServer) Close() error {
	var err error
	d.once.Do(func() {
		d.stopRuntime()
		err = d.srv.Close()
	})
	return err
}
