package telemetry

import (
	"sync"
	"time"
)

// Event is one completed span in the structured event log. The first
// three fields are the stable contract existing JSON consumers parse;
// the trace fields are additive and omitted for untraced spans.
type Event struct {
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_nanos"`
	TraceID       string `json:"trace_id,omitempty"`
	SpanID        string `json:"span_id,omitempty"`
	RequestID     string `json:"request_id,omitempty"`
}

// eventLog is a bounded ring buffer of completed spans.
type eventLog struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

func (l *eventLog) events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Event(nil), l.buf[:l.next]...)
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	return append(out, l.buf[:l.next]...)
}

func (l *eventLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next, l.full = 0, false
}

// EnableEvents turns on the structured event log with the given ring
// capacity (older events are overwritten). Spans ended after this call
// are appended; capacity <= 0 disables the log.
func (r *Registry) EnableEvents(capacity int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if capacity <= 0 {
		r.events = nil
		return
	}
	r.events = &eventLog{buf: make([]Event, capacity)}
}

// Events returns the logged events, oldest first.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	l := r.events
	r.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.events()
}

// Span is a started protocol timer. End it exactly once; the duration is
// recorded into the backing histogram and, when the registry's event log
// is enabled, appended as a structured Event.
type Span struct {
	reg   *Registry
	hist  *Histogram
	name  string
	start time.Time
}

// StartSpan starts a timer named name recording into h (which may be
// nil to only feed the event log).
func (r *Registry) StartSpan(name string, h *Histogram) Span {
	return Span{reg: r, hist: h, name: name, start: time.Now()}
}

// End stops the span, records it and returns the measured duration. A
// zero-value Span is a no-op.
func (s Span) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(d.Seconds())
	}
	s.reg.mu.Lock()
	l := s.reg.events
	s.reg.mu.Unlock()
	if l != nil {
		l.append(Event{Name: s.name, StartUnixNano: s.start.UnixNano(), DurationNanos: int64(d)})
	}
	return d
}
