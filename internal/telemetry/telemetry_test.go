package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("csfltr_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle.
	if r.Counter("csfltr_test_ops_total", "ops") != c {
		t.Fatal("re-resolving a counter returned a different handle")
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset counter = %d, want 0", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("csfltr_test_total", "").Add(-1)
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("csfltr_relay_total", "relays", L("party", "A"))
	b := r.Counter("csfltr_relay_total", "relays", L("party", "B"))
	if a == b {
		t.Fatal("distinct label sets shared a series")
	}
	// Label order must not matter.
	ab := r.Counter("csfltr_multi_total", "", L("x", "1"), L("y", "2"))
	ba := r.Counter("csfltr_multi_total", "", L("y", "2"), L("x", "1"))
	if ab != ba {
		t.Fatal("label order changed series identity")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("csfltr_test_metric", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("csfltr_test_metric", "")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("csfltr_test_inflight", "in flight")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
}

// TestHistogramBoundaries pins the inclusive-upper-bound (Prometheus
// `le`) semantics: an observation exactly at a bucket boundary counts
// into that bucket, not the next one.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("csfltr_test_latency_seconds", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 2, 2.000001, 5, 6} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	want := []int64{2, 1, 2, 1} // le=1: {0.5, 1}; le=2: {2}; le=5: {2.000001, 5}; +Inf: {6}
	if len(counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-16.500001) > 1e-9 {
		t.Fatalf("Sum = %v, want 16.500001", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("csfltr_test_q_seconds", "", []float64{1, 2, 5})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile of empty histogram should be NaN")
	}
	for _, v := range []float64{0.5, 0.5, 0.5, 4, 10} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.8); got != 5 {
		t.Fatalf("p80 = %v, want 5", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %v, want +Inf", got)
	}
}

// TestConcurrentWriters hammers every metric kind from many goroutines;
// run under -race this is the registry's data-race regression test.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	r.EnableEvents(64)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			party := string(rune('A' + w%4))
			for i := 0; i < perWorker; i++ {
				r.Counter("csfltr_race_total", "", L("party", party)).Inc()
				r.Gauge("csfltr_race_inflight", "").Add(1)
				r.Histogram("csfltr_race_seconds", "", nil).Observe(float64(i) * 1e-6)
				r.StartSpan("race", r.Histogram("csfltr_race_span_seconds", "", nil)).End()
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(new(strings.Builder))
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, p := range []string{"A", "B", "C", "D"} {
		total += r.Counter("csfltr_race_total", "", L("party", p)).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("counter total = %d, want %d", total, workers*perWorker)
	}
	if got := r.Histogram("csfltr_race_seconds", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSpanRecordsAndLogs(t *testing.T) {
	r := NewRegistry()
	r.EnableEvents(4)
	h := r.Histogram("csfltr_test_span_seconds", "", nil)
	sp := r.StartSpan("unit", h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span duration %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].Name != "unit" || ev[0].DurationNanos < int64(time.Millisecond) {
		t.Fatalf("unexpected event log %+v", ev)
	}
	// Ring buffer keeps only the newest `capacity` events.
	for i := 0; i < 10; i++ {
		r.StartSpan("later", nil).End()
	}
	ev = r.Events()
	if len(ev) != 4 {
		t.Fatalf("event ring length = %d, want 4", len(ev))
	}
	for _, e := range ev {
		if e.Name != "later" {
			t.Fatalf("old event survived ring overwrite: %+v", e)
		}
	}
}

func TestZeroSpanIsNoop(t *testing.T) {
	var sp Span
	if d := sp.End(); d != 0 {
		t.Fatalf("zero span End = %v, want 0", d)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("csfltr_server_relayed_bytes_total", "Relayed bytes.", L("party", "B"), L("op", "query")).Add(1024)
	r.Gauge("csfltr_http_in_flight_requests", "In-flight HTTP requests.").Set(2)
	h := r.Histogram("csfltr_http_request_duration_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE csfltr_server_relayed_bytes_total counter",
		`csfltr_server_relayed_bytes_total{op="query",party="B"} 1024`,
		"# TYPE csfltr_http_in_flight_requests gauge",
		"csfltr_http_in_flight_requests 2",
		"# TYPE csfltr_http_request_duration_seconds histogram",
		`csfltr_http_request_duration_seconds_bucket{le="0.1"} 1`,
		`csfltr_http_request_duration_seconds_bucket{le="1"} 2`,
		`csfltr_http_request_duration_seconds_bucket{le="+Inf"} 3`,
		"csfltr_http_request_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("csfltr_a_total", "a").Add(7)
	h := r.Histogram("csfltr_b_seconds", "b", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := r.Snapshot()
	if m := snap.Metric("csfltr_a_total"); m == nil || m.Series[0].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", snap)
	}
	m := snap.Metric("csfltr_b_seconds")
	if m == nil || m.Series[0].Count != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", snap)
	}
	// Cumulative buckets: le=1 -> 1, +Inf -> 2.
	if m.Series[0].Buckets[0].Count != 1 || m.Series[0].Buckets[1].Count != 2 {
		t.Fatalf("cumulative buckets wrong: %+v", m.Series[0].Buckets)
	}
	var b strings.Builder
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal([]byte(b.String()), &round); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), `"+Inf"`) {
		t.Fatalf("+Inf bucket not encoded as string:\n%s", b.String())
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("csfltr_x_total", "")
	g := r.Gauge("csfltr_x", "")
	h := r.Histogram("csfltr_x_seconds", "", nil)
	c.Add(3)
	g.Set(4)
	h.Observe(1)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left state behind: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := RequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	var live float64 = 3
	g := r.GaugeFunc("csfltr_live", "view over live state", func() float64 { return live })
	if got := g.Value(); got != 3 {
		t.Fatalf("GaugeFunc value = %v, want 3", got)
	}
	// The callback is evaluated at observation time, so snapshots track
	// the backing state without pushes.
	live = 9
	snap := r.Snapshot()
	m := snap.Metric("csfltr_live")
	if m == nil || m.Series[0].Value != 9 {
		t.Fatalf("snapshot of callback gauge wrong: %+v", m)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "csfltr_live 9") {
		t.Fatalf("callback gauge missing from exposition:\n%s", b.String())
	}
	// Re-registration returns the existing series; the first callback
	// stays fixed.
	g2 := r.GaugeFunc("csfltr_live", "", func() float64 { return -1 })
	if g2 != g || g2.Value() != 9 {
		t.Fatalf("re-registration replaced the callback: %v", g2.Value())
	}
	// Reset leaves callback gauges untouched — they carry no state.
	r.Reset()
	if got := g.Value(); got != 9 {
		t.Fatalf("Reset broke callback gauge: %v", got)
	}
	// Labelled series are independent.
	a := r.GaugeFunc("csfltr_live_l", "", func() float64 { return 1 }, Label{"p", "a"})
	bb := r.GaugeFunc("csfltr_live_l", "", func() float64 { return 2 }, Label{"p", "b"})
	if a.Value() != 1 || bb.Value() != 2 {
		t.Fatalf("labelled callback gauges collided: %v %v", a.Value(), bb.Value())
	}
}

func TestGaugeFuncConflictsWithPlainGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("csfltr_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a callback gauge over a plain gauge did not panic")
		}
	}()
	r.GaugeFunc("csfltr_conflict", "", func() float64 { return 0 })
}
