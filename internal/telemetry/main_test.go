package telemetry

import (
	"testing"

	"csfltr/internal/leakcheck"
)

// TestMain fails the package if a span exporter or recorder goroutine
// outlives the test run.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
