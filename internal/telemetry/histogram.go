package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default histogram bucket layout: inclusive upper
// bounds in seconds spanning 25µs (an in-process sketch lookup) to 10s
// (a pathological cross-silo round trip). Chosen once, fixed forever, so
// dashboards of different runs line up.
var LatencyBuckets = []float64{
	25e-6, 100e-6, 250e-6,
	1e-3, 2.5e-3, 10e-3, 25e-3, 100e-3, 250e-3,
	1, 2.5, 10,
}

// SizeBuckets is a bucket layout for byte-size histograms: 64 B to 16 MB
// in powers of four.
var SizeBuckets = []float64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus `le` semantics: a value equal to a bound lands in
// that bound's bucket). An implicit +Inf bucket catches the rest. Safe
// for concurrent use; Observe is lock-free.
type Histogram struct {
	labels  []Label
	bounds  []float64 // ascending, excluding +Inf
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64

	// exemplars holds one most-recent traced observation per bucket,
	// linking histogram tails back to the trace that produced them.
	// Lazily allocated on the first ObserveTraced.
	exMu      sync.Mutex
	exemplars []Exemplar
}

// Exemplar is one traced observation pinned to a histogram bucket.
type Exemplar struct {
	UpperBound float64 `json:"-"` // bucket bound; +Inf for the overflow bucket
	Value      float64 `json:"value"`
	TraceID    string  `json:"trace_id"`
	UnixNano   int64   `json:"unix_nano"`
}

// MarshalJSON renders the bucket bound alongside the sample, encoding
// +Inf as the string "+Inf" (JSON has no infinity literal).
func (e Exemplar) MarshalJSON() ([]byte, error) {
	type exemplar struct {
		UpperBound any     `json:"le"`
		Value      float64 `json:"value"`
		TraceID    string  `json:"trace_id"`
		UnixNano   int64   `json:"unix_nano"`
	}
	ub := any(e.UpperBound)
	if math.IsInf(e.UpperBound, 1) {
		ub = "+Inf"
	}
	return json.Marshal(exemplar{UpperBound: ub, Value: e.Value, TraceID: e.TraceID, UnixNano: e.UnixNano})
}

// newHistogram builds a histogram series; bounds must be ascending.
func newHistogram(bounds []float64, labels []Label) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		labels: labels,
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v — the inclusive-upper-bound bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveTraced records one value and pins it as the exemplar of the
// bucket it lands in, so tail buckets always point at a recent trace ID
// that can be pulled up in full from the trace store.
func (h *Histogram) ObserveTraced(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	ub := math.Inf(1)
	if i < len(h.bounds) {
		ub = h.bounds[i]
	}
	h.exMu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{UpperBound: ub, Value: v, TraceID: traceID, UnixNano: time.Now().UnixNano()}
	h.exMu.Unlock()
}

// Exemplars returns the buckets' pinned traced observations, ascending
// by bucket bound; buckets without one are skipped.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	var out []Exemplar
	for _, e := range h.exemplars {
		if e.TraceID != "" {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the smallest bucket bound at which the cumulative count reaches
// q*Count. Returns NaN when empty and +Inf when the quantile lies in the
// overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	target := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Reset zeroes all buckets (experiment reruns only).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.exMu.Lock()
	h.exemplars = nil
	h.exMu.Unlock()
}
