package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: converts retained SpanRecords into the
// Trace Event Format consumed by chrome://tracing, Perfetto and
// speedscope, for flame-graph inspection of one federated query.
//
// Each span becomes one complete ("ph":"X") event. All spans share one
// process row; thread rows (tid) are synthesized per root-level branch —
// the root span on lane 0 and each direct child of the root opening its
// own lane that its descendants inherit — so concurrent fan-out branches
// render side by side instead of overlapping.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level Trace Event Format document.
type ChromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as Chrome trace-event JSON. Spans may
// arrive in any order and may span multiple traces; lane assignment is
// deterministic for a given span set.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	ordered := append([]SpanRecord(nil), spans...)
	SortSpans(ordered)

	// Assign lanes: roots (no parent, or parent not in the set) get lane
	// 0; each of their direct children opens a fresh lane; deeper spans
	// inherit the parent's lane.
	present := make(map[string]bool, len(ordered))
	for _, s := range ordered {
		if s.SpanID != "" {
			present[s.SpanID] = true
		}
	}
	lane := make(map[string]int, len(ordered))
	isRoot := make(map[string]bool, len(ordered))
	nextLane := 1
	for _, s := range ordered {
		switch {
		case s.ParentID == "" || !present[s.ParentID]:
			lane[s.SpanID] = 0
			isRoot[s.SpanID] = true
		case isRoot[s.ParentID]:
			lane[s.SpanID] = nextLane
			nextLane++
		default:
			lane[s.SpanID] = lane[s.ParentID]
		}
	}

	doc := ChromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, s := range ordered {
		ev := chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    float64(s.StartUnixNano) / 1e3,
			Dur:   float64(s.DurationNanos) / 1e3,
			PID:   1,
			TID:   lane[s.SpanID],
		}
		if ev.Dur < 0 {
			ev.Dur = 0
		}
		if len(s.Attrs) > 0 || s.SpanID != "" {
			ev.Args = make(map[string]string, len(s.Attrs)+3)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if s.SpanID != "" {
				ev.Args["span_id"] = s.SpanID
			}
			if s.ParentID != "" {
				ev.Args["parent_id"] = s.ParentID
			}
			if s.RequestID != "" {
				ev.Args["request_id"] = s.RequestID
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	// Stable output: events sorted by timestamp then lane.
	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		if doc.TraceEvents[i].TS != doc.TraceEvents[j].TS {
			return doc.TraceEvents[i].TS < doc.TraceEvents[j].TS
		}
		return doc.TraceEvents[i].TID < doc.TraceEvents[j].TID
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
