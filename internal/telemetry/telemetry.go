// Package telemetry is the dependency-free observability substrate of
// the CS-F-LTR system: a concurrency-safe metrics registry (counters,
// gauges, fixed-bucket histograms, labeled families), lightweight
// protocol spans that time an operation into a histogram and optionally
// append to a structured event log, and exposition in two formats —
// Prometheus text (for scrapers) and a JSON snapshot (for tests,
// benchmarks and the expvar-style /debug/vars route).
//
// The paper's headline claims are cost claims: CS-F-LTR trades a bounded
// accuracy loss for orders-of-magnitude less computation and
// communication. This package exists so the repo can *measure* where
// time and bytes go per protocol round instead of asserting it.
//
// Naming convention: csfltr_<subsystem>_<name>_<unit>, e.g.
// csfltr_server_relayed_bytes_total or
// csfltr_http_request_duration_seconds.
//
// Everything here is safe for concurrent use. Metric handles returned by
// Counter/Gauge/Histogram are stable: asking for the same name and label
// set twice returns the same handle, so callers may either cache handles
// on hot paths or re-resolve per call on cold ones.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricType discriminates the three family kinds.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

// String returns the Prometheus TYPE keyword.
func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// family groups every series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histogram upper bounds, nil otherwise

	series map[string]any // label signature -> *Counter/*Gauge/*Histogram
}

// Registry holds metric families and the optional event log. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	events   *eventLog   // nil until EnableEvents
	traces   *traceStore // nil until EnableTracing
	slow     *slowLog    // nil until EnableSlowLog
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature builds the canonical series key from sorted labels.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte('\xff')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy of labels.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup resolves (or creates) the family for name, enforcing that every
// series under one name agrees on type and help.
func (r *Registry) lookup(name, help string, typ metricType, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, typ, f.typ))
	}
	return f
}

// Counter returns the counter series for name and labels, creating it on
// first use. Counters only go up (Add panics on negative deltas); Reset
// exists for experiment reruns.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, counterType, nil)
	if c, ok := f.series[sig]; ok {
		return c.(*Counter)
	}
	c := &Counter{labels: labels}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge series for name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, gaugeType, nil)
	if g, ok := f.series[sig]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	g.labels = labels
	f.series[sig] = g
	return g
}

// Histogram returns the histogram series for name and labels, creating
// it on first use. buckets are inclusive upper bounds in ascending order
// (an implicit +Inf bucket is always appended); nil selects
// LatencyBuckets. The first registration of a name fixes its buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if buckets == nil {
		buckets = LatencyBuckets
	}
	f := r.lookup(name, help, histogramType, buckets)
	if h, ok := f.series[sig]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(f.buckets, labels)
	f.series[sig] = h
	return h
}

// Reset zeroes every series in the registry (between experiment runs).
// Handles remain valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, s := range f.series {
			switch m := s.(type) {
			case *Counter:
				m.Reset()
			case *Gauge:
				m.Set(0)
			case *Histogram:
				m.Reset()
			}
		}
	}
	if r.events != nil {
		r.events.reset()
	}
	if r.traces != nil {
		r.traces.reset()
	}
	if r.slow != nil {
		r.slow.reset()
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	labels []Label
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decrease")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter (experiment reruns only; Prometheus scrapers
// see a counter reset, which rate() handles).
func (c *Counter) Reset() { c.v.Store(0) }

// GaugeFunc returns the callback-gauge series for name and labels,
// creating it on first use. The callback is evaluated at observation
// time (snapshot / Prometheus scrape), so the exported value is always
// current without the owner having to push updates — the right shape
// for values that are views over live state (cache occupancy, remaining
// privacy budget). fn must be safe for concurrent use; the first
// registration of a series fixes its callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *GaugeFunc {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, gaugeType, nil)
	if g, ok := f.series[sig]; ok {
		gf, isFunc := g.(*GaugeFunc)
		if !isFunc {
			panic(fmt.Sprintf("telemetry: gauge %q re-registered as a callback gauge", name))
		}
		return gf
	}
	g := &GaugeFunc{labels: labels, fn: fn}
	f.series[sig] = g
	return g
}

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta (negative deltas decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeFunc is a gauge whose value is computed by a callback at
// observation time. It carries no state of its own, so Registry.Reset
// leaves it untouched.
type GaugeFunc struct {
	labels []Label
	fn     func() float64
}

// Value evaluates the callback (0 if nil).
func (g *GaugeFunc) Value() float64 {
	if g.fn == nil {
		return 0
	}
	return g.fn()
}

// requestIDPrefix is a per-process random prefix so request IDs from
// different silos never collide.
var requestIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

// requestIDCounter numbers requests within the process.
var requestIDCounter atomic.Uint64

// RequestID returns a new process-unique request identifier of the form
// <random-prefix>-<sequence>, used for request-ID propagation across the
// HTTP transport.
func RequestID() string {
	return fmt.Sprintf("%s-%08x", requestIDPrefix, requestIDCounter.Add(1))
}
