package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTracing(0, 0)
	h := reg.Histogram("csfltr_test_seconds", "h", nil)

	root := reg.StartRootSpan("search", h, AStr("querier", "A"))
	if !root.Context().Valid() {
		t.Fatal("root context invalid with tracing enabled")
	}
	child := reg.StartChildSpan("fanout", root.Context(), nil)
	grand := reg.StartChildSpan("rtk_query", child.Context(), nil, AInt("attempt", 1))
	grand.AddAttr(AStr("party", "B"))
	grand.End()
	child.End()
	root.End()

	spans, ok := reg.Trace(root.Context().TraceID)
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != root.Context().TraceID {
			t.Fatalf("span %s has trace %s, want %s", s.Name, s.TraceID, root.Context().TraceID)
		}
	}
	if byName["fanout"].ParentID != byName["search"].SpanID {
		t.Fatal("fanout not parented under search")
	}
	if byName["rtk_query"].ParentID != byName["fanout"].SpanID {
		t.Fatal("rtk_query not parented under fanout")
	}
	if byName["rtk_query"].Attr("party") != "B" || byName["rtk_query"].Attr("attempt") != "1" {
		t.Fatalf("rtk_query attrs wrong: %+v", byName["rtk_query"].Attrs)
	}
}

func TestTracingDisabledDegradesToPlainSpan(t *testing.T) {
	reg := NewRegistry()
	reg.EnableEvents(8)
	h := reg.Histogram("csfltr_test_seconds", "h", nil)
	sp := reg.StartRootSpan("op", h)
	if sp.Context().Valid() {
		t.Fatal("context should be invalid with tracing disabled")
	}
	sp.End()
	if h.Count() != 1 {
		t.Fatal("histogram not observed")
	}
	evs := reg.Events()
	if len(evs) != 1 || evs[0].Name != "op" || evs[0].TraceID != "" {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if got := reg.TraceIDs(); got != nil {
		t.Fatalf("trace store should be off, got %v", got)
	}
	// A child of an invalid parent is likewise untraced.
	ch := reg.StartChildSpan("child", sp.Context(), nil)
	if ch.Context().Valid() {
		t.Fatal("child of invalid parent must be untraced")
	}
	ch.End()
}

func TestTraceStoreBounds(t *testing.T) {
	ts := newTraceStore(2, 3)
	for i := 0; i < 5; i++ {
		id := NewTraceID()
		for j := 0; j < 5; j++ {
			ts.add(SpanRecord{TraceID: id, SpanID: newSpanID(), Name: "s"})
		}
		spans, ok := ts.trace(id)
		if !ok || len(spans) != 3 {
			t.Fatalf("trace %d: got %d spans, want 3 (capped)", i, len(spans))
		}
	}
	if ids := ts.ids(); len(ids) != 2 {
		t.Fatalf("got %d retained traces, want 2", len(ids))
	}
	if ts.evictedTraces != 3 {
		t.Fatalf("evicted %d traces, want 3", ts.evictedTraces)
	}
}

// TestEventJSONFieldsStable pins the event-log JSON contract: the three
// original field names stay exactly as existing consumers parse them,
// and the additive trace fields are omitted for untraced spans.
func TestEventJSONFieldsStable(t *testing.T) {
	reg := NewRegistry()
	reg.EnableEvents(4)
	reg.StartSpan("plain", nil).End()

	raw, err := json.Marshal(reg.Events())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d events", len(decoded))
	}
	for _, key := range []string{"name", "start_unix_nano", "duration_nanos"} {
		if _, ok := decoded[0][key]; !ok {
			t.Fatalf("stable field %q missing from event JSON: %s", key, raw)
		}
	}
	for _, key := range []string{"trace_id", "span_id", "request_id"} {
		if _, ok := decoded[0][key]; ok {
			t.Fatalf("untraced event leaked field %q: %s", key, raw)
		}
	}

	// Traced spans carry the additive fields.
	reg.EnableTracing(0, 0)
	sp := reg.StartRootSpan("traced", nil)
	sp.SetRequestID("req-1")
	sp.End()
	evs := reg.Events()
	last := evs[len(evs)-1]
	if last.TraceID == "" || last.SpanID == "" || last.RequestID != "req-1" {
		t.Fatalf("traced event missing trace fields: %+v", last)
	}
}

func TestSlowLogAndExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTracing(0, 0)
	reg.EnableSlowLog(4, time.Microsecond)
	h := reg.Histogram("csfltr_test_seconds", "h", nil)

	sp := reg.StartRootSpan("search", h)
	time.Sleep(2 * time.Millisecond)
	sp.End()

	slow := reg.SlowQueries()
	if len(slow) != 1 {
		t.Fatalf("got %d slow entries, want 1", len(slow))
	}
	if slow[0].TraceID != sp.Context().TraceID || slow[0].Name != "search" {
		t.Fatalf("slow entry mismatch: %+v", slow[0])
	}
	ex := h.Exemplars()
	if len(ex) == 0 || ex[0].TraceID != sp.Context().TraceID {
		t.Fatalf("exemplar not linked to trace: %+v", ex)
	}
	// The snapshot carries the exemplar too.
	snap := reg.Snapshot()
	ms := snap.Metric("csfltr_test_seconds")
	if ms == nil || len(ms.Series[0].Exemplars) == 0 {
		t.Fatal("snapshot missing exemplars")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	reg := NewRegistry()
	reg.EnableTracing(0, 0)
	root := reg.StartRootSpan("search", nil)
	a := reg.StartChildSpan("fanout", root.Context(), nil)
	b := reg.StartChildSpan("rtk_query", a.Context(), nil, AStr("party", "B"))
	b.End()
	a.End()
	root.End()

	spans, _ := reg.Trace(root.Context().TraceID)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("unexpected document: %s", buf.String())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("unexpected event: %+v", ev)
		}
	}
	for _, want := range []string{"search", "fanout", "rtk_query"} {
		if !names[want] {
			t.Fatalf("missing %s in %s", want, buf.String())
		}
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		if !strings.HasPrefix(id, "t") {
			t.Fatalf("trace ID %s missing prefix", id)
		}
		seen[id] = true
	}
}
